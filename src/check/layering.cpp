#include "check/layering.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace flowgnn {
namespace check {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void
spec_error(std::size_t line_no, const std::string &what)
{
    throw std::runtime_error("layer spec line " +
                             std::to_string(line_no) + ": " + what);
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        tokens.push_back(tok);
    return tokens;
}

} // namespace

LayerSpec
parse_layer_spec(std::istream &in)
{
    LayerSpec spec;
    // Direct dependencies first; the closure is computed once every
    // layer is known (the spec may name layers before defining them).
    std::map<std::string, std::vector<std::string>> direct;
    std::vector<std::size_t> layer_lines;
    std::string line;
    std::size_t line_no = 0;
    std::vector<std::pair<std::size_t, std::pair<std::string, std::string>>>
        pending_paths;
    while (std::getline(in, line)) {
        ++line_no;
        if (auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::vector<std::string> tokens = tokenize(line);
        if (tokens.empty())
            continue;
        if (tokens[0] == "layer") {
            if (tokens.size() < 3 || tokens[2] != ":")
                spec_error(line_no,
                           "expected `layer <name> : [<dep> ...]`");
            const std::string &name = tokens[1];
            if (direct.count(name))
                spec_error(line_no, "duplicate layer '" + name + "'");
            direct[name].assign(tokens.begin() + 3, tokens.end());
        } else if (tokens[0] == "path") {
            if (tokens.size() != 3)
                spec_error(line_no, "expected `path <prefix> <layer>`");
            pending_paths.push_back({line_no, {tokens[1], tokens[2]}});
        } else {
            spec_error(line_no, "unknown directive '" + tokens[0] + "'");
        }
    }

    for (const auto &[name, deps] : direct)
        for (const std::string &dep : deps)
            if (!direct.count(dep))
                throw std::runtime_error("layer '" + name +
                                         "' depends on undefined layer '" +
                                         dep + "'");
    for (const auto &[ln, rule] : pending_paths) {
        if (!direct.count(rule.second))
            spec_error(ln, "path rule names undefined layer '" +
                               rule.second + "'");
        spec.path_rules.push_back(rule);
    }

    // Transitive closure by fixpoint; the spec is tiny, so quadratic
    // rounds cost nothing and need no cycle bookkeeping (a dependency
    // cycle between layers simply converges to equal sets — and then
    // every cross-layer edge inside it is allowed, which the spec
    // author presumably did not intend but is free to write).
    for (const auto &[name, deps] : direct) {
        auto &closed = spec.allowed[name];
        closed.insert(name);
        closed.insert(deps.begin(), deps.end());
    }
    bool grew = true;
    while (grew) {
        grew = false;
        for (auto &[name, closed] : spec.allowed) {
            std::set<std::string> next = closed;
            for (const std::string &dep : closed)
                next.insert(spec.allowed.at(dep).begin(),
                            spec.allowed.at(dep).end());
            if (next.size() != closed.size()) {
                closed = std::move(next);
                grew = true;
            }
        }
    }
    return spec;
}

std::string
layer_of(const LayerSpec &spec, const std::string &path)
{
    const std::string *best_layer = nullptr;
    std::size_t best_len = 0;
    for (const auto &[prefix, layer] : spec.path_rules) {
        if (path.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (!best_layer || prefix.size() > best_len) {
            best_layer = &layer;
            best_len = prefix.size();
        }
    }
    return best_layer ? *best_layer : std::string();
}

IncludeGraph
scan_includes(const std::string &root)
{
    fs::path base(root);
    std::error_code ec;
    if (!fs::is_directory(base, ec))
        throw std::runtime_error("not a directory: " + root);

    IncludeGraph graph;
    std::vector<fs::path> files;
    for (const auto &entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cpp")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());

    for (const fs::path &file : files) {
        std::string rel =
            file.lexically_relative(base).generic_string();
        auto &edges = graph[rel]; // every file gets a node
        std::ifstream in(file);
        std::string line;
        while (std::getline(in, line)) {
            // Hand-rolled instead of std::regex: this runs over every
            // line of the tree in the fail-early lint job.
            std::size_t pos = line.find_first_not_of(" \t");
            if (pos == std::string::npos || line[pos] != '#')
                continue;
            pos = line.find_first_not_of(" \t", pos + 1);
            if (pos == std::string::npos ||
                line.compare(pos, 7, "include") != 0)
                continue;
            std::size_t open = line.find('"', pos + 7);
            if (open == std::string::npos)
                continue;
            std::size_t close = line.find('"', open + 1);
            if (close == std::string::npos)
                continue;
            std::string inc = line.substr(open + 1, close - open - 1);
            // Only in-tree targets participate in layering. Quoted
            // includes in this tree are all root-relative; a relative
            // include of a sibling would resolve from the includer's
            // directory, which we do not support (and the style does
            // not use).
            if (fs::is_regular_file(base / inc, ec))
                edges.push_back(inc);
        }
        std::sort(edges.begin(), edges.end());
        edges.erase(std::unique(edges.begin(), edges.end()),
                    edges.end());
    }
    return graph;
}

namespace {

/** Iterative DFS cycle finder. Colors: 0 white, 1 on stack, 2 done.
 * Each cycle is reported once, keyed by its lexicographically
 * smallest rotation. */
void
find_cycles(const IncludeGraph &graph, std::vector<Violation> &out)
{
    std::map<std::string, int> color;
    std::vector<std::string> stack;
    std::set<std::vector<std::string>> seen;

    // Recursive lambda via explicit stack of (node, next-edge index)
    // so pathological include depths cannot overflow the C stack.
    struct Frame {
        const std::string *node;
        std::size_t edge = 0;
    };

    for (const auto &[start, _] : graph) {
        if (color[start] != 0)
            continue;
        std::vector<Frame> frames{{&start}};
        color[start] = 1;
        stack.push_back(start);
        while (!frames.empty()) {
            Frame &f = frames.back();
            const auto &edges = graph.at(*f.node);
            if (f.edge < edges.size()) {
                const std::string &next = edges[f.edge++];
                auto it = graph.find(next);
                if (it == graph.end())
                    continue; // include of a non-scanned file
                int &c = color[next];
                if (c == 0) {
                    c = 1;
                    stack.push_back(next);
                    frames.push_back({&it->first});
                } else if (c == 1) {
                    // Found a cycle: the chain from `next`'s position
                    // on the stack down to the top, closed back.
                    auto pos = std::find(stack.begin(), stack.end(),
                                         next);
                    std::vector<std::string> chain(pos, stack.end());
                    // Canonical rotation for dedup.
                    std::vector<std::string> key = chain;
                    auto min_it =
                        std::min_element(key.begin(), key.end());
                    std::rotate(key.begin(), min_it, key.end());
                    if (seen.insert(key).second) {
                        chain.push_back(next); // close the walk
                        std::string msg = "include cycle: ";
                        for (std::size_t i = 0; i < chain.size(); ++i) {
                            if (i)
                                msg += " -> ";
                            msg += chain[i];
                        }
                        out.push_back({Violation::Kind::kCycle,
                                       std::move(chain),
                                       std::move(msg)});
                    }
                }
            } else {
                color[*f.node] = 2;
                stack.pop_back();
                frames.pop_back();
            }
        }
    }
}

} // namespace

std::vector<Violation>
check_layering(const LayerSpec &spec, const IncludeGraph &graph)
{
    std::vector<Violation> out;

    for (const auto &[file, _] : graph) {
        if (layer_of(spec, file).empty())
            out.push_back(
                {Violation::Kind::kUnmappedFile,
                 {file},
                 "no path rule maps '" + file +
                     "' to a layer (add it to the layer spec)"});
    }

    for (const auto &[file, edges] : graph) {
        const std::string from_layer = layer_of(spec, file);
        if (from_layer.empty())
            continue; // already reported as unmapped
        const auto &allowed = spec.allowed.at(from_layer);
        for (const std::string &inc : edges) {
            const std::string to_layer = layer_of(spec, inc);
            if (to_layer.empty())
                continue; // ditto
            if (!allowed.count(to_layer))
                out.push_back(
                    {Violation::Kind::kBackEdge,
                     {file, inc},
                     "layering back-edge: " + file + " (layer " +
                         from_layer + ") -> " + inc + " (layer " +
                         to_layer + "); '" + from_layer +
                         "' may not depend on '" + to_layer + "'"});
        }
    }

    find_cycles(graph, out);
    return out;
}

int
run_layering_check(const std::string &root,
                   const std::string &spec_path, std::ostream &out)
{
    LayerSpec spec;
    IncludeGraph graph;
    try {
        std::ifstream spec_in(spec_path);
        if (!spec_in) {
            out << "check_layering: cannot open spec: " << spec_path
                << "\n";
            return 2;
        }
        spec = parse_layer_spec(spec_in);
        graph = scan_includes(root);
    } catch (const std::exception &e) {
        out << "check_layering: " << e.what() << "\n";
        return 2;
    }

    std::vector<Violation> violations = check_layering(spec, graph);
    for (const Violation &v : violations)
        out << v.message << "\n";
    if (!violations.empty()) {
        out << "check_layering: " << violations.size()
            << " violation(s) in " << graph.size() << " files\n";
        return 1;
    }
    out << "check_layering: OK (" << graph.size() << " files, "
        << spec.allowed.size() << " layers)\n";
    return 0;
}

} // namespace check
} // namespace flowgnn
