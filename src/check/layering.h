/**
 * @file
 * flowgnn::check — the include-layering lint, leg 2 of the static
 * analysis pass.
 *
 * The tree's one-way subsystem layering (tensor → core → graph → …
 * → pool; see docs/DESIGN.md "Static analysis & concurrency
 * contracts") has been a prose rule since PR 1. This turns it into a
 * machine-checked invariant: parse the `#include` graph of src/
 * against a committed layer spec, fail on back-edges (a lower layer
 * including a higher one) and on file-level include cycles (which
 * include guards let *compile*, silently), and print the offending
 * chain so the fix is obvious from the CI log alone.
 *
 * Spec format (tools/layering.spec), one directive per line,
 * `#` comments:
 *
 *     layer <name> : [<dep> ...]   # direct allowed dependencies
 *     path <prefix> <layer>        # assign files to layers
 *
 * Layer dependencies are transitively closed, so `layer serve :
 * engine obs` lets serve reach everything engine and obs may reach.
 * Path rules are plain string prefixes on root-relative paths;
 * the longest matching prefix wins, which is how single files are
 * carved out of their directory (e.g. `path core/engine. engine`
 * overriding `path core core_base`). Every scanned file must map to
 * a layer — an unmapped file is itself a violation, so new
 * subsystems must be placed in the spec before they pass CI.
 *
 * This header is deliberately std-only (no flowgnn dependencies):
 * the lint sits outside the layer DAG it checks.
 */
#ifndef FLOWGNN_CHECK_LAYERING_H
#define FLOWGNN_CHECK_LAYERING_H

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace flowgnn {
namespace check {

/** Parsed, transitively-closed layer specification. */
struct LayerSpec {
    /** layer -> layers it may include (closed; contains itself). */
    std::map<std::string, std::set<std::string>> allowed;
    /** (path prefix, layer); longest matching prefix wins. */
    std::vector<std::pair<std::string, std::string>> path_rules;
};

/** Parses a spec stream. Throws std::runtime_error with a line
 * number on malformed directives, unknown layers in deps or path
 * rules, and duplicate layer definitions. */
LayerSpec parse_layer_spec(std::istream &in);

/** The layer the longest-prefix path rule assigns, or "" if none
 * matches. `path` must be root-relative with '/' separators. */
std::string layer_of(const LayerSpec &spec, const std::string &path);

/** file -> files it includes. Paths are root-relative. Only quoted
 * includes that resolve to files under the scanned root appear
 * (system and external includes are not layering's business). */
using IncludeGraph = std::map<std::string, std::vector<std::string>>;

/** Scans `root` recursively for .h/.cpp files and extracts their
 * in-tree `#include "..."` edges. Throws std::runtime_error when
 * root is not a readable directory. */
IncludeGraph scan_includes(const std::string &root);

/** One layering violation, with the chain that proves it. */
struct Violation {
    enum class Kind {
        kUnmappedFile, ///< no path rule matches; chain = {file}
        kBackEdge,     ///< illegal include; chain = {from, to}
        kCycle,        ///< include cycle; chain = the closed walk
    };
    Kind kind;
    std::vector<std::string> chain;
    std::string message; ///< human-readable, names the chain
};

/** Checks every include edge against the spec and the file graph for
 * cycles. Deterministic order: unmapped files first, then back-edges,
 * then cycles, each sorted by path. */
std::vector<Violation> check_layering(const LayerSpec &spec,
                                      const IncludeGraph &graph);

/**
 * The whole tool as one call (the check_layering binary is a thin
 * main over this, and the fixture tests assert on its return value):
 * scan `root`, parse `spec_path`, report every violation to `out`.
 * Returns the process exit code — 0 clean, 1 violations found,
 * 2 bad usage (unreadable root/spec, malformed spec).
 */
int run_layering_check(const std::string &root,
                       const std::string &spec_path, std::ostream &out);

} // namespace check
} // namespace flowgnn

#endif // FLOWGNN_CHECK_LAYERING_H
