/**
 * @file
 * GraphSample: a graph together with its node/edge features — the unit
 * of work streamed into the accelerator at batch size 1.
 */
#ifndef FLOWGNN_GRAPH_SAMPLE_H
#define FLOWGNN_GRAPH_SAMPLE_H

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace flowgnn {

/**
 * One inference work item: the raw COO graph plus dense node features
 * [num_nodes x node_dim], optional edge features [num_edges x
 * edge_dim], an optional per-node scalar field (Laplacian eigenvector
 * values consumed by DGN), and bookkeeping for virtual-node handling.
 */
struct GraphSample {
    CooGraph graph;
    Matrix node_features; ///< [graph.num_nodes x F]
    Matrix edge_features; ///< [graph.num_edges x De]; 0 cols if none.
    /**
     * Number of "real" nodes for pooling. Virtual nodes appended by
     * add_virtual_node are excluded from global pooling, matching the
     * OGB convention. Defaults to all nodes.
     */
    NodeId num_pool_nodes = 0;
    /** Per-node scalar field u (Laplacian eigenvector) for DGN. */
    Vec dgn_field;
    /**
     * Optional full-graph degree overrides, one entry per node when
     * non-empty. Degree-normalized layers (GCN/SGC) read degrees from
     * these instead of counting `graph`'s edges. Multi-die sharding
     * sets them on each die's subgraph: a halo node's local edge list
     * is incomplete, so its true degrees ship with its features —
     * exactly as distributed GNN systems ship ghost-vertex degrees.
     */
    std::vector<std::uint32_t> true_in_deg;
    std::vector<std::uint32_t> true_out_deg;
    /** Synthetic regression target used by examples. */
    float label = 0.0f;

    NodeId num_nodes() const { return graph.num_nodes; }
    std::size_t num_edges() const { return graph.num_edges(); }
    std::size_t node_dim() const { return node_features.cols(); }
    std::size_t edge_dim() const { return edge_features.cols(); }

    NodeId
    pool_nodes() const
    {
        return num_pool_nodes == 0 ? graph.num_nodes : num_pool_nodes;
    }

    /** Structural sanity checks (feature rows match graph sizes). */
    bool consistent() const;
};

/**
 * Non-owning view of a sample: a GraphRef plus raw row-major feature
 * pointers. This is the engine-facing twin of GraphSample — every hot
 * path (partitioners, planners, Engine::run_prepared, ghost runs) works
 * off a SampleRef, so an mmap-backed io::GraphView can feed a graph
 * larger than RAM straight into them without copying into a
 * GraphSample. Constructed from a GraphSample it borrows everything;
 * the columnar fields can also be filled directly from mapped sections.
 * Null pointers mean "absent" exactly where GraphSample uses an empty
 * vector/matrix. The backing must outlive every use.
 */
struct SampleRef {
    GraphRef graph;
    /** [num_nodes x node_dim] row-major; null iff node_dim == 0. */
    const float *node_features = nullptr;
    std::size_t node_dim = 0;
    /** [num_edges x edge_dim] row-major; null iff edge_dim == 0. */
    const float *edge_features = nullptr;
    std::size_t edge_dim = 0;
    NodeId num_pool_nodes = 0;
    /** Per-node DGN scalar field (num_nodes entries) or null. */
    const float *dgn_field = nullptr;
    /** Degree overrides (num_nodes entries each) or null. */
    const std::uint32_t *true_in_deg = nullptr;
    const std::uint32_t *true_out_deg = nullptr;
    float label = 0.0f;

    SampleRef() = default;
    SampleRef(const GraphSample &sample);

    NodeId num_nodes() const { return graph.num_nodes(); }
    std::size_t num_edges() const { return graph.num_edges(); }

    NodeId
    pool_nodes() const
    {
        return num_pool_nodes == 0 ? num_nodes() : num_pool_nodes;
    }

    const float *
    node_row(NodeId n) const
    {
        return node_features + std::size_t(n) * node_dim;
    }

    const float *
    edge_row(std::size_t e) const
    {
        return edge_features + e * edge_dim;
    }

    /** Structural sanity checks, mirroring GraphSample::consistent. */
    bool consistent(unsigned threads = 0) const;
};

/**
 * Deterministic N(0, 0.5) feature matrix drawn row-major from
 * Rng(seed) — the one synthetic feature distribution shared by the
 * scale-out benches (bench::with_features), the io loader's generated
 * features, and the graph-writer tools. Living here keeps the three
 * call sites bit-identical by construction instead of by convention.
 */
Matrix gaussian_features(std::size_t rows, std::size_t cols,
                         std::uint64_t seed);

/**
 * Returns a copy of the sample with a virtual node appended: the VN is
 * connected bidirectionally to every node, gets a zero feature row and
 * zero features on its edges, and is excluded from pooling.
 */
GraphSample with_virtual_node(const GraphSample &sample);

/**
 * Appends `count` virtual nodes, each fully connected to every
 * original node (paper Sec. IV notes some models use multiple virtual
 * nodes, escalating the imbalance the dataflow must absorb). Virtual
 * nodes are not connected to each other and are excluded from pooling.
 */
GraphSample with_virtual_nodes(const GraphSample &sample,
                               std::uint32_t count);

} // namespace flowgnn

#endif // FLOWGNN_GRAPH_SAMPLE_H
