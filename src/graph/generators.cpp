#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace flowgnn {

CooGraph
make_erdos_renyi(NodeId num_nodes, std::size_t num_edges, Rng &rng)
{
    if (num_nodes < 2 && num_edges > 0)
        throw std::invalid_argument("make_erdos_renyi: too few nodes");
    std::size_t max_edges =
        static_cast<std::size_t>(num_nodes) * (num_nodes - 1);
    if (num_edges > max_edges)
        throw std::invalid_argument("make_erdos_renyi: too many edges");

    CooGraph g;
    g.num_nodes = num_nodes;
    std::set<std::pair<NodeId, NodeId>> seen;
    while (g.edges.size() < num_edges) {
        NodeId s = static_cast<NodeId>(rng.uniform_index(num_nodes));
        NodeId d = static_cast<NodeId>(rng.uniform_index(num_nodes));
        if (s == d)
            continue;
        if (seen.insert({s, d}).second)
            g.edges.push_back({s, d});
    }
    return g;
}

CooGraph
make_molecule(NodeId num_nodes, Rng &rng)
{
    CooGraph g;
    g.num_nodes = num_nodes;
    if (num_nodes <= 1)
        return g;

    // Chain-biased random spanning tree: attaching to a recent node
    // with high probability yields the elongated skeletons typical of
    // molecules.
    std::vector<std::pair<NodeId, NodeId>> bonds;
    for (NodeId n = 1; n < num_nodes; ++n) {
        NodeId parent;
        if (n == 1 || rng.uniform() < 0.7) {
            parent = n - 1;
        } else {
            parent = static_cast<NodeId>(rng.uniform_index(n));
        }
        bonds.push_back({parent, n});
    }

    // Ring closures: roughly one ring per 6 atoms.
    std::size_t rings = num_nodes / 6;
    std::set<std::pair<NodeId, NodeId>> seen(bonds.begin(), bonds.end());
    for (std::size_t r = 0; r < rings && num_nodes > 4; ++r) {
        NodeId a = static_cast<NodeId>(rng.uniform_index(num_nodes));
        NodeId span = 3 + static_cast<NodeId>(rng.uniform_index(3));
        NodeId b = (a + span) % num_nodes;
        if (a == b)
            continue;
        auto key = std::minmax(a, b);
        if (seen.insert({key.first, key.second}).second)
            bonds.push_back({key.first, key.second});
    }

    // Bonds are undirected: emit both directions, forward block first
    // so features can be mirrored positionally.
    for (const auto &[a, b] : bonds)
        g.edges.push_back({a, b});
    for (const auto &[a, b] : bonds)
        g.edges.push_back({b, a});
    return g;
}

CooGraph
make_knn_point_cloud(NodeId num_nodes, std::uint32_t k, Rng &rng)
{
    CooGraph g;
    g.num_nodes = num_nodes;
    if (num_nodes == 0)
        return g;
    k = std::min<std::uint32_t>(k, num_nodes - 1);

    std::vector<std::pair<double, double>> pts(num_nodes);
    for (auto &p : pts)
        p = {rng.uniform(), rng.uniform()};

    // Brute-force kNN: the HEP graphs have ~50 nodes so O(n^2) is the
    // honest implementation, not a shortcut.
    for (NodeId i = 0; i < num_nodes; ++i) {
        std::vector<std::pair<double, NodeId>> dist;
        dist.reserve(num_nodes - 1);
        for (NodeId j = 0; j < num_nodes; ++j) {
            if (i == j)
                continue;
            double dx = pts[i].first - pts[j].first;
            double dy = pts[i].second - pts[j].second;
            dist.push_back({dx * dx + dy * dy, j});
        }
        std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
        // EdgeConv: messages flow from each neighbor j into i.
        for (std::uint32_t t = 0; t < k; ++t)
            g.edges.push_back({dist[t].second, i});
    }
    return g;
}

CooGraph
make_barabasi_albert(NodeId num_nodes, std::uint32_t m, Rng &rng)
{
    if (m == 0)
        throw std::invalid_argument("make_barabasi_albert: m must be > 0");
    CooGraph g;
    g.num_nodes = num_nodes;
    if (num_nodes <= 1)
        return g;

    // Repeated-endpoint list implements preferential attachment.
    std::vector<NodeId> endpoint_pool;
    std::vector<std::pair<NodeId, NodeId>> links;

    NodeId seed = std::min<NodeId>(num_nodes, m + 1);
    for (NodeId a = 0; a < seed; ++a) {
        for (NodeId b = a + 1; b < seed; ++b) {
            links.push_back({a, b});
            endpoint_pool.push_back(a);
            endpoint_pool.push_back(b);
        }
    }

    for (NodeId n = seed; n < num_nodes; ++n) {
        std::set<NodeId> targets;
        while (targets.size() < m) {
            NodeId t = endpoint_pool[rng.uniform_index(
                endpoint_pool.size())];
            if (t != n)
                targets.insert(t);
        }
        for (NodeId t : targets) {
            links.push_back({n, t});
            endpoint_pool.push_back(n);
            endpoint_pool.push_back(t);
        }
    }

    for (const auto &[a, b] : links)
        g.edges.push_back({a, b});
    for (const auto &[a, b] : links)
        g.edges.push_back({b, a});
    return g;
}

CooGraph
make_rmat(NodeId num_nodes, std::size_t num_edges, Rng &rng, double a,
          double b, double c)
{
    if (num_nodes == 0 || (num_nodes & (num_nodes - 1)) != 0)
        throw std::invalid_argument(
            "make_rmat: num_nodes must be a power of two");
    if (a < 0.0 || b < 0.0 || c < 0.0 || a + b + c > 1.0)
        throw std::invalid_argument(
            "make_rmat: quadrant probabilities must be non-negative "
            "and sum to at most 1");

    std::uint32_t scale = 0;
    while ((NodeId(1) << scale) < num_nodes)
        ++scale;

    CooGraph g;
    g.num_nodes = num_nodes;
    g.edges.reserve(num_edges);
    for (std::size_t e = 0; e < num_edges; ++e) {
        NodeId src = 0;
        NodeId dst = 0;
        for (std::uint32_t level = 0; level < scale; ++level) {
            const double r = rng.uniform();
            src <<= 1;
            dst <<= 1;
            if (r < a) {
                // top-left: neither bit set
            } else if (r < a + b) {
                dst |= 1;
            } else if (r < a + b + c) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        g.edges.push_back({src, dst});
    }
    return g;
}

CooGraph
permute_node_ids(const CooGraph &graph, Rng &rng)
{
    std::vector<NodeId> perm(graph.num_nodes);
    for (NodeId v = 0; v < graph.num_nodes; ++v)
        perm[v] = v;
    rng.shuffle(perm);

    CooGraph out;
    out.num_nodes = graph.num_nodes;
    out.edges.reserve(graph.edges.size());
    for (const Edge &e : graph.edges)
        out.edges.push_back({perm[e.src], perm[e.dst]});
    return out;
}

CooGraph
make_ring_lattice(NodeId num_nodes, std::uint32_t k)
{
    if (k == 0)
        throw std::invalid_argument("make_ring_lattice: k must be > 0");
    if (num_nodes < 2 * std::uint64_t(k) + 1)
        throw std::invalid_argument(
            "make_ring_lattice: need num_nodes > 2k");
    CooGraph g;
    g.num_nodes = num_nodes;
    g.edges.reserve(std::size_t(num_nodes) * 2 * k);
    for (NodeId i = 0; i < num_nodes; ++i) {
        for (std::uint32_t j = 1; j <= k; ++j) {
            NodeId fwd = (i + j) % num_nodes;
            NodeId bwd = (i + num_nodes - j) % num_nodes;
            g.edges.push_back({fwd, i});
            g.edges.push_back({bwd, i});
        }
    }
    return g;
}

CooGraph
add_virtual_node(const CooGraph &graph)
{
    CooGraph out = graph;
    NodeId vn = graph.num_nodes;
    out.num_nodes = graph.num_nodes + 1;
    for (NodeId n = 0; n < graph.num_nodes; ++n)
        out.edges.push_back({n, vn});
    for (NodeId n = 0; n < graph.num_nodes; ++n)
        out.edges.push_back({vn, n});
    return out;
}

} // namespace flowgnn
