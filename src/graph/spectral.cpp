#include "graph/spectral.h"

#include <algorithm>
#include <cmath>

namespace flowgnn {

Vec
fiedler_vector(const CooGraph &graph, Rng &rng, std::uint32_t iterations)
{
    NodeId n = graph.num_nodes;
    Vec u(n, 0.0f);
    if (n == 0)
        return u;
    if (n == 1) {
        return u;
    }

    // Undirected degree (count each stored direction once per endpoint).
    std::vector<double> deg(n, 0.0);
    for (const auto &e : graph.edges) {
        deg[e.src] += 0.5;
        deg[e.dst] += 0.5;
    }
    double d_max = *std::max_element(deg.begin(), deg.end());
    double shift = 2.0 * d_max + 1.0;

    std::vector<double> x(n), y(n);
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);

    auto deflate = [&](std::vector<double> &v) {
        // Remove the constant (trivial eigenvalue 0) component.
        double mean = 0.0;
        for (double w : v)
            mean += w;
        mean /= n;
        for (double &w : v)
            w -= mean;
    };

    auto normalize = [&](std::vector<double> &v) {
        double norm = 0.0;
        for (double w : v)
            norm += w * w;
        norm = std::sqrt(norm);
        if (norm < 1e-12)
            return false;
        for (double &w : v)
            w /= norm;
        return true;
    };

    deflate(x);
    if (!normalize(x)) {
        // Degenerate start; fall back to an alternating vector.
        for (NodeId i = 0; i < n; ++i)
            x[i] = (i % 2 == 0) ? 1.0 : -1.0;
        deflate(x);
        normalize(x);
    }

    // Power iteration on M = shift*I - L; the dominant eigenvector of M
    // restricted to the non-constant subspace is the Fiedler vector.
    for (std::uint32_t it = 0; it < iterations; ++it) {
        // y = (shift - deg) .* x  (diagonal part of shift*I - L)
        for (NodeId i = 0; i < n; ++i)
            y[i] = (shift - deg[i]) * x[i];
        // Off-diagonal: +A x, each stored direction contributes half to
        // both endpoints so symmetric edge lists are not double counted.
        for (const auto &e : graph.edges) {
            y[e.dst] += 0.5 * x[e.src];
            y[e.src] += 0.5 * x[e.dst];
        }
        deflate(y);
        if (!normalize(y))
            break;
        std::swap(x, y);
    }

    for (NodeId i = 0; i < n; ++i)
        u[i] = static_cast<float>(x[i]);
    return u;
}

} // namespace flowgnn
