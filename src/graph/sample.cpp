#include "graph/sample.h"

#include "graph/generators.h"
#include "tensor/rng.h"

namespace flowgnn {

Matrix
gaussian_features(std::size_t rows, std::size_t cols,
                  std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = static_cast<float>(rng.normal(0.0, 0.5));
    return m;
}

SampleRef::SampleRef(const GraphSample &sample)
    : graph(sample.graph), num_pool_nodes(sample.num_pool_nodes),
      label(sample.label)
{
    if (sample.node_features.cols() > 0) {
        node_features = sample.node_features.data();
        node_dim = sample.node_features.cols();
    }
    if (sample.edge_features.cols() > 0 &&
        sample.edge_features.rows() > 0) {
        edge_features = sample.edge_features.data();
        edge_dim = sample.edge_features.cols();
    }
    if (!sample.dgn_field.empty())
        dgn_field = sample.dgn_field.data();
    if (!sample.true_in_deg.empty())
        true_in_deg = sample.true_in_deg.data();
    if (!sample.true_out_deg.empty())
        true_out_deg = sample.true_out_deg.data();
}

bool
SampleRef::consistent(unsigned threads) const
{
    if (!graph.valid(threads))
        return false;
    if (num_pool_nodes > graph.num_nodes())
        return false;
    return true;
}

bool
GraphSample::consistent() const
{
    if (!graph.valid())
        return false;
    if (node_features.rows() != graph.num_nodes)
        return false;
    if (edge_features.rows() != 0 &&
        edge_features.rows() != graph.num_edges())
        return false;
    if (!dgn_field.empty() && dgn_field.size() != graph.num_nodes)
        return false;
    if (!true_in_deg.empty() && true_in_deg.size() != graph.num_nodes)
        return false;
    if (!true_out_deg.empty() && true_out_deg.size() != graph.num_nodes)
        return false;
    if (num_pool_nodes > graph.num_nodes)
        return false;
    return true;
}

GraphSample
with_virtual_nodes(const GraphSample &sample, std::uint32_t count)
{
    GraphSample out = sample;
    if (out.num_pool_nodes == 0)
        out.num_pool_nodes = sample.pool_nodes();
    for (std::uint32_t i = 0; i < count; ++i) {
        GraphSample next = with_virtual_node(out);
        // Disconnect the new VN from previously added VNs: keep only
        // edges touching original nodes. with_virtual_node connected
        // it to everything, including earlier virtual nodes.
        NodeId vn = next.graph.num_nodes - 1;
        NodeId originals = out.num_pool_nodes;
        CooGraph pruned;
        pruned.num_nodes = next.graph.num_nodes;
        Matrix pruned_ef(0, 0);
        std::vector<std::size_t> kept;
        for (std::size_t e = 0; e < next.graph.num_edges(); ++e) {
            const Edge &edge = next.graph.edges[e];
            bool touches_vn = (edge.src == vn || edge.dst == vn);
            bool other_is_virtual =
                (edge.src >= originals && edge.src != vn) ||
                (edge.dst >= originals && edge.dst != vn);
            if (touches_vn && other_is_virtual)
                continue;
            pruned.edges.push_back(edge);
            kept.push_back(e);
        }
        if (next.edge_features.cols() > 0) {
            pruned_ef = Matrix(pruned.edges.size(),
                               next.edge_features.cols());
            for (std::size_t k = 0; k < kept.size(); ++k)
                for (std::size_t col = 0;
                     col < next.edge_features.cols(); ++col)
                    pruned_ef(k, col) = next.edge_features(kept[k], col);
        }
        next.graph = std::move(pruned);
        next.edge_features = std::move(pruned_ef);
        out = std::move(next);
    }
    return out;
}

GraphSample
with_virtual_node(const GraphSample &sample)
{
    GraphSample out;
    out.graph = add_virtual_node(sample.graph);
    out.num_pool_nodes = sample.pool_nodes();
    out.label = sample.label;

    out.node_features = Matrix(out.graph.num_nodes,
                               sample.node_features.cols());
    for (NodeId n = 0; n < sample.graph.num_nodes; ++n)
        for (std::size_t c = 0; c < sample.node_features.cols(); ++c)
            out.node_features(n, c) = sample.node_features(n, c);

    if (sample.edge_features.cols() > 0) {
        out.edge_features = Matrix(out.graph.num_edges(),
                                   sample.edge_features.cols());
        for (std::size_t e = 0; e < sample.graph.num_edges(); ++e)
            for (std::size_t c = 0; c < sample.edge_features.cols(); ++c)
                out.edge_features(e, c) = sample.edge_features(e, c);
    }

    if (!sample.dgn_field.empty()) {
        out.dgn_field = sample.dgn_field;
        out.dgn_field.push_back(0.0f);
    }
    return out;
}

} // namespace flowgnn
