/**
 * @file
 * Single-pass streaming vertex partitioners for power-law graphs.
 *
 * kBfsContiguous recovers locality by walking the graph, which works
 * when the graph *has* a walkable geometry (rings, lattices, meshes).
 * Power-law graphs (citation/social networks, R-MAT) do not: a BFS
 * frontier reaches most of the graph within a few hops, so contiguous
 * BFS ranks cut nearly as many edges as a random split. The streaming
 * partitioner family — one pass over the vertices, each placed by a
 * greedy score over the partitions its already-placed neighbors chose
 * — is the standard answer (Stanton & Kliot's LDG, Tsourakakis et
 * al.'s Fennel, and a vertex-partitioning transplant of HDRF's
 * degree-aware intuition).
 *
 * All three stream vertices in ascending id order (the arrival order
 * of the COO stream), are fully deterministic, and run in
 * O(E + V * P). They are exposed through ShardStrategy::{kLdg,
 * kFennel, kHdrf} so every shard consumer (make_shard_plan,
 * ShardedEngine, ShardedService, pool jobs) picks them up with zero
 * call-site changes.
 *
 * Balance: a hard per-partition capacity of
 * ceil(balance_slack * ceil(n/P)) owned vertices (default slack 1.1,
 * i.e. at most 10% over the ideal share) is never exceeded, whatever
 * the greedy scores prefer. The partitioners always emit P non-empty-
 * capable labels, but on degenerate inputs (n < P, heavy clustering
 * at tiny n) some partitions may end up owning nothing — downstream,
 * make_shard_plan drops such empty shards and plan.slices.size()
 * becomes the effective P (see shard/shard_plan.h).
 *
 * Restreaming (Nishimura & Ugander): each partitioner accepts an
 * optional `prior` assignment from an earlier pass. While streaming,
 * a neighbor not yet re-placed in the current pass contributes its
 * prior partition to the scores — so every vertex sees its *full*
 * neighborhood instead of only the prefix streamed before it, and a
 * handful of passes over the same stream order monotonically shrink
 * the cut in practice. Loads and capacities count current-pass
 * placements only, exactly as in a cold pass.
 */
#ifndef FLOWGNN_GRAPH_STREAMING_PARTITION_H
#define FLOWGNN_GRAPH_STREAMING_PARTITION_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace flowgnn {

/**
 * Symmetrized, deduplicated adjacency: each pair of distinct nodes
 * with at least one edge between them (either direction, any
 * multiplicity) appears exactly once in each endpoint's neighbor
 * list; self-loops are dropped. Neighbor lists keep first-occurrence
 * order (the order the edge stream first mentions each pair), so
 * consumers that iterate them — BFS renumbering, the streaming
 * scores — behave identically on a multigraph and on its underlying
 * simple graph. degree(v) is therefore the number of *distinct*
 * neighbors, the quantity the degree-aware scores need (a parallel
 * edge must not count a neighbor twice).
 */
struct UndirectedCsr {
    std::vector<std::size_t> offsets; ///< size num_nodes + 1
    std::vector<NodeId> nbr;

    NodeId
    num_nodes() const
    {
        return offsets.empty()
            ? 0
            : static_cast<NodeId>(offsets.size() - 1);
    }

    std::size_t row_begin(NodeId v) const { return offsets[v]; }
    std::size_t row_end(NodeId v) const { return offsets[v + 1]; }

    /** Number of distinct neighbors (self excluded). */
    std::uint32_t
    degree(NodeId v) const
    {
        return static_cast<std::uint32_t>(row_end(v) - row_begin(v));
    }
};

/** Builds the symmetrized simple adjacency of a (multi)graph. */
UndirectedCsr build_undirected_csr(const CooGraph &graph);

/**
 * Same build from any edge view — including mmap-backed FGNB columns —
 * parallelized across host cores (threads 0 = all): per-thread-range
 * symmetrized counts with a prefix-sum merge in thread order, a
 * parallel stable fill, then per-row dedupe on disjoint row ranges.
 * Bit-identical to the serial build for every thread count.
 */
UndirectedCsr build_undirected_csr(const GraphRef &graph,
                                   unsigned threads = 0);

/** Tuning knobs shared by the streaming partitioners. Defaults follow
 * the literature; shard_assignment uses them as-is. */
struct StreamingPartitionConfig {
    /**
     * Hard per-partition capacity as a multiple of the ideal share
     * ceil(n/P) (Fennel's nu). No partition ever exceeds
     * ceil(slack * ceil(n/P)) owned nodes, bounding load imbalance
     * regardless of what the greedy scores prefer.
     */
    double balance_slack = 1.1;
    /** Fennel cost exponent gamma in alpha * |S|^gamma. */
    double fennel_gamma = 1.5;
    /** Weight of the HDRF balance term against its neighbor score. */
    double hdrf_lambda = 1.0;
};

/**
 * Linear Deterministic Greedy (Stanton & Kliot): place v on the
 * partition maximizing |N(v) ∩ S_p| * (1 - |S_p| / C) with
 * C = ceil(n/P). The multiplicative penalty interpolates between
 * pure neighbor-chasing (empty partitions) and pure balancing (full
 * ones). Ties break to the least-loaded, then lowest-index partition,
 * so neighborless vertices (including every vertex of an edgeless
 * graph) spread round-robin instead of collapsing onto partition 0.
 *
 * @return partition id per node, each in [0, num_partitions)
 */
std::vector<std::uint32_t>
ldg_partition(const CooGraph &graph, std::uint32_t num_partitions,
              const StreamingPartitionConfig &config = {},
              const std::vector<std::uint32_t> *prior = nullptr);

/**
 * Adjacency-reusing overload: the stream itself is inherently serial,
 * but build_undirected_csr dominates a cold pass — callers that
 * restream (shard_plan_assignment) or try several strategies build
 * the adjacency once (possibly in parallel, possibly from an mmap
 * view) and pass it to every pass. Identical output to the CooGraph
 * overload on the same graph.
 */
std::vector<std::uint32_t>
ldg_partition(const UndirectedCsr &adj, std::uint32_t num_partitions,
              const StreamingPartitionConfig &config = {},
              const std::vector<std::uint32_t> *prior = nullptr);

/**
 * Fennel (Tsourakakis et al.): place v on the partition maximizing
 * |N(v) ∩ S_p| - alpha * gamma * |S_p|^(gamma-1), the marginal gain
 * of the interpolated objective (edges cut + alpha * sum |S_p|^gamma)
 * with the standard alpha = m * P^(gamma-1) / n^gamma. Compared to
 * LDG's hard interpolation, the additive penalty lets a partition
 * keep attracting a vertex with many neighbors there even when
 * slightly over the ideal share — usually the best cut of the family
 * on power-law graphs.
 */
std::vector<std::uint32_t>
fennel_partition(const CooGraph &graph, std::uint32_t num_partitions,
                 const StreamingPartitionConfig &config = {},
                 const std::vector<std::uint32_t> *prior = nullptr);

/** Adjacency-reusing overload; see ldg_partition(UndirectedCsr). */
std::vector<std::uint32_t>
fennel_partition(const UndirectedCsr &adj, std::uint32_t num_partitions,
                 const StreamingPartitionConfig &config = {},
                 const std::vector<std::uint32_t> *prior = nullptr);

/**
 * Degree-aware greedy in the spirit of HDRF (Petroni et al.). HDRF is
 * an edge partitioner that prefers replicating its highest-degree
 * endpoint (hubs are replicated anyway; tails are not). Transplanted
 * to vertex placement: a neighbor u already on partition p pulls v
 * with weight 2 - d(u) / (d(u) + d(v)) — low-degree neighbors pull
 * harder than hubs, keeping tail clusters intact while hub edges
 * (which some partition must cut regardless) are ceded — plus
 * lambda * (maxload - load_p) / (1 + maxload - minload), HDRF's
 * normalized balance term. Degrees are distinct-neighbor counts
 * (see UndirectedCsr), so multi-edges do not inflate a hub's pull.
 */
std::vector<std::uint32_t>
hdrf_partition(const CooGraph &graph, std::uint32_t num_partitions,
               const StreamingPartitionConfig &config = {},
               const std::vector<std::uint32_t> *prior = nullptr);

/** Adjacency-reusing overload; see ldg_partition(UndirectedCsr). */
std::vector<std::uint32_t>
hdrf_partition(const UndirectedCsr &adj, std::uint32_t num_partitions,
               const StreamingPartitionConfig &config = {},
               const std::vector<std::uint32_t> *prior = nullptr);

} // namespace flowgnn

#endif // FLOWGNN_GRAPH_STREAMING_PARTITION_H
