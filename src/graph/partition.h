/**
 * @file
 * Destination-bank assignment, workload-imbalance analysis, and
 * multi-die shard partitioning.
 *
 * FlowGNN assigns each edge to the MP unit that owns the edge's
 * destination node (dest_id % Pedge). Because this is a fixed modular
 * hash requiring zero pre-processing, workloads can be imbalanced;
 * Table VII of the paper quantifies this. This module implements the
 * assignment and the paper's imbalance metric.
 *
 * The same node-to-owner machinery generalizes one level up: a graph
 * too large for one die's buffers is split into shards, each owned by
 * one accelerator die. The shard-level helpers here provide the
 * assignment strategies, the cut metrics that predict inter-die
 * traffic, and the L-hop halo extraction that makes shard-local
 * recomputation exact for owned nodes (see src/shard/).
 */
#ifndef FLOWGNN_GRAPH_PARTITION_H
#define FLOWGNN_GRAPH_PARTITION_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace flowgnn {

struct UndirectedCsr;

/** MP unit (bank) owning a destination node, given Pedge units.
 * Throws std::invalid_argument when p_edge is 0 — the public entry
 * point would otherwise divide by zero. */
inline std::uint32_t
dest_bank(NodeId dst, std::uint32_t p_edge)
{
    if (p_edge == 0)
        throw std::invalid_argument("dest_bank: p_edge must be > 0");
    return dst % p_edge;
}

/** Number of edges assigned to each of p_edge MP units. */
std::vector<std::size_t> bank_edge_counts(const CooGraph &graph,
                                          std::uint32_t p_edge);

/**
 * Paper Table VII imbalance metric: the largest difference in edge
 * workload between any two MP units, as a fraction of the total
 * workload (0 = perfectly balanced, 1 = one unit does everything).
 */
double workload_imbalance(const CooGraph &graph, std::uint32_t p_edge);

/** Same metric computed from precomputed per-bank counts. */
double workload_imbalance(const std::vector<std::size_t> &counts);

/**
 * Greedy least-loaded destination-bank assignment: nodes are visited
 * in decreasing in-degree order and each is placed on the currently
 * lightest bank.
 *
 * This requires a pre-pass over the edge list — exactly the kind of
 * pre-processing FlowGNN's modular hash avoids — and exists as the
 * ablation for the paper's stated future work on workload imbalance
 * (Sec. VI-E: "we will consider improvements in future work").
 *
 * @return bank id per node, each in [0, p_edge)
 */
std::vector<std::uint32_t>
balanced_bank_assignment(const CooGraph &graph, std::uint32_t p_edge);

/** Edge-view overload (mmap-backed graphs): the degree count runs on
 * `threads` host cores (0 = all); the greedy pass itself is serial.
 * Identical output to the CooGraph overload. */
std::vector<std::uint32_t>
balanced_bank_assignment(const GraphRef &graph, std::uint32_t p_edge,
                         unsigned threads = 0);

/** Per-bank edge counts under an explicit node->bank assignment. */
std::vector<std::size_t>
bank_edge_counts(const CooGraph &graph,
                 const std::vector<std::uint32_t> &assignment,
                 std::uint32_t p_edge);

// ---- Multi-die shard partitioning -------------------------------------

/**
 * How nodes are assigned to shards (dies) for multi-die execution.
 *
 * kModulo is the shard-level analogue of the destination-bank hash:
 * zero pre-processing, but oblivious to locality, so it cuts nearly
 * every edge on graphs whose node ids carry spatial meaning.
 * kContiguous assigns equal id ranges — the right default for graphs
 * whose ids follow a spatial or crawl order (point clouds, lattices,
 * citation crawls). kGreedyBalanced reuses the in-degree-balancing
 * greedy pass from balanced_bank_assignment at shard granularity: the
 * best per-die load balance, but locality-oblivious like kModulo.
 * kBfsContiguous renumbers nodes by undirected BFS order (restarting
 * from the lowest unvisited id per component) and splits the BFS
 * ranks contiguously — a locality-recovering strategy for graphs
 * whose node ids are meaningless: neighbors get nearby ranks, so the
 * contiguous split cuts only frontier edges. The BFS walks the
 * symmetrized *simple* adjacency (self-loops and parallel edges
 * deduplicated, see build_undirected_csr), so a multigraph partitions
 * exactly like its underlying simple graph.
 *
 * kLdg, kFennel, and kHdrf are the single-pass streaming vertex
 * partitioners (graph/streaming_partition.h) for power-law graphs,
 * where BFS ranks order poorly (a few hops reach everything): each
 * vertex is placed greedily by where its already-placed neighbors
 * went, under a hard per-shard capacity. kLdg uses a multiplicative
 * fill penalty, kFennel an additive alpha*|S|^gamma marginal cost
 * (usually the best cut on power-law graphs), kHdrf a degree-aware
 * pull that keeps low-degree tails together and cedes hub edges.
 *
 * Splitting strategies (kContiguous, kBfsContiguous) use balanced
 * ranges: shard sizes differ by at most one node, and when
 * num_shards > num_nodes exactly num_nodes shards own one node each
 * (the rest own nothing and are dropped by make_shard_plan).
 */
enum class ShardStrategy {
    kModulo,
    kContiguous,
    kGreedyBalanced,
    kBfsContiguous,
    kLdg,
    kFennel,
    kHdrf,
};

/** Human-readable strategy name. */
const char *shard_strategy_name(ShardStrategy strategy);

/**
 * Inverse of shard_strategy_name (exact match, e.g. "fennel",
 * "bfs-contiguous"). Throws std::invalid_argument listing the valid
 * names — the parse entry point for --strategy command-line flags.
 */
ShardStrategy shard_strategy_from_name(const std::string &name);

/** Node -> shard owner map, each entry in [0, num_shards). */
std::vector<std::uint32_t> shard_assignment(const CooGraph &graph,
                                            std::uint32_t num_shards,
                                            ShardStrategy strategy);

/**
 * Restreaming overload (Nishimura & Ugander): re-runs the streaming
 * strategies (kLdg/kFennel/kHdrf) with `prior` — a previous pass's
 * assignment — feeding the scores of not-yet-re-placed neighbors, so
 * every vertex is scored against its full neighborhood. Non-streaming
 * strategies are unaffected by the prior and return the same
 * assignment as the prior-free overload.
 */
std::vector<std::uint32_t>
shard_assignment(const CooGraph &graph, std::uint32_t num_shards,
                 ShardStrategy strategy,
                 const std::vector<std::uint32_t> &prior);

/**
 * The canonical assignment entry point, shared by both overloads
 * above (via GraphRef's zero-copy CooGraph view) and by mmap-backed
 * graphs. Optional knobs for the heavy strategies:
 *
 *  - `prior`: restreaming prior for kLdg/kFennel/kHdrf (null = cold
 *    pass; ignored by non-streaming strategies).
 *  - `adj`: a prebuilt symmetrized simple adjacency
 *    (build_undirected_csr) consumed by kBfsContiguous and the
 *    streaming strategies. Callers that restream or compare
 *    strategies build it once instead of once per pass; null = built
 *    internally when needed.
 *  - `threads`: host cores for the internal adjacency/degree builds
 *    (0 = all). Output is identical for every value.
 */
std::vector<std::uint32_t>
shard_assignment(const GraphRef &graph, std::uint32_t num_shards,
                 ShardStrategy strategy,
                 const std::vector<std::uint32_t> *prior = nullptr,
                 const UndirectedCsr *adj = nullptr,
                 unsigned threads = 0);

/** Number of edges whose endpoints live on different shards. */
std::size_t shard_cut_edges(const CooGraph &graph,
                            const std::vector<std::uint32_t> &assignment);

/** Edge-view overload, counted on `threads` host cores (0 = all). */
std::size_t shard_cut_edges(const GraphRef &graph,
                            const std::vector<std::uint32_t> &assignment,
                            unsigned threads = 0);

/** Cut edges as a fraction of all edges (0 = no inter-die traffic). */
double shard_cut_fraction(const CooGraph &graph,
                          const std::vector<std::uint32_t> &assignment);

/**
 * The `hops`-hop in-neighborhood closure of the given shard's owned
 * node set: owned nodes plus every node whose features can reach an
 * owned node within `hops` message-passing layers. Running the model
 * on the subgraph induced by this closure reproduces the full-graph
 * embeddings of the owned nodes exactly.
 *
 * Returned in ascending global id order, which preserves the engine's
 * src-major message-arrival order — the property that makes
 * single-NT-unit sharded runs bit-identical to unsharded runs.
 */
std::vector<NodeId>
shard_closure(const CscGraph &in_adjacency,
              const std::vector<std::uint32_t> &assignment,
              std::uint32_t shard, std::uint32_t hops);

/** Convenience overload that builds the in-adjacency internally. */
std::vector<NodeId>
shard_closure(const CooGraph &graph,
              const std::vector<std::uint32_t> &assignment,
              std::uint32_t shard, std::uint32_t hops);

/** Edge-view overload: the in-adjacency is built from the view on
 * `threads` host cores (0 = all). Callers extracting many shards
 * should build one CscGraph(GraphRef) and use the overload above. */
std::vector<NodeId>
shard_closure(const GraphRef &graph,
              const std::vector<std::uint32_t> &assignment,
              std::uint32_t shard, std::uint32_t hops,
              unsigned threads = 0);

/**
 * Average number of copies of each node across all shard closures
 * (>= 1; 1 means no replication at all). The memory-overhead metric
 * of vertex-cut partitioning literature, applied to halo replication.
 */
double shard_replication_factor(const CooGraph &graph,
                                const std::vector<std::uint32_t> &assignment,
                                std::uint32_t num_shards,
                                std::uint32_t hops);

} // namespace flowgnn

#endif // FLOWGNN_GRAPH_PARTITION_H
