/**
 * @file
 * Destination-bank assignment and workload-imbalance analysis.
 *
 * FlowGNN assigns each edge to the MP unit that owns the edge's
 * destination node (dest_id % Pedge). Because this is a fixed modular
 * hash requiring zero pre-processing, workloads can be imbalanced;
 * Table VII of the paper quantifies this. This module implements the
 * assignment and the paper's imbalance metric.
 */
#ifndef FLOWGNN_GRAPH_PARTITION_H
#define FLOWGNN_GRAPH_PARTITION_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace flowgnn {

/** MP unit (bank) owning a destination node, given Pedge units. */
inline std::uint32_t
dest_bank(NodeId dst, std::uint32_t p_edge)
{
    return dst % p_edge;
}

/** Number of edges assigned to each of p_edge MP units. */
std::vector<std::size_t> bank_edge_counts(const CooGraph &graph,
                                          std::uint32_t p_edge);

/**
 * Paper Table VII imbalance metric: the largest difference in edge
 * workload between any two MP units, as a fraction of the total
 * workload (0 = perfectly balanced, 1 = one unit does everything).
 */
double workload_imbalance(const CooGraph &graph, std::uint32_t p_edge);

/** Same metric computed from precomputed per-bank counts. */
double workload_imbalance(const std::vector<std::size_t> &counts);

/**
 * Greedy least-loaded destination-bank assignment: nodes are visited
 * in decreasing in-degree order and each is placed on the currently
 * lightest bank.
 *
 * This requires a pre-pass over the edge list — exactly the kind of
 * pre-processing FlowGNN's modular hash avoids — and exists as the
 * ablation for the paper's stated future work on workload imbalance
 * (Sec. VI-E: "we will consider improvements in future work").
 *
 * @return bank id per node, each in [0, p_edge)
 */
std::vector<std::uint32_t>
balanced_bank_assignment(const CooGraph &graph, std::uint32_t p_edge);

/** Per-bank edge counts under an explicit node->bank assignment. */
std::vector<std::size_t>
bank_edge_counts(const CooGraph &graph,
                 const std::vector<std::uint32_t> &assignment,
                 std::uint32_t p_edge);

} // namespace flowgnn

#endif // FLOWGNN_GRAPH_PARTITION_H
