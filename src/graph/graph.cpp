#include "graph/graph.h"

#include <stdexcept>

namespace flowgnn {

std::vector<std::uint32_t>
CooGraph::out_degrees() const
{
    std::vector<std::uint32_t> deg(num_nodes, 0);
    for (const auto &e : edges)
        ++deg[e.src];
    return deg;
}

std::vector<std::uint32_t>
CooGraph::in_degrees() const
{
    std::vector<std::uint32_t> deg(num_nodes, 0);
    for (const auto &e : edges)
        ++deg[e.dst];
    return deg;
}

bool
CooGraph::valid() const
{
    for (const auto &e : edges)
        if (e.src >= num_nodes || e.dst >= num_nodes)
            return false;
    return true;
}

CooGraph
CooGraph::with_reverse_edges() const
{
    CooGraph out;
    out.num_nodes = num_nodes;
    out.edges.reserve(edges.size() * 2);
    out.edges = edges;
    for (const auto &e : edges)
        out.edges.push_back({e.dst, e.src});
    return out;
}

namespace {

void
check_valid(const CooGraph &coo, const char *what)
{
    if (!coo.valid())
        throw std::invalid_argument(std::string(what) +
                                    ": edge endpoint out of range");
}

} // namespace

CsrGraph::CsrGraph(const CooGraph &coo) : num_nodes_(coo.num_nodes)
{
    check_valid(coo, "CsrGraph");
    offsets_.assign(num_nodes_ + 1, 0);
    for (const auto &e : coo.edges)
        ++offsets_[e.src + 1];
    for (NodeId n = 0; n < num_nodes_; ++n)
        offsets_[n + 1] += offsets_[n];
    dst_.resize(coo.edges.size());
    edge_id_.resize(coo.edges.size());
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (EdgeId i = 0; i < coo.edges.size(); ++i) {
        const auto &e = coo.edges[i];
        std::size_t slot = cursor[e.src]++;
        dst_[slot] = e.dst;
        edge_id_[slot] = i;
    }
}

CscGraph::CscGraph(const CooGraph &coo) : num_nodes_(coo.num_nodes)
{
    check_valid(coo, "CscGraph");
    offsets_.assign(num_nodes_ + 1, 0);
    for (const auto &e : coo.edges)
        ++offsets_[e.dst + 1];
    for (NodeId n = 0; n < num_nodes_; ++n)
        offsets_[n + 1] += offsets_[n];
    src_.resize(coo.edges.size());
    edge_id_.resize(coo.edges.size());
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (EdgeId i = 0; i < coo.edges.size(); ++i) {
        const auto &e = coo.edges[i];
        std::size_t slot = cursor[e.dst]++;
        src_[slot] = e.src;
        edge_id_[slot] = i;
    }
}

} // namespace flowgnn
