#include "graph/graph.h"

#include <stdexcept>
#include <string>

#include "core/parallel.h"

namespace flowgnn {

std::vector<std::uint32_t>
CooGraph::out_degrees() const
{
    return GraphRef(*this).out_degrees(1);
}

std::vector<std::uint32_t>
CooGraph::in_degrees() const
{
    return GraphRef(*this).in_degrees(1);
}

bool
CooGraph::valid() const
{
    return GraphRef(*this).valid(1);
}

CooGraph
CooGraph::with_reverse_edges() const
{
    CooGraph out;
    out.num_nodes = num_nodes;
    out.edges.reserve(edges.size() * 2);
    out.edges = edges;
    for (const auto &e : edges)
        out.edges.push_back({e.dst, e.src});
    return out;
}

namespace {

/**
 * Per-endpoint counts for a GraphRef: per-thread-range count arrays
 * merged in thread order, so the result is bit-identical to a serial
 * count for any thread count.
 */
std::vector<std::uint32_t>
count_endpoints(const GraphRef &g, unsigned threads, bool by_src)
{
    const NodeId n = g.num_nodes();
    const std::size_t e = g.num_edges();
    const unsigned T = parallel_range_count(e, threads);
    std::vector<std::vector<std::uint32_t>> parts(
        T, std::vector<std::uint32_t>(n, 0));
    parallel_ranges(e, threads,
                    [&](std::size_t b, std::size_t end, unsigned tid) {
                        std::vector<std::uint32_t> &c = parts[tid];
                        for (std::size_t i = b; i < end; ++i)
                            ++c[by_src ? g.src(i) : g.dst(i)];
                    });
    if (T == 1)
        return std::move(parts[0]);
    std::vector<std::uint32_t> &out = parts[0];
    parallel_ranges(n, threads,
                    [&](std::size_t b, std::size_t end, unsigned) {
                        for (std::size_t v = b; v < end; ++v)
                            for (unsigned t = 1; t < T; ++t)
                                out[v] += parts[t][v];
                    });
    return std::move(out);
}

/**
 * The shared parallel counting sort behind CsrGraph/CscGraph: group
 * edges by one endpoint (`by_src`), preserving the edge-stream order
 * within every group — per-thread-range counts, a serial prefix scan
 * interleaving (node, thread) in that order, then a parallel stable
 * fill where thread t writes its own range at precomputed cursors.
 * Bit-identical to the serial build for every thread count.
 */
void
build_adjacency(const GraphRef &g, unsigned threads, bool by_src,
                const char *what, std::vector<std::size_t> &offsets,
                std::vector<NodeId> &val, std::vector<EdgeId> &edge_id)
{
    const NodeId n = g.num_nodes();
    const std::size_t e = g.num_edges();
    const unsigned T = parallel_range_count(e, threads);

    std::vector<std::vector<std::uint32_t>> counts(
        T, std::vector<std::uint32_t>(n, 0));
    parallel_ranges(
        e, threads, [&](std::size_t b, std::size_t end, unsigned tid) {
            std::vector<std::uint32_t> &c = counts[tid];
            for (std::size_t i = b; i < end; ++i) {
                const NodeId s = g.src(i);
                const NodeId d = g.dst(i);
                if (s >= n || d >= n)
                    throw std::invalid_argument(
                        std::string(what) +
                        ": edge endpoint out of range");
                ++c[by_src ? s : d];
            }
        });

    // Prefix scan in (node, thread) order: counts[t][v] becomes the
    // first slot thread t fills for node v. Cursor values fit uint32
    // because EdgeId does.
    offsets.assign(std::size_t(n) + 1, 0);
    std::size_t running = 0;
    for (NodeId v = 0; v < n; ++v) {
        offsets[v] = running;
        for (unsigned t = 0; t < T; ++t) {
            const std::uint32_t c = counts[t][v];
            counts[t][v] = static_cast<std::uint32_t>(running);
            running += c;
        }
    }
    offsets[n] = running;

    val.resize(e);
    edge_id.resize(e);
    parallel_ranges(
        e, threads, [&](std::size_t b, std::size_t end, unsigned tid) {
            std::vector<std::uint32_t> &cur = counts[tid];
            for (std::size_t i = b; i < end; ++i) {
                const NodeId s = g.src(i);
                const NodeId d = g.dst(i);
                const std::uint32_t slot = cur[by_src ? s : d]++;
                val[slot] = by_src ? d : s;
                edge_id[slot] = static_cast<EdgeId>(i);
            }
        });
}

} // namespace

std::vector<std::uint32_t>
GraphRef::out_degrees(unsigned threads) const
{
    return count_endpoints(*this, threads, /*by_src=*/true);
}

std::vector<std::uint32_t>
GraphRef::in_degrees(unsigned threads) const
{
    return count_endpoints(*this, threads, /*by_src=*/false);
}

bool
GraphRef::valid(unsigned threads) const
{
    const std::size_t e = num_edges_;
    const unsigned T = parallel_range_count(e, threads);
    std::vector<std::uint8_t> ok(T, 1);
    parallel_ranges(e, threads,
                    [&](std::size_t b, std::size_t end, unsigned tid) {
                        for (std::size_t i = b; i < end; ++i)
                            if (src(i) >= num_nodes_ ||
                                dst(i) >= num_nodes_) {
                                ok[tid] = 0;
                                return;
                            }
                    });
    for (std::uint8_t o : ok)
        if (!o)
            return false;
    return true;
}

CsrGraph::CsrGraph(const CooGraph &coo) : CsrGraph(GraphRef(coo), 1) {}

CsrGraph::CsrGraph(const GraphRef &graph, unsigned threads)
    : num_nodes_(graph.num_nodes())
{
    build_adjacency(graph, threads, /*by_src=*/true, "CsrGraph",
                    offsets_, dst_, edge_id_);
}

CscGraph::CscGraph(const CooGraph &coo) : CscGraph(GraphRef(coo), 1) {}

CscGraph::CscGraph(const GraphRef &graph, unsigned threads)
    : num_nodes_(graph.num_nodes())
{
    build_adjacency(graph, threads, /*by_src=*/false, "CscGraph",
                    offsets_, src_, edge_id_);
}

} // namespace flowgnn
