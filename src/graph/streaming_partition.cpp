#include "graph/streaming_partition.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"

namespace flowgnn {

UndirectedCsr
build_undirected_csr(const CooGraph &graph)
{
    return build_undirected_csr(GraphRef(graph), 1);
}

UndirectedCsr
build_undirected_csr(const GraphRef &graph, unsigned threads)
{
    const NodeId n = graph.num_nodes();
    const std::size_t e = graph.num_edges();
    UndirectedCsr out;
    out.offsets.assign(std::size_t(n) + 1, 0);

    // Pass 1: symmetrized counts, duplicates included (self-loops are
    // dropped here: a node is never its own neighbor). Per-thread
    // count arrays; a non-self edge contributes one entry to each
    // endpoint's row.
    const unsigned T = parallel_range_count(e, threads);
    std::vector<std::vector<std::uint32_t>> counts(
        T, std::vector<std::uint32_t>(n, 0));
    parallel_ranges(
        e, threads, [&](std::size_t b, std::size_t end, unsigned tid) {
            std::vector<std::uint32_t> &c = counts[tid];
            for (std::size_t i = b; i < end; ++i) {
                const NodeId s = graph.src(i);
                const NodeId d = graph.dst(i);
                if (s >= n || d >= n)
                    throw std::invalid_argument(
                        "build_undirected_csr: edge endpoint out of "
                        "range");
                if (s == d)
                    continue;
                ++c[s];
                ++c[d];
            }
        });

    // Prefix scan in (node, thread) order: cursors[t][v] becomes the
    // first slot thread t fills in row v. The per-range fill visits
    // edges in stream order within each contiguous ascending range,
    // so concatenating ranges in thread order reproduces the serial
    // stream order exactly. Cursors are size_t: a symmetrized list
    // holds up to 2 * num_edges entries, which can exceed 32 bits.
    std::vector<std::vector<std::size_t>> cursors(T);
    std::size_t running = 0;
    for (unsigned t = 0; t < T; ++t)
        cursors[t].resize(n);
    for (NodeId v = 0; v < n; ++v) {
        out.offsets[v] = running;
        for (unsigned t = 0; t < T; ++t) {
            cursors[t][v] = running;
            running += counts[t][v];
        }
    }
    out.offsets[n] = running;
    counts.clear();
    counts.shrink_to_fit();

    out.nbr.resize(running);
    parallel_ranges(
        e, threads, [&](std::size_t b, std::size_t end, unsigned tid) {
            std::vector<std::size_t> &cur = cursors[tid];
            for (std::size_t i = b; i < end; ++i) {
                const NodeId s = graph.src(i);
                const NodeId d = graph.dst(i);
                if (s == d)
                    continue;
                out.nbr[cur[s]++] = d;
                out.nbr[cur[d]++] = s;
            }
        });
    cursors.clear();
    cursors.shrink_to_fit();

    // Pass 2: compact each row in place, keeping only the first
    // occurrence of every neighbor (order-preserving dedupe — a
    // multigraph and its simple graph yield the same rows). Rows are
    // disjoint, so threads dedupe disjoint row ranges with private
    // seen[] arrays; seen[u] holds the last row that admitted u, and
    // a thread visits its rows in ascending order, so `seen[u] == v`
    // means "already in row v".
    std::vector<std::size_t> new_len(n);
    parallel_ranges(
        n, threads, [&](std::size_t b, std::size_t end, unsigned) {
            std::vector<NodeId> seen(n, n);
            for (std::size_t v = b; v < end; ++v) {
                std::size_t w = out.offsets[v];
                for (std::size_t i = out.offsets[v];
                     i < out.offsets[v + 1]; ++i) {
                    NodeId u = out.nbr[i];
                    if (seen[u] == v)
                        continue;
                    seen[u] = static_cast<NodeId>(v);
                    out.nbr[w++] = u;
                }
                new_len[v] = w - out.offsets[v];
            }
        });

    // Serial left-shift compaction of the deduped rows (dest always
    // precedes source, so forward copies are safe).
    std::size_t w = 0;
    std::vector<std::size_t> compact_offsets(std::size_t(n) + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
        compact_offsets[v] = w;
        const std::size_t begin = out.offsets[v];
        if (w != begin)
            std::copy(out.nbr.begin() + begin,
                      out.nbr.begin() + begin + new_len[v],
                      out.nbr.begin() + w);
        w += new_len[v];
    }
    compact_offsets[n] = w;
    out.nbr.resize(w);
    out.nbr.shrink_to_fit();
    out.offsets = std::move(compact_offsets);
    return out;
}

namespace {

enum class StreamKind { kLdg, kFennel, kHdrf };

constexpr std::uint32_t kUnassigned = 0xFFFFFFFFu;

/**
 * The shared one-pass skeleton: vertices stream in ascending id
 * order; each is placed by the kind's score over the partitions its
 * already-placed distinct neighbors chose. A hard capacity
 * (balance_slack * ideal share) is never exceeded — since total
 * capacity >= n, at least one partition is always below it — and ties
 * break to the least-loaded, then lowest-index partition.
 */
std::vector<std::uint32_t>
stream_partition(const UndirectedCsr &adj, std::uint32_t num_partitions,
                 const StreamingPartitionConfig &config, StreamKind kind,
                 const std::vector<std::uint32_t> *prior)
{
    if (num_partitions == 0)
        throw std::invalid_argument(
            "stream_partition: num_partitions must be > 0");
    if (config.balance_slack < 1.0)
        throw std::invalid_argument(
            "stream_partition: balance_slack must be >= 1");

    const NodeId n = adj.num_nodes();
    if (prior != nullptr && prior->size() != n)
        throw std::invalid_argument(
            "stream_partition: prior assignment size mismatch");
    std::vector<std::uint32_t> assignment(n, 0);
    if (n == 0 || num_partitions == 1)
        return assignment;

    const std::uint32_t P = num_partitions;

    const std::size_t ideal = (std::size_t(n) + P - 1) / P;
    const std::size_t cap = std::max<std::size_t>(
        ideal,
        static_cast<std::size_t>(
            std::ceil(config.balance_slack * double(ideal))));

    // Fennel's standard alpha = m * P^(gamma-1) / n^gamma, with m the
    // number of distinct undirected edges.
    const double gamma = config.fennel_gamma;
    const double m_und = double(adj.nbr.size()) / 2.0;
    const double alpha =
        m_und * std::pow(double(P), gamma - 1.0) /
        std::pow(double(n), gamma);

    std::fill(assignment.begin(), assignment.end(), kUnassigned);
    std::vector<std::size_t> load(P, 0);
    std::vector<double> pull(P, 0.0); ///< per-partition neighbor score
    std::vector<std::uint32_t> touched;
    touched.reserve(P);

    for (NodeId v = 0; v < n; ++v) {
        const double dv = adj.degree(v);
        for (std::size_t i = adj.row_begin(v); i < adj.row_end(v);
             ++i) {
            std::uint32_t p = assignment[adj.nbr[i]];
            // Restreaming: a neighbor not yet re-placed this pass
            // contributes its prior-pass partition instead of nothing.
            if (p == kUnassigned && prior != nullptr)
                p = (*prior)[adj.nbr[i]];
            if (p == kUnassigned || p >= P)
                continue; // not yet streamed (cold pass)
            if (pull[p] == 0.0)
                touched.push_back(p);
            if (kind == StreamKind::kHdrf) {
                // Low-degree neighbors pull harder than hubs: weight
                // 2 - d(u)/(d(u)+d(v)), in (1, 2).
                const double du = adj.degree(adj.nbr[i]);
                pull[p] += 2.0 - du / (du + dv);
            } else {
                pull[p] += 1.0;
            }
        }

        double max_load = 0.0;
        double min_load = 0.0;
        if (kind == StreamKind::kHdrf) {
            auto [mn, mx] = std::minmax_element(load.begin(), load.end());
            min_load = double(*mn);
            max_load = double(*mx);
        }

        std::uint32_t best = kUnassigned;
        double best_score = 0.0;
        std::size_t best_load = 0;
        for (std::uint32_t p = 0; p < P; ++p) {
            if (load[p] >= cap)
                continue; // hard balance bound
            double score = 0.0;
            switch (kind) {
              case StreamKind::kLdg:
                score = pull[p] * (1.0 - double(load[p]) / double(ideal));
                break;
              case StreamKind::kFennel:
                score = pull[p] -
                        alpha * gamma *
                            std::pow(double(load[p]), gamma - 1.0);
                break;
              case StreamKind::kHdrf:
                score = pull[p] +
                        config.hdrf_lambda * (max_load - double(load[p])) /
                            (1.0 + max_load - min_load);
                break;
            }
            if (best == kUnassigned || score > best_score ||
                (score == best_score && load[p] < best_load)) {
                best = p;
                best_score = score;
                best_load = load[p];
            }
        }
        assignment[v] = best;
        ++load[best];

        for (std::uint32_t p : touched)
            pull[p] = 0.0;
        touched.clear();
    }
    return assignment;
}

/**
 * CooGraph front door: validates (preserving the adjacency-free early
 * returns — an edgeless request with P == 1 never pays the build),
 * builds the adjacency, and streams.
 */
std::vector<std::uint32_t>
stream_partition_coo(const CooGraph &graph,
                     std::uint32_t num_partitions,
                     const StreamingPartitionConfig &config,
                     StreamKind kind,
                     const std::vector<std::uint32_t> *prior)
{
    if (num_partitions == 0)
        throw std::invalid_argument(
            "stream_partition: num_partitions must be > 0");
    if (config.balance_slack < 1.0)
        throw std::invalid_argument(
            "stream_partition: balance_slack must be >= 1");
    if (prior != nullptr && prior->size() != graph.num_nodes)
        throw std::invalid_argument(
            "stream_partition: prior assignment size mismatch");
    if (graph.num_nodes == 0 || num_partitions == 1)
        return std::vector<std::uint32_t>(graph.num_nodes, 0);
    return stream_partition(build_undirected_csr(graph),
                            num_partitions, config, kind, prior);
}

} // namespace

std::vector<std::uint32_t>
ldg_partition(const CooGraph &graph, std::uint32_t num_partitions,
              const StreamingPartitionConfig &config,
              const std::vector<std::uint32_t> *prior)
{
    return stream_partition_coo(graph, num_partitions, config,
                                StreamKind::kLdg, prior);
}

std::vector<std::uint32_t>
ldg_partition(const UndirectedCsr &adj, std::uint32_t num_partitions,
              const StreamingPartitionConfig &config,
              const std::vector<std::uint32_t> *prior)
{
    return stream_partition(adj, num_partitions, config,
                            StreamKind::kLdg, prior);
}

std::vector<std::uint32_t>
fennel_partition(const CooGraph &graph, std::uint32_t num_partitions,
                 const StreamingPartitionConfig &config,
                 const std::vector<std::uint32_t> *prior)
{
    return stream_partition_coo(graph, num_partitions, config,
                                StreamKind::kFennel, prior);
}

std::vector<std::uint32_t>
fennel_partition(const UndirectedCsr &adj, std::uint32_t num_partitions,
                 const StreamingPartitionConfig &config,
                 const std::vector<std::uint32_t> *prior)
{
    return stream_partition(adj, num_partitions, config,
                            StreamKind::kFennel, prior);
}

std::vector<std::uint32_t>
hdrf_partition(const CooGraph &graph, std::uint32_t num_partitions,
               const StreamingPartitionConfig &config,
               const std::vector<std::uint32_t> *prior)
{
    return stream_partition_coo(graph, num_partitions, config,
                                StreamKind::kHdrf, prior);
}

std::vector<std::uint32_t>
hdrf_partition(const UndirectedCsr &adj, std::uint32_t num_partitions,
               const StreamingPartitionConfig &config,
               const std::vector<std::uint32_t> *prior)
{
    return stream_partition(adj, num_partitions, config,
                            StreamKind::kHdrf, prior);
}

} // namespace flowgnn
