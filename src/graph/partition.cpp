#include "graph/partition.h"

#include <algorithm>
#include <stdexcept>

namespace flowgnn {

std::vector<std::size_t>
bank_edge_counts(const CooGraph &graph, std::uint32_t p_edge)
{
    if (p_edge == 0)
        throw std::invalid_argument("bank_edge_counts: p_edge must be > 0");
    std::vector<std::size_t> counts(p_edge, 0);
    for (const auto &e : graph.edges)
        ++counts[dest_bank(e.dst, p_edge)];
    return counts;
}

double
workload_imbalance(const std::vector<std::size_t> &counts)
{
    if (counts.empty())
        throw std::invalid_argument("workload_imbalance: no banks");
    std::size_t total = 0;
    for (auto c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
    return static_cast<double>(*mx - *mn) / static_cast<double>(total);
}

double
workload_imbalance(const CooGraph &graph, std::uint32_t p_edge)
{
    return workload_imbalance(bank_edge_counts(graph, p_edge));
}

std::vector<std::uint32_t>
balanced_bank_assignment(const CooGraph &graph, std::uint32_t p_edge)
{
    if (p_edge == 0)
        throw std::invalid_argument(
            "balanced_bank_assignment: p_edge must be > 0");
    auto in_deg = graph.in_degrees();
    std::vector<NodeId> order(graph.num_nodes);
    for (NodeId n = 0; n < graph.num_nodes; ++n)
        order[n] = n;
    std::stable_sort(order.begin(), order.end(),
                     [&](NodeId a, NodeId b) {
                         return in_deg[a] > in_deg[b];
                     });

    std::vector<std::uint32_t> assignment(graph.num_nodes, 0);
    std::vector<std::size_t> load(p_edge, 0);
    for (NodeId n : order) {
        std::uint32_t lightest = 0;
        for (std::uint32_t b = 1; b < p_edge; ++b)
            if (load[b] < load[lightest])
                lightest = b;
        assignment[n] = lightest;
        load[lightest] += in_deg[n];
    }
    return assignment;
}

std::vector<std::size_t>
bank_edge_counts(const CooGraph &graph,
                 const std::vector<std::uint32_t> &assignment,
                 std::uint32_t p_edge)
{
    if (p_edge == 0)
        throw std::invalid_argument("bank_edge_counts: p_edge must be > 0");
    if (assignment.size() != graph.num_nodes)
        throw std::invalid_argument(
            "bank_edge_counts: assignment size mismatch");
    std::vector<std::size_t> counts(p_edge, 0);
    for (const auto &e : graph.edges) {
        std::uint32_t b = assignment[e.dst];
        if (b >= p_edge)
            throw std::invalid_argument(
                "bank_edge_counts: bank id out of range");
        ++counts[b];
    }
    return counts;
}

} // namespace flowgnn
