#include "graph/partition.h"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.h"
#include "graph/streaming_partition.h"

namespace flowgnn {

namespace {

/**
 * Owner of contiguous rank r in a balanced split of n ranks over P
 * shards: floor(r * P / n). Shard sizes differ by at most one, so no
 * shard is ever empty while another holds two or more — the ceil-chunk
 * split this replaces left trailing shards empty whenever
 * ceil(n/P) * (P-1) >= n (e.g. 9 nodes over 8 shards gave shards 0-3
 * two nodes each and shards 5-7 none). For n < P the map is strictly
 * increasing: exactly n shards own one node each.
 */
std::uint32_t
balanced_rank_owner(std::uint64_t rank, std::uint64_t n, std::uint32_t p)
{
    return static_cast<std::uint32_t>(rank * p / n);
}

/**
 * Undirected BFS renumbering over the symmetrized simple adjacency,
 * then a balanced split of the BFS ranks — the kBfsContiguous body,
 * shared by the CooGraph and GraphRef entry points so both see one
 * adjacency build. Disconnected components restart the BFS from the
 * lowest unvisited id, so every node gets a rank.
 */
std::vector<std::uint32_t>
bfs_contiguous_assignment(const UndirectedCsr &adj,
                          std::uint32_t num_shards)
{
    const NodeId n = adj.num_nodes();
    std::vector<NodeId> rank(n, 0);
    std::vector<bool> visited(n, false);
    std::vector<NodeId> queue;
    queue.reserve(n);
    NodeId next_rank = 0;
    for (NodeId seed = 0; seed < n; ++seed) {
        if (visited[seed])
            continue;
        visited[seed] = true;
        queue.push_back(seed);
        for (std::size_t head = 0; head < queue.size(); ++head) {
            NodeId v = queue[head];
            rank[v] = next_rank++;
            for (std::size_t i = adj.row_begin(v); i < adj.row_end(v);
                 ++i) {
                if (!visited[adj.nbr[i]]) {
                    visited[adj.nbr[i]] = true;
                    queue.push_back(adj.nbr[i]);
                }
            }
        }
        queue.clear();
    }

    std::vector<std::uint32_t> assignment(n);
    for (NodeId v = 0; v < n; ++v)
        assignment[v] = balanced_rank_owner(rank[v], n, num_shards);
    return assignment;
}

} // namespace

std::vector<std::size_t>
bank_edge_counts(const CooGraph &graph, std::uint32_t p_edge)
{
    if (p_edge == 0)
        throw std::invalid_argument("bank_edge_counts: p_edge must be > 0");
    std::vector<std::size_t> counts(p_edge, 0);
    for (const auto &e : graph.edges)
        ++counts[dest_bank(e.dst, p_edge)];
    return counts;
}

double
workload_imbalance(const std::vector<std::size_t> &counts)
{
    if (counts.empty())
        throw std::invalid_argument("workload_imbalance: no banks");
    std::size_t total = 0;
    for (auto c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
    return static_cast<double>(*mx - *mn) / static_cast<double>(total);
}

double
workload_imbalance(const CooGraph &graph, std::uint32_t p_edge)
{
    return workload_imbalance(bank_edge_counts(graph, p_edge));
}

std::vector<std::uint32_t>
balanced_bank_assignment(const CooGraph &graph, std::uint32_t p_edge)
{
    return balanced_bank_assignment(GraphRef(graph), p_edge, 1);
}

std::vector<std::uint32_t>
balanced_bank_assignment(const GraphRef &graph, std::uint32_t p_edge,
                         unsigned threads)
{
    if (p_edge == 0)
        throw std::invalid_argument(
            "balanced_bank_assignment: p_edge must be > 0");
    const NodeId num_nodes = graph.num_nodes();
    auto in_deg = graph.in_degrees(threads);
    std::vector<NodeId> order(num_nodes);
    for (NodeId n = 0; n < num_nodes; ++n)
        order[n] = n;
    std::stable_sort(order.begin(), order.end(),
                     [&](NodeId a, NodeId b) {
                         return in_deg[a] > in_deg[b];
                     });

    std::vector<std::uint32_t> assignment(num_nodes, 0);
    std::vector<std::size_t> load(p_edge, 0);
    for (NodeId n : order) {
        std::uint32_t lightest = 0;
        for (std::uint32_t b = 1; b < p_edge; ++b)
            if (load[b] < load[lightest])
                lightest = b;
        assignment[n] = lightest;
        load[lightest] += in_deg[n];
    }
    return assignment;
}

const char *
shard_strategy_name(ShardStrategy strategy)
{
    switch (strategy) {
      case ShardStrategy::kModulo: return "modulo";
      case ShardStrategy::kContiguous: return "contiguous";
      case ShardStrategy::kGreedyBalanced: return "greedy-balanced";
      case ShardStrategy::kBfsContiguous: return "bfs-contiguous";
      case ShardStrategy::kLdg: return "ldg";
      case ShardStrategy::kFennel: return "fennel";
      case ShardStrategy::kHdrf: return "hdrf";
    }
    return "unknown";
}

ShardStrategy
shard_strategy_from_name(const std::string &name)
{
    constexpr ShardStrategy all[] = {
        ShardStrategy::kModulo,        ShardStrategy::kContiguous,
        ShardStrategy::kGreedyBalanced, ShardStrategy::kBfsContiguous,
        ShardStrategy::kLdg,           ShardStrategy::kFennel,
        ShardStrategy::kHdrf,
    };
    std::string valid;
    for (ShardStrategy s : all) {
        if (name == shard_strategy_name(s))
            return s;
        valid += valid.empty() ? "" : ", ";
        valid += shard_strategy_name(s);
    }
    throw std::invalid_argument("unknown shard strategy '" + name +
                                "' (valid: " + valid + ")");
}

std::vector<std::uint32_t>
shard_assignment(const CooGraph &graph, std::uint32_t num_shards,
                 ShardStrategy strategy)
{
    return shard_assignment(GraphRef(graph), num_shards, strategy,
                            nullptr, nullptr, 1);
}

std::vector<std::uint32_t>
shard_assignment(const CooGraph &graph, std::uint32_t num_shards,
                 ShardStrategy strategy,
                 const std::vector<std::uint32_t> &prior)
{
    return shard_assignment(GraphRef(graph), num_shards, strategy,
                            &prior, nullptr, 1);
}

std::vector<std::uint32_t>
shard_assignment(const GraphRef &graph, std::uint32_t num_shards,
                 ShardStrategy strategy,
                 const std::vector<std::uint32_t> *prior,
                 const UndirectedCsr *adj, unsigned threads)
{
    if (num_shards == 0)
        throw std::invalid_argument(
            "shard_assignment: num_shards must be > 0");
    const NodeId num_nodes = graph.num_nodes();

    const bool streaming = strategy == ShardStrategy::kLdg ||
                           strategy == ShardStrategy::kFennel ||
                           strategy == ShardStrategy::kHdrf;
    if (streaming && prior != nullptr && prior->size() != num_nodes)
        throw std::invalid_argument(
            "stream_partition: prior assignment size mismatch");

    // The streaming strategies (the only prior-sensitive ones) and
    // kBfsContiguous consume the symmetrized simple adjacency; build
    // it lazily once so the cheap strategies never pay for it.
    UndirectedCsr built;
    auto adjacency = [&]() -> const UndirectedCsr & {
        if (adj != nullptr)
            return *adj;
        if (built.offsets.empty())
            built = build_undirected_csr(graph, threads);
        return built;
    };

    switch (strategy) {
      case ShardStrategy::kModulo: {
        std::vector<std::uint32_t> assignment(num_nodes);
        for (NodeId n = 0; n < num_nodes; ++n)
            assignment[n] = n % num_shards;
        return assignment;
      }
      case ShardStrategy::kContiguous: {
        // Balanced id ranges: sizes differ by at most one node.
        std::vector<std::uint32_t> assignment(num_nodes);
        for (NodeId n = 0; n < num_nodes; ++n)
            assignment[n] =
                balanced_rank_owner(n, num_nodes, num_shards);
        return assignment;
      }
      case ShardStrategy::kGreedyBalanced:
        return balanced_bank_assignment(graph, num_shards, threads);
      case ShardStrategy::kBfsContiguous:
        return num_nodes == 0
                   ? std::vector<std::uint32_t>()
                   : bfs_contiguous_assignment(adjacency(), num_shards);
      case ShardStrategy::kLdg:
        if (num_nodes == 0 || num_shards == 1)
            return std::vector<std::uint32_t>(num_nodes, 0);
        return ldg_partition(adjacency(), num_shards, {}, prior);
      case ShardStrategy::kFennel:
        if (num_nodes == 0 || num_shards == 1)
            return std::vector<std::uint32_t>(num_nodes, 0);
        return fennel_partition(adjacency(), num_shards, {}, prior);
      case ShardStrategy::kHdrf:
        if (num_nodes == 0 || num_shards == 1)
            return std::vector<std::uint32_t>(num_nodes, 0);
        return hdrf_partition(adjacency(), num_shards, {}, prior);
    }
    throw std::invalid_argument("shard_assignment: unknown strategy");
}

std::size_t
shard_cut_edges(const CooGraph &graph,
                const std::vector<std::uint32_t> &assignment)
{
    return shard_cut_edges(GraphRef(graph), assignment, 1);
}

std::size_t
shard_cut_edges(const GraphRef &graph,
                const std::vector<std::uint32_t> &assignment,
                unsigned threads)
{
    if (assignment.size() != graph.num_nodes())
        throw std::invalid_argument(
            "shard_cut_edges: assignment size mismatch");
    const std::size_t e = graph.num_edges();
    const unsigned T = parallel_range_count(e, threads);
    std::vector<std::size_t> partial(T, 0);
    parallel_ranges(e, threads,
                    [&](std::size_t b, std::size_t end, unsigned tid) {
                        std::size_t cut = 0;
                        for (std::size_t i = b; i < end; ++i)
                            cut += assignment[graph.src(i)] !=
                                   assignment[graph.dst(i)];
                        partial[tid] = cut;
                    });
    std::size_t cut = 0;
    for (std::size_t p : partial)
        cut += p;
    return cut;
}

double
shard_cut_fraction(const CooGraph &graph,
                   const std::vector<std::uint32_t> &assignment)
{
    if (graph.num_edges() == 0)
        return 0.0;
    return static_cast<double>(shard_cut_edges(graph, assignment)) /
           static_cast<double>(graph.num_edges());
}

std::vector<NodeId>
shard_closure(const CscGraph &in_adjacency,
              const std::vector<std::uint32_t> &assignment,
              std::uint32_t shard, std::uint32_t hops)
{
    const NodeId n = in_adjacency.num_nodes();
    if (assignment.size() != n)
        throw std::invalid_argument(
            "shard_closure: assignment size mismatch");

    std::vector<bool> included(n, false);
    std::vector<NodeId> frontier;
    for (NodeId v = 0; v < n; ++v) {
        if (assignment[v] == shard) {
            included[v] = true;
            frontier.push_back(v);
        }
    }
    // Backward BFS: layer l of the model needs layer l-1 embeddings of
    // in-neighbors, so `hops` levels of in-neighbors suffice.
    std::vector<NodeId> next;
    for (std::uint32_t h = 0; h < hops && !frontier.empty(); ++h) {
        next.clear();
        for (NodeId v : frontier) {
            for (std::size_t s = in_adjacency.col_begin(v);
                 s < in_adjacency.col_end(v); ++s) {
                NodeId src = in_adjacency.src(s);
                if (!included[src]) {
                    included[src] = true;
                    next.push_back(src);
                }
            }
        }
        std::swap(frontier, next);
    }

    std::vector<NodeId> closure;
    for (NodeId v = 0; v < n; ++v)
        if (included[v])
            closure.push_back(v);
    return closure;
}

std::vector<NodeId>
shard_closure(const CooGraph &graph,
              const std::vector<std::uint32_t> &assignment,
              std::uint32_t shard, std::uint32_t hops)
{
    return shard_closure(CscGraph(graph), assignment, shard, hops);
}

std::vector<NodeId>
shard_closure(const GraphRef &graph,
              const std::vector<std::uint32_t> &assignment,
              std::uint32_t shard, std::uint32_t hops, unsigned threads)
{
    return shard_closure(CscGraph(graph, threads), assignment, shard,
                         hops);
}

double
shard_replication_factor(const CooGraph &graph,
                         const std::vector<std::uint32_t> &assignment,
                         std::uint32_t num_shards, std::uint32_t hops)
{
    if (graph.num_nodes == 0)
        return 1.0;
    CscGraph csc(graph);
    std::size_t copies = 0;
    for (std::uint32_t s = 0; s < num_shards; ++s)
        copies += shard_closure(csc, assignment, s, hops).size();
    return static_cast<double>(copies) /
           static_cast<double>(graph.num_nodes);
}

std::vector<std::size_t>
bank_edge_counts(const CooGraph &graph,
                 const std::vector<std::uint32_t> &assignment,
                 std::uint32_t p_edge)
{
    if (p_edge == 0)
        throw std::invalid_argument("bank_edge_counts: p_edge must be > 0");
    if (assignment.size() != graph.num_nodes)
        throw std::invalid_argument(
            "bank_edge_counts: assignment size mismatch");
    std::vector<std::size_t> counts(p_edge, 0);
    for (const auto &e : graph.edges) {
        std::uint32_t b = assignment[e.dst];
        if (b >= p_edge)
            throw std::invalid_argument(
                "bank_edge_counts: bank id out of range");
        ++counts[b];
    }
    return counts;
}

} // namespace flowgnn
