/**
 * @file
 * Spectral utilities: approximate Fiedler vector of the graph
 * Laplacian, used as the directional field for DGN layers.
 *
 * The DGN paper takes the first non-trivial eigenvector of the graph
 * Laplacian as the directional flow. We compute it with deflated power
 * iteration on (2*d_max*I - L), which is exact in the limit and more
 * than adequate as a flow field for the architecture evaluation.
 */
#ifndef FLOWGNN_GRAPH_SPECTRAL_H
#define FLOWGNN_GRAPH_SPECTRAL_H

#include "graph/graph.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace flowgnn {

/**
 * Approximate Fiedler (second-smallest Laplacian eigenvalue)
 * eigenvector, treating the graph as undirected. Returns a unit-norm
 * vector orthogonal to the constant vector.
 *
 * @param graph        input graph (edge directions ignored)
 * @param rng          source of the random starting vector
 * @param iterations   power-iteration steps (default converges well
 *                     for the graph sizes used in the paper)
 */
Vec fiedler_vector(const CooGraph &graph, Rng &rng,
                   std::uint32_t iterations = 50);

} // namespace flowgnn

#endif // FLOWGNN_GRAPH_SPECTRAL_H
