/**
 * @file
 * Graph representations used by FlowGNN.
 *
 * Graphs arrive at the accelerator as raw COO edge lists ("streamed in
 * consecutively ... in raw edge-list format with zero CPU
 * intervention", paper Sec. VI-A). The engine converts them on the fly
 * to CSR (for the NT-to-MP / scatter dataflow) or CSC (for the
 * MP-to-NT / gather dataflow, used by GAT). No pre-processing of any
 * kind (no reordering, no partition analysis) is performed, matching
 * the paper's workload-agnostic requirement.
 */
#ifndef FLOWGNN_GRAPH_GRAPH_H
#define FLOWGNN_GRAPH_GRAPH_H

#include <cstdint>
#include <vector>

namespace flowgnn {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/** A directed edge from src to dst with an attached attribute index. */
struct Edge {
    NodeId src;
    NodeId dst;

    bool operator==(const Edge &other) const = default;
};

/**
 * Raw COO (coordinate / edge-list) graph, the streaming wire format.
 *
 * Edge i's attributes (if any) live at row i of the sample's
 * edge-feature matrix, so edge identity is positional.
 */
struct CooGraph {
    NodeId num_nodes = 0;
    std::vector<Edge> edges;

    std::size_t num_edges() const { return edges.size(); }

    /** Out-degree of every node. */
    std::vector<std::uint32_t> out_degrees() const;

    /** In-degree of every node. */
    std::vector<std::uint32_t> in_degrees() const;

    /** True if every endpoint is < num_nodes. */
    bool valid() const;

    /**
     * Returns a copy with reverse edges appended (making the edge set
     * symmetric). Reverse of edge i is edge num_edges()+i, so edge
     * features can be mirrored positionally.
     */
    CooGraph with_reverse_edges() const;
};

/**
 * Non-owning view of an edge list, the common currency of every host
 * hot path (CSR builds, partitioners, closure extraction, plan
 * construction). Two backings share one accessor surface:
 *
 *  - array-of-structs: a CooGraph's Edge vector (in-memory samples),
 *  - columnar: separate src[]/dst[] arrays — exactly the FGNB file's
 *    section layout, so an mmap-backed io::GraphView hands out a
 *    GraphRef over the mapped columns and a graph larger than RAM
 *    streams through the hot paths without ever materializing Edge
 *    structs (see docs/DESIGN.md, "Out-of-core GraphView").
 *
 * The view borrows: the backing (CooGraph or mapped file) must outlive
 * every use.
 */
class GraphRef
{
  public:
    GraphRef() = default;
    /** View over an in-memory COO graph. */
    GraphRef(const CooGraph &coo)
        : num_nodes_(coo.num_nodes), num_edges_(coo.edges.size()),
          aos_(coo.edges.data())
    {
    }
    /** View over columnar src[]/dst[] arrays (each `num_edges` long). */
    GraphRef(NodeId num_nodes, std::size_t num_edges,
             const std::uint32_t *src, const std::uint32_t *dst)
        : num_nodes_(num_nodes), num_edges_(num_edges), col_src_(src),
          col_dst_(dst)
    {
    }

    NodeId num_nodes() const { return num_nodes_; }
    std::size_t num_edges() const { return num_edges_; }

    NodeId src(std::size_t i) const
    {
        return aos_ ? aos_[i].src : col_src_[i];
    }
    NodeId dst(std::size_t i) const
    {
        return aos_ ? aos_[i].dst : col_dst_[i];
    }

    /** Out-degree of every node (parallel, bit-identical to serial;
     * threads 0 = all host cores). */
    std::vector<std::uint32_t> out_degrees(unsigned threads = 0) const;
    /** In-degree of every node (parallel, bit-identical to serial). */
    std::vector<std::uint32_t> in_degrees(unsigned threads = 0) const;

    /** True if every endpoint is < num_nodes (parallel scan). */
    bool valid(unsigned threads = 0) const;

  private:
    NodeId num_nodes_ = 0;
    std::size_t num_edges_ = 0;
    const Edge *aos_ = nullptr;
    const std::uint32_t *col_src_ = nullptr;
    const std::uint32_t *col_dst_ = nullptr;
};

/**
 * CSR adjacency: for each source node, the list of (dst, edge_id)
 * pairs. Built on the fly per graph; used by the scatter phase.
 */
class CsrGraph
{
  public:
    CsrGraph() = default;
    explicit CsrGraph(const CooGraph &coo);
    /**
     * Builds from any edge view — including mmap-backed columns — with
     * a thread-parallel counting sort (per-thread-range degree counts,
     * prefix-sum merge in thread order, per-range stable fill). The
     * result is bit-identical to the serial build for every thread
     * count; threads 0 = all host cores.
     */
    explicit CsrGraph(const GraphRef &graph, unsigned threads = 0);

    NodeId num_nodes() const { return num_nodes_; }
    std::size_t num_edges() const { return dst_.size(); }

    /** Begin offset of node n's out-edges. */
    std::size_t row_begin(NodeId n) const { return offsets_[n]; }
    /** End offset of node n's out-edges. */
    std::size_t row_end(NodeId n) const { return offsets_[n + 1]; }

    NodeId dst(std::size_t i) const { return dst_[i]; }
    /** Original COO edge index of adjacency slot i. */
    EdgeId edge_id(std::size_t i) const { return edge_id_[i]; }

    std::uint32_t out_degree(NodeId n) const
    {
        return static_cast<std::uint32_t>(row_end(n) - row_begin(n));
    }

  private:
    NodeId num_nodes_ = 0;
    std::vector<std::size_t> offsets_; ///< size num_nodes+1
    std::vector<NodeId> dst_;
    std::vector<EdgeId> edge_id_;
};

/**
 * CSC adjacency: for each destination node, the list of
 * (src, edge_id) pairs. Used by the gather-first (MP-to-NT) dataflow.
 */
class CscGraph
{
  public:
    CscGraph() = default;
    explicit CscGraph(const CooGraph &coo);
    /** Parallel build from any edge view; see CsrGraph(GraphRef). */
    explicit CscGraph(const GraphRef &graph, unsigned threads = 0);

    NodeId num_nodes() const { return num_nodes_; }
    std::size_t num_edges() const { return src_.size(); }

    std::size_t col_begin(NodeId n) const { return offsets_[n]; }
    std::size_t col_end(NodeId n) const { return offsets_[n + 1]; }

    NodeId src(std::size_t i) const { return src_[i]; }
    EdgeId edge_id(std::size_t i) const { return edge_id_[i]; }

    std::uint32_t in_degree(NodeId n) const
    {
        return static_cast<std::uint32_t>(col_end(n) - col_begin(n));
    }

  private:
    NodeId num_nodes_ = 0;
    std::vector<std::size_t> offsets_;
    std::vector<NodeId> src_;
    std::vector<EdgeId> edge_id_;
};

} // namespace flowgnn

#endif // FLOWGNN_GRAPH_GRAPH_H
