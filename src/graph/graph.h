/**
 * @file
 * Graph representations used by FlowGNN.
 *
 * Graphs arrive at the accelerator as raw COO edge lists ("streamed in
 * consecutively ... in raw edge-list format with zero CPU
 * intervention", paper Sec. VI-A). The engine converts them on the fly
 * to CSR (for the NT-to-MP / scatter dataflow) or CSC (for the
 * MP-to-NT / gather dataflow, used by GAT). No pre-processing of any
 * kind (no reordering, no partition analysis) is performed, matching
 * the paper's workload-agnostic requirement.
 */
#ifndef FLOWGNN_GRAPH_GRAPH_H
#define FLOWGNN_GRAPH_GRAPH_H

#include <cstdint>
#include <vector>

namespace flowgnn {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/** A directed edge from src to dst with an attached attribute index. */
struct Edge {
    NodeId src;
    NodeId dst;

    bool operator==(const Edge &other) const = default;
};

/**
 * Raw COO (coordinate / edge-list) graph, the streaming wire format.
 *
 * Edge i's attributes (if any) live at row i of the sample's
 * edge-feature matrix, so edge identity is positional.
 */
struct CooGraph {
    NodeId num_nodes = 0;
    std::vector<Edge> edges;

    std::size_t num_edges() const { return edges.size(); }

    /** Out-degree of every node. */
    std::vector<std::uint32_t> out_degrees() const;

    /** In-degree of every node. */
    std::vector<std::uint32_t> in_degrees() const;

    /** True if every endpoint is < num_nodes. */
    bool valid() const;

    /**
     * Returns a copy with reverse edges appended (making the edge set
     * symmetric). Reverse of edge i is edge num_edges()+i, so edge
     * features can be mirrored positionally.
     */
    CooGraph with_reverse_edges() const;
};

/**
 * CSR adjacency: for each source node, the list of (dst, edge_id)
 * pairs. Built on the fly per graph; used by the scatter phase.
 */
class CsrGraph
{
  public:
    CsrGraph() = default;
    explicit CsrGraph(const CooGraph &coo);

    NodeId num_nodes() const { return num_nodes_; }
    std::size_t num_edges() const { return dst_.size(); }

    /** Begin offset of node n's out-edges. */
    std::size_t row_begin(NodeId n) const { return offsets_[n]; }
    /** End offset of node n's out-edges. */
    std::size_t row_end(NodeId n) const { return offsets_[n + 1]; }

    NodeId dst(std::size_t i) const { return dst_[i]; }
    /** Original COO edge index of adjacency slot i. */
    EdgeId edge_id(std::size_t i) const { return edge_id_[i]; }

    std::uint32_t out_degree(NodeId n) const
    {
        return static_cast<std::uint32_t>(row_end(n) - row_begin(n));
    }

  private:
    NodeId num_nodes_ = 0;
    std::vector<std::size_t> offsets_; ///< size num_nodes+1
    std::vector<NodeId> dst_;
    std::vector<EdgeId> edge_id_;
};

/**
 * CSC adjacency: for each destination node, the list of
 * (src, edge_id) pairs. Used by the gather-first (MP-to-NT) dataflow.
 */
class CscGraph
{
  public:
    CscGraph() = default;
    explicit CscGraph(const CooGraph &coo);

    NodeId num_nodes() const { return num_nodes_; }
    std::size_t num_edges() const { return src_.size(); }

    std::size_t col_begin(NodeId n) const { return offsets_[n]; }
    std::size_t col_end(NodeId n) const { return offsets_[n + 1]; }

    NodeId src(std::size_t i) const { return src_[i]; }
    EdgeId edge_id(std::size_t i) const { return edge_id_[i]; }

    std::uint32_t in_degree(NodeId n) const
    {
        return static_cast<std::uint32_t>(col_end(n) - col_begin(n));
    }

  private:
    NodeId num_nodes_ = 0;
    std::vector<std::size_t> offsets_;
    std::vector<NodeId> src_;
    std::vector<EdgeId> edge_id_;
};

} // namespace flowgnn

#endif // FLOWGNN_GRAPH_GRAPH_H
