/**
 * @file
 * Random graph generators for synthetic workloads.
 *
 * The paper evaluates on molecular graphs (MolHIV/MolPCBA),
 * k-nearest-neighbor point clouds built with the EdgeConv method
 * (HEP top tagging, k=16), and citation/social networks. We provide
 * generators with matching structural character: chemistry-like
 * sparse graphs with small bounded degree, kNN graphs over random
 * point clouds, Erdős–Rényi graphs, and Barabási–Albert power-law
 * graphs for the citation/social datasets.
 */
#ifndef FLOWGNN_GRAPH_GENERATORS_H
#define FLOWGNN_GRAPH_GENERATORS_H

#include "graph/graph.h"
#include "tensor/rng.h"

namespace flowgnn {

/** Erdős–Rényi G(n, m): m distinct directed edges, no self-loops. */
CooGraph make_erdos_renyi(NodeId num_nodes, std::size_t num_edges, Rng &rng);

/**
 * Molecule-like graph: a random spanning tree plus a few ring-closing
 * extra edges, symmetric (bond) edges, bounded degree — mimicking the
 * degree statistics of MolHIV/MolPCBA (avg degree ~2.2 per direction).
 */
CooGraph make_molecule(NodeId num_nodes, Rng &rng);

/**
 * kNN graph over a random 2D point cloud, the EdgeConv construction
 * used for the HEP dataset: each node draws a directed edge from each
 * of its k nearest neighbors (edge j->i for j in kNN(i)).
 */
CooGraph make_knn_point_cloud(NodeId num_nodes, std::uint32_t k, Rng &rng);

/**
 * Barabási–Albert preferential attachment with m edges per new node,
 * symmetrized. Produces the power-law degree distribution typical of
 * citation and social graphs (Cora/CiteSeer/PubMed/Reddit).
 */
CooGraph make_barabasi_albert(NodeId num_nodes, std::uint32_t m, Rng &rng);

/**
 * R-MAT (Chakrabarti et al.) recursive-matrix generator, the
 * Graph500 construction: each directed edge picks a quadrant of the
 * adjacency matrix with probabilities (a, b, c, 1-a-b-c) at every one
 * of log2(n) levels. Defaults (0.57, 0.19, 0.19) are the Graph500
 * parameters, yielding a heavier-tailed degree distribution than
 * Barabási–Albert. num_nodes must be a power of two.
 *
 * Faithful to the construction, the result is a *multigraph*: parallel
 * edges and self-loops are kept, deliberately exercising the
 * dedup-handling of downstream partitioners (see
 * build_undirected_csr). Deterministic given the Rng state.
 */
CooGraph make_rmat(NodeId num_nodes, std::size_t num_edges, Rng &rng,
                   double a = 0.57, double b = 0.19, double c = 0.19);

/**
 * Relabels nodes by a uniform random permutation (edge order and edge
 * feature positions preserved). Strips any locality the generator's
 * ids carried — the "meaningless ids" regime where kContiguous
 * degrades to a random split and locality-recovering strategies must
 * earn their keep.
 */
CooGraph permute_node_ids(const CooGraph &graph, Rng &rng);

/**
 * Ring lattice: node i is connected bidirectionally to its k nearest
 * ring neighbors on each side ((i +/- 1 .. k) mod n). Deterministic,
 * bounded degree (2k per direction), and — unlike the random
 * generators — node ids carry perfect spatial locality, making this
 * the canonical large-graph workload for multi-die sharding studies
 * (contiguous shards cut only the 2k ring edges at each boundary).
 */
CooGraph make_ring_lattice(NodeId num_nodes, std::uint32_t k);

/**
 * Adds a virtual node connected bidirectionally to every existing
 * node (paper Sec. IV, "Virtual Node"). The virtual node gets id
 * num_nodes of the input graph; new edges are appended after existing
 * ones so original edge features keep their positions.
 */
CooGraph add_virtual_node(const CooGraph &graph);

} // namespace flowgnn

#endif // FLOWGNN_GRAPH_GENERATORS_H
