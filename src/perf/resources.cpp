#include "perf/resources.h"

#include <algorithm>
#include <cmath>

#include "nn/dgn_layer.h"
#include "nn/encoder_layer.h"
#include "nn/gat_layer.h"
#include "nn/gcn_layer.h"
#include "nn/gin_layer.h"
#include "nn/pna_layer.h"

namespace flowgnn {

namespace {

constexpr double kDspPerMacLane = 2.0;  ///< fp32 MAC on DSP48E2 pairs
constexpr double kBytesPerBram = 4608.0; ///< BRAM36 usable bytes
constexpr std::uint32_t kMaxFcWidth = 64; ///< output-dim unroll cap

/** FC lanes one NT unit instantiates for a stage: the first
 * input-stationary pass is fully unrolled (capped), later passes are
 * folded 2x since they overlap the first at half duty. */
double
stage_fc_lanes(const Layer &stage)
{
    const auto passes = stage.nt_pass_dims();
    double lanes = 0.0;
    std::size_t out =
        std::min<std::size_t>(stage.out_dim(), kMaxFcWidth);
    for (std::size_t p = 0; p < passes.size(); ++p)
        lanes += (p == 0) ? static_cast<double>(out)
                          : static_cast<double>(out) / 2.0;
    return lanes;
}

/** Per-edge datapath ops one MP lane performs for a stage's messages. */
double
stage_mp_ops(const Layer &stage)
{
    if (dynamic_cast<const GcnLayer *>(&stage) != nullptr)
        return 1.0; // normalization scale
    if (dynamic_cast<const GinLayer *>(&stage) != nullptr)
        return 3.0; // edge encode + add + relu
    if (dynamic_cast<const PnaLayer *>(&stage) != nullptr)
        return 8.0; // encode, relu, sum, sumsq mult+acc, max, min, count
    if (dynamic_cast<const DgnLayer *>(&stage) != nullptr)
        return 3.0; // edge encode + directional multiply + 2 accums
    if (dynamic_cast<const GatLayer *>(&stage) != nullptr)
        return 6.0; // dot, leaky-relu, max, exp, weight, accumulate
    return 0.0;
}

/** DSP-hungry special function units (exp, div, sqrt) per stage. */
double
stage_special_dsp(const Layer &stage, const EngineConfig &cfg)
{
    if (const auto *gat = dynamic_cast<const GatLayer *>(&stage)) {
        // exp + divide per head in every MP unit, plus the per-node
        // attention-logit dot products in the NT units.
        return static_cast<double>(cfg.p_edge) * gat->num_heads() * 18.0 +
               static_cast<double>(cfg.p_node) * cfg.p_apply *
                   gat->num_heads() * 4.0;
    }
    if (dynamic_cast<const PnaLayer *>(&stage) != nullptr) {
        // sqrt (std) + log/div scalers across the scatter lanes.
        return static_cast<double>(cfg.p_edge) * cfg.p_scatter * 20.0;
    }
    if (dynamic_cast<const DgnLayer *>(&stage) != nullptr) {
        // |.| + divide for the directional normalizer.
        return static_cast<double>(cfg.p_node) * cfg.p_apply * 10.0;
    }
    return 0.0;
}

std::uint32_t
buffer_brams(double bytes)
{
    return static_cast<std::uint32_t>(
        std::ceil(bytes / kBytesPerBram));
}

} // namespace

ResourceUsage
estimate_resources(const Model &model, const EngineConfig &config,
                   std::uint32_t max_nodes)
{
    config.validate();

    // --- Compute lanes: NT/MP hardware is shared across layers, so
    // the widest stage sets the instantiated datapath. ---
    double fc_lanes = 0.0, mp_ops = 0.0, special = 0.0;
    std::size_t max_emb = 1;
    std::size_t max_state = 1;
    bool has_gat = false;
    std::size_t gat_heads = 0;
    std::size_t edge_dim = 0;
    for (std::size_t i = 0; i < model.num_stages(); ++i) {
        const Layer &stage = model.stage(i);
        fc_lanes = std::max(fc_lanes, stage_fc_lanes(stage));
        mp_ops = std::max(mp_ops, stage_mp_ops(stage));
        special = std::max(special, stage_special_dsp(stage, config));
        max_emb = std::max(max_emb, stage.out_dim());
        if (stage.msg_dim() > 0)
            max_state =
                std::max(max_state, stage.aggregator().state_dim());
        if (const auto *gat = dynamic_cast<const GatLayer *>(&stage)) {
            has_gat = true;
            gat_heads = gat->num_heads();
        }
        if (stage.uses_edge_features())
            edge_dim = std::max<std::size_t>(edge_dim, 4);
    }

    double nt_dsp = config.p_node * config.p_apply * fc_lanes *
                    kDspPerMacLane;
    double mp_dsp = config.p_edge * config.p_scatter * mp_ops *
                    kDspPerMacLane;
    double head_dsp =
        std::min<double>(model.head().out_dim() * config.p_apply, 64.0) *
        kDspPerMacLane;

    ResourceUsage usage;
    usage.dsp = static_cast<std::uint32_t>(
        std::lround(nt_dsp + mp_dsp + special + head_dsp));

    // --- On-chip buffers ---
    double node_buf =
        2.0 * max_nodes * static_cast<double>(max_emb) * 4.0;
    double msg_buf =
        2.0 * max_nodes * static_cast<double>(max_state) * 4.0;
    double edge_tab =
        static_cast<double>(max_nodes) * 16.0 *
        static_cast<double>(edge_dim + 2) * 4.0 / 4.0;
    double gat_scores = 0.0;
    if (has_gat) {
        // Per-edge per-head score buffer, double-buffered across the
        // two attention passes (E_max = 16 * N_max).
        gat_scores = 2.0 * 16.0 * max_nodes *
                     static_cast<double>(gat_heads) * 4.0;
    }
    usage.bram = buffer_brams(node_buf) + buffer_brams(msg_buf) +
                 buffer_brams(edge_tab) +
                 (has_gat ? buffer_brams(gat_scores) : 0) +
                 8; // control / weight staging

    // --- Fabric: control per unit + datapath glue per DSP lane ---
    double lut = 40000.0 + 8000.0 * config.p_node +
                 6000.0 * config.p_edge + 55.0 * usage.dsp +
                 800.0 * static_cast<double>(max_emb);
    double ff = 30000.0 + 5500.0 * config.p_node +
                4500.0 * config.p_edge + 42.0 * usage.dsp +
                520.0 * static_cast<double>(max_emb);
    usage.lut = static_cast<std::uint32_t>(std::lround(lut));
    usage.ff = static_cast<std::uint32_t>(std::lround(ff));
    return usage;
}

bool
fits_u50(const ResourceUsage &usage)
{
    return usage.dsp <= kAlveoU50.dsp && usage.lut <= kAlveoU50.lut &&
           usage.ff <= kAlveoU50.ff && usage.bram <= kAlveoU50.bram;
}

} // namespace flowgnn
