/**
 * @file
 * FPGA resource estimator (paper Table III).
 *
 * Without Vitis we cannot place-and-route, so this module models the
 * U50 resource cost of a FlowGNN kernel from first principles:
 *
 *  - DSPs: fp32 MAC lanes instantiated by the NT units (Papply inputs
 *    wide, output-dim deep, folded), the MP units (Pscatter lanes per
 *    unit times the message-function cost), attention exp/div units,
 *    and the head.
 *  - BRAM: node-embedding buffer (banked), ping-pong message buffers
 *    sized by the aggregator state, and the edge-attribute table.
 *  - LUT/FF: per-unit control plus per-DSP-lane datapath glue.
 *
 * Constants are calibrated so the six paper models land near Table III
 * and preserve its ordering (PNA/GAT DSP-heavy, PNA BRAM-heavy, GCN
 * lightest). EXPERIMENTS.md records the deviations.
 */
#ifndef FLOWGNN_PERF_RESOURCES_H
#define FLOWGNN_PERF_RESOURCES_H

#include <cstdint>

#include "core/config.h"
#include "nn/model.h"

namespace flowgnn {

/** Resource usage estimate for one compiled kernel. */
struct ResourceUsage {
    std::uint32_t dsp = 0;
    std::uint32_t lut = 0;
    std::uint32_t ff = 0;
    std::uint32_t bram = 0; ///< BRAM36 blocks
};

/** Alveo U50 available resources (Table III header row). */
inline constexpr ResourceUsage kAlveoU50{5952, 872000, 1743000, 1344};

/**
 * Estimates the resources of a model compiled with the given engine
 * configuration.
 *
 * @param max_nodes on-chip buffer sizing (nodes per graph supported)
 */
ResourceUsage estimate_resources(const Model &model,
                                 const EngineConfig &config,
                                 std::uint32_t max_nodes = 512);

/** True if the kernel fits on the U50. */
bool fits_u50(const ResourceUsage &usage);

} // namespace flowgnn

#endif // FLOWGNN_PERF_RESOURCES_H
