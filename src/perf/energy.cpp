#include "perf/energy.h"

#include <algorithm>
#include <stdexcept>

namespace flowgnn {

double
platform_power_w(Platform platform)
{
    switch (platform) {
      case Platform::kCpu: return 105.0;
      case Platform::kGpu: return 140.0;
      case Platform::kFpga: return 27.0;
    }
    throw std::invalid_argument("platform_power_w: unknown platform");
}

double
energy_per_graph_mj(Platform platform, double latency_ms)
{
    return platform_power_w(platform) * latency_ms;
}

double
graphs_per_kj(Platform platform, double latency_ms)
{
    if (latency_ms <= 0.0)
        throw std::invalid_argument("graphs_per_kj: latency must be > 0");
    return 1e6 / (platform_power_w(platform) * latency_ms);
}

namespace {

/** Serial die-to-die links burn ~10 pJ/bit (SerDes-class transceiver
 * energy), i.e. 0.32 nJ per 32-bit word moved. */
constexpr double kLinkNjPerWord = 0.32;

/** Writing one replicated halo word into a die's local buffers costs
 * one HBM-class access, ~0.06 nJ/word (~15 pJ/byte). */
constexpr double kHaloWriteNjPerWord = 0.06;

} // namespace

double
platform_idle_power_w(Platform platform)
{
    switch (platform) {
      case Platform::kCpu: return 36.0;
      case Platform::kGpu: return 22.0;
      case Platform::kFpga: return 9.0;
    }
    throw std::invalid_argument(
        "platform_idle_power_w: unknown platform");
}

MultiDieEnergy
multi_die_energy(std::uint32_t dies, double latency_ms,
                 std::uint64_t link_words, double replication_factor,
                 std::size_t graph_nodes, std::size_t node_dim,
                 const std::vector<double> &die_busy_ms)
{
    if (dies == 0)
        throw std::invalid_argument(
            "multi_die_energy: dies must be >= 1");
    if (latency_ms <= 0.0)
        throw std::invalid_argument(
            "multi_die_energy: latency must be > 0");
    if (replication_factor < 1.0)
        throw std::invalid_argument(
            "multi_die_energy: replication_factor must be >= 1");

    if (die_busy_ms.size() > dies)
        throw std::invalid_argument(
            "multi_die_energy: more busy times than dies");

    MultiDieEnergy out;
    if (die_busy_ms.empty()) {
        // Historical model: the whole chassis at full draw for the
        // whole makespan (no busy/idle split available).
        out.busy_mj = static_cast<double>(dies) *
                      platform_power_w(Platform::kFpga) * latency_ms;
    } else {
        const double full_w = platform_power_w(Platform::kFpga);
        const double idle_w = platform_idle_power_w(Platform::kFpga);
        double busy_total_ms = 0.0;
        for (double busy : die_busy_ms)
            busy_total_ms += std::min(std::max(busy, 0.0), latency_ms);
        out.busy_mj = full_w * busy_total_ms;
        // Every die — including ones the run never touched — sits at
        // static draw whenever it is not computing.
        out.idle_mj =
            idle_w * (static_cast<double>(dies) * latency_ms -
                      busy_total_ms);
    }
    out.compute_mj = out.busy_mj + out.idle_mj;
    out.link_mj =
        static_cast<double>(link_words) * kLinkNjPerWord * 1e-6;
    double replicated_words = (replication_factor - 1.0) *
                              static_cast<double>(graph_nodes) *
                              static_cast<double>(node_dim);
    out.halo_mj = replicated_words * kHaloWriteNjPerWord * 1e-6;
    out.total_mj = out.compute_mj + out.link_mj + out.halo_mj;
    out.graphs_per_kj = 1e6 / out.total_mj;
    return out;
}

} // namespace flowgnn
