#include "perf/energy.h"

#include <stdexcept>

namespace flowgnn {

double
platform_power_w(Platform platform)
{
    switch (platform) {
      case Platform::kCpu: return 105.0;
      case Platform::kGpu: return 140.0;
      case Platform::kFpga: return 27.0;
    }
    throw std::invalid_argument("platform_power_w: unknown platform");
}

double
energy_per_graph_mj(Platform platform, double latency_ms)
{
    return platform_power_w(platform) * latency_ms;
}

double
graphs_per_kj(Platform platform, double latency_ms)
{
    if (latency_ms <= 0.0)
        throw std::invalid_argument("graphs_per_kj: latency must be > 0");
    return 1e6 / (platform_power_w(platform) * latency_ms);
}

} // namespace flowgnn
