/**
 * @file
 * Published numbers and comparison arithmetic for the SOTA GCN
 * accelerators I-GCN [MICRO'21] and AWB-GCN [MICRO'20] (paper
 * Table VIII). The paper compares its measured latency against these
 * accelerators' published latencies, normalized by DSP count; this
 * module reproduces exactly that computation.
 */
#ifndef FLOWGNN_PERF_ACCELERATORS_H
#define FLOWGNN_PERF_ACCELERATORS_H

#include <cstdint>

#include "datasets/dataset.h"

namespace flowgnn {

/** Published per-dataset results of a prior accelerator. */
struct PublishedResult {
    const char *accelerator;
    DatasetKind dataset;
    double latency_us;
    std::uint32_t dsps;
    double ee_graphs_per_kj;
};

/** Published I-GCN result for a dataset (Table VIII). */
const PublishedResult &igcn_published(DatasetKind dataset);

/** Published AWB-GCN result for a dataset (Table VIII). */
const PublishedResult &awbgcn_published(DatasetKind dataset);

/** Latency normalized by DSP count relative to the 4096-DSP baseline
 * platform used by I-GCN/AWB-GCN: latency_us * dsps / 4096. */
double dsp_normalized_latency(double latency_us, std::uint32_t dsps);

/** Speedup of (latency_a, dsps_a) over (latency_b, dsps_b) after DSP
 * normalization; > 1 means A is faster per DSP. */
double normalized_speedup(double latency_a_us, std::uint32_t dsps_a,
                          double latency_b_us, std::uint32_t dsps_b);

} // namespace flowgnn

#endif // FLOWGNN_PERF_ACCELERATORS_H
