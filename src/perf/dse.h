/**
 * @file
 * Design-space exploration: jointly searches the four parallelism
 * parameters (the Fig. 10 sweep) under a resource budget (the
 * Table III estimator), returning candidates sorted by measured
 * latency. This is the tool a FlowGNN user runs to pick a
 * configuration for a new model before synthesis.
 */
#ifndef FLOWGNN_PERF_DSE_H
#define FLOWGNN_PERF_DSE_H

#include <vector>

#include "core/engine.h"
#include "perf/resources.h"

namespace flowgnn {

/** One evaluated design point. */
struct DsePoint {
    EngineConfig config;
    ResourceUsage resources;
    std::uint64_t cycles = 0; ///< measured on the probe sample
    bool fits = false;        ///< within the given budget

    double
    latency_ms() const
    {
        return static_cast<double>(cycles) / (config.clock_mhz * 1e3);
    }
};

/** Candidate grid for the four parallelism parameters. */
struct DseGrid {
    std::vector<std::uint32_t> p_node = {1, 2, 4};
    std::vector<std::uint32_t> p_edge = {1, 2, 4};
    std::vector<std::uint32_t> p_apply = {1, 2, 4};
    std::vector<std::uint32_t> p_scatter = {1, 2, 4, 8};
};

/**
 * Evaluates every grid point on the probe sample and returns all
 * points sorted by (fits-budget first, then cycles ascending).
 * Candidates are measured through flowgnn::serve — one single-replica
 * InferenceService per configuration, evaluated in parallel across
 * host cores; cycle counts stay deterministic per configuration.
 *
 * @param model  the GNN to configure
 * @param probe  a representative workload sample
 * @param grid   candidate parallelism values
 * @param budget resource ceiling (defaults to the Alveo U50)
 */
std::vector<DsePoint>
explore_design_space(const Model &model, const GraphSample &probe,
                     const DseGrid &grid = {},
                     const ResourceUsage &budget = kAlveoU50);

/**
 * Returns the fastest configuration that fits the budget.
 * Throws std::runtime_error if nothing fits.
 */
DsePoint best_fitting_config(const Model &model, const GraphSample &probe,
                             const DseGrid &grid = {},
                             const ResourceUsage &budget = kAlveoU50);

} // namespace flowgnn

#endif // FLOWGNN_PERF_DSE_H
