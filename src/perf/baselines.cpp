#include "perf/baselines.h"

#include <stdexcept>

namespace flowgnn {

namespace {

// Sustained framework throughputs (MACs per ms). The CPU constant
// reflects single-graph PyG inference (~15 GFLOP/s effective once
// Python dispatch is excluded); the GPU constant is the saturated
// large-batch throughput (~2 TFLOP/s effective for these small
// kernels, far below peak because the matrices are tiny).
constexpr double kCpuMacsPerMs = 1.5e7;
constexpr double kGpuPeakMacsPerMs = 2.0e9;

} // namespace

const BaselineCost &
baseline_cost(ModelKind kind)
{
    // Calibrated so batch-1 HEP latencies land on Table V and the
    // batch sweep reproduces the Fig. 7 crossovers.
    static const BaselineCost kGcn{4.20, 2.85, 0.002, 64.0};
    static const BaselineCost kGin{3.75, 2.20, 0.002, 64.0};
    static const BaselineCost kGinVn{4.50, 3.30, 0.004, 64.0};
    static const BaselineCost kGat{1.95, 0.90, 0.55, 512.0};
    static const BaselineCost kPna{8.90, 4.60, 0.010, 96.0};
    static const BaselineCost kDgn{29.50, 60.50, 0.180, 128.0};

    switch (kind) {
      case ModelKind::kGcn:
      case ModelKind::kGcn16:
      case ModelKind::kSgc: // SpMM family: GCN-like framework costs
        return kGcn;
      case ModelKind::kGin:
      case ModelKind::kSage: // GIN-family kernel costs (paper Sec. V)
        return kGin;
      case ModelKind::kGinVn: return kGinVn;
      case ModelKind::kGat: return kGat;
      case ModelKind::kPna: return kPna;
      case ModelKind::kDgn: return kDgn;
    }
    throw std::invalid_argument("baseline_cost: unknown model kind");
}

double
CpuModel::latency_ms(const Model &model, const GraphSample &prepared) const
{
    const BaselineCost &c = baseline_cost(kind_);
    double macs = static_cast<double>(model.macs(prepared));
    return c.cpu_overhead_ms + macs / kCpuMacsPerMs;
}

double
GpuModel::latency_ms(const Model &model, const GraphSample &prepared,
                     std::uint32_t batch_size) const
{
    if (batch_size == 0)
        throw std::invalid_argument("GpuModel: batch_size must be >= 1");
    const BaselineCost &c = baseline_cost(kind_);
    double macs = static_cast<double>(model.macs(prepared));
    double util = static_cast<double>(batch_size) /
                  (static_cast<double>(batch_size) + c.gpu_batch_half);
    double compute_ms = macs / (kGpuPeakMacsPerMs * util);
    return c.gpu_launch_ms / static_cast<double>(batch_size) +
           c.gpu_pergraph_ms + compute_ms;
}

} // namespace flowgnn
