#include "perf/dse.h"

#include <algorithm>
#include <stdexcept>

namespace flowgnn {

namespace {

bool
within(const ResourceUsage &usage, const ResourceUsage &budget)
{
    return usage.dsp <= budget.dsp && usage.lut <= budget.lut &&
           usage.ff <= budget.ff && usage.bram <= budget.bram;
}

} // namespace

std::vector<DsePoint>
explore_design_space(const Model &model, const GraphSample &probe,
                     const DseGrid &grid, const ResourceUsage &budget)
{
    std::vector<DsePoint> points;
    points.reserve(grid.p_node.size() * grid.p_edge.size() *
                   grid.p_apply.size() * grid.p_scatter.size());
    for (std::uint32_t pn : grid.p_node) {
        for (std::uint32_t pe : grid.p_edge) {
            for (std::uint32_t pa : grid.p_apply) {
                for (std::uint32_t ps : grid.p_scatter) {
                    DsePoint pt;
                    pt.config.p_node = pn;
                    pt.config.p_edge = pe;
                    pt.config.p_apply = pa;
                    pt.config.p_scatter = ps;
                    pt.resources =
                        estimate_resources(model, pt.config);
                    pt.fits = within(pt.resources, budget);
                    Engine engine(model, pt.config);
                    pt.cycles = engine.run(probe).stats.total_cycles;
                    points.push_back(pt);
                }
            }
        }
    }
    std::sort(points.begin(), points.end(),
              [](const DsePoint &a, const DsePoint &b) {
                  if (a.fits != b.fits)
                      return a.fits;
                  return a.cycles < b.cycles;
              });
    return points;
}

DsePoint
best_fitting_config(const Model &model, const GraphSample &probe,
                    const DseGrid &grid, const ResourceUsage &budget)
{
    auto points = explore_design_space(model, probe, grid, budget);
    if (points.empty() || !points.front().fits)
        throw std::runtime_error(
            "best_fitting_config: no configuration fits the budget");
    return points.front();
}

} // namespace flowgnn
