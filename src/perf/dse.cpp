#include "perf/dse.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace flowgnn {

namespace {

bool
within(const ResourceUsage &usage, const ResourceUsage &budget)
{
    return usage.dsp <= budget.dsp && usage.lut <= budget.lut &&
           usage.ff <= budget.ff && usage.bram <= budget.bram;
}

} // namespace

std::vector<DsePoint>
explore_design_space(const Model &model, const GraphSample &probe,
                     const DseGrid &grid, const ResourceUsage &budget)
{
    std::vector<DsePoint> points;
    points.reserve(grid.p_node.size() * grid.p_edge.size() *
                   grid.p_apply.size() * grid.p_scatter.size());
    for (std::uint32_t pn : grid.p_node) {
        for (std::uint32_t pe : grid.p_edge) {
            for (std::uint32_t pa : grid.p_apply) {
                for (std::uint32_t ps : grid.p_scatter) {
                    DsePoint pt;
                    pt.config.p_node = pn;
                    pt.config.p_edge = pe;
                    pt.config.p_apply = pa;
                    pt.config.p_scatter = ps;
                    pt.resources =
                        estimate_resources(model, pt.config);
                    pt.fits = within(pt.resources, budget);
                    points.push_back(pt);
                }
            }
        }
    }

    // Measure every candidate through the serve API: one
    // single-replica service per configuration. Evaluator threads
    // work-steal point indices, so a core that finishes a cheap
    // config immediately picks up the next one — no barrier waiting
    // on the slowest config of a batch — while each measurement stays
    // the deterministic cycle count of that config. The sweep's only
    // shared mutable state is this atomic claim counter (documented
    // lock-free: each thread writes only the result slot it claimed),
    // so there is no mutex to annotate here.
    std::atomic<std::size_t> next{0};
    auto evaluate_points = [&] {
        for (std::size_t i = next++; i < points.size(); i = next++) {
            ServiceConfig svc;
            svc.replicas = 1;
            svc.queue_capacity = 1;
            InferenceService service(model, points[i].config, svc);
            points[i].cycles =
                service.submit(probe).get().stats.total_cycles;
        }
    };
    std::size_t evaluators =
        std::min<std::size_t>(points.size(),
                              std::max(1u,
                                       std::thread::hardware_concurrency()));
    std::vector<std::thread> pool;
    pool.reserve(evaluators);
    for (std::size_t t = 0; t < evaluators; ++t)
        pool.emplace_back(evaluate_points);
    for (std::thread &t : pool)
        t.join();

    std::sort(points.begin(), points.end(),
              [](const DsePoint &a, const DsePoint &b) {
                  if (a.fits != b.fits)
                      return a.fits;
                  return a.cycles < b.cycles;
              });
    return points;
}

DsePoint
best_fitting_config(const Model &model, const GraphSample &probe,
                    const DseGrid &grid, const ResourceUsage &budget)
{
    auto points = explore_design_space(model, probe, grid, budget);
    if (points.empty() || !points.front().fits)
        throw std::runtime_error(
            "best_fitting_config: no configuration fits the budget");
    return points.front();
}

} // namespace flowgnn
