#include "perf/accelerators.h"

#include <stdexcept>

namespace flowgnn {

namespace {

// Table VIII published rows (latency in us, 4096 DSPs, EE graphs/kJ).
constexpr PublishedResult kIgcn[] = {
    {"I-GCN", DatasetKind::kCora, 1.3, 4096, 7.1e6},
    {"I-GCN", DatasetKind::kCiteSeer, 1.9, 4096, 3.7e6},
    {"I-GCN", DatasetKind::kPubMed, 15.1, 4096, 5.3e5},
    {"I-GCN", DatasetKind::kReddit, 3.0e4, 4096, 3.5e2},
};

constexpr PublishedResult kAwbGcn[] = {
    {"AWB-GCN", DatasetKind::kCora, 2.3, 4096, 3.1e6},
    {"AWB-GCN", DatasetKind::kCiteSeer, 4.0, 4096, 1.9e6},
    {"AWB-GCN", DatasetKind::kPubMed, 30.0, 4096, 2.5e5},
    {"AWB-GCN", DatasetKind::kReddit, 3.2e4, 4096, 2.1e2},
};

const PublishedResult &
find(const PublishedResult *table, std::size_t n, DatasetKind dataset)
{
    for (std::size_t i = 0; i < n; ++i)
        if (table[i].dataset == dataset)
            return table[i];
    throw std::invalid_argument(
        "accelerators: no published result for dataset");
}

} // namespace

const PublishedResult &
igcn_published(DatasetKind dataset)
{
    return find(kIgcn, std::size(kIgcn), dataset);
}

const PublishedResult &
awbgcn_published(DatasetKind dataset)
{
    return find(kAwbGcn, std::size(kAwbGcn), dataset);
}

double
dsp_normalized_latency(double latency_us, std::uint32_t dsps)
{
    if (dsps == 0)
        throw std::invalid_argument(
            "dsp_normalized_latency: dsps must be > 0");
    return latency_us * static_cast<double>(dsps) / 4096.0;
}

double
normalized_speedup(double latency_a_us, std::uint32_t dsps_a,
                   double latency_b_us, std::uint32_t dsps_b)
{
    return dsp_normalized_latency(latency_b_us, dsps_b) /
           dsp_normalized_latency(latency_a_us, dsps_a);
}

} // namespace flowgnn
