/**
 * @file
 * Analytical CPU and GPU latency models.
 *
 * The paper measures PyTorch Geometric on a Xeon Gold 6226R and an
 * RTX A6000. We have neither, so — per the substitution rule — these
 * models reproduce the published behaviour with a calibrated
 * framework-overhead + compute decomposition:
 *
 *   cpu(graph)        = overhead_model + macs / cpu_throughput
 *   gpu(graph, batch) = launch_model / batch
 *                       + unbatchable_model            (per graph)
 *                       + macs / (peak * util(batch))  (per graph)
 *
 * util(batch) saturates as batching amortizes kernel launches, which
 * produces the Fig. 7 crossover: the GPU approaches FlowGNN around
 * batch 64-256 for most models, while GAT and DGN — whose scatter/
 * softmax/directional ops batch poorly — never catch up. Per-model
 * constants are calibrated to Table V (HEP, batch 1).
 */
#ifndef FLOWGNN_PERF_BASELINES_H
#define FLOWGNN_PERF_BASELINES_H

#include <cstdint>

#include "graph/sample.h"
#include "nn/model.h"

namespace flowgnn {

/** Calibrated per-model baseline cost constants. */
struct BaselineCost {
    double cpu_overhead_ms;   ///< per-graph framework overhead (CPU)
    double gpu_launch_ms;     ///< per-batch launch overhead (GPU)
    double gpu_pergraph_ms;   ///< unbatchable per-graph GPU work
    double gpu_batch_half;    ///< batch size at 50% GPU utilization
};

/** Lookup of the calibrated constants for a paper model. */
const BaselineCost &baseline_cost(ModelKind kind);

/** PyTorch-Geometric-on-Xeon latency model (batch size 1). */
class CpuModel
{
  public:
    explicit CpuModel(ModelKind kind) : kind_(kind) {}

    /** Latency in ms for one graph. */
    double latency_ms(const Model &model,
                      const GraphSample &prepared) const;

  private:
    ModelKind kind_;
};

/** PyTorch-Geometric-on-A6000 latency model with batch sweep. */
class GpuModel
{
  public:
    explicit GpuModel(ModelKind kind) : kind_(kind) {}

    /** Average latency per graph in ms at the given batch size. */
    double latency_ms(const Model &model, const GraphSample &prepared,
                      std::uint32_t batch_size) const;

  private:
    ModelKind kind_;
};

} // namespace flowgnn

#endif // FLOWGNN_PERF_BASELINES_H
