/**
 * @file
 * Energy-efficiency model (paper Table VI / Table VIII EE columns).
 *
 * The paper measures board power; we use calibrated platform power
 * draws (the paper notes the FPGA runs at roughly 4x less power than
 * the GPU baseline) and convert latency to graphs per kilojoule:
 *
 *   EE [graphs/kJ] = 1e6 / (power_W * latency_ms)
 */
#ifndef FLOWGNN_PERF_ENERGY_H
#define FLOWGNN_PERF_ENERGY_H

#include <cstdint>
#include <vector>

namespace flowgnn {

/** Execution platforms compared in the paper. */
enum class Platform {
    kCpu,  ///< Xeon Gold 6226R
    kGpu,  ///< RTX A6000
    kFpga, ///< Alveo U50 running FlowGNN
};

/** Calibrated average power draw during inference, in watts. */
double platform_power_w(Platform platform);

/** Energy per graph in millijoules. */
double energy_per_graph_mj(Platform platform, double latency_ms);

/** Energy efficiency in graphs per kilojoule (Table VI metric). */
double graphs_per_kj(Platform platform, double latency_ms);

/**
 * Per-component energy of one multi-die sharded run — the scale-out
 * extension of Table VI. Compute charges every die for the full
 * makespan (dies in the same chassis draw power while waiting at the
 * merge barrier); the inter-die link charges per word moved; the
 * replicated halo charges the extra feature storage each run must
 * write beyond what a single die would hold.
 */
struct MultiDieEnergy {
    double compute_mj = 0.0; ///< busy_mj + idle_mj
    /** Active-draw share: each die at full platform power for the
     * wall time it actually computes. Equals compute_mj when no
     * per-die busy times are supplied. */
    double busy_mj = 0.0;
    /** Static-draw share: dies that finished early (or never got a
     * slice) still burn leakage + clock-tree power until the merge
     * barrier releases the chassis. */
    double idle_mj = 0.0;
    double link_mj = 0.0;    ///< halo traffic over the serial links
    double halo_mj = 0.0;    ///< replicated (ghost) feature storage
    double total_mj = 0.0;
    double graphs_per_kj = 0.0; ///< 1e6 / total_mj
};

/**
 * @param dies               dies used by the run
 * @param latency_ms         composed multi-die makespan
 * @param link_words         total 4-byte words fetched over inter-die
 *                           links (sum of ShardInfo::halo_words)
 * @param replication_factor average copies of each node across shard
 *                           closures (>= 1)
 * @param graph_nodes        nodes in the full graph
 * @param node_dim           feature width (words per node)
 * @param die_busy_ms        optional per-die busy wall time; a die is
 *                           charged full platform power while busy and
 *                           only static power for the rest of the
 *                           makespan. Entries are clamped to the
 *                           makespan; dies beyond the list (and the
 *                           default empty list's behaviour for none)
 *                           are fully idle. Pass empty to keep the
 *                           historical model: every die at full power
 *                           for the whole makespan.
 */
MultiDieEnergy multi_die_energy(std::uint32_t dies, double latency_ms,
                                std::uint64_t link_words,
                                double replication_factor,
                                std::size_t graph_nodes,
                                std::size_t node_dim,
                                const std::vector<double> &die_busy_ms = {});

/** Static (idle) power draw of one FPGA die, in watts — leakage plus
 * the always-on clock/SLR infrastructure, ~1/3 of the active draw. */
double platform_idle_power_w(Platform platform);

} // namespace flowgnn

#endif // FLOWGNN_PERF_ENERGY_H
