/**
 * @file
 * Energy-efficiency model (paper Table VI / Table VIII EE columns).
 *
 * The paper measures board power; we use calibrated platform power
 * draws (the paper notes the FPGA runs at roughly 4x less power than
 * the GPU baseline) and convert latency to graphs per kilojoule:
 *
 *   EE [graphs/kJ] = 1e6 / (power_W * latency_ms)
 */
#ifndef FLOWGNN_PERF_ENERGY_H
#define FLOWGNN_PERF_ENERGY_H

#include <cstdint>

namespace flowgnn {

/** Execution platforms compared in the paper. */
enum class Platform {
    kCpu,  ///< Xeon Gold 6226R
    kGpu,  ///< RTX A6000
    kFpga, ///< Alveo U50 running FlowGNN
};

/** Calibrated average power draw during inference, in watts. */
double platform_power_w(Platform platform);

/** Energy per graph in millijoules. */
double energy_per_graph_mj(Platform platform, double latency_ms);

/** Energy efficiency in graphs per kilojoule (Table VI metric). */
double graphs_per_kj(Platform platform, double latency_ms);

/**
 * Per-component energy of one multi-die sharded run — the scale-out
 * extension of Table VI. Compute charges every die for the full
 * makespan (dies in the same chassis draw power while waiting at the
 * merge barrier); the inter-die link charges per word moved; the
 * replicated halo charges the extra feature storage each run must
 * write beyond what a single die would hold.
 */
struct MultiDieEnergy {
    double compute_mj = 0.0; ///< dies x FPGA power x makespan
    double link_mj = 0.0;    ///< halo traffic over the serial links
    double halo_mj = 0.0;    ///< replicated (ghost) feature storage
    double total_mj = 0.0;
    double graphs_per_kj = 0.0; ///< 1e6 / total_mj
};

/**
 * @param dies               dies used by the run
 * @param latency_ms         composed multi-die makespan
 * @param link_words         total 4-byte words fetched over inter-die
 *                           links (sum of ShardInfo::halo_words)
 * @param replication_factor average copies of each node across shard
 *                           closures (>= 1)
 * @param graph_nodes        nodes in the full graph
 * @param node_dim           feature width (words per node)
 */
MultiDieEnergy multi_die_energy(std::uint32_t dies, double latency_ms,
                                std::uint64_t link_words,
                                double replication_factor,
                                std::size_t graph_nodes,
                                std::size_t node_dim);

} // namespace flowgnn

#endif // FLOWGNN_PERF_ENERGY_H
