/**
 * @file
 * Energy-efficiency model (paper Table VI / Table VIII EE columns).
 *
 * The paper measures board power; we use calibrated platform power
 * draws (the paper notes the FPGA runs at roughly 4x less power than
 * the GPU baseline) and convert latency to graphs per kilojoule:
 *
 *   EE [graphs/kJ] = 1e6 / (power_W * latency_ms)
 */
#ifndef FLOWGNN_PERF_ENERGY_H
#define FLOWGNN_PERF_ENERGY_H

namespace flowgnn {

/** Execution platforms compared in the paper. */
enum class Platform {
    kCpu,  ///< Xeon Gold 6226R
    kGpu,  ///< RTX A6000
    kFpga, ///< Alveo U50 running FlowGNN
};

/** Calibrated average power draw during inference, in watts. */
double platform_power_w(Platform platform);

/** Energy per graph in millijoules. */
double energy_per_graph_mj(Platform platform, double latency_ms);

/** Energy efficiency in graphs per kilojoule (Table VI metric). */
double graphs_per_kj(Platform platform, double latency_ms);

} // namespace flowgnn

#endif // FLOWGNN_PERF_ENERGY_H
