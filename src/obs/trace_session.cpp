#include "obs/trace_session.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <set>

namespace flowgnn {
namespace obs {

namespace {

/** The installed session + an install generation. The generation lets
 * per-thread caches detect that "the same pointer" is actually a new
 * session (destroy + re-allocate at one address) without ever
 * dereferencing a stale pointer. */
std::atomic<TraceSession *> g_session{nullptr};
std::atomic<std::uint64_t> g_generation{0};

struct ThreadCache {
    TraceSession *session = nullptr;
    std::uint64_t generation = 0;
    void *buffer = nullptr;
};
thread_local ThreadCache t_cache;

} // namespace

const char *
track_name(Track track)
{
    switch (track) {
      case Track::kHost: return "host";
      case Track::kIo: return "io";
      case Track::kServe: return "serve";
      case Track::kPool: return "pool";
      case Track::kShard: return "shard";
      case Track::kGhost: return "ghost";
      case Track::kEngine: return "engine (cycle domain)";
    }
    return "?";
}

TraceSession::TraceSession(TraceOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now())
{
    if (options_.buffer_capacity == 0)
        options_.buffer_capacity = 1;
}

TraceSession::~TraceSession() { uninstall(); }

void
TraceSession::install()
{
    g_session.store(this, std::memory_order_release);
    g_generation.fetch_add(1, std::memory_order_release);
}

void
TraceSession::uninstall()
{
    TraceSession *expected = this;
    if (g_session.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel))
        g_generation.fetch_add(1, std::memory_order_release);
}

TraceSession *
TraceSession::current()
{
    return g_session.load(std::memory_order_relaxed);
}

std::uint64_t
TraceSession::now_ns() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

TraceSession::ThreadBuffer &
TraceSession::buffer_for_this_thread()
{
    std::uint64_t gen = g_generation.load(std::memory_order_acquire);
    if (t_cache.session == this && t_cache.generation == gen &&
        t_cache.buffer)
        return *static_cast<ThreadBuffer *>(t_cache.buffer);

    MutexLock lock(&mutex_);
    buffers_.push_back(
        std::make_unique<ThreadBuffer>(options_.buffer_capacity));
    ThreadBuffer &buf = *buffers_.back();
    buf.tid = next_tid_++;
    t_cache = {this, gen, &buf};
    return buf;
}

void
TraceSession::push(ThreadBuffer &buf, Track track, std::uint32_t tid,
                   std::uint8_t kind, std::string_view name,
                   std::uint64_t start_ns, std::uint64_t end_ns)
{
    std::size_t idx = buf.published.load(std::memory_order_relaxed);
    if (idx >= buf.records.size()) {
        buf.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Record &r = buf.records[idx];
    r.start_ns = start_ns;
    r.end_ns = end_ns;
    r.tid = tid;
    r.track = track;
    r.kind = kind;
    std::size_t n = std::min(name.size(), sizeof(r.name) - 1);
    std::memcpy(r.name, name.data(), n);
    r.name[n] = '\0';
    // Publish after the slot is fully written: the exporter's acquire
    // read of `published` then sees a complete record. Slots below the
    // published count are never rewritten, so concurrent export is
    // race-free.
    buf.published.store(idx + 1, std::memory_order_release);
}

void
TraceSession::span(Track track, std::string_view name,
                   std::uint64_t start_ns, std::uint64_t end_ns)
{
    ThreadBuffer &buf = buffer_for_this_thread();
    push(buf, track, buf.tid, 0, name, start_ns, end_ns);
}

void
TraceSession::span_on(Track track, std::uint32_t tid,
                      std::string_view name, std::uint64_t start_ns,
                      std::uint64_t end_ns)
{
    push(buffer_for_this_thread(), track, tid, 0, name, start_ns,
         end_ns);
}

void
TraceSession::counter(Track track, std::string_view name, double value)
{
    ThreadBuffer &buf = buffer_for_this_thread();
    push(buf, track, buf.tid, 1, name, now_ns(),
         std::bit_cast<std::uint64_t>(value));
}

void
TraceSession::name_thread(Track track, std::string_view name)
{
    ThreadBuffer &buf = buffer_for_this_thread();
    name_row(track, buf.tid, name);
}

void
TraceSession::name_row(Track track, std::uint32_t tid,
                       std::string_view name)
{
    MutexLock lock(&mutex_);
    row_names_[{static_cast<std::uint8_t>(track), tid}] =
        std::string(name);
}

void
TraceSession::add_cycle_trace(const std::vector<TraceEvent> &events,
                              const CycleClockMap &map,
                              std::uint32_t die)
{
    ThreadBuffer &buf = buffer_for_this_thread();
    std::set<std::pair<std::uint32_t, bool>> units_seen;
    char name[48];
    for (const TraceEvent &e : events) {
        const bool mp = e.kind == TraceKind::kMpWork;
        std::uint32_t tid = kExplicitTidBase + die * kUnitsPerDie +
                            (mp ? kMpRowOffset : 0) + e.unit;
        if (units_seen.insert({e.unit, mp}).second) {
            std::snprintf(name, sizeof name, "die %u \xc2\xb7 %s %u",
                          die, mp ? "MP" : "NT", e.unit);
            name_row(Track::kEngine, tid, name);
        }
        std::snprintf(name, sizeof name, "%s n%u",
                      trace_kind_name(e.kind), e.node);
        push(buf, Track::kEngine, tid, 0, name, map.to_ns(e.start),
             map.to_ns(e.end));
    }
}

void
TraceSession::write_chrome_trace(std::ostream &os) const
{
    // Snapshot the buffer list and row names; each buffer is then read
    // up to its published count (acquire), which is a consistent
    // prefix even if its owner thread keeps recording.
    std::vector<ThreadBuffer *> buffers;
    std::map<std::pair<std::uint8_t, std::uint32_t>, std::string> names;
    {
        MutexLock lock(&mutex_);
        buffers.reserve(buffers_.size());
        for (const auto &b : buffers_)
            buffers.push_back(b.get());
        names = row_names_;
    }

    // Which (track, tid) rows actually hold events, for metadata.
    std::set<std::uint8_t> tracks_used;
    std::set<std::pair<std::uint8_t, std::uint32_t>> rows_used;
    for (ThreadBuffer *buf : buffers) {
        std::size_t n = buf->published.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            const Record &r = buf->records[i];
            tracks_used.insert(static_cast<std::uint8_t>(r.track));
            if (r.kind == 0)
                rows_used.insert(
                    {static_cast<std::uint8_t>(r.track), r.tid});
        }
    }

    os << "[\n";
    bool first = true;
    auto emit = [&](const std::string &line) {
        os << (first ? "  " : ",\n  ") << line;
        first = false;
    };

    // Process metadata: one row per subsystem, sorted by track id so
    // serve/pool/shard/ghost read top-to-bottom in pipeline order.
    for (std::uint8_t t : tracks_used) {
        emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
             std::to_string(t) + ", \"args\": {\"name\": \"" +
             json_escape(std::string("flowgnn \xc2\xb7 ") +
                         track_name(static_cast<Track>(t))) +
             "\"}}");
        emit("{\"name\": \"process_sort_index\", \"ph\": \"M\", "
             "\"pid\": " +
             std::to_string(t) + ", \"args\": {\"sort_index\": " +
             std::to_string(t) + "}}");
    }
    for (const auto &row : rows_used) {
        auto it = names.find(row);
        std::string label = it != names.end()
                                ? it->second
                                : "thread " + std::to_string(row.second);
        emit("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " +
             std::to_string(row.first) +
             ", \"tid\": " + std::to_string(row.second) +
             ", \"args\": {\"name\": \"" + json_escape(label) + "\"}}");
    }

    char buf_line[512];
    for (ThreadBuffer *buf : buffers) {
        std::size_t n = buf->published.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            const Record &r = buf->records[i];
            const int pid = static_cast<int>(r.track);
            if (r.kind == 0) {
                std::uint64_t dur =
                    r.end_ns > r.start_ns ? r.end_ns - r.start_ns : 0;
                std::snprintf(
                    buf_line, sizeof buf_line,
                    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": "
                    "\"X\", \"pid\": %d, \"tid\": %u, \"ts\": %.3f, "
                    "\"dur\": %.3f}",
                    json_escape(r.name).c_str(),
                    track_name(r.track),
                    pid, r.tid,
                    static_cast<double>(r.start_ns) / 1e3,
                    static_cast<double>(dur) / 1e3);
            } else {
                std::snprintf(
                    buf_line, sizeof buf_line,
                    "{\"name\": \"%s\", \"ph\": \"C\", \"pid\": %d, "
                    "\"tid\": %u, \"ts\": %.3f, \"args\": "
                    "{\"value\": %.6g}}",
                    json_escape(r.name).c_str(), pid, r.tid,
                    static_cast<double>(r.start_ns) / 1e3,
                    std::bit_cast<double>(r.end_ns));
            }
            emit(buf_line);
        }
    }
    os << "\n]\n";
}

std::size_t
TraceSession::recorded() const
{
    MutexLock lock(&mutex_);
    std::size_t total = 0;
    for (const auto &b : buffers_)
        total += b->published.load(std::memory_order_acquire);
    return total;
}

std::size_t
TraceSession::dropped() const
{
    MutexLock lock(&mutex_);
    std::size_t total = 0;
    for (const auto &b : buffers_)
        total += b->dropped.load(std::memory_order_relaxed);
    return total;
}

} // namespace obs
} // namespace flowgnn
