/**
 * @file
 * flowgnn::obs — stage profiling and background sampling.
 *
 * StageProfiler is the library-level form of the wall + VmRSS/VmHWM
 * stage table the host benches print: each stage(name, fn) call runs
 * fn, records seconds plus memory after the stage, emits a
 * Track::kHost span when a TraceSession is installed, and (when given
 * a registry) mirrors the duration into a "<prefix>.stage_seconds"
 * histogram. Benches keep their exact output format by printing from
 * the returned StageProfile rows.
 *
 * read_memory_stats() is the one shared /proc/self/status parser —
 * every VmRSS/VmHWM consumer in the tree goes through it.
 *
 * Sampler runs a background thread that periodically evaluates probe
 * callbacks (queue depth, busy dies, RSS, ...), publishing each value
 * as a registry gauge and — when a TraceSession is installed — as a
 * Chrome-trace counter sample, so Perfetto shows the gauge timeline
 * under the owning subsystem's process row.
 */
#ifndef FLOWGNN_OBS_STAGE_PROFILE_H
#define FLOWGNN_OBS_STAGE_PROFILE_H

#include <chrono>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/sync.h"
#include "obs/metrics.h"
#include "obs/trace_session.h"

namespace flowgnn {
namespace obs {

/** Process memory, in KiB, from /proc/self/status. */
struct MemoryStats {
    long rss_kb = 0; ///< VmRSS: current resident set
    long hwm_kb = 0; ///< VmHWM: lifetime peak resident set
};

/** Reads VmRSS/VmHWM from /proc/self/status (zeros when the file is
 * unavailable, e.g. non-Linux). */
MemoryStats read_memory_stats();

/** One profiled stage: wall time plus memory after it finished. */
struct StageProfile {
    std::string name;
    double seconds = 0.0;
    long rss_kb = 0; ///< VmRSS after the stage
    long hwm_kb = 0; ///< VmHWM (lifetime peak) after the stage
};

/**
 * Collects StageProfile rows. Optionally mirrors stage durations into
 * a MetricsRegistry histogram named "<prefix>.stage_seconds" and — via
 * the installed TraceSession, if any — emits each stage as a
 * Track::kHost span.
 */
class StageProfiler
{
  public:
    explicit StageProfiler(
        std::shared_ptr<MetricsRegistry> registry = nullptr,
        std::string prefix = "host")
        : registry_(std::move(registry)), prefix_(std::move(prefix))
    {
    }

    /** Runs fn, recording wall time and post-stage memory. */
    template <typename Fn>
    void
    stage(const std::string &name, Fn &&fn)
    {
        TraceSession *session = TraceSession::current();
        const std::uint64_t t0_ns = session ? session->now_ns() : 0;
        const auto t0 = std::chrono::steady_clock::now();
        std::forward<Fn>(fn)();
        const auto t1 = std::chrono::steady_clock::now();
        if (session)
            session->span(Track::kHost, name, t0_ns,
                          session->now_ns());
        finish_stage(
            name, std::chrono::duration<double>(t1 - t0).count());
    }

    const std::vector<StageProfile> &
    stages() const
    {
        return stages_;
    }

    /** Seconds summed over all recorded stages. */
    double total_seconds() const;

    /** The rows as a JSON array (the benches' "stages" field):
     * [{"stage": ..., "seconds": ..., "rss_mb": ...,
     *   "peak_rss_mb": ...}, ...] */
    void write_json_array(std::ostream &os,
                          const char *indent = "    ") const;

  private:
    void finish_stage(const std::string &name, double seconds);

    std::shared_ptr<MetricsRegistry> registry_;
    std::string prefix_;
    std::vector<StageProfile> stages_;
};

/**
 * Background gauge sampler. Probes are registered before start();
 * every interval the thread evaluates each probe, stores the value in
 * the registry gauge of the same name, and (when a TraceSession is
 * installed) records a counter sample on the probe's track so the
 * timeline shows the value over time. stop() (or destruction) joins
 * the thread; the final tick is taken before exit so short runs still
 * get at least one sample.
 */
class Sampler
{
  public:
    explicit Sampler(std::shared_ptr<MetricsRegistry> registry,
                     std::chrono::milliseconds interval =
                         std::chrono::milliseconds(50));
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Registers a probe; must be called before start(). The callback
     * runs on the sampler thread and must be thread-safe. */
    void add_probe(std::string name, Track track,
                   std::function<double()> fn);

    /** Registers a "<prefix>.rss_mb" probe over read_memory_stats(). */
    void add_rss_probe(const std::string &prefix = "host",
                       Track track = Track::kHost);

    void start();
    void stop();

  private:
    struct Probe {
        std::string name;
        Track track;
        std::function<double()> fn;
    };

    void run();
    void tick();

    std::shared_ptr<MetricsRegistry> registry_;
    std::chrono::milliseconds interval_;
    // probes_ is immutable once start() spawns the thread (add_probe's
    // documented contract), so the sampler thread reads it unlocked.
    std::vector<Probe> probes_;
    std::thread thread_;
    Mutex mutex_;
    CondVar cv_;
    bool stopping_ FLOWGNN_GUARDED_BY(mutex_) = false;
};

} // namespace obs
} // namespace flowgnn

#endif // FLOWGNN_OBS_STAGE_PROFILE_H
