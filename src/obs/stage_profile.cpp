#include "obs/stage_profile.h"

#include <cstdlib>
#include <cstring>
#include <fstream>

namespace flowgnn {
namespace obs {

MemoryStats
read_memory_stats()
{
    MemoryStats m;
    std::ifstream is("/proc/self/status");
    std::string line;
    while (std::getline(is, line)) {
        if (line.compare(0, 6, "VmRSS:") == 0)
            m.rss_kb = std::atol(line.c_str() + 7);
        else if (line.compare(0, 6, "VmHWM:") == 0)
            m.hwm_kb = std::atol(line.c_str() + 7);
    }
    return m;
}

void
StageProfiler::finish_stage(const std::string &name, double seconds)
{
    StageProfile s;
    s.name = name;
    s.seconds = seconds;
    MemoryStats m = read_memory_stats();
    s.rss_kb = m.rss_kb;
    s.hwm_kb = m.hwm_kb;
    stages_.push_back(std::move(s));
    if (registry_)
        registry_->histogram(prefix_ + ".stage_seconds")
            .record(seconds);
}

double
StageProfiler::total_seconds() const
{
    double total = 0.0;
    for (const StageProfile &s : stages_)
        total += s.seconds;
    return total;
}

void
StageProfiler::write_json_array(std::ostream &os,
                                const char *indent) const
{
    os << "[\n";
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        const StageProfile &s = stages_[i];
        os << indent << "{\"stage\": \"" << json_escape(s.name)
           << "\", \"seconds\": " << s.seconds
           << ", \"rss_mb\": " << static_cast<double>(s.rss_kb) / 1024.0
           << ", \"peak_rss_mb\": "
           << static_cast<double>(s.hwm_kb) / 1024.0 << "}"
           << (i + 1 < stages_.size() ? "," : "") << "\n";
    }
    // Close at one level shallower than the rows.
    os << (std::strlen(indent) >= 2 ? indent + 2 : indent) << "]";
}

// ---------------------------------------------------------------------------
// Sampler

Sampler::Sampler(std::shared_ptr<MetricsRegistry> registry,
                 std::chrono::milliseconds interval)
    : registry_(std::move(registry)), interval_(interval)
{
    if (interval_ <= std::chrono::milliseconds(0))
        interval_ = std::chrono::milliseconds(1);
}

Sampler::~Sampler() { stop(); }

void
Sampler::add_probe(std::string name, Track track,
                   std::function<double()> fn)
{
    probes_.push_back({std::move(name), track, std::move(fn)});
}

void
Sampler::add_rss_probe(const std::string &prefix, Track track)
{
    add_probe(prefix + ".rss_mb", track, [] {
        return static_cast<double>(read_memory_stats().rss_kb) /
               1024.0;
    });
}

void
Sampler::start()
{
    if (thread_.joinable())
        return;
    {
        // Under the lock even though no sampler thread exists yet:
        // stopping_ is mutex-guarded state, and taking the lock here
        // keeps the start/stop/start reuse path inside the same
        // discipline the analysis proves for every other access.
        MutexLock lock(&mutex_);
        stopping_ = false;
    }
    thread_ = std::thread([this] { run(); });
}

void
Sampler::stop()
{
    if (!thread_.joinable())
        return;
    {
        MutexLock lock(&mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
Sampler::run()
{
    UniqueLock lock(&mutex_);
    for (;;) {
        lock.unlock();
        tick();
        lock.lock();
        if (stopping_)
            return; // final tick already taken above
        cv_.wait_for(lock, interval_,
                     [this]() FLOWGNN_REQUIRES(mutex_) {
                         return stopping_;
                     });
        if (stopping_) {
            lock.unlock();
            tick(); // closing sample so short runs record an endpoint
            return;
        }
    }
}

void
Sampler::tick()
{
    TraceSession *session = TraceSession::current();
    for (const Probe &p : probes_) {
        const double v = p.fn();
        if (registry_)
            registry_->gauge(p.name).set(v);
        if (session)
            session->counter(p.track, p.name, v);
    }
}

} // namespace obs
} // namespace flowgnn
