#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace flowgnn {
namespace obs {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(double alpha, double floor, double ceiling)
{
    if (!(alpha > 0.0 && alpha < 1.0))
        throw std::invalid_argument(
            "Histogram: alpha must be in (0, 1)");
    if (!(floor > 0.0 && ceiling > floor))
        throw std::invalid_argument(
            "Histogram: need 0 < floor < ceiling");
    alpha_ = alpha;
    floor_ = floor;
    gamma_ = (1.0 + alpha) / (1.0 - alpha);
    inv_log_gamma_ = 1.0 / std::log(gamma_);
    const std::size_t n = static_cast<std::size_t>(
        std::ceil(std::log(ceiling / floor) * inv_log_gamma_));
    buckets_ = std::vector<std::atomic<std::uint64_t>>(n + 1);
}

std::size_t
Histogram::bucket_index(double v) const
{
    if (!(v > floor_))
        return 0; // <= floor, non-finite, and negatives clamp low
    double idx = std::log(v / floor_) * inv_log_gamma_;
    std::size_t i = static_cast<std::size_t>(idx);
    return std::min(i, buckets_.size() - 1);
}

void
Histogram::record(double v)
{
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Min/max via CAS against +-inf sentinels (snapshot() maps an
    // empty histogram's extremes back to 0).
    double cur = min_.load(std::memory_order_relaxed);
    while (v < cur && !min_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed))
        ;
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed))
        ;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.alpha = alpha_;
    s.bucket_floor = floor_;
    s.gamma = gamma_;
    s.buckets.resize(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
    s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
    return s;
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest rank over the bucket cumulative counts.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            if (i == 0)
                return bucket_floor; // the [0, floor] catch-all
            // Geometric midpoint of [floor*g^i, floor*g^(i+1)):
            // relative error <= sqrt(gamma) - 1 ~= alpha.
            return bucket_floor *
                   std::pow(gamma, static_cast<double>(i) + 0.5);
        }
    }
    return max; // only reachable through concurrent-update skew
}

HistogramSnapshot
HistogramSnapshot::delta(const HistogramSnapshot &earlier) const
{
    HistogramSnapshot d = *this;
    d.count -= std::min(earlier.count, d.count);
    d.sum -= earlier.sum;
    for (std::size_t i = 0;
         i < d.buckets.size() && i < earlier.buckets.size(); ++i)
        d.buckets[i] -= std::min(earlier.buckets[i], d.buckets[i]);
    return d;
}

HistogramSnapshot
HistogramSnapshot::merge(const HistogramSnapshot &other) const
{
    HistogramSnapshot m = *this;
    m.count += other.count;
    m.sum += other.sum;
    if (other.count > 0) {
        m.min = count == 0 ? other.min : std::min(m.min, other.min);
        m.max = count == 0 ? other.max : std::max(m.max, other.max);
    }
    if (m.buckets.size() < other.buckets.size())
        m.buckets.resize(other.buckets.size(), 0);
    for (std::size_t i = 0; i < other.buckets.size(); ++i)
        m.buckets[i] += other.buckets[i];
    return m;
}

// ---------------------------------------------------------------------------
// Snapshot serialization

namespace {

/** Finite doubles in shortest round-trip-ish form; JSON has no inf. */
void
write_number(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "0";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    os << buf;
}

std::string
prometheus_name(const std::string &name)
{
    std::string out = "flowgnn_";
    for (char c : name)
        out.push_back(c == '.' || c == '-' ? '_' : c);
    return out;
}

constexpr double kExportQuantiles[] = {0.5, 0.9, 0.95, 0.99};

} // namespace

MetricsSnapshot
MetricsSnapshot::delta(const MetricsSnapshot &earlier) const
{
    MetricsSnapshot d = *this;
    for (auto &[name, v] : d.counters) {
        auto it = earlier.counters.find(name);
        if (it != earlier.counters.end())
            v -= std::min(it->second, v);
    }
    for (auto &[name, h] : d.histograms) {
        auto it = earlier.histograms.find(name);
        if (it != earlier.histograms.end())
            h = h.delta(it->second);
    }
    return d;
}

void
MetricsSnapshot::write_json(std::ostream &os) const
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, v] : counters) {
        os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << v;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, v] : gauges) {
        os << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
        write_number(os, v);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        os << (first ? "\n" : ",\n") << "    \"" << name
           << "\": {\"count\": " << h.count << ", \"sum\": ";
        write_number(os, h.sum);
        os << ", \"min\": ";
        write_number(os, h.min);
        os << ", \"max\": ";
        write_number(os, h.max);
        os << ", \"mean\": ";
        write_number(os, h.mean());
        for (double q : kExportQuantiles) {
            char label[16];
            std::snprintf(label, sizeof label, "p%g", q * 100.0);
            os << ", \"" << label << "\": ";
            write_number(os, h.quantile(q));
        }
        os << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

void
MetricsSnapshot::write_prometheus(std::ostream &os) const
{
    for (const auto &[name, v] : counters) {
        std::string p = prometheus_name(name);
        os << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
    }
    for (const auto &[name, v] : gauges) {
        std::string p = prometheus_name(name);
        os << "# TYPE " << p << " gauge\n" << p << " ";
        write_number(os, v);
        os << "\n";
    }
    for (const auto &[name, h] : histograms) {
        std::string p = prometheus_name(name);
        os << "# TYPE " << p << " summary\n";
        for (double q : kExportQuantiles) {
            os << p << "{quantile=\"" << q << "\"} ";
            write_number(os, h.quantile(q));
            os << "\n";
        }
        os << p << "_sum ";
        write_number(os, h.sum);
        os << "\n" << p << "_count " << h.count << "\n";
        os << "# TYPE " << p << "_min gauge\n" << p << "_min ";
        write_number(os, h.min);
        os << "\n# TYPE " << p << "_max gauge\n" << p << "_max ";
        write_number(os, h.max);
        os << "\n";
    }
}

// ---------------------------------------------------------------------------
// Registry

Counter &
MetricsRegistry::counter(const std::string &name)
{
    MutexLock lock(&mutex_);
    Entry &e = metrics_[name];
    if (e.gauge || e.histogram)
        throw std::logic_error("MetricsRegistry: '" + name +
                               "' already registered as another type");
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    MutexLock lock(&mutex_);
    Entry &e = metrics_[name];
    if (e.counter || e.histogram)
        throw std::logic_error("MetricsRegistry: '" + name +
                               "' already registered as another type");
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, double alpha)
{
    MutexLock lock(&mutex_);
    Entry &e = metrics_[name];
    if (e.counter || e.gauge)
        throw std::logic_error("MetricsRegistry: '" + name +
                               "' already registered as another type");
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>(alpha);
    return *e.histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MutexLock lock(&mutex_);
    MetricsSnapshot s;
    for (const auto &[name, e] : metrics_) {
        if (e.counter)
            s.counters[name] = e.counter->value();
        else if (e.gauge)
            s.gauges[name] = e.gauge->value();
        else if (e.histogram)
            s.histograms[name] = e.histogram->snapshot();
    }
    return s;
}

const std::shared_ptr<MetricsRegistry> &
MetricsRegistry::global()
{
    static const std::shared_ptr<MetricsRegistry> instance =
        std::make_shared<MetricsRegistry>();
    return instance;
}

} // namespace obs
} // namespace flowgnn
