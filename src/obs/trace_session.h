/**
 * @file
 * flowgnn::obs — span tracing: one wall-clock timeline from request
 * arrival to merged result, across every subsystem.
 *
 * A TraceSession owns per-thread span buffers and exports Chrome
 * trace-event JSON (open in Perfetto / chrome://tracing). Each
 * subsystem is a *process* row (Track), each recording thread (or
 * explicitly-addressed unit) a *thread* row inside it, so a single
 * view shows: io open/parse/plan stages, serve submit + queue-wait,
 * pool die leases, per-slice shard execution, per-layer ghost
 * exchanges — and, merged onto the same timeline through a cycle→µs
 * CycleClockMap, the engine's cycle-domain unit trace.
 *
 * Recording discipline:
 *  - Instrumented code never holds a session pointer; it asks
 *    TraceSession::current() (one relaxed atomic load). With no
 *    session installed a Span is two branches and no clock read —
 *    the disabled-path cost bench_obs_overhead gates at < 2%.
 *  - Each recording thread appends to its own fixed-capacity buffer:
 *    no shared write contention, and slots are written exactly once
 *    before being published by a release-store of the buffer's count
 *    (single-writer, so the exporter's acquire-read of published
 *    slots is race-free even while other threads keep recording).
 *    A full buffer drops new records and counts the drops — tracing
 *    never blocks or reallocates on the hot path.
 *  - Span names are copied into the record (48-byte inline buffer,
 *    truncating); callers may pass stack-formatted strings.
 *
 * Clock domains: wall spans use steady_clock ns since the session
 * epoch. Cycle-domain events (engine unit traces, the ghost
 * executor's modeled per-die timeline) are mapped with
 * CycleClockMap{anchor_ns, clock_mhz}: cycle c lands at
 * anchor_ns + c / clock_mhz µs, where the anchor is the wall instant
 * the modeled run started — so modeled rows line up under the wall
 * spans that produced them.
 */
#ifndef FLOWGNN_OBS_TRACE_SESSION_H
#define FLOWGNN_OBS_TRACE_SESSION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.h"
#include "core/trace.h"

namespace flowgnn {
namespace obs {

/** Subsystem timeline: one Chrome-trace process row each. */
enum class Track : std::uint8_t {
    kHost = 0, ///< driver / bench stages (open, features, ...)
    kIo,       ///< graph ingestion: mmap, checksum, parse
    kServe,    ///< InferenceService: submit, queue-wait, replica runs
    kPool,     ///< PoolScheduler/DiePool: queue-wait, die leases
    kShard,    ///< halo sharding: planning, per-slice execution
    kGhost,    ///< ghost exchange: planning, pricing, modeled timeline
    kEngine,   ///< cycle-domain engine unit trace (mapped to µs)
};
constexpr std::size_t kNumTracks = 7;

/** Display name of a track ("serve", "pool", ...). */
const char *track_name(Track track);

/** Maps modeled kernel cycles onto the session's wall timeline. */
struct CycleClockMap {
    std::uint64_t anchor_ns = 0; ///< wall instant of cycle 0
    double clock_mhz = 300.0;

    /** Cycle c in session-ns: anchor + c/mhz µs. */
    std::uint64_t
    to_ns(std::uint64_t cycle) const
    {
        return anchor_ns + static_cast<std::uint64_t>(
                               static_cast<double>(cycle) * 1e3 /
                               clock_mhz);
    }
};

/** Tuning knobs for a TraceSession. */
struct TraceOptions {
    /** Per-thread record capacity; records past it are dropped (and
     * counted) rather than blocking or reallocating. */
    std::size_t buffer_capacity = 1 << 16;
};

/**
 * One tracing capture. Construct, install(), run the workload,
 * write_chrome_trace(), destroy. Instrumented code records through
 * TraceSession::current(); uninstalled sessions record nothing.
 * Destruction uninstalls automatically. Only one session can be
 * installed at a time (latest install wins).
 */
class TraceSession
{
  public:
    explicit TraceSession(TraceOptions options = {});
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Makes this the process-wide recording target. */
    void install();
    /** Stops recording into this session (idempotent). */
    void uninstall();
    /** The installed session, or nullptr (one relaxed atomic load —
     * the whole disabled-path cost of instrumentation). */
    static TraceSession *current();

    /** Nanoseconds since the session epoch (steady clock). */
    std::uint64_t now_ns() const;

    /** Records one complete span on the calling thread's row. */
    void span(Track track, std::string_view name,
              std::uint64_t start_ns, std::uint64_t end_ns);

    /** Records a span on an explicitly-addressed row (modeled units,
     * dies). Explicit tids live in a separate namespace from thread
     * rows: use kExplicitTidBase + your unit index. */
    void span_on(Track track, std::uint32_t tid, std::string_view name,
                 std::uint64_t start_ns, std::uint64_t end_ns);

    /** Records a counter sample (gauge timeline: queue depth, busy
     * dies, RSS) at the current instant. Rendered by Perfetto as a
     * stacked counter track on the Track's process row. */
    void counter(Track track, std::string_view name, double value);

    /** Names the calling thread's row on `track` ("replica 0",
     * "die 3"). Idempotent and cheap enough to call per dispatch. */
    void name_thread(Track track, std::string_view name);

    /** Names an explicitly-addressed row. */
    void name_row(Track track, std::uint32_t tid,
                  std::string_view name);

    /**
     * Merges a cycle-domain engine unit trace onto the timeline:
     * every TraceEvent becomes a span on Track::kEngine, with NT
     * unit u as row `die*kUnitsPerDie + u`, MP unit u offset by
     * kMpRowOffset, timestamps through `map`. Rows are named
     * "die D · NT u" / "die D · MP u".
     */
    void add_cycle_trace(const std::vector<TraceEvent> &events,
                         const CycleClockMap &map,
                         std::uint32_t die = 0);

    /** Chrome trace-event JSON: process/thread metadata + all
     * recorded spans and counters. Safe to call while other threads
     * are still recording (they keep appending; the export sees a
     * consistent prefix of each buffer). */
    void write_chrome_trace(std::ostream &os) const;

    /** Records accepted across all thread buffers. */
    std::size_t recorded() const;
    /** Records dropped because a thread buffer filled up. */
    std::size_t dropped() const;

    /** Explicit row ids must start here; lower tids are assigned to
     * recording threads in registration order. */
    static constexpr std::uint32_t kExplicitTidBase = 1000;
    /** Engine-track row layout for add_cycle_trace. */
    static constexpr std::uint32_t kUnitsPerDie = 200;
    static constexpr std::uint32_t kMpRowOffset = 100;

  private:
    struct Record {
        std::uint64_t start_ns;
        std::uint64_t end_ns; ///< counter: value bit-cast to u64
        std::uint32_t tid;
        Track track;
        std::uint8_t kind; ///< 0 = span, 1 = counter
        char name[46];
    };

    struct ThreadBuffer {
        explicit ThreadBuffer(std::size_t capacity)
            : records(capacity)
        {
        }
        std::vector<Record> records;
        std::atomic<std::size_t> published{0};
        std::atomic<std::uint64_t> dropped{0};
        std::uint32_t tid = 0;
    };

    ThreadBuffer &buffer_for_this_thread();
    void push(ThreadBuffer &buf, Track track, std::uint32_t tid,
              std::uint8_t kind, std::string_view name,
              std::uint64_t start_ns, std::uint64_t end_ns);

    TraceOptions options_;
    std::chrono::steady_clock::time_point epoch_;

    // mutex_ guards the buffer *list* and row names only; the
    // ThreadBuffer contents are single-writer lock-free (records
    // published by a release-store of `published`, read with acquire —
    // see the recording-discipline note above), so they stay
    // un-annotated by design.
    mutable Mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_
        FLOWGNN_GUARDED_BY(mutex_);
    std::uint32_t next_tid_ FLOWGNN_GUARDED_BY(mutex_) = 1;
    std::map<std::pair<std::uint8_t, std::uint32_t>, std::string>
        row_names_ FLOWGNN_GUARDED_BY(mutex_);
};

/**
 * RAII span: records [construction, destruction) on `track` when a
 * session is installed, nothing otherwise. The name is captured at
 * construction (temporaries are safe). finish() ends it early.
 */
class Span
{
  public:
    Span(Track track, std::string_view name)
        : session_(TraceSession::current())
    {
        if (session_) {
            track_ = track;
            std::size_t n = std::min(name.size(), sizeof(name_) - 1);
            std::memcpy(name_, name.data(), n);
            name_[n] = '\0';
            start_ns_ = session_->now_ns();
        }
    }

    ~Span() { finish(); }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    void
    finish()
    {
        if (session_) {
            session_->span(track_, name_, start_ns_,
                           session_->now_ns());
            session_ = nullptr;
        }
    }

  private:
    TraceSession *session_;
    Track track_{};
    std::uint64_t start_ns_ = 0;
    char name_[48];
};

} // namespace obs
} // namespace flowgnn

#endif // FLOWGNN_OBS_TRACE_SESSION_H
