/**
 * @file
 * flowgnn::obs — the unified metrics registry: named counters, gauges,
 * and log-bucketed histograms shared by every subsystem, exportable as
 * JSON and as Prometheus text exposition.
 *
 * Design constraints, in order:
 *  - Hot-path updates are lock-free (relaxed atomics); registration is
 *    mutex-guarded and meant to happen once at wire-up time, after
 *    which call sites hold plain references.
 *  - Histograms are O(1) in memory regardless of sample count: a fixed
 *    array of geometric ("log") buckets. With accuracy parameter
 *    `alpha` the bucket ratio is gamma = (1 + alpha) / (1 - alpha) and
 *    every reported quantile is within relative error `alpha` of the
 *    exact sample quantile (the DDSketch bound: a bucket spans
 *    [g^i, g^(i+1)) and its representative is the geometric midpoint,
 *    so |reported - exact| / exact <= (sqrt(gamma) - 1) ≈ alpha).
 *    The default alpha = 0.01 keeps p50/p95/p99 within 1% over the
 *    full service lifetime — strictly better than the bounded
 *    most-recent-window rings it replaced, which were exact over the
 *    window but blind to everything before it.
 *  - Everything is mergeable: snapshots subtract (delta semantics) and
 *    histograms add bucket-wise, so per-replica or per-process
 *    registries can be combined without losing quantile accuracy.
 *
 * Naming scheme (see docs/DESIGN.md "Observability"): metric names are
 * dot-separated `<subsystem>.<noun>[_<unit>]`, e.g. `serve.latency_ms`,
 * `pool.queue_delay_ms`, `io.bytes_mapped`. Prometheus export rewrites
 * dots to underscores and prefixes `flowgnn_`.
 */
#ifndef FLOWGNN_OBS_METRICS_H
#define FLOWGNN_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/sync.h"

namespace flowgnn {
namespace obs {

/** Monotonic event count. Lock-free; relaxed memory order (telemetry
 * never orders data). */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value (queue depth, RSS, occupancy). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(double v)
    {
        value_.fetch_add(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Read-only copy of a histogram's state at one instant. */
struct HistogramSnapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0; ///< exact observed minimum (0 when count == 0)
    double max = 0.0; ///< exact observed maximum
    double alpha = 0.0;       ///< relative quantile-error bound
    double bucket_floor = 0.0; ///< values below clamp to bucket 0
    double gamma = 1.0;        ///< bucket boundary ratio
    std::vector<std::uint64_t> buckets;

    /**
     * Nearest-rank quantile estimate, q in [0, 1]. Within relative
     * error `alpha` of the exact sample quantile for values in
     * [bucket_floor, bucket_floor * gamma^buckets]; values at or below
     * the floor report the floor. Returns 0 when empty.
     */
    double quantile(double q) const;

    double
    mean() const
    {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /** Bucket-wise difference vs an earlier snapshot of the same
     * histogram (count/sum/buckets subtract; min/max stay absolute —
     * extremes are not invertible from a delta). */
    HistogramSnapshot delta(const HistogramSnapshot &earlier) const;

    /** Bucket-wise sum with a snapshot of an identically-configured
     * histogram (merging per-replica registries). */
    HistogramSnapshot merge(const HistogramSnapshot &other) const;
};

/**
 * Log-bucketed histogram: O(1) memory, lock-free record(), mergeable.
 * Covers [bucket_floor, bucket_floor * gamma^N) with N =
 * ceil(log(range) / log(gamma)) buckets; out-of-range values clamp to
 * the end buckets (their counts stay exact, their value error grows).
 * Defaults cover 1e-6 .. 1e9 — nine decades above a microsecond, wide
 * enough for ns-to-hours latencies in ms units.
 */
class Histogram
{
  public:
    explicit Histogram(double alpha = 0.01, double floor = 1e-6,
                       double ceiling = 1e9);

    /** Records one sample. Lock-free: one relaxed fetch_add per
     * bucket/count/sum plus two bounded CAS loops for min/max. */
    void record(double v);

    HistogramSnapshot snapshot() const;

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double alpha() const { return alpha_; }

  private:
    std::size_t bucket_index(double v) const;

    double alpha_;
    double floor_;
    double gamma_;
    double inv_log_gamma_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/** A deterministic copy of every metric in a registry at one instant:
 * iteration order is sorted by name, so two snapshots of identical
 * state serialize byte-identically. */
struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Counter/histogram difference vs an earlier snapshot (gauges
     * stay at their current values — they are not cumulative). */
    MetricsSnapshot delta(const MetricsSnapshot &earlier) const;

    /** JSON object: {"counters": {...}, "gauges": {...},
     * "histograms": {name: {count, sum, min, max, mean, p50, p90,
     * p95, p99}}}, keys sorted. */
    void write_json(std::ostream &os) const;

    /** Prometheus text exposition: counters and gauges verbatim,
     * histograms as summaries (quantile labels + _sum/_count) plus
     * _min/_max gauges. Names are prefixed `flowgnn_` with dots
     * rewritten to underscores. */
    void write_prometheus(std::ostream &os) const;
};

/**
 * Named metric registry. register-once / update-forever: counter(),
 * gauge(), and histogram() return a stable reference (creating the
 * metric on first use, mutex-guarded); updates through the reference
 * are lock-free. Requesting an existing name as a different metric
 * type throws std::logic_error.
 *
 * Sharing: subsystems accept a std::shared_ptr<MetricsRegistry> in
 * their configs and default to a private one; pass the same registry
 * to every subsystem to get one process-wide export surface (metric
 * names are disjoint per subsystem by the naming scheme; two
 * *instances* of the same subsystem sharing a registry aggregate into
 * the same metrics, which is the Prometheus-style intent).
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name, double alpha = 0.01);

    MetricsSnapshot snapshot() const;

    /** The process-wide default registry (CLI tools and benches). */
    static const std::shared_ptr<MetricsRegistry> &global();

  private:
    struct Entry {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable Mutex mutex_; ///< guards the map, not the metrics
    std::map<std::string, Entry> metrics_ FLOWGNN_GUARDED_BY(mutex_);
};

} // namespace obs
} // namespace flowgnn

#endif // FLOWGNN_OBS_METRICS_H
