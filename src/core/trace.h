/**
 * @file
 * Execution tracing: per-unit busy intervals recorded by the cycle
 * simulation, exportable as a Chrome trace (chrome://tracing /
 * Perfetto) for visual inspection of the pipeline overlap the
 * architecture is built around.
 */
#ifndef FLOWGNN_CORE_TRACE_H
#define FLOWGNN_CORE_TRACE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace flowgnn {

/**
 * Escapes a string for embedding inside a JSON string literal:
 * backslash, double quote, and control characters (as \uXXXX or the
 * short forms \n \r \t \b \f). Shared by every JSON writer in the
 * tree so no exported name can break a document.
 */
std::string json_escape(std::string_view s);

/** What a processing unit was doing during an interval. */
enum class TraceKind {
    kNtAccumulate, ///< NT unit accumulating a node's transform
    kNtOutput,     ///< NT unit streaming a node's embedding out
    kMpWork,       ///< MP unit processing one queue entry
};

/** Short label for a trace kind. */
const char *trace_kind_name(TraceKind kind);

/** One busy interval of one unit. */
struct TraceEvent {
    TraceKind kind;
    std::uint32_t unit;  ///< NT or MP unit index
    NodeId node;         ///< the node being processed
    std::uint64_t start; ///< absolute cycle (inclusive)
    std::uint64_t end;   ///< absolute cycle (exclusive)
};

/**
 * Writes the events as a Chrome trace JSON document. Each NT/MP unit
 * becomes a thread row labeled by process/thread-name metadata events
 * ("NT 0", "MP 2" under process "flowgnn engine (cycle domain)"), so
 * Perfetto shows named unit rows instead of bare tids; event
 * timestamps are microseconds at the given kernel clock. All name
 * strings are JSON-escaped. An empty event list writes an empty array
 * (no metadata).
 *
 * For a multi-subsystem wall-clock timeline that merges this cycle
 * trace with serve/pool/shard/ghost/io spans, see
 * obs/trace_session.h.
 */
void write_chrome_trace(std::ostream &os,
                        const std::vector<TraceEvent> &events,
                        double clock_mhz = 300.0);

} // namespace flowgnn

#endif // FLOWGNN_CORE_TRACE_H
