#include "core/trace.h"

namespace flowgnn {

const char *
trace_kind_name(TraceKind kind)
{
    switch (kind) {
      case TraceKind::kNtAccumulate: return "nt-accumulate";
      case TraceKind::kNtOutput: return "nt-output";
      case TraceKind::kMpWork: return "mp-work";
    }
    return "unknown";
}

void
write_chrome_trace(std::ostream &os,
                   const std::vector<TraceEvent> &events,
                   double clock_mhz)
{
    const double us_per_cycle = 1.0 / clock_mhz;
    os << "[\n";
    bool first = true;
    for (const auto &e : events) {
        if (!first)
            os << ",\n";
        first = false;
        // Thread id: NT units 0..99, MP units offset by 100.
        int tid = (e.kind == TraceKind::kMpWork)
            ? 100 + static_cast<int>(e.unit)
            : static_cast<int>(e.unit);
        os << "  {\"name\": \"" << trace_kind_name(e.kind) << " n"
           << e.node << "\", \"cat\": \"" << trace_kind_name(e.kind)
           << "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " << tid
           << ", \"ts\": " << static_cast<double>(e.start) * us_per_cycle
           << ", \"dur\": "
           << static_cast<double>(e.end - e.start) * us_per_cycle
           << "}";
    }
    os << "\n]\n";
}

} // namespace flowgnn
