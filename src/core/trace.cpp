#include "core/trace.h"

#include <cstdio>
#include <set>

namespace flowgnn {

const char *
trace_kind_name(TraceKind kind)
{
    switch (kind) {
      case TraceKind::kNtAccumulate: return "nt-accumulate";
      case TraceKind::kNtOutput: return "nt-output";
      case TraceKind::kMpWork: return "mp-work";
    }
    return "unknown";
}

std::string
json_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    return out;
}

void
write_chrome_trace(std::ostream &os,
                   const std::vector<TraceEvent> &events,
                   double clock_mhz)
{
    const double us_per_cycle = 1.0 / clock_mhz;
    // Thread id: NT units 0..99, MP units offset by 100.
    auto row = [](const TraceEvent &e) {
        return (e.kind == TraceKind::kMpWork)
                   ? 100 + static_cast<int>(e.unit)
                   : static_cast<int>(e.unit);
    };

    os << "[\n";
    bool first = true;
    auto emit = [&](const std::string &line) {
        os << (first ? "  " : ",\n  ") << line;
        first = false;
    };

    // Metadata first, so Perfetto labels rows instead of showing bare
    // tids. An empty trace stays an empty array.
    if (!events.empty()) {
        emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
             "\"args\": {\"name\": \"flowgnn engine (cycle "
             "domain)\"}}");
        std::set<int> rows;
        for (const auto &e : events)
            rows.insert(row(e));
        char line[160];
        for (int tid : rows) {
            std::snprintf(line, sizeof line,
                          "{\"name\": \"thread_name\", \"ph\": \"M\", "
                          "\"pid\": 0, \"tid\": %d, \"args\": "
                          "{\"name\": \"%s %d\"}}",
                          tid, tid >= 100 ? "MP" : "NT",
                          tid >= 100 ? tid - 100 : tid);
            emit(line);
        }
    }

    char line[256];
    for (const auto &e : events) {
        std::string name = json_escape(
            std::string(trace_kind_name(e.kind)) + " n" +
            std::to_string(e.node));
        std::string cat = json_escape(trace_kind_name(e.kind));
        std::snprintf(line, sizeof line,
                      "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": "
                      "\"X\", \"pid\": 0, \"tid\": %d, \"ts\": %g, "
                      "\"dur\": %g}",
                      name.c_str(), cat.c_str(), row(e),
                      static_cast<double>(e.start) * us_per_cycle,
                      static_cast<double>(e.end - e.start) *
                          us_per_cycle);
        emit(line);
    }
    os << "\n]\n";
}

} // namespace flowgnn
