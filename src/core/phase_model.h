/**
 * @file
 * The engine's phase-timing machinery, factored out of Engine so other
 * executors can drive it. A pipeline phase is described by PhaseWork —
 * node count, per-node NT accumulate cycles, output stream width, and
 * the destination-bank split of the scatter — and run_phase() prices
 * it under any of the four PipelineModes, invoking the caller's
 * functional callbacks at the microarchitecturally correct moments.
 *
 * Engine builds one PhaseWork per stage over the whole graph; the
 * ghost-exchange executor (src/ghost) builds one per stage per die
 * with per-node costs that differ between owned nodes (full NT work)
 * and ghost nodes (zero-cost re-stream of an embedding received over
 * the inter-die link — the same mechanism the GAT re-stream round
 * uses). Keeping the timing model in one place is what guarantees a
 * die of the ghost executor and a die of the halo executor price
 * identical work identically.
 *
 * build_stage_schedule() derives the per-stage cost constants
 * (accumulate passes, stream width, scatter expansion) from a model +
 * engine config. Engine and the ghost executor both read their cost
 * numbers from it, so the two can never drift apart.
 */
#ifndef FLOWGNN_CORE_PHASE_MODEL_H
#define FLOWGNN_CORE_PHASE_MODEL_H

#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "nn/model.h"

namespace flowgnn {

inline std::uint64_t
ceil_div_u64(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Per-node destination-bank workload: (bank id, edges in bank). */
struct BankWork {
    std::uint32_t bank;
    std::uint32_t edges;
};

/**
 * Static description of one pipeline phase's work, independent of the
 * pipeline mode. Functional computation is injected via callbacks so
 * the same timing machinery serves every phase type.
 */
struct PhaseWork {
    NodeId n_nodes = 0;
    /** NT accumulate cycles per node (all input-stationary passes);
     * storage lives in the caller's workspace. */
    const std::vector<std::uint64_t> *acc_cycles = nullptr;
    /** Elements streamed out per node (the stage's output dim). */
    std::uint32_t stream_elems = 0;
    bool has_scatter = false;
    /** Extra MP cycles per granule per edge (msg wider than stream). */
    std::uint32_t expansion = 1;
    /** Destination-bank split per node (empty if no out-edges). */
    const std::vector<std::vector<BankWork>> *banks = nullptr;
    /** Called once when a node's NT accumulate completes. */
    std::function<void(NodeId)> on_nt_complete;
    /** Called once per (node, bank) when its MP edge work completes. */
    std::function<void(NodeId, std::uint32_t)> on_mp_complete;
};

/** Everything shared by the timing back-ends for one phase. */
struct PhaseEnv {
    const PhaseWork &work;
    const EngineConfig &cfg;
    const RunOptions &opts;
    RunStats &stats;
    std::uint64_t base_cycle = 0; ///< absolute offset for trace events
};

/**
 * Prices one phase under env.cfg.mode (cycle-stepped simulation for
 * the queue-based modes, closed-form for the analytic ones) and
 * returns its cycle count. env.stats must have nt_units/mp_units/
 * mp_edge_work sized to the config's p_node/p_edge before the call.
 */
std::uint64_t run_phase(const PhaseEnv &env);

/**
 * The per-stage cost constants of one model on one engine config —
 * everything about a stage's timing that does not depend on the graph.
 * Indices mirror Model::stage(i).
 */
struct StageSchedule {
    bool is_gat = false; ///< MP-to-NT attention stage (2 MP rounds)
    /** The phase runs a scatter: this GAT stage's own gather rounds,
     * or the next NT-to-MP conv's message pass fused into this phase. */
    bool has_scatter = false;
    /** Extra NT pass charged for materializing the previous GAT
     * stage's combine, in cycles. */
    std::uint64_t prologue_cycles = 0;
    /** Aggregate-finalize pass for a non-sum aggregator, in cycles. */
    std::uint64_t finalize_cycles = 0;
    /** The stage's own input-stationary FC passes, in cycles. */
    std::uint64_t nt_pass_cycles = 0;
    /** Full per-node NT accumulate: prologue + finalize + FC passes. */
    std::uint64_t acc_cycles = 0;
    /** Elements streamed out per node (the stage's output dim). */
    std::uint32_t stream_elems = 0;
    /** MP cycles per granule per edge (message wider than stream). */
    std::uint32_t expansion = 1;
};

/** Derives the per-stage schedule of `model` on `cfg` (see above). */
std::vector<StageSchedule> build_stage_schedule(const Model &model,
                                                const EngineConfig &cfg);

} // namespace flowgnn

#endif // FLOWGNN_CORE_PHASE_MODEL_H
