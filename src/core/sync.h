/**
 * @file
 * flowgnn::check — the annotated lock primitives every mutex-guarded
 * structure in the tree uses.
 *
 * std::mutex carries no thread-safety attributes in libstdc++, so
 * Clang Thread Safety Analysis cannot see std::lock_guard /
 * std::unique_lock acquisitions at all. These thin wrappers restore
 * visibility: Mutex is an annotated capability over std::mutex,
 * MutexLock / UniqueLock are annotated scoped holds (the lock_guard /
 * unique_lock equivalents), and CondVar is a condition variable that
 * waits on a UniqueLock (std::condition_variable_any — the standard
 * requires std::unique_lock<std::mutex> for plain condition_variable,
 * which would hide the acquisition again).
 *
 * Runtime behavior is identical to the std types they wrap; under
 * ThreadSanitizer they instrument exactly like std::mutex. The shapes
 * (pointer member, conditional destructor release, relockable scoped
 * capability) deliberately mirror the canonical examples in the clang
 * Thread Safety Analysis documentation and abseil's MutexLock /
 * ReleasableMutexLock, which the analysis is known to handle.
 *
 * Wait-predicate convention: a predicate lambda that reads guarded
 * state must carry the capability it relies on —
 *     cv_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) { ... });
 * CondVar::wait calls the predicate with the lock held, so the
 * contract is genuine, and the annotation lets the analysis check the
 * lambda body like any other REQUIRES function.
 */
#ifndef FLOWGNN_CORE_SYNC_H
#define FLOWGNN_CORE_SYNC_H

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace flowgnn {

/** Annotated exclusive capability over std::mutex. */
class FLOWGNN_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() FLOWGNN_ACQUIRE()
    {
        m_.lock();
    }

    void
    unlock() FLOWGNN_RELEASE()
    {
        m_.unlock();
    }

    bool
    try_lock() FLOWGNN_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    std::mutex m_;
};

/** std::lock_guard equivalent: holds for the full scope. */
class FLOWGNN_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex *mu) FLOWGNN_ACQUIRE(mu) : mu_(mu)
    {
        mu_->lock();
    }

    ~MutexLock() FLOWGNN_RELEASE() { mu_->unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex *mu_;
};

/**
 * std::unique_lock equivalent: relockable (the clang-documented
 * scoped-capability shape), releases on destruction only if held, and
 * is the lock type CondVar waits on.
 */
class FLOWGNN_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex *mu) FLOWGNN_ACQUIRE(mu)
        : mu_(mu), owned_(true)
    {
        mu_->lock();
    }

    ~UniqueLock() FLOWGNN_RELEASE()
    {
        if (owned_)
            mu_->unlock();
    }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    void
    lock() FLOWGNN_ACQUIRE()
    {
        mu_->lock();
        owned_ = true;
    }

    void
    unlock() FLOWGNN_RELEASE()
    {
        mu_->unlock();
        owned_ = false;
    }

    bool owns_lock() const { return owned_; }

  private:
    Mutex *mu_;
    bool owned_;
};

/**
 * Condition variable waiting on a UniqueLock. wait() re-establishes
 * the lock before returning (and before every predicate evaluation),
 * exactly like std::condition_variable — the capability is held on
 * entry and on exit, which is all the static analysis needs; the
 * transient release inside the wait is invisible to it by design.
 */
class CondVar
{
  public:
    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    // The bodies are excluded from analysis: they relock through
    // std::condition_variable_any and invoke REQUIRES-annotated
    // predicates, a dynamic hold the static analysis cannot follow
    // (the sanctioned primitive-internal escape; see DESIGN.md).
    void
    wait(UniqueLock &lock) FLOWGNN_NO_THREAD_SAFETY_ANALYSIS
    {
        cv_.wait(lock);
    }

    template <typename Pred>
    void
    wait(UniqueLock &lock, Pred pred) FLOWGNN_NO_THREAD_SAFETY_ANALYSIS
    {
        while (!pred())
            cv_.wait(lock);
    }

    template <typename Rep, typename Period, typename Pred>
    bool
    wait_for(UniqueLock &lock,
             const std::chrono::duration<Rep, Period> &rel_time,
             Pred pred) FLOWGNN_NO_THREAD_SAFETY_ANALYSIS
    {
        return cv_.wait_for(lock, rel_time, std::move(pred));
    }

  private:
    std::condition_variable_any cv_;
};

} // namespace flowgnn

#endif // FLOWGNN_CORE_SYNC_H
