/**
 * @file
 * Host-side range parallelism for the embarrassingly parallel stages
 * of graph ingestion and planning (degree counting, CSR fill, closure
 * extraction, chunked checksums).
 *
 * One primitive is enough: parallel_ranges splits [0, total) into at
 * most `threads` balanced contiguous ranges and runs one callback per
 * range on its own std::thread (range 0 on the calling thread), with a
 * per-call serial cutoff for callers whose elements are not cheap
 * (e.g. 64 MiB checksum chunks). Every
 * algorithm built on it is required to be *bit-identical to its serial
 * form regardless of thread count* — per-thread partial results are
 * merged in thread-index order, never in completion order — so a
 * differential test pinning serial == parallel output is meaningful,
 * and callers may default to all host cores without a determinism
 * knob.
 *
 * Small inputs run serially: below kSerialCutoff elements the thread
 * launch costs more than it saves, and every tiny test graph would
 * otherwise pay it.
 */
#ifndef FLOWGNN_CORE_PARALLEL_H
#define FLOWGNN_CORE_PARALLEL_H

#include <cstddef>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

namespace flowgnn {

/**
 * Resolves a thread-count request: 0 means "all host cores"
 * (std::thread::hardware_concurrency, at least 1), anything else is
 * taken as given.
 */
inline unsigned
host_threads(unsigned requested = 0)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/** Elements below which parallel_ranges stays serial. */
inline constexpr std::size_t kSerialCutoff = 1u << 16;

/**
 * Runs fn(begin, end, tid) over a balanced split of [0, total) across
 * up to `threads` threads (0 = all host cores). Ranges are contiguous,
 * ascending, and differ in size by at most one element; tid is the
 * range index, and range 0 runs on the calling thread. Serial (one
 * range, tid 0) when threads <= 1 or total < serial_cutoff — override
 * the cutoff when elements are expensive (checksum chunks, shard
 * closures) rather than per-edge cheap. The first exception thrown by
 * any range is rethrown on the caller after all threads join.
 */
template <class Fn>
void
parallel_ranges(std::size_t total, unsigned threads, Fn &&fn,
                std::size_t serial_cutoff = kSerialCutoff)
{
    unsigned t = host_threads(threads);
    if (t > total)
        t = total == 0 ? 1 : static_cast<unsigned>(total);
    if (t <= 1 || total < serial_cutoff) {
        fn(std::size_t(0), total, 0u);
        return;
    }

    std::vector<std::exception_ptr> errors(t);
    auto run_range = [&](unsigned tid) {
        const std::size_t begin = total * tid / t;
        const std::size_t end = total * (tid + 1) / t;
        try {
            fn(begin, end, tid);
        } catch (...) {
            errors[tid] = std::current_exception();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(t - 1);
    for (unsigned tid = 1; tid < t; ++tid)
        pool.emplace_back(run_range, tid);
    run_range(0);
    for (std::thread &th : pool)
        th.join();
    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
}

/** The number of ranges parallel_ranges would use — for sizing
 * per-thread scratch (count matrices, partial sums) up front. */
inline unsigned
parallel_range_count(std::size_t total, unsigned threads,
                     std::size_t serial_cutoff = kSerialCutoff)
{
    unsigned t = host_threads(threads);
    if (t > total)
        t = total == 0 ? 1 : static_cast<unsigned>(total);
    if (t <= 1 || total < serial_cutoff)
        return 1;
    return t;
}

} // namespace flowgnn

#endif // FLOWGNN_CORE_PARALLEL_H
