/**
 * @file
 * Engine configuration: the paper's four parallelization parameters
 * (Sec. III-D) plus the pipeline-strategy selector used by the
 * ablation study (Fig. 4 / Fig. 9).
 */
#ifndef FLOWGNN_CORE_CONFIG_H
#define FLOWGNN_CORE_CONFIG_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "tensor/fixed_point.h"

namespace flowgnn {

/**
 * Cooperative preemption flag. A scheduler hands the token to a run
 * via RunOptions::preempt and later calls request(); the engine polls
 * it at every message-passing layer boundary and, when set, yields
 * with a LayerCheckpoint instead of completing — bounding preemption
 * delay to one pipeline phase. Lock-free (relaxed atomics: the
 * checkpoint handoff happens through the scheduler's own mutex).
 */
class PreemptToken
{
  public:
    void
    request()
    {
        requested_.store(true, std::memory_order_relaxed);
    }

    bool
    requested() const
    {
        return requested_.load(std::memory_order_relaxed);
    }

    /** Re-arms the token (a resumed run may be preempted again). */
    void
    reset()
    {
        requested_.store(false, std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> requested_{false};
};

/** Pipelining strategies of Fig. 4. */
enum class PipelineMode {
    kNonPipelined,     ///< Fig. 4(a): NT for all nodes, then MP.
    kFixedPipeline,    ///< Fig. 4(b): lockstep NT(k+1) || MP(k).
    kBaselineDataflow, ///< Fig. 4(c): 1 queue, whole-node handoff.
    kFlowGnn,          ///< Fig. 4(d): multi-unit + intra-node overlap.
};

/** Human-readable mode name. */
const char *pipeline_mode_name(PipelineMode mode);

/**
 * How destination nodes map to MP-unit banks.
 *
 * kModulo is FlowGNN's zero-pre-processing default (dst % Pedge).
 * kGreedyBalanced runs a greedy least-loaded assignment — which needs
 * a pre-pass over the edge list, i.e. pre-processing — and exists only
 * as the ablation for the paper's future-work note on imbalance.
 */
enum class BankPolicy {
    kModulo,
    kGreedyBalanced,
};

/**
 * FlowGNN engine configuration: the construction-time hardware shape
 * of one accelerator instance. Per-run behaviour (trace capture,
 * fixed-point emulation) lives in RunOptions instead, so one engine
 * replica can serve heterogeneous requests.
 *
 * Defaults follow the paper: 2 NT units and 4 MP units (Sec. VI-A),
 * with the best DSE point's dimension parallelism (Fig. 10).
 */
struct EngineConfig {
    std::uint32_t p_node = 2;    ///< NT units (node parallelism)
    std::uint32_t p_edge = 4;    ///< MP units (edge parallelism)
    std::uint32_t p_apply = 4;   ///< NT embedding-dim parallelism
    std::uint32_t p_scatter = 8; ///< MP edge-embedding-dim parallelism
    PipelineMode mode = PipelineMode::kFlowGnn;
    BankPolicy bank_policy = BankPolicy::kModulo;
    std::size_t queue_depth = 8; ///< adapter-to-MP FIFO depth (entries)
    double clock_mhz = 300.0;    ///< paper's U50 kernel clock

    /** Throws std::invalid_argument on a malformed configuration. */
    void
    validate() const
    {
        if (p_node == 0 || p_edge == 0 || p_apply == 0 || p_scatter == 0)
            throw std::invalid_argument(
                "EngineConfig: parallelism parameters must be >= 1");
        if (queue_depth == 0)
            throw std::invalid_argument(
                "EngineConfig: queue_depth must be >= 1");
        if (clock_mhz <= 0.0)
            throw std::invalid_argument(
                "EngineConfig: clock must be positive");
    }

    /** "FlowGNN-<Papply>-<Pscatter>" label used by the ablation plots. */
    std::string label() const;
};

/**
 * Per-run options: everything that may differ between two graphs run
 * on the same engine instance. Split out of EngineConfig so services
 * can decide these per request rather than per replica.
 */
struct RunOptions {
    /**
     * Record per-unit busy intervals into RunStats::trace (queue-based
     * pipeline modes only). Export with write_chrome_trace().
     */
    bool capture_trace = false;
    /**
     * Emulate the HLS kernel's fixed-point datapath: node embeddings,
     * messages, and message-buffer state are quantized to fixed_point
     * after every operation. Off by default (fp32, matching the
     * reference executor exactly).
     */
    bool emulate_fixed_point = false;
    FixedPointFormat fixed_point = kFixed16_10;
    /**
     * Cooperative preemption token (borrowed; may be null). Honored
     * only by Engine::run_resumable and the ghost executor's
     * resumable path — the plain run()/run_prepared() entry points
     * ignore it, so existing callers keep run-to-completion
     * semantics. The token's owner must outlive the run.
     */
    PreemptToken *preempt = nullptr;

    /** Throws std::invalid_argument on malformed options. */
    void
    validate() const
    {
        if (emulate_fixed_point && !fixed_point.valid())
            throw std::invalid_argument(
                "RunOptions: invalid fixed-point format");
    }
};

} // namespace flowgnn

#endif // FLOWGNN_CORE_CONFIG_H
