/**
 * @file
 * The FlowGNN dataflow engine: a cycle-stepped microarchitecture model
 * of the accelerator in paper Fig. 3(b) that simultaneously computes
 * the GNN functionally (for cross-checking against the reference
 * executor) and counts cycles (for every latency experiment).
 *
 * Architecture modeled per pipeline phase:
 *
 *   [node queue] -> Pnode x NT unit -> NT-to-MP adapter (on-the-fly
 *   multicast by destination bank, Papply -> Pscatter re-batching) ->
 *   Pnode*Pedge bounded FIFOs -> Pedge x MP unit -> banked ping-pong
 *   message buffers
 *
 * Each NT unit ping-pongs accumulate/output so the next node's
 * accumulation overlaps the current node's streaming; each MP unit
 * exclusively owns destination bank (dst % Pedge) so units never
 * conflict, with zero graph pre-processing. The four pipeline modes of
 * Fig. 4 are selectable for the ablation study.
 */
#ifndef FLOWGNN_CORE_ENGINE_H
#define FLOWGNN_CORE_ENGINE_H

#include <memory>

#include "core/config.h"
#include "core/stats.h"
#include "graph/sample.h"
#include "nn/model.h"

namespace flowgnn {

/** Output of one engine run. */
struct RunResult {
    /** Final node embeddings [num_nodes x embedding_dim]. */
    Matrix embeddings;
    /** Graph-level prediction from the pooled head. */
    float prediction = 0.0f;
    /** Timing and utilization statistics. */
    RunStats stats;

    /** Wall latency at the clock the engine was configured with. */
    double
    latency_ms() const
    {
        return stats.latency_ms();
    }

    /** Wall latency at an explicit what-if clock. */
    double
    latency_ms(double at_clock_mhz) const
    {
        return stats.latency_ms(at_clock_mhz);
    }
};

/**
 * Functional + timing state captured at a message-passing layer
 * boundary — the engine's preemption checkpoint format (see
 * docs/DESIGN.md "Layer-boundary preemption").
 *
 * A boundary after stage k holds exactly three pieces of state:
 * the embeddings entering stage k+1 (`embeddings`), the message
 * aggregation scattered during stage k's phase and consumed by stage
 * k+1 (`agg_state`; the Aggregator object itself is reconstructed
 * from the model, it carries no run state), and the pending-GAT flag
 * (stage k was attention: `embeddings` holds projections whose
 * combine is deferred into stage k+1's prologue). Everything else the
 * run needs — bank maps, CSR adjacency, stage schedule — is a pure
 * function of (sample, config) and is rebuilt on resume, which is
 * what makes resumed runs bit-identical to uninterrupted ones: the
 * checkpoint stores no derived state that could drift.
 *
 * `stats` carries the timing accumulated so far so the resumed run's
 * RunStats also match the uninterrupted run exactly; the scheduler
 * accounts preemption overhead (checkpoint store + reload DMA,
 * priced from checkpoint_words()) on its own ledger, never inside
 * the run.
 */
struct LayerCheckpoint {
    /** Stages completed; the resume point. 0 = a fresh run. */
    std::size_t next_stage = 0;
    /** Per-node embeddings entering `next_stage` (quantized values
     * are stored post-quantization, so bits are preserved). */
    std::vector<Vec> embeddings;
    /** Pending aggregation state (num_nodes x state_dim, flat), the
     * messages scattered for `next_stage`; empty when have_agg is
     * false. */
    std::vector<float> agg_state;
    bool have_agg = false;
    /** Stage next_stage-1 was GAT: `embeddings` holds projections. */
    bool pending_gat = false;
    /** Timing accumulated over completed stages (load DMA included,
     * head not yet). */
    RunStats stats;
    /** Timing cursor: total phase cycles completed (trace offsets). */
    std::uint64_t phase_base = 0;

    /** Checkpoint size in 4-byte words — what a scheduler charges as
     * store/reload DMA when pricing preemption delay. */
    std::uint64_t
    checkpoint_words() const
    {
        std::uint64_t words = agg_state.size();
        for (const Vec &row : embeddings)
            words += row.size();
        return words;
    }
};

/** How a resumable run segment ended. */
enum class SegmentOutcome {
    kComplete,  ///< ran to the end; the RunResult is filled
    kPreempted, ///< yielded at a layer boundary; checkpoint updated
};

/**
 * Reusable per-run scratch memory. A workspace keeps the graph-sized
 * buffers (bank maps, embedding ping-pong arrays, aggregator state)
 * alive across runs so a long-lived replica's hot path stops paying
 * per-graph allocation; each serve replica owns exactly one. Not
 * thread-safe: never share one workspace between concurrent runs.
 */
class RunWorkspace
{
  public:
    RunWorkspace();
    ~RunWorkspace();
    RunWorkspace(RunWorkspace &&) noexcept;
    RunWorkspace &operator=(RunWorkspace &&) noexcept;
    RunWorkspace(const RunWorkspace &) = delete;
    RunWorkspace &operator=(const RunWorkspace &) = delete;

  private:
    friend class Engine;
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * FlowGNN accelerator instance: one compiled model kernel plus the
 * parallelism configuration. Graphs are streamed in one at a time with
 * zero pre-processing (run() accepts raw COO samples).
 */
class Engine
{
  public:
    /**
     * @param model  the GNN to accelerate (borrowed; must outlive the
     *               engine)
     * @param config parallelism and pipeline-mode settings
     */
    Engine(const Model &model, EngineConfig config = {});

    const EngineConfig &config() const { return config_; }
    const Model &model() const { return model_; }

    /**
     * Runs one graph end to end: input DMA, all pipeline phases,
     * global pooling, and the prediction head. The sample is prepared
     * internally (virtual node / DGN field) exactly as the reference
     * executor prepares it. Scratch memory comes from `ws`, which is
     * reused across calls; the overloads without a workspace allocate
     * a fresh one per call (convenient, but slower on a hot path).
     */
    RunResult run(const GraphSample &sample, const RunOptions &opts,
                  RunWorkspace &ws) const;
    RunResult run(const GraphSample &sample,
                  const RunOptions &opts) const;
    RunResult run(const GraphSample &sample) const;

    /**
     * Runs a sample that is already in prepared form, skipping
     * Model::prepare. This is the entry point for callers that manage
     * preparation themselves — notably sharded execution, where the
     * virtual node / DGN field must be applied to the full graph once
     * and the per-die slices must NOT be re-prepared (a per-slice
     * virtual node would change the model's semantics).
     */
    RunResult run_prepared(const GraphSample &prepared,
                           const RunOptions &opts, RunWorkspace &ws) const;

    /**
     * The canonical run body: a borrowed SampleRef, so mmap-backed
     * graphs (io::GraphView::sample) run without ever materializing a
     * GraphSample. The GraphSample overloads delegate here. `threads`
     * parallelizes the host-side adjacency builds and degree counts
     * (0 = all cores); results are bit-identical for every value. The
     * ref's backing must stay alive for the duration of the call.
     */
    RunResult run_prepared(const SampleRef &prepared,
                           const RunOptions &opts, RunWorkspace &ws,
                           unsigned threads = 0) const;

    /**
     * Preemptible run: executes stages starting from `ckpt.next_stage`
     * (0 = fresh run) and either completes the run (`result` is
     * filled, `ckpt` is reset to fresh) or yields at a message-passing
     * layer boundary (`ckpt` holds the resume state, `result` is
     * meaningless). A segment yields when `opts.preempt` is requested
     * or after `max_stages` stages complete in THIS call — but always
     * runs at least one stage (progress guarantee) and never yields
     * after the final stage (the epilogue is cheaper than a
     * checkpoint). Resuming from the returned checkpoint — on this
     * engine or any identically-configured one — produces embeddings,
     * prediction, and RunStats bit-identical to an uninterrupted run.
     * The checkpoint's buffers are consumed (moved from) on resume.
     */
    SegmentOutcome run_resumable(const SampleRef &prepared,
                                 const RunOptions &opts, RunWorkspace &ws,
                                 LayerCheckpoint &ckpt, RunResult &result,
                                 std::size_t max_stages = std::size_t(-1),
                                 unsigned threads = 0) const;

  private:
    const Model &model_;
    EngineConfig config_;
};

} // namespace flowgnn

#endif // FLOWGNN_CORE_ENGINE_H
