#include "core/phase_model.h"

#include <algorithm>
#include <stdexcept>

#include "core/fifo.h"

namespace flowgnn {

namespace {

/** One entry in an adapter-to-MP queue. */
struct QueueEntry {
    NodeId node = 0;
    std::uint32_t granules = 1;   ///< scatter granules carried
    bool final_entry = false;     ///< last entry for this node
};

/** NT unit: double-buffered accumulate/output state machine. */
struct NtUnitState {
    std::vector<NodeId> nodes; ///< assigned nodes, in order
    std::size_t next = 0;      ///< next node to start accumulating
    bool acc_active = false;
    NodeId acc_node = 0;
    std::uint64_t acc_rem = 0;
    std::uint64_t acc_start = 0; ///< cycle the accumulate began (trace)
    std::uint64_t out_start = 0; ///< cycle the output began (trace)
    bool pong_full = false; ///< node finished acc, waiting to stream
    NodeId pong_node = 0;
    bool out_active = false;
    NodeId out_node = 0;
    std::uint32_t out_sent = 0; ///< elements streamed so far

    bool
    done() const
    {
        return next >= nodes.size() && !acc_active && !pong_full &&
               !out_active;
    }
};

/** Adapter port: Papply -> Pscatter re-batching + multicast. */
struct AdapterPort {
    bool active = false;
    NodeId node = 0;
    std::uint32_t received = 0; ///< elements received from NT
    std::uint32_t emitted_granules = 0;
    std::uint32_t total_granules = 0;
    const std::vector<BankWork> *targets = nullptr;
};

/** MP unit: consumes queue entries, one edge-granule per cycle. */
struct MpUnitState {
    bool busy = false;
    QueueEntry entry;
    std::uint64_t rem = 0;
    std::uint64_t entry_start = 0; ///< cycle the entry began (trace)
    std::size_t rr_cursor = 0; ///< round-robin over source queues
};

std::uint32_t
bank_edges(const std::vector<BankWork> &banks, std::uint32_t bank)
{
    for (const auto &bw : banks)
        if (bw.bank == bank)
            return bw.edges;
    return 0;
}

/**
 * Cycle-stepped simulation of one phase for the queue-based modes
 * (baseline dataflow and FlowGNN). whole_node_handoff selects the
 * baseline behaviour where MP only starts a node after its entire
 * embedding arrived (Fig. 4(c) vs (d)).
 */
std::uint64_t
simulate_phase(const PhaseEnv &env, bool whole_node_handoff)
{
    const PhaseWork &w = env.work;
    const EngineConfig &cfg = env.cfg;
    const std::uint32_t pn = cfg.p_node;
    const std::uint32_t pe = cfg.p_edge;
    const std::uint32_t pa = cfg.p_apply;
    const std::uint32_t ps = cfg.p_scatter;
    const std::uint32_t sg_total =
        w.stream_elems == 0
            ? 0
            : static_cast<std::uint32_t>(
                  ceil_div_u64(w.stream_elems, ps));

    // Assign nodes round-robin to NT units.
    std::vector<NtUnitState> nt(pn);
    for (NodeId n = 0; n < w.n_nodes; ++n)
        nt[n % pn].nodes.push_back(n);

    std::vector<AdapterPort> port(pn);
    std::vector<MpUnitState> mp(pe);
    std::vector<Fifo<QueueEntry>> queues;
    queues.reserve(std::size_t(pn) * pe);
    for (std::size_t i = 0; i < std::size_t(pn) * pe; ++i)
        queues.emplace_back(cfg.queue_depth);
    auto queue_at = [&](std::uint32_t u, std::uint32_t m) -> auto & {
        return queues[std::size_t(u) * pe + m];
    };

    // Generous livelock guard: every unit of work costs >= 1 cycle.
    std::uint64_t work_bound = 1000000;
    for (NodeId n = 0; n < w.n_nodes; ++n) {
        work_bound += (*w.acc_cycles)[n] + w.stream_elems;
        if (w.has_scatter)
            for (const auto &bw : (*w.banks)[n])
                work_bound +=
                    std::uint64_t(bw.edges) * sg_total * w.expansion;
    }
    work_bound = work_bound * 4 + 1000000;

    const bool tracing = env.opts.capture_trace;
    auto emit = [&](TraceKind kind, std::uint32_t unit, NodeId node,
                    std::uint64_t start, std::uint64_t end) {
        if (tracing && end > start)
            env.stats.trace.push_back(
                {kind, unit, node, env.base_cycle + start,
                 env.base_cycle + end});
    };

    std::uint64_t cycle = 0;
    auto all_done = [&] {
        for (const auto &u : nt)
            if (!u.done())
                return false;
        for (const auto &p : port)
            if (p.active)
                return false;
        for (const auto &q : queues)
            if (!q.empty())
                return false;
        for (const auto &m : mp)
            if (m.busy)
                return false;
        return true;
    };

    while (!all_done()) {
        if (cycle > work_bound)
            throw std::runtime_error("Engine: phase livelock detected");
        ++cycle;

        // 1. MP units consume (oldest pipeline stage first so data
        //    moves at most one hop per cycle).
        for (std::uint32_t m = 0; m < pe; ++m) {
            auto &unit = mp[m];
            if (unit.busy) {
                --unit.rem;
                env.stats.mp_units[m].busy++;
                if (unit.rem == 0) {
                    if (unit.entry.final_entry && w.on_mp_complete)
                        w.on_mp_complete(unit.entry.node, m);
                    emit(TraceKind::kMpWork, m, unit.entry.node,
                         unit.entry_start, cycle);
                    unit.busy = false;
                }
                continue;
            }
            // Pop next entry, round-robin over source NT queues.
            bool popped = false;
            for (std::uint32_t probe = 0; probe < pn && !popped; ++probe) {
                std::uint32_t u = (unit.rr_cursor + probe) % pn;
                auto &q = queue_at(u, m);
                if (q.empty())
                    continue;
                unit.entry = q.pop();
                unit.rr_cursor = (u + 1) % pn;
                std::uint32_t deg =
                    bank_edges((*w.banks)[unit.entry.node], m);
                unit.rem = std::uint64_t(deg) * unit.entry.granules *
                           w.expansion;
                if (unit.rem == 0)
                    unit.rem = 1; // entry consumption itself
                unit.busy = true;
                unit.entry_start = cycle - 1;
                popped = true;
                env.stats.mp_edge_work[m] +=
                    std::uint64_t(deg) * unit.entry.granules;
                // Spend this cycle on the first unit of work.
                --unit.rem;
                env.stats.mp_units[m].busy++;
                if (unit.rem == 0) {
                    if (unit.entry.final_entry && w.on_mp_complete)
                        w.on_mp_complete(unit.entry.node, m);
                    emit(TraceKind::kMpWork, m, unit.entry.node,
                         unit.entry_start, cycle);
                    unit.busy = false;
                }
            }
            if (!popped && !unit.busy)
                env.stats.mp_units[m].idle++;
        }

        // 2. Adapter ports: re-batch and multicast.
        for (std::uint32_t u = 0; u < pn; ++u) {
            auto &p = port[u];
            if (!p.active)
                continue;
            std::uint32_t pending =
                p.received - p.emitted_granules * ps;
            bool node_complete = (p.received >= w.stream_elems);
            bool can_emit = false;
            std::uint32_t emit_granules = 0;
            if (whole_node_handoff) {
                // Baseline dataflow: one entry per node, only once the
                // full embedding has arrived.
                if (node_complete) {
                    can_emit = true;
                    emit_granules = p.total_granules;
                }
            } else if (pending >= ps || (node_complete && pending > 0)) {
                can_emit = true;
                emit_granules = 1;
            }
            if (!can_emit)
                continue;

            // All-or-nothing multicast: every target queue needs room.
            bool room = true;
            for (const auto &bw : *p.targets)
                if (queue_at(u, bw.bank).full())
                    room = false;
            if (!room) {
                env.stats.adapter_stall_cycles++;
                continue;
            }
            std::uint32_t after =
                p.emitted_granules + emit_granules;
            QueueEntry entry{p.node, emit_granules,
                             after >= p.total_granules};
            for (const auto &bw : *p.targets) {
                queue_at(u, bw.bank).push(entry);
                env.stats.queue_total_pushes++;
            }
            p.emitted_granules = after;
            if (p.emitted_granules >= p.total_granules)
                p.active = false;
        }

        // 3. NT output streams into the adapter (or directly to the
        //    node buffer when the phase has no scatter targets).
        for (std::uint32_t u = 0; u < pn; ++u) {
            auto &unit = nt[u];
            if (unit.out_active) {
                bool delivered = false;
                if (!w.has_scatter || (*w.banks)[unit.out_node].empty()) {
                    // Plain write to the node embedding buffer.
                    unit.out_sent += pa;
                    delivered = true;
                } else {
                    auto &p = port[u];
                    // Bounded skid buffer in the adapter register; in
                    // whole-node handoff mode the register models the
                    // full ping-pong embedding buffer, so any not-yet
                    // -complete embedding can absorb the next (final
                    // beat possibly partial) delivery — gating it on
                    // the granule-mode slack would wedge the pipeline
                    // whenever Papply does not divide the embedding.
                    std::uint32_t cap = 2 * std::max(pa, ps);
                    std::uint32_t buffered =
                        p.received - p.emitted_granules * ps;
                    bool room = whole_node_handoff
                        ? p.received < w.stream_elems
                        : buffered + pa <= cap + ps;
                    if (room) {
                        p.received = std::min<std::uint32_t>(
                            p.received + pa, w.stream_elems);
                        unit.out_sent += pa;
                        delivered = true;
                    }
                }
                if (delivered && unit.out_sent >= w.stream_elems) {
                    emit(TraceKind::kNtOutput, u, unit.out_node,
                         unit.out_start, cycle);
                    unit.out_active = false;
                }
            }
            // Promote a finished node from the pong slot to output,
            // provided the adapter port is free for a new node.
            if (!unit.out_active && unit.pong_full) {
                bool port_free = true;
                if (w.has_scatter && !(*w.banks)[unit.pong_node].empty())
                    port_free = !port[u].active;
                if (port_free && w.stream_elems > 0) {
                    unit.out_active = true;
                    unit.out_node = unit.pong_node;
                    unit.out_sent = 0;
                    unit.out_start = cycle;
                    unit.pong_full = false;
                    if (w.has_scatter &&
                        !(*w.banks)[unit.out_node].empty()) {
                        auto &p = port[u];
                        p.active = true;
                        p.node = unit.out_node;
                        p.received = 0;
                        p.emitted_granules = 0;
                        p.total_granules = sg_total;
                        p.targets = &(*w.banks)[unit.out_node];
                    }
                } else if (w.stream_elems == 0) {
                    unit.pong_full = false; // nothing to stream
                }
            }
        }

        // 4. NT accumulate: advance, complete into the pong slot, and
        //    start the next node when double buffering allows.
        for (std::uint32_t u = 0; u < pn; ++u) {
            auto &unit = nt[u];
            bool was_busy = unit.acc_active || unit.out_active;
            if (unit.acc_active) {
                --unit.acc_rem;
                if (unit.acc_rem == 0) {
                    if (w.on_nt_complete)
                        w.on_nt_complete(unit.acc_node);
                    emit(TraceKind::kNtAccumulate, u, unit.acc_node,
                         unit.acc_start, cycle);
                    unit.acc_active = false;
                    unit.pong_full = true;
                    unit.pong_node = unit.acc_node;
                }
            }
            if (!unit.acc_active && !unit.pong_full &&
                unit.next < unit.nodes.size()) {
                unit.acc_node = unit.nodes[unit.next++];
                std::uint64_t c = (*w.acc_cycles)[unit.acc_node];
                if (c == 0) {
                    // Zero-cost accumulate (the re-stream round of GAT,
                    // or a ghost node whose embedding arrived over the
                    // inter-die link): complete immediately into the
                    // pong slot.
                    if (w.on_nt_complete)
                        w.on_nt_complete(unit.acc_node);
                    unit.pong_full = true;
                    unit.pong_node = unit.acc_node;
                } else {
                    unit.acc_active = true;
                    unit.acc_rem = c;
                    unit.acc_start = cycle;
                }
            }
            if (was_busy)
                env.stats.nt_units[u].busy++;
            else
                env.stats.nt_units[u].idle++;
        }
    }

    for (const auto &q : queues) {
        env.stats.queue_peak_occupancy =
            std::max(env.stats.queue_peak_occupancy, q.peak_occupancy());
    }
    return cycle;
}

/** Per-node NT latency (accumulate + output stream) for the analytic
 * modes, where accumulate and output do not overlap across nodes. */
std::uint64_t
analytic_nt_cycles(const PhaseWork &w, const EngineConfig &cfg, NodeId n)
{
    return (*w.acc_cycles)[n] +
           ceil_div_u64(w.stream_elems, cfg.p_apply);
}

/** Per-node MP cost on the unit owning `bank` work. */
std::uint64_t
analytic_mp_cycles(const PhaseWork &w, const EngineConfig &cfg, NodeId n,
                   std::uint32_t bank)
{
    if (!w.has_scatter)
        return 0;
    std::uint64_t sg = ceil_div_u64(w.stream_elems, cfg.p_scatter);
    return std::uint64_t(bank_edges((*w.banks)[n], bank)) * sg *
           w.expansion;
}

/**
 * Fig. 4(a): no pipelining — NT for all nodes completes before any MP
 * begins. Units within each phase still run in parallel.
 */
std::uint64_t
analytic_nonpipelined(const PhaseEnv &env)
{
    const PhaseWork &w = env.work;
    const EngineConfig &cfg = env.cfg;

    std::vector<std::uint64_t> nt_unit(cfg.p_node, 0);
    for (NodeId n = 0; n < w.n_nodes; ++n) {
        nt_unit[n % cfg.p_node] += analytic_nt_cycles(w, cfg, n);
        if (w.on_nt_complete)
            w.on_nt_complete(n);
    }
    std::uint64_t nt_phase =
        *std::max_element(nt_unit.begin(), nt_unit.end());

    std::vector<std::uint64_t> mp_unit(cfg.p_edge, 0);
    if (w.has_scatter) {
        for (NodeId n = 0; n < w.n_nodes; ++n) {
            for (const auto &bw : (*w.banks)[n]) {
                std::uint64_t c = analytic_mp_cycles(w, cfg, n, bw.bank);
                mp_unit[bw.bank] += c;
                env.stats.mp_edge_work[bw.bank] +=
                    std::uint64_t(bw.edges) *
                    ceil_div_u64(w.stream_elems, cfg.p_scatter);
                if (w.on_mp_complete)
                    w.on_mp_complete(n, bw.bank);
            }
        }
    }
    std::uint64_t mp_phase =
        *std::max_element(mp_unit.begin(), mp_unit.end());

    // Utilization accounting: each pool is fully idle during the
    // other's phase — the waste this mode illustrates.
    std::uint64_t total = nt_phase + mp_phase;
    for (std::uint32_t u = 0; u < cfg.p_node; ++u) {
        env.stats.nt_units[u].busy += nt_unit[u];
        env.stats.nt_units[u].idle += total - nt_unit[u];
    }
    for (std::uint32_t m = 0; m < cfg.p_edge; ++m) {
        env.stats.mp_units[m].busy += mp_unit[m];
        env.stats.mp_units[m].idle += total - mp_unit[m];
    }
    return total;
}

/**
 * Fig. 4(b): fixed pipelining — NT(k+1) runs in lockstep with MP(k);
 * each step lasts as long as the slower of the pair (modeled with one
 * NT and one MP stream, the structure the figure depicts).
 */
std::uint64_t
analytic_fixed(const PhaseEnv &env)
{
    const PhaseWork &w = env.work;
    const EngineConfig &cfg = env.cfg;

    auto mp_total = [&](NodeId n) {
        std::uint64_t c = 0;
        if (w.has_scatter)
            for (const auto &bw : (*w.banks)[n])
                c += analytic_mp_cycles(w, cfg, n, bw.bank);
        return c;
    };

    std::uint64_t total = 0;
    std::uint64_t nt_busy = 0, mp_busy = 0;
    for (NodeId n = 0; n < w.n_nodes; ++n) {
        std::uint64_t nt_c = analytic_nt_cycles(w, cfg, n);
        std::uint64_t mp_c = (n == 0) ? 0 : mp_total(n - 1);
        total += std::max(nt_c, mp_c);
        nt_busy += nt_c;
        mp_busy += mp_c;
        if (w.on_nt_complete)
            w.on_nt_complete(n);
    }
    if (w.n_nodes > 0)
        total += mp_total(w.n_nodes - 1);

    if (w.has_scatter) {
        for (NodeId n = 0; n < w.n_nodes; ++n) {
            for (const auto &bw : (*w.banks)[n]) {
                env.stats.mp_edge_work[bw.bank] +=
                    std::uint64_t(bw.edges) *
                    ceil_div_u64(w.stream_elems, cfg.p_scatter);
                if (w.on_mp_complete)
                    w.on_mp_complete(n, bw.bank);
            }
        }
        mp_busy += mp_total(w.n_nodes - 1);
    }
    env.stats.nt_units[0].busy += nt_busy;
    env.stats.nt_units[0].idle += total - nt_busy;
    env.stats.mp_units[0].busy += mp_busy;
    env.stats.mp_units[0].idle += total - mp_busy;
    return total;
}

} // namespace

std::uint64_t
run_phase(const PhaseEnv &env)
{
    switch (env.cfg.mode) {
      case PipelineMode::kNonPipelined:
        return analytic_nonpipelined(env);
      case PipelineMode::kFixedPipeline:
        return analytic_fixed(env);
      case PipelineMode::kBaselineDataflow:
        return simulate_phase(env, /*whole_node_handoff=*/true);
      case PipelineMode::kFlowGnn:
        return simulate_phase(env, /*whole_node_handoff=*/false);
    }
    throw std::logic_error("Engine: unknown pipeline mode");
}

std::vector<StageSchedule>
build_stage_schedule(const Model &model, const EngineConfig &cfg)
{
    const std::size_t n_stages = model.num_stages();
    std::vector<StageSchedule> out(n_stages);
    bool prev_was_gat = false;
    bool have_prev_agg = false;
    AggregatorKind prev_agg_kind = AggregatorKind::kSum;
    std::size_t prev_agg_out_dim = 0;

    for (std::size_t si = 0; si < n_stages; ++si) {
        const Layer &stage = model.stage(si);
        StageSchedule &s = out[si];
        s.is_gat = (stage.dataflow() == DataflowKind::kMpToNt);
        s.stream_elems = static_cast<std::uint32_t>(stage.out_dim());

        if (prev_was_gat)
            s.prologue_cycles = ceil_div_u64(
                model.stage(si - 1).out_dim(), cfg.p_apply);
        if (have_prev_agg && prev_agg_kind != AggregatorKind::kSum)
            s.finalize_cycles =
                ceil_div_u64(prev_agg_out_dim, cfg.p_apply);
        for (std::size_t d : stage.nt_pass_dims())
            s.nt_pass_cycles += ceil_div_u64(d, cfg.p_apply);
        s.acc_cycles =
            s.prologue_cycles + s.finalize_cycles + s.nt_pass_cycles;

        // The scatter fused into this phase: either the next NT-to-MP
        // conv's message pass, or this GAT stage's own gather rounds.
        if (s.is_gat) {
            s.has_scatter = true;
            s.expansion = 1; // score / weighted sum: 1 cycle/edge/granule
        } else if (si + 1 < n_stages) {
            const Layer &next = model.stage(si + 1);
            if (next.msg_dim() > 0 &&
                next.dataflow() == DataflowKind::kNtToMp) {
                s.has_scatter = true;
                s.expansion = static_cast<std::uint32_t>(
                    ceil_div_u64(next.msg_dim(), stage.out_dim()));
            }
        }

        if (s.is_gat) {
            prev_was_gat = true;
            have_prev_agg = false;
        } else if (s.has_scatter) {
            const Layer &next = model.stage(si + 1);
            Aggregator agg = next.aggregator();
            prev_agg_kind = agg.kind();
            prev_agg_out_dim = agg.out_dim();
            have_prev_agg = true;
            prev_was_gat = false;
        } else {
            have_prev_agg = false;
            prev_was_gat = false;
        }
    }
    return out;
}

} // namespace flowgnn
