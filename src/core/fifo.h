/**
 * @file
 * Bounded FIFO with occupancy statistics — the hardware data queue of
 * the multi-queue dataflow (paper Fig. 3(b)). A full queue exerts
 * backpressure on the NT-to-MP adapter, which in turn stalls the NT
 * unit's output stream, exactly as an HLS stream would.
 *
 * Concurrency contract: this type models hardware inside one
 * single-threaded cycle-stepped engine and is deliberately
 * unsynchronized — it carries no thread-safety annotations because it
 * has no locks. The thread-safe software counterpart is
 * serve/bounded_queue.h's BoundedQueue, which wraps a Fifo behind an
 * annotated flowgnn::Mutex (core/sync.h).
 */
#ifndef FLOWGNN_CORE_FIFO_H
#define FLOWGNN_CORE_FIFO_H

#include <cstdint>
#include <deque>
#include <utility>

namespace flowgnn {

/** Bounded FIFO modeling a hardware stream between pipeline units. */
template <typename T>
class Fifo
{
  public:
    explicit Fifo(std::size_t capacity = 8) : capacity_(capacity) {}

    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() >= capacity_; }
    std::size_t size() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Pushes if space is available; returns false (backpressure) if not. */
    bool
    push(const T &item)
    {
        if (full())
            return false;
        items_.push_back(item);
        record_push();
        return true;
    }

    /** Move push, for element types that are move-only (e.g. the serve
     * subsystem's jobs, which carry a std::promise). */
    bool
    push(T &&item)
    {
        if (full())
            return false;
        items_.push_back(std::move(item));
        record_push();
        return true;
    }

    /** Pops the oldest item; call only when !empty(). */
    T
    pop()
    {
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    const T &front() const { return items_.front(); }

    /** Lifetime statistics for queue-sizing studies. */
    std::uint64_t total_pushes() const { return total_pushes_; }
    std::size_t peak_occupancy() const { return peak_occupancy_; }

  private:
    void
    record_push()
    {
        ++total_pushes_;
        if (items_.size() > peak_occupancy_)
            peak_occupancy_ = items_.size();
    }

    std::size_t capacity_;
    std::deque<T> items_;
    std::uint64_t total_pushes_ = 0;
    std::size_t peak_occupancy_ = 0;
};

} // namespace flowgnn

#endif // FLOWGNN_CORE_FIFO_H
