/**
 * @file
 * Bounded FIFO with occupancy statistics — the hardware data queue of
 * the multi-queue dataflow (paper Fig. 3(b)). A full queue exerts
 * backpressure on the NT-to-MP adapter, which in turn stalls the NT
 * unit's output stream, exactly as an HLS stream would.
 */
#ifndef FLOWGNN_CORE_FIFO_H
#define FLOWGNN_CORE_FIFO_H

#include <cstdint>
#include <deque>

namespace flowgnn {

/** Bounded FIFO modeling a hardware stream between pipeline units. */
template <typename T>
class Fifo
{
  public:
    explicit Fifo(std::size_t capacity = 8) : capacity_(capacity) {}

    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() >= capacity_; }
    std::size_t size() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Pushes if space is available; returns false (backpressure) if not. */
    bool
    push(const T &item)
    {
        if (full())
            return false;
        items_.push_back(item);
        ++total_pushes_;
        if (items_.size() > peak_occupancy_)
            peak_occupancy_ = items_.size();
        return true;
    }

    /** Pops the oldest item; call only when !empty(). */
    T
    pop()
    {
        T item = items_.front();
        items_.pop_front();
        return item;
    }

    const T &front() const { return items_.front(); }

    /** Lifetime statistics for queue-sizing studies. */
    std::uint64_t total_pushes() const { return total_pushes_; }
    std::size_t peak_occupancy() const { return peak_occupancy_; }

  private:
    std::size_t capacity_;
    std::deque<T> items_;
    std::uint64_t total_pushes_ = 0;
    std::size_t peak_occupancy_ = 0;
};

} // namespace flowgnn

#endif // FLOWGNN_CORE_FIFO_H
