#include "core/config.h"

namespace flowgnn {

const char *
pipeline_mode_name(PipelineMode mode)
{
    switch (mode) {
      case PipelineMode::kNonPipelined: return "non-pipeline";
      case PipelineMode::kFixedPipeline: return "fixed-pipeline";
      case PipelineMode::kBaselineDataflow: return "baseline-dataflow";
      case PipelineMode::kFlowGnn: return "flowgnn";
    }
    return "unknown";
}

std::string
EngineConfig::label() const
{
    if (mode != PipelineMode::kFlowGnn)
        return pipeline_mode_name(mode);
    return "FlowGNN-" + std::to_string(p_apply) + "-" +
           std::to_string(p_scatter);
}

} // namespace flowgnn
