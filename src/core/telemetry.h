/**
 * @file
 * Small wall-clock telemetry helpers shared by the serve and pool
 * layers (latency/queue-delay percentiles, steady-clock deltas), so
 * every service computes its percentiles the same way.
 */
#ifndef FLOWGNN_CORE_TELEMETRY_H
#define FLOWGNN_CORE_TELEMETRY_H

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

namespace flowgnn {

/** Nearest-rank percentile of an already-sorted sample vector. */
inline double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    return sorted[std::min(rank, sorted.size()) - 1];
}

/** Milliseconds from `a` to `b`. */
inline double
ms_between(std::chrono::steady_clock::time_point a,
           std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

} // namespace flowgnn

#endif // FLOWGNN_CORE_TELEMETRY_H
