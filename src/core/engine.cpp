#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "core/fifo.h"
#include "graph/partition.h"
#include "nn/gat_layer.h"

namespace flowgnn {

namespace {

std::uint64_t
ceil_div(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** One entry in an adapter-to-MP queue. */
struct QueueEntry {
    NodeId node = 0;
    std::uint32_t granules = 1;   ///< scatter granules carried
    bool final_entry = false;     ///< last entry for this node
};

/** Per-node destination-bank workload: (bank id, edges in bank). */
struct BankWork {
    std::uint32_t bank;
    std::uint32_t edges;
};

/**
 * Static description of one pipeline phase's work, independent of the
 * pipeline mode. Functional computation is injected via callbacks so
 * the same timing machinery serves every phase type.
 */
struct PhaseWork {
    NodeId n_nodes = 0;
    /** NT accumulate cycles per node (all input-stationary passes);
     * storage lives in the run's workspace. */
    const std::vector<std::uint64_t> *acc_cycles = nullptr;
    /** Elements streamed out per node (the stage's output dim). */
    std::uint32_t stream_elems = 0;
    bool has_scatter = false;
    /** Extra MP cycles per granule per edge (msg wider than stream). */
    std::uint32_t expansion = 1;
    /** Destination-bank split per node (empty if no out-edges). */
    const std::vector<std::vector<BankWork>> *banks = nullptr;
    /** Called once when a node's NT accumulate completes. */
    std::function<void(NodeId)> on_nt_complete;
    /** Called once per (node, bank) when its MP edge work completes. */
    std::function<void(NodeId, std::uint32_t)> on_mp_complete;
};

/** NT unit: double-buffered accumulate/output state machine. */
struct NtUnitState {
    std::vector<NodeId> nodes; ///< assigned nodes, in order
    std::size_t next = 0;      ///< next node to start accumulating
    bool acc_active = false;
    NodeId acc_node = 0;
    std::uint64_t acc_rem = 0;
    std::uint64_t acc_start = 0; ///< cycle the accumulate began (trace)
    std::uint64_t out_start = 0; ///< cycle the output began (trace)
    bool pong_full = false; ///< node finished acc, waiting to stream
    NodeId pong_node = 0;
    bool out_active = false;
    NodeId out_node = 0;
    std::uint32_t out_sent = 0; ///< elements streamed so far

    bool
    done() const
    {
        return next >= nodes.size() && !acc_active && !pong_full &&
               !out_active;
    }
};

/** Adapter port: Papply -> Pscatter re-batching + multicast. */
struct AdapterPort {
    bool active = false;
    NodeId node = 0;
    std::uint32_t received = 0; ///< elements received from NT
    std::uint32_t emitted_granules = 0;
    std::uint32_t total_granules = 0;
    const std::vector<BankWork> *targets = nullptr;
};

/** MP unit: consumes queue entries, one edge-granule per cycle. */
struct MpUnitState {
    bool busy = false;
    QueueEntry entry;
    std::uint64_t rem = 0;
    std::uint64_t entry_start = 0; ///< cycle the entry began (trace)
    std::size_t rr_cursor = 0; ///< round-robin over source queues
};

/** Everything shared by the timing back-ends for one phase. */
struct PhaseEnv {
    const PhaseWork &work;
    const EngineConfig &cfg;
    const RunOptions &opts;
    RunStats &stats;
    std::uint64_t base_cycle = 0; ///< absolute offset for trace events
};

std::uint32_t
bank_edges(const std::vector<BankWork> &banks, std::uint32_t bank)
{
    for (const auto &bw : banks)
        if (bw.bank == bank)
            return bw.edges;
    return 0;
}

/**
 * Cycle-stepped simulation of one phase for the queue-based modes
 * (baseline dataflow and FlowGNN). whole_node_handoff selects the
 * baseline behaviour where MP only starts a node after its entire
 * embedding arrived (Fig. 4(c) vs (d)).
 */
std::uint64_t
simulate_phase(const PhaseEnv &env, bool whole_node_handoff)
{
    const PhaseWork &w = env.work;
    const EngineConfig &cfg = env.cfg;
    const std::uint32_t pn = cfg.p_node;
    const std::uint32_t pe = cfg.p_edge;
    const std::uint32_t pa = cfg.p_apply;
    const std::uint32_t ps = cfg.p_scatter;
    const std::uint32_t sg_total =
        w.stream_elems == 0
            ? 0
            : static_cast<std::uint32_t>(ceil_div(w.stream_elems, ps));

    // Assign nodes round-robin to NT units.
    std::vector<NtUnitState> nt(pn);
    for (NodeId n = 0; n < w.n_nodes; ++n)
        nt[n % pn].nodes.push_back(n);

    std::vector<AdapterPort> port(pn);
    std::vector<MpUnitState> mp(pe);
    std::vector<Fifo<QueueEntry>> queues;
    queues.reserve(std::size_t(pn) * pe);
    for (std::size_t i = 0; i < std::size_t(pn) * pe; ++i)
        queues.emplace_back(cfg.queue_depth);
    auto queue_at = [&](std::uint32_t u, std::uint32_t m) -> auto & {
        return queues[std::size_t(u) * pe + m];
    };

    // Generous livelock guard: every unit of work costs >= 1 cycle.
    std::uint64_t work_bound = 1000000;
    for (NodeId n = 0; n < w.n_nodes; ++n) {
        work_bound += (*w.acc_cycles)[n] + w.stream_elems;
        if (w.has_scatter)
            for (const auto &bw : (*w.banks)[n])
                work_bound +=
                    std::uint64_t(bw.edges) * sg_total * w.expansion;
    }
    work_bound = work_bound * 4 + 1000000;

    const bool tracing = env.opts.capture_trace;
    auto emit = [&](TraceKind kind, std::uint32_t unit, NodeId node,
                    std::uint64_t start, std::uint64_t end) {
        if (tracing && end > start)
            env.stats.trace.push_back(
                {kind, unit, node, env.base_cycle + start,
                 env.base_cycle + end});
    };

    std::uint64_t cycle = 0;
    auto all_done = [&] {
        for (const auto &u : nt)
            if (!u.done())
                return false;
        for (const auto &p : port)
            if (p.active)
                return false;
        for (const auto &q : queues)
            if (!q.empty())
                return false;
        for (const auto &m : mp)
            if (m.busy)
                return false;
        return true;
    };

    while (!all_done()) {
        if (cycle > work_bound)
            throw std::runtime_error("Engine: phase livelock detected");
        ++cycle;

        // 1. MP units consume (oldest pipeline stage first so data
        //    moves at most one hop per cycle).
        for (std::uint32_t m = 0; m < pe; ++m) {
            auto &unit = mp[m];
            if (unit.busy) {
                --unit.rem;
                env.stats.mp_units[m].busy++;
                if (unit.rem == 0) {
                    if (unit.entry.final_entry && w.on_mp_complete)
                        w.on_mp_complete(unit.entry.node, m);
                    emit(TraceKind::kMpWork, m, unit.entry.node,
                         unit.entry_start, cycle);
                    unit.busy = false;
                }
                continue;
            }
            // Pop next entry, round-robin over source NT queues.
            bool popped = false;
            for (std::uint32_t probe = 0; probe < pn && !popped; ++probe) {
                std::uint32_t u = (unit.rr_cursor + probe) % pn;
                auto &q = queue_at(u, m);
                if (q.empty())
                    continue;
                unit.entry = q.pop();
                unit.rr_cursor = (u + 1) % pn;
                std::uint32_t deg =
                    bank_edges((*w.banks)[unit.entry.node], m);
                unit.rem = std::uint64_t(deg) * unit.entry.granules *
                           w.expansion;
                if (unit.rem == 0)
                    unit.rem = 1; // entry consumption itself
                unit.busy = true;
                unit.entry_start = cycle - 1;
                popped = true;
                env.stats.mp_edge_work[m] +=
                    std::uint64_t(deg) * unit.entry.granules;
                // Spend this cycle on the first unit of work.
                --unit.rem;
                env.stats.mp_units[m].busy++;
                if (unit.rem == 0) {
                    if (unit.entry.final_entry && w.on_mp_complete)
                        w.on_mp_complete(unit.entry.node, m);
                    emit(TraceKind::kMpWork, m, unit.entry.node,
                         unit.entry_start, cycle);
                    unit.busy = false;
                }
            }
            if (!popped && !unit.busy)
                env.stats.mp_units[m].idle++;
        }

        // 2. Adapter ports: re-batch and multicast.
        for (std::uint32_t u = 0; u < pn; ++u) {
            auto &p = port[u];
            if (!p.active)
                continue;
            std::uint32_t pending =
                p.received - p.emitted_granules * ps;
            bool node_complete = (p.received >= w.stream_elems);
            bool can_emit = false;
            std::uint32_t emit_granules = 0;
            if (whole_node_handoff) {
                // Baseline dataflow: one entry per node, only once the
                // full embedding has arrived.
                if (node_complete) {
                    can_emit = true;
                    emit_granules = p.total_granules;
                }
            } else if (pending >= ps || (node_complete && pending > 0)) {
                can_emit = true;
                emit_granules = 1;
            }
            if (!can_emit)
                continue;

            // All-or-nothing multicast: every target queue needs room.
            bool room = true;
            for (const auto &bw : *p.targets)
                if (queue_at(u, bw.bank).full())
                    room = false;
            if (!room) {
                env.stats.adapter_stall_cycles++;
                continue;
            }
            std::uint32_t after =
                p.emitted_granules + emit_granules;
            QueueEntry entry{p.node, emit_granules,
                             after >= p.total_granules};
            for (const auto &bw : *p.targets) {
                queue_at(u, bw.bank).push(entry);
                env.stats.queue_total_pushes++;
            }
            p.emitted_granules = after;
            if (p.emitted_granules >= p.total_granules)
                p.active = false;
        }

        // 3. NT output streams into the adapter (or directly to the
        //    node buffer when the phase has no scatter targets).
        for (std::uint32_t u = 0; u < pn; ++u) {
            auto &unit = nt[u];
            if (unit.out_active) {
                bool delivered = false;
                if (!w.has_scatter || (*w.banks)[unit.out_node].empty()) {
                    // Plain write to the node embedding buffer.
                    unit.out_sent += pa;
                    delivered = true;
                } else {
                    auto &p = port[u];
                    // Bounded skid buffer in the adapter register; in
                    // whole-node handoff mode the register models the
                    // full ping-pong embedding buffer, so any not-yet
                    // -complete embedding can absorb the next (final
                    // beat possibly partial) delivery — gating it on
                    // the granule-mode slack would wedge the pipeline
                    // whenever Papply does not divide the embedding.
                    std::uint32_t cap = 2 * std::max(pa, ps);
                    std::uint32_t buffered =
                        p.received - p.emitted_granules * ps;
                    bool room = whole_node_handoff
                        ? p.received < w.stream_elems
                        : buffered + pa <= cap + ps;
                    if (room) {
                        p.received = std::min<std::uint32_t>(
                            p.received + pa, w.stream_elems);
                        unit.out_sent += pa;
                        delivered = true;
                    }
                }
                if (delivered && unit.out_sent >= w.stream_elems) {
                    emit(TraceKind::kNtOutput, u, unit.out_node,
                         unit.out_start, cycle);
                    unit.out_active = false;
                }
            }
            // Promote a finished node from the pong slot to output,
            // provided the adapter port is free for a new node.
            if (!unit.out_active && unit.pong_full) {
                bool port_free = true;
                if (w.has_scatter && !(*w.banks)[unit.pong_node].empty())
                    port_free = !port[u].active;
                if (port_free && w.stream_elems > 0) {
                    unit.out_active = true;
                    unit.out_node = unit.pong_node;
                    unit.out_sent = 0;
                    unit.out_start = cycle;
                    unit.pong_full = false;
                    if (w.has_scatter &&
                        !(*w.banks)[unit.out_node].empty()) {
                        auto &p = port[u];
                        p.active = true;
                        p.node = unit.out_node;
                        p.received = 0;
                        p.emitted_granules = 0;
                        p.total_granules = sg_total;
                        p.targets = &(*w.banks)[unit.out_node];
                    }
                } else if (w.stream_elems == 0) {
                    unit.pong_full = false; // nothing to stream
                }
            }
        }

        // 4. NT accumulate: advance, complete into the pong slot, and
        //    start the next node when double buffering allows.
        for (std::uint32_t u = 0; u < pn; ++u) {
            auto &unit = nt[u];
            bool was_busy = unit.acc_active || unit.out_active;
            if (unit.acc_active) {
                --unit.acc_rem;
                if (unit.acc_rem == 0) {
                    if (w.on_nt_complete)
                        w.on_nt_complete(unit.acc_node);
                    emit(TraceKind::kNtAccumulate, u, unit.acc_node,
                         unit.acc_start, cycle);
                    unit.acc_active = false;
                    unit.pong_full = true;
                    unit.pong_node = unit.acc_node;
                }
            }
            if (!unit.acc_active && !unit.pong_full &&
                unit.next < unit.nodes.size()) {
                unit.acc_node = unit.nodes[unit.next++];
                std::uint64_t c = (*w.acc_cycles)[unit.acc_node];
                if (c == 0) {
                    // Zero-cost accumulate (e.g. the re-stream round of
                    // GAT): complete immediately into the pong slot.
                    if (w.on_nt_complete)
                        w.on_nt_complete(unit.acc_node);
                    unit.pong_full = true;
                    unit.pong_node = unit.acc_node;
                } else {
                    unit.acc_active = true;
                    unit.acc_rem = c;
                    unit.acc_start = cycle;
                }
            }
            if (was_busy)
                env.stats.nt_units[u].busy++;
            else
                env.stats.nt_units[u].idle++;
        }
    }

    for (const auto &q : queues) {
        env.stats.queue_peak_occupancy =
            std::max(env.stats.queue_peak_occupancy, q.peak_occupancy());
    }
    return cycle;
}

/** Per-node NT latency (accumulate + output stream) for the analytic
 * modes, where accumulate and output do not overlap across nodes. */
std::uint64_t
analytic_nt_cycles(const PhaseWork &w, const EngineConfig &cfg, NodeId n)
{
    return (*w.acc_cycles)[n] + ceil_div(w.stream_elems, cfg.p_apply);
}

/** Per-node MP cost on the unit owning `bank` work. */
std::uint64_t
analytic_mp_cycles(const PhaseWork &w, const EngineConfig &cfg, NodeId n,
                   std::uint32_t bank)
{
    if (!w.has_scatter)
        return 0;
    std::uint64_t sg = ceil_div(w.stream_elems, cfg.p_scatter);
    return std::uint64_t(bank_edges((*w.banks)[n], bank)) * sg *
           w.expansion;
}

/**
 * Fig. 4(a): no pipelining — NT for all nodes completes before any MP
 * begins. Units within each phase still run in parallel.
 */
std::uint64_t
analytic_nonpipelined(const PhaseEnv &env)
{
    const PhaseWork &w = env.work;
    const EngineConfig &cfg = env.cfg;

    std::vector<std::uint64_t> nt_unit(cfg.p_node, 0);
    for (NodeId n = 0; n < w.n_nodes; ++n) {
        nt_unit[n % cfg.p_node] += analytic_nt_cycles(w, cfg, n);
        if (w.on_nt_complete)
            w.on_nt_complete(n);
    }
    std::uint64_t nt_phase =
        *std::max_element(nt_unit.begin(), nt_unit.end());

    std::vector<std::uint64_t> mp_unit(cfg.p_edge, 0);
    if (w.has_scatter) {
        for (NodeId n = 0; n < w.n_nodes; ++n) {
            for (const auto &bw : (*w.banks)[n]) {
                std::uint64_t c = analytic_mp_cycles(w, cfg, n, bw.bank);
                mp_unit[bw.bank] += c;
                env.stats.mp_edge_work[bw.bank] +=
                    std::uint64_t(bw.edges) *
                    ceil_div(w.stream_elems, cfg.p_scatter);
                if (w.on_mp_complete)
                    w.on_mp_complete(n, bw.bank);
            }
        }
    }
    std::uint64_t mp_phase =
        *std::max_element(mp_unit.begin(), mp_unit.end());

    // Utilization accounting: each pool is fully idle during the
    // other's phase — the waste this mode illustrates.
    std::uint64_t total = nt_phase + mp_phase;
    for (std::uint32_t u = 0; u < cfg.p_node; ++u) {
        env.stats.nt_units[u].busy += nt_unit[u];
        env.stats.nt_units[u].idle += total - nt_unit[u];
    }
    for (std::uint32_t m = 0; m < cfg.p_edge; ++m) {
        env.stats.mp_units[m].busy += mp_unit[m];
        env.stats.mp_units[m].idle += total - mp_unit[m];
    }
    return total;
}

/**
 * Fig. 4(b): fixed pipelining — NT(k+1) runs in lockstep with MP(k);
 * each step lasts as long as the slower of the pair (modeled with one
 * NT and one MP stream, the structure the figure depicts).
 */
std::uint64_t
analytic_fixed(const PhaseEnv &env)
{
    const PhaseWork &w = env.work;
    const EngineConfig &cfg = env.cfg;

    auto mp_total = [&](NodeId n) {
        std::uint64_t c = 0;
        if (w.has_scatter)
            for (const auto &bw : (*w.banks)[n])
                c += analytic_mp_cycles(w, cfg, n, bw.bank);
        return c;
    };

    std::uint64_t total = 0;
    std::uint64_t nt_busy = 0, mp_busy = 0;
    for (NodeId n = 0; n < w.n_nodes; ++n) {
        std::uint64_t nt_c = analytic_nt_cycles(w, cfg, n);
        std::uint64_t mp_c = (n == 0) ? 0 : mp_total(n - 1);
        total += std::max(nt_c, mp_c);
        nt_busy += nt_c;
        mp_busy += mp_c;
        if (w.on_nt_complete)
            w.on_nt_complete(n);
    }
    if (w.n_nodes > 0)
        total += mp_total(w.n_nodes - 1);

    if (w.has_scatter) {
        for (NodeId n = 0; n < w.n_nodes; ++n) {
            for (const auto &bw : (*w.banks)[n]) {
                env.stats.mp_edge_work[bw.bank] +=
                    std::uint64_t(bw.edges) *
                    ceil_div(w.stream_elems, cfg.p_scatter);
                if (w.on_mp_complete)
                    w.on_mp_complete(n, bw.bank);
            }
        }
        mp_busy += mp_total(w.n_nodes - 1);
    }
    env.stats.nt_units[0].busy += nt_busy;
    env.stats.nt_units[0].idle += total - nt_busy;
    env.stats.mp_units[0].busy += mp_busy;
    env.stats.mp_units[0].idle += total - mp_busy;
    return total;
}

std::uint64_t
run_phase(const PhaseEnv &env)
{
    switch (env.cfg.mode) {
      case PipelineMode::kNonPipelined:
        return analytic_nonpipelined(env);
      case PipelineMode::kFixedPipeline:
        return analytic_fixed(env);
      case PipelineMode::kBaselineDataflow:
        return simulate_phase(env, /*whole_node_handoff=*/true);
      case PipelineMode::kFlowGnn:
        return simulate_phase(env, /*whole_node_handoff=*/false);
    }
    throw std::logic_error("Engine: unknown pipeline mode");
}

} // namespace

/**
 * Graph-sized scratch buffers reused across runs. Buffers are resized
 * (never shrunk) per graph, so a steady-state replica serving a stream
 * of similar graphs stops allocating in the run loop.
 */
struct RunWorkspace::Impl {
    std::vector<std::uint32_t> bank_of;
    std::vector<std::uint32_t> bank_count;
    std::vector<std::vector<BankWork>> banks;
    std::vector<std::uint64_t> acc_cycles;
    std::vector<std::uint64_t> acc_zero;
    std::vector<Vec> cur;
    std::vector<Vec> out;
    std::vector<float> prev_state;
    std::vector<float> next_state;
};

RunWorkspace::RunWorkspace() : impl_(std::make_unique<Impl>()) {}
RunWorkspace::~RunWorkspace() = default;
RunWorkspace::RunWorkspace(RunWorkspace &&) noexcept = default;
RunWorkspace &RunWorkspace::operator=(RunWorkspace &&) noexcept = default;

Engine::Engine(const Model &model, EngineConfig config)
    : model_(model), config_(config)
{
    config_.validate();
}

RunResult
Engine::run(const GraphSample &sample) const
{
    RunWorkspace ws;
    return run(sample, RunOptions{}, ws);
}

RunResult
Engine::run(const GraphSample &sample, const RunOptions &opts) const
{
    RunWorkspace ws;
    return run(sample, opts, ws);
}

RunResult
Engine::run(const GraphSample &sample, const RunOptions &opts,
            RunWorkspace &ws) const
{
    GraphSample prepared = model_.prepare(sample);
    return run_prepared(prepared, opts, ws);
}

RunResult
Engine::run_prepared(const GraphSample &prepared, const RunOptions &opts,
                     RunWorkspace &ws) const
{
    opts.validate();
    const EngineConfig &cfg = config_;
    RunWorkspace::Impl &wsi = *ws.impl_;
    if (!prepared.consistent())
        throw std::invalid_argument("Engine: inconsistent sample");

    const NodeId n_nodes = prepared.num_nodes();
    LayerContext ctx = make_layer_context(prepared, model_.pna_params());
    CsrGraph csr(prepared.graph);

    // Destination-node -> MP-bank map. Modulo is the on-the-fly
    // default; greedy balancing is the pre-processing ablation.
    std::vector<std::uint32_t> &bank_of = wsi.bank_of;
    if (cfg.bank_policy == BankPolicy::kGreedyBalanced) {
        bank_of = balanced_bank_assignment(prepared.graph, cfg.p_edge);
    } else {
        bank_of.resize(n_nodes);
        for (NodeId n = 0; n < n_nodes; ++n)
            bank_of[n] = n % cfg.p_edge;
    }

    // Per-node destination-bank split, computed on the fly from the
    // streamed edge list, shared across phases.
    std::vector<std::vector<BankWork>> &banks = wsi.banks;
    if (banks.size() < n_nodes)
        banks.resize(n_nodes);
    {
        std::vector<std::uint32_t> &count = wsi.bank_count;
        count.assign(cfg.p_edge, 0);
        for (NodeId n = 0; n < n_nodes; ++n) {
            banks[n].clear();
            std::fill(count.begin(), count.end(), 0);
            for (std::size_t s = csr.row_begin(n); s < csr.row_end(n); ++s)
                ++count[bank_of[csr.dst(s)]];
            for (std::uint32_t b = 0; b < cfg.p_edge; ++b)
                if (count[b] > 0)
                    banks[n].push_back({b, count[b]});
        }
    }

    RunResult result;
    RunStats &stats = result.stats;
    stats.clock_mhz = cfg.clock_mhz;
    stats.nt_units.assign(cfg.p_node, {});
    stats.mp_units.assign(cfg.p_edge, {});
    stats.mp_edge_work.assign(cfg.p_edge, 0);

    // Input DMA: nodes, features, and the raw COO edge list stream in
    // at 64 words/cycle (a conservative fraction of the U50's 460 GB/s
    // HBM2 bandwidth, ~380 words/cycle at 300 MHz); not overlapped
    // with compute, as documented in docs/DESIGN.md.
    stats.load_cycles = ceil_div(
        std::uint64_t(n_nodes) * (prepared.node_dim() + 1) +
            std::uint64_t(prepared.num_edges()) * (prepared.edge_dim() + 2),
        64);

    // ---- Functional state ----
    const bool quant = opts.emulate_fixed_point;
    const FixedPointFormat &fmt = opts.fixed_point;
    std::vector<Vec> &cur = wsi.cur;
    std::vector<Vec> &out = wsi.out;
    cur.resize(n_nodes);
    out.resize(n_nodes);
    for (NodeId i = 0; i < n_nodes; ++i) {
        cur[i] = prepared.node_features.row_vec(i);
        if (quant)
            quantize_inplace(cur[i], fmt);
    }

    Aggregator prev_agg;        // aggregator of messages consumed now
    std::vector<float> &prev_state = wsi.prev_state;
    bool have_prev_agg = false;

    const GatLayer *pending_gat = nullptr; // 'cur' holds projections
    std::unique_ptr<CscGraph> csc;         // built lazily for GAT

    auto combine_pending_gat = [&]() {
        if (pending_gat == nullptr)
            return;
        if (!csc)
            csc = std::make_unique<CscGraph>(prepared.graph);
        std::vector<Vec> combined(n_nodes);
        for (NodeId i = 0; i < n_nodes; ++i) {
            std::vector<const Vec *> nbrs;
            nbrs.reserve(csc->in_degree(i));
            for (std::size_t s = csc->col_begin(i); s < csc->col_end(i);
                 ++s)
                nbrs.push_back(&cur[csc->src(s)]);
            combined[i] = gat_combine(*pending_gat, cur[i], nbrs);
            if (quant)
                quantize_inplace(combined[i], fmt);
        }
        cur = std::move(combined);
        pending_gat = nullptr;
    };

    const float *efeat = prepared.edge_features.data();
    const std::size_t edge_dim = prepared.edge_dim();

    const std::size_t n_stages = model_.num_stages();
    std::uint64_t phase_base = 0;
    for (std::size_t si = 0; si < n_stages; ++si) {
        const Layer &stage = model_.stage(si);
        const bool is_gat = (stage.dataflow() == DataflowKind::kMpToNt);
        const bool prev_was_gat = (pending_gat != nullptr);
        const auto *gat = dynamic_cast<const GatLayer *>(&stage);
        if (is_gat && gat == nullptr)
            throw std::logic_error("Engine: MP-to-NT stage is not GAT");

        // The scatter fused into this phase: either the next NT-to-MP
        // conv's message pass, or this GAT stage's own gather rounds.
        const Layer *scatter_stage = nullptr;
        if (is_gat) {
            scatter_stage = &stage;
        } else if (si + 1 < n_stages) {
            const Layer &next = model_.stage(si + 1);
            if (next.msg_dim() > 0 &&
                next.dataflow() == DataflowKind::kNtToMp)
                scatter_stage = &next;
        }

        // Functional prologue: materialize pending GAT combine so this
        // stage sees real embeddings. (Its cycle cost is charged below
        // as an extra NT pass.)
        std::uint64_t prologue_pass = 0;
        if (prev_was_gat) {
            prologue_pass =
                ceil_div(model_.stage(si - 1).out_dim(), cfg.p_apply);
            combine_pending_gat();
        }

        // Aggregate-finalize cost for non-trivial aggregators.
        std::uint64_t finalize_pass = 0;
        if (have_prev_agg && prev_agg.kind() != AggregatorKind::kSum)
            finalize_pass = ceil_div(prev_agg.out_dim(), cfg.p_apply);

        // ---- Build this phase's work description ----
        PhaseWork w;
        w.n_nodes = n_nodes;
        w.stream_elems = static_cast<std::uint32_t>(stage.out_dim());
        w.banks = &banks;
        std::uint64_t acc = prologue_pass + finalize_pass;
        for (std::size_t d : stage.nt_pass_dims())
            acc += ceil_div(d, cfg.p_apply);
        wsi.acc_cycles.assign(n_nodes, acc);
        w.acc_cycles = &wsi.acc_cycles;

        Aggregator next_agg;
        std::vector<float> &next_state = wsi.next_state;
        next_state.clear();
        if (scatter_stage != nullptr && !is_gat) {
            w.has_scatter = true;
            next_agg = scatter_stage->aggregator();
            next_state.assign(std::size_t(n_nodes) *
                                  next_agg.state_dim(),
                              0.0f);
            for (NodeId i = 0; i < n_nodes; ++i)
                next_agg.init(next_state.data() +
                              std::size_t(i) * next_agg.state_dim());
            w.expansion = static_cast<std::uint32_t>(ceil_div(
                scatter_stage->msg_dim(), stage.out_dim()));
        } else if (is_gat) {
            w.has_scatter = true;
            w.expansion = 1; // score / weighted-sum: 1 cycle/edge/granule
        }

        // Functional NT: compute this stage's node outputs.
        w.on_nt_complete = [&, is_gat, gat](NodeId node) {
            if (is_gat) {
                out[node] = gat->project(cur[node]);
            } else if (have_prev_agg) {
                Vec fin = prev_agg.finalize(
                    prev_state.data() +
                        std::size_t(node) * prev_agg.state_dim(),
                    ctx.in_deg[node], ctx.pna);
                if (quant)
                    quantize_inplace(fin, fmt);
                out[node] = stage.transform(cur[node], fin, node, ctx);
            } else {
                Vec empty;
                out[node] = stage.transform(cur[node], empty, node, ctx);
            }
            if (quant)
                quantize_inplace(out[node], fmt);
        };

        // Functional MP: accumulate this node's messages into the
        // destination states owned by the completing bank, in arrival
        // order (the real dataflow behaviour).
        if (w.has_scatter && !is_gat) {
            Aggregator *agg_ptr = &next_agg;
            std::vector<float> *state_ptr = &next_state;
            w.on_mp_complete = [&, agg_ptr, state_ptr, scatter_stage](
                                   NodeId node, std::uint32_t bank) {
                for (std::size_t s = csr.row_begin(node);
                     s < csr.row_end(node); ++s) {
                    NodeId dst = csr.dst(s);
                    if (bank_of[dst] != bank)
                        continue;
                    EdgeId eid = csr.edge_id(s);
                    const float *ef = edge_dim
                        ? efeat + std::size_t(eid) * edge_dim
                        : nullptr;
                    Vec msg = scatter_stage->message(
                        out[node], ef, edge_dim, node, dst, ctx);
                    if (quant)
                        quantize_inplace(msg, fmt);
                    float *dst_state = state_ptr->data() +
                        std::size_t(dst) * agg_ptr->state_dim();
                    agg_ptr->accumulate(dst_state, msg.data());
                    if (quant)
                        quantize_inplace(dst_state,
                                         agg_ptr->state_dim(), fmt);
                }
            };
        }

        // ---- Timing: run the phase (GAT gathers need two rounds) ----
        PhaseEnv env{w, cfg, opts, stats, phase_base};
        std::uint64_t cycles = run_phase(env);
        if (is_gat) {
            // Round 2: re-stream the projections from the node buffer
            // (no recomputation) for the weighted sum.
            PhaseWork w2 = w;
            wsi.acc_zero.assign(n_nodes, 0);
            w2.acc_cycles = &wsi.acc_zero;
            w2.on_nt_complete = nullptr;
            w2.on_mp_complete = nullptr;
            PhaseEnv env2{w2, cfg, opts, stats, phase_base + cycles};
            cycles += run_phase(env2);
        }
        phase_base += cycles;
        stats.phase_cycles.push_back(cycles);
        stats.total_cycles += cycles;

        // ---- Commit functional state ----
        // Swap instead of move-assign: the displaced buffers stay in
        // the workspace and their element capacity is reused next
        // stage / next run (every node's slot is overwritten before
        // it is read again).
        std::swap(cur, out);
        if (is_gat) {
            pending_gat = gat;
            have_prev_agg = false;
        } else if (w.has_scatter) {
            prev_agg = next_agg;
            std::swap(prev_state, next_state);
            have_prev_agg = true;
        } else {
            have_prev_agg = false;
        }
    }

    // Epilogue: final GAT combine if the last stage was attention.
    if (pending_gat != nullptr) {
        std::uint64_t per_node =
            ceil_div(model_.stage(n_stages - 1).out_dim(), cfg.p_apply);
        std::uint64_t epi =
            ceil_div(std::uint64_t(n_nodes), cfg.p_node) * per_node;
        stats.phase_cycles.push_back(epi);
        stats.total_cycles += epi;
        combine_pending_gat();
    }

    // Global mean pooling (accumulated while the final embeddings
    // stream out — free) + the MLP head.
    result.embeddings = Matrix(n_nodes, model_.embedding_dim());
    for (NodeId i = 0; i < n_nodes; ++i)
        result.embeddings.set_row(i, cur[i]);
    Vec pooled =
        model_.global_pool(result.embeddings, prepared.pool_nodes());
    result.prediction = model_.head().forward(pooled)[0];

    std::uint64_t head_cycles = 0;
    for (std::size_t l = 0; l < model_.head().num_layers(); ++l)
        head_cycles +=
            ceil_div(model_.head().layer(l).in_dim(), cfg.p_apply);
    stats.head_cycles = head_cycles;
    stats.total_cycles += head_cycles + stats.load_cycles;

    return result;
}

} // namespace flowgnn
