#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "core/phase_model.h"
#include "graph/partition.h"
#include "nn/gat_layer.h"

namespace flowgnn {

namespace {

std::uint64_t
ceil_div(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

/**
 * Graph-sized scratch buffers reused across runs. Buffers are resized
 * (never shrunk) per graph, so a steady-state replica serving a stream
 * of similar graphs stops allocating in the run loop.
 */
struct RunWorkspace::Impl {
    std::vector<std::uint32_t> bank_of;
    std::vector<std::uint32_t> bank_count;
    std::vector<std::vector<BankWork>> banks;
    std::vector<std::uint64_t> acc_cycles;
    std::vector<std::uint64_t> acc_zero;
    std::vector<Vec> cur;
    std::vector<Vec> out;
    std::vector<float> prev_state;
    std::vector<float> next_state;
};

RunWorkspace::RunWorkspace() : impl_(std::make_unique<Impl>()) {}
RunWorkspace::~RunWorkspace() = default;
RunWorkspace::RunWorkspace(RunWorkspace &&) noexcept = default;
RunWorkspace &RunWorkspace::operator=(RunWorkspace &&) noexcept = default;

Engine::Engine(const Model &model, EngineConfig config)
    : model_(model), config_(config)
{
    config_.validate();
}

RunResult
Engine::run(const GraphSample &sample) const
{
    RunWorkspace ws;
    return run(sample, RunOptions{}, ws);
}

RunResult
Engine::run(const GraphSample &sample, const RunOptions &opts) const
{
    RunWorkspace ws;
    return run(sample, opts, ws);
}

RunResult
Engine::run(const GraphSample &sample, const RunOptions &opts,
            RunWorkspace &ws) const
{
    GraphSample prepared = model_.prepare(sample);
    return run_prepared(prepared, opts, ws);
}

RunResult
Engine::run_prepared(const GraphSample &prepared, const RunOptions &opts,
                     RunWorkspace &ws) const
{
    // The GraphSample front door keeps the stronger structural check
    // (feature-row counts vs graph sizes) that SampleRef cannot see.
    if (!prepared.consistent())
        throw std::invalid_argument("Engine: inconsistent sample");
    return run_prepared(SampleRef(prepared), opts, ws, 1);
}

RunResult
Engine::run_prepared(const SampleRef &prepared, const RunOptions &opts,
                     RunWorkspace &ws, unsigned threads) const
{
    // Run-to-completion wrapper: a fresh checkpoint and a masked
    // preemption token, so this entry point keeps its historical
    // semantics even when callers set RunOptions::preempt.
    RunOptions whole = opts;
    whole.preempt = nullptr;
    LayerCheckpoint ckpt;
    RunResult result;
    run_resumable(prepared, whole, ws, ckpt, result, std::size_t(-1),
                  threads);
    return result;
}

SegmentOutcome
Engine::run_resumable(const SampleRef &prepared, const RunOptions &opts,
                      RunWorkspace &ws, LayerCheckpoint &ckpt,
                      RunResult &result, std::size_t max_stages,
                      unsigned threads) const
{
    opts.validate();
    const EngineConfig &cfg = config_;
    RunWorkspace::Impl &wsi = *ws.impl_;
    if (!prepared.consistent(threads))
        throw std::invalid_argument("Engine: inconsistent sample");
    const bool resuming = ckpt.next_stage > 0;
    if (resuming && ckpt.next_stage >= model_.num_stages())
        throw std::invalid_argument(
            "Engine: checkpoint resume point past the last stage");
    if (resuming && ckpt.embeddings.size() != prepared.num_nodes())
        throw std::invalid_argument(
            "Engine: checkpoint does not match the sample");

    const NodeId n_nodes = prepared.num_nodes();
    LayerContext ctx =
        make_layer_context(prepared, model_.pna_params(), threads);
    CsrGraph csr(prepared.graph, threads);

    // Destination-node -> MP-bank map. Modulo is the on-the-fly
    // default; greedy balancing is the pre-processing ablation.
    std::vector<std::uint32_t> &bank_of = wsi.bank_of;
    if (cfg.bank_policy == BankPolicy::kGreedyBalanced) {
        bank_of =
            balanced_bank_assignment(prepared.graph, cfg.p_edge, threads);
    } else {
        bank_of.resize(n_nodes);
        for (NodeId n = 0; n < n_nodes; ++n)
            bank_of[n] = n % cfg.p_edge;
    }

    // Per-node destination-bank split, computed on the fly from the
    // streamed edge list, shared across phases.
    std::vector<std::vector<BankWork>> &banks = wsi.banks;
    if (banks.size() < n_nodes)
        banks.resize(n_nodes);
    {
        std::vector<std::uint32_t> &count = wsi.bank_count;
        count.assign(cfg.p_edge, 0);
        for (NodeId n = 0; n < n_nodes; ++n) {
            banks[n].clear();
            std::fill(count.begin(), count.end(), 0);
            for (std::size_t s = csr.row_begin(n); s < csr.row_end(n); ++s)
                ++count[bank_of[csr.dst(s)]];
            for (std::uint32_t b = 0; b < cfg.p_edge; ++b)
                if (count[b] > 0)
                    banks[n].push_back({b, count[b]});
        }
    }

    RunStats &stats = result.stats;
    if (resuming) {
        // Timing accumulated over the completed stages carries over;
        // everything derived (banks, CSR, schedule) was rebuilt above
        // from (sample, config) so it cannot drift from the original.
        stats = std::move(ckpt.stats);
    } else {
        stats = RunStats{};
        stats.clock_mhz = cfg.clock_mhz;
        stats.nt_units.assign(cfg.p_node, {});
        stats.mp_units.assign(cfg.p_edge, {});
        stats.mp_edge_work.assign(cfg.p_edge, 0);

        // Input DMA: nodes, features, and the raw COO edge list stream
        // in at 64 words/cycle (a conservative fraction of the U50's
        // 460 GB/s HBM2 bandwidth, ~380 words/cycle at 300 MHz); not
        // overlapped with compute, as documented in docs/DESIGN.md.
        stats.load_cycles = ceil_div(
            std::uint64_t(n_nodes) * (prepared.node_dim + 1) +
                std::uint64_t(prepared.num_edges()) *
                    (prepared.edge_dim + 2),
            64);
    }

    // ---- Functional state ----
    const bool quant = opts.emulate_fixed_point;
    const FixedPointFormat &fmt = opts.fixed_point;
    std::vector<Vec> &cur = wsi.cur;
    std::vector<Vec> &out = wsi.out;
    out.resize(n_nodes);
    if (resuming) {
        cur = std::move(ckpt.embeddings);
    } else {
        cur.resize(n_nodes);
        for (NodeId i = 0; i < n_nodes; ++i) {
            if (prepared.node_dim > 0) {
                const float *row = prepared.node_row(i);
                cur[i].assign(row, row + prepared.node_dim);
            } else {
                cur[i].clear();
            }
            if (quant)
                quantize_inplace(cur[i], fmt);
        }
    }

    Aggregator prev_agg;        // aggregator of messages consumed now
    std::vector<float> &prev_state = wsi.prev_state;
    bool have_prev_agg = false;

    const GatLayer *pending_gat = nullptr; // 'cur' holds projections
    std::unique_ptr<CscGraph> csc;         // built lazily for GAT

    if (resuming) {
        // The aggregator object and the GAT layer pointer carry no run
        // state; only their *identity* is checkpointed (have_agg /
        // pending_gat flags) and both are recovered from the model.
        prev_state = std::move(ckpt.agg_state);
        have_prev_agg = ckpt.have_agg;
        if (have_prev_agg)
            prev_agg = model_.stage(ckpt.next_stage).aggregator();
        if (ckpt.pending_gat) {
            pending_gat = dynamic_cast<const GatLayer *>(
                &model_.stage(ckpt.next_stage - 1));
            if (pending_gat == nullptr)
                throw std::logic_error(
                    "Engine: checkpoint pending_gat at non-GAT stage");
        }
    }

    auto combine_pending_gat = [&]() {
        if (pending_gat == nullptr)
            return;
        if (!csc)
            csc = std::make_unique<CscGraph>(prepared.graph, threads);
        std::vector<Vec> combined(n_nodes);
        for (NodeId i = 0; i < n_nodes; ++i) {
            std::vector<const Vec *> nbrs;
            nbrs.reserve(csc->in_degree(i));
            for (std::size_t s = csc->col_begin(i); s < csc->col_end(i);
                 ++s)
                nbrs.push_back(&cur[csc->src(s)]);
            combined[i] = gat_combine(*pending_gat, cur[i], nbrs);
            if (quant)
                quantize_inplace(combined[i], fmt);
        }
        cur = std::move(combined);
        pending_gat = nullptr;
    };

    const float *efeat = prepared.edge_features;
    const std::size_t edge_dim = prepared.edge_dim;

    const std::size_t n_stages = model_.num_stages();
    const std::vector<StageSchedule> schedule =
        build_stage_schedule(model_, cfg);
    std::uint64_t phase_base = resuming ? ckpt.phase_base : 0;
    std::size_t stages_this_call = 0;
    for (std::size_t si = ckpt.next_stage; si < n_stages; ++si) {
        const Layer &stage = model_.stage(si);
        const bool is_gat = (stage.dataflow() == DataflowKind::kMpToNt);
        const bool prev_was_gat = (pending_gat != nullptr);
        const auto *gat = dynamic_cast<const GatLayer *>(&stage);
        if (is_gat && gat == nullptr)
            throw std::logic_error("Engine: MP-to-NT stage is not GAT");

        // The scatter fused into this phase: either the next NT-to-MP
        // conv's message pass, or this GAT stage's own gather rounds.
        const Layer *scatter_stage = nullptr;
        if (is_gat) {
            scatter_stage = &stage;
        } else if (si + 1 < n_stages) {
            const Layer &next = model_.stage(si + 1);
            if (next.msg_dim() > 0 &&
                next.dataflow() == DataflowKind::kNtToMp)
                scatter_stage = &next;
        }

        // Functional prologue: materialize pending GAT combine so this
        // stage sees real embeddings. (Its cycle cost is folded into
        // the schedule's acc_cycles as an extra NT pass.)
        if (prev_was_gat)
            combine_pending_gat();

        // ---- Build this phase's work description ----
        // Timing constants come from the shared per-stage schedule —
        // the same numbers the ghost-exchange executor prices with.
        const StageSchedule &sched = schedule[si];
        PhaseWork w;
        w.n_nodes = n_nodes;
        w.stream_elems = sched.stream_elems;
        w.banks = &banks;
        w.has_scatter = sched.has_scatter;
        w.expansion = sched.expansion;
        wsi.acc_cycles.assign(n_nodes, sched.acc_cycles);
        w.acc_cycles = &wsi.acc_cycles;

        Aggregator next_agg;
        std::vector<float> &next_state = wsi.next_state;
        next_state.clear();
        if (scatter_stage != nullptr && !is_gat) {
            next_agg = scatter_stage->aggregator();
            next_state.assign(std::size_t(n_nodes) *
                                  next_agg.state_dim(),
                              0.0f);
            for (NodeId i = 0; i < n_nodes; ++i)
                next_agg.init(next_state.data() +
                              std::size_t(i) * next_agg.state_dim());
        }

        // Functional NT: compute this stage's node outputs.
        w.on_nt_complete = [&, is_gat, gat](NodeId node) {
            if (is_gat) {
                out[node] = gat->project(cur[node]);
            } else if (have_prev_agg) {
                Vec fin = prev_agg.finalize(
                    prev_state.data() +
                        std::size_t(node) * prev_agg.state_dim(),
                    ctx.in_deg[node], ctx.pna);
                if (quant)
                    quantize_inplace(fin, fmt);
                out[node] = stage.transform(cur[node], fin, node, ctx);
            } else {
                Vec empty;
                out[node] = stage.transform(cur[node], empty, node, ctx);
            }
            if (quant)
                quantize_inplace(out[node], fmt);
        };

        // Functional MP: accumulate this node's messages into the
        // destination states owned by the completing bank, in arrival
        // order (the real dataflow behaviour).
        if (w.has_scatter && !is_gat) {
            Aggregator *agg_ptr = &next_agg;
            std::vector<float> *state_ptr = &next_state;
            w.on_mp_complete = [&, agg_ptr, state_ptr, scatter_stage](
                                   NodeId node, std::uint32_t bank) {
                for (std::size_t s = csr.row_begin(node);
                     s < csr.row_end(node); ++s) {
                    NodeId dst = csr.dst(s);
                    if (bank_of[dst] != bank)
                        continue;
                    EdgeId eid = csr.edge_id(s);
                    const float *ef = edge_dim
                        ? efeat + std::size_t(eid) * edge_dim
                        : nullptr;
                    Vec msg = scatter_stage->message(
                        out[node], ef, edge_dim, node, dst, ctx);
                    if (quant)
                        quantize_inplace(msg, fmt);
                    float *dst_state = state_ptr->data() +
                        std::size_t(dst) * agg_ptr->state_dim();
                    agg_ptr->accumulate(dst_state, msg.data());
                    if (quant)
                        quantize_inplace(dst_state,
                                         agg_ptr->state_dim(), fmt);
                }
            };
        }

        // ---- Timing: run the phase (GAT gathers need two rounds) ----
        PhaseEnv env{w, cfg, opts, stats, phase_base};
        std::uint64_t cycles = run_phase(env);
        if (is_gat) {
            // Round 2: re-stream the projections from the node buffer
            // (no recomputation) for the weighted sum.
            PhaseWork w2 = w;
            wsi.acc_zero.assign(n_nodes, 0);
            w2.acc_cycles = &wsi.acc_zero;
            w2.on_nt_complete = nullptr;
            w2.on_mp_complete = nullptr;
            PhaseEnv env2{w2, cfg, opts, stats, phase_base + cycles};
            cycles += run_phase(env2);
        }
        phase_base += cycles;
        stats.phase_cycles.push_back(cycles);
        stats.total_cycles += cycles;

        // ---- Commit functional state ----
        // Swap instead of move-assign: the displaced buffers stay in
        // the workspace and their element capacity is reused next
        // stage / next run (every node's slot is overwritten before
        // it is read again).
        std::swap(cur, out);
        if (is_gat) {
            pending_gat = gat;
            have_prev_agg = false;
        } else if (w.has_scatter) {
            prev_agg = next_agg;
            std::swap(prev_state, next_state);
            have_prev_agg = true;
        } else {
            have_prev_agg = false;
        }

        // ---- Layer-boundary yield point ----
        // Checked only after at least one stage completed this call
        // (progress guarantee) and never after the final stage, whose
        // epilogue + head are cheaper than a checkpoint round-trip.
        ++stages_this_call;
        if (si + 1 < n_stages &&
            (stages_this_call >= max_stages ||
             (opts.preempt != nullptr && opts.preempt->requested()))) {
            ckpt.next_stage = si + 1;
            ckpt.embeddings = std::move(cur);
            ckpt.agg_state = std::move(prev_state);
            ckpt.have_agg = have_prev_agg;
            ckpt.pending_gat = (pending_gat != nullptr);
            ckpt.stats = std::move(stats);
            ckpt.phase_base = phase_base;
            return SegmentOutcome::kPreempted;
        }
    }

    // Epilogue: final GAT combine if the last stage was attention.
    if (pending_gat != nullptr) {
        std::uint64_t per_node =
            ceil_div(model_.stage(n_stages - 1).out_dim(), cfg.p_apply);
        std::uint64_t epi =
            ceil_div(std::uint64_t(n_nodes), cfg.p_node) * per_node;
        stats.phase_cycles.push_back(epi);
        stats.total_cycles += epi;
        combine_pending_gat();
    }

    // Global mean pooling (accumulated while the final embeddings
    // stream out — free) + the MLP head.
    result.embeddings = Matrix(n_nodes, model_.embedding_dim());
    for (NodeId i = 0; i < n_nodes; ++i)
        result.embeddings.set_row(i, cur[i]);
    Vec pooled =
        model_.global_pool(result.embeddings, prepared.pool_nodes());
    result.prediction = model_.head().forward(pooled)[0];

    std::uint64_t head_cycles = 0;
    for (std::size_t l = 0; l < model_.head().num_layers(); ++l)
        head_cycles +=
            ceil_div(model_.head().layer(l).in_dim(), cfg.p_apply);
    stats.head_cycles = head_cycles;
    stats.total_cycles += head_cycles + stats.load_cycles;

    // A completed run leaves the checkpoint fresh: the same object can
    // drive the next job without the caller having to reset it.
    ckpt = LayerCheckpoint{};
    return SegmentOutcome::kComplete;
}

} // namespace flowgnn
