/**
 * @file
 * Execution statistics gathered by the engine: cycle counts, per-unit
 * utilization, queue behaviour, and the observed MP workload split
 * (the measured counterpart of Table VII's imbalance metric).
 */
#ifndef FLOWGNN_CORE_STATS_H
#define FLOWGNN_CORE_STATS_H

#include <cstdint>
#include <vector>

#include "core/trace.h"

namespace flowgnn {

/** Busy/idle cycle counts for one processing unit. */
struct UnitStats {
    std::uint64_t busy = 0;
    std::uint64_t idle = 0;

    double
    utilization() const
    {
        std::uint64_t total = busy + idle;
        return total == 0 ? 0.0 : static_cast<double>(busy) / total;
    }
};

/** Statistics of one engine run (one graph through all layers). */
struct RunStats {
    /** Kernel clock the producing engine was configured with; filled
     * in by Engine::run so latency reports always use the real clock
     * rather than an assumed default. */
    double clock_mhz = 300.0;
    std::uint64_t total_cycles = 0;
    std::uint64_t load_cycles = 0; ///< input DMA (graph + features)
    std::uint64_t head_cycles = 0; ///< pooled MLP head
    std::vector<std::uint64_t> phase_cycles; ///< per pipeline phase
    std::vector<UnitStats> nt_units;
    std::vector<UnitStats> mp_units;
    /** Edge-work items processed per MP unit (workload imbalance). */
    std::vector<std::uint64_t> mp_edge_work;
    std::uint64_t adapter_stall_cycles = 0; ///< multicast backpressure
    /** Inter-die exchange cycles (zero for single-die runs). For halo
     * runs this is the one-shot pre-run fetch; for ghost-exchange runs
     * it is the sum over all per-layer exchanges on the worst die.
     * Already included in total_cycles when set, so latency_ms()
     * reports the end-to-end figure. */
    std::uint64_t comm_cycles = 0;
    /** Ghost-exchange runs only: per-exchange link cycles, maxed over
     * dies (entry p is the boundary exchange feeding phase p's
     * scatter). Empty for halo and single-die runs. */
    std::vector<std::uint64_t> layer_comm_cycles;
    std::size_t queue_peak_occupancy = 0;
    std::uint64_t queue_total_pushes = 0;
    /** Busy intervals per unit (when RunOptions::capture_trace). */
    std::vector<TraceEvent> trace;
    /**
     * Per-die end-to-end chain length (halo fetch + compute) of a
     * composed multi-die run, one entry per shard; empty for
     * single-die runs. total_cycles is the max of these, so
     * die_cycles[d] / total_cycles is die d's utilization of the
     * system-level makespan.
     */
    std::vector<std::uint64_t> die_cycles;

    /** Wall latency at the producing engine's configured clock. */
    double
    latency_ms() const
    {
        return latency_ms(clock_mhz);
    }

    /** Wall latency at an explicit what-if clock. */
    double
    latency_ms(double at_clock_mhz) const
    {
        return static_cast<double>(total_cycles) / (at_clock_mhz * 1e3);
    }

    /** Observed MP imbalance: (max-min)/total work, as in Table VII. */
    double observed_mp_imbalance() const;

    /** Per-die fraction of the system makespan each die spent working
     * (die_cycles / total_cycles); empty for single-die runs. */
    std::vector<double> die_utilizations() const;
};

/**
 * Composes per-die statistics of one sharded run into a single
 * RunStats, as if the multi-die system were one wider accelerator:
 *
 * - cycle totals take the slowest die (dies run concurrently); by
 *   default each die's halo-exchange cycles serialize in front of its
 *   compute, so die d's chain is comm[d] + total[d];
 * - with `overlap_comm` the halo fetch overlaps the die's input DMA
 *   (both are ingest streams): the chain becomes
 *   max(comm[d], load_cycles[d]) + (total[d] - load_cycles[d]) — the
 *   link hides behind the local load prefix and only the excess
 *   delays the compute remainder;
 * - per-die chains are recorded in RunStats::die_cycles (die-level
 *   utilization of the makespan);
 * - per-unit and per-bank vectors concatenate across dies, so
 *   utilization and imbalance metrics span the whole system;
 * - trace events get their unit ids offset per die so a merged trace
 *   shows every die's units as separate rows.
 *
 * `comm_cycles` holds one entry per shard (the halo traffic charged
 * to that die); pass zeros for communication-free composition.
 */
RunStats compose_shard_stats(const std::vector<RunStats> &shards,
                             const std::vector<std::uint64_t> &comm_cycles,
                             bool overlap_comm = false);

/**
 * Layered overload for ghost-exchange runs: `per_layer_comm[d][p]` is
 * die d's link cycles for the boundary exchange feeding its phase p's
 * scatter. Serial composition charges every exchange in full (chain =
 * total + sum_p comm[p]); with `overlap_comm` the exchange streams
 * concurrently with the phase it feeds (ghost contributions arrive as
 * the scatter consumes them) — modeled by hiding it behind that die's
 * phase-p compute window, so only max(0, comm[p] - phase_cycles[p])
 * delays the chain. The composed stats additionally record
 * RunStats::layer_comm_cycles (per-exchange max over dies).
 */
RunStats compose_shard_stats(
    const std::vector<RunStats> &shards,
    const std::vector<std::vector<std::uint64_t>> &per_layer_comm,
    bool overlap_comm = false);

} // namespace flowgnn

#endif // FLOWGNN_CORE_STATS_H
