/**
 * @file
 * flowgnn::check — portable Clang Thread Safety Analysis annotations.
 *
 * These macros declare the tree's lock discipline in a form the
 * compiler can prove: which mutex guards which member
 * (FLOWGNN_GUARDED_BY), which functions must be called with a lock
 * held (FLOWGNN_REQUIRES), and which functions acquire or release a
 * capability (FLOWGNN_ACQUIRE / FLOWGNN_RELEASE). Under clang with
 * -Wthread-safety (the FLOWGNN_THREAD_SAFETY CMake option, a CI
 * gate), every lock acquisition in src/ is checked against these
 * contracts at compile time; under every other compiler the macros
 * expand to nothing, so GCC builds are byte-identical to before.
 *
 * The names mirror the attribute set documented in
 * https://clang.llvm.org/docs/ThreadSafetyAnalysis.html (the same
 * convention abseil's ABSL_* macros wrap). The annotated lock
 * primitives built on these macros live in core/sync.h; annotation
 * conventions and the suppression policy are documented in
 * docs/DESIGN.md ("Static analysis & concurrency contracts").
 */
#ifndef FLOWGNN_CORE_THREAD_ANNOTATIONS_H
#define FLOWGNN_CORE_THREAD_ANNOTATIONS_H

#if defined(__clang__) && !defined(SWIG)
#define FLOWGNN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FLOWGNN_THREAD_ANNOTATION_(x) // no-op off clang
#endif

/** Marks a class as a lockable capability ("mutex"). */
#define FLOWGNN_CAPABILITY(x) FLOWGNN_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII class whose lifetime equals a capability hold. */
#define FLOWGNN_SCOPED_CAPABILITY \
    FLOWGNN_THREAD_ANNOTATION_(scoped_lockable)

/** Data member readable/writable only while holding the named
 * capability. */
#define FLOWGNN_GUARDED_BY(x) FLOWGNN_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer member whose *pointee* is guarded by the capability. */
#define FLOWGNN_PT_GUARDED_BY(x) \
    FLOWGNN_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function that acquires the capability (and does not release it). */
#define FLOWGNN_ACQUIRE(...) \
    FLOWGNN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function that releases a held capability. */
#define FLOWGNN_RELEASE(...) \
    FLOWGNN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function that attempts the acquisition; first argument is the
 * return value meaning "acquired". */
#define FLOWGNN_TRY_ACQUIRE(...) \
    FLOWGNN_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** Callable only while the capability is held (it neither acquires
 * nor releases). Also attachable to cv-wait predicate lambdas:
 * `[&]() FLOWGNN_REQUIRES(mutex_) { ... }`. */
#define FLOWGNN_REQUIRES(...) \
    FLOWGNN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Callable only while the capability is NOT held (deadlock guard for
 * functions that acquire it themselves). */
#define FLOWGNN_EXCLUDES(...) \
    FLOWGNN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Function returning a reference to the named capability. */
#define FLOWGNN_RETURN_CAPABILITY(x) \
    FLOWGNN_THREAD_ANNOTATION_(lock_returned(x))

/**
 * Escape hatch: disables analysis inside one function body while its
 * declared contract still applies at call sites. Policy (enforced by
 * review, documented in DESIGN.md): permitted only inside the lock
 * primitives themselves (core/sync.h, where the wrapped std::mutex is
 * invisible to the analysis) and in documented lock-free code; every
 * use carries a justification comment.
 */
#define FLOWGNN_NO_THREAD_SAFETY_ANALYSIS \
    FLOWGNN_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif // FLOWGNN_CORE_THREAD_ANNOTATIONS_H
