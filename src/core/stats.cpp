#include "core/stats.h"

#include <algorithm>

namespace flowgnn {

double
RunStats::observed_mp_imbalance() const
{
    if (mp_edge_work.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (auto w : mp_edge_work)
        total += w;
    if (total == 0)
        return 0.0;
    auto [mn, mx] = std::minmax_element(mp_edge_work.begin(),
                                        mp_edge_work.end());
    return static_cast<double>(*mx - *mn) / static_cast<double>(total);
}

} // namespace flowgnn
