#include "core/stats.h"

#include <algorithm>
#include <stdexcept>

namespace flowgnn {

double
RunStats::observed_mp_imbalance() const
{
    if (mp_edge_work.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (auto w : mp_edge_work)
        total += w;
    if (total == 0)
        return 0.0;
    auto [mn, mx] = std::minmax_element(mp_edge_work.begin(),
                                        mp_edge_work.end());
    return static_cast<double>(*mx - *mn) / static_cast<double>(total);
}

std::vector<double>
RunStats::die_utilizations() const
{
    std::vector<double> out(die_cycles.size(), 0.0);
    for (std::size_t d = 0; d < die_cycles.size(); ++d)
        out[d] = total_cycles == 0
            ? 0.0
            : static_cast<double>(die_cycles[d]) /
                  static_cast<double>(total_cycles);
    return out;
}

namespace {

/**
 * The die-merging core shared by both compose_shard_stats overloads:
 * per-die chain lengths are supplied by the caller; everything else
 * (maxes, concatenations, trace unit-id offsets) is common.
 */
RunStats
compose_core(const std::vector<RunStats> &shards,
             const std::vector<std::uint64_t> &chains,
             const std::vector<std::uint64_t> &die_comm)
{
    RunStats out;
    out.clock_mhz = shards.front().clock_mhz;
    out.die_cycles.reserve(shards.size());
    std::uint32_t nt_offset = 0;
    std::uint32_t mp_offset = 0;
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const RunStats &sh = shards[s];
        out.die_cycles.push_back(chains[s]);
        out.total_cycles = std::max(out.total_cycles, chains[s]);
        out.comm_cycles = std::max(out.comm_cycles, die_comm[s]);
        out.load_cycles = std::max(out.load_cycles, sh.load_cycles);
        out.head_cycles = std::max(out.head_cycles, sh.head_cycles);
        if (sh.phase_cycles.size() > out.phase_cycles.size())
            out.phase_cycles.resize(sh.phase_cycles.size(), 0);
        for (std::size_t p = 0; p < sh.phase_cycles.size(); ++p)
            out.phase_cycles[p] =
                std::max(out.phase_cycles[p], sh.phase_cycles[p]);
        out.nt_units.insert(out.nt_units.end(), sh.nt_units.begin(),
                            sh.nt_units.end());
        out.mp_units.insert(out.mp_units.end(), sh.mp_units.begin(),
                            sh.mp_units.end());
        out.mp_edge_work.insert(out.mp_edge_work.end(),
                                sh.mp_edge_work.begin(),
                                sh.mp_edge_work.end());
        out.adapter_stall_cycles += sh.adapter_stall_cycles;
        out.queue_peak_occupancy = std::max(out.queue_peak_occupancy,
                                            sh.queue_peak_occupancy);
        out.queue_total_pushes += sh.queue_total_pushes;
        for (TraceEvent ev : sh.trace) {
            ev.unit += ev.kind == TraceKind::kMpWork ? mp_offset
                                                     : nt_offset;
            out.trace.push_back(ev);
        }
        nt_offset += static_cast<std::uint32_t>(sh.nt_units.size());
        mp_offset += static_cast<std::uint32_t>(sh.mp_units.size());
    }
    return out;
}

} // namespace

RunStats
compose_shard_stats(const std::vector<RunStats> &shards,
                    const std::vector<std::uint64_t> &comm_cycles,
                    bool overlap_comm)
{
    if (shards.empty())
        throw std::invalid_argument(
            "compose_shard_stats: need at least one shard");
    if (comm_cycles.size() != shards.size())
        throw std::invalid_argument(
            "compose_shard_stats: comm_cycles size mismatch");

    // Dies run concurrently; the system finishes with the die whose
    // fetch + compute chain is longest. Serial mode charges the full
    // halo fetch before compute; overlap mode hides the fetch behind
    // the die's own input DMA (load_cycles) and only the excess delays
    // the compute remainder.
    std::vector<std::uint64_t> chains(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const RunStats &sh = shards[s];
        if (overlap_comm) {
            std::uint64_t prefix =
                std::max(comm_cycles[s], sh.load_cycles);
            chains[s] = prefix + (sh.total_cycles - sh.load_cycles);
        } else {
            chains[s] = sh.total_cycles + comm_cycles[s];
        }
    }
    return compose_core(shards, chains, comm_cycles);
}

RunStats
compose_shard_stats(
    const std::vector<RunStats> &shards,
    const std::vector<std::vector<std::uint64_t>> &per_layer_comm,
    bool overlap_comm)
{
    if (shards.empty())
        throw std::invalid_argument(
            "compose_shard_stats: need at least one shard");
    if (per_layer_comm.size() != shards.size())
        throw std::invalid_argument(
            "compose_shard_stats: per_layer_comm size mismatch");

    // Per-layer exchange: die d's chain is its compute total plus the
    // exposed cost of every boundary exchange. Serial exposes each
    // exchange in full; overlap hides exchange p behind the die's
    // phase-p compute window (see the header for the model).
    std::vector<std::uint64_t> chains(shards.size());
    std::vector<std::uint64_t> die_comm(shards.size(), 0);
    std::size_t n_layers = 0;
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const RunStats &sh = shards[s];
        const auto &comm = per_layer_comm[s];
        n_layers = std::max(n_layers, comm.size());
        std::uint64_t exposed = 0;
        for (std::size_t p = 0; p < comm.size(); ++p) {
            die_comm[s] += comm[p];
            std::uint64_t window = p < sh.phase_cycles.size()
                ? sh.phase_cycles[p]
                : 0;
            exposed += overlap_comm
                ? (comm[p] > window ? comm[p] - window : 0)
                : comm[p];
        }
        chains[s] = sh.total_cycles + exposed;
    }
    RunStats out = compose_core(shards, chains, die_comm);
    out.layer_comm_cycles.assign(n_layers, 0);
    for (const auto &comm : per_layer_comm)
        for (std::size_t p = 0; p < comm.size(); ++p)
            out.layer_comm_cycles[p] =
                std::max(out.layer_comm_cycles[p], comm[p]);
    return out;
}

} // namespace flowgnn
