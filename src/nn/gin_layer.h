/**
 * @file
 * Graph Isomorphism Network layer with edge embeddings (paper Eq. 1):
 *
 *   x_i' = MLP( (1 + eps) * x_i + sum_j ReLU(x_j + EdgeEnc(e_ji)) )
 *
 * GIN is the paper's representative of GNNs where SpMM does not apply
 * because the message transformation must run once per edge.
 */
#ifndef FLOWGNN_NN_GIN_LAYER_H
#define FLOWGNN_NN_GIN_LAYER_H

#include "nn/layer.h"
#include "tensor/mlp.h"

namespace flowgnn {

/** GIN convolution with an edge-feature encoder and a 2-layer MLP. */
class GinLayer : public Layer
{
  public:
    /**
     * @param dim       hidden dimension (in == out for GIN)
     * @param edge_dim  raw edge feature count (0 disables the encoder)
     * @param act       activation applied after the MLP
     */
    GinLayer(std::size_t dim, std::size_t edge_dim, Activation act,
             Rng &rng);

    const char *name() const override { return "gin"; }
    std::size_t in_dim() const override { return dim_; }
    std::size_t out_dim() const override { return dim_; }
    std::size_t msg_dim() const override { return dim_; }
    bool uses_edge_features() const override { return edge_dim_ > 0; }

    Vec message(const Vec &x_src, const float *edge_feat,
                std::size_t edge_dim, NodeId src, NodeId dst,
                const LayerContext &ctx) const override;

    Vec transform(const Vec &x_self, const Vec &agg, NodeId node,
                  const LayerContext &ctx) const override;

    std::vector<std::size_t> nt_pass_dims() const override
    {
        // MLP: dim -> 2*dim -> dim, two input-stationary passes.
        return {dim_, 2 * dim_};
    }

    std::size_t transform_macs() const override { return mlp_.macs(); }

    std::size_t message_macs() const override
    {
        return edge_dim_ > 0 ? edge_dim_ * dim_ : 0;
    }

    float epsilon() const { return eps_; }
    const Mlp &mlp() const { return mlp_; }

  private:
    std::size_t dim_;
    std::size_t edge_dim_;
    float eps_ = 0.1f; ///< learned in training; fixed constant here.
    Linear edge_enc_;
    Mlp mlp_;
    Activation act_;
};

} // namespace flowgnn

#endif // FLOWGNN_NN_GIN_LAYER_H
