#include "nn/layer.h"

#include <cmath>
#include <stdexcept>

namespace flowgnn {

LayerContext
make_layer_context(const GraphSample &sample, const PnaParams &pna)
{
    LayerContext ctx;
    ctx.sample = &sample;
    // Subgraph execution (multi-die sharding) supplies the full
    // graph's degrees alongside the features; otherwise count edges.
    ctx.in_deg = sample.true_in_deg.empty() ? sample.graph.in_degrees()
                                            : sample.true_in_deg;
    ctx.out_deg = sample.true_out_deg.empty()
                      ? sample.graph.out_degrees()
                      : sample.true_out_deg;
    ctx.pna = pna;

    if (!sample.dgn_field.empty()) {
        ctx.dgn_norm.assign(sample.num_nodes(), 1e-6f);
        for (const auto &e : sample.graph.edges) {
            float du = sample.dgn_field[e.src] - sample.dgn_field[e.dst];
            ctx.dgn_norm[e.dst] += std::abs(du);
        }
    }
    return ctx;
}

Vec
Layer::message(const Vec &, const float *, std::size_t, NodeId, NodeId,
               const LayerContext &) const
{
    throw std::logic_error(std::string(name()) +
                           ": layer has no message function");
}

} // namespace flowgnn
