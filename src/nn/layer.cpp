#include "nn/layer.h"

#include <cmath>
#include <stdexcept>

namespace flowgnn {

LayerContext
make_layer_context(const GraphSample &sample, const PnaParams &pna)
{
    return make_layer_context(SampleRef(sample), pna, 1);
}

LayerContext
make_layer_context(const SampleRef &sample, const PnaParams &pna,
                   unsigned threads)
{
    LayerContext ctx;
    ctx.dgn_field = sample.dgn_field;
    const NodeId n = sample.num_nodes();
    // Subgraph execution (multi-die sharding) supplies the full
    // graph's degrees alongside the features; otherwise count edges.
    if (sample.true_in_deg != nullptr)
        ctx.in_deg.assign(sample.true_in_deg, sample.true_in_deg + n);
    else
        ctx.in_deg = sample.graph.in_degrees(threads);
    if (sample.true_out_deg != nullptr)
        ctx.out_deg.assign(sample.true_out_deg,
                           sample.true_out_deg + n);
    else
        ctx.out_deg = sample.graph.out_degrees(threads);
    ctx.pna = pna;

    if (sample.dgn_field != nullptr) {
        const float *u = sample.dgn_field;
        ctx.dgn_norm.assign(n, 1e-6f);
        const std::size_t e = sample.num_edges();
        for (std::size_t i = 0; i < e; ++i) {
            float du = u[sample.graph.src(i)] - u[sample.graph.dst(i)];
            ctx.dgn_norm[sample.graph.dst(i)] += std::abs(du);
        }
    }
    return ctx;
}

Vec
Layer::message(const Vec &, const float *, std::size_t, NodeId, NodeId,
               const LayerContext &) const
{
    throw std::logic_error(std::string(name()) +
                           ": layer has no message function");
}

} // namespace flowgnn
