#include "nn/layer.h"

#include <cmath>
#include <stdexcept>

namespace flowgnn {

LayerContext
make_layer_context(const GraphSample &sample, const PnaParams &pna)
{
    LayerContext ctx;
    ctx.sample = &sample;
    ctx.in_deg = sample.graph.in_degrees();
    ctx.out_deg = sample.graph.out_degrees();
    ctx.pna = pna;

    if (!sample.dgn_field.empty()) {
        ctx.dgn_norm.assign(sample.num_nodes(), 1e-6f);
        for (const auto &e : sample.graph.edges) {
            float du = sample.dgn_field[e.src] - sample.dgn_field[e.dst];
            ctx.dgn_norm[e.dst] += std::abs(du);
        }
    }
    return ctx;
}

Vec
Layer::message(const Vec &, const float *, std::size_t, NodeId, NodeId,
               const LayerContext &) const
{
    throw std::logic_error(std::string(name()) +
                           ": layer has no message function");
}

} // namespace flowgnn
