#include "nn/gcn_layer.h"

#include <cmath>

#include "tensor/ops.h"

namespace flowgnn {

GcnLayer::GcnLayer(std::size_t in_dim, std::size_t out_dim, Activation act,
                   Rng &rng)
    : linear_(in_dim, out_dim), act_(act)
{
    linear_.init_glorot(rng);
}

Vec
GcnLayer::message(const Vec &x_src, const float *, std::size_t, NodeId src,
                  NodeId dst, const LayerContext &ctx) const
{
    // Symmetric normalization with renormalized degrees (deg + 1).
    float d_src = static_cast<float>(ctx.out_deg[src]) + 1.0f;
    float d_dst = static_cast<float>(ctx.in_deg[dst]) + 1.0f;
    float norm = 1.0f / std::sqrt(d_src * d_dst);
    return scale(x_src, norm);
}

Vec
GcnLayer::transform(const Vec &x_self, const Vec &agg, NodeId node,
                    const LayerContext &ctx) const
{
    // Self-loop term: x_i / (deg_i + 1).
    float d_hat = static_cast<float>(ctx.in_deg[node]) + 1.0f;
    Vec combined = agg;
    axpy_inplace(combined, 1.0f / d_hat, x_self);
    Vec out = linear_.forward(combined);
    apply_activation(out, act_);
    return out;
}

} // namespace flowgnn
