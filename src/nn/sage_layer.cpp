#include "nn/sage_layer.h"

#include "tensor/ops.h"

namespace flowgnn {

SageLayer::SageLayer(std::size_t in_dim, std::size_t out_dim,
                     Activation act, Rng &rng)
    : self_(in_dim, out_dim), nbr_(in_dim, out_dim), act_(act)
{
    self_.init_glorot(rng);
    nbr_.init_glorot(rng);
}

Vec
SageLayer::message(const Vec &x_src, const float *, std::size_t, NodeId,
                   NodeId, const LayerContext &) const
{
    // Raw neighbor embedding; the mean is taken by the aggregator.
    return x_src;
}

Vec
SageLayer::transform(const Vec &x_self, const Vec &agg, NodeId,
                     const LayerContext &) const
{
    Vec out = self_.forward(x_self);
    add_inplace(out, nbr_.forward(agg));
    apply_activation(out, act_);
    return out;
}

} // namespace flowgnn
