/**
 * @file
 * Graph Attention Network layer: multi-head self-attention over the
 * in-neighborhood (self-loop included).
 *
 *   h_j      = W x_j                       (projection, per head)
 *   s_ij     = LeakyReLU(a_src . h_j + a_dst . h_i)
 *   alpha_ij = softmax_j(s_ij)             (normalized over N(i) u {i})
 *   x_i'     = act( concat_heads( sum_j alpha_ij h_j ) )
 *
 * GAT is the paper's representative anisotropic model: the attention
 * coefficient depends on all of a node's neighbors, so it cannot be
 * expressed as matrix multiplication and favors the gather-first
 * (MP-to-NT) dataflow. The softmax uses the numerically stable
 * two-pass form (max, then exp-sum), identically in the reference
 * executor and the dataflow engine.
 */
#ifndef FLOWGNN_NN_GAT_LAYER_H
#define FLOWGNN_NN_GAT_LAYER_H

#include "nn/layer.h"
#include "tensor/activations.h"
#include "tensor/linear.h"

namespace flowgnn {

/** Multi-head graph attention convolution. */
class GatLayer : public Layer
{
  public:
    GatLayer(std::size_t in_dim, std::size_t num_heads,
             std::size_t head_dim, Activation act, Rng &rng);

    const char *name() const override { return "gat"; }
    DataflowKind dataflow() const override { return DataflowKind::kMpToNt; }
    std::size_t in_dim() const override { return proj_.in_dim(); }
    std::size_t out_dim() const override { return heads_ * head_dim_; }
    std::size_t msg_dim() const override { return out_dim(); }

    std::size_t num_heads() const { return heads_; }
    std::size_t head_dim() const { return head_dim_; }

    /** Projection h = W x (all heads concatenated). */
    Vec project(const Vec &x) const { return proj_.forward(x); }

    /** a_src . h_j per head: the source half of the attention logit. */
    Vec src_scores(const Vec &h) const;

    /** a_dst . h_i per head: the destination half of the logit. */
    Vec dst_scores(const Vec &h) const;

    /** Full attention logit per head: LeakyReLU(src + dst). */
    Vec edge_scores(const Vec &h_src, const Vec &h_dst) const;

    /** Output activation (ELU except on the last layer). */
    Activation activation() const { return act_; }

    /**
     * Not used directly — GAT layers run through the attention path of
     * the executor/engine. Kept to satisfy the interface; computes the
     * full layer for a degenerate single-node neighborhood.
     */
    Vec transform(const Vec &x_self, const Vec &agg, NodeId node,
                  const LayerContext &ctx) const override;

    std::vector<std::size_t> nt_pass_dims() const override
    {
        return {proj_.in_dim()};
    }

    std::size_t mp_rounds() const override { return 2; }

    std::size_t transform_macs() const override
    {
        // Projection plus the per-node half of the attention logits.
        return proj_.macs() + 2 * heads_ * head_dim_;
    }

    std::size_t message_macs() const override
    {
        // Score combine + exp-weighted accumulation per edge.
        return 2 * heads_ * head_dim_;
    }

  private:
    std::size_t heads_;
    std::size_t head_dim_;
    Linear proj_; ///< [in_dim -> heads*head_dim]
    Matrix att_src_; ///< [heads x head_dim]
    Matrix att_dst_; ///< [heads x head_dim]
    Activation act_;
};

/**
 * Runs the full two-pass attention for one destination node given its
 * in-neighbor projections. Shared by the reference executor and the
 * dataflow engine so arithmetic is identical.
 *
 * @param layer     the GAT layer
 * @param h_dst     destination node's projection
 * @param h_srcs    in-neighbor projections in arrival order
 * @return the activated output embedding
 */
Vec gat_combine(const GatLayer &layer, const Vec &h_dst,
                const std::vector<const Vec *> &h_srcs);

} // namespace flowgnn

#endif // FLOWGNN_NN_GAT_LAYER_H
