/**
 * @file
 * Principal Neighbourhood Aggregation layer (paper Eq. 3): four
 * aggregators (mean, std, max, min) crossed with three degree scalers
 * (identity, amplification, attenuation), concatenated with the node's
 * own embedding and mixed by a linear layer.
 *
 * PNA is the paper's representative of GNNs whose aggregation cannot
 * be expressed as SpMM because the scaler coefficients depend on the
 * destination node's degree and must be computed on the fly.
 */
#ifndef FLOWGNN_NN_PNA_LAYER_H
#define FLOWGNN_NN_PNA_LAYER_H

#include "nn/layer.h"
#include "tensor/activations.h"
#include "tensor/linear.h"

namespace flowgnn {

/** PNA convolution: 12-way aggregation + linear mixing. */
class PnaLayer : public Layer
{
  public:
    PnaLayer(std::size_t dim, std::size_t edge_dim, Activation act,
             Rng &rng);

    const char *name() const override { return "pna"; }
    std::size_t in_dim() const override { return dim_; }
    std::size_t out_dim() const override { return dim_; }
    std::size_t msg_dim() const override { return dim_; }
    AggregatorKind aggregator_kind() const override
    {
        return AggregatorKind::kPna;
    }
    bool uses_edge_features() const override { return edge_dim_ > 0; }

    Vec message(const Vec &x_src, const float *edge_feat,
                std::size_t edge_dim, NodeId src, NodeId dst,
                const LayerContext &ctx) const override;

    Vec transform(const Vec &x_self, const Vec &agg, NodeId node,
                  const LayerContext &ctx) const override;

    std::vector<std::size_t> nt_pass_dims() const override
    {
        // One input-stationary pass over [x_self || 12 aggregates].
        return {13 * dim_};
    }

    std::size_t transform_macs() const override { return mix_.macs(); }

    std::size_t message_macs() const override
    {
        return edge_dim_ > 0 ? edge_dim_ * dim_ : 0;
    }

  private:
    std::size_t dim_;
    std::size_t edge_dim_;
    Linear edge_enc_;
    Linear mix_; ///< Linear(13*dim -> dim)
    Activation act_;
};

} // namespace flowgnn

#endif // FLOWGNN_NN_PNA_LAYER_H
