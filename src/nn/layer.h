/**
 * @file
 * Abstract GNN layer kernel: the unit of the FlowGNN programming model.
 *
 * A layer supplies the three differentiable pieces of the
 * message-passing formulation (paper Eq. 2)
 *
 *   x_i^{l+1} = gamma(x_i^l, A_{j in N(i)}(phi(x_i^l, x_j^l, e_ij^l)))
 *
 * as `message` (phi), an AggregatorKind (A), and `transform` (gamma),
 * plus the timing metadata the dataflow engine needs (widths of the
 * input-stationary fully-connected passes performed by the NT unit).
 *
 * Adapting FlowGNN to a new GNN means writing one subclass — exactly
 * the "few highlighted lines" of Listing 1 in the paper.
 */
#ifndef FLOWGNN_NN_LAYER_H
#define FLOWGNN_NN_LAYER_H

#include <cstdint>
#include <vector>

#include "graph/sample.h"
#include "nn/aggregator.h"

namespace flowgnn {

/** Which dataflow a layer prefers (paper Sec. III-D2). */
enum class DataflowKind {
    kNtToMp, ///< transform, then scatter (GCN/GIN/PNA/DGN)
    kMpToNt, ///< gather, then transform (GAT attention)
};

/**
 * Per-graph context computed on the fly while a graph streams in:
 * degrees and the DGN directional-field normalizers. This is a single
 * pass over the incoming edge list — part of processing, not
 * pre-processing (no reordering or partition analysis).
 */
struct LayerContext {
    /** Per-node DGN scalar field (num_nodes entries), or null when the
     * sample carries none. A raw pointer rather than the whole sample:
     * the context must not pin a GraphSample when the engine runs off
     * a borrowed SampleRef (mmap-backed graphs). */
    const float *dgn_field = nullptr;
    std::vector<std::uint32_t> in_deg;
    std::vector<std::uint32_t> out_deg;
    /** Per-node sum of |u_j - u_i| over in-neighbors j (+eps), DGN. */
    Vec dgn_norm;
    /** PNA degree-scaler parameters. */
    PnaParams pna;
};

/** Builds the LayerContext for a sample (one pass over the edges). */
LayerContext make_layer_context(const GraphSample &sample,
                                const PnaParams &pna = {});

/**
 * SampleRef overload, the canonical build. Degree counting runs on
 * `threads` host cores (0 = all); the dgn_norm accumulation stays a
 * serial edge loop on purpose — float addition order is part of the
 * bit-identity contract. The context borrows the ref's dgn_field
 * pointer, so the backing must outlive the context.
 */
LayerContext make_layer_context(const SampleRef &sample,
                                const PnaParams &pna = {},
                                unsigned threads = 0);

/**
 * Base class of all FlowGNN layer kernels.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Kernel name for reports. */
    virtual const char *name() const = 0;

    /** Preferred dataflow; the engine picks the matching schedule. */
    virtual DataflowKind dataflow() const { return DataflowKind::kNtToMp; }

    /** Node embedding dimension consumed. */
    virtual std::size_t in_dim() const = 0;

    /** Node embedding dimension produced. */
    virtual std::size_t out_dim() const = 0;

    /**
     * Message vector dimension produced by phi. Zero means the layer
     * has no message-passing step (e.g. the input encoder).
     */
    virtual std::size_t msg_dim() const { return 0; }

    /** Aggregation function for this layer's messages. */
    virtual AggregatorKind aggregator_kind() const
    {
        return AggregatorKind::kSum;
    }

    /** Aggregator policy instance (kind + msg_dim). */
    Aggregator aggregator() const
    {
        return Aggregator(aggregator_kind(), msg_dim());
    }

    /** Whether phi reads edge features. */
    virtual bool uses_edge_features() const { return false; }

    /**
     * phi: the message along edge src->dst given the source node's
     * embedding at this layer's input.
     *
     * @param x_src     source embedding (in_dim floats)
     * @param edge_feat pointer to the edge feature row (may be null)
     * @param edge_dim  number of edge features
     */
    virtual Vec
    message(const Vec &x_src, const float *edge_feat, std::size_t edge_dim,
            NodeId src, NodeId dst, const LayerContext &ctx) const;

    /**
     * gamma: the new embedding from the node's own embedding and the
     * finalized aggregate (empty when msg_dim() == 0).
     */
    virtual Vec transform(const Vec &x_self, const Vec &agg, NodeId node,
                          const LayerContext &ctx) const = 0;

    /**
     * Timing metadata: input widths of the sequential input-stationary
     * FC passes the NT unit performs per node (one entry per Linear in
     * the transform). The NT accumulate phase takes
     * sum_p ceil(width_p / Papply) cycles.
     */
    virtual std::vector<std::size_t> nt_pass_dims() const = 0;

    /**
     * Timing metadata: how many times the MP units must stream this
     * layer's edges (GAT attention needs two passes: scores, then the
     * normalized weighted sum).
     */
    virtual std::size_t mp_rounds() const { return 1; }

    /** Multiply-accumulates in gamma, per node (CPU/GPU cost models). */
    virtual std::size_t transform_macs() const = 0;

    /** Multiply-accumulates in phi, per edge (CPU/GPU cost models). */
    virtual std::size_t message_macs() const { return 0; }
};

} // namespace flowgnn

#endif // FLOWGNN_NN_LAYER_H
