/**
 * @file
 * Graph Convolutional Network layer (Kipf & Welling), the
 * representative of the SpMM-expressible GNN family (paper Table II).
 *
 *   x_i' = act( W * ( x_i / d̂_i  +  sum_j x_j / sqrt(d̂_i d̂_j) ) )
 *
 * with d̂ = degree + 1 (renormalization trick, self-loop included).
 * The per-edge symmetric normalization is the message function; the
 * self-loop term folds into the transform.
 */
#ifndef FLOWGNN_NN_GCN_LAYER_H
#define FLOWGNN_NN_GCN_LAYER_H

#include "nn/layer.h"
#include "tensor/activations.h"
#include "tensor/linear.h"

namespace flowgnn {

/** GCN convolution with symmetric degree normalization. */
class GcnLayer : public Layer
{
  public:
    GcnLayer(std::size_t in_dim, std::size_t out_dim, Activation act,
             Rng &rng);

    const char *name() const override { return "gcn"; }
    std::size_t in_dim() const override { return linear_.in_dim(); }
    std::size_t out_dim() const override { return linear_.out_dim(); }
    std::size_t msg_dim() const override { return linear_.in_dim(); }
    AggregatorKind aggregator_kind() const override
    {
        return AggregatorKind::kSum;
    }

    Vec message(const Vec &x_src, const float *edge_feat,
                std::size_t edge_dim, NodeId src, NodeId dst,
                const LayerContext &ctx) const override;

    Vec transform(const Vec &x_self, const Vec &agg, NodeId node,
                  const LayerContext &ctx) const override;

    std::vector<std::size_t> nt_pass_dims() const override
    {
        return {linear_.in_dim()};
    }

    std::size_t transform_macs() const override { return linear_.macs(); }

    /** The normalization scale is one multiply per edge element. */
    std::size_t message_macs() const override { return linear_.in_dim(); }

    const Linear &linear() const { return linear_; }

  private:
    Linear linear_;
    Activation act_;
};

} // namespace flowgnn

#endif // FLOWGNN_NN_GCN_LAYER_H
