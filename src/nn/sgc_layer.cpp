#include "nn/sgc_layer.h"

#include <cmath>

#include "tensor/ops.h"

namespace flowgnn {

Vec
SgcLayer::message(const Vec &x_src, const float *, std::size_t, NodeId src,
                  NodeId dst, const LayerContext &ctx) const
{
    float d_src = static_cast<float>(ctx.out_deg[src]) + 1.0f;
    float d_dst = static_cast<float>(ctx.in_deg[dst]) + 1.0f;
    return scale(x_src, 1.0f / std::sqrt(d_src * d_dst));
}

Vec
SgcLayer::transform(const Vec &x_self, const Vec &agg, NodeId node,
                    const LayerContext &ctx) const
{
    float d_hat = static_cast<float>(ctx.in_deg[node]) + 1.0f;
    Vec out = agg;
    axpy_inplace(out, 1.0f / d_hat, x_self);
    return out;
}

} // namespace flowgnn
