/**
 * @file
 * Input encoder: a per-node linear map from raw node features to the
 * model's hidden dimension (the AtomEncoder analogue of the OGB
 * reference models). Runs as pipeline stage 0 in the engine, fused
 * with the first conv layer's scatter.
 */
#ifndef FLOWGNN_NN_ENCODER_LAYER_H
#define FLOWGNN_NN_ENCODER_LAYER_H

#include "nn/layer.h"
#include "tensor/linear.h"

namespace flowgnn {

/** Per-node feature encoder; no message passing. */
class EncoderLayer : public Layer
{
  public:
    EncoderLayer(std::size_t in_dim, std::size_t out_dim, Rng &rng);

    const char *name() const override { return "encoder"; }
    std::size_t in_dim() const override { return linear_.in_dim(); }
    std::size_t out_dim() const override { return linear_.out_dim(); }

    Vec transform(const Vec &x_self, const Vec &agg, NodeId node,
                  const LayerContext &ctx) const override;

    std::vector<std::size_t> nt_pass_dims() const override
    {
        return {linear_.in_dim()};
    }

    std::size_t transform_macs() const override { return linear_.macs(); }

    const Linear &linear() const { return linear_; }

  private:
    Linear linear_;
};

} // namespace flowgnn

#endif // FLOWGNN_NN_ENCODER_LAYER_H
