#include "nn/encoder_layer.h"

namespace flowgnn {

EncoderLayer::EncoderLayer(std::size_t in_dim, std::size_t out_dim, Rng &rng)
    : linear_(in_dim, out_dim)
{
    linear_.init_glorot(rng);
}

Vec
EncoderLayer::transform(const Vec &x_self, const Vec &, NodeId,
                        const LayerContext &) const
{
    return linear_.forward(x_self);
}

} // namespace flowgnn
