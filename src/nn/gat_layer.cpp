#include "nn/gat_layer.h"

#include <algorithm>
#include <cmath>

namespace flowgnn {

GatLayer::GatLayer(std::size_t in_dim, std::size_t num_heads,
                   std::size_t head_dim, Activation act, Rng &rng)
    : heads_(num_heads), head_dim_(head_dim),
      proj_(in_dim, num_heads * head_dim), att_src_(num_heads, head_dim),
      att_dst_(num_heads, head_dim), act_(act)
{
    proj_.init_glorot(rng);
    double limit = std::sqrt(6.0 / static_cast<double>(head_dim + 1));
    for (std::size_t h = 0; h < heads_; ++h) {
        for (std::size_t d = 0; d < head_dim_; ++d) {
            att_src_(h, d) = static_cast<float>(rng.uniform(-limit, limit));
            att_dst_(h, d) = static_cast<float>(rng.uniform(-limit, limit));
        }
    }
}

Vec
GatLayer::src_scores(const Vec &h) const
{
    Vec out(heads_, 0.0f);
    for (std::size_t hd = 0; hd < heads_; ++hd) {
        float acc = 0.0f;
        for (std::size_t d = 0; d < head_dim_; ++d)
            acc += att_src_(hd, d) * h[hd * head_dim_ + d];
        out[hd] = acc;
    }
    return out;
}

Vec
GatLayer::dst_scores(const Vec &h) const
{
    Vec out(heads_, 0.0f);
    for (std::size_t hd = 0; hd < heads_; ++hd) {
        float acc = 0.0f;
        for (std::size_t d = 0; d < head_dim_; ++d)
            acc += att_dst_(hd, d) * h[hd * head_dim_ + d];
        out[hd] = acc;
    }
    return out;
}

Vec
GatLayer::edge_scores(const Vec &h_src, const Vec &h_dst) const
{
    Vec s = src_scores(h_src);
    Vec d = dst_scores(h_dst);
    Vec out(heads_);
    for (std::size_t h = 0; h < heads_; ++h)
        out[h] = activate(s[h] + d[h], Activation::kLeakyRelu);
    return out;
}

Vec
GatLayer::transform(const Vec &x_self, const Vec &, NodeId,
                    const LayerContext &) const
{
    Vec h = project(x_self);
    return gat_combine(*this, h, {});
}

Vec
gat_combine(const GatLayer &layer, const Vec &h_dst,
            const std::vector<const Vec *> &h_srcs)
{
    const std::size_t heads = layer.num_heads();
    const std::size_t hd = layer.head_dim();

    // Pass 1: per-head running max over {self} u in-neighbors.
    Vec self_score = layer.edge_scores(h_dst, h_dst);
    Vec max_score = self_score;
    std::vector<Vec> scores;
    scores.reserve(h_srcs.size());
    for (const Vec *h_src : h_srcs) {
        scores.push_back(layer.edge_scores(*h_src, h_dst));
        for (std::size_t h = 0; h < heads; ++h)
            max_score[h] = std::max(max_score[h], scores.back()[h]);
    }

    // Pass 2: exp-weighted sum in arrival order, self term first.
    Vec acc(heads * hd, 0.0f);
    Vec denom(heads, 0.0f);
    for (std::size_t h = 0; h < heads; ++h) {
        float w = std::exp(self_score[h] - max_score[h]);
        denom[h] = w;
        for (std::size_t d = 0; d < hd; ++d)
            acc[h * hd + d] = w * h_dst[h * hd + d];
    }
    for (std::size_t j = 0; j < h_srcs.size(); ++j) {
        for (std::size_t h = 0; h < heads; ++h) {
            float w = std::exp(scores[j][h] - max_score[h]);
            denom[h] += w;
            for (std::size_t d = 0; d < hd; ++d)
                acc[h * hd + d] += w * (*h_srcs[j])[h * hd + d];
        }
    }

    Vec out(heads * hd);
    for (std::size_t h = 0; h < heads; ++h)
        for (std::size_t d = 0; d < hd; ++d)
            out[h * hd + d] = acc[h * hd + d] / denom[h];
    apply_activation(out, layer.activation());
    return out;
}

} // namespace flowgnn
