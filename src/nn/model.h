/**
 * @file
 * GNN model: encoder + stack of message-passing layers + global mean
 * pooling + prediction head, with the reference (software) executor
 * used to cross-check the dataflow engine (the paper's PyTorch
 * functional-equivalence check).
 */
#ifndef FLOWGNN_NN_MODEL_H
#define FLOWGNN_NN_MODEL_H

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/mlp.h"

namespace flowgnn {

/** The six paper models plus the Table VIII GCN configuration. */
enum class ModelKind {
    kGcn,   ///< 5 layers, dim 100 (SpMM-expressible family)
    kGin,   ///< 5 layers, dim 100, edge embeddings
    kGinVn, ///< GIN + virtual node
    kGat,   ///< 5 layers, 4 heads x 16
    kPna,   ///< 4 layers, dim 80, multi-aggregation
    kDgn,   ///< 4 layers, dim 100, directional aggregation
    kGcn16, ///< 2 layers, dim 16 (I-GCN/AWB-GCN comparison config)
    kSage,  ///< GraphSAGE: runs on the GIN-family kernels (Sec. V)
    kSgc,   ///< simplified GCN: K propagation hops + linear head
};

/** All paper-evaluated kinds (excludes the Table VIII config). */
inline constexpr ModelKind kPaperModels[] = {
    ModelKind::kGin, ModelKind::kGinVn, ModelKind::kGcn,
    ModelKind::kGat, ModelKind::kPna,   ModelKind::kDgn,
};

/** Human-readable model name. */
const char *model_name(ModelKind kind);

/** Graph-level readout over the final node embeddings. */
enum class PoolingKind {
    kMean, ///< global average pooling (all paper models)
    kSum,
    kMax,
};

/** Human-readable pooling name. */
const char *pooling_name(PoolingKind kind);

/**
 * A complete graph-level GNN.
 *
 * Construction via make_model() yields the exact paper configurations
 * (Sec. VI-A). The class is also directly constructible from custom
 * components — the programming model's "NewGNN in a few lines" path
 * (paper Sec. V); see examples/custom_gnn.cpp.
 */
class Model
{
  public:
    /** Assembles a model from components (custom-GNN path). */
    Model(std::string name, std::vector<std::unique_ptr<Layer>> stages,
          Mlp head, bool uses_virtual_node = false,
          bool needs_dgn_field = false);

    const std::string &name() const { return name_; }
    bool uses_virtual_node() const { return uses_virtual_node_; }
    bool needs_dgn_field() const { return needs_dgn_field_; }

    /** Pipeline stages: encoder first, then each conv layer. */
    std::size_t num_stages() const { return stages_.size(); }
    const Layer &stage(std::size_t i) const { return *stages_.at(i); }
    const Mlp &head() const { return head_; }

    /** Final node embedding dimension (pooling input). */
    std::size_t embedding_dim() const;

    /** PNA scaler parameters shared by all layers. */
    const PnaParams &pna_params() const { return pna_; }
    void set_pna_params(const PnaParams &p) { pna_ = p; }

    /**
     * Model-specific sample preparation: appends the virtual node if
     * the model uses one and computes the DGN field if required but
     * missing. Deterministic. The engine and the reference both run on
     * the prepared sample.
     */
    GraphSample prepare(const GraphSample &sample) const;

    /**
     * Reference executor: runs all stages in software (src-major
     * scatter order) and returns the final node embeddings
     * [num_nodes x embedding_dim]. Expects a prepared sample.
     */
    Matrix reference_embeddings(const GraphSample &prepared) const;

    /** Readout over embedding rows [0, pool_nodes) with pooling(). */
    Vec global_pool(const Matrix &embeddings, NodeId pool_nodes) const;

    /** Mean of embedding rows [0, pool_nodes). */
    Vec global_mean_pool(const Matrix &embeddings, NodeId pool_nodes) const;

    /** Graph-level readout kind (mean for all paper configs). */
    PoolingKind pooling() const { return pooling_; }
    void set_pooling(PoolingKind kind) { pooling_ = kind; }

    /** End-to-end reference prediction (prepares internally). */
    float predict(const GraphSample &sample) const;

    /** Total multiply-accumulates for one sample (cost models). */
    std::size_t macs(const GraphSample &prepared) const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Layer>> stages_;
    Mlp head_;
    bool uses_virtual_node_ = false;
    bool needs_dgn_field_ = false;
    PnaParams pna_;
    PoolingKind pooling_ = PoolingKind::kMean;
};

/**
 * Builds one of the paper's model configurations.
 *
 * @param kind      which model
 * @param node_dim  raw node feature count of the target dataset
 * @param edge_dim  raw edge feature count (0 if the dataset has none)
 * @param seed      weight initialization seed
 */
Model make_model(ModelKind kind, std::size_t node_dim, std::size_t edge_dim,
                 std::uint64_t seed = 7);

} // namespace flowgnn

#endif // FLOWGNN_NN_MODEL_H
