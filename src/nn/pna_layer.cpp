#include "nn/pna_layer.h"

#include "tensor/ops.h"

namespace flowgnn {

PnaLayer::PnaLayer(std::size_t dim, std::size_t edge_dim, Activation act,
                   Rng &rng)
    : dim_(dim), edge_dim_(edge_dim), mix_(13 * dim, dim), act_(act)
{
    if (edge_dim_ > 0) {
        edge_enc_ = Linear(edge_dim_, dim);
        edge_enc_.init_glorot(rng);
    }
    mix_.init_glorot(rng);
}

Vec
PnaLayer::message(const Vec &x_src, const float *edge_feat,
                  std::size_t edge_dim, NodeId, NodeId,
                  const LayerContext &) const
{
    Vec msg = x_src;
    if (edge_dim_ > 0 && edge_feat != nullptr && edge_dim == edge_dim_) {
        Vec e(edge_feat, edge_feat + edge_dim);
        add_inplace(msg, edge_enc_.forward(e));
    }
    apply_activation(msg, Activation::kRelu);
    return msg;
}

Vec
PnaLayer::transform(const Vec &x_self, const Vec &agg, NodeId,
                    const LayerContext &) const
{
    Vec combined;
    combined.reserve(13 * dim_);
    combined.insert(combined.end(), x_self.begin(), x_self.end());
    combined.insert(combined.end(), agg.begin(), agg.end());
    Vec out = mix_.forward(combined);
    apply_activation(out, act_);
    return out;
}

} // namespace flowgnn
