#include "nn/dgn_layer.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace flowgnn {

DgnLayer::DgnLayer(std::size_t dim, std::size_t edge_dim, Activation act,
                   Rng &rng)
    : dim_(dim), edge_dim_(edge_dim), mix_(3 * dim, dim), act_(act)
{
    if (edge_dim_ > 0) {
        edge_enc_ = Linear(edge_dim_, dim);
        edge_enc_.init_glorot(rng);
    }
    mix_.init_glorot(rng);
}

Vec
DgnLayer::message(const Vec &x_src, const float *edge_feat,
                  std::size_t edge_dim, NodeId src, NodeId dst,
                  const LayerContext &ctx) const
{
    if (ctx.dgn_field == nullptr)
        throw std::invalid_argument("DgnLayer: sample has no dgn_field");

    Vec m = x_src;
    if (edge_dim_ > 0 && edge_feat != nullptr && edge_dim == edge_dim_) {
        Vec e(edge_feat, edge_feat + edge_dim);
        add_inplace(m, edge_enc_.forward(e));
    }

    // Directional weight from the vector field, normalized at the
    // destination (anisotropic: depends on both endpoints).
    float w = (ctx.dgn_field[src] - ctx.dgn_field[dst]) /
              ctx.dgn_norm[dst];

    Vec msg;
    msg.reserve(2 * dim_);
    msg.insert(msg.end(), m.begin(), m.end());
    for (float v : m)
        msg.push_back(w * v);
    return msg;
}

Vec
DgnLayer::transform(const Vec &x_self, const Vec &agg, NodeId,
                    const LayerContext &) const
{
    Vec combined;
    combined.reserve(3 * dim_);
    combined.insert(combined.end(), x_self.begin(), x_self.end());
    combined.insert(combined.end(), agg.begin(), agg.end());
    Vec out = mix_.forward(combined);
    apply_activation(out, act_);
    return out;
}

} // namespace flowgnn
