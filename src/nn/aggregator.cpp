#include "nn/aggregator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flowgnn {

namespace {

constexpr float kStdEps = 1e-5f;
constexpr float kNegInf = -std::numeric_limits<float>::infinity();
constexpr float kPosInf = std::numeric_limits<float>::infinity();

} // namespace

const char *
aggregator_name(AggregatorKind kind)
{
    switch (kind) {
      case AggregatorKind::kSum: return "sum";
      case AggregatorKind::kMean: return "mean";
      case AggregatorKind::kMax: return "max";
      case AggregatorKind::kMin: return "min";
      case AggregatorKind::kPna: return "pna";
      case AggregatorKind::kDgn: return "dgn";
    }
    return "unknown";
}

Aggregator::Aggregator(AggregatorKind kind, std::size_t msg_dim)
    : kind_(kind), msg_dim_(msg_dim)
{
    if (kind == AggregatorKind::kDgn && msg_dim % 2 != 0)
        throw std::invalid_argument("Aggregator: DGN msg_dim must be even");
}

std::size_t
Aggregator::state_dim() const
{
    switch (kind_) {
      case AggregatorKind::kSum:
        return msg_dim_;
      case AggregatorKind::kMean:
      case AggregatorKind::kMax:
      case AggregatorKind::kMin:
      case AggregatorKind::kDgn:
        return 1 + msg_dim_; // count + payload
      case AggregatorKind::kPna:
        return 1 + 4 * msg_dim_; // count + sum + sumsq + max + min
    }
    return msg_dim_;
}

std::size_t
Aggregator::out_dim() const
{
    switch (kind_) {
      case AggregatorKind::kPna:
        // 4 aggregators (mean, std, max, min) x 3 scalers.
        return 12 * msg_dim_;
      default:
        return msg_dim_;
    }
}

void
Aggregator::init(float *state) const
{
    switch (kind_) {
      case AggregatorKind::kSum:
        std::fill(state, state + msg_dim_, 0.0f);
        break;
      case AggregatorKind::kMean:
      case AggregatorKind::kDgn:
        std::fill(state, state + 1 + msg_dim_, 0.0f);
        break;
      case AggregatorKind::kMax:
        state[0] = 0.0f;
        std::fill(state + 1, state + 1 + msg_dim_, kNegInf);
        break;
      case AggregatorKind::kMin:
        state[0] = 0.0f;
        std::fill(state + 1, state + 1 + msg_dim_, kPosInf);
        break;
      case AggregatorKind::kPna: {
        state[0] = 0.0f;
        float *sum = state + 1;
        float *sumsq = sum + msg_dim_;
        float *mx = sumsq + msg_dim_;
        float *mn = mx + msg_dim_;
        std::fill(sum, sum + msg_dim_, 0.0f);
        std::fill(sumsq, sumsq + msg_dim_, 0.0f);
        std::fill(mx, mx + msg_dim_, kNegInf);
        std::fill(mn, mn + msg_dim_, kPosInf);
        break;
      }
    }
}

void
Aggregator::accumulate(float *state, const float *msg) const
{
    switch (kind_) {
      case AggregatorKind::kSum:
        for (std::size_t i = 0; i < msg_dim_; ++i)
            state[i] += msg[i];
        break;
      case AggregatorKind::kMean:
      case AggregatorKind::kDgn:
        state[0] += 1.0f;
        for (std::size_t i = 0; i < msg_dim_; ++i)
            state[1 + i] += msg[i];
        break;
      case AggregatorKind::kMax:
        state[0] += 1.0f;
        for (std::size_t i = 0; i < msg_dim_; ++i)
            state[1 + i] = std::max(state[1 + i], msg[i]);
        break;
      case AggregatorKind::kMin:
        state[0] += 1.0f;
        for (std::size_t i = 0; i < msg_dim_; ++i)
            state[1 + i] = std::min(state[1 + i], msg[i]);
        break;
      case AggregatorKind::kPna: {
        state[0] += 1.0f;
        float *sum = state + 1;
        float *sumsq = sum + msg_dim_;
        float *mx = sumsq + msg_dim_;
        float *mn = mx + msg_dim_;
        for (std::size_t i = 0; i < msg_dim_; ++i) {
            sum[i] += msg[i];
            sumsq[i] += msg[i] * msg[i];
            mx[i] = std::max(mx[i], msg[i]);
            mn[i] = std::min(mn[i], msg[i]);
        }
        break;
      }
    }
}

Vec
Aggregator::finalize(const float *state, std::uint32_t degree,
                     const PnaParams &params) const
{
    switch (kind_) {
      case AggregatorKind::kSum:
        return Vec(state, state + msg_dim_);
      case AggregatorKind::kMean: {
        float count = std::max(state[0], 1.0f);
        Vec out(msg_dim_);
        for (std::size_t i = 0; i < msg_dim_; ++i)
            out[i] = state[1 + i] / count;
        return out;
      }
      case AggregatorKind::kMax:
      case AggregatorKind::kMin: {
        Vec out(msg_dim_, 0.0f);
        if (state[0] > 0.0f)
            for (std::size_t i = 0; i < msg_dim_; ++i)
                out[i] = state[1 + i];
        return out;
      }
      case AggregatorKind::kDgn: {
        // First half: mean aggregator. Second half: |directional sum|.
        float count = std::max(state[0], 1.0f);
        std::size_t half = msg_dim_ / 2;
        Vec out(msg_dim_);
        for (std::size_t i = 0; i < half; ++i)
            out[i] = state[1 + i] / count;
        for (std::size_t i = half; i < msg_dim_; ++i)
            out[i] = std::abs(state[1 + i]);
        return out;
      }
      case AggregatorKind::kPna: {
        float count = state[0];
        Vec mean(msg_dim_, 0.0f), stdv(msg_dim_, 0.0f);
        Vec mx(msg_dim_, 0.0f), mn(msg_dim_, 0.0f);
        if (count > 0.0f) {
            const float *sum = state + 1;
            const float *sumsq = sum + msg_dim_;
            const float *smax = sumsq + msg_dim_;
            const float *smin = smax + msg_dim_;
            for (std::size_t i = 0; i < msg_dim_; ++i) {
                mean[i] = sum[i] / count;
                float var = sumsq[i] / count - mean[i] * mean[i];
                stdv[i] = std::sqrt(std::max(var, 0.0f) + kStdEps);
                mx[i] = smax[i];
                mn[i] = smin[i];
            }
        }
        // Scalers: identity, amplification, attenuation (paper Eq. 3).
        float logd = std::log(static_cast<float>(degree) + 1.0f);
        float amp = logd / params.delta;
        float att = logd > 0.0f ? params.delta / logd : 1.0f;

        Vec out;
        out.reserve(out_dim());
        const float scalers[3] = {1.0f, amp, att};
        const Vec *aggs[4] = {&mean, &stdv, &mx, &mn};
        for (float s : scalers)
            for (const Vec *a : aggs)
                for (std::size_t i = 0; i < msg_dim_; ++i)
                    out.push_back(s * (*a)[i]);
        return out;
      }
    }
    return Vec(msg_dim_, 0.0f);
}

} // namespace flowgnn
