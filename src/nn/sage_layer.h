/**
 * @file
 * GraphSAGE layer (Hamilton et al.) — the paper groups GraphSage with
 * the GIN family ("GraphSage falls into this category", Table II
 * discussion) and Sec. V notes that older GNNs like it run on the
 * existing FlowGNN kernels. Mean-aggregation variant:
 *
 *   x_i' = act( W_self x_i + W_nbr * mean_j x_j )
 */
#ifndef FLOWGNN_NN_SAGE_LAYER_H
#define FLOWGNN_NN_SAGE_LAYER_H

#include "nn/layer.h"
#include "tensor/activations.h"
#include "tensor/linear.h"

namespace flowgnn {

/** GraphSAGE convolution with mean aggregation. */
class SageLayer : public Layer
{
  public:
    SageLayer(std::size_t in_dim, std::size_t out_dim, Activation act,
              Rng &rng);

    const char *name() const override { return "sage"; }
    std::size_t in_dim() const override { return self_.in_dim(); }
    std::size_t out_dim() const override { return self_.out_dim(); }
    std::size_t msg_dim() const override { return self_.in_dim(); }
    AggregatorKind aggregator_kind() const override
    {
        return AggregatorKind::kMean;
    }

    Vec message(const Vec &x_src, const float *edge_feat,
                std::size_t edge_dim, NodeId src, NodeId dst,
                const LayerContext &ctx) const override;

    Vec transform(const Vec &x_self, const Vec &agg, NodeId node,
                  const LayerContext &ctx) const override;

    std::vector<std::size_t> nt_pass_dims() const override
    {
        // Two input-stationary passes: W_self over x, W_nbr over mean.
        return {self_.in_dim(), nbr_.in_dim()};
    }

    std::size_t transform_macs() const override
    {
        return self_.macs() + nbr_.macs();
    }

  private:
    Linear self_;
    Linear nbr_;
    Activation act_;
};

} // namespace flowgnn

#endif // FLOWGNN_NN_SAGE_LAYER_H
