/**
 * @file
 * Permutation-invariant message aggregation.
 *
 * Every message-passing layer declares an AggregatorKind; both the
 * reference executor and the dataflow engine accumulate messages
 * through this module so their arithmetic is identical. Aggregation
 * state for each destination node is a flat float record whose layout
 * depends on the kind — this mirrors the FlowGNN message buffer, which
 * holds the running aggregate (size O(N), not O(E), because scatter
 * and gather are merged; paper Sec. III-C).
 */
#ifndef FLOWGNN_NN_AGGREGATOR_H
#define FLOWGNN_NN_AGGREGATOR_H

#include <cstdint>

#include "tensor/matrix.h"

namespace flowgnn {

/** Aggregation function A(.) of the message-passing formulation. */
enum class AggregatorKind {
    kSum,  ///< plain sum (GCN, GIN)
    kMean, ///< running mean
    kMax,  ///< element-wise max
    kMin,  ///< element-wise min
    kPna,  ///< PNA: mean/std/max/min x degree scalers
    kDgn,  ///< DGN: mean of first half, |sum| of second half
};

/** Human-readable aggregator name. */
const char *aggregator_name(AggregatorKind kind);

/** Parameters for PNA degree scaling (delta = avg log-degree). */
struct PnaParams {
    float delta = 1.6094379f; ///< log(4 + 1), a typical molecular value
};

/**
 * Stateless policy describing state layout and operations for one
 * aggregator instance (kind + message dimension).
 */
class Aggregator
{
  public:
    Aggregator() = default;
    Aggregator(AggregatorKind kind, std::size_t msg_dim);

    AggregatorKind kind() const { return kind_; }
    std::size_t msg_dim() const { return msg_dim_; }

    /** Floats of per-node state in the message buffer. */
    std::size_t state_dim() const;

    /** Dimension of the finalized aggregate fed to the NT unit. */
    std::size_t out_dim() const;

    /** Resets one node's state to the aggregation identity. */
    void init(float *state) const;

    /** Folds one full message into the state. */
    void accumulate(float *state, const float *msg) const;

    /**
     * Produces the finalized aggregate for the NT unit.
     *
     * @param state   accumulated per-node state
     * @param degree  the destination node's in-degree (PNA scalers)
     * @param params  PNA scaling parameters
     */
    Vec finalize(const float *state, std::uint32_t degree,
                 const PnaParams &params) const;

  private:
    AggregatorKind kind_ = AggregatorKind::kSum;
    std::size_t msg_dim_ = 0;
};

} // namespace flowgnn

#endif // FLOWGNN_NN_AGGREGATOR_H
