/**
 * @file
 * Directional Graph Network layer (paper Sec. IV): aggregates with the
 * mean and the absolute directional derivative along a per-node vector
 * field u (the graph Laplacian's Fiedler vector),
 *
 *   y_i = concat( mean_j m_j ,  | sum_j w_ij * m_j | )
 *   w_ij = (u_j - u_i) / (sum_k |u_k - u_i| + eps)
 *   x_i' = act( W [ x_i || y_i ] )
 *
 * DGN is the paper's representative of anisotropic GNNs with guided
 * aggregation: the per-edge weight w_ij depends on both endpoints, so
 * messages must be materialized per edge.
 */
#ifndef FLOWGNN_NN_DGN_LAYER_H
#define FLOWGNN_NN_DGN_LAYER_H

#include "nn/layer.h"
#include "tensor/activations.h"
#include "tensor/linear.h"

namespace flowgnn {

/** DGN convolution: mean + |directional derivative| aggregation. */
class DgnLayer : public Layer
{
  public:
    DgnLayer(std::size_t dim, std::size_t edge_dim, Activation act,
             Rng &rng);

    const char *name() const override { return "dgn"; }
    std::size_t in_dim() const override { return dim_; }
    std::size_t out_dim() const override { return dim_; }
    /** Message carries [m, w*m]: mean part and directional part. */
    std::size_t msg_dim() const override { return 2 * dim_; }
    AggregatorKind aggregator_kind() const override
    {
        return AggregatorKind::kDgn;
    }
    bool uses_edge_features() const override { return edge_dim_ > 0; }

    Vec message(const Vec &x_src, const float *edge_feat,
                std::size_t edge_dim, NodeId src, NodeId dst,
                const LayerContext &ctx) const override;

    Vec transform(const Vec &x_self, const Vec &agg, NodeId node,
                  const LayerContext &ctx) const override;

    std::vector<std::size_t> nt_pass_dims() const override
    {
        // One pass over [x_self || mean || dir].
        return {3 * dim_};
    }

    std::size_t transform_macs() const override { return mix_.macs(); }

    std::size_t message_macs() const override
    {
        // Edge encoder plus the directional weight multiply.
        return (edge_dim_ > 0 ? edge_dim_ * dim_ : 0) + dim_;
    }

  private:
    std::size_t dim_;
    std::size_t edge_dim_;
    Linear edge_enc_;
    Linear mix_; ///< Linear(3*dim -> dim)
    Activation act_;
};

} // namespace flowgnn

#endif // FLOWGNN_NN_DGN_LAYER_H
