#include "nn/model.h"

#include <stdexcept>

#include "graph/spectral.h"
#include "nn/dgn_layer.h"
#include "nn/encoder_layer.h"
#include "nn/gat_layer.h"
#include "nn/gcn_layer.h"
#include "nn/gin_layer.h"
#include "nn/pna_layer.h"
#include "nn/sage_layer.h"
#include "nn/sgc_layer.h"

namespace flowgnn {

const char *
model_name(ModelKind kind)
{
    switch (kind) {
      case ModelKind::kGcn: return "GCN";
      case ModelKind::kGin: return "GIN";
      case ModelKind::kGinVn: return "GIN+VN";
      case ModelKind::kGat: return "GAT";
      case ModelKind::kPna: return "PNA";
      case ModelKind::kDgn: return "DGN";
      case ModelKind::kGcn16: return "GCN-16";
      case ModelKind::kSage: return "GraphSAGE";
      case ModelKind::kSgc: return "SGC";
    }
    return "unknown";
}

const char *
pooling_name(PoolingKind kind)
{
    switch (kind) {
      case PoolingKind::kMean: return "mean";
      case PoolingKind::kSum: return "sum";
      case PoolingKind::kMax: return "max";
    }
    return "unknown";
}

Model::Model(std::string name, std::vector<std::unique_ptr<Layer>> stages,
             Mlp head, bool uses_virtual_node, bool needs_dgn_field)
    : name_(std::move(name)), stages_(std::move(stages)),
      head_(std::move(head)), uses_virtual_node_(uses_virtual_node),
      needs_dgn_field_(needs_dgn_field)
{
    if (stages_.empty())
        throw std::invalid_argument("Model: needs at least one stage");
    for (std::size_t i = 0; i + 1 < stages_.size(); ++i) {
        if (stages_[i]->out_dim() != stages_[i + 1]->in_dim())
            throw std::invalid_argument(
                "Model: stage dimension mismatch at stage " +
                std::to_string(i));
    }
    if (head_.in_dim() != stages_.back()->out_dim())
        throw std::invalid_argument("Model: head dimension mismatch");
}

std::size_t
Model::embedding_dim() const
{
    return stages_.back()->out_dim();
}

GraphSample
Model::prepare(const GraphSample &sample) const
{
    GraphSample prepared =
        uses_virtual_node_ ? with_virtual_node(sample) : sample;
    if (needs_dgn_field_ && prepared.dgn_field.empty()) {
        Rng rng(0xD6F1E1D); // fixed seed: preparation is deterministic
        prepared.dgn_field = fiedler_vector(prepared.graph, rng);
    }
    return prepared;
}

Matrix
Model::reference_embeddings(const GraphSample &prepared) const
{
    if (!prepared.consistent())
        throw std::invalid_argument("Model: inconsistent sample");
    if (stages_.front()->in_dim() != prepared.node_dim())
        throw std::invalid_argument("Model: node feature dim mismatch");

    const NodeId n = prepared.num_nodes();
    LayerContext ctx = make_layer_context(prepared, pna_);
    CsrGraph csr(prepared.graph);

    std::vector<Vec> x(n);
    for (NodeId i = 0; i < n; ++i)
        x[i] = prepared.node_features.row_vec(i);

    const float *efeat_base = prepared.edge_features.data();
    const std::size_t edge_dim = prepared.edge_dim();

    for (const auto &stage : stages_) {
        std::vector<Vec> next(n);
        if (stage->msg_dim() == 0) {
            // Encoder-style stage: pure per-node transform.
            Vec empty;
            for (NodeId i = 0; i < n; ++i)
                next[i] = stage->transform(x[i], empty, i, ctx);
        } else if (stage->dataflow() == DataflowKind::kNtToMp) {
            // Merged scatter/gather in src-major order — the same
            // order a single-NT-unit engine produces.
            Aggregator agg = stage->aggregator();
            const std::size_t sd = agg.state_dim();
            std::vector<float> states(static_cast<std::size_t>(n) * sd);
            for (NodeId i = 0; i < n; ++i)
                agg.init(states.data() + i * sd);
            for (NodeId src = 0; src < n; ++src) {
                for (std::size_t s = csr.row_begin(src);
                     s < csr.row_end(src); ++s) {
                    NodeId dst = csr.dst(s);
                    EdgeId eid = csr.edge_id(s);
                    const float *ef = edge_dim
                        ? efeat_base + std::size_t(eid) * edge_dim
                        : nullptr;
                    Vec msg = stage->message(x[src], ef, edge_dim, src,
                                             dst, ctx);
                    agg.accumulate(states.data() + dst * sd, msg.data());
                }
            }
            for (NodeId i = 0; i < n; ++i) {
                Vec fin = agg.finalize(states.data() + i * sd,
                                       ctx.in_deg[i], ctx.pna);
                next[i] = stage->transform(x[i], fin, i, ctx);
            }
        } else {
            // Gather-first attention path (GAT).
            const auto *gat = dynamic_cast<const GatLayer *>(stage.get());
            if (gat == nullptr)
                throw std::logic_error(
                    "Model: MP-to-NT stage is not a GAT layer");
            std::vector<Vec> h(n);
            for (NodeId i = 0; i < n; ++i)
                h[i] = gat->project(x[i]);
            CscGraph csc(prepared.graph);
            for (NodeId i = 0; i < n; ++i) {
                std::vector<const Vec *> nbrs;
                nbrs.reserve(csc.in_degree(i));
                for (std::size_t s = csc.col_begin(i); s < csc.col_end(i);
                     ++s)
                    nbrs.push_back(&h[csc.src(s)]);
                next[i] = gat_combine(*gat, h[i], nbrs);
            }
        }
        x = std::move(next);
    }

    Matrix out(n, embedding_dim());
    for (NodeId i = 0; i < n; ++i)
        out.set_row(i, x[i]);
    return out;
}

Vec
Model::global_pool(const Matrix &embeddings, NodeId pool_nodes) const
{
    if (pool_nodes == 0 || pool_nodes > embeddings.rows())
        throw std::invalid_argument("global_pool: bad pool_nodes");
    Vec pooled(embeddings.cols(), 0.0f);
    switch (pooling_) {
      case PoolingKind::kMean:
      case PoolingKind::kSum:
        for (NodeId i = 0; i < pool_nodes; ++i)
            for (std::size_t c = 0; c < embeddings.cols(); ++c)
                pooled[c] += embeddings(i, c);
        if (pooling_ == PoolingKind::kMean) {
            float inv = 1.0f / static_cast<float>(pool_nodes);
            for (auto &v : pooled)
                v *= inv;
        }
        break;
      case PoolingKind::kMax:
        for (std::size_t c = 0; c < embeddings.cols(); ++c) {
            float m = embeddings(0, c);
            for (NodeId i = 1; i < pool_nodes; ++i)
                m = std::max(m, embeddings(i, c));
            pooled[c] = m;
        }
        break;
    }
    return pooled;
}

Vec
Model::global_mean_pool(const Matrix &embeddings, NodeId pool_nodes) const
{
    if (pool_nodes == 0 || pool_nodes > embeddings.rows())
        throw std::invalid_argument("global_mean_pool: bad pool_nodes");
    Vec pooled(embeddings.cols(), 0.0f);
    for (NodeId i = 0; i < pool_nodes; ++i)
        for (std::size_t c = 0; c < embeddings.cols(); ++c)
            pooled[c] += embeddings(i, c);
    float inv = 1.0f / static_cast<float>(pool_nodes);
    for (auto &v : pooled)
        v *= inv;
    return pooled;
}

float
Model::predict(const GraphSample &sample) const
{
    GraphSample prepared = prepare(sample);
    Matrix emb = reference_embeddings(prepared);
    Vec pooled = global_pool(emb, prepared.pool_nodes());
    return head_.forward(pooled)[0];
}

std::size_t
Model::macs(const GraphSample &prepared) const
{
    std::size_t total = 0;
    const std::size_t n = prepared.num_nodes();
    const std::size_t e = prepared.num_edges();
    for (const auto &stage : stages_) {
        total += n * stage->transform_macs();
        if (stage->msg_dim() > 0)
            total += e * stage->message_macs() * stage->mp_rounds();
    }
    total += head_.macs();
    return total;
}

namespace {

/** Builds the encoder + L identical conv layers + head. */
template <typename MakeConv>
std::vector<std::unique_ptr<Layer>>
build_stages(std::size_t node_dim, std::size_t hidden, std::size_t layers,
             Rng &rng, MakeConv make_conv)
{
    std::vector<std::unique_ptr<Layer>> stages;
    stages.push_back(
        std::make_unique<EncoderLayer>(node_dim, hidden, rng));
    for (std::size_t l = 0; l < layers; ++l) {
        bool last = (l + 1 == layers);
        stages.push_back(make_conv(last, rng));
    }
    return stages;
}

} // namespace

Model
make_model(ModelKind kind, std::size_t node_dim, std::size_t edge_dim,
           std::uint64_t seed)
{
    Rng rng(seed);
    switch (kind) {
      case ModelKind::kGcn: {
        auto stages = build_stages(node_dim, 100, 5, rng,
            [](bool last, Rng &r) -> std::unique_ptr<Layer> {
                return std::make_unique<GcnLayer>(
                    100, 100,
                    last ? Activation::kIdentity : Activation::kRelu, r);
            });
        Mlp head({100, 1});
        head.init_glorot(rng);
        return Model("GCN", std::move(stages), std::move(head));
      }
      case ModelKind::kGin:
      case ModelKind::kGinVn: {
        auto stages = build_stages(node_dim, 100, 5, rng,
            [edge_dim](bool last, Rng &r) -> std::unique_ptr<Layer> {
                return std::make_unique<GinLayer>(
                    100, edge_dim,
                    last ? Activation::kIdentity : Activation::kRelu, r);
            });
        Mlp head({100, 1});
        head.init_glorot(rng);
        bool vn = (kind == ModelKind::kGinVn);
        return Model(vn ? "GIN+VN" : "GIN", std::move(stages),
                     std::move(head), vn);
      }
      case ModelKind::kGat: {
        auto stages = build_stages(node_dim, 64, 5, rng,
            [](bool last, Rng &r) -> std::unique_ptr<Layer> {
                return std::make_unique<GatLayer>(
                    64, 4, 16,
                    last ? Activation::kIdentity : Activation::kElu, r);
            });
        Mlp head({64, 1});
        head.init_glorot(rng);
        return Model("GAT", std::move(stages), std::move(head));
      }
      case ModelKind::kPna: {
        auto stages = build_stages(node_dim, 80, 4, rng,
            [edge_dim](bool last, Rng &r) -> std::unique_ptr<Layer> {
                return std::make_unique<PnaLayer>(
                    80, edge_dim,
                    last ? Activation::kIdentity : Activation::kRelu, r);
            });
        Mlp head({80, 40, 20, 1}, Activation::kRelu);
        head.init_glorot(rng);
        return Model("PNA", std::move(stages), std::move(head));
      }
      case ModelKind::kDgn: {
        auto stages = build_stages(node_dim, 100, 4, rng,
            [edge_dim](bool last, Rng &r) -> std::unique_ptr<Layer> {
                return std::make_unique<DgnLayer>(
                    100, edge_dim,
                    last ? Activation::kIdentity : Activation::kRelu, r);
            });
        Mlp head({100, 50, 25, 1}, Activation::kRelu);
        head.init_glorot(rng);
        return Model("DGN", std::move(stages), std::move(head),
                     /*uses_virtual_node=*/false, /*needs_dgn_field=*/true);
      }
      case ModelKind::kGcn16: {
        auto stages = build_stages(node_dim, 16, 2, rng,
            [](bool last, Rng &r) -> std::unique_ptr<Layer> {
                return std::make_unique<GcnLayer>(
                    16, 16,
                    last ? Activation::kIdentity : Activation::kRelu, r);
            });
        Mlp head({16, 1});
        head.init_glorot(rng);
        return Model("GCN-16", std::move(stages), std::move(head));
      }
      case ModelKind::kSage: {
        auto stages = build_stages(node_dim, 100, 5, rng,
            [](bool last, Rng &r) -> std::unique_ptr<Layer> {
                return std::make_unique<SageLayer>(
                    100, 100,
                    last ? Activation::kIdentity : Activation::kRelu, r);
            });
        Mlp head({100, 1});
        head.init_glorot(rng);
        return Model("GraphSAGE", std::move(stages), std::move(head));
      }
      case ModelKind::kSgc: {
        // K=2 propagation hops, single linear classifier at the head.
        std::vector<std::unique_ptr<Layer>> stages;
        stages.push_back(
            std::make_unique<EncoderLayer>(node_dim, 100, rng));
        for (int hop = 0; hop < 2; ++hop)
            stages.push_back(std::make_unique<SgcLayer>(100));
        Mlp head({100, 1});
        head.init_glorot(rng);
        return Model("SGC", std::move(stages), std::move(head));
      }
    }
    throw std::invalid_argument("make_model: unknown kind");
}

} // namespace flowgnn
