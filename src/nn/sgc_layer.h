/**
 * @file
 * Simplified Graph Convolution (Wu et al.) — the paper's Table II
 * places SGC in the GCN/SpMM family ("simplified GCN also falls into
 * this category"). One SGC propagation step is a GCN hop without the
 * per-layer nonlinearity and without per-hop weights:
 *
 *   x_i' = x_i / d̂_i + sum_j x_j / sqrt(d̂_i d̂_j)
 *
 * A K-layer SGC model stacks K of these propagation-only layers and
 * applies a single linear classifier at the end (the model head).
 */
#ifndef FLOWGNN_NN_SGC_LAYER_H
#define FLOWGNN_NN_SGC_LAYER_H

#include "nn/layer.h"

namespace flowgnn {

/** One weight-free SGC propagation hop. */
class SgcLayer : public Layer
{
  public:
    explicit SgcLayer(std::size_t dim) : dim_(dim) {}

    const char *name() const override { return "sgc"; }
    std::size_t in_dim() const override { return dim_; }
    std::size_t out_dim() const override { return dim_; }
    std::size_t msg_dim() const override { return dim_; }

    Vec message(const Vec &x_src, const float *edge_feat,
                std::size_t edge_dim, NodeId src, NodeId dst,
                const LayerContext &ctx) const override;

    Vec transform(const Vec &x_self, const Vec &agg, NodeId node,
                  const LayerContext &ctx) const override;

    std::vector<std::size_t> nt_pass_dims() const override
    {
        // Element-wise combine only: a single streaming pass.
        return {dim_};
    }

    std::size_t transform_macs() const override { return dim_; }
    std::size_t message_macs() const override { return dim_; }

  private:
    std::size_t dim_;
};

} // namespace flowgnn

#endif // FLOWGNN_NN_SGC_LAYER_H
