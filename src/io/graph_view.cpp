#include "io/graph_view.h"

#include <cerrno>
#include <cstring>
#include <limits>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/parallel.h"
#include "obs/trace_session.h"

namespace flowgnn {
namespace io {

MappedFile::MappedFile(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        fgnb_fail(path, "cannot open for reading");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fgnb_fail(path, "stat failed");
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
    if (size_ > 0) {
        void *addr = ::mmap(nullptr, static_cast<std::size_t>(size_),
                            PROT_READ, MAP_PRIVATE, fd, 0);
        if (addr == MAP_FAILED) {
            ::close(fd);
            // errno_message, not std::strerror: this constructor runs
            // on parallel loader threads (concurrency-mt-unsafe).
            fgnb_fail(path,
                      "mmap failed: " + errno_message(errno));
        }
        data_ = static_cast<unsigned char *>(addr);
    }
    ::close(fd);
}

MappedFile::~MappedFile()
{
    if (data_)
        ::munmap(data_, static_cast<std::size_t>(size_));
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(other.data_), size_(other.size_)
{
    other.data_ = nullptr;
    other.size_ = 0;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        if (data_)
            ::munmap(data_, static_cast<std::size_t>(size_));
        data_ = other.data_;
        size_ = other.size_;
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

void
MappedFile::drop_pages() const
{
    if (data_)
        ::madvise(data_, static_cast<std::size_t>(size_),
                  MADV_DONTNEED);
}

GraphView::GraphView(const std::string &path, GraphViewOptions opts)
    : path_(path), map_(path)
{
    obs::Span open_span(obs::Track::kIo, "open: mmap + header");
    if (map_.size() < sizeof(std::uint32_t) ||
        std::memcmp(map_.data(), &kGraphFileMagic,
                    sizeof(std::uint32_t)) != 0)
        fgnb_fail(path, "bad magic (not an FGNB graph file)");
    if (map_.size() < sizeof(FgnbHeader))
        fgnb_fail(path, "truncated header");
    std::memcpy(&h_, map_.data(), sizeof h_);
    fgnb_validate_header(h_, map_.size(), path);

    const unsigned char *p = map_.data() + sizeof h_;
    const std::size_t e = num_edges();
    const std::size_t n = num_nodes();
    src_ = reinterpret_cast<const std::uint32_t *>(p);
    p += e * sizeof(std::uint32_t);
    dst_ = reinterpret_cast<const std::uint32_t *>(p);
    p += e * sizeof(std::uint32_t);
    if (h_.flags & kFlagNodeFeatures) {
        node_features_ = reinterpret_cast<const float *>(p);
        p += n * node_dim() * sizeof(float);
    }
    if (h_.flags & kFlagEdgeFeatures) {
        edge_features_ = reinterpret_cast<const float *>(p);
        p += e * edge_dim() * sizeof(float);
    }
    if (h_.flags & kFlagDgnField) {
        dgn_field_ = reinterpret_cast<const float *>(p);
        p += n * sizeof(float);
    }
    if (h_.flags & kFlagTrueInDeg) {
        true_in_deg_ = reinterpret_cast<const std::uint32_t *>(p);
        p += n * sizeof(std::uint32_t);
    }
    if (h_.flags & kFlagTrueOutDeg) {
        true_out_deg_ = reinterpret_cast<const std::uint32_t *>(p);
        p += n * sizeof(std::uint32_t);
    }

    open_span.finish();

    // Endpoint validation before anything downstream can index with a
    // hostile id. Parallel scan; the *lowest* offending edge index is
    // reported so the diagnostic matches the serial loader's exactly.
    obs::Span validate_span(obs::Track::kIo, "validate endpoints");
    const std::uint64_t nn = h_.num_nodes;
    const unsigned T = parallel_range_count(e, opts.threads);
    std::vector<std::size_t> first_bad(
        T, std::numeric_limits<std::size_t>::max());
    parallel_ranges(e, opts.threads,
                    [&](std::size_t b, std::size_t end, unsigned tid) {
                        for (std::size_t i = b; i < end; ++i)
                            if (src_[i] >= nn || dst_[i] >= nn) {
                                first_bad[tid] = i;
                                return;
                            }
                    });
    for (std::size_t bad : first_bad)
        if (bad != std::numeric_limits<std::size_t>::max())
            fgnb_fail(path,
                      "edge " + std::to_string(bad) + " endpoint (" +
                          std::to_string(src_[bad]) + ", " +
                          std::to_string(dst_[bad]) +
                          ") out of range for " + std::to_string(nn) +
                          " nodes");

    validate_span.finish();

    if (opts.verify_checksum) {
        obs::Span checksum_span(obs::Track::kIo, "payload checksum");
        const unsigned char *payload = map_.data() + sizeof h_;
        const std::uint64_t actual =
            h_.version == kGraphFileVersionChunked
                ? fgnb_chunked_checksum(payload, h_.payload_bytes,
                                        opts.threads)
                : fnv1a64(payload,
                          static_cast<std::size_t>(h_.payload_bytes));
        if (actual != h_.payload_checksum)
            fgnb_fail(path, "payload checksum mismatch (corrupt or "
                            "partially-written file)");
    }
}

SampleRef
GraphView::sample() const
{
    SampleRef s;
    s.graph = graph();
    s.node_features = node_features_;
    s.node_dim = node_features_ ? node_dim() : 0;
    s.edge_features = edge_features_;
    s.edge_dim = edge_features_ ? edge_dim() : 0;
    s.num_pool_nodes = num_pool_nodes();
    s.dgn_field = dgn_field_;
    s.true_in_deg = true_in_deg_;
    s.true_out_deg = true_out_deg_;
    s.label = label();
    return s;
}

} // namespace io
} // namespace flowgnn
