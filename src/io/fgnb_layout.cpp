#include "io/fgnb_layout.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "core/parallel.h"
#include "graph/graph.h"

namespace flowgnn {
namespace io {

[[noreturn]] void
fgnb_fail(const std::string &path, const std::string &reason)
{
    throw GraphFileError("graph file '" + path + "': " + reason);
}

std::string
errno_message(int err)
{
    char buf[256] = {};
#if defined(_GNU_SOURCE) || (defined(__GLIBC__) && defined(__USE_GNU))
    // GNU strerror_r may return a pointer into a static table instead
    // of filling buf; either way the returned pointer is the message
    // and the call itself is thread-safe.
    return std::string(strerror_r(err, buf, sizeof buf));
#else
    // XSI strerror_r fills buf and returns an int.
    if (strerror_r(err, buf, sizeof buf) != 0)
        std::snprintf(buf, sizeof buf, "errno %d", err);
    return std::string(buf);
#endif
}

std::uint64_t
fgnb_expected_payload_bytes(const FgnbHeader &h)
{
    std::uint64_t bytes = 2 * h.num_edges * sizeof(std::uint32_t);
    if (h.flags & kFlagNodeFeatures)
        bytes += h.num_nodes * h.node_dim * sizeof(float);
    if (h.flags & kFlagEdgeFeatures)
        bytes += h.num_edges * h.edge_dim * sizeof(float);
    if (h.flags & kFlagDgnField)
        bytes += h.num_nodes * sizeof(float);
    if (h.flags & kFlagTrueInDeg)
        bytes += h.num_nodes * sizeof(std::uint32_t);
    if (h.flags & kFlagTrueOutDeg)
        bytes += h.num_nodes * sizeof(std::uint32_t);
    return bytes;
}

void
fgnb_validate_header(const FgnbHeader &h, std::uint64_t file_bytes,
                     const std::string &path)
{
    if (h.version != kGraphFileVersion &&
        h.version != kGraphFileVersionChunked)
        fgnb_fail(path,
                  "unsupported format version " +
                      std::to_string(h.version) + " (reader supports " +
                      std::to_string(kGraphFileVersion) + "-" +
                      std::to_string(kGraphFileVersionChunked) + ")");
    if (h.header_bytes != sizeof(FgnbHeader))
        fgnb_fail(path, "header size mismatch");
    if (h.num_nodes > std::numeric_limits<NodeId>::max())
        fgnb_fail(path, "num_nodes " + std::to_string(h.num_nodes) +
                            " overflows the 32-bit node id space");
    if (h.num_edges > std::numeric_limits<EdgeId>::max())
        fgnb_fail(path, "num_edges " + std::to_string(h.num_edges) +
                            " overflows the 32-bit edge id space");
    if (h.num_pool_nodes > h.num_nodes)
        fgnb_fail(path, "num_pool_nodes exceeds num_nodes");
    if (h.node_dim > kMaxFeatureDim || h.edge_dim > kMaxFeatureDim)
        fgnb_fail(path, "implausible feature dimension (corrupt "
                        "header?)");
    if (((h.flags & kFlagNodeFeatures) != 0) != (h.node_dim > 0))
        fgnb_fail(path, "node-feature flag disagrees with node_dim");
    if (((h.flags & kFlagEdgeFeatures) != 0) != (h.edge_dim > 0))
        fgnb_fail(path, "edge-feature flag disagrees with edge_dim");
    if (h.payload_bytes != fgnb_expected_payload_bytes(h))
        fgnb_fail(path, "payload size disagrees with section flags");
    if (file_bytes != sizeof(FgnbHeader) + h.payload_bytes)
        fgnb_fail(path,
                  file_bytes < sizeof(FgnbHeader) + h.payload_bytes
                      ? "truncated file (payload shorter than header "
                        "promises)"
                      : "trailing bytes after payload");
}

std::uint64_t
fgnb_chunked_checksum(const void *payload, std::uint64_t bytes,
                      unsigned threads)
{
    const unsigned char *base =
        static_cast<const unsigned char *>(payload);
    const std::size_t chunks = static_cast<std::size_t>(
        (bytes + kChecksumChunkBytes - 1) / kChecksumChunkBytes);
    std::vector<std::uint64_t> digests(chunks);
    parallel_ranges(
        chunks, threads,
        [&](std::size_t b, std::size_t end, unsigned) {
            for (std::size_t c = b; c < end; ++c) {
                const std::uint64_t off = c * kChecksumChunkBytes;
                const std::uint64_t len =
                    std::min(kChecksumChunkBytes, bytes - off);
                digests[c] =
                    fnv1a64(base + off, static_cast<std::size_t>(len));
            }
        },
        /*serial_cutoff=*/2);
    return fnv1a64(digests.data(),
                   digests.size() * sizeof(std::uint64_t));
}

} // namespace io
} // namespace flowgnn
