#include "io/edge_list.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

namespace flowgnn {

namespace {

constexpr std::size_t kChunkBytes = 1 << 20; ///< 1 MiB read buffer

/**
 * Longest single line the parser will carry across chunk boundaries.
 * A sane edge line is tens of bytes; a newline-free multi-GiB file
 * (wrong file handed in, or binary data) would otherwise accumulate
 * the entire file into `carry` and OOM the process instead of failing
 * with a diagnosis.
 */
constexpr std::size_t kMaxLineBytes = 1 << 20;

[[noreturn]] void
fail(const std::string &path, std::size_t line,
     const std::string &reason)
{
    throw GraphFileError("edge list '" + path + "' line " +
                         std::to_string(line) + ": " + reason);
}

struct FileCloser {
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/**
 * Shared line-oriented scaffolding: reads the file in kChunkBytes
 * chunks, carries the partial last line of each chunk into the next,
 * strips CR, and hands every complete line (comment and blank lines
 * included) to the line parser.
 */
class LineParser
{
  public:
    LineParser(const std::string &path, char separator)
        : path_(path), sep_(separator)
    {
    }

    CooGraph
    parse(const EdgeListOptions &options)
    {
        FilePtr f(std::fopen(path_.c_str(), "rb"));
        if (!f)
            throw GraphFileError("edge list '" + path_ +
                                 "': cannot open for reading");
        explicit_nodes_ = options.num_nodes;

        std::vector<char> buf(kChunkBytes);
        std::string carry;
        std::size_t got;
        while ((got = std::fread(buf.data(), 1, buf.size(), f.get())) >
               0) {
            const char *p = buf.data();
            const char *end = p + got;
            while (p < end) {
                const char *nl = static_cast<const char *>(
                    std::memchr(p, '\n', end - p));
                if (!nl) {
                    if (carry.size() + static_cast<std::size_t>(
                                           end - p) >
                        kMaxLineBytes)
                        fail(path_, line_ + 1,
                             "line exceeds " +
                                 std::to_string(kMaxLineBytes) +
                                 " bytes (missing newlines — is this "
                                 "really an edge list?)");
                    carry.append(p, end);
                    break;
                }
                if (carry.empty()) {
                    consume_line(p, nl);
                } else {
                    carry.append(p, nl);
                    consume_line(carry.data(),
                                 carry.data() + carry.size());
                    carry.clear();
                }
                p = nl + 1;
            }
        }
        if (std::ferror(f.get()))
            throw GraphFileError("edge list '" + path_ +
                                 "': read failed");
        if (!carry.empty()) // final line without trailing newline
            consume_line(carry.data(), carry.data() + carry.size());

        CooGraph g;
        g.num_nodes = explicit_nodes_ ? explicit_nodes_
                                      : (saw_edge_ ? max_id_ + 1 : 0);
        g.edges = std::move(edges_);
        return g;
    }

  private:
    void
    consume_line(const char *begin, const char *end)
    {
        ++line_;
        if (end > begin && end[-1] == '\r') // CRLF
            --end;
        const char *p = begin;
        while (p < end && (*p == ' ' || *p == '\t'))
            ++p;
        if (p == end || *p == '#' || *p == '%')
            return; // blank or comment line
        NodeId u = parse_id(p, end, "source");
        skip_separator(p, end);
        NodeId v = parse_id(p, end, "destination");
        // Anything after the pair must be whitespace or a comment
        // (SNAP headers sometimes annotate; extra columns are not
        // silently dropped as ids).
        while (p < end && (*p == ' ' || *p == '\t' ||
                           (sep_ == ',' && *p == ',')))
            ++p;
        if (p != end && *p != '#' && *p != '%')
            fail(path_, line_, "trailing junk after edge pair");
        edges_.push_back({u, v});
        saw_edge_ = true;
        if (u > max_id_)
            max_id_ = u;
        if (v > max_id_)
            max_id_ = v;
    }

    NodeId
    parse_id(const char *&p, const char *end, const char *what)
    {
        if (p == end || *p < '0' || *p > '9')
            fail(path_, line_,
                 std::string("expected a ") + what + " node id");
        std::uint64_t v = 0;
        while (p < end && *p >= '0' && *p <= '9') {
            v = v * 10 + static_cast<std::uint64_t>(*p - '0');
            // >= max, not > max: num_nodes = max id + 1 must itself
            // fit in 32 bits, so the top id value is reserved.
            if (v >= std::numeric_limits<NodeId>::max())
                fail(path_, line_,
                     std::string(what) +
                         " id overflows the 32-bit node id space");
            ++p;
        }
        if (explicit_nodes_ && v >= explicit_nodes_)
            fail(path_, line_,
                 std::string(what) + " id " + std::to_string(v) +
                     " >= declared node count " +
                     std::to_string(explicit_nodes_));
        return static_cast<NodeId>(v);
    }

    void
    skip_separator(const char *&p, const char *end)
    {
        const char *start = p;
        while (p < end && (*p == ' ' || *p == '\t'))
            ++p;
        if (sep_ == ',') {
            // CSV means CSV: a comma is required, whitespace around
            // it tolerated.
            if (p == end || *p != ',')
                fail(path_, line_, "expected ',' between node ids");
            ++p;
            while (p < end && (*p == ' ' || *p == '\t'))
                ++p;
        } else if (p == start) {
            fail(path_, line_, "missing separator between node ids");
        }
    }

    const std::string path_;
    const char sep_;
    std::vector<Edge> edges_;
    std::size_t line_ = 0;
    NodeId max_id_ = 0;
    NodeId explicit_nodes_ = 0;
    bool saw_edge_ = false;
};

/** Reads the first integer of `dir/num-node-list.csv` (0 if absent). */
NodeId
read_num_node_list(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return 0;
    char buf[64];
    std::size_t got = std::fread(buf, 1, sizeof buf - 1, f.get());
    buf[got] = '\0';
    std::uint64_t v = 0;
    const char *p = buf;
    while (*p == ' ' || *p == '\t')
        ++p;
    if (*p < '0' || *p > '9')
        throw GraphFileError("'" + path +
                             "': expected a leading node count");
    while (*p >= '0' && *p <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(*p - '0');
        if (v > std::numeric_limits<NodeId>::max())
            throw GraphFileError("'" + path +
                                 "': node count overflows 32 bits");
        ++p;
    }
    return static_cast<NodeId>(v);
}

} // namespace

CooGraph
parse_snap_edge_list(const std::string &path,
                     const EdgeListOptions &options)
{
    return LineParser(path, ' ').parse(options);
}

CooGraph
parse_ogb_csv(const std::string &dir, const EdgeListOptions &options)
{
    EdgeListOptions opts = options;
    if (opts.num_nodes == 0)
        opts.num_nodes = read_num_node_list(dir + "/num-node-list.csv");
    CooGraph g = LineParser(dir + "/edge.csv", ',').parse(opts);
    return g;
}

} // namespace flowgnn
