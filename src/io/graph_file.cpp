#include "io/graph_file.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

namespace flowgnn {

static_assert(std::endian::native == std::endian::little,
              "FGNB is a little-endian format; big-endian hosts would "
              "need byte-swapping readers/writers");

namespace io {

std::uint64_t
fnv1a64(const void *data, std::size_t bytes, std::uint64_t seed)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace io

namespace {

using io::fnv1a64;

/**
 * The fixed 88-byte header. Every field is little-endian; reserved
 * words are written as zero and ignored on read (the version-bump
 * escape hatch for additions that do not change section layout).
 */
struct Header {
    std::uint32_t magic = io::kGraphFileMagic;
    std::uint32_t version = io::kGraphFileVersion;
    std::uint32_t header_bytes = sizeof(Header);
    std::uint32_t flags = 0;
    std::uint64_t num_nodes = 0;
    std::uint64_t num_edges = 0;
    std::uint64_t node_dim = 0;
    std::uint64_t edge_dim = 0;
    std::uint64_t num_pool_nodes = 0;
    float label = 0.0f;
    std::uint32_t reserved0 = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t payload_checksum = 0;
    std::uint64_t reserved1 = 0;
};
static_assert(sizeof(Header) == 88, "FGNB v1 header is 88 bytes");

[[noreturn]] void
fail(const std::string &path, const std::string &reason)
{
    throw GraphFileError("graph file '" + path + "': " + reason);
}

struct FileCloser {
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/**
 * Upper bound on feature dims the format accepts (per row, floats).
 * Real models use 16-100; the bound exists so a hostile header cannot
 * pick dims whose num_nodes * dim * 4 product wraps uint64 and sneaks
 * a zero payload_bytes past the size/checksum checks while Matrix
 * under-allocates (rows() would lie about the backing store).
 */
constexpr std::uint64_t kMaxFeatureDim = 1u << 20;

/** Payload section sizes implied by a header, in emission order.
 * Never overflows: callers have bounded num_nodes/num_edges to 2^32
 * and dims to kMaxFeatureDim, so every term fits in 2^55. */
std::uint64_t
expected_payload_bytes(const Header &h)
{
    std::uint64_t bytes = 2 * h.num_edges * sizeof(std::uint32_t);
    if (h.flags & io::kFlagNodeFeatures)
        bytes += h.num_nodes * h.node_dim * sizeof(float);
    if (h.flags & io::kFlagEdgeFeatures)
        bytes += h.num_edges * h.edge_dim * sizeof(float);
    if (h.flags & io::kFlagDgnField)
        bytes += h.num_nodes * sizeof(float);
    if (h.flags & io::kFlagTrueInDeg)
        bytes += h.num_nodes * sizeof(std::uint32_t);
    if (h.flags & io::kFlagTrueOutDeg)
        bytes += h.num_nodes * sizeof(std::uint32_t);
    return bytes;
}

class Writer
{
  public:
    Writer(std::FILE *f, const std::string &path) : f_(f), path_(path) {}

    void
    write(const void *data, std::size_t bytes)
    {
        if (bytes == 0)
            return;
        if (std::fwrite(data, 1, bytes, f_) != bytes)
            fail(path_, "write failed (disk full?)");
        checksum_ = fnv1a64(data, bytes, checksum_);
        written_ += bytes;
    }

    std::uint64_t checksum() const { return checksum_; }
    std::uint64_t written() const { return written_; }

  private:
    std::FILE *f_;
    const std::string &path_;
    std::uint64_t checksum_ = 0xCBF29CE484222325ull;
    std::uint64_t written_ = 0;
};

class Reader
{
  public:
    Reader(std::FILE *f, const std::string &path) : f_(f), path_(path) {}

    void
    read(void *data, std::size_t bytes)
    {
        if (bytes == 0)
            return;
        if (std::fread(data, 1, bytes, f_) != bytes)
            fail(path_, "truncated file (payload shorter than header "
                        "promises)");
        checksum_ = fnv1a64(data, bytes, checksum_);
    }

    std::uint64_t checksum() const { return checksum_; }

  private:
    std::FILE *f_;
    const std::string &path_;
    std::uint64_t checksum_ = 0xCBF29CE484222325ull;
};

} // namespace

void
GraphFile::save(const std::string &path, const GraphSample &sample)
{
    if (!sample.consistent())
        fail(path, "refusing to save an inconsistent GraphSample");
    if (sample.node_features.cols() > kMaxFeatureDim ||
        sample.edge_features.cols() > kMaxFeatureDim)
        fail(path, "feature dimension too large for FGNB");

    Header h;
    h.num_nodes = sample.graph.num_nodes;
    h.num_edges = sample.graph.num_edges();
    h.num_pool_nodes = sample.num_pool_nodes;
    h.label = sample.label;
    if (sample.node_features.cols() > 0) {
        h.flags |= io::kFlagNodeFeatures;
        h.node_dim = sample.node_features.cols();
    }
    if (sample.edge_features.cols() > 0) {
        h.flags |= io::kFlagEdgeFeatures;
        h.edge_dim = sample.edge_features.cols();
    }
    if (!sample.dgn_field.empty())
        h.flags |= io::kFlagDgnField;
    if (!sample.true_in_deg.empty())
        h.flags |= io::kFlagTrueInDeg;
    if (!sample.true_out_deg.empty())
        h.flags |= io::kFlagTrueOutDeg;
    h.payload_bytes = expected_payload_bytes(h);

    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fail(path, "cannot open for writing");

    // Header slot first (rewritten with the final checksum at the
    // end, so a crash mid-write leaves a file whose checksum cannot
    // verify instead of one that silently half-loads).
    Header placeholder = h;
    placeholder.payload_checksum = 0;
    if (std::fwrite(&placeholder, 1, sizeof placeholder, f.get()) !=
        sizeof placeholder)
        fail(path, "write failed (disk full?)");

    // Edge endpoints as two columns: one bulk write each, and the
    // natural layout for a loader that streams src[] then dst[].
    const std::size_t e = sample.graph.num_edges();
    std::vector<std::uint32_t> column(e);
    Writer w(f.get(), path);
    for (std::size_t i = 0; i < e; ++i)
        column[i] = sample.graph.edges[i].src;
    w.write(column.data(), e * sizeof(std::uint32_t));
    for (std::size_t i = 0; i < e; ++i)
        column[i] = sample.graph.edges[i].dst;
    w.write(column.data(), e * sizeof(std::uint32_t));

    if (h.flags & io::kFlagNodeFeatures)
        w.write(sample.node_features.data(),
                sample.node_features.size() * sizeof(float));
    if (h.flags & io::kFlagEdgeFeatures)
        w.write(sample.edge_features.data(),
                sample.edge_features.size() * sizeof(float));
    if (h.flags & io::kFlagDgnField)
        w.write(sample.dgn_field.data(),
                sample.dgn_field.size() * sizeof(float));
    if (h.flags & io::kFlagTrueInDeg)
        w.write(sample.true_in_deg.data(),
                sample.true_in_deg.size() * sizeof(std::uint32_t));
    if (h.flags & io::kFlagTrueOutDeg)
        w.write(sample.true_out_deg.data(),
                sample.true_out_deg.size() * sizeof(std::uint32_t));

    if (w.written() != h.payload_bytes)
        fail(path, "internal error: payload size mismatch");
    h.payload_checksum = w.checksum();
    if (std::fseek(f.get(), 0, SEEK_SET) != 0 ||
        std::fwrite(&h, 1, sizeof h, f.get()) != sizeof h)
        fail(path, "write failed while finalizing header");
    if (std::fflush(f.get()) != 0)
        fail(path, "flush failed (disk full?)");
}

GraphSample
GraphFile::load(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fail(path, "cannot open for reading");

    Header h;
    std::size_t got = std::fread(&h, 1, sizeof h, f.get());
    if (got < sizeof(std::uint32_t) || h.magic != io::kGraphFileMagic)
        fail(path, "bad magic (not an FGNB graph file)");
    if (got != sizeof h)
        fail(path, "truncated header");
    if (h.version != io::kGraphFileVersion)
        fail(path, "unsupported format version " +
                       std::to_string(h.version) + " (reader supports " +
                       std::to_string(io::kGraphFileVersion) + ")");
    if (h.header_bytes != sizeof h)
        fail(path, "header size mismatch");
    if (h.num_nodes > std::numeric_limits<NodeId>::max())
        fail(path, "num_nodes " + std::to_string(h.num_nodes) +
                       " overflows the 32-bit node id space");
    if (h.num_edges > std::numeric_limits<EdgeId>::max())
        fail(path, "num_edges " + std::to_string(h.num_edges) +
                       " overflows the 32-bit edge id space");
    if (h.num_pool_nodes > h.num_nodes)
        fail(path, "num_pool_nodes exceeds num_nodes");
    if (h.node_dim > kMaxFeatureDim || h.edge_dim > kMaxFeatureDim)
        fail(path, "implausible feature dimension (corrupt header?)");
    if (((h.flags & io::kFlagNodeFeatures) != 0) != (h.node_dim > 0))
        fail(path, "node-feature flag disagrees with node_dim");
    if (((h.flags & io::kFlagEdgeFeatures) != 0) != (h.edge_dim > 0))
        fail(path, "edge-feature flag disagrees with edge_dim");
    if (h.payload_bytes != expected_payload_bytes(h))
        fail(path, "payload size disagrees with section flags");

    // Header vs reality: a truncated (or padded) file is diagnosed
    // before any section read touches memory sized from the header.
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        fail(path, "seek failed");
    long end = std::ftell(f.get());
    if (end < 0)
        fail(path, "tell failed");
    if (static_cast<std::uint64_t>(end) !=
        sizeof h + h.payload_bytes)
        fail(path, static_cast<std::uint64_t>(end) <
                           sizeof h + h.payload_bytes
                       ? "truncated file (payload shorter than header "
                         "promises)"
                       : "trailing bytes after payload");
    if (std::fseek(f.get(), sizeof h, SEEK_SET) != 0)
        fail(path, "seek failed");

    GraphSample s;
    s.graph.num_nodes = static_cast<NodeId>(h.num_nodes);
    s.num_pool_nodes = static_cast<NodeId>(h.num_pool_nodes);
    s.label = h.label;

    Reader r(f.get(), path);
    const std::size_t e = static_cast<std::size_t>(h.num_edges);
    std::vector<std::uint32_t> src(e), dst(e);
    r.read(src.data(), e * sizeof(std::uint32_t));
    r.read(dst.data(), e * sizeof(std::uint32_t));
    s.graph.edges.resize(e);
    for (std::size_t i = 0; i < e; ++i) {
        if (src[i] >= h.num_nodes || dst[i] >= h.num_nodes)
            fail(path, "edge " + std::to_string(i) + " endpoint (" +
                           std::to_string(src[i]) + ", " +
                           std::to_string(dst[i]) +
                           ") out of range for " +
                           std::to_string(h.num_nodes) + " nodes");
        s.graph.edges[i] = {src[i], dst[i]};
    }
    src.clear();
    src.shrink_to_fit();
    dst.clear();
    dst.shrink_to_fit();

    // Always shaped [num_nodes x node_dim] — consistent() requires a
    // row per node even when no features are stored (node_dim 0).
    s.node_features = Matrix(static_cast<std::size_t>(h.num_nodes),
                             static_cast<std::size_t>(h.node_dim));
    if (h.flags & io::kFlagNodeFeatures)
        r.read(s.node_features.data(),
               s.node_features.size() * sizeof(float));
    if (h.flags & io::kFlagEdgeFeatures) {
        s.edge_features =
            Matrix(e, static_cast<std::size_t>(h.edge_dim));
        r.read(s.edge_features.data(),
               s.edge_features.size() * sizeof(float));
    }
    if (h.flags & io::kFlagDgnField) {
        s.dgn_field.resize(static_cast<std::size_t>(h.num_nodes));
        r.read(s.dgn_field.data(), s.dgn_field.size() * sizeof(float));
    }
    if (h.flags & io::kFlagTrueInDeg) {
        s.true_in_deg.resize(static_cast<std::size_t>(h.num_nodes));
        r.read(s.true_in_deg.data(),
               s.true_in_deg.size() * sizeof(std::uint32_t));
    }
    if (h.flags & io::kFlagTrueOutDeg) {
        s.true_out_deg.resize(static_cast<std::size_t>(h.num_nodes));
        r.read(s.true_out_deg.data(),
               s.true_out_deg.size() * sizeof(std::uint32_t));
    }

    if (r.checksum() != h.payload_checksum)
        fail(path, "payload checksum mismatch (corrupt or "
                   "partially-written file)");
    return s;
}

} // namespace flowgnn
