#include "io/graph_file.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/parallel.h"
#include "io/fgnb_layout.h"
#include "io/graph_view.h"

namespace flowgnn {

static_assert(std::endian::native == std::endian::little,
              "FGNB is a little-endian format; big-endian hosts would "
              "need byte-swapping readers/writers");

namespace io {

std::uint64_t
fnv1a64(const void *data, std::size_t bytes, std::uint64_t seed)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace io

namespace {

using io::FgnbHeader;
using io::fgnb_fail;
using io::fnv1a64;

struct FileCloser {
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/** Bulk section writer. For v1 it folds a running FNV over everything
 * written; for v2 checksumming happens afterwards over the mapped
 * file, so the fold is skipped. */
class Writer
{
  public:
    Writer(std::FILE *f, const std::string &path, bool fold_checksum)
        : f_(f), path_(path), fold_(fold_checksum)
    {
    }

    void
    write(const void *data, std::size_t bytes)
    {
        if (bytes == 0)
            return;
        if (std::fwrite(data, 1, bytes, f_) != bytes)
            fgnb_fail(path_, "write failed (disk full?)");
        if (fold_)
            checksum_ = fnv1a64(data, bytes, checksum_);
        written_ += bytes;
    }

    std::uint64_t checksum() const { return checksum_; }
    std::uint64_t written() const { return written_; }

  private:
    std::FILE *f_;
    const std::string &path_;
    bool fold_;
    std::uint64_t checksum_ = 0xCBF29CE484222325ull;
    std::uint64_t written_ = 0;
};

} // namespace

void
GraphFile::save(const std::string &path, const GraphSample &sample,
                const GraphSaveOptions &opts)
{
    if (opts.version != io::kGraphFileVersion &&
        opts.version != io::kGraphFileVersionChunked)
        fgnb_fail(path, "cannot write format version " +
                            std::to_string(opts.version));
    if (!sample.consistent())
        fgnb_fail(path, "refusing to save an inconsistent GraphSample");
    if (sample.node_features.cols() > io::kMaxFeatureDim ||
        sample.edge_features.cols() > io::kMaxFeatureDim)
        fgnb_fail(path, "feature dimension too large for FGNB");

    FgnbHeader h;
    h.version = opts.version;
    h.num_nodes = sample.graph.num_nodes;
    h.num_edges = sample.graph.num_edges();
    h.num_pool_nodes = sample.num_pool_nodes;
    h.label = sample.label;
    if (sample.node_features.cols() > 0) {
        h.flags |= io::kFlagNodeFeatures;
        h.node_dim = sample.node_features.cols();
    }
    if (sample.edge_features.cols() > 0) {
        h.flags |= io::kFlagEdgeFeatures;
        h.edge_dim = sample.edge_features.cols();
    }
    if (!sample.dgn_field.empty())
        h.flags |= io::kFlagDgnField;
    if (!sample.true_in_deg.empty())
        h.flags |= io::kFlagTrueInDeg;
    if (!sample.true_out_deg.empty())
        h.flags |= io::kFlagTrueOutDeg;
    h.payload_bytes = io::fgnb_expected_payload_bytes(h);

    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fgnb_fail(path, "cannot open for writing");

    // Header slot first (rewritten with the final checksum at the
    // end, so a crash mid-write leaves a file whose checksum cannot
    // verify instead of one that silently half-loads).
    FgnbHeader placeholder = h;
    placeholder.payload_checksum = 0;
    if (std::fwrite(&placeholder, 1, sizeof placeholder, f.get()) !=
        sizeof placeholder)
        fgnb_fail(path, "write failed (disk full?)");

    const bool chunked = opts.version == io::kGraphFileVersionChunked;

    // Edge endpoints as two columns: one bulk write each, and the
    // natural layout for an mmap reader that views src[] then dst[].
    const std::size_t e = sample.graph.num_edges();
    std::vector<std::uint32_t> column(e);
    Writer w(f.get(), path, /*fold_checksum=*/!chunked);
    parallel_ranges(e, opts.threads,
                    [&](std::size_t b, std::size_t end, unsigned) {
                        for (std::size_t i = b; i < end; ++i)
                            column[i] = sample.graph.edges[i].src;
                    });
    w.write(column.data(), e * sizeof(std::uint32_t));
    parallel_ranges(e, opts.threads,
                    [&](std::size_t b, std::size_t end, unsigned) {
                        for (std::size_t i = b; i < end; ++i)
                            column[i] = sample.graph.edges[i].dst;
                    });
    w.write(column.data(), e * sizeof(std::uint32_t));

    if (h.flags & io::kFlagNodeFeatures)
        w.write(sample.node_features.data(),
                sample.node_features.size() * sizeof(float));
    if (h.flags & io::kFlagEdgeFeatures)
        w.write(sample.edge_features.data(),
                sample.edge_features.size() * sizeof(float));
    if (h.flags & io::kFlagDgnField)
        w.write(sample.dgn_field.data(),
                sample.dgn_field.size() * sizeof(float));
    if (h.flags & io::kFlagTrueInDeg)
        w.write(sample.true_in_deg.data(),
                sample.true_in_deg.size() * sizeof(std::uint32_t));
    if (h.flags & io::kFlagTrueOutDeg)
        w.write(sample.true_out_deg.data(),
                sample.true_out_deg.size() * sizeof(std::uint32_t));

    if (w.written() != h.payload_bytes)
        fgnb_fail(path, "internal error: payload size mismatch");
    if (std::fflush(f.get()) != 0)
        fgnb_fail(path, "flush failed (disk full?)");

    if (chunked) {
        // v2: checksum the payload from a fresh mapping of the flushed
        // file, one 64 MiB chunk per digest, all host cores.
        io::MappedFile m(path);
        if (m.size() != sizeof h + h.payload_bytes)
            fgnb_fail(path, "internal error: flushed size mismatch");
        h.payload_checksum = io::fgnb_chunked_checksum(
            m.data() + sizeof h, h.payload_bytes, opts.threads);
    } else {
        h.payload_checksum = w.checksum();
    }

    if (std::fseek(f.get(), 0, SEEK_SET) != 0 ||
        std::fwrite(&h, 1, sizeof h, f.get()) != sizeof h)
        fgnb_fail(path, "write failed while finalizing header");
    if (std::fflush(f.get()) != 0)
        fgnb_fail(path, "flush failed (disk full?)");
}

GraphSample
GraphFile::load(const std::string &path, unsigned threads)
{
    io::GraphView v(path, {.threads = threads});

    GraphSample s;
    s.graph.num_nodes = v.num_nodes();
    s.num_pool_nodes = v.num_pool_nodes();
    s.label = v.label();

    const std::size_t e = v.num_edges();
    const std::size_t n = v.num_nodes();
    const std::uint32_t *src = v.src();
    const std::uint32_t *dst = v.dst();
    s.graph.edges.resize(e);
    parallel_ranges(e, threads,
                    [&](std::size_t b, std::size_t end, unsigned) {
                        for (std::size_t i = b; i < end; ++i)
                            s.graph.edges[i] = {src[i], dst[i]};
                    });

    // Always shaped [num_nodes x node_dim] — consistent() requires a
    // row per node even when no features are stored (node_dim 0).
    s.node_features = Matrix(n, v.node_dim());
    if (v.node_features())
        std::memcpy(s.node_features.data(), v.node_features(),
                    s.node_features.size() * sizeof(float));
    if (v.edge_features()) {
        s.edge_features = Matrix(e, v.edge_dim());
        std::memcpy(s.edge_features.data(), v.edge_features(),
                    s.edge_features.size() * sizeof(float));
    }
    if (v.dgn_field()) {
        s.dgn_field.resize(n);
        std::memcpy(s.dgn_field.data(), v.dgn_field(),
                    n * sizeof(float));
    }
    if (v.true_in_deg()) {
        s.true_in_deg.resize(n);
        std::memcpy(s.true_in_deg.data(), v.true_in_deg(),
                    n * sizeof(std::uint32_t));
    }
    if (v.true_out_deg()) {
        s.true_out_deg.resize(n);
        std::memcpy(s.true_out_deg.data(), v.true_out_deg(),
                    n * sizeof(std::uint32_t));
    }
    return s;
}

} // namespace flowgnn
