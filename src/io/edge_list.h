/**
 * @file
 * flowgnn::io — streaming parsers for external edge-list formats.
 *
 * Two text formats cover the graphs people actually have on disk:
 *
 *  - SNAP-style whitespace edge lists (`u v` per line, `#`/`%`
 *    comment lines, the format of the SNAP and KONECT collections),
 *  - OGB-style CSV directories (`edge.csv` with `u,v` rows plus
 *    `num-node-list.csv` carrying the node count, so isolated
 *    trailing nodes are not lost).
 *
 * Both parse in bounded-memory chunks — a fixed read buffer with
 * partial lines carried across chunk boundaries — so parsing a
 * multi-gigabyte edge list never slurps the text into one string.
 * Only the resulting edge vector grows with the graph. Blank lines
 * and CRLF line endings are tolerated everywhere; duplicate edges and
 * self-loops are kept (the engine and the partitioners handle
 * multigraphs; dedup policy belongs to them, not the parser).
 *
 * Malformed input (non-numeric tokens, missing endpoints, ids
 * overflowing 32 bits, ids >= an explicit node count) fails with a
 * GraphFileError naming the path and line number.
 */
#ifndef FLOWGNN_IO_EDGE_LIST_H
#define FLOWGNN_IO_EDGE_LIST_H

#include <string>

#include "io/graph_file.h"

namespace flowgnn {

/** Knobs shared by the text parsers. */
struct EdgeListOptions {
    /**
     * Node count. 0 derives it as max endpoint id + 1 (trailing
     * isolated nodes are then invisible — give the real count when
     * you know it). When non-zero, any endpoint >= num_nodes is a
     * parse error.
     */
    NodeId num_nodes = 0;
};

/**
 * Parses a SNAP-style whitespace-separated edge list: one `u v` pair
 * per line, `#` or `%` lines (and trailing `# comments` after the
 * pair) ignored. Returns the raw directed COO graph in file order —
 * SNAP files for undirected graphs usually list each edge once, so
 * pass the result through CooGraph::with_reverse_edges() (or
 * LoadOptions::symmetrize) when the model needs both directions.
 */
CooGraph parse_snap_edge_list(const std::string &path,
                              const EdgeListOptions &options = {});

/**
 * Parses an OGB-style CSV dataset directory: `dir/edge.csv` holds
 * `u,v` rows (no header), and `dir/num-node-list.csv`, when present,
 * holds the node count (first row; the single-graph layout). An
 * explicit EdgeListOptions::num_nodes overrides the file.
 */
CooGraph parse_ogb_csv(const std::string &dir,
                       const EdgeListOptions &options = {});

} // namespace flowgnn

#endif // FLOWGNN_IO_EDGE_LIST_H
