/**
 * @file
 * The FGNB on-disk layout, factored out of the loader so the
 * stream-reader (GraphFile::load) and the mmap view (io::GraphView)
 * validate one header the same way. The full specification lives in
 * docs/DESIGN.md; this header is the executable form of it.
 *
 * Versions:
 *  - v1: payload_checksum is FNV-1a-64 over the whole payload, one
 *    linear pass.
 *  - v2: the payload is divided into 64 MiB chunks, each chunk gets an
 *    FNV-1a-64 digest, and payload_checksum is FNV-1a-64 over the
 *    concatenated little-endian digests. Same header, same sections —
 *    only the checksum definition changes, which lets a reader verify
 *    chunks on all host cores instead of one.
 */
#ifndef FLOWGNN_IO_FGNB_LAYOUT_H
#define FLOWGNN_IO_FGNB_LAYOUT_H

#include <cstdint>
#include <string>

#include "io/graph_file.h"

namespace flowgnn {
namespace io {

/** FGNB v2: chunked payload checksum (parallel-verifiable). */
inline constexpr std::uint32_t kGraphFileVersionChunked = 2;

/** v2 checksum chunk size. Fixed by the format: changing it changes
 * every v2 checksum. */
inline constexpr std::uint64_t kChecksumChunkBytes = 64ull << 20;

/**
 * The fixed 88-byte FGNB header, shared by v1 and v2. Every field is
 * little-endian; reserved words are written as zero and ignored on
 * read (the version-bump escape hatch for additions that do not
 * change section layout).
 */
struct FgnbHeader {
    std::uint32_t magic = kGraphFileMagic;
    std::uint32_t version = kGraphFileVersion;
    std::uint32_t header_bytes = sizeof(FgnbHeader);
    std::uint32_t flags = 0;
    std::uint64_t num_nodes = 0;
    std::uint64_t num_edges = 0;
    std::uint64_t node_dim = 0;
    std::uint64_t edge_dim = 0;
    std::uint64_t num_pool_nodes = 0;
    float label = 0.0f;
    std::uint32_t reserved0 = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t payload_checksum = 0;
    std::uint64_t reserved1 = 0;
};
static_assert(sizeof(FgnbHeader) == 88, "FGNB header is 88 bytes");

/**
 * Upper bound on feature dims the format accepts (per row, floats).
 * Real models use 16-100; the bound exists so a hostile header cannot
 * pick dims whose num_nodes * dim * 4 product wraps uint64 and sneaks
 * a zero payload_bytes past the size/checksum checks while Matrix
 * under-allocates (rows() would lie about the backing store).
 */
inline constexpr std::uint64_t kMaxFeatureDim = 1u << 20;

/** Throws GraphFileError("graph file '<path>': <reason>"). */
[[noreturn]] void fgnb_fail(const std::string &path,
                            const std::string &reason);

/**
 * Thread-safe strerror: io error paths run on replica/die/parallel
 * worker threads, where std::strerror's shared static buffer is a
 * data race (clang-tidy concurrency-mt-unsafe). Wraps strerror_r.
 */
std::string errno_message(int err);

/** Payload section sizes implied by a header, in emission order.
 * Never overflows: fgnb_validate_header has bounded num_nodes /
 * num_edges to 2^32 and dims to kMaxFeatureDim, so every term fits in
 * 2^55. */
std::uint64_t fgnb_expected_payload_bytes(const FgnbHeader &h);

/**
 * Full header validation against the actual file size, shared by the
 * stream loader and GraphView. `file_bytes` is the file's true 64-bit
 * size (from ftello or fstat — NOT a 32-bit ftell, which is exactly
 * the >=2 GiB misdiagnosis this seam exists to prevent and to unit
 * test without a multi-GiB file). Checks, in order: version (1 or 2),
 * header_bytes, id-space bounds, pool-node bound, feature-dim bounds,
 * flag/dim agreement, payload_bytes vs section flags, and file_bytes
 * == header + payload (truncation / trailing bytes). Magic and
 * short-header checks stay with the caller, which knows how many
 * header bytes it actually obtained. Throws GraphFileError on any
 * failure.
 */
void fgnb_validate_header(const FgnbHeader &h, std::uint64_t file_bytes,
                          const std::string &path);

/**
 * The v2 payload checksum: per-64 MiB-chunk FNV-1a-64 digests, folded
 * by an FNV-1a-64 pass over the concatenated little-endian digest
 * words. Chunk digests are computed in parallel (threads 0 = all host
 * cores); the result is thread-count independent by construction. An
 * empty payload folds zero digests, yielding the FNV offset basis.
 */
std::uint64_t fgnb_chunked_checksum(const void *payload,
                                    std::uint64_t bytes,
                                    unsigned threads = 0);

} // namespace io
} // namespace flowgnn

#endif // FLOWGNN_IO_FGNB_LAYOUT_H
