/**
 * @file
 * flowgnn::io — the FGNB on-disk binary graph format.
 *
 * A GraphSample round-trips to disk losslessly: save() writes a fixed
 * little-endian header (magic + version + section flags + checksum)
 * followed by column-major payload sections (edge endpoints, then the
 * optional feature/degree sections), and load() reads it back with one
 * bulk read per section — the cheap-reload cache that makes repeated
 * bench/shard runs on a large parsed graph cost seconds instead of a
 * re-parse. The full format specification (header layout, endianness,
 * versioning policy) lives in docs/DESIGN.md.
 *
 * Every failure mode of a hostile or damaged file — wrong magic, an
 * unknown version, a header inconsistent with the file size
 * (truncation), edge endpoints >= num_nodes, a payload checksum
 * mismatch — is rejected with a GraphFileError naming the path and
 * the reason; no input may reach undefined behavior.
 */
#ifndef FLOWGNN_IO_GRAPH_FILE_H
#define FLOWGNN_IO_GRAPH_FILE_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/sample.h"

namespace flowgnn {

/** Any io-layer failure: unopenable path, malformed or truncated
 * file, out-of-range ids, checksum mismatch. what() always includes
 * the offending path. */
class GraphFileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace io {

/** First four bytes of every FGNB file: "FGNB". */
inline constexpr std::uint32_t kGraphFileMagic = 0x424E4746u;
/** Original format version: linear FNV-1a payload checksum. Readers
 * accept v1 and v2 (see io/fgnb_layout.h for the v2 chunked-checksum
 * spec); the writer defaults to v2. */
inline constexpr std::uint32_t kGraphFileVersion = 1;

/** Section-presence bits in the header's flags word. The two degree
 * overrides are independent sections: GraphSample allows either
 * vector alone (empty = "use structural degrees"), and the format
 * must round-trip exactly that. */
enum GraphFileFlags : std::uint32_t {
    kFlagNodeFeatures = 1u << 0,
    kFlagEdgeFeatures = 1u << 1,
    kFlagDgnField = 1u << 2,
    kFlagTrueInDeg = 1u << 3,
    kFlagTrueOutDeg = 1u << 4,
};

/**
 * FNV-1a 64-bit over a byte range — the payload checksum. Chosen for
 * being trivially specified (so the format needs no library) while
 * still catching the realistic failure: silent mid-file corruption or
 * a partial write that file-size checks alone would miss.
 */
std::uint64_t fnv1a64(const void *data, std::size_t bytes,
                      std::uint64_t seed = 0xCBF29CE484222325ull);

} // namespace io

/** Writer knobs for GraphFile::save. */
struct GraphSaveOptions {
    /** Format version to emit: 2 (chunked checksum, default) or 1. */
    std::uint32_t version = 2;
    /** Host threads for the v2 checksum; 0 = all cores. */
    unsigned threads = 0;
};

/**
 * The FGNB binary cache of one GraphSample. Free functions rather
 * than a class: the file has no open state worth holding.
 */
struct GraphFile {
    /**
     * Writes `sample` to `path` (overwriting). Sections are emitted
     * for whichever optional parts the sample carries (node/edge
     * features, DGN field, true-degree overrides); edge endpoints and
     * the header scalars (label, num_pool_nodes) are always stored.
     * Defaults to format v2 (chunked checksum, computed in parallel
     * over the written file); pass {.version = 1} for the legacy
     * linear checksum. Throws GraphFileError on any I/O failure.
     */
    static void save(const std::string &path, const GraphSample &sample,
                     const GraphSaveOptions &opts = {});

    /**
     * Reads a sample back, bit-identical to what save() was given —
     * either version. Throws GraphFileError on: unopenable path,
     * short/bad-magic/unknown-version header, header inconsistent
     * with the actual file size (truncated or padded), num_nodes
     * exceeding the 32-bit NodeId space, any edge endpoint >=
     * num_nodes, or a payload checksum mismatch. Implemented over
     * io::GraphView, so validation, checksum, and section copies run
     * on `threads` host cores (0 = all).
     */
    static GraphSample load(const std::string &path,
                            unsigned threads = 0);
};

} // namespace flowgnn

#endif // FLOWGNN_IO_GRAPH_FILE_H
