/**
 * @file
 * flowgnn::io — one call from a path on disk to a runnable
 * GraphSample.
 *
 * load_graph_sample() detects the format (FGNB binary by magic, OGB
 * CSV by the path being a directory, SNAP text otherwise), parses or
 * bulk-loads the graph, and attaches features: the ones stored in the
 * file when present, otherwise deterministic Gaussian features
 * generated from LoadOptions (the same N(0, 0.5) distribution every
 * synthetic workload in the repo uses). The result is an ordinary
 * GraphSample — Engine, ShardedEngine/ShardedService, and pool jobs
 * accept it unchanged; nothing downstream knows the graph came from
 * storage.
 */
#ifndef FLOWGNN_IO_LOAD_H
#define FLOWGNN_IO_LOAD_H

#include <string>

#include "io/edge_list.h"
#include "io/graph_file.h"

namespace flowgnn {

/** On-disk graph formats understood by load_graph_sample. */
enum class GraphFileFormat {
    kAuto,     ///< sniff: directory -> OGB CSV, FGNB magic -> binary,
               ///< anything else -> SNAP text
    kBinary,   ///< FGNB (io/graph_file.h)
    kSnapText, ///< whitespace `u v` lines, `#`/`%` comments
    kOgbCsv,   ///< directory with edge.csv (+ num-node-list.csv)
};

/** Human-readable format name. */
const char *graph_file_format_name(GraphFileFormat format);

/**
 * Resolves kAuto against the filesystem: directories are OGB CSV,
 * files opening with the FGNB magic are binary, everything else is
 * SNAP text. Throws GraphFileError when the path does not exist.
 */
GraphFileFormat detect_graph_format(const std::string &path);

/** How load_graph_sample turns a parsed graph into a GraphSample. */
struct LoadOptions {
    GraphFileFormat format = GraphFileFormat::kAuto;
    /**
     * Node-feature width when the file stores none. Generated
     * features are deterministic in (feature_seed, node_dim) and
     * independent of the format the graph arrived in.
     */
    std::size_t node_dim = 16;
    std::uint64_t feature_seed = 0x5EED;
    /**
     * Append reverse edges after parsing (text formats only — SNAP
     * files for undirected graphs usually list each edge once; FGNB
     * files store exactly the edge list they were given).
     */
    bool symmetrize = false;
    /** Explicit node count for the text formats (see EdgeListOptions). */
    NodeId num_nodes = 0;
};

/**
 * Loads `path` into a runnable sample. Binary files contribute
 * whatever sections they carry (features, DGN field, degree
 * overrides, label); text formats contribute structure only. Missing
 * node features are generated per LoadOptions. Throws GraphFileError
 * on any parse or I/O failure, and on a 0-node result (an empty or
 * comment-only text file — almost always a wrong path or a wrong
 * format sniff, and never runnable downstream): "runnable" is this
 * function's contract, unlike the raw parsers, which happily return
 * empty graphs.
 */
GraphSample load_graph_sample(const std::string &path,
                              const LoadOptions &options = {});

} // namespace flowgnn

#endif // FLOWGNN_IO_LOAD_H
