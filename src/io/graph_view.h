/**
 * @file
 * flowgnn::io::GraphView — the out-of-core FGNB reader.
 *
 * GraphFile::load copies every section into a GraphSample; fine for
 * graphs that fit comfortably in RAM, ruinous at full-Reddit scale
 * where the Edge-struct materialization alone doubles the footprint.
 * GraphView instead mmaps the file read-only and hands out typed
 * pointers straight into the mapped column sections — src[], dst[],
 * features, degree overrides — with the same validation guarantees as
 * the copying loader (header checks, endpoint range checks, payload
 * checksum). graph() / sample() adapt the mapped columns to the
 * GraphRef / SampleRef surfaces the partitioners, planners, and engine
 * consume, so a graph larger than RAM streams through the host hot
 * paths page-by-page: the kernel pages column bytes in on first touch
 * and evicts them under pressure, and nothing is ever copied.
 */
#ifndef FLOWGNN_IO_GRAPH_VIEW_H
#define FLOWGNN_IO_GRAPH_VIEW_H

#include <cstdint>
#include <string>

#include "graph/sample.h"
#include "io/fgnb_layout.h"

namespace flowgnn {
namespace io {

/**
 * RAII read-only memory map of a whole file. Sizes the file with
 * fstat (64-bit off_t), so multi-GiB files map correctly on every
 * platform — the mmap-path fix for the 32-bit-ftell loader bug.
 */
class MappedFile
{
  public:
    MappedFile() = default;
    /** Maps `path` read-only; throws GraphFileError on failure. */
    explicit MappedFile(const std::string &path);
    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const unsigned char *data() const { return data_; }
    std::uint64_t size() const { return size_; }

    /** Advises the kernel the mapped pages are no longer needed
     * (madvise MADV_DONTNEED) — drops resident set without unmapping;
     * later touches fault the pages back in. */
    void drop_pages() const;

  private:
    unsigned char *data_ = nullptr;
    std::uint64_t size_ = 0;
};

struct GraphViewOptions {
    /** Host threads for validation/checksum; 0 = all cores. */
    unsigned threads = 0;
    /** Verify the payload checksum on open. Opting out skips one full
     * read of the file — for repeated reopens of a file verified
     * earlier in the same pipeline. */
    bool verify_checksum = true;
};

/**
 * Validated, mmap-backed, read-only view of one FGNB file (v1 or v2).
 * Accessors return pointers into the mapping; null means the section
 * is absent. The view must outlive every GraphRef/SampleRef taken
 * from it.
 */
class GraphView
{
  public:
    explicit GraphView(const std::string &path,
                       GraphViewOptions opts = {});

    NodeId num_nodes() const
    {
        return static_cast<NodeId>(h_.num_nodes);
    }
    std::size_t num_edges() const
    {
        return static_cast<std::size_t>(h_.num_edges);
    }
    std::size_t node_dim() const
    {
        return static_cast<std::size_t>(h_.node_dim);
    }
    std::size_t edge_dim() const
    {
        return static_cast<std::size_t>(h_.edge_dim);
    }
    NodeId num_pool_nodes() const
    {
        return static_cast<NodeId>(h_.num_pool_nodes);
    }
    float label() const { return h_.label; }
    std::uint32_t version() const { return h_.version; }
    const std::string &path() const { return path_; }

    /** Edge source column, num_edges() entries. */
    const std::uint32_t *src() const { return src_; }
    /** Edge destination column, num_edges() entries. */
    const std::uint32_t *dst() const { return dst_; }
    /** [num_nodes x node_dim] row-major, or null. */
    const float *node_features() const { return node_features_; }
    /** [num_edges x edge_dim] row-major, or null. */
    const float *edge_features() const { return edge_features_; }
    /** Per-node DGN scalar field, or null. */
    const float *dgn_field() const { return dgn_field_; }
    const std::uint32_t *true_in_deg() const { return true_in_deg_; }
    const std::uint32_t *true_out_deg() const { return true_out_deg_; }

    /** The mapped edge list as the hot paths' common currency. */
    GraphRef graph() const
    {
        return GraphRef(num_nodes(), num_edges(), src_, dst_);
    }

    /** Full SampleRef over the mapped sections. Engine-ready when the
     * file carries node features; callers supply generated features
     * otherwise (see load_graph_sample's feature policy). */
    SampleRef sample() const;

    /** Forwarded MappedFile::drop_pages. */
    void drop_pages() const { map_.drop_pages(); }

  private:
    std::string path_;
    MappedFile map_;
    FgnbHeader h_;
    const std::uint32_t *src_ = nullptr;
    const std::uint32_t *dst_ = nullptr;
    const float *node_features_ = nullptr;
    const float *edge_features_ = nullptr;
    const float *dgn_field_ = nullptr;
    const std::uint32_t *true_in_deg_ = nullptr;
    const std::uint32_t *true_out_deg_ = nullptr;
};

} // namespace io
} // namespace flowgnn

#endif // FLOWGNN_IO_GRAPH_VIEW_H
