#include "io/load.h"

#include <cstdio>
#include <filesystem>

#include "obs/trace_session.h"

namespace flowgnn {

const char *
graph_file_format_name(GraphFileFormat format)
{
    switch (format) {
      case GraphFileFormat::kAuto:
        return "auto";
      case GraphFileFormat::kBinary:
        return "fgnb-binary";
      case GraphFileFormat::kSnapText:
        return "snap-text";
      case GraphFileFormat::kOgbCsv:
        return "ogb-csv";
    }
    return "?";
}

GraphFileFormat
detect_graph_format(const std::string &path)
{
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec))
        return GraphFileFormat::kOgbCsv;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw GraphFileError("graph file '" + path +
                             "': cannot open for reading");
    std::uint32_t magic = 0;
    std::size_t got = std::fread(&magic, 1, sizeof magic, f);
    std::fclose(f);
    if (got == sizeof magic && magic == io::kGraphFileMagic)
        return GraphFileFormat::kBinary;
    return GraphFileFormat::kSnapText;
}

GraphSample
load_graph_sample(const std::string &path, const LoadOptions &options)
{
    GraphFileFormat format = options.format;
    if (format == GraphFileFormat::kAuto)
        format = detect_graph_format(path);

    GraphSample s;
    {
        char nm[32];
        std::snprintf(nm, sizeof nm, "parse %s",
                      graph_file_format_name(format));
        obs::Span span(obs::Track::kIo, nm);
        if (format == GraphFileFormat::kBinary) {
            s = GraphFile::load(path);
        } else {
            EdgeListOptions eopts;
            eopts.num_nodes = options.num_nodes;
            s.graph = format == GraphFileFormat::kOgbCsv
                          ? parse_ogb_csv(path, eopts)
                          : parse_snap_edge_list(path, eopts);
            if (options.symmetrize)
                s.graph = s.graph.with_reverse_edges();
            s.node_features = Matrix(s.graph.num_nodes, 0);
        }
    }

    if (s.graph.num_nodes == 0)
        throw GraphFileError(
            "graph file '" + path +
            "': contains no nodes — empty file, or not really " +
            graph_file_format_name(format) + "?");

    if (s.node_features.cols() == 0 && options.node_dim > 0)
        // Same deterministic N(0, 0.5) features as the synthetic
        // scale-out workloads (bench::with_features), so a graph
        // loaded from disk is directly comparable to a generated one.
        s.node_features = gaussian_features(
            s.graph.num_nodes, options.node_dim,
            options.feature_seed);
    return s;
}

} // namespace flowgnn
