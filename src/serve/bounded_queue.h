/**
 * @file
 * Thread-safe bounded submission queue for the inference service: the
 * software analogue of the hardware Fifo in core/fifo.h, with the same
 * semantics (bounded capacity, backpressure when full, occupancy
 * statistics) extended with blocking waits and a close() protocol for
 * shutdown. Producers choose between blocking push (backpressure) and
 * try_push (admission control / load shedding).
 */
#ifndef FLOWGNN_SERVE_BOUNDED_QUEUE_H
#define FLOWGNN_SERVE_BOUNDED_QUEUE_H

#include <optional>
#include <utility>

#include "core/fifo.h"
#include "core/sync.h"

namespace flowgnn {

/** Bounded multi-producer multi-consumer queue over a hardware Fifo. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : fifo_(capacity) {}

    /**
     * Blocks while the queue is full (backpressure), then enqueues.
     * Returns false only if the queue was closed.
     */
    bool
    push(T item)
    {
        UniqueLock lock(&mutex_);
        if (!closed_ && fifo_.full()) {
            ++waiting_producers_;
            not_full_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
                return closed_ || !fifo_.full();
            });
            --waiting_producers_;
        }
        if (closed_)
            return false;
        fifo_.push(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /** Non-blocking push: false on a full or closed queue (the item
     * is left intact so the caller can reject the request). */
    bool
    try_push(T &&item)
    {
        {
            MutexLock lock(&mutex_);
            if (closed_ || !fifo_.push(std::move(item)))
                return false;
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Blocks until an item is available or the queue is closed and
     * drained; nullopt signals the consumer to exit.
     */
    std::optional<T>
    pop()
    {
        UniqueLock lock(&mutex_);
        not_empty_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
            return closed_ || !fifo_.empty();
        });
        if (fifo_.empty())
            return std::nullopt;
        std::optional<T> item(fifo_.pop());
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /** Wakes all waiters; subsequent pushes fail, pops drain then end. */
    void
    close()
    {
        {
            MutexLock lock(&mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    std::size_t
    size() const
    {
        MutexLock lock(&mutex_);
        return fifo_.size();
    }

    std::size_t
    capacity() const
    {
        MutexLock lock(&mutex_);
        return fifo_.capacity();
    }

    /** Highest occupancy ever observed (queue-sizing studies). */
    std::size_t
    peak_occupancy() const
    {
        MutexLock lock(&mutex_);
        return fifo_.peak_occupancy();
    }

    /**
     * Producers currently blocked in push() waiting for space —
     * backpressure telemetry, and the deterministic synchronization
     * point tests use instead of sleeping ("wait until the producer
     * is provably blocked" rather than "sleep and hope").
     */
    std::size_t
    waiting_producers() const
    {
        MutexLock lock(&mutex_);
        return waiting_producers_;
    }

  private:
    mutable Mutex mutex_;
    CondVar not_full_;
    CondVar not_empty_;
    Fifo<T> fifo_ FLOWGNN_GUARDED_BY(mutex_);
    bool closed_ FLOWGNN_GUARDED_BY(mutex_) = false;
    std::size_t waiting_producers_ FLOWGNN_GUARDED_BY(mutex_) = 0;
};

} // namespace flowgnn

#endif // FLOWGNN_SERVE_BOUNDED_QUEUE_H
