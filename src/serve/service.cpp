#include "serve/service.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/telemetry.h"
#include "obs/trace_session.h"

namespace flowgnn {

InferenceService::InferenceService(const Model &model,
                                   EngineConfig engine_config,
                                   ServiceConfig service_config)
    : model_(model),
      engine_config_(engine_config),
      service_config_(service_config),
      queue_(service_config.queue_capacity == 0
                 ? 1
                 : service_config.queue_capacity),
      metrics_(service_config.metrics
                   ? service_config.metrics
                   : std::make_shared<obs::MetricsRegistry>()),
      requests_ctr_(metrics_->counter("serve.requests_total")),
      completed_ctr_(metrics_->counter("serve.completed_total")),
      failed_ctr_(metrics_->counter("serve.failed_total")),
      rejected_ctr_(metrics_->counter("serve.rejected_total")),
      latency_hist_(metrics_->histogram("serve.latency_ms"))
{
    // Fail fast: a malformed config must never reach replica threads.
    service_config_.validate();
    engine_config_.validate();
    service_config_.run_options.validate();

    replica_stats_.resize(service_config_.replicas);
    epoch_ = std::chrono::steady_clock::now();
    started_ = !service_config_.start_paused;
    workers_.reserve(service_config_.replicas);
    for (std::size_t r = 0; r < service_config_.replicas; ++r)
        workers_.emplace_back([this, r] { worker_loop(r); });
}

InferenceService::~InferenceService() { shutdown(); }

void
InferenceService::start()
{
    {
        MutexLock lock(&mutex_);
        if (started_)
            return;
        started_ = true;
    }
    unpark_.notify_all();
}

void
InferenceService::worker_loop(std::size_t replica)
{
    // Each replica is one accelerator instance plus its reusable
    // scratch memory: the steady-state hot path allocates nothing
    // graph-sized.
    Engine engine(model_, engine_config_);
    RunWorkspace workspace;

    {
        UniqueLock lock(&mutex_);
        unpark_.wait(lock,
                     [&]() FLOWGNN_REQUIRES(mutex_) { return started_; });
    }

    obs::TraceSession *named_for = nullptr; // row named once per session
    while (auto job = queue_.pop()) {
        obs::TraceSession *session = obs::TraceSession::current();
        std::uint64_t run_start_ns = 0;
        if (session) {
            if (session != named_for) {
                char row[32];
                std::snprintf(row, sizeof row, "replica %zu", replica);
                session->name_thread(obs::Track::kServe, row);
                named_for = session;
            }
            if (job->enq_ns != 0)
                session->span(obs::Track::kServe, "queue-wait",
                              job->enq_ns, session->now_ns());
            run_start_ns = session->now_ns();
        }

        auto begin = std::chrono::steady_clock::now();
        bool ok = true;
        RunResult result;
        std::exception_ptr error;
        try {
            result = engine.run(job->sample, job->opts, workspace);
        } catch (...) {
            ok = false;
            error = std::current_exception();
        }
        auto end = std::chrono::steady_clock::now();

        if (session) {
            session->span(obs::Track::kServe, ok ? "run" : "run (failed)",
                          run_start_ns, session->now_ns());
            // Drop the engine's cycle-domain unit trace onto the same
            // timeline, anchored at the instant this replica started
            // the modeled run.
            if (ok && !result.stats.trace.empty())
                session->add_cycle_trace(
                    result.stats.trace,
                    obs::CycleClockMap{run_start_ns,
                                       result.stats.clock_mhz});
        }

        // Record telemetry BEFORE fulfilling the promise: a caller
        // that calls stats() right after future.get() must see this
        // request counted.
        latency_hist_.record(ms_between(job->enqueued, end));
        completed_ctr_.add(ok);
        failed_ctr_.add(!ok);
        {
            MutexLock lock(&mutex_);
            ReplicaStats &rs = replica_stats_[replica];
            rs.completed += ok;
            rs.busy_ms += ms_between(begin, end);
            completed_ += ok;
            failed_ += !ok;
        }
        idle_.notify_all();

        if (ok)
            job->promise.set_value(std::move(result));
        else
            job->promise.set_exception(error);
    }
}

std::future<RunResult>
InferenceService::enqueue(GraphSample sample, const RunOptions &opts)
{
    opts.validate();
    InferenceJob job;
    job.sample = std::move(sample);
    job.opts = opts;
    job.enqueued = std::chrono::steady_clock::now();
    if (obs::TraceSession *session = obs::TraceSession::current())
        job.enq_ns = session->now_ns();
    std::future<RunResult> future = job.promise.get_future();
    requests_ctr_.add(1);

    // Count the request as accepted before it can possibly complete,
    // so drain()'s "all accepted work done" condition never observes
    // completed > submitted.
    {
        MutexLock lock(&mutex_);
        if (closed_)
            throw std::logic_error(
                "InferenceService: submit after shutdown");
        ++submitted_;
    }

    auto withdraw = [this](bool reject) {
        {
            MutexLock lock(&mutex_);
            --submitted_;
            rejected_ += reject;
        }
        rejected_ctr_.add(reject);
        idle_.notify_all();
    };

    if (service_config_.admission == AdmissionPolicy::kReject) {
        if (!queue_.try_push(std::move(job))) {
            withdraw(/*reject=*/true);
            throw ServiceOverloaded();
        }
    } else if (!queue_.push(std::move(job))) {
        withdraw(/*reject=*/false);
        throw std::logic_error(
            "InferenceService: submit after shutdown");
    }
    return future;
}

std::future<RunResult>
InferenceService::submit(GraphSample sample)
{
    return enqueue(std::move(sample), service_config_.run_options);
}

std::future<RunResult>
InferenceService::submit(GraphSample sample, const RunOptions &opts)
{
    return enqueue(std::move(sample), opts);
}

std::vector<std::future<RunResult>>
InferenceService::submit_batch(std::vector<GraphSample> samples)
{
    std::vector<std::future<RunResult>> futures;
    futures.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        try {
            futures.push_back(submit(std::move(samples[i])));
        } catch (const ServiceOverloaded &) {
            // Shed the tail, keep the accepted prefix's futures. The
            // overflowing sample was already counted rejected by
            // submit(); the unattempted tail is shed load too.
            rejected_ctr_.add(samples.size() - i - 1);
            MutexLock lock(&mutex_);
            rejected_ += samples.size() - i - 1;
            break;
        }
    }
    return futures;
}

void
InferenceService::drain()
{
    start(); // a paused service would otherwise never become idle
    UniqueLock lock(&mutex_);
    idle_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
        return completed_ + failed_ == submitted_;
    });
}

void
InferenceService::shutdown()
{
    {
        MutexLock lock(&mutex_);
        if (closed_)
            return;
        closed_ = true;
    }
    drain();
    queue_.close();
    for (std::thread &worker : workers_)
        worker.join();
    MutexLock lock(&mutex_);
    stop_time_ = std::chrono::steady_clock::now();
    stopped_ = true;
}

ServiceStats
InferenceService::stats() const
{
    MutexLock lock(&mutex_);
    ServiceStats out;
    out.submitted = submitted_;
    out.completed = completed_;
    out.failed = failed_;
    out.rejected = rejected_;
    auto end = stopped_ ? stop_time_ : std::chrono::steady_clock::now();
    out.uptime_ms = ms_between(epoch_, end);
    out.throughput_gps = out.uptime_ms <= 0.0
        ? 0.0
        : static_cast<double>(completed_) * 1e3 / out.uptime_ms;
    // Full-lifetime percentiles from the shared log-bucket histogram
    // (each within ~alpha relative error of exact; see obs/metrics.h).
    obs::HistogramSnapshot lat = latency_hist_.snapshot();
    out.p50_ms = lat.quantile(0.50);
    out.p95_ms = lat.quantile(0.95);
    out.p99_ms = lat.quantile(0.99);
    out.queue_peak_occupancy = queue_.peak_occupancy();
    out.queue_capacity = queue_.capacity();
    out.blocked_producers = queue_.waiting_producers();
    out.replicas = replica_stats_;
    for (ReplicaStats &rs : out.replicas)
        rs.utilization =
            out.uptime_ms <= 0.0 ? 0.0 : rs.busy_ms / out.uptime_ms;
    return out;
}

} // namespace flowgnn
