/**
 * @file
 * Consecutive-graph stream processing (the paper's deployment model:
 * "graphs are streamed in consecutively and processed on-the-fly").
 *
 * The StreamRunner models the board-level double buffering between the
 * HBM input DMA and the compute kernel: while graph i is being
 * computed, graph i+1's edge list and features are already loading, so
 * in steady state the stream runs at max(load, compute) cycles per
 * graph. Per-graph latency is unchanged (a single graph still pays
 * load + compute); only throughput improves.
 */
#ifndef FLOWGNN_SERVE_STREAM_H
#define FLOWGNN_SERVE_STREAM_H

#include "datasets/dataset.h"
#include "serve/service.h"

namespace flowgnn {

/** Aggregate results of a pipelined stream run. */
struct StreamRunStats {
    std::size_t graphs = 0;
    /** End-to-end cycles for the whole stream with load/compute
     * overlap across consecutive graphs. */
    std::uint64_t pipelined_cycles = 0;
    /** Cycles the same stream takes without cross-graph overlap. */
    std::uint64_t sequential_cycles = 0;
    /** Mean single-graph latency (load + compute), in cycles. */
    double avg_latency_cycles = 0.0;
    double avg_prediction = 0.0; ///< sanity signal for tests

    double
    throughput_speedup() const
    {
        return pipelined_cycles == 0
            ? 1.0
            : static_cast<double>(sequential_cycles) /
                  static_cast<double>(pipelined_cycles);
    }

    /** Graphs per second at the given kernel clock. */
    double
    graphs_per_second(double clock_mhz) const
    {
        if (pipelined_cycles == 0)
            return 0.0;
        return static_cast<double>(graphs) * clock_mhz * 1e6 /
               static_cast<double>(pipelined_cycles);
    }
};

/**
 * Runs a sample stream through an inference service with cross-graph
 * load/compute overlap (two-stage pipeline: DMA, then kernel).
 *
 * Samples are submitted asynchronously and the board-level timeline is
 * reconstructed from the per-run stats in submission order, so the
 * modeled cycle counts are bit-identical however many replicas the
 * service runs.
 */
class StreamRunner
{
  public:
    explicit StreamRunner(InferenceService &service) : service_(service)
    {
    }

    /** Processes `count` consecutive samples from the stream. */
    StreamRunStats run(SampleStream &stream, std::size_t count) const;

  private:
    InferenceService &service_;
};

} // namespace flowgnn

#endif // FLOWGNN_SERVE_STREAM_H
