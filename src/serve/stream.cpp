#include "serve/stream.h"

#include <algorithm>
#include <deque>
#include <future>

namespace flowgnn {

StreamRunStats
StreamRunner::run(SampleStream &stream, std::size_t count) const
{
    StreamRunStats out;
    out.graphs = count;
    if (count == 0)
        return out;

    service_.start(); // a paused service would never consume the queue

    // Two-stage pipeline timeline: the DMA engine loads graphs
    // back-to-back; the kernel starts graph i once both its load and
    // graph i-1's compute are finished.
    std::uint64_t load_done = 0;
    std::uint64_t compute_done = 0;
    double latency_sum = 0.0;
    double prediction_sum = 0.0;

    auto consume = [&](std::future<RunResult> future) {
        RunResult r = future.get();
        std::uint64_t load = r.stats.load_cycles;
        std::uint64_t compute = r.stats.total_cycles - load;

        load_done += load; // DMA is serialized across graphs
        std::uint64_t start = std::max(load_done, compute_done);
        compute_done = start + compute;

        out.sequential_cycles += r.stats.total_cycles;
        latency_sum += static_cast<double>(r.stats.total_cycles);
        prediction_sum += static_cast<double>(r.prediction);
    };

    // Keep at most queue_capacity requests outstanding: submission
    // then never finds the queue full, so the runner works under
    // either admission policy (and never materializes `count` futures
    // for a long stream). Results are consumed in submission order,
    // which is what the timeline reconstruction needs.
    const std::size_t max_inflight =
        std::max<std::size_t>(1, service_.queue_capacity());
    std::deque<std::future<RunResult>> inflight;
    for (std::size_t i = 0; i < count; ++i) {
        if (inflight.size() >= max_inflight) {
            consume(std::move(inflight.front()));
            inflight.pop_front();
        }
        inflight.push_back(service_.submit(stream.next()));
    }
    while (!inflight.empty()) {
        consume(std::move(inflight.front()));
        inflight.pop_front();
    }

    out.pipelined_cycles = compute_done;
    out.avg_latency_cycles = latency_sum / static_cast<double>(count);
    out.avg_prediction = prediction_sum / static_cast<double>(count);
    return out;
}

} // namespace flowgnn
