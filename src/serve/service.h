/**
 * @file
 * flowgnn::serve — the asynchronous multi-replica inference service.
 *
 * This is the one way to run graphs in deployment shape: a service
 * owns N identical engine replicas on worker threads behind a bounded
 * submission queue, callers submit raw COO samples and receive
 * std::future<RunResult>. Because every replica is a deterministic
 * cycle-stepped engine, results are bit-identical to a sequential
 * Engine::run loop regardless of replica count or scheduling — the
 * service changes throughput, never answers.
 *
 * Backpressure follows the paper's hardware discipline end to end:
 * the submission queue is a bounded FIFO exactly like the NT-to-MP
 * queues inside the engine, and a full queue either blocks the
 * producer (AdmissionPolicy::kBlock) or sheds the request
 * (AdmissionPolicy::kReject + ServiceOverloaded) — it never grows
 * unbounded.
 */
#ifndef FLOWGNN_SERVE_SERVICE_H
#define FLOWGNN_SERVE_SERVICE_H

#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/sync.h"
#include "obs/metrics.h"
#include "serve/bounded_queue.h"

namespace flowgnn {

/** Thrown by submit() when the queue is full under kReject. */
class ServiceOverloaded : public std::runtime_error
{
  public:
    ServiceOverloaded()
        : std::runtime_error("InferenceService: submission queue full")
    {
    }
};

/** What a full submission queue does to the next submit(). */
enum class AdmissionPolicy {
    kBlock,  ///< exert backpressure: submit() blocks until space frees
    kReject, ///< shed load: submit() throws ServiceOverloaded
};

/** Deployment shape of an InferenceService. */
struct ServiceConfig {
    /** Engine replicas (worker threads). Each owns one Engine plus a
     * reusable RunWorkspace, so steady-state serving does not allocate
     * per graph. */
    std::size_t replicas = 2;
    /** Bounded submission-queue capacity (requests, not bytes). */
    std::size_t queue_capacity = 64;
    AdmissionPolicy admission = AdmissionPolicy::kBlock;
    /** Default per-run options; submit() overloads can override. */
    RunOptions run_options{};
    /** Construct workers parked; no request is executed until start().
     * Lets tests and batch loaders fill the queue deterministically. */
    bool start_paused = false;
    /** Metrics sink. The service registers serve.* counters and the
     * serve.latency_ms histogram here; pass a shared registry (e.g.
     * obs::MetricsRegistry::global()) to aggregate with other
     * subsystems, or leave null for a private one. ServiceStats is a
     * typed view over these metrics either way. */
    std::shared_ptr<obs::MetricsRegistry> metrics;

    void
    validate() const
    {
        if (replicas == 0)
            throw std::invalid_argument(
                "ServiceConfig: replicas must be >= 1");
        if (queue_capacity == 0)
            throw std::invalid_argument(
                "ServiceConfig: queue_capacity must be >= 1");
    }
};

/** Per-replica share of the work, for utilization monitoring. */
struct ReplicaStats {
    std::size_t completed = 0;
    double busy_ms = 0.0;     ///< wall time spent inside Engine::run
    double utilization = 0.0; ///< busy_ms / service uptime
};

/** Aggregate service telemetry since construction. */
struct ServiceStats {
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;   ///< runs that ended in an exception
    std::size_t rejected = 0; ///< load shed under kReject
    double uptime_ms = 0.0;
    /** Completed graphs per second of wall time. */
    double throughput_gps = 0.0;
    /** Submit-to-completion wall latency percentiles (ms) over the
     * FULL service lifetime, read from the shared serve.latency_ms
     * log-bucketed histogram: O(1) memory regardless of request
     * count, and each reported quantile is within relative error
     * alpha (= obs::Histogram's default 1%) of the exact
     * order-statistic — see obs/metrics.h for the bound's
     * derivation. */
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    /** Highest submission-queue occupancy observed. */
    std::size_t queue_peak_occupancy = 0;
    std::size_t queue_capacity = 0;
    /** Producers blocked in submit() right now (kBlock backpressure
     * in action; always 0 under kReject). */
    std::size_t blocked_producers = 0;
    std::vector<ReplicaStats> replicas;
};

/** One queued request (internal; move-only because of the promise). */
struct InferenceJob {
    GraphSample sample;
    RunOptions opts;
    std::promise<RunResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    /** Submit instant in the installed TraceSession's clock (0 when
     * no session was installed at submit time); lets the replica emit
     * the queue-wait span on the request's true timeline. */
    std::uint64_t enq_ns = 0;
};

/**
 * Asynchronous multi-replica inference service over one model.
 *
 * The model and the service must outlive every returned future's
 * consumer; the engine config is the hardware shape shared by all
 * replicas and is validated at construction (fail fast, before any
 * thread spawns). Destruction drains accepted work, then joins.
 */
class InferenceService
{
  public:
    InferenceService(const Model &model, EngineConfig engine_config = {},
                     ServiceConfig service_config = {});
    ~InferenceService();

    InferenceService(const InferenceService &) = delete;
    InferenceService &operator=(const InferenceService &) = delete;

    /** Unparks the workers (no-op when already running). */
    void start();

    /**
     * Enqueues one graph with the service's default run options. The
     * future carries the RunResult, or the run's exception.
     */
    std::future<RunResult> submit(GraphSample sample);

    /** Enqueues one graph with explicit per-run options. */
    std::future<RunResult> submit(GraphSample sample,
                                  const RunOptions &opts);

    /**
     * Enqueues a batch, preserving order between samples & futures.
     * Under AdmissionPolicy::kReject a full queue ends the batch
     * early instead of throwing: the returned vector holds the
     * accepted prefix (compare its size against the batch to detect
     * shed samples), so handles to already-accepted work are never
     * lost. Every shed sample — the one that overflowed and the
     * unattempted tail behind it — counts in ServiceStats::rejected.
     */
    std::vector<std::future<RunResult>>
    submit_batch(std::vector<GraphSample> samples);

    /** Blocks until every accepted request has completed. */
    void drain();

    /** Drains, closes the queue, and joins the workers (idempotent). */
    void shutdown();

    ServiceStats stats() const;

    const EngineConfig &engine_config() const { return engine_config_; }
    std::size_t replica_count() const { return workers_.size(); }
    std::size_t queue_capacity() const { return queue_.capacity(); }

  private:
    void worker_loop(std::size_t replica);
    std::future<RunResult> enqueue(GraphSample sample,
                                   const RunOptions &opts);

    const Model &model_;
    EngineConfig engine_config_;
    ServiceConfig service_config_;
    BoundedQueue<InferenceJob> queue_;
    std::vector<std::thread> workers_;

    mutable Mutex mutex_; // guards everything below
    CondVar idle_;
    CondVar unpark_;
    bool started_ FLOWGNN_GUARDED_BY(mutex_) = false;
    bool closed_ FLOWGNN_GUARDED_BY(mutex_) = false;
    std::size_t submitted_ FLOWGNN_GUARDED_BY(mutex_) = 0;
    std::size_t completed_ FLOWGNN_GUARDED_BY(mutex_) = 0;
    std::size_t failed_ FLOWGNN_GUARDED_BY(mutex_) = 0;
    std::size_t rejected_ FLOWGNN_GUARDED_BY(mutex_) = 0;
    std::vector<ReplicaStats> replica_stats_ FLOWGNN_GUARDED_BY(mutex_);

    // Shared-registry metrics (declared after service_config_ so the
    // registry resolves first). The counters mirror the mutex-guarded
    // tallies above — those stay because drain()'s condition variable
    // needs a consistent submitted/completed view under mutex_.
    std::shared_ptr<obs::MetricsRegistry> metrics_;
    obs::Counter &requests_ctr_;
    obs::Counter &completed_ctr_;
    obs::Counter &failed_ctr_;
    obs::Counter &rejected_ctr_;
    obs::Histogram &latency_hist_;

    // epoch_ is written once in the constructor (before any worker
    // spawns) and immutable afterwards; stop_time_/stopped_ flip once
    // under mutex_ during shutdown().
    std::chrono::steady_clock::time_point epoch_;
    std::chrono::steady_clock::time_point stop_time_
        FLOWGNN_GUARDED_BY(mutex_);
    bool stopped_ FLOWGNN_GUARDED_BY(mutex_) = false;
};

} // namespace flowgnn

#endif // FLOWGNN_SERVE_SERVICE_H
