#include "shard/shard_plan.h"

#include <algorithm>
#include <utility>

#include "core/parallel.h"
#include "graph/streaming_partition.h"

namespace flowgnn {

namespace {

std::uint64_t
ceil_div(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

constexpr std::uint32_t kNotLocal = 0xFFFFFFFFu;

bool
strategy_uses_adjacency(ShardStrategy strategy)
{
    switch (strategy) {
      case ShardStrategy::kBfsContiguous:
      case ShardStrategy::kLdg:
      case ShardStrategy::kFennel:
      case ShardStrategy::kHdrf:
        return true;
      default:
        return false;
    }
}

} // namespace

const char *
shard_mode_name(ShardMode mode)
{
    switch (mode) {
      case ShardMode::kHaloReplication:
        return "halo";
      case ShardMode::kGhostExchange:
        return "ghost";
    }
    return "?";
}

std::vector<std::uint32_t>
shard_plan_assignment(const CooGraph &graph, const ShardConfig &config)
{
    return shard_plan_assignment(GraphRef(graph), config, 1);
}

std::vector<std::uint32_t>
shard_plan_assignment(const GraphRef &graph, const ShardConfig &config,
                      unsigned threads)
{
    // The adjacency-driven strategies all consume the same symmetrized
    // simple adjacency; build it once here so restreaming passes reuse
    // it instead of rebuilding per pass. Skipped when shard_assignment
    // would early-return without ever touching it.
    UndirectedCsr adj;
    const UndirectedCsr *adj_ptr = nullptr;
    if (strategy_uses_adjacency(config.strategy) &&
        graph.num_nodes() > 0 && config.num_shards > 1) {
        adj = build_undirected_csr(graph, threads);
        adj_ptr = &adj;
    }

    std::vector<std::uint32_t> assignment = shard_assignment(
        graph, config.num_shards, config.strategy, nullptr, adj_ptr,
        threads);
    // Restreaming refinement (Nishimura & Ugander): re-run the stream
    // with the previous pass as prior. Non-streaming strategies are
    // deterministic in the prior-free sense and return unchanged
    // assignments, so the loop is a no-op for them.
    for (std::uint32_t pass = 0; pass < config.restream_passes; ++pass) {
        std::vector<std::uint32_t> next =
            shard_assignment(graph, config.num_shards, config.strategy,
                             &assignment, adj_ptr, threads);
        if (next == assignment)
            break; // converged
        assignment = std::move(next);
    }
    return assignment;
}

std::uint32_t
message_hops(const Model &model)
{
    // Every stage that consumes neighbor state widens the receptive
    // field by one hop: NT-to-MP convs via their aggregated messages,
    // GAT via its gather rounds. Encoder-style stages (msg_dim == 0)
    // are node-local.
    std::uint32_t hops = 0;
    for (std::size_t i = 0; i < model.num_stages(); ++i)
        hops += model.stage(i).msg_dim() > 0;
    return hops;
}

ShardPlan
make_shard_plan(const Model &model, const GraphSample &prepared,
                const ShardConfig &config)
{
    return make_shard_plan(model, SampleRef(prepared), config, 1);
}

ShardPlan
make_shard_plan(const Model &model, const SampleRef &prepared,
                const ShardConfig &config, unsigned threads)
{
    config.validate();
    const NodeId n_nodes = prepared.num_nodes();
    const std::uint32_t num_shards = config.num_shards;
    const bool has_dgn = prepared.dgn_field != nullptr;

    ShardPlan plan;

    // The virtual node is bidirectionally connected to every node, so
    // any shard's 1-hop halo is the whole graph: replication would be
    // total. Such models keep the single-die path, as do trivial
    // shard counts and empty graphs.
    if (num_shards == 1 || model.uses_virtual_node() || n_nodes == 0) {
        ShardSlice slice;
        slice.info.owned_nodes = n_nodes;
        slice.info.subgraph_edges = prepared.num_edges();
        // Whole-graph resident footprint, same record shapes as the
        // sharded path so P=1 rows are comparable in benches.
        std::size_t whole_dim = prepared.node_dim;
        for (std::size_t i = 0; i < model.num_stages(); ++i)
            whole_dim = std::max(whole_dim, model.stage(i).out_dim());
        slice.info.resident_words =
            std::uint64_t(n_nodes) *
                (prepared.node_dim + 3 + has_dgn + 2 * whole_dim) +
            std::uint64_t(prepared.num_edges()) *
                (prepared.edge_dim + 2);
        plan.slices.push_back(std::move(slice));
        return plan;
    }

    plan.sharded = true;
    plan.assignment =
        shard_plan_assignment(prepared.graph, config, threads);
    plan.hops = message_hops(model);
    const CscGraph csc(prepared.graph, threads);

    const std::size_t node_dim = prepared.node_dim;
    const std::size_t edge_dim = prepared.edge_dim;
    const std::size_t n_edges = prepared.num_edges();

    // Widest embedding any stage materializes: sizes the double-
    // buffered per-node embedding store in the resident footprint.
    std::size_t max_dim = node_dim;
    for (std::size_t i = 0; i < model.num_stages(); ++i)
        max_dim = std::max(max_dim, model.stage(i).out_dim());

    // Full-graph degrees ship with every replicated node: a halo
    // node's local edge list is incomplete, and degree-normalized
    // layers (GCN/SGC) must see the true degrees.
    const std::vector<std::uint32_t> global_in_deg =
        prepared.graph.in_degrees(threads);
    const std::vector<std::uint32_t> global_out_deg =
        prepared.graph.out_degrees(threads);

    // ---- Extract each die's subgraph (closure in ascending global id
    // order, so a single-NT-unit die reproduces the full graph's
    // src-major message arrival order bit for bit). Shards are
    // independent, so extraction runs one shard per worker, each with
    // its own local-id scratch; the serial collection pass below keeps
    // slice order — and thus the whole plan — bit-identical to the
    // serial planner. ----
    std::vector<ShardSlice> extracted(num_shards);
    parallel_ranges(
        num_shards, threads,
        [&](std::size_t begin, std::size_t end, unsigned) {
            std::vector<std::uint32_t> local_of(n_nodes, kNotLocal);
            for (std::size_t s = begin; s < end; ++s) {
                ShardSlice &slice = extracted[s];
                slice.info.shard = static_cast<std::uint32_t>(s);
                slice.nodes = shard_closure(csc, plan.assignment,
                                            static_cast<std::uint32_t>(s),
                                            plan.hops);
                if (slice.nodes.empty())
                    continue; // nothing owned here (n < num_shards)

                for (std::uint32_t i = 0; i < slice.nodes.size(); ++i)
                    local_of[slice.nodes[i]] = i;

                GraphSample &sub = slice.sub;
                sub.graph.num_nodes =
                    static_cast<NodeId>(slice.nodes.size());
                sub.node_features = Matrix(slice.nodes.size(), node_dim);
                if (node_dim > 0)
                    for (std::size_t i = 0; i < slice.nodes.size(); ++i)
                        std::copy(prepared.node_row(slice.nodes[i]),
                                  prepared.node_row(slice.nodes[i]) +
                                      node_dim,
                                  sub.node_features.row(i));
                if (has_dgn) {
                    sub.dgn_field.resize(slice.nodes.size());
                    for (std::size_t i = 0; i < slice.nodes.size(); ++i)
                        sub.dgn_field[i] =
                            prepared.dgn_field[slice.nodes[i]];
                }
                sub.true_in_deg.resize(slice.nodes.size());
                sub.true_out_deg.resize(slice.nodes.size());
                for (std::size_t i = 0; i < slice.nodes.size(); ++i) {
                    sub.true_in_deg[i] = global_in_deg[slice.nodes[i]];
                    sub.true_out_deg[i] = global_out_deg[slice.nodes[i]];
                }

                // Induced edges, preserving global edge order (keeps
                // per-row CSR order identical to the full graph's).
                std::vector<EdgeId> kept;
                for (std::size_t e = 0; e < n_edges; ++e) {
                    const NodeId src = prepared.graph.src(e);
                    const NodeId dst = prepared.graph.dst(e);
                    if (local_of[src] == kNotLocal ||
                        local_of[dst] == kNotLocal)
                        continue;
                    kept.push_back(static_cast<EdgeId>(e));
                    sub.graph.edges.push_back(
                        {local_of[src], local_of[dst]});
                    slice.info.fetched_edges += plan.assignment[src] != s;
                }
                if (edge_dim > 0) {
                    sub.edge_features = Matrix(kept.size(), edge_dim);
                    for (std::size_t i = 0; i < kept.size(); ++i)
                        std::copy(prepared.edge_row(kept[i]),
                                  prepared.edge_row(kept[i]) + edge_dim,
                                  sub.edge_features.row(i));
                }

                slice.info.subgraph_edges = kept.size();
                for (NodeId g : slice.nodes)
                    slice.info.owned_nodes += plan.assignment[g] == s;
                slice.info.halo_nodes =
                    slice.nodes.size() - slice.info.owned_nodes;

                // Halo fetch: the die owns its nodes' features and the
                // edges sourced at them; everything else in its
                // subgraph crosses the inter-die link once. Per halo
                // node: features + id + its two true degrees (+ the
                // DGN field scalar when shipped); per fetched edge:
                // endpoints + features.
                std::uint64_t halo_node_words = node_dim + 3 + has_dgn;
                slice.info.halo_words =
                    std::uint64_t(slice.info.halo_nodes) *
                        halo_node_words +
                    std::uint64_t(slice.info.fetched_edges) *
                        (edge_dim + 2);
                if (slice.info.halo_words > 0)
                    slice.info.comm_cycles =
                        ceil_div(slice.info.halo_words,
                                 config.link.words_per_cycle) +
                        config.link.latency_cycles;

                // Resident footprint: the die keeps its whole closure's
                // node records, double-buffered embeddings at the
                // model's widest dim, and every subgraph edge record
                // for the full run.
                slice.info.resident_words =
                    std::uint64_t(slice.nodes.size()) *
                        (halo_node_words + 2 * max_dim) +
                    std::uint64_t(slice.info.subgraph_edges) *
                        (edge_dim + 2);

                for (NodeId g : slice.nodes)
                    local_of[g] = kNotLocal; // reset for the next shard
            }
        },
        /*serial_cutoff=*/2);

    plan.slices.reserve(num_shards);
    std::size_t closure_total = 0;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
        closure_total += extracted[s].nodes.size();
        if (!extracted[s].nodes.empty())
            plan.slices.push_back(std::move(extracted[s]));
    }

    plan.cut_edges =
        shard_cut_edges(prepared.graph, plan.assignment, threads);
    plan.replication_factor = static_cast<double>(closure_total) /
                              static_cast<double>(n_nodes);
    return plan;
}

ShardedRunResult
merge_shard_results(const Model &model, const GraphSample &prepared,
                    ShardPlan &&plan, std::vector<RunResult> &&results,
                    const LinkConfig &link)
{
    return merge_shard_results(model, SampleRef(prepared),
                               std::move(plan), std::move(results), link);
}

ShardedRunResult
merge_shard_results(const Model &model, const SampleRef &prepared,
                    ShardPlan &&plan, std::vector<RunResult> &&results,
                    const LinkConfig &link)
{
    if (results.size() != plan.slices.size())
        throw std::invalid_argument(
            "merge_shard_results: one result per slice required");

    ShardedRunResult out;
    if (!plan.sharded) {
        RunResult &r = results.front();
        out.embeddings = std::move(r.embeddings);
        out.prediction = r.prediction;
        ShardSlice &slice = plan.slices.front();
        slice.info.stats = r.stats;
        out.shards.push_back(std::move(slice.info));
        out.stats = std::move(r.stats);
        return out;
    }

    // ---- Merge: each node's embedding comes from its owning die. ----
    out.embeddings = Matrix(prepared.num_nodes(), model.embedding_dim());
    for (std::size_t t = 0; t < plan.slices.size(); ++t) {
        const ShardSlice &slice = plan.slices[t];
        for (std::size_t i = 0; i < slice.nodes.size(); ++i) {
            NodeId g = slice.nodes[i];
            if (plan.assignment[g] == slice.info.shard)
                out.embeddings.set_row(
                    g, results[t].embeddings.row_vec(i));
        }
    }
    Vec pooled = model.global_pool(out.embeddings, prepared.pool_nodes());
    out.prediction = model.head().forward(pooled)[0];

    std::vector<RunStats> per_shard;
    std::vector<std::uint64_t> comm;
    per_shard.reserve(plan.slices.size());
    comm.reserve(plan.slices.size());
    for (std::size_t t = 0; t < plan.slices.size(); ++t) {
        ShardSlice &slice = plan.slices[t];
        slice.info.stats = results[t].stats;
        per_shard.push_back(std::move(results[t].stats));
        comm.push_back(slice.info.comm_cycles);
        out.shards.push_back(std::move(slice.info));
    }
    out.stats = compose_shard_stats(per_shard, comm, link.overlap);
    out.cut_edges = plan.cut_edges;
    out.replication_factor = plan.replication_factor;
    return out;
}

} // namespace flowgnn
