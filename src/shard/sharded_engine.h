/**
 * @file
 * flowgnn::shard — multi-die sharded execution for graphs larger than
 * one die's buffers.
 *
 * A large COO graph is split into P shards by a node-to-die
 * assignment (graph/partition.h strategies). Each die receives its
 * owned nodes plus the L-hop in-neighborhood halo (L = the model's
 * message-passing depth) and runs the unmodified single-die engine on
 * that subgraph — the halo-replication recipe of distributed GNN
 * systems (Dorylus-style ghost vertices), realized here with engine
 * replicas on host threads. Because every owned node sees its
 * complete L-hop receptive field, the merged owned-node embeddings
 * are functionally equivalent to a single-engine run; with one NT
 * unit the message arrival order is src-major on both paths, so they
 * are bit-identical.
 *
 * Timing model: dies run concurrently; before compute, each die
 * fetches the halo slice it does not own (halo node features + the
 * non-owned part of its edge list) over an inter-die link of
 * LinkConfig bandwidth/latency. The composed RunStats takes the
 * slowest fetch+compute chain and counts the traffic as comm_cycles.
 */
#ifndef FLOWGNN_SHARD_SHARDED_ENGINE_H
#define FLOWGNN_SHARD_SHARDED_ENGINE_H

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/engine.h"
#include "graph/partition.h"

namespace flowgnn {

/** Inter-die link model (point-to-point, per die). */
struct LinkConfig {
    /** Words (4-byte) transferred per kernel cycle. Deliberately a
     * fraction of the 64 words/cycle HBM ingest the engine models:
     * die-to-die serial links are narrower than local memory. */
    std::uint32_t words_per_cycle = 16;
    /** Fixed per-transfer latency (link setup + flight time). */
    std::uint64_t latency_cycles = 500;

    void
    validate() const
    {
        if (words_per_cycle == 0)
            throw std::invalid_argument(
                "LinkConfig: words_per_cycle must be >= 1");
    }
};

/** Scale-out shape of a sharded engine. */
struct ShardConfig {
    /** Number of dies. 1 degenerates to single-engine execution. */
    std::uint32_t num_shards = 2;
    ShardStrategy strategy = ShardStrategy::kContiguous;
    LinkConfig link{};

    void
    validate() const
    {
        if (num_shards == 0)
            throw std::invalid_argument(
                "ShardConfig: num_shards must be >= 1");
        link.validate();
    }
};

/** Per-die breakdown of one sharded run. */
struct ShardInfo {
    std::uint32_t shard = 0;
    std::size_t owned_nodes = 0;
    std::size_t halo_nodes = 0;      ///< replicated (ghost) nodes
    std::size_t subgraph_edges = 0;  ///< edges in the die's subgraph
    std::size_t fetched_edges = 0;   ///< subgraph edges not owned here
    std::uint64_t comm_cycles = 0;   ///< halo fetch charged to this die
    RunStats stats;                  ///< the die's own engine stats
};

/** Output of one sharded run: the merged single-graph answer plus the
 * per-die breakdown and the partition-quality metrics. */
struct ShardedRunResult {
    /** Final node embeddings [num_nodes x embedding_dim], merged from
     * the owning die of every node. */
    Matrix embeddings;
    /** Graph-level prediction from the pooled head over the merge. */
    float prediction = 0.0f;
    /** Composed multi-die statistics (see compose_shard_stats). */
    RunStats stats;
    std::vector<ShardInfo> shards;
    std::size_t cut_edges = 0;
    double replication_factor = 1.0;

    double
    latency_ms() const
    {
        return stats.latency_ms();
    }
};

/**
 * Multi-die FlowGNN instance: one model, P identical engine dies.
 * Thread-safe for concurrent run() calls (each run owns its scratch).
 */
class ShardedEngine
{
  public:
    ShardedEngine(const Model &model, EngineConfig engine_config = {},
                  ShardConfig shard_config = {});

    const EngineConfig &engine_config() const { return engine_.config(); }
    const ShardConfig &shard_config() const { return shard_config_; }
    const Model &model() const { return model_; }

    /**
     * Runs one graph across all dies and merges the answer. Models
     * with a virtual node execute on a single die regardless of
     * num_shards: the virtual node is connected to every node, so its
     * 1-hop halo is the whole graph and sharding cannot help.
     */
    ShardedRunResult run(const GraphSample &sample,
                         const RunOptions &opts = {}) const;

    /**
     * The model's message-passing depth: how many stages consume
     * neighbor state, i.e. how many hops of halo a shard needs for
     * exact owned-node recomputation.
     */
    static std::uint32_t message_hops(const Model &model);

  private:
    const Model &model_;
    Engine engine_;
    ShardConfig shard_config_;
};

} // namespace flowgnn

#endif // FLOWGNN_SHARD_SHARDED_ENGINE_H
