/**
 * @file
 * flowgnn::shard — multi-die sharded execution for graphs larger than
 * one die's buffers.
 *
 * A large COO graph is split into P shards by a node-to-die
 * assignment (graph/partition.h strategies). Each die receives its
 * owned nodes plus the L-hop in-neighborhood halo (L = the model's
 * message-passing depth) and runs the unmodified single-die engine on
 * that subgraph — the halo-replication recipe of distributed GNN
 * systems (Dorylus-style ghost vertices), realized here with engine
 * replicas on host threads. Because every owned node sees its
 * complete L-hop receptive field, the merged owned-node embeddings
 * are functionally equivalent to a single-engine run; with one NT
 * unit the message arrival order is src-major on both paths, so they
 * are bit-identical.
 *
 * Timing model: dies run concurrently; each die fetches the halo
 * slice it does not own (halo node features + the non-owned part of
 * its edge list) over an inter-die link of LinkConfig
 * bandwidth/latency. By default the fetch serializes before compute;
 * LinkConfig::overlap hides it behind the die's input DMA instead.
 * The composed RunStats takes the slowest fetch+compute chain and
 * counts the traffic as comm_cycles.
 *
 * The planning/merging machinery lives in shard/shard_plan.h so the
 * die-pool scheduler (src/pool) can interleave slices of many graphs;
 * ShardedEngine is the one-job-uses-all-dies convenience wrapper.
 */
#ifndef FLOWGNN_SHARD_SHARDED_ENGINE_H
#define FLOWGNN_SHARD_SHARDED_ENGINE_H

#include "shard/shard_plan.h"

namespace flowgnn {

/**
 * Multi-die FlowGNN instance: one model, P identical engine dies.
 * Thread-safe for concurrent run() calls (each run owns its scratch).
 */
class ShardedEngine
{
  public:
    ShardedEngine(const Model &model, EngineConfig engine_config = {},
                  ShardConfig shard_config = {});

    const EngineConfig &engine_config() const { return engine_.config(); }
    const ShardConfig &shard_config() const { return shard_config_; }
    const Model &model() const { return model_; }

    /**
     * Runs one graph across all dies and merges the answer. Models
     * with a virtual node execute on a single die regardless of
     * num_shards: the virtual node is connected to every node, so its
     * 1-hop halo is the whole graph and sharding cannot help.
     */
    ShardedRunResult run(const GraphSample &sample,
                         const RunOptions &opts = {}) const;

    /**
     * The model's message-passing depth: how many stages consume
     * neighbor state, i.e. how many hops of halo a shard needs for
     * exact owned-node recomputation. (Alias of the free function in
     * shard_plan.h.)
     */
    static std::uint32_t message_hops(const Model &model);

  private:
    const Model &model_;
    Engine engine_;
    ShardConfig shard_config_;
};

} // namespace flowgnn

#endif // FLOWGNN_SHARD_SHARDED_ENGINE_H
