#include "shard/sharded_service.h"

#include <utility>

namespace flowgnn {

ShardedService::ShardedService(const Model &model,
                               EngineConfig engine_config,
                               ShardedServiceConfig config)
    : config_(config),
      small_(model, engine_config, config.service),
      sharded_(model, engine_config, config.shard),
      // small_'s constructor already validated config.service, so a
      // zero queue_capacity can't reach here.
      sharded_queue_(config.service.queue_capacity)
{
    // small_ and sharded_ already validated their slices; this guards
    // the combination before the sharded worker spawns.
    config_.validate();
    started_ = !config_.service.start_paused;
    sharded_worker_ = std::thread([this] { sharded_worker_loop(); });
}

ShardedService::~ShardedService() { shutdown(); }

void
ShardedService::start()
{
    small_.start();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (started_)
            return;
        started_ = true;
    }
    unpark_.notify_all();
}

void
ShardedService::sharded_worker_loop()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        unpark_.wait(lock, [&] { return started_; });
    }

    // One worker suffices: a sharded run already fans out across all
    // dies internally, so queued large graphs pipeline behind it
    // rather than fight it for the same dies.
    while (auto job = sharded_queue_.pop()) {
        bool ok = true;
        RunResult result;
        std::exception_ptr error;
        try {
            ShardedRunResult r = sharded_.run(job->sample, job->opts);
            result.embeddings = std::move(r.embeddings);
            result.prediction = r.prediction;
            result.stats = std::move(r.stats);
        } catch (...) {
            ok = false;
            error = std::current_exception();
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            sharded_completed_ += ok;
            sharded_failed_ += !ok;
        }
        idle_.notify_all();

        if (ok)
            job->promise.set_value(std::move(result));
        else
            job->promise.set_exception(error);
    }
}

std::future<RunResult>
ShardedService::submit(GraphSample sample)
{
    return submit(std::move(sample), config_.service.run_options);
}

std::future<RunResult>
ShardedService::submit(GraphSample sample, const RunOptions &opts)
{
    if (sample.num_nodes() < config_.shard_threshold_nodes)
        return small_.submit(std::move(sample), opts);

    opts.validate();
    InferenceJob job;
    job.sample = std::move(sample);
    job.opts = opts;
    job.enqueued = std::chrono::steady_clock::now();
    std::future<RunResult> future = job.promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            throw std::logic_error(
                "ShardedService: submit after shutdown");
        ++sharded_submitted_;
    }
    auto withdraw = [this](bool reject) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --sharded_submitted_;
            sharded_rejected_ += reject;
        }
        idle_.notify_all();
    };

    if (config_.service.admission == AdmissionPolicy::kReject) {
        if (!sharded_queue_.try_push(std::move(job))) {
            withdraw(/*reject=*/true);
            throw ServiceOverloaded();
        }
    } else if (!sharded_queue_.push(std::move(job))) {
        withdraw(/*reject=*/false);
        throw std::logic_error("ShardedService: submit after shutdown");
    }
    return future;
}

void
ShardedService::drain()
{
    start();
    small_.drain();
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [&] {
        return sharded_completed_ + sharded_failed_ == sharded_submitted_;
    });
}

void
ShardedService::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return;
        closed_ = true;
    }
    drain();
    sharded_queue_.close();
    sharded_worker_.join();
    small_.shutdown();
}

ShardedServiceStats
ShardedService::stats() const
{
    ShardedServiceStats out;
    out.small = small_.stats();
    std::lock_guard<std::mutex> lock(mutex_);
    out.sharded_submitted = sharded_submitted_;
    out.sharded_completed = sharded_completed_;
    out.sharded_failed = sharded_failed_;
    out.sharded_rejected = sharded_rejected_;
    return out;
}

} // namespace flowgnn
