#include "shard/sharded_service.h"

#include <utility>

namespace flowgnn {

ShardedService::ShardedService(const Model &model,
                               EngineConfig engine_config,
                               ShardedServiceConfig config)
    // validate() before the scheduler spawns die threads: a malformed
    // ShardConfig must fail at construction, not at first large submit.
    : config_((config.validate(), config)),
      scheduler_(model, engine_config, config.pool)
{
}

void
ShardedService::start()
{
    scheduler_.start();
}

std::future<RunResult>
ShardedService::submit(GraphSample sample)
{
    return submit(std::move(sample), config_.pool.run_options);
}

std::future<RunResult>
ShardedService::submit(GraphSample sample, const RunOptions &opts,
                       int priority)
{
    if (sample.num_nodes() < config_.shard_threshold_nodes)
        return scheduler_.submit(std::move(sample), opts, priority);
    return scheduler_.submit_sharded_as_run(std::move(sample),
                                            config_.shard, opts,
                                            priority);
}

void
ShardedService::drain()
{
    scheduler_.drain();
}

void
ShardedService::shutdown()
{
    scheduler_.shutdown();
}

PoolStats
ShardedService::stats() const
{
    return scheduler_.stats();
}

} // namespace flowgnn
