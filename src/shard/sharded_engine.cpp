#include "shard/sharded_engine.h"

#include <cstdio>
#include <exception>
#include <thread>
#include <utility>

#include "ghost/ghost_engine.h"
#include "obs/trace_session.h"

namespace flowgnn {

ShardedEngine::ShardedEngine(const Model &model, EngineConfig engine_config,
                             ShardConfig shard_config)
    : model_(model), engine_(model, engine_config),
      shard_config_(shard_config)
{
    shard_config_.validate();
}

std::uint32_t
ShardedEngine::message_hops(const Model &model)
{
    return flowgnn::message_hops(model);
}

ShardedRunResult
ShardedEngine::run(const GraphSample &sample, const RunOptions &opts) const
{
    opts.validate();
    GraphSample prepared = model_.prepare(sample);
    if (!prepared.consistent())
        throw std::invalid_argument("ShardedEngine: inconsistent sample");

    // Per-layer boundary exchange replaces halo replication entirely:
    // planning, execution, and composition all route through
    // src/ghost. Same result shape, same exactness contract.
    if (shard_config_.mode == ShardMode::kGhostExchange) {
        GhostPlan ghost_plan;
        {
            obs::Span span(obs::Track::kShard, "ghost plan");
            ghost_plan = make_ghost_plan(model_, prepared,
                                         shard_config_);
        }
        return run_ghost_plan(model_, engine_.config(), prepared,
                              std::move(ghost_plan), opts,
                              shard_config_.link);
    }

    ShardPlan plan;
    {
        obs::Span span(obs::Track::kShard, "shard plan");
        plan = make_shard_plan(model_, prepared, shard_config_);
    }
    std::vector<RunResult> results(plan.slices.size());

    if (!plan.sharded) {
        RunWorkspace ws;
        results[0] = engine_.run_prepared(prepared, opts, ws);
    } else {
        // ---- Run every die concurrently (the host-thread analogue of
        // P dies computing in parallel). Engine::run_prepared is const
        // and each thread owns its workspace. ----
        std::vector<std::exception_ptr> errors(plan.slices.size());
        {
            std::vector<std::thread> threads;
            threads.reserve(plan.slices.size());
            for (std::size_t t = 0; t < plan.slices.size(); ++t) {
                threads.emplace_back([&, t] {
                    try {
                        char nm[32];
                        std::snprintf(nm, sizeof nm, "slice %zu/%zu",
                                      t, plan.slices.size());
                        obs::Span span(obs::Track::kShard, nm);
                        RunWorkspace ws;
                        results[t] = engine_.run_prepared(
                            plan.slices[t].sub, opts, ws);
                    } catch (...) {
                        errors[t] = std::current_exception();
                    }
                });
            }
            for (std::thread &th : threads)
                th.join();
        }
        for (const std::exception_ptr &err : errors)
            if (err)
                std::rethrow_exception(err);
    }

    obs::Span span(obs::Track::kShard, "merge");
    return merge_shard_results(model_, prepared, std::move(plan),
                               std::move(results), shard_config_.link);
}

} // namespace flowgnn
