#include "shard/sharded_engine.h"

#include <algorithm>
#include <exception>
#include <thread>

namespace flowgnn {

namespace {

std::uint64_t
ceil_div(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

constexpr std::uint32_t kNotLocal = 0xFFFFFFFFu;

/** Everything one die needs for its run. */
struct ShardTask {
    std::vector<NodeId> nodes; ///< closure, ascending global ids
    GraphSample sub;
    ShardInfo info;
    RunResult result;
};

} // namespace

ShardedEngine::ShardedEngine(const Model &model, EngineConfig engine_config,
                             ShardConfig shard_config)
    : model_(model), engine_(model, engine_config),
      shard_config_(shard_config)
{
    shard_config_.validate();
}

std::uint32_t
ShardedEngine::message_hops(const Model &model)
{
    // Every stage that consumes neighbor state widens the receptive
    // field by one hop: NT-to-MP convs via their aggregated messages,
    // GAT via its gather rounds. Encoder-style stages (msg_dim == 0)
    // are node-local.
    std::uint32_t hops = 0;
    for (std::size_t i = 0; i < model.num_stages(); ++i)
        hops += model.stage(i).msg_dim() > 0;
    return hops;
}

ShardedRunResult
ShardedEngine::run(const GraphSample &sample, const RunOptions &opts) const
{
    opts.validate();
    GraphSample prepared = model_.prepare(sample);
    if (!prepared.consistent())
        throw std::invalid_argument("ShardedEngine: inconsistent sample");

    const NodeId n_nodes = prepared.num_nodes();
    const std::uint32_t num_shards = shard_config_.num_shards;

    // The virtual node is bidirectionally connected to every node, so
    // any shard's 1-hop halo is the whole graph: replication would be
    // total. Such models keep the single-die path.
    if (num_shards == 1 || model_.uses_virtual_node() || n_nodes == 0) {
        RunWorkspace ws;
        RunResult r = engine_.run_prepared(prepared, opts, ws);
        ShardedRunResult out;
        out.embeddings = std::move(r.embeddings);
        out.prediction = r.prediction;
        ShardInfo info;
        info.owned_nodes = n_nodes;
        info.subgraph_edges = prepared.num_edges();
        info.stats = r.stats;
        out.shards.push_back(std::move(info));
        out.stats = std::move(r.stats);
        return out;
    }

    const std::vector<std::uint32_t> assignment = shard_assignment(
        prepared.graph, num_shards, shard_config_.strategy);
    const std::uint32_t hops = message_hops(model_);
    const CscGraph csc(prepared.graph);

    const std::size_t node_dim = prepared.node_dim();
    const std::size_t edge_dim = prepared.edge_dim();

    // Full-graph degrees ship with every replicated node: a halo
    // node's local edge list is incomplete, and degree-normalized
    // layers (GCN/SGC) must see the true degrees.
    const std::vector<std::uint32_t> global_in_deg =
        prepared.graph.in_degrees();
    const std::vector<std::uint32_t> global_out_deg =
        prepared.graph.out_degrees();

    // ---- Extract each die's subgraph (closure in ascending global id
    // order, so a single-NT-unit die reproduces the full graph's
    // src-major message arrival order bit for bit). ----
    std::vector<ShardTask> tasks;
    tasks.reserve(num_shards);
    std::vector<std::uint32_t> local_of(n_nodes, kNotLocal);
    std::size_t closure_total = 0;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
        ShardTask task;
        task.info.shard = s;
        task.nodes = shard_closure(csc, assignment, s, hops);
        closure_total += task.nodes.size();
        if (task.nodes.empty())
            continue; // nothing owned here (more shards than nodes)

        for (std::uint32_t i = 0; i < task.nodes.size(); ++i)
            local_of[task.nodes[i]] = i;

        GraphSample &sub = task.sub;
        sub.graph.num_nodes = static_cast<NodeId>(task.nodes.size());
        sub.node_features = Matrix(task.nodes.size(), node_dim);
        for (std::size_t i = 0; i < task.nodes.size(); ++i)
            sub.node_features.set_row(
                i, prepared.node_features.row_vec(task.nodes[i]));
        if (!prepared.dgn_field.empty()) {
            sub.dgn_field.resize(task.nodes.size());
            for (std::size_t i = 0; i < task.nodes.size(); ++i)
                sub.dgn_field[i] = prepared.dgn_field[task.nodes[i]];
        }
        sub.true_in_deg.resize(task.nodes.size());
        sub.true_out_deg.resize(task.nodes.size());
        for (std::size_t i = 0; i < task.nodes.size(); ++i) {
            sub.true_in_deg[i] = global_in_deg[task.nodes[i]];
            sub.true_out_deg[i] = global_out_deg[task.nodes[i]];
        }

        // Induced edges, preserving global edge order (keeps per-row
        // CSR order identical to the full graph's).
        std::vector<EdgeId> kept;
        for (EdgeId e = 0; e < prepared.graph.edges.size(); ++e) {
            const Edge &edge = prepared.graph.edges[e];
            if (local_of[edge.src] == kNotLocal ||
                local_of[edge.dst] == kNotLocal)
                continue;
            kept.push_back(e);
            sub.graph.edges.push_back(
                {local_of[edge.src], local_of[edge.dst]});
            task.info.fetched_edges += assignment[edge.src] != s;
        }
        if (edge_dim > 0) {
            sub.edge_features = Matrix(kept.size(), edge_dim);
            for (std::size_t i = 0; i < kept.size(); ++i)
                sub.edge_features.set_row(
                    i, prepared.edge_features.row_vec(kept[i]));
        }

        task.info.subgraph_edges = kept.size();
        for (NodeId g : task.nodes)
            task.info.owned_nodes += assignment[g] == s;
        task.info.halo_nodes =
            task.nodes.size() - task.info.owned_nodes;

        // Halo fetch: the die owns its nodes' features and the edges
        // sourced at them; everything else in its subgraph crosses the
        // inter-die link once. Per halo node: features + id + its two
        // true degrees (+ the DGN field scalar when shipped); per
        // fetched edge: endpoints + features.
        std::uint64_t halo_node_words =
            node_dim + 3 + !prepared.dgn_field.empty();
        std::uint64_t words =
            std::uint64_t(task.info.halo_nodes) * halo_node_words +
            std::uint64_t(task.info.fetched_edges) * (edge_dim + 2);
        if (words > 0)
            task.info.comm_cycles =
                ceil_div(words, shard_config_.link.words_per_cycle) +
                shard_config_.link.latency_cycles;

        for (NodeId g : task.nodes)
            local_of[g] = kNotLocal; // reset for the next shard
        tasks.push_back(std::move(task));
    }

    // ---- Run every die concurrently (the host-thread analogue of P
    // dies computing in parallel). Engine::run_prepared is const and
    // each thread owns its workspace. ----
    std::vector<std::exception_ptr> errors(tasks.size());
    {
        std::vector<std::thread> threads;
        threads.reserve(tasks.size());
        for (std::size_t t = 0; t < tasks.size(); ++t) {
            threads.emplace_back([&, t] {
                try {
                    RunWorkspace ws;
                    tasks[t].result =
                        engine_.run_prepared(tasks[t].sub, opts, ws);
                } catch (...) {
                    errors[t] = std::current_exception();
                }
            });
        }
        for (std::thread &th : threads)
            th.join();
    }
    for (const std::exception_ptr &err : errors)
        if (err)
            std::rethrow_exception(err);

    // ---- Merge: each node's embedding comes from its owning die. ----
    ShardedRunResult out;
    out.embeddings = Matrix(n_nodes, model_.embedding_dim());
    for (ShardTask &task : tasks) {
        for (std::size_t i = 0; i < task.nodes.size(); ++i) {
            NodeId g = task.nodes[i];
            if (assignment[g] == task.info.shard)
                out.embeddings.set_row(g,
                                       task.result.embeddings.row_vec(i));
        }
    }
    Vec pooled =
        model_.global_pool(out.embeddings, prepared.pool_nodes());
    out.prediction = model_.head().forward(pooled)[0];

    std::vector<RunStats> per_shard;
    std::vector<std::uint64_t> comm;
    per_shard.reserve(tasks.size());
    comm.reserve(tasks.size());
    for (ShardTask &task : tasks) {
        task.info.stats = task.result.stats;
        per_shard.push_back(std::move(task.result.stats));
        comm.push_back(task.info.comm_cycles);
        out.shards.push_back(std::move(task.info));
    }
    out.stats = compose_shard_stats(per_shard, comm);
    out.cut_edges = shard_cut_edges(prepared.graph, assignment);
    out.replication_factor =
        static_cast<double>(closure_total) /
        static_cast<double>(n_nodes);
    return out;
}

} // namespace flowgnn
