/**
 * @file
 * ShardedService: the serve-layer entry point that makes graph size an
 * operational detail. Small graphs keep the multi-replica
 * InferenceService fast path (many graphs in flight, one die each);
 * graphs at or above the shard threshold route to a ShardedEngine
 * that spreads one graph across all dies. Either way callers submit a
 * GraphSample and receive a std::future<RunResult> with the same
 * admission-control semantics (kBlock backpressure / kReject +
 * ServiceOverloaded) on both paths.
 */
#ifndef FLOWGNN_SHARD_SHARDED_SERVICE_H
#define FLOWGNN_SHARD_SHARDED_SERVICE_H

#include <future>
#include <thread>

#include "serve/service.h"
#include "shard/sharded_engine.h"

namespace flowgnn {

/** Deployment shape of a ShardedService. */
struct ShardedServiceConfig {
    /**
     * Graphs with at least this many nodes run sharded; smaller ones
     * take the single-die fast path. The default is sized to the
     * paper's workloads: every Table IV sample is far below it, while
     * the scale-out graphs this subsystem exists for are far above.
     */
    std::size_t shard_threshold_nodes = 4096;
    ShardConfig shard{};
    /** Small-graph path shape; its admission policy and start_paused
     * flag also govern the sharded queue. */
    ServiceConfig service{};

    void
    validate() const
    {
        shard.validate();
        service.validate();
    }
};

/** Telemetry for both paths. */
struct ShardedServiceStats {
    /** The small-graph fast path (replica utilization etc.). */
    ServiceStats small;
    std::size_t sharded_submitted = 0;
    std::size_t sharded_completed = 0;
    std::size_t sharded_failed = 0;
    std::size_t sharded_rejected = 0;
};

/**
 * Two-path inference service over one model. The model must outlive
 * the service; destruction drains accepted work on both paths.
 */
class ShardedService
{
  public:
    ShardedService(const Model &model, EngineConfig engine_config = {},
                   ShardedServiceConfig config = {});
    ~ShardedService();

    ShardedService(const ShardedService &) = delete;
    ShardedService &operator=(const ShardedService &) = delete;

    /** Unparks both paths (no-op when already running). */
    void start();

    std::future<RunResult> submit(GraphSample sample);
    std::future<RunResult> submit(GraphSample sample,
                                  const RunOptions &opts);

    /** Blocks until every accepted request on both paths completed. */
    void drain();

    /** Drains, closes both queues, joins all workers (idempotent). */
    void shutdown();

    ShardedServiceStats stats() const;

    std::size_t shard_threshold() const
    {
        return config_.shard_threshold_nodes;
    }
    const ShardConfig &shard_config() const { return config_.shard; }

  private:
    void sharded_worker_loop();

    ShardedServiceConfig config_;
    InferenceService small_;
    ShardedEngine sharded_;
    BoundedQueue<InferenceJob> sharded_queue_;
    std::thread sharded_worker_;

    mutable std::mutex mutex_; // guards everything below
    std::condition_variable idle_;
    std::condition_variable unpark_;
    bool started_ = false;
    bool closed_ = false;
    std::size_t sharded_submitted_ = 0;
    std::size_t sharded_completed_ = 0;
    std::size_t sharded_failed_ = 0;
    std::size_t sharded_rejected_ = 0;
};

} // namespace flowgnn

#endif // FLOWGNN_SHARD_SHARDED_SERVICE_H
