/**
 * @file
 * ShardedService: the serve-layer entry point that makes graph size an
 * operational detail. Every submission routes into one flowgnn::pool
 * die pool: small graphs become one-die jobs (many in flight at once),
 * graphs at or above the shard threshold become multi-slice sharded
 * jobs — and the PoolScheduler interleaves both kinds over the same D
 * dies, so small traffic backfills whatever a sharded job leaves idle
 * (no dedicated worker, no partitioned replica set). Callers submit a
 * GraphSample and receive a std::future<RunResult> with the pool's
 * admission-control semantics (kBlock backpressure / kReject +
 * ServiceOverloaded) on both paths.
 */
#ifndef FLOWGNN_SHARD_SHARDED_SERVICE_H
#define FLOWGNN_SHARD_SHARDED_SERVICE_H

#include "pool/scheduler.h"

namespace flowgnn {

/** Deployment shape of a ShardedService. */
struct ShardedServiceConfig {
    /**
     * Graphs with at least this many nodes run sharded; smaller ones
     * run whole on one die. The default is sized to the paper's
     * workloads: every Table IV sample is far below it, while the
     * scale-out graphs this subsystem exists for are far above.
     */
    std::size_t shard_threshold_nodes = 4096;
    /** How large graphs are split (num_shards is clamped to the
     * pool's die count at submission). */
    ShardConfig shard{};
    /** The die pool both paths draw from: die count, scheduling
     * policy, admission control, queue bound. */
    PoolConfig pool{};

    void
    validate() const
    {
        shard.validate();
        pool.validate();
    }
};

/**
 * Size-routing inference service over one model and one die pool. The
 * model must outlive the service; destruction drains accepted work.
 */
class ShardedService
{
  public:
    ShardedService(const Model &model, EngineConfig engine_config = {},
                   ShardedServiceConfig config = {});

    ShardedService(const ShardedService &) = delete;
    ShardedService &operator=(const ShardedService &) = delete;

    /** Unparks the pool (no-op when already running). */
    void start();

    std::future<RunResult> submit(GraphSample sample);
    std::future<RunResult> submit(GraphSample sample,
                                  const RunOptions &opts,
                                  int priority = 0);

    /** Blocks until every accepted request completed. */
    void drain();

    /** Drains, closes admission, joins the dies (idempotent). */
    void shutdown();

    /** Pool telemetry: per-path counters (`fast` = small graphs,
     * `sharded` = large), die utilization, queueing delay, occupancy. */
    PoolStats stats() const;

    std::size_t shard_threshold() const
    {
        return config_.shard_threshold_nodes;
    }
    const ShardConfig &shard_config() const { return config_.shard; }
    std::size_t num_dies() const { return scheduler_.num_dies(); }
    const PoolScheduler &scheduler() const { return scheduler_; }

  private:
    ShardedServiceConfig config_;
    PoolScheduler scheduler_;
};

} // namespace flowgnn

#endif // FLOWGNN_SHARD_SHARDED_SERVICE_H
