/**
 * @file
 * Shard planning and merging: the reusable core of multi-die
 * execution, shared by ShardedEngine (one job, all dies) and the
 * flowgnn::pool scheduler (many jobs interleaved over a die pool).
 *
 * A plan splits one prepared GraphSample into P die-local slices
 * (owned nodes + L-hop halo closure, L = the model's message-passing
 * depth) and prices each slice's halo fetch over the inter-die link.
 * Each slice is an independent engine run; merging the per-slice
 * results reproduces the single-engine answer (bit-identically with
 * one NT unit, since closures preserve ascending global id order).
 * Keeping planning separate from execution is what lets a scheduler
 * dispatch slices of *different* graphs onto whichever dies are free.
 *
 * Units: every *_cycles field below is kernel cycles at the die's
 * configured clock (EngineConfig::clock_mhz); every *_words field is
 * 4-byte words. Effective P: a plan may hold fewer slices than
 * ShardConfig::num_shards requested (empty closures are dropped, e.g.
 * n < P); plan.slices.size() is the authoritative effective P, and
 * every downstream layer — merge_shard_results, the composed
 * RunStats::die_cycles, pool die leases — agrees with it.
 */
#ifndef FLOWGNN_SHARD_SHARD_PLAN_H
#define FLOWGNN_SHARD_SHARD_PLAN_H

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/engine.h"
#include "graph/partition.h"

namespace flowgnn {

/** Inter-die link model (point-to-point, per die). */
struct LinkConfig {
    /** Words (4-byte) transferred per kernel cycle. Deliberately a
     * fraction of the 64 words/cycle HBM ingest the engine models:
     * die-to-die serial links are narrower than local memory. */
    std::uint32_t words_per_cycle = 16;
    /** Fixed per-transfer latency (link setup + flight time), in
     * kernel cycles at the die clock. */
    std::uint64_t latency_cycles = 500;
    /**
     * Overlap the halo fetch with the die's input DMA instead of
     * serializing it in front of compute: the per-die chain becomes
     * max(comm, load_prefix) + compute_remainder (see
     * compose_shard_stats). Off by default — the conservative model
     * where the link transfer must finish before the die starts.
     */
    bool overlap = false;

    void
    validate() const
    {
        if (words_per_cycle == 0)
            throw std::invalid_argument(
                "LinkConfig: words_per_cycle must be >= 1");
    }
};

/**
 * How shards cooperate across layers.
 *
 * - kHaloReplication: each die statically replicates its owned nodes'
 *   L-hop closure and runs the whole model independently — one up-front
 *   halo fetch, no mid-run traffic, but replication approaches P on
 *   dense power-law graphs (capacity escape hatch, not a speedup).
 * - kGhostExchange: each die keeps only its 0-hop subgraph plus a
 *   one-deep ghost fringe and exchanges boundary embeddings over the
 *   link after every message-passing layer (the Dorylus-style
 *   scatter) — per-layer traffic, but per-die state stays ~n/P.
 */
enum class ShardMode {
    kHaloReplication,
    kGhostExchange,
};

const char *shard_mode_name(ShardMode mode);

/** Scale-out shape of a sharded job. */
struct ShardConfig {
    /** Number of dies. 1 degenerates to single-engine execution. */
    std::uint32_t num_shards = 2;
    ShardStrategy strategy = ShardStrategy::kContiguous;
    ShardMode mode = ShardMode::kHaloReplication;
    LinkConfig link{};
    /** Extra restreaming passes for the streaming partitioners
     * (LDG/Fennel/HDRF): each pass re-runs the stream with the
     * previous assignment as prior (Nishimura & Ugander), typically
     * shrinking the cut. Ignored by non-streaming strategies. */
    std::uint32_t restream_passes = 0;

    void
    validate() const
    {
        if (num_shards == 0)
            throw std::invalid_argument(
                "ShardConfig: num_shards must be >= 1");
        link.validate();
    }
};

/** Per-die breakdown of one sharded run. */
struct ShardInfo {
    /** Original shard index from the assignment (stable even when
     * empty slices were dropped, so it may skip values). */
    std::uint32_t shard = 0;
    std::size_t owned_nodes = 0;
    std::size_t halo_nodes = 0;      ///< replicated (ghost) nodes
    std::size_t subgraph_edges = 0;  ///< edges in the die's subgraph
    std::size_t fetched_edges = 0;   ///< subgraph edges not owned here
    std::uint64_t halo_words = 0;    ///< 4-byte words over the link
    /** Link cycles charged to this die: the one-shot halo fetch
     * (halo mode) or the sum over per-layer boundary exchanges (ghost
     * mode), at LinkConfig::words_per_cycle plus latency_cycles per
     * transfer. 0 for the die of a non-sharded plan. */
    std::uint64_t comm_cycles = 0;
    /** Ghost mode: total words this die sends across all per-layer
     * exchanges (owned boundary embeddings, one copy per consuming
     * die). 0 in halo mode. */
    std::uint64_t exchange_send_words = 0;
    /** Ghost mode: total words this die receives across all per-layer
     * exchanges (its ghost set's embeddings, each layer). 0 in halo
     * mode. */
    std::uint64_t exchange_recv_words = 0;
    /** Peak die-local memory footprint in 4-byte words: node records +
     * double-buffered embeddings + edge records for everything the die
     * keeps resident. The capacity axis of the halo-vs-ghost tradeoff
     * (halo replicates closures; ghost keeps ~n/P plus a fringe). */
    std::uint64_t resident_words = 0;
    RunStats stats;                  ///< the die's own engine stats
};

/** Output of one sharded run: the merged single-graph answer plus the
 * per-die breakdown and the partition-quality metrics. */
struct ShardedRunResult {
    /** Final node embeddings [num_nodes x embedding_dim], merged from
     * the owning die of every node. */
    Matrix embeddings;
    /** Graph-level prediction from the pooled head over the merge. */
    float prediction = 0.0f;
    /** Composed multi-die statistics (see compose_shard_stats). */
    RunStats stats;
    std::vector<ShardInfo> shards;
    std::size_t cut_edges = 0;
    double replication_factor = 1.0;

    double
    latency_ms() const
    {
        return stats.latency_ms();
    }
};

/**
 * One die's share of a sharded job: the closure node list (ascending
 * global ids), the extracted subgraph sample the die actually runs,
 * and the halo-fetch price. For a non-sharded plan the slice carries
 * bookkeeping only and executors run the full prepared sample.
 */
struct ShardSlice {
    std::vector<NodeId> nodes; ///< closure, ascending global ids
    GraphSample sub;           ///< die-local subgraph (sharded plans)
    ShardInfo info;
};

/**
 * The execution recipe for one graph across up to P dies. Slices are
 * independent: any die can run any slice at any time, which is the
 * property the pool scheduler exploits to interleave jobs.
 */
struct ShardPlan {
    /** False: the job runs whole on a single die (num_shards == 1,
     * virtual-node models, or empty graphs) and `slices` holds one
     * bookkeeping-only entry. */
    bool sharded = false;
    std::vector<ShardSlice> slices; ///< >= 1; only non-empty closures
    std::vector<std::uint32_t> assignment; ///< node -> shard owner
    std::uint32_t hops = 0;                ///< halo depth used
    std::size_t cut_edges = 0;
    double replication_factor = 1.0;
};

/**
 * The model's message-passing depth: how many stages consume neighbor
 * state, i.e. how many hops of halo a shard needs for exact owned-node
 * recomputation.
 */
std::uint32_t message_hops(const Model &model);

/**
 * Plans one prepared sample (Model::prepare already applied) across
 * `config.num_shards` dies. Falls back to a single-die plan for
 * virtual-node models (the VN's 1-hop halo is the whole graph), one
 * shard, or empty graphs. Shards whose closure is empty (more shards
 * than nodes) are dropped, so the plan may hold fewer slices than
 * requested.
 */
ShardPlan make_shard_plan(const Model &model, const GraphSample &prepared,
                          const ShardConfig &config);

/**
 * SampleRef overload, the canonical planner: works off a borrowed view
 * (notably io::GraphView::sample for mmap-backed graphs), so planning
 * a full-scale graph never materializes a second in-memory copy of it.
 * `threads` parallelizes the host-side stages — the adjacency builds,
 * the degree counts, and the per-shard closure/extraction loop (each
 * worker carries its own local-id scratch) — with results bit-identical
 * to the serial plan for every thread count (0 = all cores). The ref's
 * backing must stay alive for the duration of the call.
 */
ShardPlan make_shard_plan(const Model &model, const SampleRef &prepared,
                          const ShardConfig &config, unsigned threads = 0);

/**
 * The node -> shard assignment a plan for `config` would use:
 * shard_assignment under the configured strategy, plus
 * `config.restream_passes` prior-seeded restreaming refinement passes
 * for the streaming strategies. Shared by the halo planner and
 * make_ghost_plan so both modes shard identically.
 */
std::vector<std::uint32_t> shard_plan_assignment(const CooGraph &graph,
                                                 const ShardConfig &config);

/**
 * GraphRef overload, the canonical implementation. For the
 * adjacency-driven strategies (LDG/Fennel/HDRF/BFS) the undirected CSR
 * is built ONCE and reused across every restreaming pass — previously
 * each pass rebuilt it from scratch, which dominated multi-pass
 * partitioning on large graphs. Assignments are bit-identical to the
 * CooGraph overload for every thread count.
 */
std::vector<std::uint32_t> shard_plan_assignment(const GraphRef &graph,
                                                 const ShardConfig &config,
                                                 unsigned threads = 0);

/**
 * Merges per-slice engine results (same order as plan.slices) into the
 * single-graph answer: owned-node embeddings, pooled head prediction,
 * and composed multi-die RunStats (overlap mode per `link.overlap`).
 * Consumes the plan's slice metadata into the result's breakdown.
 */
ShardedRunResult merge_shard_results(const Model &model,
                                     const GraphSample &prepared,
                                     ShardPlan &&plan,
                                     std::vector<RunResult> &&results,
                                     const LinkConfig &link);

/** SampleRef overload (canonical; the GraphSample one delegates). */
ShardedRunResult merge_shard_results(const Model &model,
                                     const SampleRef &prepared,
                                     ShardPlan &&plan,
                                     std::vector<RunResult> &&results,
                                     const LinkConfig &link);

} // namespace flowgnn

#endif // FLOWGNN_SHARD_SHARD_PLAN_H
