#include "tensor/fixed_point.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace flowgnn {

double
FixedPointFormat::ulp() const
{
    return std::ldexp(1.0, -frac_bits);
}

double
FixedPointFormat::max_value() const
{
    return std::ldexp(1.0, int_bits() - 1) - ulp();
}

double
FixedPointFormat::min_value() const
{
    return -std::ldexp(1.0, int_bits() - 1);
}

bool
FixedPointFormat::valid() const
{
    return total_bits >= 2 && total_bits <= 32 && frac_bits >= 0 &&
           frac_bits < total_bits;
}

const char *
FixedPointFormat::name_into(char *buffer, std::size_t size) const
{
    std::snprintf(buffer, size, "Q%d.%d", total_bits, frac_bits);
    return buffer;
}

float
quantize(float value, const FixedPointFormat &format)
{
    double scaled = static_cast<double>(value) / format.ulp();
    double rounded = std::nearbyint(scaled) * format.ulp();
    double clamped =
        std::clamp(rounded, format.min_value(), format.max_value());
    return static_cast<float>(clamped);
}

void
quantize_inplace(Vec &values, const FixedPointFormat &format)
{
    quantize_inplace(values.data(), values.size(), format);
}

void
quantize_inplace(float *values, std::size_t count,
                 const FixedPointFormat &format)
{
    for (std::size_t i = 0; i < count; ++i)
        values[i] = quantize(values[i], format);
}

} // namespace flowgnn
