#include "tensor/mlp.h"

#include <stdexcept>

namespace flowgnn {

Mlp::Mlp(const std::vector<std::size_t> &dims, Activation hidden_activation,
         Activation final_activation)
    : hidden_activation_(hidden_activation),
      final_activation_(final_activation)
{
    if (dims.size() < 2)
        throw std::invalid_argument("Mlp: need at least two dims");
    for (std::size_t i = 0; i + 1 < dims.size(); ++i)
        layers_.emplace_back(dims[i], dims[i + 1]);
}

void
Mlp::init_glorot(Rng &rng)
{
    for (auto &layer : layers_)
        layer.init_glorot(rng);
}

Vec
Mlp::forward(const Vec &x) const
{
    Vec h = x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        h = layers_[i].forward(h);
        bool is_last = (i + 1 == layers_.size());
        apply_activation(h, is_last ? final_activation_ : hidden_activation_);
    }
    return h;
}

std::size_t
Mlp::in_dim() const
{
    return layers_.empty() ? 0 : layers_.front().in_dim();
}

std::size_t
Mlp::out_dim() const
{
    return layers_.empty() ? 0 : layers_.back().out_dim();
}

std::size_t
Mlp::macs() const
{
    std::size_t total = 0;
    for (const auto &layer : layers_)
        total += layer.macs();
    return total;
}

} // namespace flowgnn
