#include "tensor/matrix.h"

#include <algorithm>
#include <stdexcept>

namespace flowgnn {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Vec
Matrix::row_vec(std::size_t r) const
{
    assert(r < rows_);
    return Vec(row(r), row(r) + cols_);
}

void
Matrix::set_row(std::size_t r, const Vec &v)
{
    if (v.size() != cols_)
        throw std::invalid_argument("Matrix::set_row: dimension mismatch");
    std::copy(v.begin(), v.end(), row(r));
}

void
Matrix::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

} // namespace flowgnn
