/**
 * @file
 * Dense row-major matrix and vector types used throughout the library.
 *
 * These are deliberately small and dependency-free: FlowGNN's workloads
 * are many small graphs with embedding dimensions of 16-100, so a
 * cache-friendly contiguous buffer with simple loops is both sufficient
 * and easy to keep bit-identical between the reference library and the
 * dataflow engine.
 */
#ifndef FLOWGNN_TENSOR_MATRIX_H
#define FLOWGNN_TENSOR_MATRIX_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace flowgnn {

/** Dense float vector. Alias kept simple so slices interoperate with STL. */
using Vec = std::vector<float>;

/**
 * Dense row-major matrix of floats.
 *
 * Rows are contiguous so a row can be exposed as a cheap span for the
 * per-node embedding operations that dominate GNN compute.
 */
class Matrix
{
  public:
    Matrix() = default;

    /** Creates a rows x cols matrix initialized to the given value. */
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &
    operator()(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float
    operator()(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /** Pointer to the first element of row r. */
    float *
    row(std::size_t r)
    {
        assert(r < rows_);
        return data_.data() + r * cols_;
    }

    const float *
    row(std::size_t r) const
    {
        assert(r < rows_);
        return data_.data() + r * cols_;
    }

    /** Copies row r into a standalone vector. */
    Vec row_vec(std::size_t r) const;

    /** Overwrites row r with the given vector (must match cols()). */
    void set_row(std::size_t r, const Vec &v);

    /** Sets every element to the given value. */
    void fill(float value);

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    bool operator==(const Matrix &other) const = default;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace flowgnn

#endif // FLOWGNN_TENSOR_MATRIX_H
