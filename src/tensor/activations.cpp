#include "tensor/activations.h"

#include <algorithm>
#include <cmath>

namespace flowgnn {

const char *
activation_name(Activation act)
{
    switch (act) {
      case Activation::kIdentity: return "identity";
      case Activation::kRelu: return "relu";
      case Activation::kLeakyRelu: return "leaky_relu";
      case Activation::kElu: return "elu";
      case Activation::kSigmoid: return "sigmoid";
      case Activation::kTanh: return "tanh";
    }
    return "unknown";
}

float
activate(float x, Activation act)
{
    switch (act) {
      case Activation::kIdentity:
        return x;
      case Activation::kRelu:
        return x > 0.0f ? x : 0.0f;
      case Activation::kLeakyRelu:
        return x > 0.0f ? x : 0.2f * x;
      case Activation::kElu:
        return x > 0.0f ? x : std::expm1(x);
      case Activation::kSigmoid:
        return 1.0f / (1.0f + std::exp(-x));
      case Activation::kTanh:
        return std::tanh(x);
    }
    return x;
}

void
apply_activation(Vec &x, Activation act)
{
    if (act == Activation::kIdentity)
        return;
    for (auto &v : x)
        v = activate(v, act);
}

Vec
activated(const Vec &x, Activation act)
{
    Vec out = x;
    apply_activation(out, act);
    return out;
}

Vec
softmax(const Vec &x)
{
    Vec out(x.size());
    if (x.empty())
        return out;
    float mx = *std::max_element(x.begin(), x.end());
    float total = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = std::exp(x[i] - mx);
        total += out[i];
    }
    for (auto &v : out)
        v /= total;
    return out;
}

} // namespace flowgnn
