#include "tensor/linear.h"

#include <cmath>
#include <stdexcept>

namespace flowgnn {

Linear::Linear(std::size_t in_dim, std::size_t out_dim)
    : in_dim_(in_dim), out_dim_(out_dim), weight_(out_dim, in_dim),
      bias_(out_dim, 0.0f)
{
}

void
Linear::init_glorot(Rng &rng)
{
    double limit = std::sqrt(6.0 / static_cast<double>(in_dim_ + out_dim_));
    for (std::size_t o = 0; o < out_dim_; ++o)
        for (std::size_t i = 0; i < in_dim_; ++i)
            weight_(o, i) = static_cast<float>(rng.uniform(-limit, limit));
    for (auto &b : bias_)
        b = static_cast<float>(rng.uniform(-limit, limit) * 0.1);
}

Vec
Linear::forward(const Vec &x) const
{
    Vec out = bias_;
    accumulate(out, x, 0, x.size());
    return out;
}

void
Linear::accumulate(Vec &acc, const Vec &x, std::size_t begin,
                   std::size_t end) const
{
    if (x.size() != in_dim_)
        throw std::invalid_argument("Linear: input dimension mismatch");
    if (acc.size() != out_dim_)
        throw std::invalid_argument("Linear: accumulator dimension mismatch");
    if (end > x.size() || begin > end)
        throw std::invalid_argument("Linear: bad accumulate range");
    // Input-stationary: each input element updates the entire output
    // vector, mirroring the NT unit's accumulate phase.
    for (std::size_t i = begin; i < end; ++i) {
        float xi = x[i];
        for (std::size_t o = 0; o < out_dim_; ++o)
            acc[o] += weight_(o, i) * xi;
    }
}

} // namespace flowgnn
