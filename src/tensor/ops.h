/**
 * @file
 * Element-wise and reduction operations on Vec and Matrix.
 *
 * The dataflow engine and the reference library both call these
 * helpers so that floating-point operation order is identical, which
 * lets tests assert bit-exact equality between the two.
 */
#ifndef FLOWGNN_TENSOR_OPS_H
#define FLOWGNN_TENSOR_OPS_H

#include "tensor/matrix.h"

namespace flowgnn {

/** y += x (element-wise). Sizes must match. */
void add_inplace(Vec &y, const Vec &x);

/** y += a * x (element-wise). Sizes must match. */
void axpy_inplace(Vec &y, float a, const Vec &x);

/** Returns x + y. */
Vec add(const Vec &x, const Vec &y);

/** Returns x - y. */
Vec sub(const Vec &x, const Vec &y);

/** y *= a. */
void scale_inplace(Vec &y, float a);

/** Returns a * x. */
Vec scale(const Vec &x, float a);

/** Element-wise max into y. */
void max_inplace(Vec &y, const Vec &x);

/** Element-wise min into y. */
void min_inplace(Vec &y, const Vec &x);

/** Dot product. Sizes must match. */
float dot(const Vec &x, const Vec &y);

/** Sum of elements. */
float sum(const Vec &x);

/** Concatenates vectors in order. */
Vec concat(const std::vector<Vec> &parts);

/** L2 norm. */
float norm2(const Vec &x);

/** Maximum absolute element-wise difference between two vectors. */
float max_abs_diff(const Vec &x, const Vec &y);

/** Maximum absolute element-wise difference between two matrices. */
float max_abs_diff(const Matrix &x, const Matrix &y);

} // namespace flowgnn

#endif // FLOWGNN_TENSOR_OPS_H
