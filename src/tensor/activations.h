/**
 * @file
 * Activation functions and softmax used by the GNN layer kernels.
 */
#ifndef FLOWGNN_TENSOR_ACTIVATIONS_H
#define FLOWGNN_TENSOR_ACTIVATIONS_H

#include "tensor/matrix.h"

namespace flowgnn {

/** Supported activation kinds for configurable layers. */
enum class Activation {
    kIdentity,
    kRelu,
    kLeakyRelu, ///< slope 0.2, matching the GAT paper.
    kElu,
    kSigmoid,
    kTanh,
};

/** Human-readable name of an activation kind. */
const char *activation_name(Activation act);

/** Applies the activation element-wise in place. */
void apply_activation(Vec &x, Activation act);

/** Scalar activation evaluation. */
float activate(float x, Activation act);

/** Returns the activated copy of x. */
Vec activated(const Vec &x, Activation act);

/**
 * Numerically stable softmax over x (subtracts the max before
 * exponentiation). Used for GAT attention normalization.
 */
Vec softmax(const Vec &x);

} // namespace flowgnn

#endif // FLOWGNN_TENSOR_ACTIVATIONS_H
