#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flowgnn {

namespace {

void
check_same_size(const Vec &x, const Vec &y, const char *what)
{
    if (x.size() != y.size())
        throw std::invalid_argument(std::string(what) + ": size mismatch");
}

} // namespace

void
add_inplace(Vec &y, const Vec &x)
{
    check_same_size(y, x, "add_inplace");
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] += x[i];
}

void
axpy_inplace(Vec &y, float a, const Vec &x)
{
    check_same_size(y, x, "axpy_inplace");
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] += a * x[i];
}

Vec
add(const Vec &x, const Vec &y)
{
    Vec out = x;
    add_inplace(out, y);
    return out;
}

Vec
sub(const Vec &x, const Vec &y)
{
    check_same_size(x, y, "sub");
    Vec out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = x[i] - y[i];
    return out;
}

void
scale_inplace(Vec &y, float a)
{
    for (auto &v : y)
        v *= a;
}

Vec
scale(const Vec &x, float a)
{
    Vec out = x;
    scale_inplace(out, a);
    return out;
}

void
max_inplace(Vec &y, const Vec &x)
{
    check_same_size(y, x, "max_inplace");
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = std::max(y[i], x[i]);
}

void
min_inplace(Vec &y, const Vec &x)
{
    check_same_size(y, x, "min_inplace");
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = std::min(y[i], x[i]);
}

float
dot(const Vec &x, const Vec &y)
{
    check_same_size(x, y, "dot");
    float acc = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += x[i] * y[i];
    return acc;
}

float
sum(const Vec &x)
{
    float acc = 0.0f;
    for (float v : x)
        acc += v;
    return acc;
}

Vec
concat(const std::vector<Vec> &parts)
{
    std::size_t total = 0;
    for (const auto &p : parts)
        total += p.size();
    Vec out;
    out.reserve(total);
    for (const auto &p : parts)
        out.insert(out.end(), p.begin(), p.end());
    return out;
}

float
norm2(const Vec &x)
{
    return std::sqrt(dot(x, x));
}

float
max_abs_diff(const Vec &x, const Vec &y)
{
    check_same_size(x, y, "max_abs_diff");
    float m = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i)
        m = std::max(m, std::abs(x[i] - y[i]));
    return m;
}

float
max_abs_diff(const Matrix &x, const Matrix &y)
{
    if (x.rows() != y.rows() || x.cols() != y.cols())
        throw std::invalid_argument("max_abs_diff: shape mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i)
        m = std::max(m, std::abs(x.data()[i] - y.data()[i]));
    return m;
}

} // namespace flowgnn
