/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * weight initialization and synthetic dataset generation.
 *
 * All randomness in the library flows through Rng so that every test,
 * example, and benchmark is bit-reproducible across runs and platforms.
 */
#ifndef FLOWGNN_TENSOR_RNG_H
#define FLOWGNN_TENSOR_RNG_H

#include <cstdint>
#include <vector>

namespace flowgnn {

/**
 * xoshiro256** deterministic PRNG.
 *
 * Chosen over std::mt19937 because its output sequence is fully
 * specified here (libstdc++/libc++ distributions are not guaranteed to
 * match), keeping cross-checks bit-stable.
 */
class Rng
{
  public:
    /** Seeds the generator; the same seed always yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniform_index(std::uint64_t n);

    /** Standard normal variate (Box–Muller; deterministic pairing). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Fisher–Yates shuffle of an index vector. */
    void shuffle(std::vector<std::uint32_t> &values);

  private:
    std::uint64_t state_[4];
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace flowgnn

#endif // FLOWGNN_TENSOR_RNG_H
