#include "tensor/rng.h"

#include <cmath>
#include <stdexcept>

namespace flowgnn {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed through splitmix64 as recommended by the
    // xoshiro authors; guarantees a non-zero state.
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniform_index(std::uint64_t n)
{
    if (n == 0)
        throw std::invalid_argument("Rng::uniform_index: n must be > 0");
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // index ranges used here and keeps the stream deterministic.
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n))
           % n;
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller transform; u1 in (0,1] to avoid log(0).
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

void
Rng::shuffle(std::vector<std::uint32_t> &values)
{
    for (std::size_t i = values.size(); i > 1; --i) {
        std::size_t j = uniform_index(i);
        std::swap(values[i - 1], values[j]);
    }
}

} // namespace flowgnn
