/**
 * @file
 * Fixed-point arithmetic emulation.
 *
 * The FlowGNN HLS kernels compute in ap_fixed rather than fp32; the
 * paper's functional guarantee is a cross-check against fp32 PyTorch
 * within tolerance. This module provides a runtime-configurable
 * Q-format quantizer so the engine can emulate the fixed-point
 * datapath and the precision ablation can measure accuracy loss per
 * format (see bench_precision_ablation).
 */
#ifndef FLOWGNN_TENSOR_FIXED_POINT_H
#define FLOWGNN_TENSOR_FIXED_POINT_H

#include <cstdint>

#include "tensor/matrix.h"

namespace flowgnn {

/**
 * Signed Q-format: total_bits wide with frac_bits fractional bits
 * (ap_fixed<total_bits, total_bits - frac_bits> in Vitis terms).
 * Values quantize by round-to-nearest and saturate at the
 * representable range.
 */
struct FixedPointFormat {
    int total_bits = 16;
    int frac_bits = 10;

    /** Integer bits including the sign. */
    int int_bits() const { return total_bits - frac_bits; }

    /** Size of one quantization step. */
    double ulp() const;

    /** Largest representable value. */
    double max_value() const;

    /** Smallest (most negative) representable value. */
    double min_value() const;

    /** True if the format is usable (>= 2 bits, frac fits). */
    bool valid() const;

    /** Short name like "Q16.10". */
    const char *name_into(char *buffer, std::size_t size) const;
};

/** Quantizes one value: round to nearest step, saturate to range. */
float quantize(float value, const FixedPointFormat &format);

/** Quantizes a vector in place. */
void quantize_inplace(Vec &values, const FixedPointFormat &format);

/** Quantizes a buffer in place. */
void quantize_inplace(float *values, std::size_t count,
                      const FixedPointFormat &format);

/** Common formats used by HLS GNN accelerators. */
inline constexpr FixedPointFormat kFixed16_10{16, 10}; ///< ap_fixed<16,6>
inline constexpr FixedPointFormat kFixed12_8{12, 8};
inline constexpr FixedPointFormat kFixed8_4{8, 4};

} // namespace flowgnn

#endif // FLOWGNN_TENSOR_FIXED_POINT_H
