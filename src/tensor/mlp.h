/**
 * @file
 * Multi-layer perceptron built from Linear layers, used for GIN node
 * transformations and for model prediction heads.
 */
#ifndef FLOWGNN_TENSOR_MLP_H
#define FLOWGNN_TENSOR_MLP_H

#include <vector>

#include "tensor/activations.h"
#include "tensor/linear.h"

namespace flowgnn {

/**
 * MLP with a hidden activation applied between layers (not after the
 * final layer unless final_activation is set).
 */
class Mlp
{
  public:
    Mlp() = default;

    /**
     * Builds an MLP with the given layer widths, e.g. {80, 40, 20, 1}
     * creates Linear(80,40) -> act -> Linear(40,20) -> act ->
     * Linear(20,1).
     */
    Mlp(const std::vector<std::size_t> &dims,
        Activation hidden_activation = Activation::kRelu,
        Activation final_activation = Activation::kIdentity);

    void init_glorot(Rng &rng);

    Vec forward(const Vec &x) const;

    std::size_t in_dim() const;
    std::size_t out_dim() const;
    std::size_t num_layers() const { return layers_.size(); }
    const Linear &layer(std::size_t i) const { return layers_.at(i); }
    Linear &layer(std::size_t i) { return layers_.at(i); }
    Activation hidden_activation() const { return hidden_activation_; }

    /** Total multiply-accumulates per forward pass. */
    std::size_t macs() const;

  private:
    std::vector<Linear> layers_;
    Activation hidden_activation_ = Activation::kRelu;
    Activation final_activation_ = Activation::kIdentity;
};

} // namespace flowgnn

#endif // FLOWGNN_TENSOR_MLP_H
