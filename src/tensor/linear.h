/**
 * @file
 * Fully-connected (linear) layer with deterministic initialization.
 *
 * The forward pass is written in the same input-stationary order the
 * FlowGNN NT unit uses on the FPGA (each input element updates the
 * whole output vector), so reference and engine results are
 * bit-identical.
 */
#ifndef FLOWGNN_TENSOR_LINEAR_H
#define FLOWGNN_TENSOR_LINEAR_H

#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace flowgnn {

/**
 * Linear layer: y = W x + b with W of shape [out_dim x in_dim].
 */
class Linear
{
  public:
    Linear() = default;

    /** Creates a layer with zero weights. */
    Linear(std::size_t in_dim, std::size_t out_dim);

    /** Glorot-uniform initialization using the provided RNG stream. */
    void init_glorot(Rng &rng);

    std::size_t in_dim() const { return in_dim_; }
    std::size_t out_dim() const { return out_dim_; }

    /**
     * Forward pass in input-stationary order: out starts at the bias
     * and each input element accumulates its weight column.
     */
    Vec forward(const Vec &x) const;

    /**
     * Partial input-stationary accumulation: folds inputs
     * [begin, end) of x into acc. Calling with the full range starting
     * from a bias-initialized acc equals forward(). The NT unit uses
     * this to model Papply-wide accumulation.
     */
    void accumulate(Vec &acc, const Vec &x, std::size_t begin,
                    std::size_t end) const;

    /** Returns a copy of the bias; the starting value for accumulate. */
    Vec bias() const { return bias_; }

    Matrix &weight() { return weight_; }
    const Matrix &weight() const { return weight_; }
    Vec &bias_ref() { return bias_; }

    /** Number of multiply-accumulate operations per forward pass. */
    std::size_t macs() const { return in_dim_ * out_dim_; }

  private:
    std::size_t in_dim_ = 0;
    std::size_t out_dim_ = 0;
    Matrix weight_; ///< [out_dim x in_dim]
    Vec bias_;
};

} // namespace flowgnn

#endif // FLOWGNN_TENSOR_LINEAR_H
