/**
 * @file
 * flowgnn::pool — the machine's die resources as a schedulable pool.
 *
 * A DiePool owns D identical accelerator dies (one Engine replica plus
 * its reusable RunWorkspace each) and accounts for their leases: which
 * dies are busy, the pool's occupancy over time, and per-die
 * utilization. It makes no scheduling decisions — that is the
 * PoolScheduler's job (pool/scheduler.h); the split keeps "what
 * resources exist" separate from "who gets them next", so policies can
 * change without touching the resource accounting.
 */
#ifndef FLOWGNN_POOL_DIE_POOL_H
#define FLOWGNN_POOL_DIE_POOL_H

#include <chrono>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/sync.h"

namespace flowgnn {

/** Per-die share of the pool's work, for utilization monitoring.
 * Times are wall-clock milliseconds (host time, not modeled kernel
 * cycles — the modeled counterpart is pool/schedule_sim.h). */
struct DieStats {
    std::size_t leases = 0;   ///< tasks executed on this die
    double busy_ms = 0.0;     ///< wall ms spent leased
    double utilization = 0.0; ///< busy_ms / pool uptime, in [0, 1]
};

/** One busy-count transition: after `t_ms` (wall ms since the pool's
 * epoch), `busy` dies were leased. The sequence is the pool's
 * occupancy timeline — the ground truth for "did jobs actually
 * overlap". */
struct OccupancyPoint {
    double t_ms = 0.0;
    std::size_t busy = 0;
};

/**
 * D leasable dies. Lease accounting is thread-safe; the engines
 * themselves are handed out by index and must only be driven by the
 * die's current lease holder (the scheduler guarantees one task per
 * die at a time).
 */
class DiePool
{
  public:
    DiePool(const Model &model, EngineConfig engine_config,
            std::uint32_t num_dies);

    DiePool(const DiePool &) = delete;
    DiePool &operator=(const DiePool &) = delete;

    std::size_t size() const { return dies_.size(); }
    Engine &engine(std::size_t die) { return dies_[die]->engine; }
    RunWorkspace &workspace(std::size_t die) { return dies_[die]->ws; }

    /** Restarts the uptime epoch (a paused scheduler calls this on
     * start() so utilization ignores the parked interval). */
    void reset_epoch();

    /** Marks die `die` busy from now until release(). */
    void lease(std::size_t die);
    void release(std::size_t die);

    std::size_t busy() const;
    /** Highest number of simultaneously leased dies ever observed. */
    std::size_t peak_busy() const;
    double uptime_ms() const;

    /** Per-die lease counts, busy time, and utilization of uptime. */
    std::vector<DieStats> die_stats() const;

    /** The most recent occupancy transitions (bounded window). */
    std::vector<OccupancyPoint> occupancy_timeline() const;

  private:
    struct Die {
        Die(const Model &model, EngineConfig config)
            : engine(model, config)
        {
        }
        Engine engine;
        RunWorkspace ws;
        // lease_start and stats are guarded by the pool's mutex_ —
        // a nested struct cannot name the enclosing instance's
        // capability in GUARDED_BY, so the contract is prose here and
        // checked at the DiePool member functions that touch them
        // (all hold mutex_).
        std::chrono::steady_clock::time_point lease_start{};
        DieStats stats;
    };

    void record_occupancy(std::chrono::steady_clock::time_point now)
        FLOWGNN_REQUIRES(mutex_);

    // The dies_ vector itself is immutable after construction (no
    // push/pop post-ctor), which is what makes the unlocked engine() /
    // workspace() accessors sound: they hand out stable references and
    // the scheduler guarantees one lease holder per die.
    std::vector<std::unique_ptr<Die>> dies_;

    mutable Mutex mutex_; // guards everything below
    std::chrono::steady_clock::time_point epoch_
        FLOWGNN_GUARDED_BY(mutex_);
    std::size_t busy_ FLOWGNN_GUARDED_BY(mutex_) = 0;
    std::size_t peak_busy_ FLOWGNN_GUARDED_BY(mutex_) = 0;
    std::vector<OccupancyPoint> occupancy_
        FLOWGNN_GUARDED_BY(mutex_); ///< ring of transitions
    std::size_t occupancy_cursor_ FLOWGNN_GUARDED_BY(mutex_) = 0;
};

} // namespace flowgnn

#endif // FLOWGNN_POOL_DIE_POOL_H
