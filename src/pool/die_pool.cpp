#include "pool/die_pool.h"

#include <stdexcept>

#include "core/telemetry.h"

namespace flowgnn {

namespace {

/** Occupancy transitions kept: enough to reconstruct the recent
 * schedule shape without growing with pool lifetime. */
constexpr std::size_t kOccupancyWindow = 4096;

} // namespace

DiePool::DiePool(const Model &model, EngineConfig engine_config,
                 std::uint32_t num_dies)
{
    if (num_dies == 0)
        throw std::invalid_argument("DiePool: num_dies must be >= 1");
    engine_config.validate();
    dies_.reserve(num_dies);
    for (std::uint32_t d = 0; d < num_dies; ++d)
        dies_.push_back(std::make_unique<Die>(model, engine_config));
    epoch_ = std::chrono::steady_clock::now();
}

void
DiePool::reset_epoch()
{
    MutexLock lock(&mutex_);
    epoch_ = std::chrono::steady_clock::now();
    for (auto &die : dies_) {
        die->stats.busy_ms = 0.0;
        die->stats.leases = 0;
    }
    occupancy_.clear();
    occupancy_cursor_ = 0;
}

void
DiePool::record_occupancy(std::chrono::steady_clock::time_point now)
{
    OccupancyPoint point{ms_between(epoch_, now), busy_};
    if (occupancy_.size() < kOccupancyWindow) {
        occupancy_.push_back(point);
    } else {
        occupancy_[occupancy_cursor_] = point;
        occupancy_cursor_ = (occupancy_cursor_ + 1) % kOccupancyWindow;
    }
}

void
DiePool::lease(std::size_t die)
{
    MutexLock lock(&mutex_);
    // Timestamp under the lock so the occupancy timeline stays
    // monotonic (two dies transitioning concurrently must append in
    // the order they serialize).
    auto now = std::chrono::steady_clock::now();
    Die &d = *dies_[die];
    d.lease_start = now;
    ++d.stats.leases;
    ++busy_;
    peak_busy_ = std::max(peak_busy_, busy_);
    record_occupancy(now);
}

void
DiePool::release(std::size_t die)
{
    MutexLock lock(&mutex_);
    auto now = std::chrono::steady_clock::now();
    Die &d = *dies_[die];
    d.stats.busy_ms += ms_between(d.lease_start, now);
    --busy_;
    record_occupancy(now);
}

std::size_t
DiePool::busy() const
{
    MutexLock lock(&mutex_);
    return busy_;
}

std::size_t
DiePool::peak_busy() const
{
    MutexLock lock(&mutex_);
    return peak_busy_;
}

double
DiePool::uptime_ms() const
{
    MutexLock lock(&mutex_);
    return ms_between(epoch_, std::chrono::steady_clock::now());
}

std::vector<DieStats>
DiePool::die_stats() const
{
    MutexLock lock(&mutex_);
    double uptime = ms_between(epoch_, std::chrono::steady_clock::now());
    std::vector<DieStats> out;
    out.reserve(dies_.size());
    for (const auto &die : dies_) {
        DieStats stats = die->stats;
        stats.utilization = uptime <= 0.0 ? 0.0 : stats.busy_ms / uptime;
        out.push_back(stats);
    }
    return out;
}

std::vector<OccupancyPoint>
DiePool::occupancy_timeline() const
{
    MutexLock lock(&mutex_);
    std::vector<OccupancyPoint> out;
    out.reserve(occupancy_.size());
    // Oldest-first: the ring's cursor points at the oldest entry once
    // the window has wrapped.
    for (std::size_t i = 0; i < occupancy_.size(); ++i)
        out.push_back(
            occupancy_[(occupancy_cursor_ + i) % occupancy_.size()]);
    return out;
}

} // namespace flowgnn
