#include "pool/schedule_sim.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace flowgnn {

namespace {

constexpr std::uint64_t kNever =
    std::numeric_limits<std::uint64_t>::max();

struct JobState {
    const SimJob *job = nullptr;
    std::size_t next_task = 0;
    std::size_t done_tasks = 0;
    bool dispatched_any = false;

    std::size_t
    remaining() const
    {
        return job->task_cycles.size() - next_task;
    }
    bool
    pending() const
    {
        return next_task < job->task_cycles.size();
    }
};

} // namespace

double
SimResult::utilization() const
{
    if (makespan == 0 || die_busy.empty())
        return 0.0;
    std::uint64_t busy = 0;
    for (std::uint64_t b : die_busy)
        busy += b;
    return static_cast<double>(busy) /
           (static_cast<double>(die_busy.size()) *
            static_cast<double>(makespan));
}

SimResult
simulate_pool_schedule(const std::vector<SimJob> &jobs,
                       std::uint32_t num_dies, PoolPolicy policy,
                       std::uint64_t aging_cycles)
{
    if (num_dies == 0)
        throw std::invalid_argument(
            "simulate_pool_schedule: num_dies must be >= 1");
    for (const SimJob &job : jobs) {
        if (job.task_cycles.empty())
            throw std::invalid_argument(
                "simulate_pool_schedule: job with no tasks");
        if (job.task_cycles.size() > num_dies)
            throw std::invalid_argument(
                "simulate_pool_schedule: job wider than the pool");
    }

    SimResult out;
    out.die_busy.assign(num_dies, 0);
    out.start_.assign(jobs.size(), 0);
    out.finish_.assign(jobs.size(), 0);

    std::vector<JobState> states(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        states[j].job = &jobs[j];

    // free_at[d]: the cycle die d finishes its current task (0 = idle).
    std::vector<std::uint64_t> free_at(num_dies, 0);
    std::vector<std::size_t> die_job(num_dies, 0);
    std::vector<bool> die_busy_now(num_dies, false);

    // FIFO admission order = arrival order (stable for equal arrivals).
    std::vector<std::size_t> order(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        order[j] = j;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return jobs[a].arrival < jobs[b].arrival;
                     });

    std::uint64_t now = 0;
    std::size_t done_jobs = 0;
    while (done_jobs < jobs.size()) {
        // ---- Dispatch everything pickable at `now` (same selection
        // rules as PoolScheduler::try_pick, re-evaluated after every
        // dispatch because idle-die counts change). ----
        for (;;) {
            std::size_t idle = 0;
            for (std::uint32_t d = 0; d < num_dies; ++d)
                idle += !die_busy_now[d];
            if (idle == 0)
                break;

            std::size_t pick = jobs.size(); // none
            if (policy == PoolPolicy::kPriority) {
                long best_eff = 0;
                for (std::size_t j : order) {
                    const JobState &st = states[j];
                    if (!st.pending() || jobs[j].arrival > now)
                        continue;
                    long eff = jobs[j].priority;
                    if (aging_cycles > 0)
                        eff += static_cast<long>(
                            (now - jobs[j].arrival) / aging_cycles);
                    if (pick == jobs.size() || eff > best_eff) {
                        pick = j;
                        best_eff = eff;
                    }
                }
            } else {
                for (std::size_t j : order) {
                    JobState &st = states[j];
                    if (!st.pending() || jobs[j].arrival > now)
                        continue;
                    if (st.dispatched_any ||
                        policy == PoolPolicy::kSpaceShare) {
                        pick = j;
                        break;
                    }
                    if (idle >= st.remaining()) {
                        pick = j;
                        break;
                    }
                    break; // gang head-of-line block
                }
            }
            if (pick == jobs.size())
                break;

            JobState &st = states[pick];
            if (!st.dispatched_any) {
                st.dispatched_any = true;
                out.start_[pick] = now;
            }
            std::uint64_t cycles = st.job->task_cycles[st.next_task++];
            std::uint32_t die = 0;
            while (die_busy_now[die])
                ++die;
            die_busy_now[die] = true;
            free_at[die] = now + cycles;
            die_job[die] = pick;
            out.die_busy[die] += cycles;
        }

        // ---- Advance to the next event: a die completing or the
        // next arrival that could unblock a dispatch. ----
        std::uint64_t next = kNever;
        for (std::uint32_t d = 0; d < num_dies; ++d)
            if (die_busy_now[d])
                next = std::min(next, free_at[d]);
        for (std::size_t j = 0; j < jobs.size(); ++j)
            if (states[j].pending() && jobs[j].arrival > now)
                next = std::min(next, jobs[j].arrival);
        if (next == kNever)
            throw std::logic_error(
                "simulate_pool_schedule: stalled schedule");
        now = next;

        for (std::uint32_t d = 0; d < num_dies; ++d) {
            if (die_busy_now[d] && free_at[d] <= now) {
                die_busy_now[d] = false;
                JobState &st = states[die_job[d]];
                ++st.done_tasks;
                if (st.done_tasks == st.job->task_cycles.size()) {
                    out.finish_[die_job[d]] = free_at[d];
                    out.makespan =
                        std::max(out.makespan, free_at[d]);
                    ++done_jobs;
                }
            }
        }
    }
    return out;
}

} // namespace flowgnn
