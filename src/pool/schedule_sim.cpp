#include "pool/schedule_sim.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace flowgnn {

namespace {

constexpr std::uint64_t kNever =
    std::numeric_limits<std::uint64_t>::max();

struct JobState {
    const SimJob *job = nullptr;
    std::size_t next_task = 0;
    std::size_t done_tasks = 0;
    bool dispatched_any = false;
    /** Cycles still owed per task; grows by the checkpoint overhead
     * on each preemption. */
    std::vector<std::uint64_t> owed;
    /** Preempted tasks waiting to resume (LIFO, like the live pool). */
    std::vector<std::size_t> requeued;
    std::uint64_t abs_deadline = kNever;

    std::size_t
    remaining() const
    {
        return job->task_cycles.size() - next_task + requeued.size();
    }
    bool
    pending() const
    {
        return remaining() > 0;
    }
    /** Longest still-owed undispatched task — a gang job's duration
     * when all its tasks start together (the backfill bound). */
    std::uint64_t
    max_owed() const
    {
        std::uint64_t m = 0;
        for (std::size_t t = next_task; t < owed.size(); ++t)
            m = std::max(m, owed[t]);
        for (std::size_t t : requeued)
            m = std::max(m, owed[t]);
        return m;
    }
};

} // namespace

double
SimResult::utilization() const
{
    if (makespan == 0 || die_busy.empty())
        return 0.0;
    std::uint64_t busy = 0;
    for (std::uint64_t b : die_busy)
        busy += b;
    return static_cast<double>(busy) /
           (static_cast<double>(die_busy.size()) *
            static_cast<double>(makespan));
}

SimResult
simulate_pool_schedule(const std::vector<SimJob> &jobs,
                       std::uint32_t num_dies, PoolPolicy policy,
                       std::uint64_t aging_cycles)
{
    SimOptions options;
    options.num_dies = num_dies;
    options.policy = policy;
    options.aging_cycles = aging_cycles;
    return simulate_pool_schedule(jobs, options);
}

SimResult
simulate_pool_schedule(const std::vector<SimJob> &jobs,
                       const SimOptions &options)
{
    const std::uint32_t num_dies = options.num_dies;
    const PoolPolicy policy = options.policy;
    if (num_dies == 0)
        throw std::invalid_argument(
            "simulate_pool_schedule: num_dies must be >= 1");
    for (const SimJob &job : jobs) {
        if (job.task_cycles.empty())
            throw std::invalid_argument(
                "simulate_pool_schedule: job with no tasks");
        if (job.task_cycles.size() > num_dies)
            throw std::invalid_argument(
                "simulate_pool_schedule: job wider than the pool");
    }
    if (options.autoscaler != nullptr && options.window_cycles == 0)
        throw std::invalid_argument(
            "simulate_pool_schedule: autoscaler needs window_cycles");

    SimResult out;
    out.die_busy.assign(num_dies, 0);
    out.start_.assign(jobs.size(), 0);
    out.finish_.assign(jobs.size(), 0);
    out.reservation_.assign(jobs.size(), SimResult::kNoReservation);
    out.lateness_.assign(jobs.size(), 0);

    std::vector<JobState> states(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        states[j].job = &jobs[j];
        states[j].owed = jobs[j].task_cycles;
        if (jobs[j].deadline > 0)
            states[j].abs_deadline = jobs[j].arrival + jobs[j].deadline;
    }

    // free_at[d]: the cycle die d finishes (or yields) its current
    // task (meaningful only while busy).
    std::vector<std::uint64_t> free_at(num_dies, 0);
    std::vector<std::size_t> die_job(num_dies, 0);
    std::vector<std::size_t> die_task(num_dies, 0);
    std::vector<std::uint64_t> die_started(num_dies, 0);
    std::vector<bool> die_busy_now(num_dies, false);
    std::vector<bool> die_preempting(num_dies, false);

    // FIFO admission order = arrival order (stable for equal arrivals).
    std::vector<std::size_t> order(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        order[j] = j;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return jobs[a].arrival < jobs[b].arrival;
                     });

    const bool preemptable_policy = policy == PoolPolicy::kPriority ||
        policy == PoolPolicy::kEdf;

    // Elastic capacity: the autoscaler's target caps concurrency.
    std::size_t cap_target =
        options.autoscaler ? options.autoscaler->target() : num_dies;
    if (options.autoscaler)
        out.active_timeline.emplace_back(0, cap_target);
    std::uint64_t window_area = 0;   // busy-dies x cycles this window
    std::uint64_t next_window = options.autoscaler
        ? options.window_cycles
        : kNever;

    // EDF order: earliest absolute deadline, ties FIFO (scan `order`).
    auto edf_pick = [&](std::uint64_t now) -> std::size_t {
        std::size_t best = jobs.size();
        for (std::size_t j : order) {
            const JobState &st = states[j];
            if (!st.pending() || jobs[j].arrival > now)
                continue;
            if (best == jobs.size() ||
                st.abs_deadline < states[best].abs_deadline)
                best = j;
        }
        return best;
    };

    std::uint64_t now = 0;
    std::size_t done_jobs = 0;
    std::size_t tasks_running = 0;
    while (done_jobs < jobs.size()) {
        // The widest pending job raises the cap (a gang wider than
        // the shrunk pool must still start — live effective_active).
        std::size_t cap = cap_target;
        for (std::size_t j : order)
            if (states[j].pending() && jobs[j].arrival <= now)
                cap = std::max(cap, states[j].remaining());
        cap = std::min<std::size_t>(cap, num_dies);

        // ---- Dispatch everything pickable at `now` (same selection
        // rules as PoolScheduler::try_pick, re-evaluated after every
        // dispatch because idle-die counts change). ----
        for (;;) {
            if (tasks_running >= cap)
                break;
            const std::size_t idle = cap - tasks_running;

            std::size_t pick = jobs.size(); // none
            if (policy == PoolPolicy::kPriority) {
                long best_eff = 0;
                for (std::size_t j : order) {
                    const JobState &st = states[j];
                    if (!st.pending() || jobs[j].arrival > now)
                        continue;
                    long eff = jobs[j].priority;
                    if (options.aging_cycles > 0)
                        eff += static_cast<long>(
                            (now - jobs[j].arrival) /
                            options.aging_cycles);
                    if (pick == jobs.size() || eff > best_eff) {
                        pick = j;
                        best_eff = eff;
                    }
                }
            } else if (policy == PoolPolicy::kEdf) {
                const std::size_t best = edf_pick(now);
                if (best != jobs.size()) {
                    JobState &st = states[best];
                    if (st.dispatched_any || idle >= st.remaining())
                        pick = best;
                }
            } else {
                const JobState *blocked_head = nullptr;
                std::size_t head_j = 0;
                for (std::size_t j : order) {
                    JobState &st = states[j];
                    if (!st.pending() || jobs[j].arrival > now)
                        continue;
                    if (st.dispatched_any ||
                        policy == PoolPolicy::kSpaceShare) {
                        pick = j;
                        break;
                    }
                    if (blocked_head == nullptr) {
                        if (idle >= st.remaining()) {
                            pick = j;
                            break;
                        }
                        if (!options.easy_backfill)
                            break; // gang head-of-line block
                        blocked_head = &st;
                        head_j = j;
                        continue;
                    }
                    // EASY backfill: J may jump the blocked head only
                    // if it provably cannot delay it. The reservation
                    // is when the (width-idle)-th soonest running
                    // finish frees the head's width; J qualifies by
                    // ending before it (exact durations) or by fitting
                    // in the dies the head will not need even then.
                    const std::size_t width = st.remaining();
                    if (width > idle)
                        continue;
                    std::vector<std::uint64_t> fins;
                    fins.reserve(tasks_running);
                    for (std::uint32_t d = 0; d < num_dies; ++d)
                        if (die_busy_now[d])
                            fins.push_back(free_at[d]);
                    const std::size_t need =
                        blocked_head->remaining() - idle;
                    if (fins.size() < need)
                        break; // width > dies that will ever free
                    std::sort(fins.begin(), fins.end());
                    const std::uint64_t reservation = fins[need - 1];
                    if (out.reservation_[head_j] ==
                        SimResult::kNoReservation)
                        out.reservation_[head_j] = reservation;
                    std::size_t freed_by_then = 0;
                    for (std::uint64_t f : fins)
                        freed_by_then += (f <= reservation);
                    const std::size_t avail_at_shadow =
                        idle + freed_by_then;
                    const std::size_t extra = avail_at_shadow -
                        blocked_head->remaining();
                    if (now + st.max_owed() <= reservation ||
                        width <= extra) {
                        pick = j;
                        break;
                    }
                }
            }
            if (pick == jobs.size())
                break;

            JobState &st = states[pick];
            if (!st.dispatched_any) {
                st.dispatched_any = true;
                out.start_[pick] = now;
            }
            std::size_t task;
            if (!st.requeued.empty()) {
                task = st.requeued.back();
                st.requeued.pop_back();
            } else {
                task = st.next_task++;
            }
            std::uint32_t die = 0;
            while (die_busy_now[die])
                ++die;
            die_busy_now[die] = true;
            die_preempting[die] = false;
            free_at[die] = now + st.owed[task];
            die_job[die] = pick;
            die_task[die] = task;
            die_started[die] = now;
            ++tasks_running;
        }

        // ---- Advance to the next event: a die completing/yielding,
        // the next arrival, or an autoscaler window boundary. ----
        std::uint64_t next = kNever;
        for (std::uint32_t d = 0; d < num_dies; ++d)
            if (die_busy_now[d])
                next = std::min(next, free_at[d]);
        for (std::size_t j = 0; j < jobs.size(); ++j)
            if (states[j].pending() && jobs[j].arrival > now)
                next = std::min(next, jobs[j].arrival);
        if (next == kNever)
            throw std::logic_error(
                "simulate_pool_schedule: stalled schedule");
        next = std::min(next, next_window);
        window_area +=
            static_cast<std::uint64_t>(tasks_running) * (next - now);
        now = next;

        for (std::uint32_t d = 0; d < num_dies; ++d) {
            if (!die_busy_now[d] || free_at[d] > now)
                continue;
            die_busy_now[d] = false;
            --tasks_running;
            out.die_busy[d] += free_at[d] - die_started[d];
            JobState &st = states[die_job[d]];
            if (die_preempting[d]) {
                // Layer-boundary yield: requeue the remainder plus
                // the checkpoint round-trip.
                die_preempting[d] = false;
                const std::uint64_t ran = free_at[d] - die_started[d];
                st.owed[die_task[d]] = st.owed[die_task[d]] - ran +
                    options.preempt_overhead_cycles;
                st.requeued.push_back(die_task[d]);
                ++out.preemptions;
                continue;
            }
            ++st.done_tasks;
            if (st.done_tasks == st.job->task_cycles.size()) {
                const std::size_t j = die_job[d];
                out.finish_[j] = free_at[d];
                out.makespan = std::max(out.makespan, free_at[d]);
                if (st.abs_deadline != kNever &&
                    free_at[d] > st.abs_deadline) {
                    out.lateness_[j] = free_at[d] - st.abs_deadline;
                    ++out.deadline_misses;
                }
                ++done_jobs;
            }
        }

        // ---- Autoscaler window boundary: exact windowed inputs. ----
        if (options.autoscaler != nullptr && now == next_window) {
            AutoscalerWindow w;
            w.busy_dies = static_cast<double>(window_area) /
                static_cast<double>(options.window_cycles);
            double depth = 0.0;
            for (std::size_t j = 0; j < jobs.size(); ++j)
                if (states[j].pending() && jobs[j].arrival <= now)
                    depth += 1.0;
            w.queue_depth = depth;
            const std::size_t target = options.autoscaler->step(w);
            if (target != cap_target) {
                cap_target = target;
                out.active_timeline.emplace_back(now, cap_target);
            }
            window_area = 0;
            next_window += options.window_cycles;
        }

        // ---- Preemption: jobs arriving exactly now evict the least
        // urgent running preemptible task when nothing is free (the
        // live scheduler's maybe_preempt, in cycle domain). ----
        if (options.enable_preemption && preemptable_policy) {
            for (std::size_t j : order) {
                if (jobs[j].arrival != now || !states[j].pending())
                    continue;
                std::size_t want = states[j].remaining();
                // Live gate: only when the effective cap is saturated
                // (an idle-but-capped die does not block eviction).
                std::size_t cap_now = cap_target;
                for (std::size_t jj : order)
                    if (states[jj].pending() &&
                        jobs[jj].arrival <= now)
                        cap_now = std::max(cap_now,
                                           states[jj].remaining());
                cap_now = std::min<std::size_t>(cap_now, num_dies);
                if (tasks_running < cap_now)
                    continue;
                // Victims, least urgent first.
                std::vector<std::uint32_t> running;
                for (std::uint32_t d = 0; d < num_dies; ++d)
                    if (die_busy_now[d] && !die_preempting[d])
                        running.push_back(d);
                std::stable_sort(
                    running.begin(), running.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                        if (policy == PoolPolicy::kEdf)
                            return states[die_job[a]].abs_deadline >
                                states[die_job[b]].abs_deadline;
                        return jobs[die_job[a]].priority <
                            jobs[die_job[b]].priority;
                    });
                for (std::uint32_t d : running) {
                    if (want == 0)
                        break;
                    const std::size_t vj = die_job[d];
                    const bool more_urgent =
                        policy == PoolPolicy::kEdf
                            ? states[j].abs_deadline <
                                states[vj].abs_deadline
                            : jobs[j].priority - jobs[vj].priority >=
                                options.preempt_priority_gap;
                    if (!more_urgent)
                        break;
                    const std::uint64_t b =
                        jobs[vj].boundary_cycles;
                    if (b == 0)
                        continue; // not preemptible; try the next
                    const std::uint64_t elapsed =
                        now - die_started[d];
                    const std::uint64_t yield_at = die_started[d] +
                        (elapsed / b + 1) * b;
                    if (yield_at >= free_at[d])
                        continue; // would finish first anyway
                    free_at[d] = yield_at;
                    die_preempting[d] = true;
                    --want;
                }
            }
        }
    }
    return out;
}

} // namespace flowgnn
