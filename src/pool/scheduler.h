/**
 * @file
 * flowgnn::pool — PoolScheduler: admits jobs and schedules their
 * shard tasks onto a DiePool.
 *
 * A job is one graph: either a whole-graph job (one die, the small
 * graph fast path) or a sharded job (a ShardPlan of P <= D slices).
 * Because slices are independent engine runs, the scheduler is free to
 * interleave slices of *different* graphs across the pool — the
 * property that keeps a multi-die machine busy when no single job can
 * use every die. Results are bit-identical to isolated runs regardless
 * of policy or interleaving: every die is a deterministic
 * cycle-stepped engine and the merge is a pure function of the
 * per-slice results.
 *
 * Policies:
 *  - kFifoGang:  jobs start strictly in submission order, and a job
 *    starts only when its full width in dies is free at once (gang
 *    scheduling). A wide job at the head blocks everything behind it,
 *    idling dies — the baseline batch-scheduler behaviour.
 *  - kSpaceShare: work-conserving space sharing. Tasks dispatch in
 *    job-FIFO order as dies free up; when the head job has every task
 *    running, later jobs backfill the remaining dies. A die never
 *    idles while any task is pending.
 *  - kPriority:  like kSpaceShare but the next task comes from the
 *    job with the highest effective priority, which ages upward the
 *    longer the job waits (no starvation); ties break FIFO.
 *  - kEdf: gang starts in earliest-absolute-deadline order (admit
 *    time + JobSpec::deadline_ms); with equal deadlines everywhere it
 *    degenerates to kFifoGang exactly. Lateness and misses are
 *    reported per job through pool.lateness_ms /
 *    pool.deadline_misses_total whatever the policy.
 *
 * kFifoGang optionally adds EASY backfill (PoolConfig::easy_backfill):
 * a blocked head gang job takes a start-time reservation computed from
 * running tasks' estimated finishes, and later jobs may start out of
 * order only when their estimated runtime fits entirely before that
 * reservation — backfill can fill idle dies but provably never delays
 * the head. kPriority/kEdf optionally preempt running tasks at
 * message-passing layer boundaries (PoolConfig::enable_preemption):
 * the victim checkpoints, requeues, and later resumes bit-identically
 * (Engine::run_resumable).
 *
 * Admission mirrors flowgnn::serve end to end: the pending-job queue
 * is bounded, and a full queue either blocks the producer
 * (AdmissionPolicy::kBlock) or sheds the job (kReject +
 * ServiceOverloaded). Planning (partitioning + halo extraction) runs
 * on the submitting thread, so an admitted job's exact width is known
 * to the scheduler and dies never burn lease time on planning.
 */
#ifndef FLOWGNN_POOL_SCHEDULER_H
#define FLOWGNN_POOL_SCHEDULER_H

#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <thread>

#include "core/sync.h"
#include "obs/metrics.h"
#include "pool/die_pool.h"
#include "serve/service.h"
#include "shard/shard_plan.h"

namespace flowgnn {

/** How pending tasks are matched to free dies. */
enum class PoolPolicy {
    kFifoGang,
    kSpaceShare,
    kPriority,
    /** Earliest absolute deadline first (admit time + deadline_ms;
     * no-deadline jobs sort last), ties broken FIFO — so with equal
     * deadlines on every job kEdf IS kFifoGang. Gang width rule:
     * the earliest-deadline job starts only when its full width is
     * free at once. */
    kEdf,
};

/** Human-readable policy name. */
const char *pool_policy_name(PoolPolicy policy);

/**
 * Per-job scheduling parameters (everything about a job the scheduler
 * cares about that is not the graph itself). The plain priority-int
 * submit overloads are shorthand for a JobSpec with only `priority`
 * set.
 */
struct JobSpec {
    /** Higher runs earlier under kPriority; ages upward while queued. */
    int priority = 0;
    /**
     * Relative deadline from admission, milliseconds; <= 0 means no
     * deadline. Orders dispatch under kEdf; under every policy a
     * deadline job contributes to pool.lateness_ms and (when it
     * finishes late) pool.deadline_misses_total.
     */
    double deadline_ms = 0.0;
    /**
     * Caller's estimate of one task's engine cycles (a slice for
     * sharded jobs, the whole run otherwise) — the planted knowledge
     * EASY backfill needs to prove a backfilled job cannot delay the
     * reserved head. 0 = unknown: the job never backfills and, while
     * it runs, blocks reservations from being computed (conservative
     * on both sides).
     */
    std::uint64_t estimated_task_cycles = 0;
};

/** Deployment shape of a PoolScheduler. */
struct PoolConfig {
    /** Dies in the pool (engine replicas, one host thread each). */
    std::uint32_t num_dies = 4;
    PoolPolicy policy = PoolPolicy::kSpaceShare;
    /** Bounded pending-job queue (jobs with undispatched tasks). */
    std::size_t queue_capacity = 64;
    AdmissionPolicy admission = AdmissionPolicy::kBlock;
    /** Default per-run options; submit() overloads can override. */
    RunOptions run_options{};
    /** kPriority aging: one effective-priority step per this many
     * milliseconds a job has waited. <= 0 disables aging. */
    double aging_ms = 25.0;
    /** Construct dies parked; nothing dispatches until start(). */
    bool start_paused = false;
    /**
     * kFifoGang only: EASY backfill. When the head gang job cannot
     * start, it takes a start-time reservation (the instant enough
     * running tasks' estimated finishes free its width) and later
     * jobs may jump it only when their estimated runtime provably
     * ends before that reservation — the head can never be delayed.
     * Needs JobSpec::estimated_task_cycles on the running and
     * backfilling jobs; without estimates the policy degrades to
     * plain gang (no backfill), never to a delayed head.
     */
    bool easy_backfill = true;
    /**
     * kPriority / kEdf: a newly admitted job that is more urgent than
     * a running one (priority gap >= preempt_priority_gap, or an
     * earlier deadline under kEdf) requests layer-boundary preemption
     * of the least-urgent running task when no die is free. The
     * preempted task checkpoints at the next message-passing layer
     * boundary and resumes later, bit-identical (see
     * Engine::run_resumable).
     */
    bool enable_preemption = false;
    int preempt_priority_gap = 1;
    /** Metrics sink. The scheduler registers pool.* counters/gauges
     * and the pool.queue_delay_ms histogram here; pass a shared
     * registry to aggregate with other subsystems, or leave null for
     * a private one. PoolStats is a typed view over these metrics. */
    std::shared_ptr<obs::MetricsRegistry> metrics;

    void
    validate() const
    {
        if (num_dies == 0)
            throw std::invalid_argument(
                "PoolConfig: num_dies must be >= 1");
        if (queue_capacity == 0)
            throw std::invalid_argument(
                "PoolConfig: queue_capacity must be >= 1");
    }
};

/** Admission/completion counters for one submit path. */
struct PoolPathStats {
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t rejected = 0;
};

/** Aggregate pool telemetry since construction (or last start()).
 * All *_ms fields are wall-clock milliseconds; a sharded job that was
 * clamped or lost empty slices counts die leases at its effective P
 * (plan.slices.size(), see shard/shard_plan.h), never the requested
 * num_shards. */
struct PoolStats {
    PoolPathStats fast;    ///< whole-graph (one-die) jobs
    PoolPathStats sharded; ///< multi-slice jobs
    std::size_t jobs_pending = 0;  ///< jobs with undispatched tasks
    std::size_t tasks_running = 0; ///< slices currently on dies
    /** Producers blocked in submit() right now (kBlock backpressure;
     * the deterministic sync point tests use instead of sleeping). */
    std::size_t blocked_producers = 0;
    std::size_t queue_capacity = 0;
    double uptime_ms = 0.0;
    /** Submit-to-first-dispatch wall delay percentiles (ms) over the
     * FULL scheduler lifetime, read from the shared
     * pool.queue_delay_ms log-bucket histogram (O(1) memory, each
     * quantile within ~1% relative error — see obs/metrics.h). */
    double queue_delay_p50_ms = 0.0;
    double queue_delay_p95_ms = 0.0;
    double queue_delay_p99_ms = 0.0;
    /** Highest number of simultaneously busy dies observed. */
    std::size_t peak_busy_dies = 0;
    /** Concurrency cap set by set_active_dies (<= dies.size()). */
    std::size_t active_dies = 0;
    /** Deadline jobs that finished past their deadline
     * (pool.deadline_misses_total). */
    std::size_t deadline_misses = 0;
    /** Lateness percentiles over completed deadline jobs, ms clamped
     * at 0 (an early finish records 0), from pool.lateness_ms. */
    double lateness_p50_ms = 0.0;
    double lateness_p99_ms = 0.0;
    /** Tasks preempted at a layer boundary and requeued
     * (pool.preemptions_total). */
    std::size_t preemptions = 0;
    std::vector<DieStats> dies;
    std::vector<OccupancyPoint> occupancy;

    std::size_t
    submitted() const
    {
        return fast.submitted + sharded.submitted;
    }
    std::size_t
    completed() const
    {
        return fast.completed + sharded.completed;
    }
};

/**
 * Schedules jobs over a DiePool. The model must outlive the
 * scheduler; destruction drains accepted work, then joins the dies.
 */
class PoolScheduler
{
  public:
    PoolScheduler(const Model &model, EngineConfig engine_config = {},
                  PoolConfig config = {});
    ~PoolScheduler();

    PoolScheduler(const PoolScheduler &) = delete;
    PoolScheduler &operator=(const PoolScheduler &) = delete;

    /** Unparks the dies (no-op when already running). */
    void start();

    /**
     * Admits one whole-graph job (one die). The future carries the
     * RunResult — bit-identical to Engine::run on the same sample —
     * or the run's exception. `priority` matters under kPriority.
     */
    std::future<RunResult> submit(GraphSample sample, int priority = 0);
    std::future<RunResult> submit(GraphSample sample,
                                  const RunOptions &opts,
                                  int priority = 0);
    /** Full-spec admission: priority + deadline + runtime estimate. */
    std::future<RunResult> submit(GraphSample sample,
                                  const RunOptions &opts,
                                  const JobSpec &spec);

    /**
     * Admits one sharded job: the sample is planned into
     * min(shard.num_shards, num_dies) slices (clamped so a job can
     * never be wider than the pool) and its tasks dispatch per the
     * pool policy. The future carries the merged ShardedRunResult —
     * identical to ShardedEngine::run with the same clamped config.
     * Ghost-mode jobs (ShardMode::kGhostExchange) are layer-synchronous
     * and schedule as one indivisible task on one host die; the ghost
     * executor models its P dies internally.
     */
    std::future<ShardedRunResult> submit_sharded(GraphSample sample,
                                                 const ShardConfig &shard,
                                                 int priority = 0);
    std::future<ShardedRunResult> submit_sharded(GraphSample sample,
                                                 const ShardConfig &shard,
                                                 const RunOptions &opts,
                                                 int priority = 0);
    /** Full-spec sharded admission. `estimated_task_cycles` is per
     * slice (the unit the scheduler dispatches). */
    std::future<ShardedRunResult> submit_sharded(GraphSample sample,
                                                 const ShardConfig &shard,
                                                 const RunOptions &opts,
                                                 const JobSpec &spec);

    /**
     * Sharded admission that delivers the merged answer as a plain
     * RunResult (per-die breakdown dropped) — used by routing layers
     * (ShardedService) so both paths hand back one future type.
     */
    std::future<RunResult> submit_sharded_as_run(GraphSample sample,
                                                 const ShardConfig &shard,
                                                 const RunOptions &opts,
                                                 int priority = 0);

    /** Blocks until every accepted job has completed. */
    void drain();

    /** Drains, stops admission, joins the dies (idempotent). */
    void shutdown();

    PoolStats stats() const;

    /**
     * Elasticity hook (the Autoscaler's actuator): caps how many
     * tasks run concurrently to `n` dies, clamped to [1, num_dies()].
     * Scaling down never interrupts running tasks — the pool shrinks
     * as they finish — and a pending job wider than the cap raises
     * the effective cap to its width (a gang must never deadlock
     * against the autoscaler). Exported as pool.active_dies.
     */
    void set_active_dies(std::size_t n);
    std::size_t active_dies() const;

    std::size_t num_dies() const { return pool_.size(); }
    const DiePool &pool() const { return pool_; }
    /** The registry pool.* metrics land in (the config's, or the
     * private one) — what the Autoscaler snapshots. */
    const std::shared_ptr<obs::MetricsRegistry> &
    metrics() const
    {
        return metrics_;
    }

  private:
    struct Job;
    using JobPtr = std::shared_ptr<Job>;
    struct Dispatch {
        JobPtr job;
        std::size_t task = 0;
    };

    std::future<RunResult> enqueue_fast(GraphSample sample,
                                        const RunOptions &opts,
                                        const JobSpec &spec);
    JobPtr make_sharded_job(GraphSample sample, const ShardConfig &shard,
                            const RunOptions &opts, const JobSpec &spec,
                            bool deliver_sharded);
    void admit(const JobPtr &job);
    void die_loop(std::size_t die);
    bool try_pick(Dispatch &out) FLOWGNN_REQUIRES(mutex_);
    void finalize(const JobPtr &job);
    std::size_t effective_active() const FLOWGNN_REQUIRES(mutex_);
    void maybe_preempt(const JobPtr &urgent) FLOWGNN_REQUIRES(mutex_);

    const Model &model_;
    PoolConfig config_;
    DiePool pool_;
    std::vector<std::thread> die_threads_;

    mutable Mutex mutex_; // guards everything below
    CondVar work_;   ///< dies: task may be pickable
    CondVar admit_;  ///< producers: queue may have room
    CondVar idle_;   ///< drain(): a job finished
    CondVar unpark_; ///< start()
    bool started_ FLOWGNN_GUARDED_BY(mutex_) = false;
    bool closed_ FLOWGNN_GUARDED_BY(mutex_) = false; ///< no new submissions
    bool shutdown_ FLOWGNN_GUARDED_BY(mutex_) = false; ///< dies may exit
    /** Jobs with undispatched tasks, FIFO. */
    std::deque<JobPtr> queue_ FLOWGNN_GUARDED_BY(mutex_);
    std::size_t tasks_running_ FLOWGNN_GUARDED_BY(mutex_) = 0;
    /** Concurrency cap (autoscaler actuator); see set_active_dies. */
    std::size_t active_dies_ FLOWGNN_GUARDED_BY(mutex_);
    /** What each die is running right now (job null when idle), with
     * the estimated finish EASY reservations are computed from. */
    struct Running {
        JobPtr job;
        std::size_t task = 0;
        bool has_est = false;
        std::chrono::steady_clock::time_point est_finish{};
    };
    std::vector<Running> running_ FLOWGNN_GUARDED_BY(mutex_);
    /** Per-die preemption flags (atomic; requested under mutex_ by
     * maybe_preempt, polled lock-free by the engines). */
    std::vector<std::unique_ptr<PreemptToken>> die_tokens_;
    std::size_t blocked_producers_ FLOWGNN_GUARDED_BY(mutex_) = 0;
    PoolPathStats fast_ FLOWGNN_GUARDED_BY(mutex_);
    PoolPathStats sharded_ FLOWGNN_GUARDED_BY(mutex_);
    /** Labels die-lease trace spans. */
    std::uint64_t next_job_id_ FLOWGNN_GUARDED_BY(mutex_) = 1;

    // Shared-registry metrics; the counters mirror the mutex-guarded
    // PoolPathStats (those stay: drain()'s condition needs them
    // consistent under mutex_).
    std::shared_ptr<obs::MetricsRegistry> metrics_;
    obs::Counter &jobs_ctr_;
    obs::Counter &completed_ctr_;
    obs::Counter &failed_ctr_;
    obs::Counter &rejected_ctr_;
    obs::Gauge &busy_dies_gauge_;
    obs::Gauge &queue_depth_gauge_;
    obs::Histogram &queue_delay_hist_;
    obs::Counter &deadline_miss_ctr_;
    obs::Counter &preempt_ctr_;
    obs::Gauge &active_dies_gauge_;
    obs::Histogram &lateness_hist_;
};

} // namespace flowgnn

#endif // FLOWGNN_POOL_SCHEDULER_H
