#include "pool/pool_energy.h"

#include <stdexcept>
#include <vector>

namespace flowgnn {

MultiDieEnergy
pool_schedule_energy(const SimResult &sched, double clock_mhz,
                     std::uint64_t link_words,
                     double replication_factor,
                     std::size_t graph_nodes, std::size_t node_dim)
{
    if (clock_mhz <= 0.0)
        throw std::invalid_argument(
            "pool_schedule_energy: clock must be positive");
    if (sched.die_busy.empty())
        throw std::invalid_argument(
            "pool_schedule_energy: schedule has no dies");
    const double cycles_per_ms = clock_mhz * 1e3;
    const double latency_ms =
        static_cast<double>(sched.makespan) / cycles_per_ms;
    std::vector<double> die_busy_ms;
    die_busy_ms.reserve(sched.die_busy.size());
    for (std::uint64_t busy : sched.die_busy)
        die_busy_ms.push_back(static_cast<double>(busy) /
                              cycles_per_ms);
    return multi_die_energy(
        static_cast<std::uint32_t>(sched.die_busy.size()), latency_ms,
        link_words, replication_factor, graph_nodes, node_dim,
        die_busy_ms);
}

} // namespace flowgnn
