#include "pool/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/telemetry.h"
#include "ghost/ghost_engine.h"
#include "obs/trace_session.h"

namespace flowgnn {

const char *
pool_policy_name(PoolPolicy policy)
{
    switch (policy) {
      case PoolPolicy::kFifoGang: return "fifo-gang";
      case PoolPolicy::kSpaceShare: return "space-share";
      case PoolPolicy::kPriority: return "priority";
    }
    return "unknown";
}

/** One admitted job: immutable inputs (prepared sample, plan, opts)
 * plus mutable dispatch/completion state guarded by the scheduler
 * mutex. Each task writes only its own results slot, so slices of one
 * job can run on many dies without further synchronization. */
struct PoolScheduler::Job {
    enum class Deliver { kRun, kSharded };

    bool sharded_path = false; ///< admitted via submit_sharded*
    Deliver deliver = Deliver::kRun;
    int priority = 0;
    std::uint64_t id = 0;       ///< admission order, for trace labels
    std::uint64_t enq_ns = 0;   ///< admit instant on the trace clock
    GraphSample prepared;
    /** Ghost-mode job: layers are exchange-synchronous, so the slices
     * cannot be scheduled independently. The job is one indivisible
     * task — run_ghost_plan threads its modeled dies internally — and
     * occupies one host die for its duration. */
    bool ghost = false;
    GhostPlan ghost_plan;
    ShardedRunResult ghost_result;
    ShardPlan plan;
    LinkConfig link{};
    RunOptions opts;
    std::vector<RunResult> results; ///< one slot per slice
    std::size_t next_task = 0;
    std::size_t done_tasks = 0;
    bool dispatched_any = false;
    std::exception_ptr error;
    std::chrono::steady_clock::time_point enqueued{};
    std::promise<RunResult> run_promise;
    std::promise<ShardedRunResult> sharded_promise;
};

PoolScheduler::PoolScheduler(const Model &model, EngineConfig engine_config,
                             PoolConfig config)
    : model_(model),
      config_(config),
      pool_(model, engine_config, config.num_dies),
      metrics_(config.metrics
                   ? config.metrics
                   : std::make_shared<obs::MetricsRegistry>()),
      jobs_ctr_(metrics_->counter("pool.jobs_total")),
      completed_ctr_(metrics_->counter("pool.completed_total")),
      failed_ctr_(metrics_->counter("pool.failed_total")),
      rejected_ctr_(metrics_->counter("pool.rejected_total")),
      busy_dies_gauge_(metrics_->gauge("pool.busy_dies")),
      queue_depth_gauge_(metrics_->gauge("pool.queue_depth")),
      queue_delay_hist_(metrics_->histogram("pool.queue_delay_ms"))
{
    // Fail fast: a malformed config must never reach die threads.
    config_.validate();
    config_.run_options.validate();

    started_ = !config_.start_paused;
    die_threads_.reserve(pool_.size());
    for (std::size_t d = 0; d < pool_.size(); ++d)
        die_threads_.emplace_back([this, d] { die_loop(d); });
}

PoolScheduler::~PoolScheduler() { shutdown(); }

void
PoolScheduler::start()
{
    {
        MutexLock lock(&mutex_);
        if (started_)
            return;
        started_ = true;
    }
    // Utilization should measure the serving interval, not the parked
    // prefix tests use to build deterministic backlogs.
    pool_.reset_epoch();
    unpark_.notify_all();
}

bool
PoolScheduler::try_pick(Dispatch &out)
{
    out.job.reset();
    if (queue_.empty())
        return false;
    const std::size_t idle = pool_.size() - tasks_running_;

    switch (config_.policy) {
      case PoolPolicy::kSpaceShare: {
        // Work-conserving: the queue only holds jobs with undispatched
        // tasks, so the FIFO head always yields one. Later jobs
        // backfill automatically once earlier ones are fully
        // dispatched (and therefore popped).
        out.job = queue_.front();
        break;
      }
      case PoolPolicy::kFifoGang: {
        // Jobs start strictly in order, each only when its full width
        // is simultaneously free. A started job's remaining tasks go
        // first; an unstarted head that does not fit blocks the scan
        // (that is the policy's head-of-line cost).
        for (const JobPtr &job : queue_) {
            if (job->dispatched_any) {
                out.job = job;
                break;
            }
            std::size_t remaining =
                job->results.size() - job->next_task;
            if (idle >= remaining) {
                out.job = job;
                break;
            }
            return false;
        }
        break;
      }
      case PoolPolicy::kPriority: {
        auto now = std::chrono::steady_clock::now();
        long best_eff = 0;
        for (const JobPtr &job : queue_) {
            long eff = job->priority;
            if (config_.aging_ms > 0.0)
                eff += static_cast<long>(
                    ms_between(job->enqueued, now) / config_.aging_ms);
            // Strict > keeps FIFO order among ties (queue_ is FIFO).
            if (!out.job || eff > best_eff) {
                out.job = job;
                best_eff = eff;
            }
        }
        break;
      }
    }
    if (!out.job)
        return false;
    out.task = out.job->next_task;
    return true;
}

void
PoolScheduler::die_loop(std::size_t die)
{
    obs::TraceSession *named_for = nullptr; // row named once per session
    UniqueLock lock(&mutex_);
    unpark_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
        return started_ || shutdown_;
    });

    for (;;) {
        Dispatch d;
        work_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
            return shutdown_ || try_pick(d);
        });
        if (!d.job) {
            if (shutdown_)
                return;
            continue;
        }

        // ---- Dispatch d.task of d.job onto this die. ----
        obs::TraceSession *session = obs::TraceSession::current();
        Job &job = *d.job;
        if (!job.dispatched_any) {
            job.dispatched_any = true;
            queue_delay_hist_.record(ms_between(
                job.enqueued, std::chrono::steady_clock::now()));
            // The request's time-in-queue, on its own timeline.
            if (session && job.enq_ns != 0)
                session->span(obs::Track::kPool, "queue-wait",
                              job.enq_ns, session->now_ns());
        }
        ++job.next_task;
        ++tasks_running_;
        if (job.next_task == job.results.size()) {
            // Fully dispatched: leaves the pending queue (freeing
            // admission capacity) while its tasks finish on the dies.
            queue_.erase(
                std::find(queue_.begin(), queue_.end(), d.job));
            admit_.notify_one();
        }
        // Other idle dies may now have work (e.g. the rest of a
        // gang-started job's tasks).
        work_.notify_all();
        pool_.lease(die);
        busy_dies_gauge_.set(static_cast<double>(tasks_running_));
        queue_depth_gauge_.set(static_cast<double>(queue_.size()));
        std::uint64_t lease_start_ns = 0;
        if (session) {
            if (session != named_for) {
                char row[24];
                std::snprintf(row, sizeof row, "die %zu", die);
                session->name_thread(obs::Track::kPool, row);
                named_for = session;
            }
            session->counter(obs::Track::kPool, "busy dies",
                             static_cast<double>(tasks_running_));
            lease_start_ns = session->now_ns();
        }
        lock.unlock();

        bool ok = true;
        RunResult result;
        std::exception_ptr error;
        try {
            Engine &engine = pool_.engine(die);
            if (job.ghost) {
                job.ghost_result = run_ghost_plan(
                    model_, engine.config(), job.prepared,
                    std::move(job.ghost_plan), job.opts, job.link);
            } else {
                RunWorkspace &ws = pool_.workspace(die);
                result = job.plan.sharded
                    ? engine.run_prepared(job.plan.slices[d.task].sub,
                                          job.opts, ws)
                    : engine.run_prepared(job.prepared, job.opts, ws);
            }
        } catch (...) {
            ok = false;
            error = std::current_exception();
        }
        pool_.release(die);
        if (session) {
            char nm[48];
            if (job.ghost)
                std::snprintf(nm, sizeof nm,
                              "lease: job %llu (ghost)",
                              static_cast<unsigned long long>(job.id));
            else if (job.plan.sharded)
                std::snprintf(nm, sizeof nm,
                              "lease: job %llu slice %zu/%zu",
                              static_cast<unsigned long long>(job.id),
                              d.task, job.results.size());
            else
                std::snprintf(nm, sizeof nm, "lease: job %llu",
                              static_cast<unsigned long long>(job.id));
            session->span(obs::Track::kPool, nm, lease_start_ns,
                          session->now_ns());
        }

        lock.lock();
        --tasks_running_;
        busy_dies_gauge_.set(static_cast<double>(tasks_running_));
        if (session)
            session->counter(obs::Track::kPool, "busy dies",
                             static_cast<double>(tasks_running_));
        job.results[d.task] = std::move(result);
        if (!ok && !job.error)
            job.error = error;
        ++job.done_tasks;
        bool job_done = job.done_tasks == job.results.size();
        // A die freed up: gang starts that did not fit may fit now.
        work_.notify_all();
        if (job_done) {
            lock.unlock();
            finalize(d.job); // merge is real work; never under the lock
            lock.lock();
        }
    }
}

void
PoolScheduler::finalize(const JobPtr &jobp)
{
    Job &job = *jobp;
    bool ok = !job.error;
    ShardedRunResult merged;
    if (ok) {
        try {
            merged = job.ghost
                ? std::move(job.ghost_result)
                : merge_shard_results(model_, job.prepared,
                                      std::move(job.plan),
                                      std::move(job.results),
                                      job.link);
        } catch (...) {
            ok = false;
            job.error = std::current_exception();
        }
    }

    // Count the completion BEFORE fulfilling the promise, so a caller
    // that checks stats() right after future.get() sees it.
    completed_ctr_.add(ok);
    failed_ctr_.add(!ok);
    {
        MutexLock lock(&mutex_);
        PoolPathStats &path = job.sharded_path ? sharded_ : fast_;
        path.completed += ok;
        path.failed += !ok;
    }
    idle_.notify_all();

    if (job.deliver == Job::Deliver::kSharded) {
        if (ok)
            job.sharded_promise.set_value(std::move(merged));
        else
            job.sharded_promise.set_exception(job.error);
    } else {
        if (ok) {
            RunResult run;
            run.embeddings = std::move(merged.embeddings);
            run.prediction = merged.prediction;
            run.stats = std::move(merged.stats);
            job.run_promise.set_value(std::move(run));
        } else {
            job.run_promise.set_exception(job.error);
        }
    }
}

void
PoolScheduler::admit(const JobPtr &job)
{
    {
        UniqueLock lock(&mutex_);
        // Select the path tally under the lock (fast_/sharded_ are
        // guarded; job->sharded_path is immutable once admitted).
        PoolPathStats &path = job->sharded_path ? sharded_ : fast_;
        if (closed_)
            throw std::logic_error(
                "PoolScheduler: submit after shutdown");
        if (config_.admission == AdmissionPolicy::kReject) {
            if (queue_.size() >= config_.queue_capacity) {
                ++path.rejected;
                rejected_ctr_.add(1);
                throw ServiceOverloaded();
            }
        } else if (queue_.size() >= config_.queue_capacity) {
            ++blocked_producers_;
            admit_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
                return closed_ ||
                       queue_.size() < config_.queue_capacity;
            });
            --blocked_producers_;
            if (closed_)
                throw std::logic_error(
                    "PoolScheduler: submit after shutdown");
        }
        ++path.submitted;
        job->id = next_job_id_++;
        job->enqueued = std::chrono::steady_clock::now();
        if (obs::TraceSession *session = obs::TraceSession::current())
            job->enq_ns = session->now_ns();
        queue_.push_back(job);
        jobs_ctr_.add(1);
        queue_depth_gauge_.set(static_cast<double>(queue_.size()));
    }
    work_.notify_all();
}

std::future<RunResult>
PoolScheduler::enqueue_fast(GraphSample sample, const RunOptions &opts,
                            int priority)
{
    opts.validate();
    auto job = std::make_shared<Job>();
    job->priority = priority;
    job->opts = opts;
    // Preparing on the submitting thread keeps dies lease-time pure
    // compute; run_prepared(prepare(s)) is exactly Engine::run(s), so
    // the fast path stays bit-identical to a sequential engine loop.
    job->prepared = model_.prepare(sample);
    if (!job->prepared.consistent())
        throw std::invalid_argument("PoolScheduler: inconsistent sample");
    ShardConfig whole;
    whole.num_shards = 1;
    job->plan = make_shard_plan(model_, job->prepared, whole);
    job->results.resize(job->plan.slices.size());
    std::future<RunResult> future = job->run_promise.get_future();
    admit(job);
    return future;
}

std::future<RunResult>
PoolScheduler::submit(GraphSample sample, int priority)
{
    return enqueue_fast(std::move(sample), config_.run_options,
                        priority);
}

std::future<RunResult>
PoolScheduler::submit(GraphSample sample, const RunOptions &opts,
                      int priority)
{
    return enqueue_fast(std::move(sample), opts, priority);
}

std::future<ShardedRunResult>
PoolScheduler::submit_sharded(GraphSample sample, const ShardConfig &shard,
                              int priority)
{
    return submit_sharded(std::move(sample), shard,
                          config_.run_options, priority);
}

namespace {

/** A job can never be wider than the pool (a gang that needs more
 * dies than exist would deadlock kFifoGang). */
ShardConfig
clamp_to_pool(const ShardConfig &shard, std::size_t num_dies)
{
    ShardConfig clamped = shard;
    clamped.validate();
    clamped.num_shards = static_cast<std::uint32_t>(std::min<std::size_t>(
        clamped.num_shards, num_dies));
    return clamped;
}

} // namespace

PoolScheduler::JobPtr
PoolScheduler::make_sharded_job(GraphSample sample,
                                const ShardConfig &shard,
                                const RunOptions &opts, int priority,
                                bool deliver_sharded)
{
    opts.validate();
    ShardConfig clamped = clamp_to_pool(shard, pool_.size());
    auto job = std::make_shared<Job>();
    job->sharded_path = true;
    job->deliver = deliver_sharded ? Job::Deliver::kSharded
                                   : Job::Deliver::kRun;
    job->priority = priority;
    job->opts = opts;
    job->link = clamped.link;
    job->prepared = model_.prepare(sample);
    if (!job->prepared.consistent())
        throw std::invalid_argument("PoolScheduler: inconsistent sample");
    char span_name[32];
    std::snprintf(span_name, sizeof span_name, "plan %s P=%u",
                  clamped.mode == ShardMode::kGhostExchange ? "ghost"
                                                            : "halo",
                  clamped.num_shards);
    obs::Span plan_span(obs::Track::kShard, span_name);
    if (clamped.mode == ShardMode::kGhostExchange) {
        job->ghost = true;
        job->ghost_plan = make_ghost_plan(model_, job->prepared, clamped);
        job->results.resize(1); // one indivisible task
    } else {
        job->plan = make_shard_plan(model_, job->prepared, clamped);
        job->results.resize(job->plan.slices.size());
    }
    return job;
}

std::future<ShardedRunResult>
PoolScheduler::submit_sharded(GraphSample sample, const ShardConfig &shard,
                              const RunOptions &opts, int priority)
{
    JobPtr job = make_sharded_job(std::move(sample), shard, opts,
                                  priority, /*deliver_sharded=*/true);
    std::future<ShardedRunResult> future =
        job->sharded_promise.get_future();
    admit(job);
    return future;
}

std::future<RunResult>
PoolScheduler::submit_sharded_as_run(GraphSample sample,
                                     const ShardConfig &shard,
                                     const RunOptions &opts, int priority)
{
    JobPtr job = make_sharded_job(std::move(sample), shard, opts,
                                  priority, /*deliver_sharded=*/false);
    std::future<RunResult> future = job->run_promise.get_future();
    admit(job);
    return future;
}

void
PoolScheduler::drain()
{
    start(); // a paused pool would otherwise never become idle
    UniqueLock lock(&mutex_);
    idle_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
        return fast_.completed + fast_.failed == fast_.submitted &&
               sharded_.completed + sharded_.failed ==
                   sharded_.submitted;
    });
}

void
PoolScheduler::shutdown()
{
    {
        MutexLock lock(&mutex_);
        if (closed_)
            return;
        closed_ = true;
    }
    admit_.notify_all(); // blocked producers observe closed_ and throw
    drain();
    {
        MutexLock lock(&mutex_);
        shutdown_ = true;
    }
    work_.notify_all();
    unpark_.notify_all();
    for (std::thread &die : die_threads_)
        die.join();
}

PoolStats
PoolScheduler::stats() const
{
    PoolStats out;
    {
        MutexLock lock(&mutex_);
        out.fast = fast_;
        out.sharded = sharded_;
        out.jobs_pending = queue_.size();
        out.tasks_running = tasks_running_;
        out.blocked_producers = blocked_producers_;
        out.queue_capacity = config_.queue_capacity;
    }
    // Full-lifetime delay percentiles from the shared log-bucket
    // histogram (~1% relative error; see obs/metrics.h). Lock-free,
    // so a polling monitor never stalls dispatch.
    obs::HistogramSnapshot delays = queue_delay_hist_.snapshot();
    out.queue_delay_p50_ms = delays.quantile(0.50);
    out.queue_delay_p95_ms = delays.quantile(0.95);
    out.queue_delay_p99_ms = delays.quantile(0.99);
    out.uptime_ms = pool_.uptime_ms();
    out.peak_busy_dies = pool_.peak_busy();
    out.dies = pool_.die_stats();
    out.occupancy = pool_.occupancy_timeline();
    return out;
}

} // namespace flowgnn
