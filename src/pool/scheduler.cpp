#include "pool/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/telemetry.h"
#include "ghost/ghost_engine.h"
#include "obs/trace_session.h"

namespace flowgnn {

const char *
pool_policy_name(PoolPolicy policy)
{
    switch (policy) {
      case PoolPolicy::kFifoGang: return "fifo-gang";
      case PoolPolicy::kSpaceShare: return "space-share";
      case PoolPolicy::kPriority: return "priority";
      case PoolPolicy::kEdf: return "edf";
    }
    return "unknown";
}

/** One admitted job: immutable inputs (prepared sample, plan, opts)
 * plus mutable dispatch/completion state guarded by the scheduler
 * mutex. Each task writes only its own results slot, so slices of one
 * job can run on many dies without further synchronization. */
struct PoolScheduler::Job {
    enum class Deliver { kRun, kSharded };

    bool sharded_path = false; ///< admitted via submit_sharded*
    Deliver deliver = Deliver::kRun;
    int priority = 0;
    JobSpec spec;
    /** enqueued + deadline_ms; time_point::max() when no deadline. */
    std::chrono::steady_clock::time_point abs_deadline{
        std::chrono::steady_clock::time_point::max()};
    std::uint64_t id = 0;       ///< admission order, for trace labels
    std::uint64_t enq_ns = 0;   ///< admit instant on the trace clock
    GraphSample prepared;
    /** Ghost-mode job: layers are exchange-synchronous, so the slices
     * cannot be scheduled independently. The job is one indivisible
     * task — run_ghost_plan threads its modeled dies internally — and
     * occupies one host die for its duration. */
    bool ghost = false;
    GhostPlan ghost_plan;
    ShardedRunResult ghost_result;
    ShardPlan plan;
    LinkConfig link{};
    RunOptions opts;
    std::vector<RunResult> results; ///< one slot per slice
    std::size_t next_task = 0;
    std::size_t done_tasks = 0;
    bool dispatched_any = false;
    /** Tasks preempted at a layer boundary, waiting to resume. */
    std::vector<std::size_t> requeued;
    /** Per-task layer-boundary checkpoints (engine tasks). */
    std::vector<LayerCheckpoint> task_ckpts;
    /** Ghost jobs: the functional pass's resume state. */
    GhostResumeState ghost_resume;

    /** Tasks still needing a die (undispatched + requeued). */
    std::size_t
    remaining() const
    {
        return results.size() - next_task + requeued.size();
    }
    std::exception_ptr error;
    std::chrono::steady_clock::time_point enqueued{};
    std::promise<RunResult> run_promise;
    std::promise<ShardedRunResult> sharded_promise;
};

PoolScheduler::PoolScheduler(const Model &model, EngineConfig engine_config,
                             PoolConfig config)
    : model_(model),
      config_(config),
      pool_(model, engine_config, config.num_dies),
      metrics_(config.metrics
                   ? config.metrics
                   : std::make_shared<obs::MetricsRegistry>()),
      jobs_ctr_(metrics_->counter("pool.jobs_total")),
      completed_ctr_(metrics_->counter("pool.completed_total")),
      failed_ctr_(metrics_->counter("pool.failed_total")),
      rejected_ctr_(metrics_->counter("pool.rejected_total")),
      busy_dies_gauge_(metrics_->gauge("pool.busy_dies")),
      queue_depth_gauge_(metrics_->gauge("pool.queue_depth")),
      queue_delay_hist_(metrics_->histogram("pool.queue_delay_ms")),
      deadline_miss_ctr_(metrics_->counter("pool.deadline_misses_total")),
      preempt_ctr_(metrics_->counter("pool.preemptions_total")),
      active_dies_gauge_(metrics_->gauge("pool.active_dies")),
      lateness_hist_(metrics_->histogram("pool.lateness_ms"))
{
    // Fail fast: a malformed config must never reach die threads.
    config_.validate();
    config_.run_options.validate();

    active_dies_ = pool_.size();
    active_dies_gauge_.set(static_cast<double>(active_dies_));
    running_.resize(pool_.size());
    die_tokens_.reserve(pool_.size());
    for (std::size_t d = 0; d < pool_.size(); ++d)
        die_tokens_.push_back(std::make_unique<PreemptToken>());

    started_ = !config_.start_paused;
    die_threads_.reserve(pool_.size());
    for (std::size_t d = 0; d < pool_.size(); ++d)
        die_threads_.emplace_back([this, d] { die_loop(d); });
}

PoolScheduler::~PoolScheduler() { shutdown(); }

void
PoolScheduler::start()
{
    {
        MutexLock lock(&mutex_);
        if (started_)
            return;
        started_ = true;
    }
    // Utilization should measure the serving interval, not the parked
    // prefix tests use to build deterministic backlogs.
    pool_.reset_epoch();
    unpark_.notify_all();
}

std::size_t
PoolScheduler::effective_active() const
{
    // The autoscaler's cap, raised to the widest pending job so a
    // gang wider than the shrunk pool can still start (scaling down
    // must never deadlock admission-time clamped widths).
    std::size_t cap = active_dies_;
    for (const JobPtr &job : queue_)
        cap = std::max(cap, job->remaining());
    return std::min(cap, pool_.size());
}

bool
PoolScheduler::try_pick(Dispatch &out)
{
    out.job.reset();
    if (queue_.empty())
        return false;
    const std::size_t cap = effective_active();
    if (tasks_running_ >= cap)
        return false; // scaled down: leave the die parked
    const std::size_t idle = cap - tasks_running_;

    switch (config_.policy) {
      case PoolPolicy::kSpaceShare: {
        // Work-conserving: the queue only holds jobs with undispatched
        // tasks, so the FIFO head always yields one. Later jobs
        // backfill automatically once earlier ones are fully
        // dispatched (and therefore popped).
        out.job = queue_.front();
        break;
      }
      case PoolPolicy::kFifoGang: {
        // Jobs start strictly in order, each only when its full width
        // is simultaneously free. A started job's remaining tasks go
        // first; an unstarted head that does not fit blocks the scan
        // (the policy's head-of-line cost) — unless EASY backfill can
        // prove a later job ends before the head's reservation.
        const Job *blocked_head = nullptr;
        for (const JobPtr &job : queue_) {
            if (job->dispatched_any) {
                out.job = job;
                break;
            }
            if (blocked_head == nullptr) {
                if (idle >= job->remaining()) {
                    out.job = job;
                    break;
                }
                if (!config_.easy_backfill)
                    return false;
                blocked_head = job.get();
                continue; // scan on for a backfill candidate
            }
            // Backfill candidate: must fit in the idle dies right now
            // AND provably finish before the head's reservation. The
            // reservation is when the (width - idle)-th soonest
            // running-task finish frees enough dies; estimates
            // missing anywhere -> no proof -> no backfill.
            if (job->remaining() > idle ||
                job->spec.estimated_task_cycles == 0)
                continue;
            std::vector<std::chrono::steady_clock::time_point> fins;
            fins.reserve(running_.size());
            bool all_known = true;
            for (const Running &r : running_) {
                if (!r.job)
                    continue;
                if (!r.has_est) {
                    all_known = false;
                    break;
                }
                fins.push_back(r.est_finish);
            }
            const std::size_t need = blocked_head->remaining() - idle;
            if (!all_known || fins.size() < need)
                return false; // reservation unknowable; plain gang
            std::sort(fins.begin(), fins.end());
            const auto reservation = fins[need - 1];
            const auto now = std::chrono::steady_clock::now();
            const double est_ms =
                static_cast<double>(job->spec.estimated_task_cycles) /
                (pool_.engine(0).config().clock_mhz * 1e3);
            const auto est_end = now +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(est_ms));
            if (est_end <= reservation) {
                out.job = job;
                break;
            }
        }
        break;
      }
      case PoolPolicy::kPriority: {
        auto now = std::chrono::steady_clock::now();
        long best_eff = 0;
        for (const JobPtr &job : queue_) {
            long eff = job->priority;
            if (config_.aging_ms > 0.0)
                eff += static_cast<long>(
                    ms_between(job->enqueued, now) / config_.aging_ms);
            // Strict > keeps FIFO order among ties (queue_ is FIFO).
            if (!out.job || eff > best_eff) {
                out.job = job;
                best_eff = eff;
            }
        }
        break;
      }
      case PoolPolicy::kEdf: {
        // Pure earliest-deadline order (ties FIFO by id — which is
        // exactly kFifoGang when all deadlines are equal), with the
        // gang width rule on unstarted jobs.
        JobPtr best;
        for (const JobPtr &job : queue_)
            if (!best || job->abs_deadline < best->abs_deadline ||
                (job->abs_deadline == best->abs_deadline &&
                 job->id < best->id))
                best = job;
        if (best) {
            if (best->dispatched_any || idle >= best->remaining())
                out.job = best;
            else
                return false;
        }
        break;
      }
    }
    if (!out.job)
        return false;
    if (!out.job->requeued.empty())
        out.task = out.job->requeued.back();
    else
        out.task = out.job->next_task;
    return true;
}

void
PoolScheduler::die_loop(std::size_t die)
{
    obs::TraceSession *named_for = nullptr; // row named once per session
    UniqueLock lock(&mutex_);
    unpark_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
        return started_ || shutdown_;
    });

    for (;;) {
        Dispatch d;
        work_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
            return shutdown_ || try_pick(d);
        });
        if (!d.job) {
            if (shutdown_)
                return;
            continue;
        }

        // ---- Dispatch d.task of d.job onto this die. ----
        obs::TraceSession *session = obs::TraceSession::current();
        Job &job = *d.job;
        if (!job.dispatched_any) {
            job.dispatched_any = true;
            queue_delay_hist_.record(ms_between(
                job.enqueued, std::chrono::steady_clock::now()));
            // The request's time-in-queue, on its own timeline.
            if (session && job.enq_ns != 0)
                session->span(obs::Track::kPool, "queue-wait",
                              job.enq_ns, session->now_ns());
        }
        if (!job.requeued.empty() && d.task == job.requeued.back())
            job.requeued.pop_back(); // resuming a preempted task
        else
            ++job.next_task;
        ++tasks_running_;
        if (job.next_task == job.results.size() &&
            job.requeued.empty()) {
            // Fully dispatched: leaves the pending queue (freeing
            // admission capacity) while its tasks finish on the dies.
            queue_.erase(
                std::find(queue_.begin(), queue_.end(), d.job));
            admit_.notify_one();
        }
        // Record what this die runs (and when it should finish, if
        // the submitter provided an estimate) — the inputs to EASY
        // reservations and preemption victim selection.
        {
            Running &slot = running_[die];
            slot.job = d.job;
            slot.task = d.task;
            slot.has_est = job.spec.estimated_task_cycles > 0;
            if (slot.has_est) {
                const double est_ms =
                    static_cast<double>(
                        job.spec.estimated_task_cycles) /
                    (pool_.engine(die).config().clock_mhz * 1e3);
                slot.est_finish = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            est_ms));
            }
        }
        // Other idle dies may now have work (e.g. the rest of a
        // gang-started job's tasks).
        work_.notify_all();
        pool_.lease(die);
        busy_dies_gauge_.set(static_cast<double>(tasks_running_));
        queue_depth_gauge_.set(static_cast<double>(queue_.size()));
        std::uint64_t lease_start_ns = 0;
        if (session) {
            if (session != named_for) {
                char row[24];
                std::snprintf(row, sizeof row, "die %zu", die);
                session->name_thread(obs::Track::kPool, row);
                named_for = session;
            }
            session->counter(obs::Track::kPool, "busy dies",
                             static_cast<double>(tasks_running_));
            lease_start_ns = session->now_ns();
        }
        lock.unlock();

        bool ok = true;
        bool preempted = false;
        RunResult result;
        std::exception_ptr error;
        PreemptToken &token = *die_tokens_[die];
        try {
            Engine &engine = pool_.engine(die);
            if (job.ghost) {
                if (config_.enable_preemption) {
                    RunOptions popts = job.opts;
                    popts.preempt = &token;
                    job.ghost_result = run_ghost_plan(
                        model_, engine.config(),
                        SampleRef(job.prepared),
                        std::move(job.ghost_plan), popts, job.link,
                        &job.ghost_resume, 1);
                    if (job.ghost_resume.preempted) {
                        preempted = true;
                        job.ghost_plan =
                            std::move(job.ghost_resume.plan);
                    }
                } else {
                    job.ghost_result = run_ghost_plan(
                        model_, engine.config(), job.prepared,
                        std::move(job.ghost_plan), job.opts,
                        job.link);
                }
            } else {
                RunWorkspace &ws = pool_.workspace(die);
                if (config_.enable_preemption) {
                    RunOptions popts = job.opts;
                    popts.preempt = &token;
                    const GraphSample &g = job.plan.sharded
                        ? job.plan.slices[d.task].sub
                        : job.prepared;
                    preempted =
                        engine.run_resumable(
                            SampleRef(g), popts, ws,
                            job.task_ckpts[d.task], result,
                            std::size_t(-1),
                            1) == SegmentOutcome::kPreempted;
                } else {
                    result = job.plan.sharded
                        ? engine.run_prepared(
                              job.plan.slices[d.task].sub, job.opts,
                              ws)
                        : engine.run_prepared(job.prepared, job.opts,
                                              ws);
                }
            }
        } catch (...) {
            ok = false;
            error = std::current_exception();
        }
        token.reset(); // never leak a request into the next lease
        pool_.release(die);
        if (session) {
            char nm[48];
            if (job.ghost)
                std::snprintf(nm, sizeof nm,
                              "lease: job %llu (ghost)",
                              static_cast<unsigned long long>(job.id));
            else if (job.plan.sharded)
                std::snprintf(nm, sizeof nm,
                              "lease: job %llu slice %zu/%zu",
                              static_cast<unsigned long long>(job.id),
                              d.task, job.results.size());
            else
                std::snprintf(nm, sizeof nm, "lease: job %llu",
                              static_cast<unsigned long long>(job.id));
            session->span(obs::Track::kPool, nm, lease_start_ns,
                          session->now_ns());
        }

        lock.lock();
        --tasks_running_;
        running_[die] = Running{};
        busy_dies_gauge_.set(static_cast<double>(tasks_running_));
        if (session)
            session->counter(obs::Track::kPool, "busy dies",
                             static_cast<double>(tasks_running_));
        if (preempted) {
            // Yielded at a layer boundary: the checkpoint lives in
            // the job; requeue the task and let try_pick hand the die
            // to whoever is more urgent now.
            preempt_ctr_.add(1);
            job.requeued.push_back(d.task);
            if (std::find(queue_.begin(), queue_.end(), d.job) ==
                queue_.end())
                queue_.push_back(d.job);
            queue_depth_gauge_.set(static_cast<double>(queue_.size()));
            work_.notify_all();
            continue;
        }
        job.results[d.task] = std::move(result);
        if (!ok && !job.error)
            job.error = error;
        ++job.done_tasks;
        bool job_done = job.done_tasks == job.results.size();
        // A die freed up: gang starts that did not fit may fit now.
        work_.notify_all();
        if (job_done) {
            lock.unlock();
            finalize(d.job); // merge is real work; never under the lock
            lock.lock();
        }
    }
}

void
PoolScheduler::finalize(const JobPtr &jobp)
{
    Job &job = *jobp;
    bool ok = !job.error;
    ShardedRunResult merged;
    if (ok) {
        try {
            merged = job.ghost
                ? std::move(job.ghost_result)
                : merge_shard_results(model_, job.prepared,
                                      std::move(job.plan),
                                      std::move(job.results),
                                      job.link);
        } catch (...) {
            ok = false;
            job.error = std::current_exception();
        }
    }

    // Count the completion BEFORE fulfilling the promise, so a caller
    // that checks stats() right after future.get() sees it.
    completed_ctr_.add(ok);
    failed_ctr_.add(!ok);
    if (job.spec.deadline_ms > 0.0) {
        // Lateness vs the admission-relative deadline, clamped at 0
        // so the histogram's quantiles read "how late are the late
        // ones" over ALL deadline jobs.
        const double lateness =
            ms_between(job.enqueued, std::chrono::steady_clock::now()) -
            job.spec.deadline_ms;
        lateness_hist_.record(std::max(0.0, lateness));
        if (lateness > 0.0)
            deadline_miss_ctr_.add(1);
    }
    {
        MutexLock lock(&mutex_);
        PoolPathStats &path = job.sharded_path ? sharded_ : fast_;
        path.completed += ok;
        path.failed += !ok;
    }
    idle_.notify_all();

    if (job.deliver == Job::Deliver::kSharded) {
        if (ok)
            job.sharded_promise.set_value(std::move(merged));
        else
            job.sharded_promise.set_exception(job.error);
    } else {
        if (ok) {
            RunResult run;
            run.embeddings = std::move(merged.embeddings);
            run.prediction = merged.prediction;
            run.stats = std::move(merged.stats);
            job.run_promise.set_value(std::move(run));
        } else {
            job.run_promise.set_exception(job.error);
        }
    }
}

void
PoolScheduler::admit(const JobPtr &job)
{
    {
        UniqueLock lock(&mutex_);
        // Select the path tally under the lock (fast_/sharded_ are
        // guarded; job->sharded_path is immutable once admitted).
        PoolPathStats &path = job->sharded_path ? sharded_ : fast_;
        if (closed_)
            throw std::logic_error(
                "PoolScheduler: submit after shutdown");
        if (config_.admission == AdmissionPolicy::kReject) {
            if (queue_.size() >= config_.queue_capacity) {
                ++path.rejected;
                rejected_ctr_.add(1);
                throw ServiceOverloaded();
            }
        } else if (queue_.size() >= config_.queue_capacity) {
            ++blocked_producers_;
            admit_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
                return closed_ ||
                       queue_.size() < config_.queue_capacity;
            });
            --blocked_producers_;
            if (closed_)
                throw std::logic_error(
                    "PoolScheduler: submit after shutdown");
        }
        ++path.submitted;
        job->id = next_job_id_++;
        job->enqueued = std::chrono::steady_clock::now();
        if (job->spec.deadline_ms > 0.0)
            job->abs_deadline = job->enqueued +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        job->spec.deadline_ms));
        if (obs::TraceSession *session = obs::TraceSession::current())
            job->enq_ns = session->now_ns();
        queue_.push_back(job);
        jobs_ctr_.add(1);
        queue_depth_gauge_.set(static_cast<double>(queue_.size()));
        maybe_preempt(job);
    }
    work_.notify_all();
}

void
PoolScheduler::maybe_preempt(const JobPtr &urgent)
{
    if (!config_.enable_preemption)
        return;
    if (config_.policy != PoolPolicy::kPriority &&
        config_.policy != PoolPolicy::kEdf)
        return;
    if (tasks_running_ < effective_active())
        return; // a die is (about to be) free; no need to evict
    // Evict enough of the least-urgent running tasks to fit the
    // urgent job's width — each victim strictly less urgent than the
    // newcomer, so preemption can only shorten its wait.
    std::size_t want = urgent->remaining();
    std::vector<std::size_t> victims;
    for (std::size_t d = 0; d < running_.size(); ++d)
        if (running_[d].job)
            victims.push_back(d);
    const bool edf = config_.policy == PoolPolicy::kEdf;
    std::sort(victims.begin(), victims.end(),
              [&](std::size_t a, std::size_t b)
                  FLOWGNN_REQUIRES(mutex_) {
                      const Job &ja = *running_[a].job;
                      const Job &jb = *running_[b].job;
                      return edf ? ja.abs_deadline > jb.abs_deadline
                                 : ja.priority < jb.priority;
                  });
    for (std::size_t d : victims) {
        if (want == 0)
            break;
        const Job &victim = *running_[d].job;
        const bool more_urgent = edf
            ? urgent->abs_deadline < victim.abs_deadline
            : urgent->priority - victim.priority >=
                  config_.preempt_priority_gap;
        if (!more_urgent)
            break; // sorted: nobody further is less urgent
        die_tokens_[d]->request();
        --want;
    }
}

std::future<RunResult>
PoolScheduler::enqueue_fast(GraphSample sample, const RunOptions &opts,
                            const JobSpec &spec)
{
    opts.validate();
    auto job = std::make_shared<Job>();
    job->priority = spec.priority;
    job->spec = spec;
    job->opts = opts;
    // Preparing on the submitting thread keeps dies lease-time pure
    // compute; run_prepared(prepare(s)) is exactly Engine::run(s), so
    // the fast path stays bit-identical to a sequential engine loop.
    job->prepared = model_.prepare(sample);
    if (!job->prepared.consistent())
        throw std::invalid_argument("PoolScheduler: inconsistent sample");
    ShardConfig whole;
    whole.num_shards = 1;
    job->plan = make_shard_plan(model_, job->prepared, whole);
    job->results.resize(job->plan.slices.size());
    job->task_ckpts.resize(job->results.size());
    std::future<RunResult> future = job->run_promise.get_future();
    admit(job);
    return future;
}

std::future<RunResult>
PoolScheduler::submit(GraphSample sample, int priority)
{
    JobSpec spec;
    spec.priority = priority;
    return enqueue_fast(std::move(sample), config_.run_options, spec);
}

std::future<RunResult>
PoolScheduler::submit(GraphSample sample, const RunOptions &opts,
                      int priority)
{
    JobSpec spec;
    spec.priority = priority;
    return enqueue_fast(std::move(sample), opts, spec);
}

std::future<RunResult>
PoolScheduler::submit(GraphSample sample, const RunOptions &opts,
                      const JobSpec &spec)
{
    return enqueue_fast(std::move(sample), opts, spec);
}

std::future<ShardedRunResult>
PoolScheduler::submit_sharded(GraphSample sample, const ShardConfig &shard,
                              int priority)
{
    return submit_sharded(std::move(sample), shard,
                          config_.run_options, priority);
}

namespace {

/** A job can never be wider than the pool (a gang that needs more
 * dies than exist would deadlock kFifoGang). */
ShardConfig
clamp_to_pool(const ShardConfig &shard, std::size_t num_dies)
{
    ShardConfig clamped = shard;
    clamped.validate();
    clamped.num_shards = static_cast<std::uint32_t>(std::min<std::size_t>(
        clamped.num_shards, num_dies));
    return clamped;
}

} // namespace

PoolScheduler::JobPtr
PoolScheduler::make_sharded_job(GraphSample sample,
                                const ShardConfig &shard,
                                const RunOptions &opts,
                                const JobSpec &spec,
                                bool deliver_sharded)
{
    opts.validate();
    ShardConfig clamped = clamp_to_pool(shard, pool_.size());
    auto job = std::make_shared<Job>();
    job->sharded_path = true;
    job->deliver = deliver_sharded ? Job::Deliver::kSharded
                                   : Job::Deliver::kRun;
    job->priority = spec.priority;
    job->spec = spec;
    job->opts = opts;
    job->link = clamped.link;
    job->prepared = model_.prepare(sample);
    if (!job->prepared.consistent())
        throw std::invalid_argument("PoolScheduler: inconsistent sample");
    char span_name[32];
    std::snprintf(span_name, sizeof span_name, "plan %s P=%u",
                  clamped.mode == ShardMode::kGhostExchange ? "ghost"
                                                            : "halo",
                  clamped.num_shards);
    obs::Span plan_span(obs::Track::kShard, span_name);
    if (clamped.mode == ShardMode::kGhostExchange) {
        job->ghost = true;
        job->ghost_plan = make_ghost_plan(model_, job->prepared, clamped);
        job->results.resize(1); // one indivisible task
    } else {
        job->plan = make_shard_plan(model_, job->prepared, clamped);
        job->results.resize(job->plan.slices.size());
    }
    job->task_ckpts.resize(job->results.size());
    return job;
}

std::future<ShardedRunResult>
PoolScheduler::submit_sharded(GraphSample sample, const ShardConfig &shard,
                              const RunOptions &opts, int priority)
{
    JobSpec spec;
    spec.priority = priority;
    return submit_sharded(std::move(sample), shard, opts, spec);
}

std::future<ShardedRunResult>
PoolScheduler::submit_sharded(GraphSample sample, const ShardConfig &shard,
                              const RunOptions &opts, const JobSpec &spec)
{
    JobPtr job = make_sharded_job(std::move(sample), shard, opts,
                                  spec, /*deliver_sharded=*/true);
    std::future<ShardedRunResult> future =
        job->sharded_promise.get_future();
    admit(job);
    return future;
}

std::future<RunResult>
PoolScheduler::submit_sharded_as_run(GraphSample sample,
                                     const ShardConfig &shard,
                                     const RunOptions &opts, int priority)
{
    JobSpec spec;
    spec.priority = priority;
    JobPtr job = make_sharded_job(std::move(sample), shard, opts,
                                  spec, /*deliver_sharded=*/false);
    std::future<RunResult> future = job->run_promise.get_future();
    admit(job);
    return future;
}

void
PoolScheduler::set_active_dies(std::size_t n)
{
    {
        MutexLock lock(&mutex_);
        active_dies_ =
            std::min(std::max<std::size_t>(n, 1), pool_.size());
        active_dies_gauge_.set(static_cast<double>(active_dies_));
    }
    // Scaling up frees capacity parked dies can pick up immediately.
    work_.notify_all();
}

std::size_t
PoolScheduler::active_dies() const
{
    MutexLock lock(&mutex_);
    return active_dies_;
}

void
PoolScheduler::drain()
{
    start(); // a paused pool would otherwise never become idle
    UniqueLock lock(&mutex_);
    idle_.wait(lock, [&]() FLOWGNN_REQUIRES(mutex_) {
        return fast_.completed + fast_.failed == fast_.submitted &&
               sharded_.completed + sharded_.failed ==
                   sharded_.submitted;
    });
}

void
PoolScheduler::shutdown()
{
    {
        MutexLock lock(&mutex_);
        if (closed_)
            return;
        closed_ = true;
    }
    admit_.notify_all(); // blocked producers observe closed_ and throw
    drain();
    {
        MutexLock lock(&mutex_);
        shutdown_ = true;
    }
    work_.notify_all();
    unpark_.notify_all();
    for (std::thread &die : die_threads_)
        die.join();
}

PoolStats
PoolScheduler::stats() const
{
    PoolStats out;
    {
        MutexLock lock(&mutex_);
        out.fast = fast_;
        out.sharded = sharded_;
        out.jobs_pending = queue_.size();
        out.tasks_running = tasks_running_;
        out.blocked_producers = blocked_producers_;
        out.queue_capacity = config_.queue_capacity;
        out.active_dies = active_dies_;
    }
    out.deadline_misses =
        static_cast<std::size_t>(deadline_miss_ctr_.value());
    out.preemptions = static_cast<std::size_t>(preempt_ctr_.value());
    {
        obs::HistogramSnapshot lateness = lateness_hist_.snapshot();
        out.lateness_p50_ms = lateness.quantile(0.50);
        out.lateness_p99_ms = lateness.quantile(0.99);
    }
    // Full-lifetime delay percentiles from the shared log-bucket
    // histogram (~1% relative error; see obs/metrics.h). Lock-free,
    // so a polling monitor never stalls dispatch.
    obs::HistogramSnapshot delays = queue_delay_hist_.snapshot();
    out.queue_delay_p50_ms = delays.quantile(0.50);
    out.queue_delay_p95_ms = delays.quantile(0.95);
    out.queue_delay_p99_ms = delays.quantile(0.99);
    out.uptime_ms = pool_.uptime_ms();
    out.peak_busy_dies = pool_.peak_busy();
    out.dies = pool_.die_stats();
    out.occupancy = pool_.occupancy_timeline();
    return out;
}

} // namespace flowgnn
