#include "pool/autoscaler.h"

#include <algorithm>
#include <chrono>

namespace flowgnn {

AutoscalerPolicy::AutoscalerPolicy(AutoscalerConfig config,
                                   std::size_t initial)
    : config_(config)
{
    config_.validate();
    target_ = std::min(std::max(initial, config_.min_dies),
                       config_.max_dies);
}

std::size_t
AutoscalerPolicy::step(const AutoscalerWindow &window)
{
    ++windows_;
    if (cooldown_ > 0) {
        --cooldown_;
        return target_;
    }
    const double active = static_cast<double>(target_);
    const bool pressure =
        window.queue_depth > config_.scale_up_queue_per_die * active ||
        (config_.scale_up_p99_ms > 0.0 &&
         window.queue_delay_p99_ms > config_.scale_up_p99_ms);
    if (pressure) {
        const std::size_t next =
            std::min(target_ + config_.step_up, config_.max_dies);
        if (next != target_) {
            target_ = next;
            cooldown_ = config_.cooldown_windows;
        }
        return target_;
    }
    const bool idle =
        window.queue_depth == 0.0 &&
        window.busy_dies < config_.scale_down_util * active;
    if (idle) {
        const std::size_t shrink =
            std::min(config_.step_down, target_ - config_.min_dies);
        if (shrink > 0) {
            target_ -= shrink;
            cooldown_ = config_.cooldown_windows;
        }
    }
    return target_;
}

AutoscalerWindow
window_from_delta(const obs::MetricsSnapshot &delta)
{
    AutoscalerWindow w;
    auto g = delta.gauges.find("pool.busy_dies");
    if (g != delta.gauges.end())
        w.busy_dies = g->second;
    g = delta.gauges.find("pool.queue_depth");
    if (g != delta.gauges.end())
        w.queue_depth = g->second;
    auto h = delta.histograms.find("pool.queue_delay_ms");
    if (h != delta.histograms.end() && h->second.count > 0)
        w.queue_delay_p99_ms = h->second.quantile(0.99);
    return w;
}

Autoscaler::Autoscaler(PoolScheduler &scheduler, AutoscalerConfig config)
    : scheduler_(scheduler),
      config_(config),
      policy_(config, scheduler.active_dies())
{
    thread_ = std::thread([this] { loop(); });
}

Autoscaler::~Autoscaler() { stop(); }

void
Autoscaler::stop()
{
    {
        MutexLock lock(&mutex_);
        if (stop_)
            return;
        stop_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

std::size_t
Autoscaler::target() const
{
    MutexLock lock(&mutex_);
    return policy_.target();
}

std::size_t
Autoscaler::windows_seen() const
{
    MutexLock lock(&mutex_);
    return policy_.windows_seen();
}

void
Autoscaler::loop()
{
    obs::MetricsSnapshot prev = scheduler_.metrics()->snapshot();
    const auto interval = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(config_.interval_ms));
    UniqueLock lock(&mutex_);
    for (;;) {
        if (wake_.wait_for(lock, interval, [&]() FLOWGNN_REQUIRES(
                                               mutex_) { return stop_; }))
            return;
        lock.unlock();
        // Snapshot outside the autoscaler lock: the registry walk is
        // lock-free for writers but can still take a while.
        obs::MetricsSnapshot cur = scheduler_.metrics()->snapshot();
        const AutoscalerWindow window =
            window_from_delta(cur.delta(prev));
        prev = std::move(cur);
        lock.lock();
        const std::size_t next = policy_.step(window);
        lock.unlock();
        scheduler_.set_active_dies(next);
        lock.lock();
    }
}

} // namespace flowgnn
