/**
 * @file
 * flowgnn::pool — synthetic open-loop arrival generation for serving
 * experiments: a time-varying Poisson process (diurnal sinusoid plus
 * an optional multiplicative burst window) sampled by thinning, fully
 * deterministic under a seed.
 *
 * Open-loop means arrivals never wait for completions — the generator
 * emits timestamps from the rate function alone, so an overloaded
 * policy sees a growing queue instead of a conveniently slowed
 * workload (the coordinated-omission trap closed-loop drivers fall
 * into). Times are modeled kernel cycles so the same trace drives the
 * cycle-domain schedule simulator exactly and the live pool via
 * cycles -> wall conversion at the engine clock.
 */
#ifndef FLOWGNN_POOL_ARRIVALS_H
#define FLOWGNN_POOL_ARRIVALS_H

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace flowgnn {

/** Rate shape for one generated trace. The instantaneous rate is
 *
 *   rate(t) = base * (1 + diurnal_amplitude * sin(2*pi*t/period))
 *             * (burst_factor inside the burst window, else 1)
 *
 * with `base` in arrivals per million cycles. */
struct ArrivalPattern {
    std::uint64_t horizon_cycles = 1'000'000;
    /** Mean arrival rate, jobs per 1e6 cycles. */
    double base_rate_per_mcycle = 50.0;
    /** Sinusoid depth in [0, 1); 0 = flat. */
    double diurnal_amplitude = 0.5;
    std::uint64_t diurnal_period_cycles = 500'000;
    /** Rate multiplier inside [burst_start, burst_start + burst_len);
     * the ISSUE's 10x spike. burst_len == 0 disables the burst. */
    double burst_factor = 10.0;
    std::uint64_t burst_start_cycles = 0;
    std::uint64_t burst_len_cycles = 0;
    std::uint64_t seed = 1;

    void
    validate() const
    {
        if (horizon_cycles == 0)
            throw std::invalid_argument(
                "ArrivalPattern: horizon must be positive");
        if (base_rate_per_mcycle <= 0.0)
            throw std::invalid_argument(
                "ArrivalPattern: base rate must be positive");
        if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0)
            throw std::invalid_argument(
                "ArrivalPattern: amplitude must be in [0, 1)");
        if (diurnal_amplitude > 0.0 && diurnal_period_cycles == 0)
            throw std::invalid_argument(
                "ArrivalPattern: period must be positive");
        if (burst_len_cycles > 0 && burst_factor <= 0.0)
            throw std::invalid_argument(
                "ArrivalPattern: burst factor must be positive");
    }
};

/** Instantaneous rate at cycle t, jobs per 1e6 cycles. */
double arrival_rate_at(const ArrivalPattern &pattern, std::uint64_t t);

/**
 * Generates the sorted arrival cycles over [0, horizon) by Lewis-Shedler
 * thinning: candidates from a homogeneous Poisson process at the rate
 * ceiling, each kept with probability rate(t)/ceiling. Deterministic:
 * same pattern (incl. seed) -> same trace, on every platform (all
 * randomness flows through tensor/rng.h).
 */
std::vector<std::uint64_t> generate_arrivals(const ArrivalPattern &pattern);

} // namespace flowgnn

#endif // FLOWGNN_POOL_ARRIVALS_H
