/**
 * @file
 * Cycle-domain pool-schedule simulator: replays the PoolScheduler's
 * dispatch policies over modeled task durations, with no threads and
 * no wall clock. Given each job's per-task cycle counts (from isolated
 * engine runs) it answers "what makespan and die utilization would
 * this trace see under policy X" deterministically — the modeled
 * counterpart of the live pool's wall-clock numbers, and the thing CI
 * can assert on without timing flakiness.
 *
 * Beyond the base policies the simulator replays the whole SLO stack
 * (SimOptions):
 *  - kEdf ordering with per-job deadlines, lateness, and miss counts;
 *  - EASY backfill for kFifoGang, with the head job's start-time
 *    reservation recorded per job so tests can assert the non-delay
 *    invariant exactly;
 *  - layer-boundary preemption (kPriority/kEdf): an arriving
 *    more-urgent job evicts the least-urgent running task at its next
 *    boundary multiple; the remainder (plus a checkpoint overhead)
 *    requeues — mirroring Engine::run_resumable;
 *  - elastic capacity: an AutoscalerPolicy stepped on exact windowed
 *    busy-die means and queue depths, its active-die cap applied to
 *    dispatch and its decision sequence recorded for pinning.
 *
 * Unlike the live scheduler (which backfills only on caller-provided
 * estimates), the simulator knows exact durations, so easy_backfill
 * defaults OFF to keep plain-gang pins stable; tests opt in.
 */
#ifndef FLOWGNN_POOL_SCHEDULE_SIM_H
#define FLOWGNN_POOL_SCHEDULE_SIM_H

#include <cstdint>
#include <vector>

#include "pool/autoscaler.h"
#include "pool/scheduler.h"

namespace flowgnn {

/** One job of a simulated trace. All times in this header are modeled
 * kernel cycles (take them from RunStats of isolated runs), not wall
 * time — which is what makes the simulator's output flake-free. */
struct SimJob {
    /** Modeled duration of each shard task (kernel cycles). Size =
     * job width; must be <= the simulated die count. */
    std::vector<std::uint64_t> task_cycles;
    /** Submission time (cycles since trace start). */
    std::uint64_t arrival = 0;
    /** kPriority only. */
    int priority = 0;
    /** Relative deadline in cycles (absolute = arrival + deadline);
     * 0 = none. Orders kEdf and feeds lateness/miss accounting. */
    std::uint64_t deadline = 0;
    /** Message-passing layer-boundary spacing in cycles: a preempted
     * task yields at the next boundary multiple since its start.
     * 0 = not preemptible (runs to completion). */
    std::uint64_t boundary_cycles = 0;
};

/** Everything simulate_pool_schedule can vary beyond the trace. */
struct SimOptions {
    std::uint32_t num_dies = 4;
    PoolPolicy policy = PoolPolicy::kSpaceShare;
    /** kPriority aging step (cycles waited per step); 0 disables. */
    std::uint64_t aging_cycles = 0;
    /** kFifoGang EASY backfill (exact-duration variant). OFF by
     * default — see the header comment. */
    bool easy_backfill = false;
    /** kPriority/kEdf: evict the least-urgent running preemptible
     * task when a strictly more-urgent job arrives and no die is
     * free. */
    bool enable_preemption = false;
    int preempt_priority_gap = 1;
    /** Cycles added to a preempted task's remainder (checkpoint store
     * + reload DMA — price it from LayerCheckpoint::checkpoint_words
     * at the engine's word rate). */
    std::uint64_t preempt_overhead_cycles = 0;
    /** Elasticity: when set, the policy is stepped every
     * window_cycles on the window's exact mean busy dies and
     * end-of-window queue depth, and its target caps concurrent
     * tasks. The caller's object is mutated (its final state is the
     * end-of-trace target). */
    AutoscalerPolicy *autoscaler = nullptr;
    std::uint64_t window_cycles = 0;
};

/** Outcome of one simulated schedule. */
struct SimResult {
    /** reservation(j) when job j never took one. */
    static constexpr std::uint64_t kNoReservation = ~0ull;

    std::uint64_t makespan = 0; ///< last task completion (cycles)
    std::vector<std::uint64_t> die_busy; ///< busy cycles per die
    std::uint64_t job_start(std::size_t j) const { return start_[j]; }
    std::uint64_t job_finish(std::size_t j) const { return finish_[j]; }

    /** The start-time guarantee job j held while it was the blocked
     * gang head under EASY backfill (earliest recorded), or
     * kNoReservation. The invariant tests assert
     * job_start(j) <= reservation(j). */
    std::uint64_t
    reservation(std::size_t j) const
    {
        return reservation_[j];
    }

    /** Cycles past the absolute deadline (0 for on-time or
     * deadline-less jobs). */
    std::uint64_t lateness(std::size_t j) const { return lateness_[j]; }

    /** Deadline jobs that finished late. */
    std::size_t deadline_misses = 0;
    /** Layer-boundary evictions performed. */
    std::size_t preemptions = 0;
    /** Active-die cap steps as (cycle, target), starting with the
     * initial cap at cycle 0 — the autoscaler's exact decision
     * sequence, pinnable. Empty without an autoscaler. */
    std::vector<std::pair<std::uint64_t, std::size_t>> active_timeline;

    /** Fraction of die-cycles spent working: sum(busy) / (D * makespan). */
    double utilization() const;

    std::vector<std::uint64_t> start_;  ///< first dispatch per job
    std::vector<std::uint64_t> finish_; ///< last completion per job
    std::vector<std::uint64_t> reservation_;
    std::vector<std::uint64_t> lateness_;
};

/**
 * Simulates the trace under `policy` on `num_dies` dies with the same
 * semantics as the live PoolScheduler: kFifoGang gang-starts jobs
 * strictly in arrival order, kSpaceShare dispatches tasks
 * work-conservingly in job-FIFO order, kPriority picks the highest
 * effective priority (aging one step per `aging_cycles` waited;
 * 0 disables aging), kEdf gang-starts in earliest-absolute-deadline
 * order (ties FIFO — equal deadlines everywhere IS kFifoGang).
 * Throws if any job is wider than the pool.
 */
SimResult simulate_pool_schedule(const std::vector<SimJob> &jobs,
                                 const SimOptions &options);

/** Back-compat shorthand for the base policies (no backfill, no
 * preemption, no elasticity). */
SimResult simulate_pool_schedule(const std::vector<SimJob> &jobs,
                                 std::uint32_t num_dies,
                                 PoolPolicy policy,
                                 std::uint64_t aging_cycles = 0);

} // namespace flowgnn

#endif // FLOWGNN_POOL_SCHEDULE_SIM_H
