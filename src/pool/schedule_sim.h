/**
 * @file
 * Cycle-domain pool-schedule simulator: replays the PoolScheduler's
 * dispatch policies over modeled task durations, with no threads and
 * no wall clock. Given each job's per-task cycle counts (from isolated
 * engine runs) it answers "what makespan and die utilization would
 * this trace see under policy X" deterministically — the modeled
 * counterpart of the live pool's wall-clock numbers, and the thing CI
 * can assert on without timing flakiness.
 */
#ifndef FLOWGNN_POOL_SCHEDULE_SIM_H
#define FLOWGNN_POOL_SCHEDULE_SIM_H

#include <cstdint>
#include <vector>

#include "pool/scheduler.h"

namespace flowgnn {

/** One job of a simulated trace. All times in this header are modeled
 * kernel cycles (take them from RunStats of isolated runs), not wall
 * time — which is what makes the simulator's output flake-free. */
struct SimJob {
    /** Modeled duration of each shard task (kernel cycles). Size =
     * job width; must be <= the simulated die count. */
    std::vector<std::uint64_t> task_cycles;
    /** Submission time (cycles since trace start). */
    std::uint64_t arrival = 0;
    /** kPriority only. */
    int priority = 0;
};

/** Outcome of one simulated schedule. */
struct SimResult {
    std::uint64_t makespan = 0; ///< last task completion (cycles)
    std::vector<std::uint64_t> die_busy; ///< busy cycles per die
    std::uint64_t job_start(std::size_t j) const { return start_[j]; }
    std::uint64_t job_finish(std::size_t j) const { return finish_[j]; }

    /** Fraction of die-cycles spent working: sum(busy) / (D * makespan). */
    double utilization() const;

    std::vector<std::uint64_t> start_;  ///< first dispatch per job
    std::vector<std::uint64_t> finish_; ///< last completion per job
};

/**
 * Simulates the trace under `policy` on `num_dies` dies with the same
 * semantics as the live PoolScheduler: kFifoGang gang-starts jobs
 * strictly in arrival order, kSpaceShare dispatches tasks
 * work-conservingly in job-FIFO order, kPriority picks the highest
 * effective priority (aging one step per `aging_cycles` waited;
 * 0 disables aging). Throws if any job is wider than the pool.
 */
SimResult simulate_pool_schedule(const std::vector<SimJob> &jobs,
                                 std::uint32_t num_dies,
                                 PoolPolicy policy,
                                 std::uint64_t aging_cycles = 0);

} // namespace flowgnn

#endif // FLOWGNN_POOL_SCHEDULE_SIM_H
