#include "pool/arrivals.h"

#include <cmath>

#include "tensor/rng.h"

namespace flowgnn {

double
arrival_rate_at(const ArrivalPattern &p, std::uint64_t t)
{
    double rate = p.base_rate_per_mcycle;
    if (p.diurnal_amplitude > 0.0) {
        const double phase = 2.0 * 3.14159265358979323846 *
            (static_cast<double>(t % p.diurnal_period_cycles) /
             static_cast<double>(p.diurnal_period_cycles));
        rate *= 1.0 + p.diurnal_amplitude * std::sin(phase);
    }
    if (p.burst_len_cycles > 0 && t >= p.burst_start_cycles &&
        t - p.burst_start_cycles < p.burst_len_cycles)
        rate *= p.burst_factor;
    return rate;
}

std::vector<std::uint64_t>
generate_arrivals(const ArrivalPattern &p)
{
    p.validate();
    // Thinning ceiling: the rate function's supremum.
    double ceiling = p.base_rate_per_mcycle *
        (1.0 + p.diurnal_amplitude);
    if (p.burst_len_cycles > 0)
        ceiling *= p.burst_factor;

    Rng rng(p.seed);
    std::vector<std::uint64_t> arrivals;
    arrivals.reserve(static_cast<std::size_t>(
        ceiling * static_cast<double>(p.horizon_cycles) / 1e6 + 16));
    // Homogeneous candidates at `ceiling` via exponential gaps in
    // continuous cycle time; accept with prob rate(t)/ceiling. The
    // candidate stream and the accept draws come from one Rng, so the
    // trace is a pure function of the pattern.
    double t = 0.0;
    const double horizon = static_cast<double>(p.horizon_cycles);
    for (;;) {
        // Exponential(ceiling per 1e6 cycles) inter-candidate gap.
        const double u = 1.0 - rng.uniform(); // (0, 1]: log stays finite
        t += -std::log(u) * (1e6 / ceiling);
        if (t >= horizon)
            break;
        const std::uint64_t tc = static_cast<std::uint64_t>(t);
        if (rng.uniform() * ceiling <= arrival_rate_at(p, tc))
            arrivals.push_back(tc);
    }
    return arrivals;
}

} // namespace flowgnn
