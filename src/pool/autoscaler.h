/**
 * @file
 * flowgnn::pool — metrics-driven die-pool elasticity (the Dorylus
 * argument, applied to dies: pay for accelerator replicas only while
 * traffic needs them).
 *
 * Split in two so the control LAW is testable without threads:
 *
 *  - AutoscalerPolicy: a pure, deterministic step function. Feed it
 *    one AutoscalerWindow summary per control interval; it returns the
 *    new active-die target. The cycle-domain schedule simulator steps
 *    the same object, which is how tests pin exact scale-up/down
 *    sequences on canonical traces.
 *  - Autoscaler: the live driver. A background thread snapshots the
 *    pool's MetricsRegistry every interval, forms the window from
 *    MetricsSnapshot::delta (counters/histograms subtract; gauges are
 *    last-value — see obs/metrics.h), and actuates
 *    PoolScheduler::set_active_dies.
 *
 * Control law (evaluated once per window, with a cooldown between
 * actions so in-flight work can absorb the last decision):
 *
 *   scale UP   when queue_depth > scale_up_queue_per_die * active,
 *              or the window's queue-delay p99 exceeds scale_up_p99_ms
 *   scale DOWN when the queue is empty and mean busy dies fall below
 *              scale_down_util * active
 */
#ifndef FLOWGNN_POOL_AUTOSCALER_H
#define FLOWGNN_POOL_AUTOSCALER_H

#include <cstddef>
#include <thread>

#include "core/sync.h"
#include "obs/metrics.h"
#include "pool/scheduler.h"

namespace flowgnn {

/** One control interval's traffic summary — the autoscaler's whole
 * input. The live driver fills it from a metrics delta; the schedule
 * simulator fills it from exact cycle-domain integrals. */
struct AutoscalerWindow {
    /** Mean (sim) or last-sampled (live) busy dies over the window. */
    double busy_dies = 0.0;
    /** Pending jobs at the window boundary (gauge last-value). */
    double queue_depth = 0.0;
    /** Queue-delay p99 over THIS window (histogram delta quantile);
     * 0 when nothing was dispatched. */
    double queue_delay_p99_ms = 0.0;
};

/** Control-law parameters. Defaults favour latency: scale up on one
 * window of pressure, scale down only on clear idleness. */
struct AutoscalerConfig {
    std::size_t min_dies = 1;
    std::size_t max_dies = 8;
    /** Scale up when queue_depth exceeds this many jobs per active
     * die. */
    double scale_up_queue_per_die = 1.0;
    /** Also scale up when the window's queue-delay p99 exceeds this
     * (ms); <= 0 disables the latency trigger. */
    double scale_up_p99_ms = 0.0;
    /** Scale down when mean busy dies < this fraction of active AND
     * the queue is empty. */
    double scale_down_util = 0.35;
    std::size_t step_up = 2;
    std::size_t step_down = 1;
    /** Windows to hold after any action before acting again. */
    std::size_t cooldown_windows = 2;
    /** Live driver polling period, milliseconds. */
    double interval_ms = 50.0;

    void
    validate() const
    {
        if (min_dies == 0 || max_dies < min_dies)
            throw std::invalid_argument(
                "AutoscalerConfig: need 1 <= min_dies <= max_dies");
        if (step_up == 0 || step_down == 0)
            throw std::invalid_argument(
                "AutoscalerConfig: steps must be >= 1");
        if (interval_ms <= 0.0)
            throw std::invalid_argument(
                "AutoscalerConfig: interval_ms must be positive");
    }
};

/**
 * The pure control law. Deterministic: the target sequence is a
 * function of (config, initial target, window sequence) and nothing
 * else, so simulated and live deployments of the same policy make the
 * same decisions on the same inputs.
 */
class AutoscalerPolicy
{
  public:
    AutoscalerPolicy(AutoscalerConfig config, std::size_t initial);

    /** Consumes one window; returns the (possibly unchanged) target. */
    std::size_t step(const AutoscalerWindow &window);

    std::size_t target() const { return target_; }
    std::size_t windows_seen() const { return windows_; }

  private:
    AutoscalerConfig config_;
    std::size_t target_;
    std::size_t cooldown_ = 0;
    std::size_t windows_ = 0;
};

/** Extracts an AutoscalerWindow from a MetricsSnapshot::delta of the
 * pool's registry: pool.busy_dies / pool.queue_depth gauges (last
 * value) and the pool.queue_delay_ms histogram delta's p99. Missing
 * metrics read as 0 — a cold registry scales nothing up. */
AutoscalerWindow window_from_delta(const obs::MetricsSnapshot &delta);

/**
 * Live elasticity driver: polls the scheduler's registry on a
 * background thread and actuates set_active_dies. Construction starts
 * the loop; stop() (or destruction) joins it. The scheduler must
 * outlive the autoscaler.
 */
class Autoscaler
{
  public:
    Autoscaler(PoolScheduler &scheduler, AutoscalerConfig config);
    ~Autoscaler();

    Autoscaler(const Autoscaler &) = delete;
    Autoscaler &operator=(const Autoscaler &) = delete;

    /** Joins the control thread (idempotent). */
    void stop();

    /** Current active-die target. */
    std::size_t target() const;
    /** Control windows processed so far. */
    std::size_t windows_seen() const;

  private:
    void loop();

    PoolScheduler &scheduler_;
    AutoscalerConfig config_;

    mutable Mutex mutex_;
    CondVar wake_;
    bool stop_ FLOWGNN_GUARDED_BY(mutex_) = false;
    AutoscalerPolicy policy_ FLOWGNN_GUARDED_BY(mutex_);
    std::thread thread_;
};

} // namespace flowgnn

#endif // FLOWGNN_POOL_AUTOSCALER_H
