/**
 * @file
 * flowgnn::pool — measured-occupancy energy for a scheduled trace.
 *
 * The Table VI scale-out model (perf/energy.h) charges idle power for
 * every die-millisecond a die is not computing; what that costs in
 * practice depends on the *schedule*, not just the per-run latency: a
 * gang policy that head-of-line blocks leaves dies idling that
 * space-share would have filled. This header closes the loop by
 * converting a schedule's per-die busy-cycle occupancy (from the
 * cycle-domain simulator, or any measured timeline) into the
 * die_busy_ms vector multi_die_energy prices, so policies can be
 * compared in millijoules as well as makespan.
 */
#ifndef FLOWGNN_POOL_POOL_ENERGY_H
#define FLOWGNN_POOL_POOL_ENERGY_H

#include <cstdint>

#include "perf/energy.h"
#include "pool/schedule_sim.h"

namespace flowgnn {

/**
 * Prices a simulated schedule with the multi-die energy model using
 * its exact per-die occupancy: die d is charged active power for
 * die_busy[d] cycles and static power for the rest of the makespan.
 *
 * @param sched      outcome of simulate_pool_schedule
 * @param clock_mhz  engine clock used to convert cycles to wall time
 * @param link_words total inter-die halo words moved by the trace's
 *                   jobs (0 for unsharded pools)
 * @param replication_factor average node replication across shard
 *                   closures (1.0 for unsharded pools)
 * @param graph_nodes total nodes processed across the trace (scales
 *                   the halo-storage term)
 * @param node_dim   feature width in words
 */
MultiDieEnergy pool_schedule_energy(const SimResult &sched,
                                    double clock_mhz,
                                    std::uint64_t link_words = 0,
                                    double replication_factor = 1.0,
                                    std::size_t graph_nodes = 0,
                                    std::size_t node_dim = 0);

} // namespace flowgnn

#endif // FLOWGNN_POOL_POOL_ENERGY_H
