#include "ghost/ghost_plan.h"

#include <algorithm>
#include <atomic>

#include "core/parallel.h"

namespace flowgnn {

namespace {

std::uint64_t
ceil_div(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

GhostPlan
make_ghost_plan(const Model &model, const GraphSample &prepared,
                const ShardConfig &config)
{
    return make_ghost_plan(model, SampleRef(prepared), config, 1);
}

GhostPlan
make_ghost_plan(const Model &model, const SampleRef &prepared,
                const ShardConfig &config, unsigned threads)
{
    config.validate();
    const NodeId n_nodes = prepared.num_nodes();
    const std::uint32_t P = config.num_shards;
    const bool has_dgn = prepared.dgn_field != nullptr;

    GhostPlan plan;

    // Same fallbacks as make_shard_plan: these jobs run whole on one
    // die (the virtual node makes every vertex a boundary vertex, so
    // ghost exchange would ship the entire graph every layer).
    if (P == 1 || model.uses_virtual_node() || n_nodes == 0) {
        GhostShard shard;
        shard.info.owned_nodes = n_nodes;
        shard.info.subgraph_edges = prepared.num_edges();
        // Whole-graph resident footprint (matches the halo fallback).
        std::size_t whole_dim = prepared.node_dim;
        for (std::size_t i = 0; i < model.num_stages(); ++i)
            whole_dim = std::max(whole_dim, model.stage(i).out_dim());
        shard.info.resident_words =
            std::uint64_t(n_nodes) *
                (prepared.node_dim + 3 + has_dgn + 2 * whole_dim) +
            std::uint64_t(prepared.num_edges()) *
                (prepared.edge_dim + 2);
        plan.shards.push_back(std::move(shard));
        return plan;
    }

    plan.sharded = true;
    plan.assignment =
        shard_plan_assignment(prepared.graph, config, threads);
    const std::vector<std::uint32_t> &owner = plan.assignment;

    const std::size_t node_dim = prepared.node_dim;
    const std::size_t edge_dim = prepared.edge_dim;
    const std::size_t n_edges = prepared.num_edges();
    // Ghost bootstrap metadata: id + two true degrees (+ DGN scalar).
    const std::uint64_t meta_words = 3 + has_dgn;

    // ---- Which stages exchange, and how many words per ghost ----
    const std::size_t n_stages = model.num_stages();
    plan.exchange_at_stage.assign(n_stages, 0);
    plan.exchange_dim.assign(n_stages, 0);
    for (std::size_t si = 0; si < n_stages; ++si) {
        const Layer &stage = model.stage(si);
        const bool is_gat = (stage.dataflow() == DataflowKind::kMpToNt);
        bool has_scatter = is_gat;
        if (!is_gat && si + 1 < n_stages) {
            const Layer &next = model.stage(si + 1);
            has_scatter = next.msg_dim() > 0 &&
                          next.dataflow() == DataflowKind::kNtToMp;
        }
        if (has_scatter) {
            plan.exchange_at_stage[si] = 1;
            // Conv scatter ships the stage's post-transform output
            // (the ghost re-streams it); a GAT stage ships its input
            // and the ghost projects locally (see ghost_plan.h).
            plan.exchange_dim[si] = static_cast<std::uint32_t>(
                is_gat ? stage.in_dim() : stage.out_dim());
        }
    }
    std::uint32_t max_exchange_dim = 0;
    for (std::uint32_t d : plan.exchange_dim)
        max_exchange_dim = std::max(max_exchange_dim, d);

    // Widest embedding any stage materializes (resident sizing).
    std::size_t max_dim = node_dim;
    for (std::size_t i = 0; i < n_stages; ++i)
        max_dim = std::max(max_dim, model.stage(i).out_dim());

    // ---- Ghost membership: one edge scan + a node x die bitmap ----
    // ghost_flag[v * P + d] = vertex v is in die d's ghost set. The
    // scan only ever *sets* bytes, so concurrent workers write through
    // relaxed atomic_refs: whichever edge sets a flag first, the final
    // bitmap is the same set of 1s the serial scan produces.
    std::vector<std::uint8_t> ghost_flag(std::size_t(n_nodes) * P, 0);
    parallel_ranges(
        n_edges, threads,
        [&](std::size_t begin, std::size_t end, unsigned) {
            for (std::size_t i = begin; i < end; ++i) {
                const NodeId src = prepared.graph.src(i);
                const std::uint32_t ds = owner[src];
                const std::uint32_t dd = owner[prepared.graph.dst(i)];
                if (ds != dd)
                    std::atomic_ref<std::uint8_t>(
                        ghost_flag[std::size_t(src) * P + dd])
                        .store(1, std::memory_order_relaxed);
            }
        });

    // multiplicity[v] = how many foreign dies hold v as a ghost — the
    // per-layer send fan-out of v's owner.
    std::vector<std::uint32_t> owned_count(P, 0);
    std::vector<std::uint64_t> send_mult(P, 0);
    for (NodeId v = 0; v < n_nodes; ++v) {
        ++owned_count[owner[v]];
        std::uint32_t mult = 0;
        for (std::uint32_t d = 0; d < P; ++d)
            mult += ghost_flag[std::size_t(v) * P + d];
        send_mult[owner[v]] += mult;
    }

    plan.cut_edges =
        shard_cut_edges(prepared.graph, plan.assignment, threads);

    // ---- Build the per-die shards (dies owning nothing are dropped,
    // mirroring make_shard_plan's effective-P contract). Dies are
    // independent, so the locals scans run one die per worker; the
    // serial collection below keeps shard order deterministic. ----
    std::vector<GhostShard> built(P);
    parallel_ranges(
        P, threads,
        [&](std::size_t begin, std::size_t end, unsigned) {
            for (std::size_t d = begin; d < end; ++d) {
                if (owned_count[d] == 0)
                    continue; // n < P degenerate die: owns nothing
                GhostShard &shard = built[d];
                shard.info.shard = static_cast<std::uint32_t>(d);
                for (NodeId v = 0; v < n_nodes; ++v) {
                    const bool own = owner[v] == d;
                    if (own || ghost_flag[std::size_t(v) * P + d]) {
                        shard.locals.push_back(v);
                        shard.is_owned.push_back(own);
                    }
                }
                shard.info.owned_nodes = owned_count[d];
                shard.info.halo_nodes =
                    shard.locals.size() - shard.info.owned_nodes;
                shard.local_graph.num_nodes =
                    static_cast<NodeId>(shard.locals.size());
            }
        },
        /*serial_cutoff=*/2);

    std::vector<std::uint32_t> slot_of(P, 0xFFFFFFFFu);
    std::size_t locals_total = 0;
    for (std::uint32_t d = 0; d < P; ++d) {
        if (owned_count[d] == 0)
            continue;
        slot_of[d] = static_cast<std::uint32_t>(plan.shards.size());
        locals_total += built[d].locals.size();
        plan.shards.push_back(std::move(built[d]));
    }

    // Local-id maps for every die at once, so the edge scans below are
    // single passes whatever P is.
    const std::size_t n_shards = plan.shards.size();
    std::vector<std::vector<std::uint32_t>> local_of(n_shards);
    parallel_ranges(
        n_shards, threads,
        [&](std::size_t begin, std::size_t end, unsigned) {
            for (std::size_t t = begin; t < end; ++t) {
                local_of[t].assign(n_nodes, 0);
                const GhostShard &shard = plan.shards[t];
                for (std::uint32_t i = 0; i < shard.locals.size(); ++i)
                    local_of[t][shard.locals[i]] = i;
            }
        },
        /*serial_cutoff=*/2);

    // ---- Local graphs: every edge lands on its destination's owner,
    // in global edge order (preserves per-row CSR order, hence the
    // engine's arrival order, on every die). Parallelized as a
    // counting sort keyed by the destination's die: per-thread-range
    // per-die counts, a serial prefix scan in (die, thread) order, and
    // a parallel stable fill — bit-identical to the serial append. ----
    const unsigned n_ranges = parallel_range_count(n_edges, threads);
    std::vector<std::vector<std::size_t>> range_count(
        n_ranges, std::vector<std::size_t>(n_shards, 0));
    std::vector<std::vector<std::size_t>> range_fetched(
        n_ranges, std::vector<std::size_t>(n_shards, 0));
    parallel_ranges(
        n_edges, threads,
        [&](std::size_t begin, std::size_t end, unsigned tid) {
            for (std::size_t i = begin; i < end; ++i) {
                const std::uint32_t os = owner[prepared.graph.src(i)];
                const std::uint32_t od = owner[prepared.graph.dst(i)];
                const std::uint32_t t = slot_of[od];
                ++range_count[tid][t];
                range_fetched[tid][t] += os != od;
            }
        });
    std::vector<std::vector<std::size_t>> cursor(
        n_ranges, std::vector<std::size_t>(n_shards, 0));
    for (std::size_t t = 0; t < n_shards; ++t) {
        std::size_t run = 0;
        std::size_t fetched = 0;
        for (unsigned tid = 0; tid < n_ranges; ++tid) {
            cursor[tid][t] = run;
            run += range_count[tid][t];
            fetched += range_fetched[tid][t];
        }
        plan.shards[t].local_graph.edges.resize(run);
        plan.shards[t].info.fetched_edges = fetched;
    }
    parallel_ranges(
        n_edges, threads,
        [&](std::size_t begin, std::size_t end, unsigned tid) {
            for (std::size_t i = begin; i < end; ++i) {
                const NodeId src = prepared.graph.src(i);
                const NodeId dst = prepared.graph.dst(i);
                const std::uint32_t t = slot_of[owner[dst]];
                plan.shards[t].local_graph.edges[cursor[tid][t]++] = {
                    local_of[t][src], local_of[t][dst]};
            }
        });

    // ---- Word counts, per-exchange link cycles, resident footprint --
    const std::uint64_t node_rec = node_dim + 3 + has_dgn;
    const std::uint64_t edge_rec = edge_dim + 2;
    for (GhostShard &shard : plan.shards) {
        shard.info.subgraph_edges = shard.local_graph.edges.size();
        const std::uint64_t ghosts = shard.info.halo_nodes;
        const std::uint64_t fan_out = send_mult[shard.info.shard];
        shard.layer_comm_cycles.assign(n_stages, 0);
        bool first_exchange = true;
        for (std::size_t si = 0; si < n_stages; ++si) {
            if (!plan.exchange_at_stage[si])
                continue;
            std::uint64_t send = fan_out * plan.exchange_dim[si];
            std::uint64_t recv = ghosts * plan.exchange_dim[si];
            if (first_exchange) {
                // Bootstrap metadata rides the first exchange.
                send += fan_out * meta_words;
                recv += ghosts * meta_words;
                first_exchange = false;
            }
            shard.info.exchange_send_words += send;
            shard.info.exchange_recv_words += recv;
            if (send == 0 && recv == 0)
                continue; // no boundary traffic on this die
            // Full-duplex link: the exchange lasts as long as the
            // longer of the two streams, plus the fixed latency.
            shard.layer_comm_cycles[si] =
                ceil_div(std::max(send, recv),
                         config.link.words_per_cycle) +
                config.link.latency_cycles;
            shard.info.comm_cycles += shard.layer_comm_cycles[si];
        }
        // Resident: owned vertices keep full node records plus the
        // double-buffered embedding store; ghosts keep only their
        // metadata and the currently-received embedding; plus every
        // local edge record.
        shard.info.resident_words =
            std::uint64_t(shard.info.owned_nodes) *
                (node_rec + 2 * max_dim) +
            ghosts * (meta_words + max_exchange_dim) +
            std::uint64_t(shard.info.subgraph_edges) * edge_rec;
    }

    plan.replication_factor = static_cast<double>(locals_total) /
                              static_cast<double>(n_nodes);
    return plan;
}

} // namespace flowgnn
