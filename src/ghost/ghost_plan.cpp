#include "ghost/ghost_plan.h"

#include <algorithm>

namespace flowgnn {

namespace {

std::uint64_t
ceil_div(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

GhostPlan
make_ghost_plan(const Model &model, const GraphSample &prepared,
                const ShardConfig &config)
{
    config.validate();
    const NodeId n_nodes = prepared.num_nodes();
    const std::uint32_t P = config.num_shards;

    GhostPlan plan;

    // Same fallbacks as make_shard_plan: these jobs run whole on one
    // die (the virtual node makes every vertex a boundary vertex, so
    // ghost exchange would ship the entire graph every layer).
    if (P == 1 || model.uses_virtual_node() || n_nodes == 0) {
        GhostShard shard;
        shard.info.owned_nodes = n_nodes;
        shard.info.subgraph_edges = prepared.num_edges();
        // Whole-graph resident footprint (matches the halo fallback).
        std::size_t whole_dim = prepared.node_dim();
        for (std::size_t i = 0; i < model.num_stages(); ++i)
            whole_dim = std::max(whole_dim, model.stage(i).out_dim());
        shard.info.resident_words =
            std::uint64_t(n_nodes) *
                (prepared.node_dim() + 3 +
                 !prepared.dgn_field.empty() + 2 * whole_dim) +
            std::uint64_t(prepared.num_edges()) *
                (prepared.edge_dim() + 2);
        plan.shards.push_back(std::move(shard));
        return plan;
    }

    plan.sharded = true;
    plan.assignment = shard_plan_assignment(prepared.graph, config);
    const std::vector<std::uint32_t> &owner = plan.assignment;

    const std::size_t node_dim = prepared.node_dim();
    const std::size_t edge_dim = prepared.edge_dim();
    const bool has_dgn = !prepared.dgn_field.empty();
    // Ghost bootstrap metadata: id + two true degrees (+ DGN scalar).
    const std::uint64_t meta_words = 3 + has_dgn;

    // ---- Which stages exchange, and how many words per ghost ----
    const std::size_t n_stages = model.num_stages();
    plan.exchange_at_stage.assign(n_stages, 0);
    plan.exchange_dim.assign(n_stages, 0);
    for (std::size_t si = 0; si < n_stages; ++si) {
        const Layer &stage = model.stage(si);
        const bool is_gat = (stage.dataflow() == DataflowKind::kMpToNt);
        bool has_scatter = is_gat;
        if (!is_gat && si + 1 < n_stages) {
            const Layer &next = model.stage(si + 1);
            has_scatter = next.msg_dim() > 0 &&
                          next.dataflow() == DataflowKind::kNtToMp;
        }
        if (has_scatter) {
            plan.exchange_at_stage[si] = 1;
            // Conv scatter ships the stage's post-transform output
            // (the ghost re-streams it); a GAT stage ships its input
            // and the ghost projects locally (see ghost_plan.h).
            plan.exchange_dim[si] = static_cast<std::uint32_t>(
                is_gat ? stage.in_dim() : stage.out_dim());
        }
    }
    std::uint32_t max_exchange_dim = 0;
    for (std::uint32_t d : plan.exchange_dim)
        max_exchange_dim = std::max(max_exchange_dim, d);

    // Widest embedding any stage materializes (resident sizing).
    std::size_t max_dim = node_dim;
    for (std::size_t i = 0; i < n_stages; ++i)
        max_dim = std::max(max_dim, model.stage(i).out_dim());

    // ---- Ghost membership: one edge scan + a node x die bitmap ----
    // ghost_flag[v * P + d] = vertex v is in die d's ghost set.
    std::vector<std::uint8_t> ghost_flag(std::size_t(n_nodes) * P, 0);
    for (const Edge &e : prepared.graph.edges) {
        const std::uint32_t ds = owner[e.src];
        const std::uint32_t dd = owner[e.dst];
        if (ds != dd)
            ghost_flag[std::size_t(e.src) * P + dd] = 1;
    }

    // multiplicity[v] = how many foreign dies hold v as a ghost — the
    // per-layer send fan-out of v's owner.
    std::vector<std::uint32_t> owned_count(P, 0);
    std::vector<std::uint64_t> send_mult(P, 0);
    for (NodeId v = 0; v < n_nodes; ++v) {
        ++owned_count[owner[v]];
        std::uint32_t mult = 0;
        for (std::uint32_t d = 0; d < P; ++d)
            mult += ghost_flag[std::size_t(v) * P + d];
        send_mult[owner[v]] += mult;
    }

    plan.cut_edges = shard_cut_edges(prepared.graph, plan.assignment);

    // ---- Build the per-die shards (dies owning nothing are dropped,
    // mirroring make_shard_plan's effective-P contract) ----
    std::vector<std::uint32_t> slot_of(P, 0xFFFFFFFFu);
    std::size_t locals_total = 0;
    for (std::uint32_t d = 0; d < P; ++d) {
        if (owned_count[d] == 0)
            continue; // n < P degenerate die: owns nothing, no ghosts
        slot_of[d] = static_cast<std::uint32_t>(plan.shards.size());
        GhostShard shard;
        shard.info.shard = d;
        for (NodeId v = 0; v < n_nodes; ++v) {
            const bool own = owner[v] == d;
            if (own || ghost_flag[std::size_t(v) * P + d]) {
                shard.locals.push_back(v);
                shard.is_owned.push_back(own);
            }
        }
        shard.info.owned_nodes = owned_count[d];
        shard.info.halo_nodes =
            shard.locals.size() - shard.info.owned_nodes;
        shard.local_graph.num_nodes =
            static_cast<NodeId>(shard.locals.size());
        locals_total += shard.locals.size();
        plan.shards.push_back(std::move(shard));
    }

    // Local-id maps for every die at once, so the edge scan below is a
    // single pass whatever P is.
    std::vector<std::vector<std::uint32_t>> local_of(plan.shards.size());
    for (std::size_t t = 0; t < plan.shards.size(); ++t) {
        local_of[t].assign(n_nodes, 0);
        const GhostShard &shard = plan.shards[t];
        for (std::uint32_t i = 0; i < shard.locals.size(); ++i)
            local_of[t][shard.locals[i]] = i;
    }

    // ---- Local graphs: every edge lands on its destination's owner,
    // in global edge order (preserves per-row CSR order, hence the
    // engine's arrival order, on every die). ----
    for (const Edge &e : prepared.graph.edges) {
        const std::uint32_t t = slot_of[owner[e.dst]];
        GhostShard &shard = plan.shards[t];
        shard.local_graph.edges.push_back(
            {local_of[t][e.src], local_of[t][e.dst]});
        shard.info.fetched_edges += owner[e.src] != owner[e.dst];
    }

    // ---- Word counts, per-exchange link cycles, resident footprint --
    const std::uint64_t node_rec = node_dim + 3 + has_dgn;
    const std::uint64_t edge_rec = edge_dim + 2;
    for (GhostShard &shard : plan.shards) {
        shard.info.subgraph_edges = shard.local_graph.edges.size();
        const std::uint64_t ghosts = shard.info.halo_nodes;
        const std::uint64_t fan_out = send_mult[shard.info.shard];
        shard.layer_comm_cycles.assign(n_stages, 0);
        bool first_exchange = true;
        for (std::size_t si = 0; si < n_stages; ++si) {
            if (!plan.exchange_at_stage[si])
                continue;
            std::uint64_t send = fan_out * plan.exchange_dim[si];
            std::uint64_t recv = ghosts * plan.exchange_dim[si];
            if (first_exchange) {
                // Bootstrap metadata rides the first exchange.
                send += fan_out * meta_words;
                recv += ghosts * meta_words;
                first_exchange = false;
            }
            shard.info.exchange_send_words += send;
            shard.info.exchange_recv_words += recv;
            if (send == 0 && recv == 0)
                continue; // no boundary traffic on this die
            // Full-duplex link: the exchange lasts as long as the
            // longer of the two streams, plus the fixed latency.
            shard.layer_comm_cycles[si] =
                ceil_div(std::max(send, recv),
                         config.link.words_per_cycle) +
                config.link.latency_cycles;
            shard.info.comm_cycles += shard.layer_comm_cycles[si];
        }
        // Resident: owned vertices keep full node records plus the
        // double-buffered embedding store; ghosts keep only their
        // metadata and the currently-received embedding; plus every
        // local edge record.
        shard.info.resident_words =
            std::uint64_t(shard.info.owned_nodes) *
                (node_rec + 2 * max_dim) +
            ghosts * (meta_words + max_exchange_dim) +
            std::uint64_t(shard.info.subgraph_edges) * edge_rec;
    }

    plan.replication_factor = static_cast<double>(locals_total) /
                              static_cast<double>(n_nodes);
    return plan;
}

} // namespace flowgnn
