/**
 * @file
 * Planning for per-layer boundary-exchange ("ghost") sharded execution
 * — ShardMode::kGhostExchange.
 *
 * Halo replication ships each die its owned nodes' L-hop closure once,
 * up front; on dense power-law graphs the closure saturates
 * (replication -> P) and sharding degenerates into a capacity escape
 * hatch. The ghost plan instead gives each die only its 0-hop
 * subgraph plus a one-deep *ghost fringe*: the boundary vertices whose
 * embeddings the die must receive from their owners before every
 * message-passing layer (the Dorylus-style scatter). Per-die state
 * stays ~n/P and the link carries per-layer traffic sized by the cut,
 * not by closure replication.
 *
 * Definitions (die d, assignment a):
 * - ghost set of d  = { src of edge (src -> dst) : a[dst] == d,
 *   a[src] != d } — the in-boundary, fixed across layers. Ascending
 *   global id order, the order ghost embeddings are merged in — the
 *   property that keeps single-NT-unit ghost runs bit-identical to
 *   unsharded runs.
 * - local graph of d = the edges whose *destination* is owned by d
 *   (both endpoints are then locals = owned + ghosts), global edge
 *   order preserved, endpoints remapped to local ids.
 * - An exchange precedes every scatter-bearing stage. Payload per
 *   ghost vertex: for a conv scatter, the stage's post-transform
 *   output (out_dim words — the ghost copy just re-streams it, the
 *   same zero-cost-accumulate mechanism as the GAT re-stream round);
 *   for a GAT stage, the stage's *input* embedding (in_dim words — the
 *   ghost copy pays the projection locally, which is cheaper than
 *   shipping per-edge attention traffic). The first exchange
 *   additionally carries each ghost's bootstrap metadata (id + two
 *   true degrees + the DGN field scalar when present).
 * - Per-exchange link cycles on die d:
 *   ceil(max(send_d, recv_d) / words_per_cycle) + latency_cycles —
 *   send and receive streams run full duplex; a die with no boundary
 *   traffic at a stage pays nothing.
 *
 * Quantization: embeddings cross the link in the die's fixed-point
 * wire format, so a boundary crossing re-quantizes. The engine's
 * quantize is idempotent — every shipped embedding is already exactly
 * representable — so re-quantization is value-preserving and the
 * functional result is shard-count-invariant (measured in
 * bench_precision_ablation).
 */
#ifndef FLOWGNN_GHOST_GHOST_PLAN_H
#define FLOWGNN_GHOST_GHOST_PLAN_H

#include <cstdint>
#include <vector>

#include "shard/shard_plan.h"

namespace flowgnn {

/** One die's share of a ghost-exchange job. */
struct GhostShard {
    /** Locals = owned + ghost vertices, ascending global ids. */
    std::vector<NodeId> locals;
    /** Parallel to `locals`: 1 if the vertex is owned by this die. */
    std::vector<std::uint8_t> is_owned;
    /** Die-local subgraph: every edge into an owned destination,
     * endpoints remapped to `locals` indices, global order kept. */
    CooGraph local_graph;
    /** Link cycles of the exchange feeding each stage (index =
     * stage/phase index; 0 for stages without an exchange). */
    std::vector<std::uint64_t> layer_comm_cycles;
    /** Same bookkeeping as a halo slice (owned/ghost counts, words,
     * comm totals, resident footprint, and later the die's stats). */
    ShardInfo info;
};

/** The execution recipe for one graph across P dies in ghost mode. */
struct GhostPlan {
    /** False: single-die fallback (num_shards == 1, virtual-node
     * models, empty graphs) — executors run the full sample. */
    bool sharded = false;
    std::vector<GhostShard> shards; ///< >= 1 when sharded
    std::vector<std::uint32_t> assignment; ///< node -> owner die
    std::size_t cut_edges = 0;
    /** Mean copies per vertex: (owned + ghosts summed over dies) / n.
     * The ghost-mode analogue of halo closure replication. */
    double replication_factor = 1.0;
    /** Per stage: 1 if a boundary exchange precedes its phase (the
     * stage carries a scatter and the partition has a cut). */
    std::vector<std::uint8_t> exchange_at_stage;
    /** Per stage: words shipped per ghost vertex in that exchange
     * (0 for stages without one). */
    std::vector<std::uint32_t> exchange_dim;
};

/**
 * Plans one prepared sample across `config.num_shards` dies in ghost
 * mode. Shares shard_plan_assignment with the halo planner (identical
 * partitions, restreaming included) and mirrors its fallbacks: one
 * shard, virtual-node models, and empty graphs yield a non-sharded
 * plan; dies owning no vertices are dropped.
 */
GhostPlan make_ghost_plan(const Model &model, const GraphSample &prepared,
                          const ShardConfig &config);

/**
 * SampleRef overload, the canonical planner: plans straight off a
 * borrowed view (io::GraphView::sample), so ghost-sharding a full-scale
 * mmap-backed graph never materializes an in-memory GraphSample.
 * `threads` parallelizes the host-side stages — partitioning's
 * adjacency build, the ghost-membership edge scan (per-thread flag
 * bitmaps OR-merged), the per-die locals extraction, and the
 * local-graph fill (a counting sort by owning die that preserves
 * global edge order) — with plans bit-identical to the serial planner
 * for every thread count (0 = all cores).
 */
GhostPlan make_ghost_plan(const Model &model, const SampleRef &prepared,
                          const ShardConfig &config, unsigned threads = 0);

} // namespace flowgnn

#endif // FLOWGNN_GHOST_GHOST_PLAN_H
