/**
 * @file
 * Execution of a GhostPlan: per-die timing through the shared phase
 * model (src/core/phase_model.h) plus one global functional pass.
 *
 * The engine's timing is purely structural — cycle counts depend on
 * graph shape and layer dims, never on embedding values — so a ghost
 * run splits cleanly: each die prices its phases over its local
 * subgraph (owned vertices pay full NT work; ghost vertices re-stream
 * their received embeddings at zero accumulate cost, GAT ghosts pay
 * the local projection), while the functional answer is computed once
 * globally in src-major order. Src-major is exactly the arrival order
 * of a single-NT-unit die, so ghost results are bit-identical to
 * unsharded single-NT runs and within float-reassociation tolerance
 * of multi-NT ones — the same exactness contract the halo mode has.
 *
 * Per-layer exchange cycles compose through the layered
 * compose_shard_stats overload: serial by default, or hidden behind
 * each phase's compute window under LinkConfig::overlap.
 */
#ifndef FLOWGNN_GHOST_GHOST_ENGINE_H
#define FLOWGNN_GHOST_GHOST_ENGINE_H

#include "ghost/ghost_plan.h"

namespace flowgnn {

/**
 * Runs a ghost plan: P concurrent per-die timing passes + one global
 * functional pass, composed into the same ShardedRunResult shape the
 * halo path produces. Non-sharded plans (fallbacks) run the plain
 * engine. `link` prices nothing here — the plan already did — but its
 * `overlap` flag picks the comm/compute composition.
 */
ShardedRunResult run_ghost_plan(const Model &model,
                                const EngineConfig &config,
                                const GraphSample &prepared,
                                GhostPlan &&plan, const RunOptions &opts,
                                const LinkConfig &link);

/**
 * SampleRef overload, the canonical body (the GraphSample one
 * delegates): the global functional pass runs straight off the
 * borrowed view — an mmap-backed graph is never copied into a
 * GraphSample — and `threads` parallelizes its host-side builds
 * (bit-identical results for every value; the per-die timing passes
 * already run one thread per die). The ref's backing must stay alive
 * for the duration of the call.
 */
ShardedRunResult run_ghost_plan(const Model &model,
                                const EngineConfig &config,
                                const SampleRef &prepared,
                                GhostPlan &&plan, const RunOptions &opts,
                                const LinkConfig &link,
                                unsigned threads = 0);

/**
 * Preemption state for a ghost run. The global functional pass is the
 * only part of a ghost run that carries values, so it is the only part
 * that checkpoints: the per-die timing passes are structural (pure
 * functions of plan + config) and run once, at final completion —
 * which is why a preempted-and-resumed ghost run is trivially
 * bit-identical to an uninterrupted one in its timing too.
 *
 * On preemption the plan is stashed here (the functional pass never
 * mutates it); resume by passing `std::move(state.plan)` back into
 * run_ghost_plan with the same state object.
 */
struct GhostResumeState {
    /** True iff the last call yielded instead of completing. */
    bool preempted = false;
    /** The functional pass's layer-boundary checkpoint. */
    LayerCheckpoint checkpoint;
    /** The plan, stashed across the preemption (valid iff preempted). */
    GhostPlan plan;
    /**
     * Deterministic slicing hook: yield after this many stages per
     * call even without a token (std::size_t(-1) = run until the
     * token fires or the run completes). Used by the preempt-at-k
     * differential tests; schedulers normally leave it alone and
     * drive preemption through RunOptions::preempt.
     */
    std::size_t max_stages = std::size_t(-1);
};

/**
 * Resumable ghost run: like the SampleRef overload, but the global
 * functional pass honors RunOptions::preempt and `resume->max_stages`,
 * yielding at message-passing layer boundaries. On preemption the
 * returned result is empty, `resume->preempted` is true, and the plan
 * is stashed in `resume->plan`; call again with that plan to continue.
 * Passing resume == nullptr is exactly the plain overload. Non-sharded
 * fallback plans are preemptible the same way.
 */
ShardedRunResult run_ghost_plan(const Model &model,
                                const EngineConfig &config,
                                const SampleRef &prepared,
                                GhostPlan &&plan, const RunOptions &opts,
                                const LinkConfig &link,
                                GhostResumeState *resume,
                                unsigned threads = 0);

/**
 * Drop-in counterpart of ShardedEngine for ghost mode; ShardedEngine
 * itself routes here when ShardConfig::mode == kGhostExchange, so most
 * callers never name this class.
 */
class GhostExchangeEngine {
  public:
    GhostExchangeEngine(const Model &model, EngineConfig config,
                        ShardConfig shard_config);

    ShardedRunResult run(const GraphSample &sample) const;
    ShardedRunResult run(const GraphSample &sample,
                         const RunOptions &opts) const;

  private:
    const Model &model_;
    EngineConfig config_;
    ShardConfig shard_config_;
};

} // namespace flowgnn

#endif // FLOWGNN_GHOST_GHOST_ENGINE_H
