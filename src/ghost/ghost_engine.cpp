#include "ghost/ghost_engine.h"

#include <cstdio>
#include <thread>
#include <utility>

#include "core/phase_model.h"
#include "graph/partition.h"
#include "obs/trace_session.h"

namespace flowgnn {

namespace {

/**
 * Prices one die's run: the standard per-stage phase loop over the
 * die's local subgraph, with per-vertex accumulate costs split between
 * owned vertices (full NT work from the shared schedule) and ghosts
 * (zero — their embedding arrived over the link and is only
 * re-streamed into the scatter; GAT ghosts pay the local projection).
 * Callbacks are null: timing is structural, the functional answer is
 * computed once globally by the caller.
 */
RunStats
price_ghost_die(const GhostShard &shard,
                const std::vector<StageSchedule> &schedule,
                const Model &model, const EngineConfig &cfg,
                const RunOptions &opts, std::size_t node_dim,
                std::size_t edge_dim)
{
    const NodeId n_locals = shard.local_graph.num_nodes;
    const NodeId n_owned =
        static_cast<NodeId>(shard.info.owned_nodes);
    const std::uint64_t n_ghosts = shard.info.halo_nodes;

    RunStats stats;
    stats.clock_mhz = cfg.clock_mhz;
    stats.nt_units.assign(cfg.p_node, {});
    stats.mp_units.assign(cfg.p_edge, {});
    stats.mp_edge_work.assign(cfg.p_edge, 0);

    // Input DMA: the die loads only its owned vertices' records and
    // its local edges; ghost slots cost one id word each (their
    // payload arrives over the link, priced separately).
    stats.load_cycles = ceil_div_u64(
        std::uint64_t(n_owned) * (node_dim + 1) +
            std::uint64_t(shard.local_graph.edges.size()) *
                (edge_dim + 2) +
            n_ghosts,
        64);

    // Destination-bank split over the local subgraph, mirroring the
    // engine's policy choice on local ids.
    std::vector<std::uint32_t> bank_of;
    if (cfg.bank_policy == BankPolicy::kGreedyBalanced) {
        bank_of = balanced_bank_assignment(shard.local_graph,
                                           cfg.p_edge);
    } else {
        bank_of.resize(n_locals);
        for (NodeId v = 0; v < n_locals; ++v)
            bank_of[v] = v % cfg.p_edge;
    }
    const CsrGraph csr(shard.local_graph);
    std::vector<std::vector<BankWork>> banks(n_locals);
    {
        std::vector<std::uint32_t> count(cfg.p_edge, 0);
        for (NodeId v = 0; v < n_locals; ++v) {
            std::fill(count.begin(), count.end(), 0);
            for (std::size_t s = csr.row_begin(v); s < csr.row_end(v);
                 ++s)
                ++count[bank_of[csr.dst(s)]];
            for (std::uint32_t b = 0; b < cfg.p_edge; ++b)
                if (count[b] > 0)
                    banks[v].push_back({b, count[b]});
        }
    }

    std::vector<std::uint64_t> acc;
    std::vector<std::uint64_t> acc_zero;
    std::uint64_t phase_base = 0;
    for (const StageSchedule &sched : schedule) {
        PhaseWork w;
        w.stream_elems = sched.stream_elems;
        w.has_scatter = sched.has_scatter;
        w.expansion = sched.expansion;
        if (sched.has_scatter) {
            // Exchange-fed phase: ghosts participate in the scatter.
            w.n_nodes = n_locals;
            w.banks = &banks;
            acc.resize(n_locals);
            const std::uint64_t ghost_acc =
                sched.is_gat ? sched.nt_pass_cycles : 0;
            for (NodeId v = 0; v < n_locals; ++v)
                acc[v] =
                    shard.is_owned[v] ? sched.acc_cycles : ghost_acc;
        } else {
            // Node-local stage: ghosts take no part at all.
            w.n_nodes = n_owned;
            acc.assign(n_owned, sched.acc_cycles);
        }
        w.acc_cycles = &acc;

        PhaseEnv env{w, cfg, opts, stats, phase_base};
        std::uint64_t cycles = run_phase(env);
        if (sched.is_gat) {
            // Round 2: zero-cost re-stream for the weighted sum,
            // exactly as in the engine.
            PhaseWork w2 = w;
            acc_zero.assign(w.n_nodes, 0);
            w2.acc_cycles = &acc_zero;
            PhaseEnv env2{w2, cfg, opts, stats, phase_base + cycles};
            cycles += run_phase(env2);
        }
        phase_base += cycles;
        stats.phase_cycles.push_back(cycles);
        stats.total_cycles += cycles;
    }

    // Epilogue: final GAT combine over owned vertices only.
    if (!schedule.empty() && schedule.back().is_gat) {
        const std::size_t last = model.num_stages() - 1;
        std::uint64_t epi =
            ceil_div_u64(n_owned, cfg.p_node) *
            ceil_div_u64(model.stage(last).out_dim(), cfg.p_apply);
        stats.phase_cycles.push_back(epi);
        stats.total_cycles += epi;
    }

    std::uint64_t head_cycles = 0;
    for (std::size_t l = 0; l < model.head().num_layers(); ++l)
        head_cycles +=
            ceil_div_u64(model.head().layer(l).in_dim(), cfg.p_apply);
    stats.head_cycles = head_cycles;
    stats.total_cycles += head_cycles + stats.load_cycles;
    return stats;
}

/**
 * Emits the modeled per-die execution — load, per-layer boundary
 * exchange, per-stage compute, head — as cycle-domain spans on
 * Track::kGhost, one explicitly-addressed row per die, serialized in
 * model order. comm[p] is the exchange feeding phase p's scatter
 * (RunStats::layer_comm_cycles convention), so it precedes stage p.
 */
void
emit_modeled_timeline(obs::TraceSession &session,
                      const std::vector<RunStats> &per_die,
                      const std::vector<std::vector<std::uint64_t>>
                          &per_layer_comm,
                      const obs::CycleClockMap &map)
{
    char nm[48];
    for (std::size_t t = 0; t < per_die.size(); ++t) {
        const RunStats &s = per_die[t];
        const std::uint32_t tid =
            obs::TraceSession::kExplicitTidBase +
            static_cast<std::uint32_t>(t);
        std::snprintf(nm, sizeof nm, "die %zu (modeled)", t);
        session.name_row(obs::Track::kGhost, tid, nm);

        std::uint64_t cursor = 0;
        auto emit = [&](const char *label, std::uint64_t cycles) {
            if (cycles == 0)
                return;
            session.span_on(obs::Track::kGhost, tid, label,
                            map.to_ns(cursor),
                            map.to_ns(cursor + cycles));
            cursor += cycles;
        };

        emit("load", s.load_cycles);
        const std::vector<std::uint64_t> &comm = per_layer_comm[t];
        for (std::size_t p = 0; p < s.phase_cycles.size(); ++p) {
            if (p < comm.size() && comm[p] != 0) {
                std::snprintf(nm, sizeof nm, "exchange %zu", p);
                emit(nm, comm[p]);
            }
            std::snprintf(nm, sizeof nm, "stage %zu", p);
            emit(nm, s.phase_cycles[p]);
        }
        emit("head", s.head_cycles);
    }
}

} // namespace

ShardedRunResult
run_ghost_plan(const Model &model, const EngineConfig &config,
               const GraphSample &prepared, GhostPlan &&plan,
               const RunOptions &opts, const LinkConfig &link)
{
    return run_ghost_plan(model, config, SampleRef(prepared),
                          std::move(plan), opts, link, 1);
}

ShardedRunResult
run_ghost_plan(const Model &model, const EngineConfig &config,
               const SampleRef &prepared, GhostPlan &&plan,
               const RunOptions &opts, const LinkConfig &link,
               unsigned host_cores)
{
    return run_ghost_plan(model, config, prepared, std::move(plan),
                          opts, link, nullptr, host_cores);
}

ShardedRunResult
run_ghost_plan(const Model &model, const EngineConfig &config,
               const SampleRef &prepared, GhostPlan &&plan,
               const RunOptions &opts, const LinkConfig &link,
               GhostResumeState *resume, unsigned host_cores)
{
    ShardedRunResult out;
    obs::TraceSession *session = obs::TraceSession::current();
    const std::uint64_t run_start_ns =
        session ? session->now_ns() : 0;

    if (!plan.sharded) {
        Engine engine(model, config);
        RunWorkspace ws;
        RunResult r;
        if (resume != nullptr) {
            if (engine.run_resumable(prepared, opts, ws,
                                     resume->checkpoint, r,
                                     resume->max_stages, host_cores) ==
                SegmentOutcome::kPreempted) {
                resume->preempted = true;
                resume->plan = std::move(plan);
                return out;
            }
            resume->preempted = false;
        } else {
            r = engine.run_prepared(prepared, opts, ws, host_cores);
        }
        out.embeddings = std::move(r.embeddings);
        out.prediction = r.prediction;
        GhostShard &shard = plan.shards.front();
        shard.info.stats = r.stats;
        out.shards.push_back(std::move(shard.info));
        out.stats = std::move(r.stats);
        return out;
    }

    // ---- Global functional pass, src-major order ----
    // Timing is structural, so the values are computed once over the
    // whole graph. The non-pipelined analytic mode runs the functional
    // callbacks in src-major order at O(V + E) per stage — the same
    // order a single-NT-unit die sees, which is what makes ghost runs
    // bit-identical to unsharded single-NT runs (and keeps the result
    // invariant in the shard count). Quantization points are the
    // engine's own, and since its quantizer is idempotent, the
    // re-quantization at every boundary crossing is value-preserving.
    EngineConfig func_cfg = config;
    func_cfg.mode = PipelineMode::kNonPipelined;
    RunWorkspace func_ws;
    RunResult func;
    {
        obs::Span span(obs::Track::kGhost, "functional pass");
        Engine func_engine(model, func_cfg);
        if (resume != nullptr) {
            // Only the functional pass checkpoints: it is the sole
            // carrier of values. The structural per-die pricing below
            // runs exactly once, on the segment that completes.
            if (func_engine.run_resumable(prepared, opts, func_ws,
                                          resume->checkpoint, func,
                                          resume->max_stages,
                                          host_cores) ==
                SegmentOutcome::kPreempted) {
                resume->preempted = true;
                resume->plan = std::move(plan);
                return out;
            }
            resume->preempted = false;
        } else {
            func = func_engine.run_prepared(prepared, opts, func_ws,
                                            host_cores);
        }
    }
    out.embeddings = std::move(func.embeddings);
    out.prediction = func.prediction;

    // ---- Per-die timing, one thread per die ----
    const std::vector<StageSchedule> schedule =
        build_stage_schedule(model, config);
    const std::size_t node_dim = prepared.node_dim;
    const std::size_t edge_dim = prepared.edge_dim;
    std::vector<RunStats> per_die(plan.shards.size());
    {
        std::vector<std::thread> threads;
        threads.reserve(plan.shards.size());
        for (std::size_t t = 0; t < plan.shards.size(); ++t) {
            threads.emplace_back([&, t] {
                char nm[32];
                std::snprintf(nm, sizeof nm, "price die %zu", t);
                if (obs::TraceSession *s = obs::TraceSession::current())
                    s->name_thread(obs::Track::kGhost, nm);
                obs::Span span(obs::Track::kGhost, nm);
                per_die[t] =
                    price_ghost_die(plan.shards[t], schedule, model,
                                    config, opts, node_dim, edge_dim);
            });
        }
        for (std::thread &th : threads)
            th.join();
    }

    // ---- Compose: per-layer exchanges against per-phase windows ----
    std::vector<std::vector<std::uint64_t>> per_layer_comm;
    per_layer_comm.reserve(plan.shards.size());
    for (std::size_t t = 0; t < plan.shards.size(); ++t) {
        GhostShard &shard = plan.shards[t];
        shard.info.stats = per_die[t];
        per_layer_comm.push_back(std::move(shard.layer_comm_cycles));
        out.shards.push_back(std::move(shard.info));
    }
    out.stats =
        compose_shard_stats(per_die, per_layer_comm, link.overlap);
    out.cut_edges = plan.cut_edges;
    out.replication_factor = plan.replication_factor;

    // The modeled multi-die execution — per-layer exchanges between
    // per-stage compute windows — onto the wall timeline, anchored at
    // the instant this run started.
    if (session)
        emit_modeled_timeline(
            *session, per_die, per_layer_comm,
            obs::CycleClockMap{run_start_ns, config.clock_mhz});
    return out;
}

GhostExchangeEngine::GhostExchangeEngine(const Model &model,
                                         EngineConfig config,
                                         ShardConfig shard_config)
    : model_(model), config_(config), shard_config_(shard_config)
{
    config_.validate();
    shard_config_.validate();
}

ShardedRunResult
GhostExchangeEngine::run(const GraphSample &sample) const
{
    return run(sample, RunOptions{});
}

ShardedRunResult
GhostExchangeEngine::run(const GraphSample &sample,
                         const RunOptions &opts) const
{
    GraphSample prepared = model_.prepare(sample);
    GhostPlan plan = make_ghost_plan(model_, prepared, shard_config_);
    return run_ghost_plan(model_, config_, prepared, std::move(plan),
                          opts, shard_config_.link);
}

} // namespace flowgnn
