#include "datasets/dataset.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "graph/generators.h"
#include "tensor/rng.h"

namespace flowgnn {

namespace {

// Table IV targets. Node feature dims are dense stand-ins for the real
// datasets' raw features (molecules: 9 atom / 3 bond features as in
// OGB; HEP: 7 kinematic features + 2 relative-position edge features;
// citation/social: dense dim-64 stand-in for sparse bags-of-words).
constexpr DatasetSpec kSpecs[] = {
    {DatasetKind::kMolHiv, "MolHIV", 4113, 25.3, 55.6, true, 9, 3, 1},
    {DatasetKind::kMolPcba, "MolPCBA", 43773, 27.0, 59.3, true, 9, 3, 1},
    {DatasetKind::kHep, "HEP", 10000, 49.1, 785.3, true, 7, 2, 1},
    {DatasetKind::kCora, "Cora", 1, 2708, 5429, false, 64, 0, 1},
    {DatasetKind::kCiteSeer, "CiteSeer", 1, 3327, 4732, false, 64, 0, 1},
    {DatasetKind::kPubMed, "PubMed", 1, 19717, 44338, false, 64, 0, 1},
    {DatasetKind::kReddit, "Reddit", 1, 232965, 114615892.0, false, 64, 0,
     64},
};

std::uint64_t
sample_seed(DatasetKind kind, std::size_t index)
{
    return 0xF10733DBULL * (static_cast<std::uint64_t>(kind) + 1) +
           0x9E3779B9ULL * (index + 1);
}

/** Gaussian node count clamped to a sensible range. */
NodeId
draw_num_nodes(Rng &rng, double mean, double sd, NodeId lo, NodeId hi)
{
    double v = rng.normal(mean, sd);
    v = std::clamp(v, static_cast<double>(lo), static_cast<double>(hi));
    return static_cast<NodeId>(std::lround(v));
}

void
fill_features(Matrix &m, Rng &rng)
{
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t c = 0; c < m.cols(); ++c)
            m(i, c) = static_cast<float>(rng.normal(0.0, 0.5));
}

/**
 * Adjusts a generated edge list to an exact target count: excess edges
 * are dropped pseudo-randomly, missing ones added as fresh random
 * pairs. Keeps the generator's degree-distribution shape while
 * matching Table IV exactly.
 */
void
adjust_edge_count(CooGraph &g, std::size_t target, Rng &rng)
{
    if (g.edges.size() > target) {
        // Partial Fisher-Yates: keep a uniform subset in random order.
        for (std::size_t i = 0; i < target; ++i) {
            std::size_t j =
                i + rng.uniform_index(g.edges.size() - i);
            std::swap(g.edges[i], g.edges[j]);
        }
        g.edges.resize(target);
    }
    std::set<std::pair<NodeId, NodeId>> seen;
    for (const auto &e : g.edges)
        seen.insert({e.src, e.dst});
    while (g.edges.size() < target) {
        NodeId s = static_cast<NodeId>(rng.uniform_index(g.num_nodes));
        NodeId d = static_cast<NodeId>(rng.uniform_index(g.num_nodes));
        if (s == d)
            continue;
        if (seen.insert({s, d}).second)
            g.edges.push_back({s, d});
    }
}

GraphSample
make_molecular(const DatasetSpec &spec, std::size_t index)
{
    Rng rng(sample_seed(spec.kind, index));
    // avg_edges/avg_nodes ~ 2.2 emerges from the molecule generator's
    // tree + ring structure; only the node count is drawn.
    NodeId n = draw_num_nodes(rng, spec.avg_nodes, spec.avg_nodes * 0.35,
                              4, static_cast<NodeId>(spec.avg_nodes * 4));
    GraphSample s;
    s.graph = make_molecule(n, rng);
    s.node_features = Matrix(n, spec.node_dim);
    fill_features(s.node_features, rng);
    s.edge_features = Matrix(s.graph.num_edges(), spec.edge_dim);
    // Bond features are mirrored on the reverse-direction copy.
    std::size_t bonds = s.graph.num_edges() / 2;
    for (std::size_t b = 0; b < bonds; ++b) {
        for (std::size_t c = 0; c < spec.edge_dim; ++c) {
            float v = static_cast<float>(rng.normal(0.0, 0.5));
            s.edge_features(b, c) = v;
            s.edge_features(bonds + b, c) = v;
        }
    }
    s.label = static_cast<float>(rng.uniform() < 0.5 ? 0.0 : 1.0);
    return s;
}

GraphSample
make_hep(const DatasetSpec &spec, std::size_t index)
{
    Rng rng(sample_seed(spec.kind, index));
    NodeId n = draw_num_nodes(rng, spec.avg_nodes, 6.0, 20, 100);
    GraphSample s;
    s.graph = make_knn_point_cloud(n, 16, rng);
    s.node_features = Matrix(n, spec.node_dim);
    fill_features(s.node_features, rng);
    s.edge_features = Matrix(s.graph.num_edges(), spec.edge_dim);
    fill_features(s.edge_features, rng);
    s.label = static_cast<float>(rng.uniform() < 0.5 ? 0.0 : 1.0);
    return s;
}

GraphSample
make_network(const DatasetSpec &spec)
{
    Rng rng(sample_seed(spec.kind, 0));
    NodeId n = static_cast<NodeId>(
        std::llround(spec.avg_nodes / spec.scale));
    std::size_t target_edges = static_cast<std::size_t>(
        std::llround(spec.avg_edges / spec.scale));

    // Preferential attachment with m chosen from the target average
    // degree; the exact Table IV edge count is then enforced.
    double avg_out_deg =
        static_cast<double>(target_edges) / static_cast<double>(n);
    std::uint32_t m = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::llround(avg_out_deg / 2.0)));

    GraphSample s;
    s.graph = make_barabasi_albert(n, m, rng);
    adjust_edge_count(s.graph, target_edges, rng);
    s.node_features = Matrix(n, spec.node_dim);
    fill_features(s.node_features, rng);
    s.label = 0.0f;
    return s;
}

} // namespace

const DatasetSpec &
dataset_spec(DatasetKind kind)
{
    for (const auto &spec : kSpecs)
        if (spec.kind == kind)
            return spec;
    throw std::invalid_argument("dataset_spec: unknown dataset");
}

GraphSample
make_sample(DatasetKind kind, std::size_t index)
{
    const DatasetSpec &spec = dataset_spec(kind);
    switch (kind) {
      case DatasetKind::kMolHiv:
      case DatasetKind::kMolPcba:
        if (index >= spec.num_graphs)
            throw std::out_of_range("make_sample: index out of range");
        return make_molecular(spec, index);
      case DatasetKind::kHep:
        if (index >= spec.num_graphs)
            throw std::out_of_range("make_sample: index out of range");
        return make_hep(spec, index);
      case DatasetKind::kCora:
      case DatasetKind::kCiteSeer:
      case DatasetKind::kPubMed:
      case DatasetKind::kReddit:
        if (index != 0)
            throw std::out_of_range(
                "make_sample: single-graph dataset has only index 0");
        return make_network(spec);
    }
    throw std::invalid_argument("make_sample: unknown dataset");
}

SampleStream::SampleStream(DatasetKind kind, std::size_t limit)
    : kind_(kind)
{
    const DatasetSpec &spec = dataset_spec(kind);
    limit_ = (limit == 0) ? spec.num_graphs
                          : std::min(limit, spec.num_graphs);
}

GraphSample
SampleStream::next()
{
    GraphSample s = make_sample(kind_, cursor_);
    cursor_ = (cursor_ + 1) % limit_;
    return s;
}

DatasetStats
measure_dataset(DatasetKind kind, std::size_t max_samples)
{
    const DatasetSpec &spec = dataset_spec(kind);
    std::size_t count = std::min(max_samples, spec.num_graphs);
    DatasetStats stats;
    stats.edge_features = spec.edge_features;
    double nodes = 0.0, edges = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        GraphSample s = make_sample(kind, i);
        nodes += static_cast<double>(s.num_nodes()) * spec.scale;
        edges += static_cast<double>(s.num_edges()) * spec.scale;
    }
    stats.graphs_sampled = count;
    stats.avg_nodes = nodes / static_cast<double>(count);
    stats.avg_edges = edges / static_cast<double>(count);
    return stats;
}

} // namespace flowgnn
