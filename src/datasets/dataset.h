/**
 * @file
 * Synthetic dataset generators matched to the statistics of the seven
 * evaluation datasets (paper Table IV).
 *
 * We do not ship OGB/Planetoid/Reddit data; instead each dataset is a
 * deterministic generator reproducing the structural character that
 * matters to a workload-agnostic accelerator: graph count, node/edge
 * counts, degree distribution shape, and edge-feature presence.
 * Substitutions are documented in docs/DESIGN.md; notably Reddit is
 * generated at 1/64 scale (same average degree) and results are
 * extrapolated — the full-scale Reddit-class graph comes from the
 * flowgnn_make_reddit tool + flowgnn::io instead — and citation-graph
 * node features use a dense dim-64 stand-in for the sparse binary
 * bags-of-words.
 */
#ifndef FLOWGNN_DATASETS_DATASET_H
#define FLOWGNN_DATASETS_DATASET_H

#include <cstdint>

#include "graph/sample.h"

namespace flowgnn {

/** The seven evaluation datasets of paper Table IV. */
enum class DatasetKind {
    kMolHiv,   ///< OGB molhiv: 4113 molecular graphs, edge features
    kMolPcba,  ///< OGB molpcba: 43773 molecular graphs, edge features
    kHep,      ///< 10k kNN (k=16) particle-cloud graphs, edge features
    kCora,     ///< citation graph, 2708 nodes / 5429 edges
    kCiteSeer, ///< citation graph, 3327 nodes / 4732 edges
    kPubMed,   ///< citation graph, 19717 nodes / 44338 edges
    kReddit,   ///< social graph, 232965 nodes / 114.6M edges (scaled)
};

/** All dataset kinds, in Table IV order. */
inline constexpr DatasetKind kAllDatasets[] = {
    DatasetKind::kMolHiv, DatasetKind::kMolPcba,  DatasetKind::kHep,
    DatasetKind::kCora,   DatasetKind::kCiteSeer, DatasetKind::kPubMed,
    DatasetKind::kReddit,
};

/** Static description of a dataset (the Table IV row + generator dims). */
struct DatasetSpec {
    DatasetKind kind;
    const char *name;
    std::size_t num_graphs;   ///< graphs in the dataset
    double avg_nodes;         ///< Table IV (average) node count
    double avg_edges;         ///< Table IV (average) edge count
    bool edge_features;       ///< Table IV EF column
    std::size_t node_dim;     ///< raw node feature count we generate
    std::size_t edge_dim;     ///< raw edge feature count (0 if none)
    std::uint32_t scale;      ///< size divisor (64 for Reddit, else 1)
};

/** Spec lookup. */
const DatasetSpec &dataset_spec(DatasetKind kind);

/**
 * Generates sample `index` of a dataset, deterministically: the same
 * (kind, index) always produces the same graph and features. For the
 * single-graph datasets only index 0 is valid.
 */
GraphSample make_sample(DatasetKind kind, std::size_t index);

/**
 * Sequential sample stream — the paper's "graphs streamed in
 * consecutively at batch size 1". Wraps around modulo the suggested
 * sampling count for cheap unbounded streaming.
 */
class SampleStream
{
  public:
    explicit SampleStream(DatasetKind kind, std::size_t limit = 0);

    DatasetKind kind() const { return kind_; }

    /** Number of distinct samples this stream cycles through. */
    std::size_t size() const { return limit_; }

    /** Next sample (cycles after size()). */
    GraphSample next();

  private:
    DatasetKind kind_;
    std::size_t limit_;
    std::size_t cursor_ = 0;
};

/** Measured statistics over generated samples (Table IV check). */
struct DatasetStats {
    std::size_t graphs_sampled = 0;
    double avg_nodes = 0.0;
    double avg_edges = 0.0;
    bool edge_features = false;
};

/**
 * Computes statistics over up to max_samples generated graphs
 * (multi-graph datasets) or the single graph.
 */
DatasetStats measure_dataset(DatasetKind kind, std::size_t max_samples);

} // namespace flowgnn

#endif // FLOWGNN_DATASETS_DATASET_H
