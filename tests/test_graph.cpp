/** @file COO/CSR/CSC graph representation tests. */
#include <gtest/gtest.h>

#include "graph/graph.h"

namespace flowgnn {
namespace {

CooGraph
diamond()
{
    // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
    CooGraph g;
    g.num_nodes = 4;
    g.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
    return g;
}

TEST(CooGraph, DegreesMatchHandCount)
{
    CooGraph g = diamond();
    EXPECT_EQ(g.out_degrees(), (std::vector<std::uint32_t>{2, 1, 1, 0}));
    EXPECT_EQ(g.in_degrees(), (std::vector<std::uint32_t>{0, 1, 1, 2}));
}

TEST(CooGraph, ValidityChecksEndpoints)
{
    CooGraph g = diamond();
    EXPECT_TRUE(g.valid());
    g.edges.push_back({0, 4});
    EXPECT_FALSE(g.valid());
}

TEST(CooGraph, WithReverseEdgesMirrorsPositionally)
{
    CooGraph g = diamond();
    CooGraph r = g.with_reverse_edges();
    EXPECT_EQ(r.num_edges(), 8u);
    for (std::size_t i = 0; i < g.num_edges(); ++i) {
        EXPECT_EQ(r.edges[i], g.edges[i]);
        EXPECT_EQ(r.edges[g.num_edges() + i].src, g.edges[i].dst);
        EXPECT_EQ(r.edges[g.num_edges() + i].dst, g.edges[i].src);
    }
}

TEST(CsrGraph, RowsContainOutNeighbors)
{
    CsrGraph csr(diamond());
    EXPECT_EQ(csr.num_nodes(), 4u);
    EXPECT_EQ(csr.num_edges(), 4u);
    EXPECT_EQ(csr.out_degree(0), 2u);
    std::vector<NodeId> nbrs;
    for (std::size_t s = csr.row_begin(0); s < csr.row_end(0); ++s)
        nbrs.push_back(csr.dst(s));
    std::sort(nbrs.begin(), nbrs.end());
    EXPECT_EQ(nbrs, (std::vector<NodeId>{1, 2}));
    EXPECT_EQ(csr.out_degree(3), 0u);
}

TEST(CsrGraph, EdgeIdsPreserveCooPositions)
{
    CooGraph g = diamond();
    CsrGraph csr(g);
    for (NodeId n = 0; n < 4; ++n)
        for (std::size_t s = csr.row_begin(n); s < csr.row_end(n); ++s) {
            EdgeId id = csr.edge_id(s);
            EXPECT_EQ(g.edges[id].src, n);
            EXPECT_EQ(g.edges[id].dst, csr.dst(s));
        }
}

TEST(CscGraph, ColsContainInNeighbors)
{
    CscGraph csc(diamond());
    EXPECT_EQ(csc.in_degree(3), 2u);
    std::vector<NodeId> srcs;
    for (std::size_t s = csc.col_begin(3); s < csc.col_end(3); ++s)
        srcs.push_back(csc.src(s));
    std::sort(srcs.begin(), srcs.end());
    EXPECT_EQ(srcs, (std::vector<NodeId>{1, 2}));
    EXPECT_EQ(csc.in_degree(0), 0u);
}

TEST(CscGraph, EdgeIdsPreserveCooPositions)
{
    CooGraph g = diamond();
    CscGraph csc(g);
    for (NodeId n = 0; n < 4; ++n)
        for (std::size_t s = csc.col_begin(n); s < csc.col_end(n); ++s) {
            EdgeId id = csc.edge_id(s);
            EXPECT_EQ(g.edges[id].dst, n);
            EXPECT_EQ(g.edges[id].src, csc.src(s));
        }
}

TEST(Conversions, InvalidGraphThrows)
{
    CooGraph g = diamond();
    g.edges.push_back({9, 0});
    EXPECT_THROW(CsrGraph{g}, std::invalid_argument);
    EXPECT_THROW(CscGraph{g}, std::invalid_argument);
}

TEST(Conversions, EmptyGraphIsFine)
{
    CooGraph g;
    g.num_nodes = 3;
    CsrGraph csr(g);
    CscGraph csc(g);
    EXPECT_EQ(csr.num_edges(), 0u);
    for (NodeId n = 0; n < 3; ++n) {
        EXPECT_EQ(csr.out_degree(n), 0u);
        EXPECT_EQ(csc.in_degree(n), 0u);
    }
}

TEST(Conversions, SelfLoopsAndMultiEdgesPreserved)
{
    CooGraph g;
    g.num_nodes = 2;
    g.edges = {{0, 0}, {0, 1}, {0, 1}};
    CsrGraph csr(g);
    EXPECT_EQ(csr.out_degree(0), 3u);
    CscGraph csc(g);
    EXPECT_EQ(csc.in_degree(1), 2u);
    EXPECT_EQ(csc.in_degree(0), 1u);
}

} // namespace
} // namespace flowgnn
