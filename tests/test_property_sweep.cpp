/**
 * @file
 * Randomized property sweeps: the engine must match the reference on
 * arbitrary graph structures (the workload-agnostic claim), not just
 * the curated datasets. Graphs are drawn from four structural families
 * with varying size/density, across models and parallelism configs.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "graph/generators.h"
#include "nn/model.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

enum class GraphFamily { kErdosRenyi, kMolecule, kKnn, kPowerLaw };

GraphSample
random_sample(GraphFamily family, std::uint64_t seed, std::size_t node_dim,
              std::size_t edge_dim)
{
    Rng rng(seed);
    NodeId n = 5 + static_cast<NodeId>(rng.uniform_index(40));
    GraphSample s;
    switch (family) {
      case GraphFamily::kErdosRenyi: {
        std::size_t max_e = std::size_t(n) * (n - 1);
        s.graph = make_erdos_renyi(n, rng.uniform_index(max_e / 2 + 1),
                                   rng);
        break;
      }
      case GraphFamily::kMolecule:
        s.graph = make_molecule(n, rng);
        break;
      case GraphFamily::kKnn:
        s.graph = make_knn_point_cloud(n, 4, rng);
        break;
      case GraphFamily::kPowerLaw:
        s.graph = make_barabasi_albert(n, 2, rng);
        break;
    }
    s.node_features = Matrix(n, node_dim);
    for (std::size_t i = 0; i < s.node_features.size(); ++i)
        s.node_features.data()[i] =
            static_cast<float>(rng.normal(0.0, 0.5));
    if (edge_dim > 0) {
        s.edge_features = Matrix(s.graph.num_edges(), edge_dim);
        for (std::size_t i = 0; i < s.edge_features.size(); ++i)
            s.edge_features.data()[i] =
                static_cast<float>(rng.normal(0.0, 0.5));
    }
    return s;
}

struct SweepCase {
    GraphFamily family;
    ModelKind model;
    std::uint64_t seed;
};

class WorkloadAgnosticSweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(WorkloadAgnosticSweep, EngineMatchesReferenceOnArbitraryGraphs)
{
    const auto &[family, kind, seed] = GetParam();
    GraphSample s = random_sample(family, seed, 6, 3);
    Model m = make_model(kind, 6, 3, seed + 1);

    GraphSample prepared = m.prepare(s);
    Matrix expected = m.reference_embeddings(prepared);

    // Exactness at single-NT; tolerance at the paper default config.
    EngineConfig exact_cfg;
    exact_cfg.p_node = 1;
    EXPECT_EQ(max_abs_diff(Engine(m, exact_cfg).run(s).embeddings,
                           expected),
              0.0f);

    RunResult r = Engine(m, {}).run(s);
    EXPECT_LT(max_abs_diff(r.embeddings, expected), 1e-3f);
    for (std::size_t i = 0; i < r.embeddings.size(); ++i)
        EXPECT_TRUE(std::isfinite(r.embeddings.data()[i]));
}

std::vector<SweepCase>
sweep_cases()
{
    std::vector<SweepCase> cases;
    const GraphFamily families[] = {
        GraphFamily::kErdosRenyi, GraphFamily::kMolecule,
        GraphFamily::kKnn, GraphFamily::kPowerLaw};
    const ModelKind models[] = {ModelKind::kGcn, ModelKind::kGin,
                                ModelKind::kGat, ModelKind::kPna,
                                ModelKind::kDgn, ModelKind::kGinVn};
    std::uint64_t seed = 100;
    for (GraphFamily f : families)
        for (ModelKind m : models)
            cases.push_back({f, m, seed++});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamiliesAllModels, WorkloadAgnosticSweep,
                         ::testing::ValuesIn(sweep_cases()));

/** Timing-side sweep: cycle counts behave sanely on arbitrary graphs. */
class TimingPropertySweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TimingPropertySweep, CyclesScaleWithWork)
{
    std::uint64_t seed = GetParam();
    GraphSample small =
        random_sample(GraphFamily::kErdosRenyi, seed, 6, 0);
    // The same structure with every edge duplicated: strictly more MP
    // work must never be faster.
    GraphSample doubled = small;
    auto base_edges = doubled.graph.edges;
    for (const auto &e : base_edges)
        doubled.graph.edges.push_back(e);

    Model m = make_model(ModelKind::kGcn, 6, 0, seed);
    Engine engine(m, {});
    std::uint64_t c_small = engine.run(small).stats.total_cycles;
    std::uint64_t c_doubled = engine.run(doubled).stats.total_cycles;
    EXPECT_GE(c_doubled, c_small);
}

TEST_P(TimingPropertySweep, PipelineOrderingHoldsOnRandomGraphs)
{
    std::uint64_t seed = GetParam();
    GraphSample s = random_sample(GraphFamily::kPowerLaw, seed, 6, 0);
    Model m = make_model(ModelKind::kGcn, 6, 0, seed);
    EngineConfig base;
    base.p_node = 1;
    base.p_edge = 1;
    base.p_apply = 2;
    base.p_scatter = 2;

    auto cycles_for = [&](PipelineMode mode) {
        EngineConfig c = base;
        c.mode = mode;
        return Engine(m, c).run(s).stats.total_cycles;
    };
    std::uint64_t np = cycles_for(PipelineMode::kNonPipelined);
    std::uint64_t fp = cycles_for(PipelineMode::kFixedPipeline);
    std::uint64_t bd = cycles_for(PipelineMode::kBaselineDataflow);
    std::uint64_t fg = cycles_for(PipelineMode::kFlowGnn);
    EXPECT_GE(np, fp);
    EXPECT_GE(fp, bd);
    EXPECT_GE(bd, fg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingPropertySweep,
                         ::testing::Range<std::uint64_t>(200, 212));

} // namespace
} // namespace flowgnn
