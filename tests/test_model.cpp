/** @file Model factory / reference-executor tests. */
#include <gtest/gtest.h>

#include <cmath>

#include "datasets/dataset.h"
#include "nn/encoder_layer.h"
#include "nn/model.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

TEST(ModelFactory, PaperConfigurations)
{
    // Paper Sec. VI-A: layer counts and hidden dims per model.
    struct Expect {
        ModelKind kind;
        std::size_t stages; // encoder + conv layers
        std::size_t dim;
    };
    const Expect cases[] = {
        {ModelKind::kGcn, 6, 100},   {ModelKind::kGin, 6, 100},
        {ModelKind::kGinVn, 6, 100}, {ModelKind::kGat, 6, 64},
        {ModelKind::kPna, 5, 80},    {ModelKind::kDgn, 5, 100},
        {ModelKind::kGcn16, 3, 16},
    };
    for (const auto &c : cases) {
        Model m = make_model(c.kind, 9, 3);
        EXPECT_EQ(m.num_stages(), c.stages) << model_name(c.kind);
        EXPECT_EQ(m.embedding_dim(), c.dim) << model_name(c.kind);
        EXPECT_EQ(m.head().in_dim(), c.dim) << model_name(c.kind);
        EXPECT_EQ(m.head().out_dim(), 1u) << model_name(c.kind);
    }
}

TEST(ModelFactory, VirtualNodeAndDgnFlags)
{
    EXPECT_TRUE(make_model(ModelKind::kGinVn, 4, 2).uses_virtual_node());
    EXPECT_FALSE(make_model(ModelKind::kGin, 4, 2).uses_virtual_node());
    EXPECT_TRUE(make_model(ModelKind::kDgn, 4, 2).needs_dgn_field());
    EXPECT_FALSE(make_model(ModelKind::kGcn, 4, 2).needs_dgn_field());
}

TEST(ModelFactory, SeedDeterminism)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model a = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim(), 7);
    Model b = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim(), 7);
    Model c = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim(), 8);
    EXPECT_EQ(a.predict(s), b.predict(s));
    EXPECT_NE(a.predict(s), c.predict(s));
}

TEST(ModelFactory, NamesMatchKinds)
{
    EXPECT_STREQ(model_name(ModelKind::kGinVn), "GIN+VN");
    EXPECT_EQ(make_model(ModelKind::kPna, 4, 0).name(), "PNA");
}

TEST(Model, DimensionMismatchRejectedAtConstruction)
{
    Rng rng(1);
    std::vector<std::unique_ptr<Layer>> stages;
    stages.push_back(std::make_unique<EncoderLayer>(4, 8, rng));
    Mlp head({16, 1}); // mismatched with stage out_dim 8
    EXPECT_THROW(Model("bad", std::move(stages), std::move(head)),
                 std::invalid_argument);
}

TEST(Model, PrepareAddsVirtualNode)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 1);
    Model m = make_model(ModelKind::kGinVn, s.node_dim(), s.edge_dim());
    GraphSample p = m.prepare(s);
    EXPECT_EQ(p.num_nodes(), s.num_nodes() + 1);
    EXPECT_EQ(p.pool_nodes(), s.num_nodes());
}

TEST(Model, PrepareComputesDgnFieldDeterministically)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 1);
    Model m = make_model(ModelKind::kDgn, s.node_dim(), s.edge_dim());
    GraphSample p1 = m.prepare(s);
    GraphSample p2 = m.prepare(s);
    ASSERT_EQ(p1.dgn_field.size(), s.num_nodes());
    EXPECT_EQ(p1.dgn_field, p2.dgn_field);
}

TEST(Model, ReferenceEmbeddingsShape)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 2);
    for (ModelKind kind : kPaperModels) {
        Model m = make_model(kind, s.node_dim(), s.edge_dim());
        GraphSample p = m.prepare(s);
        Matrix emb = m.reference_embeddings(p);
        EXPECT_EQ(emb.rows(), p.num_nodes()) << model_name(kind);
        EXPECT_EQ(emb.cols(), m.embedding_dim()) << model_name(kind);
    }
}

TEST(Model, EdgeFeaturesInfluenceGin)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 3);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    float base = m.predict(s);
    GraphSample perturbed = s;
    perturbed.edge_features(0, 0) += 1.0f;
    EXPECT_NE(m.predict(perturbed), base)
        << "GIN must be sensitive to edge embeddings";
}

TEST(Model, IsolatedNodesAreHandled)
{
    GraphSample s;
    s.graph.num_nodes = 5; // no edges at all
    s.node_features = Matrix(5, 4, 0.1f);
    for (ModelKind kind : kPaperModels) {
        Model m = make_model(kind, 4, 0);
        float p = m.predict(s);
        EXPECT_TRUE(std::isfinite(p)) << model_name(kind);
    }
}

TEST(Model, GlobalMeanPoolExcludesVirtualRows)
{
    Model m = make_model(ModelKind::kGcn, 4, 0);
    Matrix emb(3, 100, 1.0f);
    for (std::size_t c = 0; c < 100; ++c)
        emb(2, c) = 100.0f; // the "virtual" row
    Vec pooled = m.global_mean_pool(emb, 2);
    for (float v : pooled)
        EXPECT_FLOAT_EQ(v, 1.0f);
    EXPECT_THROW(m.global_mean_pool(emb, 0), std::invalid_argument);
    EXPECT_THROW(m.global_mean_pool(emb, 4), std::invalid_argument);
}

TEST(Model, MacsScaleWithGraphSize)
{
    Model m = make_model(ModelKind::kGcn, 9, 3);
    GraphSample small = make_sample(DatasetKind::kMolHiv, 0);
    GraphSample big = make_sample(DatasetKind::kHep, 0);
    EXPECT_GT(m.macs(big), m.macs(small));
}

TEST(Model, MacsOrderingAcrossModels)
{
    GraphSample s = make_sample(DatasetKind::kHep, 0);
    auto macs = [&](ModelKind k) {
        Model m = make_model(k, s.node_dim(), s.edge_dim());
        return m.macs(m.prepare(s));
    };
    // PNA's 13d-wide transform is the heaviest; GAT (dim 64) lightest.
    EXPECT_GT(macs(ModelKind::kPna), macs(ModelKind::kGcn));
    EXPECT_GT(macs(ModelKind::kGin), macs(ModelKind::kGcn));
    EXPECT_LT(macs(ModelKind::kGat), macs(ModelKind::kGin));
}

TEST(Model, FeatureDimMismatchThrows)
{
    Model m = make_model(ModelKind::kGcn, 9, 3);
    GraphSample s = make_sample(DatasetKind::kCora, 0); // dim 64
    EXPECT_THROW(m.reference_embeddings(s), std::invalid_argument);
}

} // namespace
} // namespace flowgnn
