/** @file FIFO and engine-configuration tests. */
#include <gtest/gtest.h>

#include "core/config.h"
#include "core/fifo.h"

namespace flowgnn {
namespace {

TEST(Fifo, FifoOrdering)
{
    Fifo<int> q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.front(), 3);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(Fifo, BackpressureWhenFull)
{
    Fifo<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(3)) << "push into a full queue must fail";
    EXPECT_EQ(q.size(), 2u);
    q.pop();
    EXPECT_TRUE(q.push(3));
}

TEST(Fifo, StatisticsTrackPeakAndPushes)
{
    Fifo<int> q(8);
    for (int i = 0; i < 5; ++i)
        q.push(i);
    q.pop();
    q.pop();
    q.push(9);
    EXPECT_EQ(q.total_pushes(), 6u);
    EXPECT_EQ(q.peak_occupancy(), 5u);
}

TEST(Fifo, CapacityOneBehavesLikeRegister)
{
    Fifo<int> q(1);
    EXPECT_TRUE(q.push(7));
    EXPECT_FALSE(q.push(8));
    EXPECT_EQ(q.pop(), 7);
    EXPECT_TRUE(q.push(8));
}

TEST(EngineConfig, DefaultsArePaperConfiguration)
{
    EngineConfig cfg;
    EXPECT_EQ(cfg.p_node, 2u);
    EXPECT_EQ(cfg.p_edge, 4u);
    EXPECT_EQ(cfg.mode, PipelineMode::kFlowGnn);
    EXPECT_DOUBLE_EQ(cfg.clock_mhz, 300.0);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(EngineConfig, ValidationRejectsZeros)
{
    EngineConfig cfg;
    cfg.p_node = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = {};
    cfg.p_scatter = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = {};
    cfg.queue_depth = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = {};
    cfg.clock_mhz = -1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EngineConfig, LabelsFollowPaperNaming)
{
    EngineConfig cfg;
    cfg.p_apply = 1;
    cfg.p_scatter = 2;
    EXPECT_EQ(cfg.label(), "FlowGNN-1-2");
    cfg.mode = PipelineMode::kBaselineDataflow;
    EXPECT_EQ(cfg.label(), "baseline-dataflow");
    EXPECT_STREQ(pipeline_mode_name(PipelineMode::kNonPipelined),
                 "non-pipeline");
}

} // namespace
} // namespace flowgnn
