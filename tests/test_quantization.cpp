/** @file Fixed-point emulation tests (format math + engine accuracy). */
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "datasets/dataset.h"
#include "tensor/fixed_point.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

TEST(FixedPointFormat, RangeAndUlp)
{
    FixedPointFormat q8_4{8, 4};
    EXPECT_EQ(q8_4.int_bits(), 4);
    EXPECT_DOUBLE_EQ(q8_4.ulp(), 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(q8_4.max_value(), 8.0 - 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(q8_4.min_value(), -8.0);
    EXPECT_TRUE(q8_4.valid());
}

TEST(FixedPointFormat, ValidityChecks)
{
    EXPECT_FALSE((FixedPointFormat{1, 0}).valid());
    EXPECT_FALSE((FixedPointFormat{8, 8}).valid());
    EXPECT_FALSE((FixedPointFormat{40, 8}).valid());
    EXPECT_TRUE(kFixed16_10.valid());
    EXPECT_TRUE(kFixed12_8.valid());
    EXPECT_TRUE(kFixed8_4.valid());
}

TEST(FixedPointFormat, Name)
{
    char buf[16];
    EXPECT_STREQ(kFixed16_10.name_into(buf, sizeof buf), "Q16.10");
}

TEST(Quantize, RepresentableValuesPassThrough)
{
    FixedPointFormat q{16, 8};
    for (float v : {0.0f, 1.0f, -1.0f, 0.25f, 127.5f, -128.0f})
        EXPECT_EQ(quantize(v, q), v);
}

TEST(Quantize, RoundsToNearestStep)
{
    FixedPointFormat q{8, 2}; // ulp = 0.25
    EXPECT_FLOAT_EQ(quantize(0.30f, q), 0.25f);
    EXPECT_FLOAT_EQ(quantize(0.40f, q), 0.50f);
    EXPECT_FLOAT_EQ(quantize(-0.30f, q), -0.25f);
}

TEST(Quantize, SaturatesAtRange)
{
    FixedPointFormat q{8, 4}; // [-8, 8 - 1/16]
    EXPECT_FLOAT_EQ(quantize(100.0f, q),
                    static_cast<float>(q.max_value()));
    EXPECT_FLOAT_EQ(quantize(-100.0f, q),
                    static_cast<float>(q.min_value()));
}

TEST(Quantize, IsIdempotent)
{
    FixedPointFormat q{12, 6};
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        float v = static_cast<float>(rng.uniform(-40.0, 40.0));
        float once = quantize(v, q);
        EXPECT_EQ(quantize(once, q), once);
    }
}

TEST(Quantize, ErrorBoundedByHalfUlp)
{
    FixedPointFormat q{16, 10};
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        float v = static_cast<float>(rng.uniform(-10.0, 10.0));
        EXPECT_LE(std::abs(quantize(v, q) - v), q.ulp() / 2 + 1e-9);
    }
}

TEST(Quantize, VectorInPlace)
{
    Vec v{0.30f, -0.30f, 100.0f};
    quantize_inplace(v, FixedPointFormat{8, 2});
    EXPECT_FLOAT_EQ(v[0], 0.25f);
    EXPECT_FLOAT_EQ(v[1], -0.25f);
    EXPECT_FLOAT_EQ(v[2], 31.75f);
}

class EngineQuantization : public ::testing::TestWithParam<ModelKind>
{
};

TEST_P(EngineQuantization, SixteenBitTracksFloatReference)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 17);
    Model m = make_model(GetParam(), s.node_dim(), s.edge_dim());
    RunOptions opts;
    opts.emulate_fixed_point = true;
    opts.fixed_point = kFixed16_10;
    RunResult r = Engine(m, {}).run(s, opts);
    Matrix expected = m.reference_embeddings(m.prepare(s));
    // ap_fixed<16,6>-style datapath: small but nonzero drift.
    float diff = max_abs_diff(r.embeddings, expected);
    EXPECT_LT(diff, 0.75f) << model_name(GetParam());
    EXPECT_TRUE(std::isfinite(r.prediction));
}

TEST_P(EngineQuantization, ErrorGrowsAsBitsShrink)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 17);
    Model m = make_model(GetParam(), s.node_dim(), s.edge_dim());
    Matrix expected = m.reference_embeddings(m.prepare(s));

    auto error_for = [&](FixedPointFormat fmt) {
        RunOptions opts;
        opts.emulate_fixed_point = true;
        opts.fixed_point = fmt;
        return max_abs_diff(Engine(m, {}).run(s, opts).embeddings,
                            expected);
    };
    float e16 = error_for(kFixed16_10);
    float e8 = error_for(kFixed8_4);
    EXPECT_LE(e16, e8) << model_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Models, EngineQuantization,
                         ::testing::Values(ModelKind::kGcn,
                                           ModelKind::kGin,
                                           ModelKind::kGat));

TEST(EngineQuantization, TimingUnchangedByQuantization)
{
    // Quantization models datapath width, not schedule: cycles match.
    GraphSample s = make_sample(DatasetKind::kMolHiv, 18);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    Engine engine(m, {});
    RunOptions fixed;
    fixed.emulate_fixed_point = true;
    EXPECT_EQ(engine.run(s).stats.total_cycles,
              engine.run(s, fixed).stats.total_cycles);
}

TEST(EngineQuantization, InvalidFormatRejected)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    RunOptions opts;
    opts.emulate_fixed_point = true;
    opts.fixed_point = {8, 8};
    EXPECT_THROW(opts.validate(), std::invalid_argument);
    EXPECT_THROW(Engine(m, {}).run(s, opts), std::invalid_argument);
}

} // namespace
} // namespace flowgnn
