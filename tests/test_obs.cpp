/** @file flowgnn::obs tests: histogram quantile error, registry
 * snapshot/delta/merge semantics, span recording across threads,
 * cycle->us mapping, and Chrome-trace JSON round-trip through a real
 * parser. The concurrent tests double as the TSan proof that
 * lock-free recording + live export is race-free. */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/stage_profile.h"
#include "obs/trace_session.h"

namespace flowgnn {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON parser (objects/arrays/strings/numbers/bools/null),
// just enough to prove exported documents parse. Throws on malformed
// input; parsed values are discarded — structure is the assertion.

struct JsonParser {
    const std::string &s;
    std::size_t i = 0;

    explicit JsonParser(const std::string &text) : s(text) {}

    [[noreturn]] void
    fail(const char *what) const
    {
        throw std::runtime_error(std::string("JSON error at ") +
                                 std::to_string(i) + ": " + what);
    }

    void
    ws()
    {
        while (i < s.size() && std::isspace(
                                   static_cast<unsigned char>(s[i])))
            ++i;
    }

    char
    peek()
    {
        ws();
        if (i >= s.size())
            fail("unexpected end");
        return s[i];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++i;
    }

    void
    value()
    {
        switch (peek()) {
          case '{': object(); break;
          case '[': array(); break;
          case '"': string(); break;
          case 't': literal("true"); break;
          case 'f': literal("false"); break;
          case 'n': literal("null"); break;
          default: number(); break;
        }
    }

    void
    literal(const char *lit)
    {
        for (const char *p = lit; *p; ++p, ++i)
            if (i >= s.size() || s[i] != *p)
                fail("bad literal");
    }

    void
    number()
    {
        std::size_t start = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+'))
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '-' || s[i] == '+'))
            ++i;
        if (i == start)
            fail("bad number");
    }

    void
    string()
    {
        expect('"');
        while (i < s.size() && s[i] != '"') {
            if (static_cast<unsigned char>(s[i]) < 0x20)
                fail("unescaped control character");
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size())
                    fail("dangling escape");
                char e = s[i];
                if (e == 'u') {
                    for (int k = 0; k < 4; ++k)
                        if (++i >= s.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s[i])))
                            fail("bad \\u escape");
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    fail("bad escape");
                }
            }
            ++i;
        }
        expect('"');
    }

    void
    object()
    {
        expect('{');
        if (peek() == '}') {
            ++i;
            return;
        }
        for (;;) {
            string();
            expect(':');
            value();
            if (peek() == ',') {
                ++i;
                continue;
            }
            expect('}');
            return;
        }
    }

    std::size_t
    array()
    {
        expect('[');
        std::size_t n = 0;
        if (peek() == ']') {
            ++i;
            return n;
        }
        for (;;) {
            value();
            ++n;
            if (peek() == ',') {
                ++i;
                continue;
            }
            expect(']');
            return n;
        }
    }

    /** Parses one complete document and requires only whitespace
     * after it. Returns array element count (0 for non-arrays). */
    std::size_t
    document()
    {
        std::size_t n = peek() == '[' ? array() : (value(), 0);
        ws();
        if (i != s.size())
            fail("trailing garbage");
        return n;
    }
};

// ---------------------------------------------------------------------------
// Histogram

TEST(ObsHistogram, QuantilesWithinAlphaOfExact)
{
    const double alpha = 0.01;
    Histogram h(alpha);
    // Geometric ramp spanning four decades: adjacent samples are
    // 0.1% apart, so rank-convention slop is negligible next to the
    // alpha bucket bound under test.
    std::vector<double> exact;
    for (int i = 0; i < 10000; ++i) {
        double v = 0.1 * std::pow(1.001, i); // 0.1 .. ~2200
        h.record(v);
        exact.push_back(v);
    }
    HistogramSnapshot s = h.snapshot();
    ASSERT_EQ(s.count, exact.size());
    for (double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(exact.size())));
        const double truth = exact[rank == 0 ? 0 : rank - 1];
        const double got = s.quantile(q);
        // The header's bound: relative error <= sqrt(gamma)-1 ~ alpha.
        EXPECT_NEAR(got, truth, truth * 1.5 * alpha) << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(s.min, exact.front());
    EXPECT_DOUBLE_EQ(s.max, exact.back());
    EXPECT_NEAR(s.mean(), s.sum / static_cast<double>(s.count), 1e-12);
}

TEST(ObsHistogram, EmptyAndOutOfRangeValues)
{
    Histogram h;
    HistogramSnapshot empty = h.snapshot();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.quantile(0.5), 0.0);
    EXPECT_EQ(empty.min, 0.0);
    EXPECT_EQ(empty.max, 0.0);

    // Below-floor, zero, negative, and absurdly large values must all
    // land in a bucket rather than crash or be dropped.
    h.record(0.0);
    h.record(-5.0);
    h.record(1e-300);
    h.record(1e300);
    EXPECT_EQ(h.snapshot().count, 4u);
}

TEST(ObsHistogram, ConcurrentRecordersLoseNothing)
{
    Histogram h;
    constexpr int kThreads = 4, kPerThread = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.record(0.5 + t + i * 1e-4);
        });
    for (auto &th : threads)
        th.join();
    HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, std::uint64_t(kThreads) * kPerThread);
    std::uint64_t bucketed = 0;
    for (std::uint64_t b : s.buckets)
        bucketed += b;
    EXPECT_EQ(bucketed, s.count);
}

TEST(ObsHistogram, DeltaAndMerge)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(i);
    HistogramSnapshot early = h.snapshot();
    for (int i = 101; i <= 200; ++i)
        h.record(i);
    HistogramSnapshot late = h.snapshot();

    HistogramSnapshot d = late.delta(early);
    EXPECT_EQ(d.count, 100u);
    EXPECT_NEAR(d.sum, late.sum - early.sum, 1e-9);
    // The delta window holds 101..200, so its median is ~150.
    EXPECT_NEAR(d.quantile(0.5), 150.0, 150.0 * 0.03);

    HistogramSnapshot m = early.merge(d);
    EXPECT_EQ(m.count, late.count);
    EXPECT_NEAR(m.quantile(0.5), late.quantile(0.5), 1e-9);
}

// ---------------------------------------------------------------------------
// Registry

TEST(ObsRegistry, SnapshotsAreDeterministic)
{
    MetricsRegistry reg;
    reg.counter("serve.requests_total").add(7);
    reg.gauge("pool.busy_dies").set(3.0);
    reg.histogram("serve.latency_ms").record(12.5);

    std::ostringstream a, b;
    reg.snapshot().write_json(a);
    reg.snapshot().write_json(b);
    EXPECT_EQ(a.str(), b.str()); // unchanged registry, identical text
    JsonParser(a.str()).document();

    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("serve.requests_total"), 7u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("pool.busy_dies"), 3.0);
    EXPECT_EQ(snap.histograms.at("serve.latency_ms").count, 1u);
}

TEST(ObsRegistry, DeltaSubtractsEarlierSnapshot)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("jobs");
    c.add(5);
    MetricsSnapshot early = reg.snapshot();
    c.add(3);
    MetricsSnapshot d = reg.snapshot().delta(early);
    EXPECT_EQ(d.counters.at("jobs"), 3u);
}

TEST(ObsRegistry, DeltaIsTheAutoscalerInputContract)
{
    // The pool autoscaler consumes snapshot().delta(prev) windows, so
    // the delta semantics are load-bearing: counters subtract (and a
    // quiet window reads 0), gauges keep their last value (they are
    // levels, not flows), and a histogram delta reproduces only the
    // window's samples — quantiles on a known ramp included.
    MetricsRegistry reg;
    Counter &jobs = reg.counter("pool.jobs_total");
    Gauge &busy = reg.gauge("pool.busy_dies");
    Histogram &delay = reg.histogram("pool.queue_delay_ms");

    jobs.add(10);
    busy.set(4.0);
    for (int v = 1; v <= 100; ++v)
        delay.record(v); // ramp 1..100 before the window
    MetricsSnapshot early = reg.snapshot();

    // Counter monotonicity across the window: the delta is exactly
    // the in-window increment, never negative.
    jobs.add(7);
    busy.set(1.0); // level drops: delta must report the NEW level
    for (int v = 101; v <= 200; ++v)
        delay.record(v); // in-window ramp 101..200
    MetricsSnapshot late = reg.snapshot();
    ASSERT_GE(late.counters.at("pool.jobs_total"),
              early.counters.at("pool.jobs_total"))
        << "counters are monotone between snapshots";

    MetricsSnapshot d = late.delta(early);
    EXPECT_EQ(d.counters.at("pool.jobs_total"), 7u);
    EXPECT_DOUBLE_EQ(d.gauges.at("pool.busy_dies"), 1.0)
        << "gauge delta is last-value, not a difference";

    const HistogramSnapshot &h = d.histograms.at("pool.queue_delay_ms");
    EXPECT_EQ(h.count, 100u) << "only the window's samples remain";
    // Nearest-rank quantiles of the in-window ramp 101..200, within
    // the sketch's relative-error bound alpha.
    EXPECT_NEAR(h.quantile(0.5), 150.0, 150.0 * 2 * h.alpha);
    EXPECT_NEAR(h.quantile(0.99), 199.0, 199.0 * 2 * h.alpha);
    EXPECT_GE(h.quantile(0.0), 101.0 * (1.0 - 2 * h.alpha));
    EXPECT_LE(h.quantile(1.0), 200.0 * (1.0 + 2 * h.alpha));

    // A quiet window: zero deltas, empty histogram window.
    MetricsSnapshot quiet = reg.snapshot().delta(late);
    EXPECT_EQ(quiet.counters.at("pool.jobs_total"), 0u);
    EXPECT_EQ(quiet.histograms.at("pool.queue_delay_ms").count, 0u);
}

TEST(ObsRegistry, TypeConflictThrows)
{
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), std::logic_error);
    EXPECT_THROW(reg.histogram("x"), std::logic_error);
    EXPECT_NO_THROW(reg.counter("x")); // same type: same instance
}

TEST(ObsRegistry, PrometheusExport)
{
    MetricsRegistry reg;
    reg.counter("serve.requests_total").add(2);
    reg.histogram("serve.latency_ms").record(1.0);
    std::ostringstream os;
    reg.snapshot().write_prometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE flowgnn_serve_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("flowgnn_serve_requests_total 2"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE flowgnn_serve_latency_ms summary"),
              std::string::npos);
    EXPECT_NE(text.find("flowgnn_serve_latency_ms{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("flowgnn_serve_latency_ms_count 1"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceSession

TEST(ObsTrace, DisabledSessionRecordsNothing)
{
    ASSERT_EQ(TraceSession::current(), nullptr);
    { Span span(Track::kServe, "noop"); }
    TraceSession session;
    EXPECT_EQ(session.recorded(), 0u); // never installed
}

TEST(ObsTrace, SpansNestAndMergeAcrossThreads)
{
    TraceSession session;
    session.install();
    {
        Span outer(Track::kHost, "outer");
        { Span inner(Track::kHost, "inner"); }
    }
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            TraceSession *s = TraceSession::current();
            ASSERT_NE(s, nullptr);
            char nm[16];
            std::snprintf(nm, sizeof nm, "worker %d", t);
            s->name_thread(Track::kShard, nm);
            for (int i = 0; i < 100; ++i)
                Span(Track::kShard, "tick");
        });
    for (auto &th : threads)
        th.join();
    session.uninstall();

    EXPECT_EQ(session.recorded(), 2u + kThreads * 100u);
    EXPECT_EQ(session.dropped(), 0u);

    std::ostringstream os;
    session.write_chrome_trace(os);
    const std::string json = os.str();
    JsonParser parser(json);
    EXPECT_GT(parser.document(), 2u + kThreads * 100u); // + metadata
    EXPECT_NE(json.find("\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"worker 3\""), std::string::npos);
    // Process label keeps its UTF-8 middle dot raw (json_escape only
    // escapes quotes, backslashes, and control characters).
    EXPECT_NE(json.find("flowgnn \xc2\xb7 shard"), std::string::npos);
}

TEST(ObsTrace, NamesAreJsonEscapedAndTruncated)
{
    TraceSession session;
    session.install();
    session.span(Track::kHost, "quote \" backslash \\ tab \t", 0, 10);
    session.span(Track::kHost,
                 std::string(200, 'x'), // far past the inline buffer
                 0, 10);
    session.uninstall();
    std::ostringstream os;
    session.write_chrome_trace(os);
    const std::string json = os.str();
    JsonParser(json).document(); // must still parse
    EXPECT_NE(json.find("quote \\\" backslash \\\\ tab \\t"),
              std::string::npos);
}

TEST(ObsTrace, FullBufferDropsAndCounts)
{
    TraceSession session(TraceOptions{.buffer_capacity = 8});
    session.install();
    for (int i = 0; i < 20; ++i)
        session.span(Track::kHost, "s", i, i + 1);
    session.uninstall();
    EXPECT_EQ(session.recorded(), 8u);
    EXPECT_EQ(session.dropped(), 12u);
}

TEST(ObsTrace, GenerationGuardsAgainstStaleSessions)
{
    {
        TraceSession a;
        a.install();
        Span(Track::kHost, "in a");
        EXPECT_EQ(a.recorded(), 1u);
    } // destroyed (auto-uninstalls)
    TraceSession b;
    b.install();
    Span(Track::kHost, "in b");
    b.uninstall();
    EXPECT_EQ(b.recorded(), 1u); // not 2: a's record died with a
}

TEST(ObsTrace, CycleClockMapping)
{
    CycleClockMap map{1000, 250.0}; // 250 MHz: 1 cycle = 4 ns
    EXPECT_EQ(map.to_ns(0), 1000u);
    EXPECT_EQ(map.to_ns(1), 1004u);
    EXPECT_EQ(map.to_ns(250'000'000), 1'000'001'000u); // 1 s of cycles
}

TEST(ObsTrace, CycleTraceLandsOnEngineRows)
{
    TraceSession session;
    session.install();
    std::vector<TraceEvent> events = {
        {TraceKind::kNtAccumulate, 0, 7, 10, 20},
        {TraceKind::kMpWork, 1, 7, 15, 30},
    };
    session.add_cycle_trace(events, CycleClockMap{500, 500.0}, 2);
    session.uninstall();
    std::ostringstream os;
    session.write_chrome_trace(os);
    const std::string json = os.str();
    JsonParser(json).document();
    // die 2, NT 0 -> tid 1000 + 2*200 + 0; MP 1 -> +100 + 1.
    EXPECT_NE(json.find("\"tid\": 1400"), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 1501"), std::string::npos);
    // 500 MHz: cycle 10 -> 500 + 20 ns -> 0.520 us.
    EXPECT_NE(json.find("\"ts\": 0.520"), std::string::npos);
}

TEST(ObsTrace, ExportWhileRecordingIsConsistent)
{
    TraceSession session;
    session.install();
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_relaxed))
            Span(Track::kPool, "concurrent");
    });
    while (session.recorded() == 0) // writer actually running
        std::this_thread::yield();
    // Export repeatedly while the writer hammers its buffer; every
    // intermediate document must parse (and TSan must stay quiet).
    for (int round = 0; round < 20; ++round) {
        std::ostringstream os;
        session.write_chrome_trace(os);
        JsonParser(os.str()).document();
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    session.uninstall();
    EXPECT_GT(session.recorded(), 0u);
}

// ---------------------------------------------------------------------------
// StageProfiler / memory stats / sampler

TEST(ObsStageProfile, ReadsMemoryAndRecordsStages)
{
    MemoryStats m = read_memory_stats();
    EXPECT_GT(m.rss_kb, 0);
    EXPECT_GE(m.hwm_kb, m.rss_kb);

    auto registry = std::make_shared<MetricsRegistry>();
    StageProfiler profiler(registry);
    profiler.stage("alloc", [] {
        std::vector<double> sink(1 << 20);
        EXPECT_EQ(sink.size(), std::size_t(1) << 20);
    });
    profiler.stage("noop", [] {});
    ASSERT_EQ(profiler.stages().size(), 2u);
    EXPECT_EQ(profiler.stages()[0].name, "alloc");
    EXPECT_GT(profiler.stages()[0].rss_kb, 0);
    EXPECT_GE(profiler.total_seconds(),
              profiler.stages()[1].seconds);
    EXPECT_EQ(registry->snapshot()
                  .histograms.at("host.stage_seconds")
                  .count,
              2u);

    std::ostringstream os;
    profiler.write_json_array(os);
    JsonParser(os.str()).document();
}

TEST(ObsSampler, TicksGaugesAtLeastOnce)
{
    auto registry = std::make_shared<MetricsRegistry>();
    Sampler sampler(registry, std::chrono::milliseconds(1));
    sampler.add_rss_probe();
    sampler.add_probe("test.answer", Track::kHost,
                      [] { return 42.0; });
    sampler.start();
    sampler.stop(); // final tick guaranteed on stop
    MetricsSnapshot snap = registry->snapshot();
    EXPECT_GT(snap.gauges.at("host.rss_mb"), 0.0);
    EXPECT_DOUBLE_EQ(snap.gauges.at("test.answer"), 42.0);
}

TEST(ObsSampler, RestartAfterStopTicksAgain)
{
    // Pins the start() fix: stopping_ must be reset (under the mutex)
    // on every start, or the second cycle's thread exits immediately
    // without ever ticking the probes.
    auto registry = std::make_shared<MetricsRegistry>();
    int ticks = 0;
    Sampler sampler(registry, std::chrono::milliseconds(1));
    sampler.add_probe("test.ticks", Track::kHost,
                      [&] { return static_cast<double>(++ticks); });

    sampler.start();
    sampler.stop();
    int after_first = ticks;
    EXPECT_GE(after_first, 1);

    sampler.start();
    sampler.stop();
    EXPECT_GT(ticks, after_first)
        << "restarted sampler never ticked: stopping_ was not reset";
}

} // namespace
} // namespace obs
} // namespace flowgnn
