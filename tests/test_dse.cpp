/** @file Design-space exploration utility tests. */
#include <gtest/gtest.h>

#include "datasets/dataset.h"
#include "perf/dse.h"

namespace flowgnn {
namespace {

DseGrid
tiny_grid()
{
    DseGrid grid;
    grid.p_node = {1, 2};
    grid.p_edge = {1, 2};
    grid.p_apply = {1, 4};
    grid.p_scatter = {2};
    return grid;
}

class DseFixture : public ::testing::Test
{
  protected:
    DseFixture()
        : probe_(make_sample(DatasetKind::kMolHiv, 1)),
          model_(make_model(ModelKind::kGcn, probe_.node_dim(),
                            probe_.edge_dim()))
    {
    }

    GraphSample probe_;
    Model model_;
};

TEST_F(DseFixture, EnumeratesFullGrid)
{
    auto points = explore_design_space(model_, probe_, tiny_grid());
    EXPECT_EQ(points.size(), 8u);
    for (const auto &pt : points) {
        EXPECT_GT(pt.cycles, 0u);
        EXPECT_GT(pt.resources.dsp, 0u);
    }
}

TEST_F(DseFixture, SortedFittingFirstThenByCycles)
{
    auto points = explore_design_space(model_, probe_, tiny_grid());
    bool seen_nonfitting = false;
    std::uint64_t prev_cycles = 0;
    bool prev_fits = true;
    for (const auto &pt : points) {
        if (!pt.fits)
            seen_nonfitting = true;
        else
            EXPECT_FALSE(seen_nonfitting)
                << "fitting point after a non-fitting one";
        if (pt.fits == prev_fits) {
            EXPECT_GE(pt.cycles, prev_cycles);
        }
        prev_cycles = pt.cycles;
        prev_fits = pt.fits;
    }
}

TEST_F(DseFixture, BestFittingIsFastestFitting)
{
    DsePoint best = best_fitting_config(model_, probe_, tiny_grid());
    EXPECT_TRUE(best.fits);
    for (const auto &pt :
         explore_design_space(model_, probe_, tiny_grid()))
        if (pt.fits) {
            EXPECT_LE(best.cycles, pt.cycles);
        }
}

TEST_F(DseFixture, ImpossibleBudgetThrows)
{
    ResourceUsage tiny_budget{1, 1, 1, 1};
    EXPECT_THROW(
        best_fitting_config(model_, probe_, tiny_grid(), tiny_budget),
        std::runtime_error);
}

TEST_F(DseFixture, AllDefaultGridPointsFitU50ForGcn)
{
    // The paper's full Fig. 10 grid synthesizes on the U50.
    auto points = explore_design_space(model_, probe_);
    EXPECT_EQ(points.size(), 108u); // 3*3*3*4
    for (const auto &pt : points)
        EXPECT_TRUE(pt.fits)
            << "Pn" << pt.config.p_node << " Pe" << pt.config.p_edge
            << " Pa" << pt.config.p_apply << " Ps"
            << pt.config.p_scatter;
}

} // namespace
} // namespace flowgnn
