/**
 * @file
 * Differential fuzz suite: the correctness net under the sharded
 * execution work. ~200 seeded random graphs, rotating through every
 * model kind (all layer families) and all four pipeline modes, assert
 * that the cycle-stepped engine matches the reference executor — and
 * a second pass asserts sharded execution matches unsharded across
 * shard counts and strategies.
 *
 * Exactness policy mirrors test_crosscheck: with one NT unit (or an
 * analytic pipeline mode, which runs the functional callbacks in
 * src-major order) message arrival equals the reference's src-major
 * order, so results must be bit-identical; with more NT units only
 * float-sum reassociation may differ, so a tight tolerance applies.
 */
#include <gtest/gtest.h>

#include "core/engine.h"
#include "ghost/ghost_engine.h"
#include "shard/sharded_engine.h"
#include "tensor/ops.h"
#include "testing_util.h"

namespace flowgnn {
namespace {

using testing::make_random_graph;
using testing::make_random_sample;

constexpr ModelKind kAllKinds[] = {
    ModelKind::kGcn, ModelKind::kGin,   ModelKind::kGinVn,
    ModelKind::kGat, ModelKind::kPna,   ModelKind::kDgn,
    ModelKind::kGcn16, ModelKind::kSage, ModelKind::kSgc,
};
constexpr PipelineMode kAllModes[] = {
    PipelineMode::kNonPipelined,
    PipelineMode::kFixedPipeline,
    PipelineMode::kBaselineDataflow,
    PipelineMode::kFlowGnn,
};

bool
order_preserving(const EngineConfig &cfg)
{
    return cfg.p_node == 1 ||
           cfg.mode == PipelineMode::kNonPipelined ||
           cfg.mode == PipelineMode::kFixedPipeline;
}

TEST(DifferentialFuzz, EngineMatchesReferenceOn200RandomGraphs)
{
    constexpr int kCases = 200;
    for (int i = 0; i < kCases; ++i) {
        const std::uint64_t seed = 0x5EED0000ull + i;
        const ModelKind kind =
            kAllKinds[i % std::size(kAllKinds)];
        const PipelineMode mode =
            kAllModes[(i / std::size(kAllKinds)) % std::size(kAllModes)];

        // Every parameter rotates on a distinct stride so the 200
        // cases cover the cross product (bit-exact x edge-featured,
        // p_apply x dim divisibility, ...), not one diagonal of it.
        const NodeId n = 6 + i % 40;
        CooGraph g = make_random_graph(i, n, seed);
        const std::size_t node_dim = 4 + (i % 3) * 6;
        const std::size_t edge_dim = ((i / 2) % 2) ? 6 : 0;
        GraphSample sample =
            make_random_sample(std::move(g), node_dim, edge_dim,
                               seed + 1);

        EngineConfig cfg;
        cfg.p_node = 1 + i % 2;
        cfg.p_edge = 1 + i % 4;
        cfg.p_apply = 1 + ((i / 3) % 3) * 3;
        cfg.p_scatter = 1 + ((i / 5) % 4) * 2;
        cfg.queue_depth = 2 + (i / 7) % 7;
        cfg.mode = mode;

        SCOPED_TRACE(::testing::Message()
                     << "case " << i << ": " << model_name(kind) << " / "
                     << pipeline_mode_name(mode) << " / n=" << n
                     << " pn=" << cfg.p_node);

        Model model = make_model(kind, node_dim, edge_dim, seed);
        Engine engine(model, cfg);
        RunResult result = engine.run(sample);

        GraphSample prepared = model.prepare(sample);
        Matrix expected = model.reference_embeddings(prepared);
        ASSERT_EQ(result.embeddings.rows(), expected.rows());
        ASSERT_EQ(result.embeddings.cols(), expected.cols());

        // Reference prediction through the same pool + head code path
        // (avoids a second full reference run via model.predict).
        Vec pooled =
            model.global_pool(expected, prepared.pool_nodes());
        float expected_pred = model.head().forward(pooled)[0];

        float diff = max_abs_diff(result.embeddings, expected);
        if (order_preserving(cfg)) {
            EXPECT_EQ(diff, 0.0f)
                << "order-preserving config must be bit-exact";
            EXPECT_EQ(result.prediction, expected_pred);
        } else {
            EXPECT_LT(diff, 1e-3f);
            EXPECT_NEAR(result.prediction, expected_pred,
                        1e-3 + 1e-3 * std::abs(expected_pred));
        }
        EXPECT_GT(result.stats.total_cycles, 0u);
    }
}

TEST(DifferentialFuzz, ShardedMatchesUnshardedOn56RandomGraphs)
{
    constexpr ShardStrategy kStrategies[] = {
        ShardStrategy::kModulo,        ShardStrategy::kContiguous,
        ShardStrategy::kGreedyBalanced, ShardStrategy::kBfsContiguous,
        ShardStrategy::kLdg,           ShardStrategy::kFennel,
        ShardStrategy::kHdrf,
    };
    constexpr int kCases = 56; // exactly 8 cases per strategy (i % 7)
    for (int i = 0; i < kCases; ++i) {
        const std::uint64_t seed = 0x5AAD0000ull + i;
        const ModelKind kind =
            kAllKinds[i % std::size(kAllKinds)];

        const NodeId n = 60 + 4 * i;
        CooGraph g = make_random_graph(i, n, seed);
        const std::size_t node_dim = 8;
        // Decorrelated from p_node so bit-exact cases also cover the
        // per-shard edge-feature gather.
        const std::size_t edge_dim = ((i / 2) % 2) ? 4 : 0;
        GraphSample sample =
            make_random_sample(std::move(g), node_dim, edge_dim,
                               seed + 1);

        EngineConfig cfg;
        cfg.p_node = 1 + i % 2; // even cases: bit-exact path
        ShardConfig shard;
        shard.num_shards = 2 + i % 3;
        shard.strategy = kStrategies[i % std::size(kStrategies)];

        SCOPED_TRACE(::testing::Message()
                     << "case " << i << ": " << model_name(kind)
                     << " / shards=" << shard.num_shards << " / "
                     << shard_strategy_name(shard.strategy)
                     << " / pn=" << cfg.p_node << " / n=" << n);

        Model model = make_model(kind, node_dim, edge_dim, seed);
        RunResult single = Engine(model, cfg).run(sample);
        ShardedRunResult sharded =
            ShardedEngine(model, cfg, shard).run(sample);

        ASSERT_EQ(sharded.embeddings.rows(), single.embeddings.rows());
        if (cfg.p_node == 1) {
            EXPECT_EQ(
                max_abs_diff(sharded.embeddings, single.embeddings),
                0.0f)
                << "single-NT sharded runs preserve arrival order and "
                   "must be bit-exact";
            EXPECT_EQ(sharded.prediction, single.prediction);
        } else {
            EXPECT_LT(
                max_abs_diff(sharded.embeddings, single.embeddings),
                1e-4f);
            EXPECT_NEAR(sharded.prediction, single.prediction, 1e-4);
        }
    }
}

TEST(DifferentialFuzz, GhostMatchesUnshardedOn56RandomGraphs)
{
    // The ghost-mode mirror of the sharded pass above: per-layer
    // boundary exchange instead of halo replication, same exactness
    // policy. With one NT unit the ghost path's functional pass runs
    // src-major — the same order every die and the unsharded engine
    // see — so results must be bit-identical; with more NT units the
    // unsharded engine reorders message arrival and only float-sum
    // reassociation separates the two, bounded by 1e-4.
    constexpr ShardStrategy kStrategies[] = {
        ShardStrategy::kModulo,        ShardStrategy::kContiguous,
        ShardStrategy::kGreedyBalanced, ShardStrategy::kBfsContiguous,
        ShardStrategy::kLdg,           ShardStrategy::kFennel,
        ShardStrategy::kHdrf,
    };
    constexpr int kCases = 56; // exactly 8 cases per strategy (i % 7)
    for (int i = 0; i < kCases; ++i) {
        const std::uint64_t seed = 0x6AAD0000ull + i;
        const ModelKind kind =
            kAllKinds[i % std::size(kAllKinds)];

        const NodeId n = 60 + 4 * i;
        CooGraph g = make_random_graph(i, n, seed);
        const std::size_t node_dim = 8;
        const std::size_t edge_dim = ((i / 2) % 2) ? 4 : 0;
        GraphSample sample =
            make_random_sample(std::move(g), node_dim, edge_dim,
                               seed + 1);

        EngineConfig cfg;
        cfg.p_node = 1 + i % 2; // even cases: bit-exact path
        ShardConfig shard;
        shard.num_shards = 2 + i % 3;
        shard.strategy = kStrategies[i % std::size(kStrategies)];
        shard.mode = ShardMode::kGhostExchange;

        SCOPED_TRACE(::testing::Message()
                     << "ghost case " << i << ": " << model_name(kind)
                     << " / shards=" << shard.num_shards << " / "
                     << shard_strategy_name(shard.strategy)
                     << " / pn=" << cfg.p_node << " / n=" << n);

        Model model = make_model(kind, node_dim, edge_dim, seed);
        RunResult single = Engine(model, cfg).run(sample);
        ShardedRunResult sharded =
            ShardedEngine(model, cfg, shard).run(sample);

        ASSERT_EQ(sharded.embeddings.rows(), single.embeddings.rows());
        if (cfg.p_node == 1) {
            EXPECT_EQ(
                max_abs_diff(sharded.embeddings, single.embeddings),
                0.0f)
                << "single-NT ghost runs share the unsharded src-major "
                   "order and must be bit-exact";
            EXPECT_EQ(sharded.prediction, single.prediction);
        } else {
            EXPECT_LT(
                max_abs_diff(sharded.embeddings, single.embeddings),
                1e-4f);
            EXPECT_NEAR(sharded.prediction, single.prediction, 1e-4);
        }
    }
}

TEST(DifferentialFuzz, GhostFixedPointStaysBitExactWhenOrderPreserved)
{
    // The fixed-point wire format is where ghost mode could diverge:
    // every boundary crossing re-quantizes the shipped embedding. The
    // engine's quantizer is idempotent (shipped values are already
    // exactly representable), so with one NT unit — order preserved —
    // re-quantization must be value-preserving and ghost runs stay
    // BIT-EXACT against the unsharded fixed-point engine, at every
    // precision down to 8_4. No looser fixed-point tolerance exists or
    // is needed; multi-NT reassociation (covered above in float) is
    // the only inexact axis.
    constexpr FixedPointFormat kFormats[] = {kFixed16_10, kFixed12_8,
                                             kFixed8_4};
    constexpr ShardStrategy kStrategies[] = {
        ShardStrategy::kContiguous, ShardStrategy::kFennel,
        ShardStrategy::kHdrf};
    int i = 0;
    for (const FixedPointFormat &format : kFormats) {
        for (ShardStrategy strategy : kStrategies) {
            const std::uint64_t seed = 0x7AAD0000ull + i;
            const ModelKind kind = kAllKinds[i % std::size(kAllKinds)];
            CooGraph g = make_random_graph(i, 80 + 8 * i, seed);
            GraphSample sample =
                make_random_sample(std::move(g), 8, 0, seed + 1);

            EngineConfig cfg;
            cfg.p_node = 1;
            RunOptions opts;
            opts.emulate_fixed_point = true;
            opts.fixed_point = format;
            ShardConfig shard;
            shard.num_shards = 3;
            shard.strategy = strategy;
            shard.mode = ShardMode::kGhostExchange;

            SCOPED_TRACE(::testing::Message()
                         << "fixed case " << i << ": "
                         << model_name(kind) << " / "
                         << shard_strategy_name(strategy) << " / Q"
                         << format.total_bits << "."
                         << format.frac_bits);

            Model model = make_model(kind, 8, 0, seed);
            RunResult single = Engine(model, cfg).run(sample, opts);
            ShardedRunResult sharded =
                ShardedEngine(model, cfg, shard).run(sample, opts);

            EXPECT_EQ(
                max_abs_diff(sharded.embeddings, single.embeddings),
                0.0f);
            EXPECT_EQ(sharded.prediction, single.prediction);
            ++i;
        }
    }
}

TEST(DifferentialFuzz, GhostPreemptAtEveryLayerBitIdentical)
{
    // Layer-boundary preemption sweep: a GCN-16 ghost run is forced to
    // checkpoint after every k = 1, 2, ... stages and resumed, for all
    // seven partition strategies. Each resumed run must reproduce the
    // uninterrupted run bit for bit — embeddings, prediction, and the
    // composed cycle counts (the per-die timing passes are structural
    // and run once at completion, so even timing cannot drift).
    constexpr ShardStrategy kStrategies[] = {
        ShardStrategy::kModulo,        ShardStrategy::kContiguous,
        ShardStrategy::kGreedyBalanced, ShardStrategy::kBfsContiguous,
        ShardStrategy::kLdg,           ShardStrategy::kFennel,
        ShardStrategy::kHdrf,
    };
    const std::uint64_t seed = 0x9AAD0000ull;
    Model model = make_model(ModelKind::kGcn16, 8, 0, seed);
    GraphSample sample = make_random_sample(
        make_random_graph(1, 180, seed), 8, 0, seed + 1);
    GraphSample prepared = model.prepare(sample);
    EngineConfig cfg;
    RunOptions opts;
    LinkConfig link;

    for (ShardStrategy strategy : kStrategies) {
        ShardConfig shard;
        shard.num_shards = 3;
        shard.strategy = strategy;
        shard.mode = ShardMode::kGhostExchange;
        SCOPED_TRACE(::testing::Message()
                     << shard_strategy_name(strategy));

        GhostPlan ref_plan = make_ghost_plan(model, prepared, shard);
        ASSERT_TRUE(ref_plan.sharded);
        ShardedRunResult ref = run_ghost_plan(
            model, cfg, prepared, std::move(ref_plan), opts, link);

        for (std::size_t k = 1;; ++k) {
            SCOPED_TRACE(::testing::Message() << "preempt at k=" << k);
            GhostResumeState state;
            state.max_stages = k;
            GhostPlan plan = make_ghost_plan(model, prepared, shard);
            ShardedRunResult got = run_ghost_plan(
                model, cfg, SampleRef(prepared), std::move(plan), opts,
                link, &state);
            const bool hit_boundary = state.preempted;
            if (hit_boundary) {
                ASSERT_EQ(state.checkpoint.next_stage, k);
                state.max_stages = std::size_t(-1);
                got = run_ghost_plan(model, cfg, SampleRef(prepared),
                                     std::move(state.plan), opts, link,
                                     &state);
                ASSERT_FALSE(state.preempted);
            }
            EXPECT_EQ(max_abs_diff(got.embeddings, ref.embeddings),
                      0.0f);
            EXPECT_EQ(got.prediction, ref.prediction);
            EXPECT_EQ(got.stats.total_cycles, ref.stats.total_cycles);
            EXPECT_EQ(got.stats.comm_cycles, ref.stats.comm_cycles);
            ASSERT_EQ(got.shards.size(), ref.shards.size());
            for (std::size_t s = 0; s < ref.shards.size(); ++s)
                EXPECT_EQ(got.shards[s].stats.total_cycles,
                          ref.shards[s].stats.total_cycles)
                    << "shard " << s;
            if (!hit_boundary)
                break; // k reached the stage count: sweep complete
        }
    }
}

} // namespace
} // namespace flowgnn
