/** @file GraphSAGE / SGC extension-layer tests (paper Sec. V case 1). */
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "datasets/dataset.h"
#include "nn/sage_layer.h"
#include "nn/sgc_layer.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

GraphSample
path_sample(std::size_t dim)
{
    // 0 -> 1 -> 2 with constant features.
    GraphSample s;
    s.graph.num_nodes = 3;
    s.graph.edges = {{0, 1}, {1, 2}};
    s.node_features = Matrix(3, dim, 1.0f);
    return s;
}

TEST(SageLayer, UsesMeanAggregation)
{
    Rng rng(1);
    SageLayer sage(4, 4, Activation::kIdentity, rng);
    EXPECT_EQ(sage.aggregator_kind(), AggregatorKind::kMean);
    EXPECT_EQ(sage.msg_dim(), 4u);
    EXPECT_EQ(sage.nt_pass_dims(), (std::vector<std::size_t>{4, 4}));
}

TEST(SageLayer, MessageIsRawEmbedding)
{
    Rng rng(1);
    SageLayer sage(3, 3, Activation::kRelu, rng);
    GraphSample s = path_sample(3);
    LayerContext ctx = make_layer_context(s);
    Vec x{1.5f, -2.0f, 0.25f};
    EXPECT_EQ(sage.message(x, nullptr, 0, 0, 1, ctx), x);
}

TEST(SageLayer, TransformSumsSelfAndNeighborPaths)
{
    Rng rng(2);
    SageLayer sage(2, 2, Activation::kIdentity, rng);
    GraphSample s = path_sample(2);
    LayerContext ctx = make_layer_context(s);
    // With zero aggregate the neighbor path contributes only its bias.
    Vec zero_agg(2, 0.0f);
    Vec x{1.0f, 2.0f};
    Vec with_zero = sage.transform(x, zero_agg, 0, ctx);
    Vec agg{3.0f, -1.0f};
    Vec with_agg = sage.transform(x, agg, 0, ctx);
    EXPECT_GT(max_abs_diff(with_zero, with_agg), 0.0f);
}

TEST(SgcLayer, PropagationOnlyNoWeights)
{
    SgcLayer sgc(4);
    EXPECT_EQ(sgc.transform_macs(), 4u);
    EXPECT_EQ(sgc.nt_pass_dims(), (std::vector<std::size_t>{4}));
}

TEST(SgcLayer, MatchesGcnNormalizationArithmetic)
{
    // Node 2 of the path graph: in-deg 1, neighbor 1 has out-deg 1.
    SgcLayer sgc(2);
    GraphSample s = path_sample(2);
    LayerContext ctx = make_layer_context(s);
    Vec msg = sgc.message({1.0f, 1.0f}, nullptr, 0, 1, 2, ctx);
    float norm = 1.0f / std::sqrt(2.0f * 2.0f);
    EXPECT_FLOAT_EQ(msg[0], norm);
    // Transform adds the renormalized self loop: agg + x / (deg+1).
    Vec out = sgc.transform({4.0f, 4.0f}, {1.0f, 1.0f}, 2, ctx);
    EXPECT_FLOAT_EQ(out[0], 1.0f + 4.0f / 2.0f);
}

TEST(SgcModel, IsEncoderPlusPropagationPlusHead)
{
    Model sgc = make_model(ModelKind::kSgc, 9, 0);
    EXPECT_EQ(sgc.num_stages(), 3u); // encoder + 2 hops
    EXPECT_EQ(sgc.embedding_dim(), 100u);
    EXPECT_EQ(std::string(sgc.stage(1).name()), "sgc");
}

TEST(SageModel, FactoryConfiguration)
{
    Model sage = make_model(ModelKind::kSage, 9, 0);
    EXPECT_EQ(sage.num_stages(), 6u);
    EXPECT_EQ(sage.name(), "GraphSAGE");
    EXPECT_FALSE(sage.uses_virtual_node());
}

class ExtensionCrossCheck : public ::testing::TestWithParam<ModelKind>
{
};

TEST_P(ExtensionCrossCheck, EngineMatchesReference)
{
    // The paper's claim: older GNNs run on the existing FlowGNN
    // kernels unchanged. Verify end-to-end on the dataflow engine.
    GraphSample s = make_sample(DatasetKind::kMolHiv, 13);
    Model m = make_model(GetParam(), s.node_dim(), s.edge_dim());

    EngineConfig exact_cfg;
    exact_cfg.p_node = 1;
    Engine exact(m, exact_cfg);
    Matrix expected = m.reference_embeddings(m.prepare(s));
    EXPECT_EQ(max_abs_diff(exact.run(s).embeddings, expected), 0.0f);

    Engine parallel(m, {});
    EXPECT_LT(max_abs_diff(parallel.run(s).embeddings, expected), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(SageAndSgc, ExtensionCrossCheck,
                         ::testing::Values(ModelKind::kSage,
                                           ModelKind::kSgc));

} // namespace
} // namespace flowgnn
