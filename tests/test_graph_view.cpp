/**
 * @file
 * Out-of-core suite: io::GraphView (mmap FGNB reader) against the
 * copying loader, the 64-bit-file-size header seam that fixes the
 * >= 2 GiB ftell bug, FGNB v1/v2 coexistence, and the differential
 * contract of the parallel host hot paths — every GraphRef/SampleRef
 * overload at threads = 4 must be bit-identical to the serial
 * in-memory chain: assignments across all strategies, closures,
 * shard/ghost plans, and full modeled runs.
 */
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "ghost/ghost_engine.h"
#include "graph/partition.h"
#include "graph/streaming_partition.h"
#include "io/fgnb_layout.h"
#include "io/graph_view.h"
#include "io/load.h"
#include "shard/sharded_engine.h"
#include "tensor/ops.h"
#include "testing_util.h"

namespace flowgnn {
namespace {

namespace fs = std::filesystem;

constexpr ShardStrategy kAllStrategies[] = {
    ShardStrategy::kModulo,        ShardStrategy::kContiguous,
    ShardStrategy::kGreedyBalanced, ShardStrategy::kBfsContiguous,
    ShardStrategy::kLdg,           ShardStrategy::kFennel,
    ShardStrategy::kHdrf,
};

/** Per-test scratch directory, removed on destruction. */
class TempDir
{
  public:
    TempDir()
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() /
               (std::string("flowgnn_view_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    ~TempDir() { fs::remove_all(dir_); }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

  private:
    fs::path dir_;
};

std::vector<char>
read_bytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(is),
                             std::istreambuf_iterator<char>());
}

void
write_bytes(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

void
expect_view_error(const std::string &path, const std::string &needle,
                  io::GraphViewOptions opts = {})
{
    try {
        io::GraphView view(path, opts);
        FAIL() << "expected GraphFileError containing '" << needle
               << "'";
    } catch (const GraphFileError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual error: " << e.what();
    }
}

/** A sample exercising every optional FGNB section. */
GraphSample
make_full_sample()
{
    GraphSample s = testing::make_random_sample(
        testing::make_random_graph(2, 60, 0xD15C), 12, 3, 0xD15C);
    s.label = 0.625f;
    s.num_pool_nodes = 58;
    s.dgn_field.assign(s.graph.num_nodes, 0.0f);
    for (NodeId n = 0; n < s.graph.num_nodes; ++n)
        s.dgn_field[n] = static_cast<float>(n) * 0.25f;
    s.true_in_deg = s.graph.in_degrees();
    s.true_out_deg = s.graph.out_degrees();
    return s;
}

/** Every mapped section must match the copying loader bit-for-bit. */
void
expect_view_matches_sample(const io::GraphView &view,
                           const GraphSample &s)
{
    ASSERT_EQ(view.num_nodes(), s.num_nodes());
    ASSERT_EQ(view.num_edges(), s.num_edges());
    ASSERT_EQ(view.node_dim(), s.node_dim());
    ASSERT_EQ(view.edge_dim(), s.edge_dim());
    EXPECT_EQ(view.num_pool_nodes(), s.num_pool_nodes);
    EXPECT_EQ(view.label(), s.label);
    for (std::size_t i = 0; i < s.num_edges(); ++i) {
        ASSERT_EQ(view.src()[i], s.graph.edges[i].src) << i;
        ASSERT_EQ(view.dst()[i], s.graph.edges[i].dst) << i;
    }
    if (s.node_dim() > 0) {
        ASSERT_NE(view.node_features(), nullptr);
        EXPECT_EQ(std::memcmp(view.node_features(),
                              s.node_features.data(),
                              sizeof(float) * std::size_t(s.num_nodes()) *
                                  s.node_dim()),
                  0);
    }
    if (s.edge_dim() > 0) {
        ASSERT_NE(view.edge_features(), nullptr);
        EXPECT_EQ(std::memcmp(view.edge_features(),
                              s.edge_features.data(),
                              sizeof(float) * s.num_edges() *
                                  s.edge_dim()),
                  0);
    }
    if (!s.dgn_field.empty()) {
        ASSERT_NE(view.dgn_field(), nullptr);
        EXPECT_EQ(std::memcmp(view.dgn_field(), s.dgn_field.data(),
                              sizeof(float) * s.dgn_field.size()),
                  0);
    } else {
        EXPECT_EQ(view.dgn_field(), nullptr);
    }
    if (!s.true_in_deg.empty()) {
        ASSERT_NE(view.true_in_deg(), nullptr);
        EXPECT_EQ(std::memcmp(view.true_in_deg(), s.true_in_deg.data(),
                              sizeof(std::uint32_t) *
                                  s.true_in_deg.size()),
                  0);
    }
    if (!s.true_out_deg.empty()) {
        ASSERT_NE(view.true_out_deg(), nullptr);
        EXPECT_EQ(std::memcmp(view.true_out_deg(),
                              s.true_out_deg.data(),
                              sizeof(std::uint32_t) *
                                  s.true_out_deg.size()),
                  0);
    }
}

// ---- GraphView vs the copying loader ---------------------------------

TEST(GraphViewTest, MappedSectionsMatchCopyingLoader)
{
    TempDir tmp;
    GraphSample s = make_full_sample();
    GraphFile::save(tmp.path("g.fgnb"), s);

    io::GraphView view(tmp.path("g.fgnb"));
    EXPECT_EQ(view.version(), io::kGraphFileVersionChunked);
    expect_view_matches_sample(view, s);

    SampleRef ref = view.sample();
    EXPECT_TRUE(ref.consistent());
    EXPECT_EQ(ref.num_nodes(), s.num_nodes());
    EXPECT_EQ(ref.node_dim, s.node_dim());
    EXPECT_EQ(ref.edge_dim, s.edge_dim());
}

TEST(GraphViewTest, ReadsBothFormatVersions)
{
    TempDir tmp;
    GraphSample s = make_full_sample();
    GraphFile::save(tmp.path("v1.fgnb"), s, {.version = 1});
    GraphFile::save(tmp.path("v2.fgnb"), s, {.version = 2});

    io::GraphView v1(tmp.path("v1.fgnb"));
    io::GraphView v2(tmp.path("v2.fgnb"));
    EXPECT_EQ(v1.version(), 1u);
    EXPECT_EQ(v2.version(), 2u);
    expect_view_matches_sample(v1, s);
    expect_view_matches_sample(v2, s);

    // The two encodings differ only in the checksum definition: the
    // payload bytes themselves are identical.
    std::vector<char> b1 = read_bytes(tmp.path("v1.fgnb"));
    std::vector<char> b2 = read_bytes(tmp.path("v2.fgnb"));
    ASSERT_EQ(b1.size(), b2.size());
    EXPECT_EQ(std::memcmp(b1.data() + 88, b2.data() + 88,
                          b1.size() - 88),
              0);
}

TEST(GraphViewTest, RejectsCorruptAndTruncatedFiles)
{
    TempDir tmp;
    GraphSample s = make_full_sample();
    for (std::uint32_t version : {1u, 2u}) {
        const std::string base =
            "v" + std::to_string(version) + ".fgnb";
        GraphFile::save(tmp.path(base), s, {.version = version});
        std::vector<char> bytes = read_bytes(tmp.path(base));

        std::vector<char> corrupt = bytes;
        corrupt.back() ^= 0x40; // deep in the last payload section
        write_bytes(tmp.path("corrupt.fgnb"), corrupt);
        expect_view_error(tmp.path("corrupt.fgnb"),
                          "checksum mismatch");

        std::vector<char> cut(bytes.begin(), bytes.end() - 7);
        write_bytes(tmp.path("cut.fgnb"), cut);
        expect_view_error(tmp.path("cut.fgnb"), "truncated");

        // verify_checksum = false skips the payload pass (the reopen
        // fast path) but must still reject structural damage.
        io::GraphView unchecked(tmp.path("corrupt.fgnb"),
                                {.verify_checksum = false});
        EXPECT_EQ(unchecked.num_nodes(), s.num_nodes());
        expect_view_error(tmp.path("cut.fgnb"), "truncated",
                          {.verify_checksum = false});
    }
}

// ---- The >= 2 GiB loader-bug seam ------------------------------------

/**
 * Regression for the ftell loader bug: the old loader sized the file
 * with `long end = std::ftell(...)` — a 32-bit quantity on LP64-hostile
 * builds and a value that wraps through the int range via the
 * ftell/fseek contract — so any FGNB >= 2 GiB was misdiagnosed as
 * truncated. The validation seam takes the true 64-bit size; this
 * pins, without writing a multi-GiB file, that (a) a > 2 GiB header
 * validates against its true size and (b) the exact 32-bit-truncated
 * size the buggy loader produced is rejected, not silently accepted.
 */
TEST(GraphViewTest, HeaderValidationUses64BitFileSizes)
{
    io::FgnbHeader h;
    h.version = io::kGraphFileVersionChunked;
    h.num_nodes = 100000;
    h.num_edges = 600000000; // 8 bytes/edge -> 4.8 GB payload
    h.payload_bytes = io::fgnb_expected_payload_bytes(h);
    ASSERT_GT(h.payload_bytes, std::uint64_t(1) << 32);

    const std::uint64_t true_size = 88 + h.payload_bytes;
    EXPECT_NO_THROW(io::fgnb_validate_header(h, true_size, "big"));

    // What a 32-bit ftell would have reported for this file.
    const std::uint64_t wrapped =
        true_size & 0xFFFFFFFFull;
    ASSERT_NE(wrapped, true_size);
    EXPECT_THROW(io::fgnb_validate_header(h, wrapped, "big"),
                 GraphFileError);
    // And the other direction: a genuinely truncated big file is
    // still caught against 64-bit sizes.
    EXPECT_THROW(io::fgnb_validate_header(h, true_size - 1, "big"),
                 GraphFileError);
}

TEST(GraphViewTest, ChunkedChecksumIsThreadCountInvariant)
{
    // Spans several chunk boundaries at a test-friendly size by
    // checking the public contract pieces: equal inputs hash equal for
    // every thread count, and the chunking changes the answer vs the
    // linear v1 hash (so readers cannot mix the definitions up).
    std::vector<unsigned char> payload(3 * (1u << 20) + 12345);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<unsigned char>(i * 2654435761u >> 13);
    const std::uint64_t serial =
        io::fgnb_chunked_checksum(payload.data(), payload.size(), 1);
    for (unsigned t : {2u, 3u, 8u})
        EXPECT_EQ(io::fgnb_chunked_checksum(payload.data(),
                                            payload.size(), t),
                  serial);
    EXPECT_NE(serial, io::fnv1a64(payload.data(), payload.size()));
}

// ---- Parallel host builds: bit-identical to serial -------------------

TEST(ParallelHostBuildTest, AdjacencyBuildsMatchSerial)
{
    const CooGraph coo = testing::make_random_graph(2, 3000, 0xAD01);
    const GraphRef ref(coo);

    const UndirectedCsr serial_und = build_undirected_csr(coo);
    const CsrGraph serial_csr(coo);
    const CscGraph serial_csc(coo);
    for (unsigned t : {1u, 2u, 5u}) {
        const UndirectedCsr und = build_undirected_csr(ref, t);
        EXPECT_EQ(und.offsets, serial_und.offsets) << t;
        EXPECT_EQ(und.nbr, serial_und.nbr) << t;

        const CsrGraph csr(ref, t);
        const CscGraph csc(ref, t);
        ASSERT_EQ(csr.num_edges(), serial_csr.num_edges()) << t;
        ASSERT_EQ(csc.num_edges(), serial_csc.num_edges()) << t;
        for (std::size_t i = 0; i < csr.num_edges(); ++i) {
            ASSERT_EQ(csr.dst(i), serial_csr.dst(i)) << t << " " << i;
            ASSERT_EQ(csr.edge_id(i), serial_csr.edge_id(i))
                << t << " " << i;
            ASSERT_EQ(csc.src(i), serial_csc.src(i)) << t << " " << i;
            ASSERT_EQ(csc.edge_id(i), serial_csc.edge_id(i))
                << t << " " << i;
        }
        EXPECT_EQ(ref.in_degrees(t), coo.in_degrees()) << t;
        EXPECT_EQ(ref.out_degrees(t), coo.out_degrees()) << t;
    }
}

// ---- Out-of-core differential: mmap view vs in-memory chain ----------

/** Structure-only BA graph on disk + its in-memory twin. */
struct DiskGraph {
    TempDir tmp;
    GraphSample mem;
    std::string path;

    DiskGraph()
    {
        mem.graph = testing::make_random_graph(2, 1500, 0xBEEF);
        mem.node_features = Matrix(mem.graph.num_nodes, 0);
        path = tmp.path("ba.fgnb");
        GraphFile::save(path, mem);
    }
};

TEST(OutOfCoreDifferentialTest, AssignmentMatchesAllStrategies)
{
    DiskGraph g;
    io::GraphView view(g.path);
    for (ShardStrategy strategy : kAllStrategies) {
        const std::vector<std::uint32_t> serial =
            shard_assignment(g.mem.graph, 4, strategy);
        EXPECT_EQ(shard_assignment(view.graph(), 4, strategy, nullptr,
                                   nullptr, 4),
                  serial)
            << shard_strategy_name(strategy);

        // Restreaming path (prior + shared adjacency) for the
        // streaming strategies; no-op prior for the rest.
        const UndirectedCsr adj = build_undirected_csr(view.graph(), 4);
        EXPECT_EQ(shard_assignment(view.graph(), 4, strategy, &serial,
                                   &adj, 4),
                  shard_assignment(g.mem.graph, 4, strategy, serial))
            << shard_strategy_name(strategy);
    }
}

TEST(OutOfCoreDifferentialTest, ClosuresMatch)
{
    DiskGraph g;
    io::GraphView view(g.path);
    const std::vector<std::uint32_t> assignment =
        shard_assignment(g.mem.graph, 4, ShardStrategy::kFennel);
    for (std::uint32_t shard = 0; shard < 4; ++shard)
        for (std::uint32_t hops : {1u, 2u})
            EXPECT_EQ(shard_closure(view.graph(), assignment, shard,
                                    hops, 4),
                      shard_closure(g.mem.graph, assignment, shard,
                                    hops))
                << shard << " " << hops;
}

TEST(OutOfCoreDifferentialTest, GhostRunBitIdenticalToInMemory)
{
    // The bench_host_speed gate in test form: the full out-of-core
    // chain (mmap view -> generated features -> fennel + restream ->
    // ghost plan -> modeled run) at threads = 4 against the copying
    // in-memory chain at threads = 1.
    DiskGraph g;
    io::GraphView view(g.path);

    SampleRef sample = view.sample();
    const Matrix generated =
        gaussian_features(view.num_nodes(), 16, 0x5EED);
    sample.node_features = generated.data();
    sample.node_dim = 16;

    const Model model = make_model(ModelKind::kGcn16, 16, 0);
    ShardConfig cfg;
    cfg.num_shards = 4;
    cfg.strategy = ShardStrategy::kFennel;
    cfg.mode = ShardMode::kGhostExchange;
    cfg.restream_passes = 2;

    GhostPlan plan = make_ghost_plan(model, sample, cfg, 4);
    ShardedRunResult ooc =
        run_ghost_plan(model, EngineConfig{}, sample, std::move(plan),
                       RunOptions{}, cfg.link, 4);

    LoadOptions lo;
    lo.node_dim = 16;
    lo.feature_seed = 0x5EED;
    GraphSample mem = load_graph_sample(g.path, lo);
    GhostPlan mem_plan = make_ghost_plan(model, mem, cfg);
    ShardedRunResult in_mem =
        run_ghost_plan(model, EngineConfig{}, mem,
                       std::move(mem_plan), RunOptions{}, cfg.link);

    EXPECT_TRUE(ooc.embeddings == in_mem.embeddings);
    EXPECT_EQ(ooc.prediction, in_mem.prediction);
    EXPECT_EQ(ooc.stats.total_cycles, in_mem.stats.total_cycles);
    EXPECT_EQ(ooc.cut_edges, in_mem.cut_edges);
    EXPECT_EQ(ooc.replication_factor, in_mem.replication_factor);
}

// ---- Parallel planners: bit-identical to the serial GraphSample path -

TEST(ParallelPlanTest, ShardPlanThreadsMatchSerial)
{
    GraphSample s = testing::make_random_sample(
        testing::make_random_graph(2, 1200, 0x71A), 8, 0, 0x71A);
    const Model model = make_model(ModelKind::kGcn16, 8, 0);
    const GraphSample prepared = model.prepare(s);

    ShardConfig cfg;
    cfg.num_shards = 4;
    cfg.strategy = ShardStrategy::kFennel;
    cfg.restream_passes = 1;

    const ShardPlan serial = make_shard_plan(model, prepared, cfg);
    for (unsigned t : {2u, 4u}) {
        const ShardPlan par =
            make_shard_plan(model, SampleRef(prepared), cfg, t);
        ASSERT_EQ(par.slices.size(), serial.slices.size()) << t;
        EXPECT_EQ(par.assignment, serial.assignment) << t;
        EXPECT_EQ(par.cut_edges, serial.cut_edges) << t;
        EXPECT_EQ(par.replication_factor, serial.replication_factor)
            << t;
        for (std::size_t i = 0; i < serial.slices.size(); ++i) {
            const ShardSlice &a = par.slices[i];
            const ShardSlice &b = serial.slices[i];
            EXPECT_EQ(a.nodes, b.nodes) << t << " " << i;
            EXPECT_TRUE(a.sub.graph.edges == b.sub.graph.edges)
                << t << " " << i;
            EXPECT_TRUE(a.sub.node_features == b.sub.node_features)
                << t << " " << i;
            EXPECT_EQ(a.sub.true_in_deg, b.sub.true_in_deg)
                << t << " " << i;
            EXPECT_EQ(a.info.owned_nodes, b.info.owned_nodes)
                << t << " " << i;
            EXPECT_EQ(a.info.halo_words, b.info.halo_words)
                << t << " " << i;
            EXPECT_EQ(a.info.resident_words, b.info.resident_words)
                << t << " " << i;
        }
    }
}

TEST(ParallelPlanTest, GhostPlanThreadsMatchSerial)
{
    GraphSample s = testing::make_random_sample(
        testing::make_random_graph(2, 1200, 0x603), 8, 0, 0x603);
    const Model model = make_model(ModelKind::kGcn16, 8, 0);
    const GraphSample prepared = model.prepare(s);

    ShardConfig cfg;
    cfg.num_shards = 4;
    cfg.strategy = ShardStrategy::kHdrf;
    cfg.mode = ShardMode::kGhostExchange;

    const GhostPlan serial = make_ghost_plan(model, prepared, cfg);
    for (unsigned t : {2u, 4u}) {
        const GhostPlan par =
            make_ghost_plan(model, SampleRef(prepared), cfg, t);
        ASSERT_EQ(par.shards.size(), serial.shards.size()) << t;
        EXPECT_EQ(par.assignment, serial.assignment) << t;
        EXPECT_EQ(par.cut_edges, serial.cut_edges) << t;
        EXPECT_EQ(par.replication_factor, serial.replication_factor)
            << t;
        for (std::size_t i = 0; i < serial.shards.size(); ++i) {
            const GhostShard &a = par.shards[i];
            const GhostShard &b = serial.shards[i];
            EXPECT_EQ(a.locals, b.locals) << t << " " << i;
            EXPECT_EQ(a.is_owned, b.is_owned) << t << " " << i;
            EXPECT_TRUE(a.local_graph.edges == b.local_graph.edges)
                << t << " " << i;
            EXPECT_EQ(a.layer_comm_cycles, b.layer_comm_cycles)
                << t << " " << i;
            EXPECT_EQ(a.info.owned_nodes, b.info.owned_nodes)
                << t << " " << i;
            EXPECT_EQ(a.info.halo_nodes, b.info.halo_nodes)
                << t << " " << i;
            EXPECT_EQ(a.info.fetched_edges, b.info.fetched_edges)
                << t << " " << i;
            EXPECT_EQ(a.info.exchange_send_words,
                      b.info.exchange_send_words)
                << t << " " << i;
            EXPECT_EQ(a.info.exchange_recv_words,
                      b.info.exchange_recv_words)
                << t << " " << i;
            EXPECT_EQ(a.info.resident_words, b.info.resident_words)
                << t << " " << i;
        }
    }
}

// ---- dest_bank guard --------------------------------------------------

TEST(DestBankTest, ZeroBanksThrowsInsteadOfDividing)
{
    EXPECT_THROW(dest_bank(5, 0), std::invalid_argument);
    EXPECT_EQ(dest_bank(5, 1), 0u);
    EXPECT_EQ(dest_bank(5, 4), 1u);
}

} // namespace
} // namespace flowgnn
