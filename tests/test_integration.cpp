/**
 * @file
 * End-to-end integration tests: all models across all datasets, plus
 * degenerate-structure stress cases (self-loops, multi-edges, stars,
 * dimension/parallelism mismatches) exercised through the full
 * engine-vs-reference pipeline.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "serve/stream.h"
#include "datasets/dataset.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

TEST(Integration, EveryModelOnEveryMultiGraphDataset)
{
    const DatasetKind datasets[] = {
        DatasetKind::kMolHiv, DatasetKind::kMolPcba, DatasetKind::kHep};
    for (DatasetKind d : datasets) {
        GraphSample probe = make_sample(d, 0);
        for (ModelKind kind : kPaperModels) {
            Model m = make_model(kind, probe.node_dim(),
                                 probe.edge_dim());
            Engine engine(m, {});
            RunResult r = engine.run(probe);
            EXPECT_TRUE(std::isfinite(r.prediction))
                << model_name(kind) << " on " << dataset_spec(d).name;
            EXPECT_GT(r.stats.total_cycles, 0u);
        }
    }
}

TEST(Integration, SingleGraphDatasetsRunAllModels)
{
    // Cora is the smallest citation graph; run the full model suite.
    GraphSample cora = make_sample(DatasetKind::kCora, 0);
    for (ModelKind kind : kPaperModels) {
        Model m = make_model(kind, cora.node_dim(), cora.edge_dim());
        RunResult r = Engine(m, {}).run(cora);
        EXPECT_TRUE(std::isfinite(r.prediction)) << model_name(kind);
    }
}

TEST(Integration, SelfLoopsAndMultiEdgesMatchReference)
{
    GraphSample s;
    s.graph.num_nodes = 4;
    // Self-loop on 0, duplicated edge 1->2, regular edges.
    s.graph.edges = {{0, 0}, {1, 2}, {1, 2}, {2, 3}, {3, 0}, {0, 1}};
    s.node_features = Matrix(4, 5, 0.3f);
    s.edge_features = Matrix(6, 2);
    for (std::size_t e = 0; e < 6; ++e) {
        s.edge_features(e, 0) = 0.1f * static_cast<float>(e);
        s.edge_features(e, 1) = -0.05f * static_cast<float>(e);
    }
    for (ModelKind kind : {ModelKind::kGin, ModelKind::kGcn,
                           ModelKind::kGat, ModelKind::kPna}) {
        Model m = make_model(kind, 5, 2);
        EngineConfig cfg;
        cfg.p_node = 1;
        RunResult r = Engine(m, cfg).run(s);
        Matrix expected = m.reference_embeddings(m.prepare(s));
        EXPECT_EQ(max_abs_diff(r.embeddings, expected), 0.0f)
            << model_name(kind);
    }
}

TEST(Integration, StarGraphWorstCaseBankSkew)
{
    // All edges converge on one node: one MP bank owns everything,
    // the sim must still complete and match the reference.
    GraphSample s;
    s.graph.num_nodes = 40;
    for (NodeId i = 1; i < 40; ++i) {
        s.graph.edges.push_back({i, 0});
        s.graph.edges.push_back({0, i});
    }
    s.node_features = Matrix(40, 6, 0.2f);
    Model m = make_model(ModelKind::kGcn, 6, 0);
    EngineConfig cfg;
    cfg.p_node = 1;
    RunResult r = Engine(m, cfg).run(s);
    Matrix expected = m.reference_embeddings(m.prepare(s));
    EXPECT_EQ(max_abs_diff(r.embeddings, expected), 0.0f);
    // Hub node 0 owns all i->0 edges; the 0->i half spreads evenly, so
    // the skew is just under 1/2 of the total work.
    EXPECT_GT(r.stats.observed_mp_imbalance(), 0.4)
        << "the star must visibly skew one bank";
}

TEST(Integration, NonDividingParallelismDimensions)
{
    // dims 100/64 with Papply=3, Pscatter=7: every ceil-division path
    // in the NT/adapter/MP machinery gets a remainder.
    GraphSample s = make_sample(DatasetKind::kMolHiv, 21);
    for (ModelKind kind : {ModelKind::kGin, ModelKind::kGat}) {
        Model m = make_model(kind, s.node_dim(), s.edge_dim());
        EngineConfig cfg;
        cfg.p_node = 1;
        cfg.p_edge = 3;
        cfg.p_apply = 3;
        cfg.p_scatter = 7;
        RunResult r = Engine(m, cfg).run(s);
        Matrix expected = m.reference_embeddings(m.prepare(s));
        EXPECT_EQ(max_abs_diff(r.embeddings, expected), 0.0f)
            << model_name(kind);
    }
}

TEST(Integration, InconsistentSampleRejected)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    s.node_features = Matrix(1, 9); // wrong row count
    Model m = make_model(ModelKind::kGin, 9, 3);
    EXPECT_THROW(Engine(m, {}).run(s), std::invalid_argument);
}

TEST(Integration, WrongFeatureDimensionRejected)
{
    GraphSample s = make_sample(DatasetKind::kCora, 0); // 64-dim
    Model m = make_model(ModelKind::kGin, 9, 3);        // expects 9
    EXPECT_THROW(Engine(m, {}).run(s), std::invalid_argument);
}

TEST(Integration, StreamedPredictionsMatchOneShotRuns)
{
    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, probe.node_dim(),
                         probe.edge_dim());
    Engine engine(m, {});

    SampleStream stream(DatasetKind::kMolHiv, 8);
    for (std::size_t i = 0; i < 8; ++i) {
        GraphSample s = stream.next();
        float streamed = engine.run(s).prediction;
        float direct =
            engine.run(make_sample(DatasetKind::kMolHiv, i)).prediction;
        EXPECT_EQ(streamed, direct);
    }
}

TEST(Integration, CrossModelLatencyOrderingOnHep)
{
    // GAT (dim 64) must be the fastest paper model; PNA (13d mixing)
    // the slowest — the Table V ordering.
    GraphSample s = make_sample(DatasetKind::kHep, 3);
    auto cycles = [&](ModelKind kind) {
        Model m = make_model(kind, s.node_dim(), s.edge_dim());
        return Engine(m, {}).run(s).stats.total_cycles;
    };
    std::uint64_t gat = cycles(ModelKind::kGat);
    std::uint64_t gin = cycles(ModelKind::kGin);
    std::uint64_t pna = cycles(ModelKind::kPna);
    EXPECT_LT(gat, pna);
    EXPECT_LT(gin, pna);
}

TEST(Integration, EngineOutlivesManyRuns)
{
    // One engine instance must be reusable across a long stream
    // without state bleed: the same input always gives the same
    // output, interleaved with different graphs.
    GraphSample a = make_sample(DatasetKind::kMolHiv, 1);
    GraphSample b = make_sample(DatasetKind::kMolHiv, 2);
    Model m = make_model(ModelKind::kPna, a.node_dim(), a.edge_dim());
    Engine engine(m, {});
    float first_a = engine.run(a).prediction;
    for (int i = 0; i < 5; ++i)
        engine.run(b);
    EXPECT_EQ(engine.run(a).prediction, first_a);
}

} // namespace
} // namespace flowgnn
