/**
 * @file
 * flowgnn::shard tests: shard assignment strategies, cut metrics, halo
 * closure, sharded-vs-single-engine equivalence (bit-exact where the
 * message arrival order is preserved), multi-die stats composition and
 * communication modeling, and the ShardedService routing paths.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "pool/scheduler.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_service.h"
#include "tensor/ops.h"
#include "testing_util.h"

namespace flowgnn {
namespace {

using testing::make_random_sample;

/** Symmetric chain 0-1-...-(n-1), edges in both directions. */
CooGraph
make_chain(NodeId n)
{
    CooGraph g;
    g.num_nodes = n;
    for (NodeId i = 0; i + 1 < n; ++i) {
        g.edges.push_back({i, i + 1});
        g.edges.push_back({i + 1, i});
    }
    return g;
}

// ---- Shard assignment & cut metrics -----------------------------------

TEST(ShardAssignment, StrategiesCoverAllShardsAndStayInRange)
{
    CooGraph g = make_ring_lattice(100, 2);
    for (ShardStrategy strategy :
         {ShardStrategy::kModulo, ShardStrategy::kContiguous,
          ShardStrategy::kGreedyBalanced, ShardStrategy::kBfsContiguous,
          ShardStrategy::kLdg, ShardStrategy::kFennel,
          ShardStrategy::kHdrf}) {
        auto assignment = shard_assignment(g, 4, strategy);
        ASSERT_EQ(assignment.size(), g.num_nodes) << shard_strategy_name(strategy);
        std::vector<std::size_t> owned(4, 0);
        for (auto s : assignment) {
            ASSERT_LT(s, 4u);
            ++owned[s];
        }
        for (std::uint32_t s = 0; s < 4; ++s)
            EXPECT_GT(owned[s], 0u)
                << shard_strategy_name(strategy) << " left shard " << s
                << " empty";
    }
}

TEST(ShardAssignment, ContiguousIsBalancedIdRanges)
{
    // Balanced ranges: sizes differ by at most one (4/3/3), unlike
    // the old ceil-chunk split's 4/4/2.
    CooGraph g = make_chain(10);
    auto assignment =
        shard_assignment(g, 3, ShardStrategy::kContiguous);
    std::vector<std::uint32_t> expected = {0, 0, 0, 0, 1, 1, 1, 2, 2, 2};
    EXPECT_EQ(assignment, expected);
}

TEST(ShardAssignment, NearShardCountSplitsLeaveNoShardEmpty)
{
    // Regression: the ceil-chunk split emptied trailing shards
    // whenever ceil(n/P)*(P-1) >= n — 9 nodes over 8 shards gave
    // shards 0-3 two nodes and shards 5-7 none. Balanced ranges must
    // give every shard at least one node whenever n >= P.
    CooGraph g = make_chain(9);
    for (ShardStrategy strategy : {ShardStrategy::kContiguous,
                                   ShardStrategy::kBfsContiguous}) {
        auto assignment = shard_assignment(g, 8, strategy);
        std::vector<std::size_t> owned(8, 0);
        for (auto s : assignment)
            ++owned[s];
        for (std::uint32_t s = 0; s < 8; ++s) {
            EXPECT_GE(owned[s], 1u)
                << shard_strategy_name(strategy) << " shard " << s;
            EXPECT_LE(owned[s], 2u)
                << shard_strategy_name(strategy) << " shard " << s;
        }
    }
}

TEST(ShardAssignment, FewerNodesThanShardsYieldsOnePerShard)
{
    // n < P is defined behavior: exactly n shards own one node each;
    // make_shard_plan drops the rest, so downstream layers see the
    // effective P.
    CooGraph g = make_chain(3);
    for (ShardStrategy strategy :
         {ShardStrategy::kModulo, ShardStrategy::kContiguous,
          ShardStrategy::kBfsContiguous}) {
        auto assignment = shard_assignment(g, 8, strategy);
        ASSERT_EQ(assignment.size(), 3u);
        std::vector<std::size_t> owned(8, 0);
        for (auto s : assignment) {
            ASSERT_LT(s, 8u);
            ++owned[s];
        }
        std::size_t non_empty = 0;
        for (std::uint32_t s = 0; s < 8; ++s) {
            EXPECT_LE(owned[s], 1u) << shard_strategy_name(strategy);
            non_empty += owned[s] > 0;
        }
        EXPECT_EQ(non_empty, 3u) << shard_strategy_name(strategy);
    }
    // Streaming strategies may pair a node with an already-placed
    // neighbor (capacity allows 2 here), but still produce several
    // small non-empty shards rather than a collapse.
    for (ShardStrategy strategy :
         {ShardStrategy::kLdg, ShardStrategy::kFennel,
          ShardStrategy::kHdrf}) {
        auto assignment = shard_assignment(g, 8, strategy);
        ASSERT_EQ(assignment.size(), 3u);
        std::vector<std::size_t> owned(8, 0);
        for (auto s : assignment) {
            ASSERT_LT(s, 8u);
            ++owned[s];
        }
        std::size_t non_empty = 0;
        for (std::uint32_t s = 0; s < 8; ++s) {
            EXPECT_LE(owned[s], 2u) << shard_strategy_name(strategy);
            non_empty += owned[s] > 0;
        }
        EXPECT_GE(non_empty, 2u) << shard_strategy_name(strategy);
    }
}

TEST(ShardAssignment, BfsContiguousRecoversLocalityOnShuffledRing)
{
    // A ring lattice whose ids were randomly permuted: contiguous id
    // ranges are meaningless, but the structure is still a ring. BFS
    // renumbering walks the ring, so the contiguous split over BFS
    // ranks must cut a tiny fraction of edges where modulo cuts
    // everything.
    CooGraph ring = make_ring_lattice(512, 2);
    std::vector<NodeId> perm(ring.num_nodes);
    for (NodeId v = 0; v < ring.num_nodes; ++v)
        perm[v] = v;
    Rng rng(0x5EED);
    for (NodeId v = ring.num_nodes; v > 1; --v)
        std::swap(perm[v - 1],
                  perm[static_cast<NodeId>(rng.uniform_index(v))]);
    CooGraph shuffled;
    shuffled.num_nodes = ring.num_nodes;
    for (const Edge &e : ring.edges)
        shuffled.edges.push_back({perm[e.src], perm[e.dst]});

    auto bfs = shard_assignment(shuffled, 4,
                                ShardStrategy::kBfsContiguous);
    auto modulo = shard_assignment(shuffled, 4, ShardStrategy::kModulo);
    auto contiguous =
        shard_assignment(shuffled, 4, ShardStrategy::kContiguous);

    double bfs_cut = shard_cut_fraction(shuffled, bfs);
    EXPECT_LT(bfs_cut, shard_cut_fraction(shuffled, modulo));
    EXPECT_LT(bfs_cut, shard_cut_fraction(shuffled, contiguous))
        << "on shuffled ids plain contiguous is as lost as modulo";
    EXPECT_LT(bfs_cut, 0.1);

    // Every shard still owns a fair share of nodes.
    std::vector<std::size_t> owned(4, 0);
    for (auto s : bfs)
        ++owned[s];
    for (std::uint32_t s = 0; s < 4; ++s)
        EXPECT_GE(owned[s], shuffled.num_nodes / 8);
}

TEST(ShardCutMetrics, ModuloCutsEveryLocalEdgeContiguousAlmostNone)
{
    // Ring-lattice edges connect ids at distance <= 2; modulo-4
    // assignment separates every such pair, contiguous keeps all but
    // the boundary edges together.
    CooGraph g = make_ring_lattice(64, 2);
    auto modulo = shard_assignment(g, 4, ShardStrategy::kModulo);
    auto contiguous = shard_assignment(g, 4, ShardStrategy::kContiguous);

    EXPECT_EQ(shard_cut_edges(g, modulo), g.num_edges());
    EXPECT_DOUBLE_EQ(shard_cut_fraction(g, modulo), 1.0);

    std::size_t contiguous_cut = shard_cut_edges(g, contiguous);
    EXPECT_GT(contiguous_cut, 0u);
    EXPECT_LT(shard_cut_fraction(g, contiguous), 0.1);

    // One shard: nothing to cut.
    auto one = shard_assignment(g, 1, ShardStrategy::kContiguous);
    EXPECT_EQ(shard_cut_edges(g, one), 0u);
}

// ---- Halo closure -----------------------------------------------------

TEST(ShardClosure, ChainClosureGrowsOneHopPerLevel)
{
    CooGraph g = make_chain(10);
    auto assignment =
        shard_assignment(g, 2, ShardStrategy::kContiguous); // 0-4 | 5-9

    using V = std::vector<NodeId>;
    EXPECT_EQ(shard_closure(g, assignment, 0, 0), (V{0, 1, 2, 3, 4}));
    EXPECT_EQ(shard_closure(g, assignment, 0, 1),
              (V{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(shard_closure(g, assignment, 0, 2),
              (V{0, 1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(shard_closure(g, assignment, 1, 2),
              (V{3, 4, 5, 6, 7, 8, 9}));
    // Deep closures saturate at the whole graph.
    EXPECT_EQ(shard_closure(g, assignment, 0, 50).size(), 10u);
}

TEST(ShardClosure, AscendingOrderOnRandomGraph)
{
    Rng rng(99);
    CooGraph g = make_barabasi_albert(200, 2, rng);
    auto assignment = shard_assignment(g, 3, ShardStrategy::kModulo);
    for (std::uint32_t s = 0; s < 3; ++s) {
        auto closure = shard_closure(g, assignment, s, 2);
        EXPECT_TRUE(
            std::is_sorted(closure.begin(), closure.end()))
            << "closure must preserve global id order (bit-exactness "
               "of single-NT sharded runs depends on it)";
    }
}

TEST(ShardClosure, ReplicationFactorMatchesHandCount)
{
    CooGraph g = make_chain(10);
    auto assignment =
        shard_assignment(g, 2, ShardStrategy::kContiguous);
    // 2-hop closures are {0..6} and {3..9}: 14 copies of 10 nodes.
    EXPECT_DOUBLE_EQ(
        shard_replication_factor(g, assignment, 2, 2), 1.4);
    EXPECT_DOUBLE_EQ(
        shard_replication_factor(g, assignment, 2, 0), 1.0);
}

// ---- ShardedEngine functional equivalence -----------------------------

TEST(ShardedEngine, MessageHopsCountsNeighborConsumingStages)
{
    // 5 conv layers for the dim-100 families, encoder excluded.
    Model gin = make_model(ModelKind::kGin, 9, 3);
    EXPECT_EQ(ShardedEngine::message_hops(gin), 5u);
    Model gcn16 = make_model(ModelKind::kGcn16, 9, 0);
    EXPECT_EQ(ShardedEngine::message_hops(gcn16), 2u);
}

TEST(ShardedEngine, BitExactWithSingleNtUnitAcrossModels)
{
    // With one NT unit, message arrival is src-major on every die and
    // on the single engine, and shard closures preserve global id
    // order — so the merged embeddings must be bit-identical.
    Rng rng(0xACE);
    GraphSample sample = make_random_sample(
        make_barabasi_albert(300, 2, rng), 9, 3, 0xACE1);

    EngineConfig cfg;
    cfg.p_node = 1;
    ShardConfig shard;
    shard.num_shards = 3;
    shard.strategy = ShardStrategy::kContiguous;

    for (ModelKind kind :
         {ModelKind::kGcn, ModelKind::kGin, ModelKind::kGat,
          ModelKind::kPna, ModelKind::kDgn, ModelKind::kSage,
          ModelKind::kSgc}) {
        Model model = make_model(kind, 9, 3);
        RunResult single = Engine(model, cfg).run(sample);
        ShardedRunResult sharded =
            ShardedEngine(model, cfg, shard).run(sample);

        EXPECT_TRUE(sharded.embeddings == single.embeddings)
            << model_name(kind);
        EXPECT_EQ(sharded.prediction, single.prediction)
            << model_name(kind);
        EXPECT_EQ(sharded.shards.size(), 3u) << model_name(kind);
    }
}

TEST(ShardedEngine, EveryStrategyWithinToleranceAtDefaultConfig)
{
    // Multiple NT units reorder message arrival differently per die;
    // functional equivalence holds to floating-point reassociation.
    Rng rng(0xBEE);
    GraphSample sample = make_random_sample(
        make_barabasi_albert(240, 2, rng), 9, 3, 0xBEE1);
    Model model = make_model(ModelKind::kGin, 9, 3);
    RunResult single = Engine(model, {}).run(sample);

    for (ShardStrategy strategy :
         {ShardStrategy::kModulo, ShardStrategy::kContiguous,
          ShardStrategy::kGreedyBalanced, ShardStrategy::kBfsContiguous,
          ShardStrategy::kLdg, ShardStrategy::kFennel,
          ShardStrategy::kHdrf}) {
        ShardConfig shard;
        shard.num_shards = 4;
        shard.strategy = strategy;
        ShardedRunResult sharded =
            ShardedEngine(model, {}, shard).run(sample);
        EXPECT_LT(max_abs_diff(sharded.embeddings, single.embeddings),
                  1e-4f)
            << shard_strategy_name(strategy);
        EXPECT_NEAR(sharded.prediction, single.prediction, 1e-4)
            << shard_strategy_name(strategy);
    }
}

TEST(ShardedEngine, VirtualNodeModelFallsBackToSingleDie)
{
    Rng rng(0xCAB);
    GraphSample sample = make_random_sample(
        make_molecule(40, rng), 9, 3, 0xCAB1);
    Model model = make_model(ModelKind::kGinVn, 9, 3);

    ShardConfig shard;
    shard.num_shards = 4;
    ShardedRunResult sharded =
        ShardedEngine(model, {}, shard).run(sample);
    RunResult single = Engine(model, {}).run(sample);

    EXPECT_EQ(sharded.shards.size(), 1u)
        << "the virtual node's halo is the whole graph; sharding must "
           "fall back";
    EXPECT_TRUE(sharded.embeddings == single.embeddings);
    EXPECT_EQ(sharded.prediction, single.prediction);
    EXPECT_EQ(sharded.stats.comm_cycles, 0u);
}

TEST(ShardedEngine, MoreShardsThanNodesStillCorrect)
{
    GraphSample sample =
        make_random_sample(make_chain(3), 9, 0, 0xFEED);
    Model model = make_model(ModelKind::kGcn, 9, 0);
    EngineConfig cfg;
    cfg.p_node = 1;
    ShardConfig shard;
    shard.num_shards = 8;
    ShardedRunResult sharded =
        ShardedEngine(model, cfg, shard).run(sample);
    RunResult single = Engine(model, cfg).run(sample);
    EXPECT_TRUE(sharded.embeddings == single.embeddings);
    EXPECT_LE(sharded.shards.size(), 3u);
}

// ---- Timing model -----------------------------------------------------

TEST(ShardedEngine, CommCyclesAndStatsComposition)
{
    GraphSample sample = make_random_sample(
        make_ring_lattice(2000, 2), 16, 0, 0x1234);
    Model model = make_model(ModelKind::kGcn16, 16, 0);

    EngineConfig cfg; // defaults: 2 NT / 4 MP units
    ShardConfig shard;
    shard.num_shards = 4;
    shard.strategy = ShardStrategy::kContiguous;
    ShardedRunResult r = ShardedEngine(model, cfg, shard).run(sample);

    ASSERT_EQ(r.shards.size(), 4u);
    std::uint64_t slowest = 0;
    std::uint64_t max_comm = 0;
    for (const ShardInfo &info : r.shards) {
        EXPECT_GT(info.owned_nodes, 0u);
        EXPECT_GT(info.halo_nodes, 0u)
            << "a cut ring must replicate boundary nodes";
        EXPECT_GT(info.comm_cycles, 0u);
        EXPECT_GE(info.comm_cycles,
                  shard.link.latency_cycles);
        slowest = std::max(slowest,
                           info.stats.total_cycles + info.comm_cycles);
        max_comm = std::max(max_comm, info.comm_cycles);
    }
    EXPECT_EQ(r.stats.total_cycles, slowest)
        << "composed cycles must be the slowest fetch+compute chain";
    EXPECT_EQ(r.stats.comm_cycles, max_comm);
    EXPECT_EQ(r.stats.nt_units.size(), 4u * cfg.p_node);
    EXPECT_EQ(r.stats.mp_units.size(), 4u * cfg.p_edge);
    EXPECT_GT(r.cut_edges, 0u);
    EXPECT_GT(r.replication_factor, 1.0);
    EXPECT_GT(r.latency_ms(), 0.0);
}

TEST(ShardStats, OverlapModePinsBothCompositionFormulas)
{
    // Two dies with hand-built stats pin the serial and the
    // overlapped chain formulas exactly.
    RunStats a;
    a.total_cycles = 1000;
    a.load_cycles = 300;
    RunStats b;
    b.total_cycles = 800;
    b.load_cycles = 100;
    std::vector<RunStats> dies = {a, b};
    std::vector<std::uint64_t> comm = {500, 50};

    // Serial: comm fully precedes compute on each die.
    RunStats serial = compose_shard_stats(dies, comm, false);
    ASSERT_EQ(serial.die_cycles.size(), 2u);
    EXPECT_EQ(serial.die_cycles[0], 1500u); // 1000 + 500
    EXPECT_EQ(serial.die_cycles[1], 850u);  // 800 + 50
    EXPECT_EQ(serial.total_cycles, 1500u);

    // Overlap: the fetch hides behind the die's input DMA; only the
    // excess over load_cycles delays the compute remainder.
    RunStats overlap = compose_shard_stats(dies, comm, true);
    EXPECT_EQ(overlap.die_cycles[0], 1200u); // max(500,300) + 700
    EXPECT_EQ(overlap.die_cycles[1], 800u);  // max(50,100) + 700
    EXPECT_EQ(overlap.total_cycles, 1200u);

    // Die-level utilization of the makespan falls out of die_cycles.
    auto util = serial.die_utilizations();
    ASSERT_EQ(util.size(), 2u);
    EXPECT_DOUBLE_EQ(util[0], 1.0);
    EXPECT_DOUBLE_EQ(util[1], 850.0 / 1500.0);
}

TEST(ShardedEngine, OverlapNeverSlowerThanSerialAndSameAnswer)
{
    GraphSample sample = make_random_sample(
        make_ring_lattice(4000, 2), 16, 0, 0xC0DE);
    Model model = make_model(ModelKind::kGcn16, 16, 0);

    ShardConfig serial;
    serial.num_shards = 4;
    ShardConfig overlapped = serial;
    overlapped.link.overlap = true;

    ShardedRunResult rs = ShardedEngine(model, {}, serial).run(sample);
    ShardedRunResult ro =
        ShardedEngine(model, {}, overlapped).run(sample);

    EXPECT_TRUE(ro.embeddings == rs.embeddings)
        << "overlap changes timing composition only, never answers";
    EXPECT_LT(ro.stats.total_cycles, rs.stats.total_cycles)
        << "a cut ring has real comm to hide behind the load prefix";
    // Overlap can hide at most the whole fetch.
    std::uint64_t compute_only = 0;
    for (const ShardInfo &info : ro.shards)
        compute_only =
            std::max(compute_only, info.stats.total_cycles);
    EXPECT_GE(ro.stats.total_cycles, compute_only);
}

TEST(ShardedEngine, ShardingALocalGraphReducesModeledCycles)
{
    GraphSample sample = make_random_sample(
        make_ring_lattice(20000, 2), 16, 0, 0x4242);
    Model model = make_model(ModelKind::kGcn16, 16, 0);

    ShardConfig one;
    one.num_shards = 1;
    ShardConfig two;
    two.num_shards = 2;
    two.strategy = ShardStrategy::kContiguous;

    std::uint64_t cycles1 =
        ShardedEngine(model, {}, one).run(sample).stats.total_cycles;
    std::uint64_t cycles2 =
        ShardedEngine(model, {}, two).run(sample).stats.total_cycles;
    EXPECT_LT(cycles2, cycles1)
        << "two dies with tiny halos must beat one die";
}

// ---- ShardedService ---------------------------------------------------

TEST(ShardedService, RoutesByThresholdAndMatchesDirectRuns)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample small =
        make_random_sample(make_chain(12), 16, 0, 0x77);
    GraphSample large = make_random_sample(
        make_ring_lattice(5000, 2), 16, 0, 0x78);

    EngineConfig cfg;
    cfg.p_node = 1;
    ShardedServiceConfig svc;
    svc.shard_threshold_nodes = 1000;
    svc.shard.num_shards = 4;
    svc.shard.strategy = ShardStrategy::kContiguous;
    svc.pool.num_dies = 4;
    ShardedService service(model, cfg, svc);

    RunResult small_result = service.submit(small).get();
    RunResult large_result = service.submit(large).get();

    PoolStats st = service.stats();
    EXPECT_EQ(st.fast.completed, 1u);
    EXPECT_EQ(st.sharded.completed, 1u);
    EXPECT_EQ(st.sharded.failed, 0u);

    RunResult small_direct = Engine(model, cfg).run(small);
    EXPECT_TRUE(small_result.embeddings == small_direct.embeddings);

    ShardedRunResult large_direct =
        ShardedEngine(model, cfg, svc.shard).run(large);
    EXPECT_TRUE(large_result.embeddings == large_direct.embeddings);
    EXPECT_EQ(large_result.prediction, large_direct.prediction);
    EXPECT_EQ(large_result.stats.total_cycles,
              large_direct.stats.total_cycles);
    EXPECT_GT(large_result.stats.comm_cycles, 0u);
}

TEST(ShardedService, RejectPolicyShedsShardedPathWhenFull)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample large = make_random_sample(
        make_ring_lattice(2000, 2), 16, 0, 0x91);

    ShardedServiceConfig svc;
    svc.shard_threshold_nodes = 1000;
    svc.shard.num_shards = 2;
    svc.pool.queue_capacity = 1;
    svc.pool.admission = AdmissionPolicy::kReject;
    svc.pool.start_paused = true;
    ShardedService service(model, {}, svc);

    auto f1 = service.submit(large);
    EXPECT_THROW(service.submit(large), ServiceOverloaded);
    EXPECT_EQ(service.stats().sharded.rejected, 1u);

    service.drain();
    EXPECT_NO_THROW(f1.get());
    PoolStats st = service.stats();
    EXPECT_EQ(st.sharded.completed, 1u);
    EXPECT_EQ(st.sharded.submitted, 1u);
}

// ---- Effective-P agreement when slices are dropped --------------------

TEST(ShardPlanEffectiveP, AllLayersAgreeWhenRequestExceedsNodes)
{
    // A P=4 request on a 3-node graph drops one empty slice. Every
    // consumer of the plan — the plan itself, merge_shard_results,
    // compose_shard_stats (via die_cycles), and the pool's die-lease
    // accounting — must agree that the effective P is 3.
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample sample = make_random_sample(make_chain(3), 16, 0, 0x3A);
    EngineConfig cfg;
    cfg.p_node = 1;
    ShardConfig shard;
    shard.num_shards = 4;
    shard.strategy = ShardStrategy::kContiguous;

    GraphSample prepared = model.prepare(sample);
    ShardPlan plan = make_shard_plan(model, prepared, shard);
    EXPECT_TRUE(plan.sharded);
    ASSERT_EQ(plan.slices.size(), 3u)
        << "one slice per non-empty shard";

    RunResult single = Engine(model, cfg).run(sample);
    ShardedRunResult direct =
        ShardedEngine(model, cfg, shard).run(sample);
    EXPECT_EQ(direct.shards.size(), 3u);
    EXPECT_EQ(direct.stats.die_cycles.size(), 3u)
        << "compose_shard_stats must see exactly the live slices";
    EXPECT_EQ(direct.stats.die_utilizations().size(), 3u);
    EXPECT_TRUE(direct.embeddings == single.embeddings);
    EXPECT_EQ(direct.prediction, single.prediction);

    // The pool must lease exactly one die per live slice — a lease
    // for the dropped slice would deadlock a gang start on a full
    // pool and skew utilization.
    PoolConfig pool_cfg;
    pool_cfg.num_dies = 4;
    PoolScheduler scheduler(model, cfg, pool_cfg);
    ShardedRunResult pooled =
        scheduler.submit_sharded(sample, shard).get();
    scheduler.drain();
    PoolStats st = scheduler.stats();
    std::size_t leases = 0;
    for (const DieStats &d : st.dies)
        leases += d.leases;
    EXPECT_EQ(leases, 3u);
    EXPECT_LE(st.peak_busy_dies, 3u);
    EXPECT_EQ(pooled.shards.size(), 3u);
    EXPECT_TRUE(pooled.embeddings == single.embeddings);
}

// ---- The acceptance-scale check ---------------------------------------

TEST(ShardedEngine, HundredThousandNodeShardedRunMatchesSingleEngine)
{
    // The tentpole's bar: a >= 100k-node graph, sharded 4 ways, must
    // reproduce the single-engine embeddings. With one NT unit the
    // accumulation order is preserved, so "within 1e-4" is met the
    // strong way: bit-identical.
    GraphSample sample = make_random_sample(
        make_ring_lattice(100000, 2), 16, 0, 0xB16);
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    EngineConfig cfg;
    cfg.p_node = 1;

    RunResult single = Engine(model, cfg).run(sample);

    ShardConfig shard;
    shard.num_shards = 4;
    shard.strategy = ShardStrategy::kContiguous;
    ShardedRunResult sharded =
        ShardedEngine(model, cfg, shard).run(sample);

    ASSERT_EQ(sharded.embeddings.rows(), single.embeddings.rows());
    EXPECT_EQ(max_abs_diff(sharded.embeddings, single.embeddings), 0.0f);
    EXPECT_EQ(sharded.prediction, single.prediction);
    EXPECT_LT(sharded.stats.total_cycles, single.stats.total_cycles)
        << "4 dies must beat 1 on a locality-friendly 100k graph";
}

} // namespace
} // namespace flowgnn
