/**
 * @file
 * Tests that reproduce worked examples from the paper text itself:
 * the Fig. 5 multicast scenario and hand-computed layer arithmetic on
 * minimal graphs.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "nn/gcn_layer.h"
#include "nn/gin_layer.h"
#include "nn/model.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

/**
 * Paper Fig. 5: edge list {(n0,n1), (n1,n2), (n1,n3), (n2,n1)}, two NT
 * units and two MP units. MP unit 0 owns even destinations, unit 1 odd
 * ones (dst % 2). Expected per-bank edge ownership: bank 0 gets
 * (n1,n2) — dst 2; bank 1 gets (n0,n1), (n1,n3), (n2,n1) — dsts 1,3,1.
 */
TEST(PaperFig5, MulticastRoutesEdgesByDestinationBank)
{
    GraphSample s;
    s.graph.num_nodes = 4;
    s.graph.edges = {{0, 1}, {1, 2}, {1, 3}, {2, 1}};
    s.node_features = Matrix(4, 4, 0.5f);

    Model m = make_model(ModelKind::kGcn, 4, 0);
    EngineConfig cfg;
    cfg.p_node = 2;
    cfg.p_edge = 2;
    cfg.p_apply = 2;
    cfg.p_scatter = 2;
    RunResult r = Engine(m, cfg).run(s);

    // 5 scatter phases (GCN has 5 conv layers), dim 100 at Pscatter=2
    // -> 50 granules per edge per phase.
    std::uint64_t granules = 50;
    EXPECT_EQ(r.stats.mp_edge_work[0], 1 * granules * 5); // (n1,n2)
    EXPECT_EQ(r.stats.mp_edge_work[1], 3 * granules * 5); // the rest
}

TEST(PaperFig5, NodeWithoutNeighborsInBankIsNotMulticast)
{
    // n0's only neighbor is n1 (bank 1): queue pushes to bank 0 from
    // n0 would be wasted. Verify total pushes equal only the needed
    // (node, bank) pairs: n0->{1}, n1->{0,1}, n2->{1}, n3->{} per
    // phase: 4 ports x 50 granules... counted as entries.
    GraphSample s;
    s.graph.num_nodes = 4;
    s.graph.edges = {{0, 1}, {1, 2}, {1, 3}, {2, 1}};
    s.node_features = Matrix(4, 4, 0.5f);

    Model m = make_model(ModelKind::kGcn, 4, 0);
    EngineConfig cfg;
    cfg.p_node = 2;
    cfg.p_edge = 2;
    cfg.p_apply = 2;
    cfg.p_scatter = 2;
    RunResult r = Engine(m, cfg).run(s);
    // Per scatter phase: n0 multicasts 50 granules to 1 bank, n1 to 2
    // banks (100), n2 to 1 bank (50), n3 to none = 200 pushes; 5
    // phases -> 1000.
    EXPECT_EQ(r.stats.queue_total_pushes, 1000u);
}

/** Two-node GCN layer, every weight hand-set: checks Eq. arithmetic
 * end to end through the reference executor. */
TEST(PaperMath, GcnTwoNodeHandComputation)
{
    // Graph: 0 -> 1 and 1 -> 0 (symmetric pair).
    GraphSample s;
    s.graph.num_nodes = 2;
    s.graph.edges = {{0, 1}, {1, 0}};
    s.node_features = Matrix(2, 2);
    s.node_features.set_row(0, {1.0f, 0.0f});
    s.node_features.set_row(1, {0.0f, 2.0f});

    Rng rng(1);
    GcnLayer gcn(2, 2, Activation::kIdentity, rng);
    Matrix &w = const_cast<Linear &>(gcn.linear()).weight();
    w.fill(0.0f);
    w(0, 0) = 1.0f; // identity weights
    w(1, 1) = 1.0f;
    const_cast<Linear &>(gcn.linear()).bias_ref() = {0.0f, 0.0f};

    LayerContext ctx = make_layer_context(s);
    // Node 0: deg_hat = 2 both sides -> message from 1 = x1/2,
    // self = x0/2; out = [0.5, 1.0].
    Vec msg = gcn.message(s.node_features.row_vec(1), nullptr, 0, 1, 0,
                          ctx);
    Vec out = gcn.transform(s.node_features.row_vec(0), msg, 0, ctx);
    EXPECT_FLOAT_EQ(out[0], 0.5f);
    EXPECT_FLOAT_EQ(out[1], 1.0f);
}

/** GIN Eq. (1) hand computation with identity-ish MLP. */
TEST(PaperMath, GinEquationOneHandComputation)
{
    GraphSample s;
    s.graph.num_nodes = 2;
    s.graph.edges = {{1, 0}};
    s.node_features = Matrix(2, 2);
    s.node_features.set_row(0, {1.0f, -1.0f});
    s.node_features.set_row(1, {3.0f, -2.0f});

    Rng rng(2);
    GinLayer gin(2, 0, Activation::kIdentity, rng);
    // Make the MLP the identity: layer0 = [I; 0] (2->4), layer1 picks
    // the first two rows back out (4->2).
    Mlp &mlp = const_cast<Mlp &>(gin.mlp());
    mlp.layer(0).weight().fill(0.0f);
    mlp.layer(0).weight()(0, 0) = 1.0f;
    mlp.layer(0).weight()(1, 1) = 1.0f;
    mlp.layer(0).bias_ref() = Vec(4, 0.0f);
    mlp.layer(1).weight().fill(0.0f);
    mlp.layer(1).weight()(0, 0) = 1.0f;
    mlp.layer(1).weight()(1, 1) = 1.0f;
    mlp.layer(1).bias_ref() = Vec(2, 0.0f);

    LayerContext ctx = make_layer_context(s);
    // Message from node 1: ReLU(x1) = [3, 0].
    Vec msg = gin.message(s.node_features.row_vec(1), nullptr, 0, 1, 0,
                          ctx);
    EXPECT_EQ(msg, (Vec{3.0f, 0.0f}));
    // x0' = MLP((1+eps)*x0 + msg), eps = 0.1, hidden ReLU clips.
    Vec out = gin.transform(s.node_features.row_vec(0), msg, 0, ctx);
    EXPECT_FLOAT_EQ(out[0], 1.1f + 3.0f);
    // Second component: (1.1 * -1 + 0) = -1.1, ReLU in hidden -> 0.
    EXPECT_FLOAT_EQ(out[1], 0.0f);
}

/** The Fig. 2 style invariant: with a permutation-invariant
 * aggregator, relabeling nodes permutes the embeddings accordingly. */
TEST(PaperMath, NodeRelabelingPermutesEmbeddings)
{
    GraphSample s;
    s.graph.num_nodes = 3;
    s.graph.edges = {{0, 1}, {1, 2}, {2, 0}};
    s.node_features = Matrix(3, 4);
    for (NodeId n = 0; n < 3; ++n)
        for (std::size_t c = 0; c < 4; ++c)
            s.node_features(n, c) = 0.1f * static_cast<float>(n + c);

    // Relabel: sigma = (0->2, 1->0, 2->1).
    const NodeId sigma[3] = {2, 0, 1};
    GraphSample p;
    p.graph.num_nodes = 3;
    for (const auto &e : s.graph.edges)
        p.graph.edges.push_back({sigma[e.src], sigma[e.dst]});
    p.node_features = Matrix(3, 4);
    for (NodeId n = 0; n < 3; ++n)
        for (std::size_t c = 0; c < 4; ++c)
            p.node_features(sigma[n], c) = s.node_features(n, c);

    Model m = make_model(ModelKind::kGin, 4, 0);
    Matrix emb_s = m.reference_embeddings(m.prepare(s));
    Matrix emb_p = m.reference_embeddings(m.prepare(p));
    for (NodeId n = 0; n < 3; ++n)
        for (std::size_t c = 0; c < m.embedding_dim(); ++c)
            EXPECT_NEAR(emb_s(n, c), emb_p(sigma[n], c), 1e-5f);
    // Graph-level prediction is permutation-invariant.
    EXPECT_NEAR(m.predict(s), m.predict(p),
                1e-4f * (1.0f + std::abs(m.predict(s))));
}

} // namespace
} // namespace flowgnn
