/** @file Deterministic RNG unit tests. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/rng.h"

namespace flowgnn {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentStreams)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next_u64() == b.next_u64());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(11);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange)
{
    Rng rng(3);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++counts[rng.uniform_index(10)];
    for (int c : counts)
        EXPECT_GT(c, 700); // roughly uniform
}

TEST(Rng, UniformIndexZeroThrows)
{
    Rng rng(1);
    EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIndexOneIsAlwaysZero)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMomentsAreStandard)
{
    Rng rng(5);
    const int n = 200000;
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal();
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScalesMeanAndStddev)
{
    Rng rng(5);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(9);
    std::vector<std::uint32_t> v(50);
    std::iota(v.begin(), v.end(), 0);
    auto original = v;
    rng.shuffle(v);
    EXPECT_NE(v, original); // astronomically unlikely to be identity
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleEmptyAndSingletonAreNoops)
{
    Rng rng(9);
    std::vector<std::uint32_t> empty;
    rng.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<std::uint32_t> one{7};
    rng.shuffle(one);
    EXPECT_EQ(one, std::vector<std::uint32_t>{7});
}

} // namespace
} // namespace flowgnn
