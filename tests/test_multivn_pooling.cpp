/** @file Multiple-virtual-node augmentation and pooling-kind tests. */
#include <gtest/gtest.h>

#include "core/engine.h"
#include "datasets/dataset.h"
#include "graph/generators.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

GraphSample
base_sample()
{
    Rng rng(5);
    GraphSample s;
    s.graph = make_molecule(10, rng);
    s.node_features = Matrix(10, 4, 0.2f);
    s.edge_features = Matrix(s.graph.num_edges(), 2, 0.1f);
    return s;
}

TEST(MultiVirtualNode, CountZeroIsIdentityStructure)
{
    GraphSample s = base_sample();
    GraphSample same = with_virtual_nodes(s, 0);
    EXPECT_EQ(same.num_nodes(), s.num_nodes());
    EXPECT_EQ(same.graph.edges, s.graph.edges);
}

TEST(MultiVirtualNode, OneMatchesSingleVnHelper)
{
    GraphSample s = base_sample();
    GraphSample a = with_virtual_nodes(s, 1);
    GraphSample b = with_virtual_node(s);
    EXPECT_EQ(a.num_nodes(), b.num_nodes());
    EXPECT_EQ(a.graph.edges, b.graph.edges);
    EXPECT_EQ(a.pool_nodes(), b.pool_nodes());
}

TEST(MultiVirtualNode, VirtualNodesNotInterconnected)
{
    GraphSample s = base_sample();
    GraphSample vn3 = with_virtual_nodes(s, 3);
    ASSERT_EQ(vn3.num_nodes(), 13u);
    EXPECT_EQ(vn3.pool_nodes(), 10u);
    // Each VN has exactly 10 in + 10 out edges (to originals only).
    auto in = vn3.graph.in_degrees();
    auto out = vn3.graph.out_degrees();
    for (NodeId v = 10; v < 13; ++v) {
        EXPECT_EQ(in[v], 10u) << "vn " << v;
        EXPECT_EQ(out[v], 10u) << "vn " << v;
    }
    for (const auto &e : vn3.graph.edges)
        EXPECT_FALSE(e.src >= 10 && e.dst >= 10)
            << "virtual nodes must not connect to each other";
    EXPECT_TRUE(vn3.consistent());
}

TEST(MultiVirtualNode, EdgeFeatureRowsStayAligned)
{
    GraphSample s = base_sample();
    GraphSample vn2 = with_virtual_nodes(s, 2);
    ASSERT_EQ(vn2.edge_features.rows(), vn2.num_edges());
    // Original edge features preserved at the original positions.
    for (std::size_t e = 0; e < s.num_edges(); ++e)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_EQ(vn2.edge_features(e, c), s.edge_features(e, c));
}

TEST(MultiVirtualNode, DataflowAbsorbsEscalatingImbalance)
{
    // Paper Sec. IV: multiple virtual nodes escalate the imbalance;
    // the pipeline must still complete and match the reference.
    GraphSample s = base_sample();
    GraphSample vn4 = with_virtual_nodes(s, 4);
    Model m = make_model(ModelKind::kGin, 4, 2);
    EngineConfig cfg;
    cfg.p_node = 1;
    RunResult r = Engine(m, cfg).run(vn4);
    Matrix expected = m.reference_embeddings(m.prepare(vn4));
    EXPECT_EQ(max_abs_diff(r.embeddings, expected), 0.0f);
}

TEST(Pooling, MeanSumMaxSemantics)
{
    Model m = make_model(ModelKind::kGcn, 4, 0);
    Matrix emb(3, 100);
    for (std::size_t c = 0; c < 100; ++c) {
        emb(0, c) = 1.0f;
        emb(1, c) = 3.0f;
        emb(2, c) = -100.0f; // excluded row
    }
    m.set_pooling(PoolingKind::kMean);
    EXPECT_FLOAT_EQ(m.global_pool(emb, 2)[0], 2.0f);
    m.set_pooling(PoolingKind::kSum);
    EXPECT_FLOAT_EQ(m.global_pool(emb, 2)[0], 4.0f);
    m.set_pooling(PoolingKind::kMax);
    EXPECT_FLOAT_EQ(m.global_pool(emb, 2)[0], 3.0f);
}

TEST(Pooling, DefaultIsMeanEverywhere)
{
    for (ModelKind kind : kPaperModels)
        EXPECT_EQ(make_model(kind, 4, 0).pooling(), PoolingKind::kMean)
            << model_name(kind);
}

TEST(Pooling, EngineHonorsPoolingKind)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 5);
    Model m = make_model(ModelKind::kGcn, s.node_dim(), s.edge_dim());
    float mean_pred = Engine(m, {}).run(s).prediction;
    m.set_pooling(PoolingKind::kSum);
    float sum_pred = Engine(m, {}).run(s).prediction;
    EXPECT_NE(mean_pred, sum_pred);
    EXPECT_EQ(sum_pred, m.predict(s))
        << "engine and reference must use the same readout";
}

TEST(Pooling, Names)
{
    EXPECT_STREQ(pooling_name(PoolingKind::kMean), "mean");
    EXPECT_STREQ(pooling_name(PoolingKind::kMax), "max");
}

} // namespace
} // namespace flowgnn
