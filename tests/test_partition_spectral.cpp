/** @file Destination-bank partitioning and spectral-field tests. */
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/spectral.h"

namespace flowgnn {
namespace {

TEST(Partition, BankCountsSumToEdges)
{
    Rng rng(1);
    CooGraph g = make_erdos_renyi(40, 200, rng);
    for (std::uint32_t p : {1u, 2u, 3u, 4u, 8u}) {
        auto counts = bank_edge_counts(g, p);
        EXPECT_EQ(counts.size(), p);
        EXPECT_EQ(std::accumulate(counts.begin(), counts.end(),
                                  std::size_t{0}),
                  g.num_edges());
    }
}

TEST(Partition, BankAssignmentIsDestMod)
{
    CooGraph g;
    g.num_nodes = 6;
    g.edges = {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {1, 0}};
    auto counts = bank_edge_counts(g, 2);
    // dsts 1,3,5 -> bank 1; dsts 2,4,0 -> bank 0.
    EXPECT_EQ(counts[0], 3u);
    EXPECT_EQ(counts[1], 3u);
}

TEST(Partition, ImbalanceBounds)
{
    Rng rng(2);
    CooGraph g = make_barabasi_albert(300, 2, rng);
    for (std::uint32_t p : {2u, 4u, 8u, 16u}) {
        double imb = workload_imbalance(g, p);
        EXPECT_GE(imb, 0.0);
        EXPECT_LE(imb, 1.0);
    }
}

TEST(Partition, PerfectBalanceIsZero)
{
    EXPECT_EQ(workload_imbalance({5, 5, 5, 5}), 0.0);
}

TEST(Partition, TotalSkewIsOne)
{
    EXPECT_EQ(workload_imbalance({10, 0}), 1.0);
}

TEST(Partition, SingleBankIsBalanced)
{
    Rng rng(3);
    CooGraph g = make_erdos_renyi(10, 20, rng);
    EXPECT_EQ(workload_imbalance(g, 1), 0.0);
}

TEST(Partition, EmptyInputsRejectedOrZero)
{
    CooGraph g;
    g.num_nodes = 4;
    EXPECT_EQ(workload_imbalance(g, 4), 0.0); // no edges
    EXPECT_THROW(workload_imbalance(std::vector<std::size_t>{}),
                 std::invalid_argument);
    EXPECT_THROW(bank_edge_counts(g, 0), std::invalid_argument);
}

TEST(Fiedler, UnitNormAndZeroMean)
{
    Rng rng(4);
    CooGraph g = make_barabasi_albert(60, 2, rng);
    Vec u = fiedler_vector(g, rng);
    double mean = 0.0, norm = 0.0;
    for (float v : u) {
        mean += v;
        norm += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(mean / u.size(), 0.0, 1e-4);
    EXPECT_NEAR(norm, 1.0, 1e-3);
}

TEST(Fiedler, PathGraphIsMonotone)
{
    // The Fiedler vector of a path is cos(pi k (i + 1/2) / n) with
    // k=1: strictly monotone along the path.
    CooGraph g;
    g.num_nodes = 12;
    for (NodeId i = 0; i + 1 < 12; ++i) {
        g.edges.push_back({i, i + 1});
        g.edges.push_back({i + 1, i});
    }
    Rng rng(5);
    Vec u = fiedler_vector(g, rng, 300);
    bool increasing = u[1] > u[0];
    for (std::size_t i = 0; i + 1 < u.size(); ++i) {
        if (increasing)
            EXPECT_GT(u[i + 1], u[i]) << "at " << i;
        else
            EXPECT_LT(u[i + 1], u[i]) << "at " << i;
    }
}

TEST(Fiedler, DisconnectedComponentsSeparateBySign)
{
    // Two cliques with no connection: the second Laplacian eigenvector
    // is piecewise-constant with opposite signs per component.
    CooGraph g;
    g.num_nodes = 8;
    for (NodeId a = 0; a < 4; ++a)
        for (NodeId b = 0; b < 4; ++b)
            if (a != b)
                g.edges.push_back({a, b});
    for (NodeId a = 4; a < 8; ++a)
        for (NodeId b = 4; b < 8; ++b)
            if (a != b)
                g.edges.push_back({a, b});
    Rng rng(6);
    Vec u = fiedler_vector(g, rng, 400);
    float s0 = u[0] >= 0 ? 1.0f : -1.0f;
    for (int i = 0; i < 4; ++i)
        EXPECT_GT(u[i] * s0, 0.0f);
    for (int i = 4; i < 8; ++i)
        EXPECT_LT(u[i] * s0, 0.0f);
}

TEST(Fiedler, DegenerateGraphs)
{
    Rng rng(7);
    CooGraph empty;
    empty.num_nodes = 0;
    EXPECT_TRUE(fiedler_vector(empty, rng).empty());
    CooGraph one;
    one.num_nodes = 1;
    EXPECT_EQ(fiedler_vector(one, rng).size(), 1u);
}

} // namespace
} // namespace flowgnn
