/**
 * @file
 * Streaming-partitioner suite: the deduplicated undirected adjacency,
 * LDG/Fennel/HDRF quality and balance guarantees, and the property
 * tests every ShardStrategy (old and new) must satisfy on adversarial
 * inputs — empty graphs, fewer nodes than shards, disconnected
 * components, stars, heavy multigraphs, edgeless graphs.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/streaming_partition.h"
#include "shard/shard_plan.h"
#include "tensor/rng.h"

namespace flowgnn {
namespace {

constexpr ShardStrategy kAllStrategies[] = {
    ShardStrategy::kModulo,        ShardStrategy::kContiguous,
    ShardStrategy::kGreedyBalanced, ShardStrategy::kBfsContiguous,
    ShardStrategy::kLdg,           ShardStrategy::kFennel,
    ShardStrategy::kHdrf,
};

constexpr ShardStrategy kStreaming[] = {
    ShardStrategy::kLdg,
    ShardStrategy::kFennel,
    ShardStrategy::kHdrf,
};

constexpr ShardStrategy kExisting[] = {
    ShardStrategy::kModulo,
    ShardStrategy::kContiguous,
    ShardStrategy::kGreedyBalanced,
    ShardStrategy::kBfsContiguous,
};

/** Max owned nodes over all shards. */
std::size_t
max_owned(const std::vector<std::uint32_t> &assignment, std::uint32_t p)
{
    std::vector<std::size_t> owned(p, 0);
    for (auto s : assignment)
        ++owned[s];
    return *std::max_element(owned.begin(), owned.end());
}

/** First-occurrence-preserving simple graph: drops self-loops and
 * repeated (src, dst) pairs regardless of direction multiplicity. */
CooGraph
simplified(const CooGraph &graph)
{
    CooGraph out;
    out.num_nodes = graph.num_nodes;
    std::set<std::pair<NodeId, NodeId>> seen;
    for (const Edge &e : graph.edges) {
        if (e.src == e.dst)
            continue;
        if (seen.insert({e.src, e.dst}).second)
            out.edges.push_back(e);
    }
    return out;
}

/** Duplicates every edge a varying number of times and sprinkles
 * self-loops: the adversarial multigraph for the dedupe paths. */
CooGraph
multigraphed(const CooGraph &graph)
{
    CooGraph out;
    out.num_nodes = graph.num_nodes;
    for (std::size_t i = 0; i < graph.edges.size(); ++i) {
        const Edge &e = graph.edges[i];
        // 1..4 copies, non-uniform so inflated neighbor counts would
        // actually flip greedy decisions if not deduplicated.
        const std::size_t copies = 1 + i % 4;
        for (std::size_t c = 0; c < copies; ++c)
            out.edges.push_back(e);
        if (i % 7 == 0)
            out.edges.push_back({e.src, e.src});
    }
    return out;
}

// ---- The shared deduplicated adjacency --------------------------------

TEST(UndirectedCsr, DedupesParallelEdgesAndDropsSelfLoops)
{
    CooGraph g;
    g.num_nodes = 4;
    g.edges = {{0, 1}, {0, 1}, {1, 0}, {2, 2}, {3, 1}, {1, 3}, {3, 1}};
    UndirectedCsr adj = build_undirected_csr(g);

    ASSERT_EQ(adj.num_nodes(), 4u);
    EXPECT_EQ(adj.degree(0), 1u) << "three parallel 0-1 edges, one neighbor";
    EXPECT_EQ(adj.degree(1), 2u);
    EXPECT_EQ(adj.degree(2), 0u) << "a self-loop is not a neighbor";
    EXPECT_EQ(adj.degree(3), 1u);

    // First-occurrence neighbor order: node 1 saw 0 before 3.
    EXPECT_EQ(adj.nbr[adj.row_begin(1)], 0u);
    EXPECT_EQ(adj.nbr[adj.row_begin(1) + 1], 3u);
}

TEST(UndirectedCsr, MultigraphEqualsItsSimpleGraph)
{
    Rng rng(0xD00D);
    CooGraph base = make_barabasi_albert(120, 2, rng);
    CooGraph multi = multigraphed(base);
    UndirectedCsr a = build_undirected_csr(multi);
    UndirectedCsr b = build_undirected_csr(simplified(multi));
    EXPECT_EQ(a.offsets, b.offsets);
    EXPECT_EQ(a.nbr, b.nbr);
}

TEST(UndirectedCsr, RejectsOutOfRangeEndpoints)
{
    CooGraph g;
    g.num_nodes = 2;
    g.edges = {{0, 5}};
    EXPECT_THROW(build_undirected_csr(g), std::invalid_argument);
}

// ---- Property tests over adversarial inputs ---------------------------

TEST(StreamingPartitionProperty, CompleteInRangeOnAdversarialInputs)
{
    std::vector<std::pair<const char *, CooGraph>> inputs;

    inputs.push_back({"empty", CooGraph{}});

    CooGraph single;
    single.num_nodes = 1;
    inputs.push_back({"single-node", single});

    CooGraph tiny;
    tiny.num_nodes = 3;
    tiny.edges = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
    inputs.push_back({"fewer-nodes-than-shards", tiny});

    // Two 10-cliques with no edges between them.
    CooGraph cliques;
    cliques.num_nodes = 20;
    for (NodeId base : {NodeId(0), NodeId(10)})
        for (NodeId i = 0; i < 10; ++i)
            for (NodeId j = 0; j < 10; ++j)
                if (i != j)
                    cliques.edges.push_back({base + i, base + j});
    inputs.push_back({"disconnected", cliques});

    CooGraph star;
    star.num_nodes = 101;
    for (NodeId i = 1; i <= 100; ++i) {
        star.edges.push_back({i, 0});
        star.edges.push_back({0, i});
    }
    inputs.push_back({"star", star});

    Rng rng(0xFACE);
    inputs.push_back(
        {"heavy-multigraph",
         multigraphed(make_barabasi_albert(64, 2, rng))});

    CooGraph edgeless;
    edgeless.num_nodes = 10;
    inputs.push_back({"edgeless", edgeless});

    for (const auto &[name, g] : inputs) {
        for (ShardStrategy strategy : kAllStrategies) {
            for (std::uint32_t p : {1u, 2u, 3u, 8u}) {
                SCOPED_TRACE(::testing::Message()
                             << name << " / "
                             << shard_strategy_name(strategy)
                             << " / P=" << p);
                auto assignment = shard_assignment(g, p, strategy);
                ASSERT_EQ(assignment.size(), g.num_nodes);
                for (auto s : assignment)
                    ASSERT_LT(s, p);
            }
        }
    }
}

TEST(StreamingPartitionProperty, DeterministicAcrossCalls)
{
    Rng rng(0xAB);
    CooGraph g = make_barabasi_albert(400, 3, rng);
    for (ShardStrategy strategy : kStreaming)
        EXPECT_EQ(shard_assignment(g, 4, strategy),
                  shard_assignment(g, 4, strategy))
            << shard_strategy_name(strategy);
}

TEST(StreamingPartitionProperty, InvalidArgumentsThrow)
{
    CooGraph g;
    g.num_nodes = 4;
    EXPECT_THROW(ldg_partition(g, 0), std::invalid_argument);
    StreamingPartitionConfig bad;
    bad.balance_slack = 0.5;
    EXPECT_THROW(fennel_partition(g, 2, bad), std::invalid_argument);
}

// ---- Balance guarantees -----------------------------------------------

TEST(StreamingPartitionBalance, HardCapacityBoundsLoadImbalance)
{
    Rng rng(0xBA1);
    CooGraph g = make_barabasi_albert(2000, 3, rng);
    const StreamingPartitionConfig config;
    for (std::uint32_t p : {4u, 8u}) {
        const std::size_t ideal = (g.num_nodes + p - 1) / p;
        const std::size_t cap = static_cast<std::size_t>(
            std::ceil(config.balance_slack * double(ideal)));
        for (ShardStrategy strategy : kStreaming)
            EXPECT_LE(max_owned(shard_assignment(g, p, strategy), p),
                      cap)
                << shard_strategy_name(strategy) << " P=" << p;
    }
}

TEST(StreamingPartitionBalance, EdgelessGraphSpreadsRoundRobin)
{
    // Neighborless vertices tie on score; the least-loaded tie-break
    // must spread them instead of collapsing onto shard 0 (the
    // kGreedyBalanced failure mode on zero-degree nodes).
    CooGraph g;
    g.num_nodes = 10;
    for (ShardStrategy strategy : kStreaming) {
        auto assignment = shard_assignment(g, 4, strategy);
        std::vector<std::size_t> owned(4, 0);
        for (auto s : assignment)
            ++owned[s];
        for (std::uint32_t s = 0; s < 4; ++s)
            EXPECT_GE(owned[s], 2u) << shard_strategy_name(strategy);
    }
}

// ---- Multigraph invariance (the BFS-CSR dedupe fix) -------------------

TEST(StreamingPartitionInvariance, MultigraphMatchesSimpleGraph)
{
    // Partitioning consults the deduplicated adjacency, so a
    // multigraph must partition exactly like its underlying simple
    // graph: inflated neighbor multiplicities and self-loops must not
    // flip any greedy decision or BFS degree. (Without the dedupe the
    // non-uniform duplication in multigraphed() skews LDG/Fennel
    // intersection counts and HDRF degrees.)
    Rng rng(0x5111);
    CooGraph base = make_barabasi_albert(300, 2, rng);
    CooGraph multi = multigraphed(base);
    CooGraph simple = simplified(multi);
    for (ShardStrategy strategy :
         {ShardStrategy::kBfsContiguous, ShardStrategy::kLdg,
          ShardStrategy::kFennel, ShardStrategy::kHdrf}) {
        EXPECT_EQ(shard_assignment(multi, 4, strategy),
                  shard_assignment(simple, 4, strategy))
            << shard_strategy_name(strategy);
    }
}

// ---- Cut quality on power-law graphs (the tentpole claim) -------------

TEST(StreamingPartitionQuality, EveryStreamingStrategyBeatsEveryExistingOnPowerLaw)
{
    // The reason these partitioners exist: on power-law graphs BFS
    // ranks order poorly (a few hops reach everything), so all
    // existing strategies cut most edges. Each streaming strategy
    // must beat every existing one on cut fraction at P in {4, 8}.
    Rng rng(0xB0BA);
    CooGraph g = make_barabasi_albert(5000, 4, rng);
    for (std::uint32_t p : {4u, 8u}) {
        double worst_new = 0.0;
        double best_old = 1.0;
        for (ShardStrategy strategy : kStreaming)
            worst_new = std::max(
                worst_new,
                shard_cut_fraction(
                    g, shard_assignment(g, p, strategy)));
        for (ShardStrategy strategy : kExisting)
            best_old = std::min(
                best_old,
                shard_cut_fraction(
                    g, shard_assignment(g, p, strategy)));
        EXPECT_LT(worst_new, best_old) << "P=" << p;
    }
}

TEST(Restreaming, PriorAwarePassesNeverWorsenAndUsuallyImproveTheCut)
{
    // Nishimura & Ugander restreaming: re-running a streaming
    // partitioner with the previous assignment as the neighbor-lookup
    // prior lets early vertices see late neighbors. On a power-law
    // graph every streaming strategy's cut must improve after one
    // pass, and each pass must keep the assignment valid and balanced.
    Rng rng(0x31);
    CooGraph g = make_barabasi_albert(3000, 4, rng);
    for (ShardStrategy strategy : kStreaming) {
        ShardConfig cfg;
        cfg.num_shards = 8;
        cfg.strategy = strategy;
        cfg.restream_passes = 0;
        double prev_cut = shard_cut_fraction(
            g, shard_plan_assignment(g, cfg));
        double pass0 = prev_cut;
        for (std::uint32_t passes = 1; passes <= 3; ++passes) {
            cfg.restream_passes = passes;
            auto assignment = shard_plan_assignment(g, cfg);
            ASSERT_EQ(assignment.size(), g.num_nodes);
            std::vector<std::size_t> owned(8, 0);
            for (auto s : assignment) {
                ASSERT_LT(s, 8u);
                ++owned[s];
            }
            for (std::uint32_t s = 0; s < 8; ++s)
                EXPECT_GT(owned[s], 0u)
                    << shard_strategy_name(strategy) << " pass "
                    << passes;
            double cut = shard_cut_fraction(g, assignment);
            EXPECT_LE(cut, prev_cut * 1.02)
                << shard_strategy_name(strategy) << " pass " << passes
                << ": restreaming should not regress the cut";
            prev_cut = cut;
        }
        EXPECT_LT(prev_cut, pass0)
            << shard_strategy_name(strategy)
            << ": three restream passes must beat the one-shot stream";
    }
}

TEST(Restreaming, ExplicitPriorOverloadFeedsUnplacedNeighbors)
{
    // The 4-arg shard_assignment overload with a full prior must see
    // every neighbor placed (no kUnassigned fallthrough), so its
    // result generally differs from the one-shot stream; feeding a
    // strategy that ignores priors must reproduce the plain result.
    Rng rng(0x32);
    CooGraph g = make_barabasi_albert(1000, 4, rng);
    auto one_shot =
        shard_assignment(g, 4, ShardStrategy::kFennel);
    auto restreamed =
        shard_assignment(g, 4, ShardStrategy::kFennel, one_shot);
    ASSERT_EQ(restreamed.size(), g.num_nodes);
    EXPECT_LE(shard_cut_fraction(g, restreamed),
              shard_cut_fraction(g, one_shot) * 1.02);

    auto contiguous =
        shard_assignment(g, 4, ShardStrategy::kContiguous);
    EXPECT_EQ(shard_assignment(g, 4, ShardStrategy::kContiguous,
                               one_shot),
              contiguous)
        << "non-streaming strategies are prior-oblivious";
}

TEST(Restreaming, ConvergedAssignmentStopsEarly)
{
    // Prior-oblivious strategies are instant fixed points: the first
    // restream pass reproduces its input, the convergence break fires,
    // and any pass count yields the one-shot assignment. (Streaming
    // strategies may 2-cycle rather than converge — see the quality
    // test above — so the break is a shortcut, not a guarantee.)
    CooGraph g = make_ring_lattice(256, 2);
    ShardConfig none;
    none.num_shards = 4;
    none.strategy = ShardStrategy::kContiguous;
    ShardConfig many = none;
    many.restream_passes = 30;
    EXPECT_EQ(shard_plan_assignment(g, none),
              shard_plan_assignment(g, many));

    // High pass counts stay well-defined for streaming strategies too:
    // valid shard ids, nothing unassigned.
    ShardConfig ldg;
    ldg.num_shards = 4;
    ldg.strategy = ShardStrategy::kLdg;
    ldg.restream_passes = 30;
    auto assignment = shard_plan_assignment(g, ldg);
    ASSERT_EQ(assignment.size(), g.num_nodes);
    for (auto s : assignment)
        ASSERT_LT(s, 4u);
}

TEST(StreamingPartitionQuality, BfsStillWinsOnLocalityGraphs)
{
    // The decision table's other half: on a graph with a walkable
    // geometry (shuffled ring), BFS renumbering stays the right
    // choice; streaming partitioners are merely competitive.
    Rng rng(0x21);
    CooGraph ring = permute_node_ids(make_ring_lattice(4096, 2), rng);
    auto bfs_cut = shard_cut_fraction(
        ring,
        shard_assignment(ring, 4, ShardStrategy::kBfsContiguous));
    for (ShardStrategy strategy : kStreaming) {
        double cut = shard_cut_fraction(
            ring, shard_assignment(ring, 4, strategy));
        EXPECT_LT(bfs_cut, cut) << shard_strategy_name(strategy);
        EXPECT_LT(cut, shard_cut_fraction(
                           ring, shard_assignment(
                                     ring, 4,
                                     ShardStrategy::kContiguous)))
            << shard_strategy_name(strategy)
            << " must still beat a blind id split";
    }
}

} // namespace
} // namespace flowgnn
