/**
 * @file
 * flowgnn::pool tests: schedule-simulator policy semantics (exact
 * makespans for gang head-of-line blocking, space-share backfill,
 * priority aging), pool scheduling correctness (fast-path and sharded
 * jobs bit-identical to isolated runs under every policy), the
 * concurrency acceptance bar (two P=2 jobs fill a D=4 pool), admission
 * control, and the mixed small/sharded stress run through the pooled
 * ShardedService.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "graph/generators.h"
#include "pool/schedule_sim.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_service.h"
#include "tensor/ops.h"
#include "testing_util.h"

namespace flowgnn {
namespace {

using testing::make_random_sample;

// ---- Schedule simulator: policy semantics pinned exactly ---------------

TEST(ScheduleSim, GangHeadOfLineBlocksWhereSpaceShareBackfills)
{
    // D=4. j0 needs 2 dies for 20; j1 needs 3 dies (2 each); j2 and j3
    // are 15-cycle singles. Under gang scheduling j1 cannot start
    // until j0 finishes (needs 3 simultaneous dies, only 2 are free),
    // and FIFO order stalls the singles behind it: two dies idle for
    // j0's whole runtime.
    std::vector<SimJob> trace = {
        {{20, 20}, 0, 0},
        {{2, 2, 2}, 0, 0},
        {{15}, 0, 0},
        {{15}, 0, 0},
    };

    SimResult gang =
        simulate_pool_schedule(trace, 4, PoolPolicy::kFifoGang);
    // t20: j1 gang-starts + j2 backfills; t22: j3.
    EXPECT_EQ(gang.job_start(1), 20u);
    EXPECT_EQ(gang.makespan, 37u);

    SimResult share =
        simulate_pool_schedule(trace, 4, PoolPolicy::kSpaceShare);
    // Idle dies take j1's tasks immediately, then the singles.
    EXPECT_EQ(share.job_start(1), 0u);
    EXPECT_EQ(share.makespan, 20u);

    EXPECT_GT(share.utilization(), gang.utilization());
}

TEST(ScheduleSim, SpaceShareIsWorkConserving)
{
    // A die never idles while any task is pending: total busy cycles
    // equal the trace's work, and the makespan on one die is the sum.
    std::vector<SimJob> trace = {{{5}, 0, 0}, {{7}, 0, 0}, {{3}, 0, 0}};
    SimResult r =
        simulate_pool_schedule(trace, 1, PoolPolicy::kSpaceShare);
    EXPECT_EQ(r.makespan, 15u);
    EXPECT_DOUBLE_EQ(r.utilization(), 1.0);
}

TEST(ScheduleSim, PriorityAgingPreventsStarvation)
{
    // One die. A low-priority job (j0) competes with high-priority
    // work: b runs first either way; c arrives later with high
    // priority. Without aging c overtakes j0; with aging j0's wait
    // raises its effective priority enough to win the tie, FIFO-break.
    std::vector<SimJob> trace = {
        {{10}, 0, 0},  // j0: low priority, arrives first
        {{100}, 0, 5}, // b: high priority, picked immediately
        {{10}, 90, 5}, // c: high priority, arrives while b runs
    };

    SimResult no_aging =
        simulate_pool_schedule(trace, 1, PoolPolicy::kPriority, 0);
    EXPECT_EQ(no_aging.job_finish(2), 110u) << "c overtakes j0";
    EXPECT_EQ(no_aging.job_finish(0), 120u);

    SimResult aged =
        simulate_pool_schedule(trace, 1, PoolPolicy::kPriority, 20);
    EXPECT_EQ(aged.job_finish(0), 110u)
        << "100 cycles of waiting = +5 effective priority";
    EXPECT_EQ(aged.job_finish(2), 120u);
}

TEST(ScheduleSim, RejectsJobsWiderThanPool)
{
    std::vector<SimJob> trace = {{{1, 1, 1}, 0, 0}};
    EXPECT_THROW(
        simulate_pool_schedule(trace, 2, PoolPolicy::kSpaceShare),
        std::invalid_argument);
}

// ---- PoolScheduler: correctness under scheduling -----------------------

TEST(PoolScheduler, FastPathBitIdenticalToSequentialEngine)
{
    Model model = make_model(ModelKind::kGin, 9, 3);
    EngineConfig cfg;
    PoolConfig pool;
    pool.num_dies = 3;
    PoolScheduler scheduler(model, cfg, pool);
    Engine reference(model, cfg);

    std::vector<GraphSample> samples;
    std::vector<std::future<RunResult>> futures;
    for (int i = 0; i < 24; ++i) {
        samples.push_back(make_random_sample(
            testing::make_random_graph(i, 40, 7000 + i), 9, 3,
            9000 + i));
        futures.push_back(scheduler.submit(samples.back()));
    }
    for (int i = 0; i < 24; ++i) {
        RunResult pooled = futures[i].get();
        RunResult direct = reference.run(samples[i]);
        EXPECT_TRUE(pooled.embeddings == direct.embeddings) << i;
        EXPECT_EQ(pooled.prediction, direct.prediction) << i;
        EXPECT_EQ(pooled.stats.total_cycles,
                  direct.stats.total_cycles)
            << i;
    }
    PoolStats st = scheduler.stats();
    EXPECT_EQ(st.fast.completed, 24u);
    EXPECT_EQ(st.sharded.completed, 0u);
}

TEST(PoolScheduler, ShardedJobMatchesShardedEngine)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    EngineConfig cfg;
    cfg.p_node = 1;
    GraphSample sample = make_random_sample(
        make_ring_lattice(5000, 2), 16, 0, 0xD1E);

    ShardConfig shard;
    shard.num_shards = 4;
    PoolConfig pool;
    pool.num_dies = 4;
    PoolScheduler scheduler(model, cfg, pool);

    ShardedRunResult pooled =
        scheduler.submit_sharded(sample, shard).get();
    ShardedRunResult direct =
        ShardedEngine(model, cfg, shard).run(sample);

    EXPECT_TRUE(pooled.embeddings == direct.embeddings);
    EXPECT_EQ(pooled.prediction, direct.prediction);
    EXPECT_EQ(pooled.stats.total_cycles, direct.stats.total_cycles);
    EXPECT_EQ(pooled.shards.size(), direct.shards.size());
    EXPECT_EQ(pooled.cut_edges, direct.cut_edges);
    EXPECT_EQ(scheduler.stats().sharded.completed, 1u);
}

TEST(PoolScheduler, ClampsJobsWiderThanThePool)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample sample = make_random_sample(
        make_ring_lattice(2000, 2), 16, 0, 0x33);
    ShardConfig shard;
    shard.num_shards = 8; // pool only has 2 dies
    PoolConfig pool;
    pool.num_dies = 2;
    PoolScheduler scheduler(model, {}, pool);
    ShardedRunResult r = scheduler.submit_sharded(sample, shard).get();
    EXPECT_EQ(r.shards.size(), 2u)
        << "a job can never be wider than the pool";
}

// ---- The acceptance bar: concurrent sharded jobs -----------------------

TEST(PoolScheduler, TwoP2JobsFillFourDiesAndStayBitIdentical)
{
    // Two P=2 sharded jobs on a D=4 pool under kSpaceShare must run
    // concurrently — pool occupancy reaches all 4 dies — and their
    // merged results must be bit-identical to isolated runs.
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    EngineConfig cfg;
    cfg.p_node = 1;
    GraphSample a = make_random_sample(
        make_ring_lattice(20000, 2), 16, 0, 0xA11CE);
    GraphSample b = make_random_sample(
        make_ring_lattice(20000, 2), 16, 0, 0xB0B);

    ShardConfig shard;
    shard.num_shards = 2;
    PoolConfig pool;
    pool.num_dies = 4;
    pool.policy = PoolPolicy::kSpaceShare;
    pool.start_paused = true; // build the backlog deterministically

    PoolScheduler scheduler(model, cfg, pool);
    auto fa = scheduler.submit_sharded(a, shard);
    auto fb = scheduler.submit_sharded(b, shard);
    // Four idle dies, four pending tasks: starting the pool dispatches
    // every task before any can finish.
    scheduler.start();
    ShardedRunResult ra = fa.get();
    ShardedRunResult rb = fb.get();
    scheduler.drain();

    PoolStats st = scheduler.stats();
    EXPECT_EQ(st.peak_busy_dies, 4u)
        << "both jobs' shards must be on dies simultaneously";
    EXPECT_EQ(st.sharded.completed, 2u);
    EXPECT_FALSE(st.occupancy.empty());

    ShardedEngine isolated(model, cfg, shard);
    ShardedRunResult ia = isolated.run(a);
    ShardedRunResult ib = isolated.run(b);
    EXPECT_TRUE(ra.embeddings == ia.embeddings);
    EXPECT_TRUE(rb.embeddings == ib.embeddings);
    EXPECT_EQ(ra.prediction, ia.prediction);
    EXPECT_EQ(rb.prediction, ib.prediction);
    EXPECT_EQ(ra.stats.total_cycles, ia.stats.total_cycles);
}

TEST(PoolScheduler, MixedTraceSpaceShareBeatsFifoGang)
{
    // The mixed trace where gang scheduling hurts: a 2-wide job leaves
    // 2 dies free, the 3-wide job behind it cannot gang-start, and
    // FIFO stalls the singles behind that. Space sharing backfills
    // all of it. Assert the advantage twice: modeled makespan via the
    // deterministic simulator (using each task's measured cycles) and
    // actual wall clock through the live pool.
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    EngineConfig cfg;
    cfg.p_node = 1;

    GraphSample wide2 = make_random_sample(
        make_ring_lattice(36000, 2), 16, 0, 0x111);
    GraphSample wide3 = make_random_sample(
        make_ring_lattice(3000, 2), 16, 0, 0x222);
    GraphSample single_a = make_random_sample(
        make_ring_lattice(12000, 2), 16, 0, 0x333);
    GraphSample single_b = make_random_sample(
        make_ring_lattice(12000, 2), 16, 0, 0x444);

    ShardConfig p2;
    p2.num_shards = 2;
    ShardConfig p3;
    p3.num_shards = 3;

    // Modeled task durations from isolated runs.
    ShardedEngine e2(model, cfg, p2);
    ShardedEngine e3(model, cfg, p3);
    Engine e1(model, cfg);
    auto task_cycles = [](const ShardedRunResult &r) {
        std::vector<std::uint64_t> cycles;
        for (const ShardInfo &info : r.shards)
            cycles.push_back(info.stats.total_cycles +
                             info.comm_cycles);
        return cycles;
    };
    std::vector<SimJob> trace;
    trace.push_back({task_cycles(e2.run(wide2)), 0, 0});
    trace.push_back({task_cycles(e3.run(wide3)), 0, 0});
    trace.push_back({{e1.run(single_a).stats.total_cycles}, 0, 0});
    trace.push_back({{e1.run(single_b).stats.total_cycles}, 0, 0});

    SimResult gang_sim =
        simulate_pool_schedule(trace, 4, PoolPolicy::kFifoGang);
    SimResult share_sim =
        simulate_pool_schedule(trace, 4, PoolPolicy::kSpaceShare);
    EXPECT_LT(share_sim.makespan, gang_sim.makespan)
        << "modeled: backfill must shorten the mixed trace";
    EXPECT_GT(share_sim.utilization(), gang_sim.utilization());

    // Live pool, wall clock. Paused start makes the backlog (and thus
    // the schedule shape) deterministic.
    auto run_trace = [&](PoolPolicy policy) {
        PoolConfig pool;
        pool.num_dies = 4;
        pool.policy = policy;
        pool.start_paused = true;
        PoolScheduler scheduler(model, cfg, pool);
        std::vector<std::future<ShardedRunResult>> sharded;
        sharded.push_back(scheduler.submit_sharded(wide2, p2));
        sharded.push_back(scheduler.submit_sharded(wide3, p3));
        std::vector<std::future<RunResult>> singles;
        singles.push_back(scheduler.submit(single_a));
        singles.push_back(scheduler.submit(single_b));
        auto begin = std::chrono::steady_clock::now();
        scheduler.start();
        scheduler.drain();
        auto end = std::chrono::steady_clock::now();
        for (auto &f : sharded)
            f.get();
        for (auto &f : singles)
            f.get();
        return std::chrono::duration<double, std::milli>(end - begin)
            .count();
    };
    double gang_ms = run_trace(PoolPolicy::kFifoGang);
    double share_ms = run_trace(PoolPolicy::kSpaceShare);
    if (std::thread::hardware_concurrency() >= 4) {
        EXPECT_LT(share_ms, gang_ms)
            << "wall clock: the modeled ~1.7x gap leaves margin";
    } else {
        // Fewer host cores than dies: the die threads timeshare, so
        // total work — identical under every policy — bounds the wall
        // clock and schedule shape cannot show. The modeled assertion
        // above is the portable check.
        std::printf("[  SKIPPED ] wall-clock comparison: %u host "
                    "core(s) < 4 dies (gang %.1f ms, share %.1f ms)\n",
                    std::thread::hardware_concurrency(), gang_ms,
                    share_ms);
    }
}

TEST(PoolScheduler, EveryPolicySameAnswersDifferentSchedule)
{
    Model model = make_model(ModelKind::kGin, 9, 3);
    EngineConfig cfg;
    cfg.p_node = 1;
    GraphSample small = make_random_sample(
        testing::make_random_graph(0, 48, 0xAB), 9, 3, 0xAB1);
    GraphSample large = make_random_sample(
        make_ring_lattice(3000, 2), 9, 3, 0xAB2);
    ShardConfig shard;
    shard.num_shards = 3;

    Engine reference(model, cfg);
    RunResult small_ref = reference.run(small);
    ShardedRunResult large_ref =
        ShardedEngine(model, cfg, shard).run(large);

    for (PoolPolicy policy :
         {PoolPolicy::kFifoGang, PoolPolicy::kSpaceShare,
          PoolPolicy::kPriority}) {
        PoolConfig pool;
        pool.num_dies = 4;
        pool.policy = policy;
        PoolScheduler scheduler(model, cfg, pool);
        auto fs = scheduler.submit(small, /*priority=*/1);
        auto fl = scheduler.submit_sharded(large, shard);
        RunResult rs = fs.get();
        ShardedRunResult rl = fl.get();
        EXPECT_TRUE(rs.embeddings == small_ref.embeddings)
            << pool_policy_name(policy);
        EXPECT_TRUE(rl.embeddings == large_ref.embeddings)
            << pool_policy_name(policy);
    }
}

// ---- Admission control -------------------------------------------------

TEST(PoolScheduler, BlockedProducerIsVisibleAndUnblocks)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample sample = make_random_sample(
        make_ring_lattice(64, 2), 16, 0, 0x99);

    PoolConfig pool;
    pool.num_dies = 1;
    pool.queue_capacity = 1;
    pool.admission = AdmissionPolicy::kBlock;
    pool.start_paused = true;
    PoolScheduler scheduler(model, {}, pool);

    auto f1 = scheduler.submit(sample); // fills the queue
    std::future<RunResult> f2;
    std::thread producer(
        [&] { f2 = scheduler.submit(sample); }); // must block

    // Deterministic wait: the producer is provably parked, not slept.
    while (scheduler.stats().blocked_producers == 0)
        std::this_thread::yield();
    EXPECT_EQ(scheduler.stats().blocked_producers, 1u);

    scheduler.start();
    producer.join();
    EXPECT_NO_THROW(f1.get());
    EXPECT_NO_THROW(f2.get());
    EXPECT_EQ(scheduler.stats().fast.completed, 2u);
}

TEST(PoolScheduler, RejectPolicyShedsAndCounts)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample sample = make_random_sample(
        make_ring_lattice(64, 2), 16, 0, 0x98);

    PoolConfig pool;
    pool.num_dies = 1;
    pool.queue_capacity = 1;
    pool.admission = AdmissionPolicy::kReject;
    pool.start_paused = true;
    PoolScheduler scheduler(model, {}, pool);

    auto f1 = scheduler.submit(sample);
    EXPECT_THROW(scheduler.submit(sample), ServiceOverloaded);
    EXPECT_EQ(scheduler.stats().fast.rejected, 1u);
    scheduler.drain();
    EXPECT_NO_THROW(f1.get());
    EXPECT_EQ(scheduler.stats().fast.completed, 1u);
}

TEST(PoolScheduler, RejectionAttributesToTheSubmittingPath)
{
    // Pins the admit() path-selection fix: the tally for a rejected
    // job must land on the path that submitted it (sharded here), and
    // the path reference must be chosen under the scheduler mutex.
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample sample = make_random_sample(
        make_ring_lattice(256, 2), 16, 0, 0x9A);

    ShardConfig shard;
    shard.num_shards = 2;
    PoolConfig pool;
    pool.num_dies = 2;
    pool.queue_capacity = 1;
    pool.admission = AdmissionPolicy::kReject;
    pool.start_paused = true;
    PoolScheduler scheduler(model, {}, pool);

    auto f1 = scheduler.submit_sharded(sample, shard); // fills the queue
    EXPECT_THROW(scheduler.submit_sharded(sample, shard),
                 ServiceOverloaded);
    PoolStats st = scheduler.stats();
    EXPECT_EQ(st.sharded.rejected, 1u);
    EXPECT_EQ(st.fast.rejected, 0u);

    scheduler.drain();
    EXPECT_NO_THROW(f1.get());
    EXPECT_EQ(scheduler.stats().sharded.completed, 1u);
}

TEST(PoolScheduler, SubmitAfterShutdownThrows)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample sample = make_random_sample(
        make_ring_lattice(64, 2), 16, 0, 0x97);
    PoolScheduler scheduler(model, {}, {});
    scheduler.shutdown();
    EXPECT_THROW(scheduler.submit(sample), std::logic_error);
}

TEST(PoolScheduler, QueueDelayTelemetryRecorded)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample sample = make_random_sample(
        make_ring_lattice(256, 2), 16, 0, 0x96);
    PoolConfig pool;
    pool.num_dies = 1;
    pool.start_paused = true;
    PoolScheduler scheduler(model, {}, pool);
    auto f = scheduler.submit(sample);
    scheduler.drain();
    f.get();
    PoolStats st = scheduler.stats();
    EXPECT_GT(st.queue_delay_p50_ms, 0.0)
        << "the paused interval is queueing delay";
    EXPECT_GE(st.queue_delay_p99_ms, st.queue_delay_p50_ms);
    ASSERT_EQ(st.dies.size(), 1u);
    EXPECT_EQ(st.dies[0].leases, 1u);
    EXPECT_GT(st.dies[0].busy_ms, 0.0);
}

// ---- Mixed concurrent workloads through the pooled service -------------

TEST(ShardedService, MixedStressStaysBitIdenticalAndDropsNothing)
{
    // Interleaved small (fast-path) and large (sharded) graphs through
    // one pooled ShardedService: every future must be fulfilled and
    // every answer must match the sequential single-engine reference
    // bit for bit (p_node=1 preserves accumulation order end to end).
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    EngineConfig cfg;
    cfg.p_node = 1;

    ShardedServiceConfig svc;
    svc.shard_threshold_nodes = 1000;
    svc.shard.num_shards = 4;
    svc.pool.num_dies = 4;
    svc.pool.policy = PoolPolicy::kSpaceShare;
    svc.pool.queue_capacity = 8; // small: exercises backpressure too
    ShardedService service(model, cfg, svc);

    constexpr int kSmall = 30;
    constexpr int kLarge = 6;
    std::vector<GraphSample> small_samples;
    std::vector<GraphSample> large_samples;
    for (int i = 0; i < kSmall; ++i)
        small_samples.push_back(make_random_sample(
            testing::make_random_graph(i, 30 + i, 500 + i), 16, 0,
            600 + i));
    for (int i = 0; i < kLarge; ++i)
        large_samples.push_back(make_random_sample(
            make_ring_lattice(6000 + 500 * i, 2), 16, 0, 700 + i));

    // Interleave: every 5th submission is large.
    std::vector<std::future<RunResult>> small_futures;
    std::vector<std::future<RunResult>> large_futures;
    int s = 0, l = 0;
    while (s < kSmall || l < kLarge) {
        for (int k = 0; k < 5 && s < kSmall; ++k, ++s)
            small_futures.push_back(
                service.submit(small_samples[s]));
        if (l < kLarge)
            large_futures.push_back(
                service.submit(large_samples[l++]));
    }

    Engine reference(model, cfg);
    ShardedEngine sharded_ref(model, cfg, svc.shard);
    for (int i = 0; i < kSmall; ++i) {
        RunResult pooled = small_futures[i].get();
        RunResult direct = reference.run(small_samples[i]);
        EXPECT_TRUE(pooled.embeddings == direct.embeddings) << i;
        EXPECT_EQ(pooled.prediction, direct.prediction) << i;
    }
    for (int i = 0; i < kLarge; ++i) {
        RunResult pooled = large_futures[i].get();
        ShardedRunResult direct = sharded_ref.run(large_samples[i]);
        EXPECT_TRUE(pooled.embeddings == direct.embeddings) << i;
        EXPECT_EQ(pooled.prediction, direct.prediction) << i;
        EXPECT_GT(pooled.stats.comm_cycles, 0u) << i;
    }

    service.drain();
    PoolStats st = service.stats();
    EXPECT_EQ(st.fast.submitted, static_cast<std::size_t>(kSmall));
    EXPECT_EQ(st.fast.completed, static_cast<std::size_t>(kSmall));
    EXPECT_EQ(st.sharded.submitted, static_cast<std::size_t>(kLarge));
    EXPECT_EQ(st.sharded.completed, static_cast<std::size_t>(kLarge));
    EXPECT_EQ(st.fast.failed + st.sharded.failed, 0u);
    EXPECT_EQ(st.fast.rejected + st.sharded.rejected, 0u)
        << "kBlock admission must never drop an admission future";
    EXPECT_GE(st.peak_busy_dies, 2u);
}

} // namespace
} // namespace flowgnn
