/**
 * @file
 * flowgnn::io test suite: FGNB round-trip fidelity, rejection of every
 * malformed-file class the loader promises to diagnose, the text
 * parsers' edge cases (comments, blank lines, CRLF, duplicates), and
 * the end-to-end check that a sharded run from a file on disk is
 * bit-identical to the in-memory run of the same graph.
 */
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/dataset.h"
#include "graph/generators.h"
#include "io/edge_list.h"
#include "io/fgnb_layout.h"
#include "io/graph_file.h"
#include "io/load.h"
#include "shard/sharded_engine.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "testing_util.h"

namespace flowgnn {
namespace {

namespace fs = std::filesystem;

/** Per-test scratch directory, removed on destruction. */
class TempDir
{
  public:
    TempDir()
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() /
               (std::string("flowgnn_io_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    ~TempDir() { fs::remove_all(dir_); }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

  private:
    fs::path dir_;
};

void
write_text(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary);
    os << content;
}

std::vector<char>
read_bytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(is),
                             std::istreambuf_iterator<char>());
}

void
write_bytes(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

void
expect_load_error(const std::string &path, const std::string &needle)
{
    try {
        GraphFile::load(path);
        FAIL() << "expected GraphFileError containing '" << needle
               << "'";
    } catch (const GraphFileError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual error: " << e.what();
    }
}

/** A sample exercising every optional FGNB section. */
GraphSample
make_full_sample()
{
    GraphSample s = testing::make_random_sample(
        testing::make_random_graph(2, 60, 0xD15C), 12, 3, 0xD15C);
    s.label = 0.625f;
    s.num_pool_nodes = 58;
    s.dgn_field.assign(s.graph.num_nodes, 0.0f);
    for (NodeId n = 0; n < s.graph.num_nodes; ++n)
        s.dgn_field[n] = static_cast<float>(n) * 0.25f;
    s.true_in_deg = s.graph.in_degrees();
    s.true_out_deg = s.graph.out_degrees();
    return s;
}

void
expect_bit_identical(const GraphSample &a, const GraphSample &b)
{
    ASSERT_EQ(a.graph.num_nodes, b.graph.num_nodes);
    ASSERT_EQ(a.graph.edges.size(), b.graph.edges.size());
    for (std::size_t i = 0; i < a.graph.edges.size(); ++i)
        ASSERT_TRUE(a.graph.edges[i] == b.graph.edges[i]) << i;
    ASSERT_EQ(a.node_features.rows(), b.node_features.rows());
    ASSERT_EQ(a.node_features.cols(), b.node_features.cols());
    EXPECT_EQ(max_abs_diff(a.node_features, b.node_features), 0.0f);
    ASSERT_EQ(a.edge_features.cols(), b.edge_features.cols());
    if (a.edge_features.cols() > 0) {
        ASSERT_EQ(a.edge_features.rows(), b.edge_features.rows());
        EXPECT_EQ(max_abs_diff(a.edge_features, b.edge_features), 0.0f);
    }
    EXPECT_EQ(a.dgn_field, b.dgn_field);
    EXPECT_EQ(a.true_in_deg, b.true_in_deg);
    EXPECT_EQ(a.true_out_deg, b.true_out_deg);
    EXPECT_EQ(a.num_pool_nodes, b.num_pool_nodes);
    EXPECT_EQ(a.label, b.label);
}

// ---- FGNB round trips -------------------------------------------------

TEST(GraphFileTest, RoundTripAllSections)
{
    TempDir tmp;
    GraphSample s = make_full_sample();
    GraphFile::save(tmp.path("g.fgnb"), s);
    GraphSample loaded = GraphFile::load(tmp.path("g.fgnb"));
    EXPECT_TRUE(loaded.consistent());
    expect_bit_identical(s, loaded);
}

TEST(GraphFileTest, RoundTripStructureOnly)
{
    TempDir tmp;
    GraphSample s;
    s.graph = make_ring_lattice(500, 2);
    s.node_features = Matrix(500, 0);
    GraphFile::save(tmp.path("g.fgnb"), s);
    GraphSample loaded = GraphFile::load(tmp.path("g.fgnb"));
    EXPECT_TRUE(loaded.consistent());
    expect_bit_identical(s, loaded);
}

TEST(GraphFileTest, RoundTripOneSidedDegreeOverrides)
{
    // GraphSample allows either degree vector alone (empty = use
    // structural degrees); the two sections are independent flags and
    // must round-trip exactly, not as a pair.
    TempDir tmp;
    GraphSample out_only = testing::make_random_sample(
        testing::make_random_graph(0, 20, 0xDE9), 4, 0, 0xDE9);
    out_only.true_out_deg = out_only.graph.out_degrees();
    GraphFile::save(tmp.path("out.fgnb"), out_only);
    expect_bit_identical(out_only, GraphFile::load(tmp.path("out.fgnb")));

    GraphSample in_only = out_only;
    in_only.true_out_deg.clear();
    in_only.true_in_deg = in_only.graph.in_degrees();
    GraphFile::save(tmp.path("in.fgnb"), in_only);
    expect_bit_identical(in_only, GraphFile::load(tmp.path("in.fgnb")));
}

TEST(GraphFileTest, RoundTripEmptyGraph)
{
    TempDir tmp;
    GraphSample s; // 0 nodes, 0 edges
    GraphFile::save(tmp.path("g.fgnb"), s);
    GraphSample loaded = GraphFile::load(tmp.path("g.fgnb"));
    EXPECT_EQ(loaded.num_nodes(), 0u);
    EXPECT_EQ(loaded.num_edges(), 0u);
    EXPECT_TRUE(loaded.consistent());
}

TEST(GraphFileTest, SaveRejectsInconsistentSample)
{
    TempDir tmp;
    GraphSample s;
    s.graph.num_nodes = 4;
    s.graph.edges.push_back({1, 9}); // endpoint out of range
    s.node_features = Matrix(4, 2);
    EXPECT_THROW(GraphFile::save(tmp.path("g.fgnb"), s),
                 GraphFileError);
}

// ---- Malformed-file rejection ----------------------------------------

TEST(GraphFileTest, RejectsMissingAndEmptyAndShortFiles)
{
    TempDir tmp;
    expect_load_error(tmp.path("nope.fgnb"), "cannot open");
    write_text(tmp.path("empty.fgnb"), "");
    expect_load_error(tmp.path("empty.fgnb"), "bad magic");
    // Right magic but the header is cut off.
    write_text(tmp.path("short.fgnb"), "FGNB\x01");
    expect_load_error(tmp.path("short.fgnb"), "truncated header");
}

TEST(GraphFileTest, RejectsBadMagic)
{
    TempDir tmp;
    write_text(tmp.path("bad.fgnb"), "# this is a text file\n1 2\n");
    expect_load_error(tmp.path("bad.fgnb"), "bad magic");
}

TEST(GraphFileTest, RejectsWrongVersion)
{
    TempDir tmp;
    GraphFile::save(tmp.path("g.fgnb"), make_full_sample());
    std::vector<char> bytes = read_bytes(tmp.path("g.fgnb"));
    bytes[4] = 99; // version field (offset 4, little-endian)
    write_bytes(tmp.path("g.fgnb"), bytes);
    expect_load_error(tmp.path("g.fgnb"), "unsupported format version");
}

TEST(GraphFileTest, RejectsTruncatedPayload)
{
    TempDir tmp;
    GraphFile::save(tmp.path("g.fgnb"), make_full_sample());
    std::vector<char> bytes = read_bytes(tmp.path("g.fgnb"));
    bytes.resize(bytes.size() - 7);
    write_bytes(tmp.path("g.fgnb"), bytes);
    expect_load_error(tmp.path("g.fgnb"), "truncated");
}

TEST(GraphFileTest, RejectsTrailingBytes)
{
    TempDir tmp;
    GraphFile::save(tmp.path("g.fgnb"), make_full_sample());
    std::vector<char> bytes = read_bytes(tmp.path("g.fgnb"));
    bytes.push_back('x');
    write_bytes(tmp.path("g.fgnb"), bytes);
    expect_load_error(tmp.path("g.fgnb"), "trailing bytes");
}

TEST(GraphFileTest, RejectsNodeIdOverflow)
{
    TempDir tmp;
    // Hand-built header claiming 2^33 nodes: must be rejected for
    // overflowing the 32-bit NodeId space before anything is sized
    // from it.
    std::vector<char> bytes(88, 0);
    const std::uint32_t magic = io::kGraphFileMagic, version = 1,
                        header_bytes = 88;
    const std::uint64_t nodes = 1ull << 33;
    std::memcpy(bytes.data() + 0, &magic, 4);
    std::memcpy(bytes.data() + 4, &version, 4);
    std::memcpy(bytes.data() + 8, &header_bytes, 4);
    std::memcpy(bytes.data() + 16, &nodes, 8);
    write_bytes(tmp.path("huge.fgnb"), bytes);
    expect_load_error(tmp.path("huge.fgnb"),
                      "overflows the 32-bit node id space");
}

TEST(GraphFileTest, RejectsImplausibleFeatureDims)
{
    TempDir tmp;
    // Hostile header: num_nodes * node_dim * 4 wraps uint64 to 0, so
    // without a dim bound the payload-size and checksum checks pass
    // on an empty payload while Matrix under-allocates (UB on first
    // access downstream).
    std::vector<char> bytes(88, 0);
    const std::uint32_t magic = io::kGraphFileMagic, version = 1,
                        header_bytes = 88, flags = io::kFlagNodeFeatures;
    const std::uint64_t nodes = 1ull << 31, dim = 1ull << 33;
    const std::uint64_t checksum = 0xCBF29CE484222325ull; // FNV seed
    std::memcpy(bytes.data() + 0, &magic, 4);
    std::memcpy(bytes.data() + 4, &version, 4);
    std::memcpy(bytes.data() + 8, &header_bytes, 4);
    std::memcpy(bytes.data() + 12, &flags, 4);
    std::memcpy(bytes.data() + 16, &nodes, 8);
    std::memcpy(bytes.data() + 32, &dim, 8);
    std::memcpy(bytes.data() + 72, &checksum, 8);
    write_bytes(tmp.path("wrap.fgnb"), bytes);
    expect_load_error(tmp.path("wrap.fgnb"),
                      "implausible feature dimension");
}

TEST(GraphFileTest, RejectsEdgeEndpointOutOfRange)
{
    TempDir tmp;
    GraphSample s;
    s.graph.num_nodes = 8;
    s.graph.edges = {{0, 1}, {2, 3}, {4, 5}};
    s.node_features = Matrix(8, 0);
    GraphFile::save(tmp.path("g.fgnb"), s);
    std::vector<char> bytes = read_bytes(tmp.path("g.fgnb"));
    // Patch edge 1's src (payload starts at 88; src column first).
    const std::uint32_t bogus = 200;
    std::memcpy(bytes.data() + 88 + 1 * sizeof(std::uint32_t), &bogus,
                sizeof bogus);
    write_bytes(tmp.path("g.fgnb"), bytes);
    expect_load_error(tmp.path("g.fgnb"), "out of range");
}

TEST(GraphFileTest, RejectsCorruptPayload)
{
    TempDir tmp;
    GraphFile::save(tmp.path("g.fgnb"), make_full_sample());
    std::vector<char> bytes = read_bytes(tmp.path("g.fgnb"));
    bytes.back() ^= 0x40; // flip a bit in the last payload byte
    write_bytes(tmp.path("g.fgnb"), bytes);
    expect_load_error(tmp.path("g.fgnb"), "checksum mismatch");
}

TEST(GraphFileTest, WriterEmitsRequestedVersion)
{
    // The writer defaults to v2 (chunked checksum); {.version = 1}
    // keeps emitting the legacy linear checksum. Both must reload
    // bit-identically, and the version byte (offset 4) is pinned so a
    // default change cannot slip through unnoticed.
    TempDir tmp;
    GraphSample s = make_full_sample();
    GraphFile::save(tmp.path("v2.fgnb"), s);
    GraphFile::save(tmp.path("v1.fgnb"), s, {.version = 1});
    EXPECT_EQ(read_bytes(tmp.path("v2.fgnb"))[4], 2);
    EXPECT_EQ(read_bytes(tmp.path("v1.fgnb"))[4], 1);
    expect_bit_identical(s, GraphFile::load(tmp.path("v2.fgnb")));
    expect_bit_identical(s, GraphFile::load(tmp.path("v1.fgnb")));
}

TEST(GraphFileTest, LoadIsThreadCountInvariant)
{
    TempDir tmp;
    GraphSample s = make_full_sample();
    GraphFile::save(tmp.path("g.fgnb"), s);
    for (unsigned t : {1u, 2u, 4u})
        expect_bit_identical(s, GraphFile::load(tmp.path("g.fgnb"), t));
}

// ---- SNAP text parser -------------------------------------------------

TEST(EdgeListTest, RejectsNewlineFreeFileInsteadOfBuffering)
{
    // Regression: the chunk parser used to append partial lines to its
    // carry buffer without bound, so a binary or newline-free file
    // (typically a wrong path handed to --graph-file) accumulated the
    // whole input in RAM before failing on the first "line". The carry
    // is now capped at 1 MiB and the failure names line 1.
    TempDir tmp;
    std::string blob(2u << 20, '7'); // 2 MiB, not a single newline
    write_text(tmp.path("blob.txt"), blob);
    try {
        parse_snap_edge_list(tmp.path("blob.txt"));
        FAIL() << "expected GraphFileError";
    } catch (const GraphFileError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 1"), std::string::npos) << what;
        EXPECT_NE(what.find("exceeds"), std::string::npos) << what;
    }
}

TEST(EdgeListTest, SnapParsesCommentsBlanksCrlfAndDuplicates)
{
    TempDir tmp;
    write_text(tmp.path("g.txt"),
               "# SNAP-style comment\n"
               "% KONECT-style comment\r\n"
               "\n"
               "0 1\n"
               "1\t2\r\n"
               "  2   3  \n"
               "0 1\n"   // duplicate, kept
               "3 3\n"   // self-loop, kept
               "\r\n"
               "4 0"); // no trailing newline
    CooGraph g = parse_snap_edge_list(tmp.path("g.txt"));
    EXPECT_EQ(g.num_nodes, 5u);
    ASSERT_EQ(g.num_edges(), 6u);
    EXPECT_TRUE(g.edges[0] == (Edge{0, 1}));
    EXPECT_TRUE(g.edges[1] == (Edge{1, 2}));
    EXPECT_TRUE(g.edges[2] == (Edge{2, 3}));
    EXPECT_TRUE(g.edges[3] == (Edge{0, 1}));
    EXPECT_TRUE(g.edges[4] == (Edge{3, 3}));
    EXPECT_TRUE(g.edges[5] == (Edge{4, 0}));
    EXPECT_TRUE(g.valid());
}

TEST(EdgeListTest, SnapExplicitNodeCountAndOverflow)
{
    TempDir tmp;
    write_text(tmp.path("g.txt"), "0 1\n1 2\n");
    EdgeListOptions opts;
    opts.num_nodes = 10; // trailing isolated nodes
    EXPECT_EQ(parse_snap_edge_list(tmp.path("g.txt"), opts).num_nodes,
              10u);

    opts.num_nodes = 2; // id 2 on line 2 is now out of range
    try {
        parse_snap_edge_list(tmp.path("g.txt"), opts);
        FAIL() << "expected GraphFileError";
    } catch (const GraphFileError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("declared node count"),
                  std::string::npos)
            << e.what();
    }
}

TEST(EdgeListTest, SnapRejectsMalformedLines)
{
    TempDir tmp;
    write_text(tmp.path("alpha.txt"), "0 1\nx 2\n");
    EXPECT_THROW(parse_snap_edge_list(tmp.path("alpha.txt")),
                 GraphFileError);
    write_text(tmp.path("lonely.txt"), "0\n");
    EXPECT_THROW(parse_snap_edge_list(tmp.path("lonely.txt")),
                 GraphFileError);
    write_text(tmp.path("junk.txt"), "0 1 2\n");
    EXPECT_THROW(parse_snap_edge_list(tmp.path("junk.txt")),
                 GraphFileError);
    write_text(tmp.path("big.txt"), "0 4294967296\n"); // 2^32
    EXPECT_THROW(parse_snap_edge_list(tmp.path("big.txt")),
                 GraphFileError);
    // The top 32-bit value is reserved too: num_nodes = max id + 1
    // must itself fit in 32 bits (it would wrap to 0).
    write_text(tmp.path("wrap.txt"), "0 4294967295\n");
    EXPECT_THROW(parse_snap_edge_list(tmp.path("wrap.txt")),
                 GraphFileError);
    // Trailing comments after the pair are fine.
    write_text(tmp.path("ok.txt"), "0 1 # weight-free\n");
    EXPECT_EQ(parse_snap_edge_list(tmp.path("ok.txt")).num_edges(), 1u);
}

TEST(EdgeListTest, SnapEmptyAndCommentOnlyFiles)
{
    TempDir tmp;
    write_text(tmp.path("empty.txt"), "");
    CooGraph g = parse_snap_edge_list(tmp.path("empty.txt"));
    EXPECT_EQ(g.num_nodes, 0u);
    EXPECT_EQ(g.num_edges(), 0u);
    write_text(tmp.path("comments.txt"), "# nothing\n% here\n");
    g = parse_snap_edge_list(tmp.path("comments.txt"));
    EXPECT_EQ(g.num_nodes, 0u);
    EXPECT_EQ(g.num_edges(), 0u);
}

/** A line split across the chunked reader's buffer boundary must
 * parse exactly like a small file (regression for the carry path). */
TEST(EdgeListTest, SnapLargeFileCrossesChunkBoundary)
{
    TempDir tmp;
    std::string content;
    const std::size_t lines = 200000; // ~2.3 MB, > one 1 MiB chunk
    for (std::size_t i = 0; i < lines; ++i) {
        content += std::to_string(i % 1000);
        content += ' ';
        content += std::to_string((i * 7 + 1) % 1000);
        content += '\n';
    }
    write_text(tmp.path("big.txt"), content);
    CooGraph g = parse_snap_edge_list(tmp.path("big.txt"));
    ASSERT_EQ(g.num_edges(), lines);
    EXPECT_EQ(g.num_nodes, 1000u);
    for (std::size_t i : {std::size_t(0), lines / 2, lines - 1}) {
        EXPECT_EQ(g.edges[i].src, i % 1000);
        EXPECT_EQ(g.edges[i].dst, (i * 7 + 1) % 1000);
    }
}

// ---- OGB CSV parser ---------------------------------------------------

TEST(EdgeListTest, OgbCsvWithNodeList)
{
    TempDir tmp;
    write_text(tmp.path("edge.csv"), "0,1\r\n1,2\n2,0\n");
    // Node count larger than max id + 1: isolated trailing nodes.
    write_text(tmp.path("num-node-list.csv"), "7\n");
    CooGraph g = parse_ogb_csv(tmp.path(""));
    EXPECT_EQ(g.num_nodes, 7u);
    ASSERT_EQ(g.num_edges(), 3u);
    EXPECT_TRUE(g.edges[2] == (Edge{2, 0}));
}

TEST(EdgeListTest, OgbCsvWithoutNodeListDerivesCount)
{
    TempDir tmp;
    write_text(tmp.path("edge.csv"), "5,1\n1,2\n");
    EXPECT_EQ(parse_ogb_csv(tmp.path("")).num_nodes, 6u);
}

TEST(EdgeListTest, OgbCsvRejectsWhitespacePairInCsv)
{
    TempDir tmp;
    write_text(tmp.path("edge.csv"), "0 1\n");
    EXPECT_THROW(parse_ogb_csv(tmp.path("")), GraphFileError);
}

// ---- load_graph_sample ------------------------------------------------

TEST(LoadGraphSampleTest, DetectsAllFormats)
{
    TempDir tmp;
    GraphSample s;
    s.graph = make_ring_lattice(10, 1);
    s.node_features = Matrix(10, 0);
    GraphFile::save(tmp.path("g.fgnb"), s);
    write_text(tmp.path("g.txt"), "0 1\n");
    write_text(tmp.path("edge.csv"), "0,1\n");
    EXPECT_EQ(detect_graph_format(tmp.path("g.fgnb")),
              GraphFileFormat::kBinary);
    EXPECT_EQ(detect_graph_format(tmp.path("g.txt")),
              GraphFileFormat::kSnapText);
    EXPECT_EQ(detect_graph_format(tmp.path("")),
              GraphFileFormat::kOgbCsv);
    EXPECT_THROW(detect_graph_format(tmp.path("missing")),
                 GraphFileError);
}

TEST(LoadGraphSampleTest, GeneratesDeterministicFeatures)
{
    TempDir tmp;
    write_text(tmp.path("g.txt"), "0 1\n1 2\n2 0\n");
    LoadOptions load;
    load.node_dim = 8;
    GraphSample a = load_graph_sample(tmp.path("g.txt"), load);
    GraphSample b = load_graph_sample(tmp.path("g.txt"), load);
    EXPECT_TRUE(a.consistent());
    EXPECT_EQ(a.node_dim(), 8u);
    EXPECT_EQ(max_abs_diff(a.node_features, b.node_features), 0.0f);
    load.feature_seed ^= 1;
    GraphSample c = load_graph_sample(tmp.path("g.txt"), load);
    EXPECT_NE(max_abs_diff(a.node_features, c.node_features), 0.0f);
}

TEST(LoadGraphSampleTest, StoredFeaturesWinOverGenerated)
{
    TempDir tmp;
    GraphSample s = testing::make_random_sample(
        testing::make_random_graph(1, 30, 0xFACE), 6, 0, 0xFACE);
    GraphFile::save(tmp.path("g.fgnb"), s);
    LoadOptions load;
    load.node_dim = 99; // must be ignored: the file has features
    GraphSample loaded = load_graph_sample(tmp.path("g.fgnb"), load);
    EXPECT_EQ(loaded.node_dim(), 6u);
    EXPECT_EQ(max_abs_diff(loaded.node_features, s.node_features),
              0.0f);
}

TEST(LoadGraphSampleTest, RejectsZeroNodeResults)
{
    // The raw parsers return empty graphs; load_graph_sample promises
    // a *runnable* sample and must diagnose instead (an empty text
    // file is almost always a wrong path or a wrong format sniff).
    TempDir tmp;
    write_text(tmp.path("empty.txt"), "");
    write_text(tmp.path("comments.txt"), "# nothing here\n");
    for (const char *name : {"empty.txt", "comments.txt"}) {
        try {
            load_graph_sample(tmp.path(name), LoadOptions{});
            FAIL() << name;
        } catch (const GraphFileError &e) {
            EXPECT_NE(std::string(e.what()).find("contains no nodes"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(LoadGraphSampleTest, SymmetrizeAppendsReverseEdges)
{
    TempDir tmp;
    write_text(tmp.path("g.txt"), "0 1\n1 2\n");
    LoadOptions load;
    load.node_dim = 4;
    load.symmetrize = true;
    GraphSample s = load_graph_sample(tmp.path("g.txt"), load);
    ASSERT_EQ(s.num_edges(), 4u);
    EXPECT_TRUE(s.graph.edges[2] == (Edge{1, 0}));
    EXPECT_TRUE(s.graph.edges[3] == (Edge{2, 1}));
}

// ---- Sharded run from a file on disk ---------------------------------

/**
 * The differential case the subsystem exists for: parse a text edge
 * list, cache it as FGNB, reload, and verify the P=4 Fennel sharded
 * run of the reloaded sample is bit-identical to (a) the in-memory
 * engine run of the same sample and (b) the run of the never-saved
 * original. Single NT unit per die — the bit-exactness condition.
 */
TEST(ShardedFromFileTest, FennelShardedRunBitIdenticalToInMemory)
{
    TempDir tmp;
    Rng rng(0x5CA1E);
    GraphSample original = testing::make_random_sample(
        make_barabasi_albert(2000, 4, rng), 8, 0, 0x5CA1E);

    GraphFile::save(tmp.path("ba.fgnb"), original);
    GraphSample loaded =
        load_graph_sample(tmp.path("ba.fgnb"), LoadOptions{});
    expect_bit_identical(original, loaded);

    Model model = make_model(ModelKind::kGcn16, loaded.node_dim(), 0);
    EngineConfig engine_cfg;
    engine_cfg.p_node = 1;
    ShardConfig shard_cfg;
    shard_cfg.num_shards = 4;
    shard_cfg.strategy = ShardStrategy::kFennel;

    ShardedRunResult from_disk =
        ShardedEngine(model, engine_cfg, shard_cfg).run(loaded);
    EXPECT_EQ(from_disk.shards.size(), 4u);

    RunResult in_memory = Engine(model, engine_cfg).run(loaded);
    EXPECT_EQ(max_abs_diff(from_disk.embeddings, in_memory.embeddings),
              0.0f);
    EXPECT_EQ(from_disk.prediction, in_memory.prediction);

    RunResult never_saved = Engine(model, engine_cfg).run(original);
    EXPECT_EQ(
        max_abs_diff(from_disk.embeddings, never_saved.embeddings),
        0.0f);
}

TEST(IoErrnoMessage, ProducesDistinctNonEmptyMessages)
{
    // Pins the strerror -> strerror_r fix: io error paths run on
    // parallel loader threads, where std::strerror's shared static
    // buffer is a data race.
    std::string enoent = io::errno_message(ENOENT);
    std::string eacces = io::errno_message(EACCES);
    EXPECT_FALSE(enoent.empty());
    EXPECT_FALSE(eacces.empty());
    EXPECT_NE(enoent, eacces);

    // Concurrent callers each get their own buffer: every thread must
    // observe the message for *its* errno value, never a neighbor's.
    std::vector<std::thread> threads;
    std::vector<std::string> got(8);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&got, t] {
            int err = (t % 2 == 0) ? ENOENT : EACCES;
            for (int i = 0; i < 1000; ++i)
                got[static_cast<std::size_t>(t)] = io::errno_message(err);
        });
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < 8; ++t)
        EXPECT_EQ(got[static_cast<std::size_t>(t)],
                  (t % 2 == 0) ? enoent : eacces)
            << "thread " << t;
}

} // namespace
} // namespace flowgnn
