/** @file Random-graph generator tests. */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"

namespace flowgnn {
namespace {

TEST(ErdosRenyi, ExactEdgeCountNoDupesNoLoops)
{
    Rng rng(1);
    CooGraph g = make_erdos_renyi(30, 100, rng);
    EXPECT_EQ(g.num_nodes, 30u);
    EXPECT_EQ(g.num_edges(), 100u);
    std::set<std::pair<NodeId, NodeId>> seen;
    for (const auto &e : g.edges) {
        EXPECT_NE(e.src, e.dst);
        EXPECT_TRUE(seen.insert({e.src, e.dst}).second);
    }
    EXPECT_TRUE(g.valid());
}

TEST(ErdosRenyi, RejectsImpossibleRequests)
{
    Rng rng(1);
    EXPECT_THROW(make_erdos_renyi(3, 100, rng), std::invalid_argument);
    EXPECT_THROW(make_erdos_renyi(1, 1, rng), std::invalid_argument);
}

TEST(ErdosRenyi, Deterministic)
{
    Rng a(5), b(5);
    CooGraph ga = make_erdos_renyi(20, 40, a);
    CooGraph gb = make_erdos_renyi(20, 40, b);
    EXPECT_EQ(ga.edges, gb.edges);
}

TEST(Molecule, SymmetricEdgesAndConnectedSkeleton)
{
    Rng rng(2);
    CooGraph g = make_molecule(25, rng);
    EXPECT_TRUE(g.valid());
    // Both directions present; forward block first.
    std::size_t bonds = g.num_edges() / 2;
    for (std::size_t b = 0; b < bonds; ++b) {
        EXPECT_EQ(g.edges[b].src, g.edges[bonds + b].dst);
        EXPECT_EQ(g.edges[b].dst, g.edges[bonds + b].src);
    }
    // Spanning tree: at least n-1 bonds; every node touched.
    EXPECT_GE(bonds, 24u);
    auto deg = g.out_degrees();
    for (auto d : deg)
        EXPECT_GE(d, 1u);
}

TEST(Molecule, AverageDegreeIsChemistryLike)
{
    Rng rng(3);
    double total_ratio = 0.0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
        CooGraph g = make_molecule(25, rng);
        total_ratio +=
            static_cast<double>(g.num_edges()) / g.num_nodes;
    }
    // MolHIV: 55.6 edges / 25.3 nodes ~ 2.2.
    double avg = total_ratio / trials;
    EXPECT_GT(avg, 1.8);
    EXPECT_LT(avg, 2.6);
}

TEST(Molecule, TinyGraphs)
{
    Rng rng(4);
    EXPECT_EQ(make_molecule(0, rng).num_edges(), 0u);
    EXPECT_EQ(make_molecule(1, rng).num_edges(), 0u);
    CooGraph pair = make_molecule(2, rng);
    EXPECT_EQ(pair.num_edges(), 2u); // one bond, both directions
}

TEST(KnnPointCloud, EveryNodeReceivesExactlyK)
{
    Rng rng(5);
    CooGraph g = make_knn_point_cloud(50, 16, rng);
    EXPECT_EQ(g.num_edges(), 50u * 16u);
    auto in = g.in_degrees();
    for (auto d : in)
        EXPECT_EQ(d, 16u);
}

TEST(KnnPointCloud, KClampedToNodeCount)
{
    Rng rng(5);
    CooGraph g = make_knn_point_cloud(5, 16, rng);
    EXPECT_EQ(g.num_edges(), 5u * 4u); // k clamped to n-1
}

TEST(KnnPointCloud, NoSelfLoops)
{
    Rng rng(6);
    CooGraph g = make_knn_point_cloud(30, 8, rng);
    for (const auto &e : g.edges)
        EXPECT_NE(e.src, e.dst);
}

TEST(BarabasiAlbert, SymmetricWithPowerLawHubs)
{
    Rng rng(7);
    CooGraph g = make_barabasi_albert(500, 2, rng);
    EXPECT_TRUE(g.valid());
    auto out = g.out_degrees();
    auto in = g.in_degrees();
    EXPECT_EQ(out, in); // symmetrized
    std::uint32_t max_deg = *std::max_element(out.begin(), out.end());
    double avg =
        static_cast<double>(g.num_edges()) / g.num_nodes;
    // Preferential attachment: hubs far above the mean.
    EXPECT_GT(max_deg, 4 * avg);
}

TEST(BarabasiAlbert, EdgeCountMatchesFormula)
{
    Rng rng(8);
    std::uint32_t m = 3;
    NodeId n = 100;
    CooGraph g = make_barabasi_albert(n, m, rng);
    // seed clique (m+1 choose 2) + m per remaining node, both dirs.
    std::size_t links = (m + 1) * m / 2 + (n - m - 1) * m;
    EXPECT_EQ(g.num_edges(), 2 * links);
}

TEST(BarabasiAlbert, ZeroMThrows)
{
    Rng rng(1);
    EXPECT_THROW(make_barabasi_albert(10, 0, rng),
                 std::invalid_argument);
}

TEST(Rmat, DeterministicWithHeavyTailedDegrees)
{
    Rng a(42);
    Rng b(42);
    CooGraph ga = make_rmat(1024, 8192, a);
    CooGraph gb = make_rmat(1024, 8192, b);
    EXPECT_EQ(ga.edges, gb.edges);
    EXPECT_EQ(ga.num_nodes, 1024u);
    EXPECT_EQ(ga.num_edges(), 8192u);
    for (const Edge &e : ga.edges) {
        ASSERT_LT(e.src, 1024u);
        ASSERT_LT(e.dst, 1024u);
    }

    // Skew: with the Graph500 parameters the hottest node draws far
    // more than its uniform share of edges.
    auto in = ga.in_degrees();
    std::uint32_t max_in = *std::max_element(in.begin(), in.end());
    EXPECT_GT(max_in, 10u * 8192u / 1024u);
}

TEST(Rmat, RejectsBadShapes)
{
    Rng rng(1);
    EXPECT_THROW(make_rmat(0, 10, rng), std::invalid_argument);
    EXPECT_THROW(make_rmat(1000, 10, rng), std::invalid_argument)
        << "non-power-of-two node count";
    EXPECT_THROW(make_rmat(16, 10, rng, 0.6, 0.3, 0.3),
                 std::invalid_argument)
        << "quadrant probabilities above 1";
}

TEST(PermuteNodeIds, PreservesStructureScramblesIds)
{
    CooGraph ring = make_ring_lattice(64, 2);
    Rng rng(0x5C);
    CooGraph shuffled = permute_node_ids(ring, rng);
    EXPECT_EQ(shuffled.num_nodes, ring.num_nodes);
    ASSERT_EQ(shuffled.num_edges(), ring.num_edges());
    EXPECT_NE(shuffled.edges, ring.edges);

    // Degree multiset is invariant under relabeling.
    auto deg_sorted = [](const CooGraph &g) {
        auto d = g.in_degrees();
        std::sort(d.begin(), d.end());
        return d;
    };
    EXPECT_EQ(deg_sorted(shuffled), deg_sorted(ring));
}

TEST(VirtualNode, ConnectsToAllNodesBothWays)
{
    Rng rng(9);
    CooGraph g = make_molecule(10, rng);
    std::size_t base_edges = g.num_edges();
    CooGraph vn = add_virtual_node(g);
    EXPECT_EQ(vn.num_nodes, 11u);
    EXPECT_EQ(vn.num_edges(), base_edges + 20u);
    // Original edges keep their positions (features stay aligned).
    for (std::size_t i = 0; i < base_edges; ++i)
        EXPECT_EQ(vn.edges[i], g.edges[i]);
    auto in = vn.in_degrees();
    auto out = vn.out_degrees();
    EXPECT_EQ(in[10], 10u);
    EXPECT_EQ(out[10], 10u);
}

} // namespace
} // namespace flowgnn
