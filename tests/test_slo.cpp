/**
 * @file
 * flowgnn::slo tests — the deterministic pins for deadline scheduling,
 * EASY backfill, layer-boundary preemption, and the elastic
 * autoscaler:
 *  - schedule-simulator pins: exact EDF finish order and lateness,
 *    kEdf == kFifoGang with equal deadlines, backfill makespans and
 *    the recorded head reservations, preemption yield points, the
 *    autoscaler's exact (cycle, target) timeline;
 *  - a 200-trace seeded property sweep: backfill never delays a
 *    reserved gang head, EDF degenerates to FIFO gang;
 *  - engine-level preemption: resume from every layer boundary is
 *    bit-identical to the uninterrupted run (token- and slice-driven);
 *  - the synthetic open-loop arrival generator's determinism + shape;
 *  - measured-occupancy pool energy against hand-computed traces;
 *  - the live pool: deadline metrics, JobSpec admission, elastic
 *    set_active_dies, live preemption bit-identity, and the
 *    metrics-driven Autoscaler shrinking an idle pool.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/engine.h"
#include "graph/generators.h"
#include "pool/arrivals.h"
#include "pool/autoscaler.h"
#include "pool/pool_energy.h"
#include "pool/schedule_sim.h"
#include "shard/sharded_engine.h"
#include "tensor/rng.h"
#include "testing_util.h"

namespace flowgnn {
namespace {

using testing::make_random_sample;

// ---- Simulator: EDF ----------------------------------------------------

TEST(SloSim, EdfOrdersByAbsoluteDeadlineAndAccountsLateness)
{
    // One die. j0 runs first either way; j2 arrives last with the
    // tightest absolute deadline (2 + 15 = 17). EDF runs it ahead of
    // j1, cutting its lateness from 13 to 3; FIFO order makes it wait.
    std::vector<SimJob> trace = {
        {{10}, 0, 0, 100, 0},
        {{10}, 1, 0, 200, 0},
        {{10}, 2, 0, 15, 0},
    };
    SimOptions edf;
    edf.num_dies = 1;
    edf.policy = PoolPolicy::kEdf;
    SimResult r = simulate_pool_schedule(trace, edf);
    EXPECT_EQ(r.job_finish(0), 10u);
    EXPECT_EQ(r.job_finish(2), 20u) << "tightest deadline jumps j1";
    EXPECT_EQ(r.job_finish(1), 30u);
    EXPECT_EQ(r.deadline_misses, 1u);
    EXPECT_EQ(r.lateness(2), 3u);
    EXPECT_EQ(r.lateness(0), 0u);
    EXPECT_EQ(r.lateness(1), 0u);

    // Deadlines feed lateness accounting under every policy.
    SimResult fifo =
        simulate_pool_schedule(trace, 1, PoolPolicy::kFifoGang);
    EXPECT_EQ(fifo.job_finish(2), 30u);
    EXPECT_EQ(fifo.deadline_misses, 1u);
    EXPECT_EQ(fifo.lateness(2), 13u);
    EXPECT_EQ(fifo.makespan, r.makespan) << "same work either way";
}

TEST(SloSim, EdfWithEqualDeadlinesIsFifoGang)
{
    // The PR-3 gang pin (start(1) = 20, makespan 37) must reproduce
    // exactly under kEdf when every job carries the same relative
    // deadline: equal deadlines order by arrival, ties FIFO.
    std::vector<SimJob> trace = {
        {{20, 20}, 0, 0, 1000, 0},
        {{2, 2, 2}, 0, 0, 1000, 0},
        {{15}, 0, 0, 1000, 0},
        {{15}, 0, 0, 1000, 0},
    };
    SimOptions edf;
    edf.num_dies = 4;
    edf.policy = PoolPolicy::kEdf;
    SimResult r = simulate_pool_schedule(trace, edf);
    EXPECT_EQ(r.job_start(1), 20u);
    EXPECT_EQ(r.makespan, 37u);
    SimResult gang =
        simulate_pool_schedule(trace, 4, PoolPolicy::kFifoGang);
    for (std::size_t j = 0; j < trace.size(); ++j) {
        EXPECT_EQ(r.job_start(j), gang.job_start(j)) << j;
        EXPECT_EQ(r.job_finish(j), gang.job_finish(j)) << j;
    }
}

// ---- Simulator: EASY backfill ------------------------------------------

TEST(SloSim, EasyBackfillFillsHolesWithoutDelayingHead)
{
    // The PR-3 head-of-line trace: plain gang idles two dies for 20
    // cycles (makespan 37). With backfill the singles run in the hole
    // (they provably finish by the head's reservation at t=20) and the
    // head still starts exactly at its reservation.
    std::vector<SimJob> trace = {
        {{20, 20}, 0, 0},
        {{2, 2, 2}, 0, 0},
        {{15}, 0, 0},
        {{15}, 0, 0},
    };
    SimOptions opt;
    opt.num_dies = 4;
    opt.policy = PoolPolicy::kFifoGang;
    opt.easy_backfill = true;
    SimResult r = simulate_pool_schedule(trace, opt);
    EXPECT_EQ(r.reservation(1), 20u);
    EXPECT_EQ(r.job_start(1), 20u) << "head starts at its reservation";
    EXPECT_EQ(r.job_start(2), 0u);
    EXPECT_EQ(r.job_start(3), 0u);
    EXPECT_EQ(r.makespan, 22u) << "vs 37 under plain gang";
    EXPECT_EQ(r.reservation(0), SimResult::kNoReservation);
}

TEST(SloSim, EasyBackfillExtraDieRuleAdmitsLongJob)
{
    // j2 (25 cycles) runs past the head's reservation (t=20), but the
    // head needs only 3 of 4 dies then — j2 fits in the extra die and
    // is admitted by the shadow rule without delaying the head.
    std::vector<SimJob> trace = {
        {{20, 20}, 0, 0},
        {{2, 2, 2}, 0, 0},
        {{25}, 0, 0},
    };
    SimOptions opt;
    opt.num_dies = 4;
    opt.policy = PoolPolicy::kFifoGang;
    opt.easy_backfill = true;
    SimResult r = simulate_pool_schedule(trace, opt);
    EXPECT_EQ(r.job_start(2), 0u) << "extra-die backfill";
    EXPECT_EQ(r.job_start(1), 20u);
    EXPECT_EQ(r.makespan, 25u);
}

TEST(SloSim, EasyBackfillDeniesJobThatWouldDelayHead)
{
    // A 2-wide 25-cycle job can neither finish by the reservation nor
    // fit in the single extra die — admitting it would push the head
    // past t=20, so it must wait behind the head instead.
    std::vector<SimJob> trace = {
        {{20, 20}, 0, 0},
        {{2, 2, 2}, 0, 0},
        {{25, 25}, 0, 0},
    };
    SimOptions opt;
    opt.num_dies = 4;
    opt.policy = PoolPolicy::kFifoGang;
    opt.easy_backfill = true;
    SimResult r = simulate_pool_schedule(trace, opt);
    EXPECT_EQ(r.job_start(1), 20u) << "head start is untouched";
    EXPECT_EQ(r.job_start(2), 22u);
    EXPECT_EQ(r.makespan, 47u);
    EXPECT_LE(r.job_start(2), r.reservation(2))
        << "j2's own reservation (taken once it became head)";
}

// ---- Property sweep: 200 seeded random traces --------------------------

namespace {

std::vector<SimJob>
random_trace(std::uint64_t seed, std::uint32_t &num_dies)
{
    Rng rng(seed);
    num_dies = 2 + static_cast<std::uint32_t>(rng.uniform_index(3));
    const std::size_t n = 3 + rng.uniform_index(6);
    std::vector<SimJob> trace;
    std::uint64_t arrival = 0;
    for (std::size_t j = 0; j < n; ++j) {
        SimJob job;
        const std::size_t width = 1 + rng.uniform_index(num_dies);
        for (std::size_t t = 0; t < width; ++t)
            job.task_cycles.push_back(1 + rng.uniform_index(50));
        arrival += rng.uniform_index(30);
        job.arrival = arrival;
        trace.push_back(std::move(job));
    }
    return trace;
}

} // namespace

TEST(SloSim, PropertyBackfillNeverDelaysReservedHead)
{
    // Over 200 seeded random traces: (a) every job that took a
    // reservation while it was the blocked gang head starts at or
    // before it; (b) the first job to block (whose plain-gang start
    // equals that first reservation exactly) is never started later by
    // turning backfill on; (c) backfill never lengthens any job's
    // start vs plain gang on these traces.
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        std::uint32_t dies = 0;
        const std::vector<SimJob> trace = random_trace(seed, dies);

        SimOptions plain;
        plain.num_dies = dies;
        plain.policy = PoolPolicy::kFifoGang;
        SimResult off = simulate_pool_schedule(trace, plain);

        SimOptions bf = plain;
        bf.easy_backfill = true;
        SimResult on = simulate_pool_schedule(trace, bf);

        bool first_reserved = false;
        for (std::size_t j = 0; j < trace.size(); ++j) {
            if (on.reservation(j) == SimResult::kNoReservation)
                continue;
            EXPECT_LE(on.job_start(j), on.reservation(j))
                << "seed " << seed << " job " << j;
            if (!first_reserved) {
                first_reserved = true;
                EXPECT_EQ(off.job_start(j), on.reservation(j))
                    << "seed " << seed
                    << ": plain-gang start IS the first reservation";
            }
            EXPECT_LE(on.job_start(j), off.job_start(j))
                << "seed " << seed << " job " << j;
        }
    }
}

TEST(SloSim, PropertyEdfDegeneratesToFifoGang)
{
    // With no deadlines (all sort as "latest"), kEdf must reproduce
    // kFifoGang schedules exactly — start and finish of every job.
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        std::uint32_t dies = 0;
        const std::vector<SimJob> trace = random_trace(seed, dies);
        SimResult gang =
            simulate_pool_schedule(trace, dies, PoolPolicy::kFifoGang);
        SimOptions edf;
        edf.num_dies = dies;
        edf.policy = PoolPolicy::kEdf;
        SimResult r = simulate_pool_schedule(trace, edf);
        ASSERT_EQ(r.makespan, gang.makespan) << "seed " << seed;
        for (std::size_t j = 0; j < trace.size(); ++j) {
            EXPECT_EQ(r.job_start(j), gang.job_start(j))
                << "seed " << seed << " job " << j;
            EXPECT_EQ(r.job_finish(j), gang.job_finish(j))
                << "seed " << seed << " job " << j;
        }
    }
}

// ---- Simulator: layer-boundary preemption ------------------------------

TEST(SloSim, PreemptionYieldsAtBoundaryAndRequeues)
{
    // One die, EDF. j0 (100 cycles, boundaries every 10) is running
    // when j1 arrives at t=25 with a much tighter deadline. j0 yields
    // at its next boundary (t=30), j1 runs 30-40 and makes its
    // deadline, j0 resumes with remainder + 5 cycles of checkpoint
    // overhead: 40 + (70 + 5) = 115.
    std::vector<SimJob> trace = {
        {{100}, 0, 0, 1000, 10},
        {{10}, 25, 0, 50, 0},
    };
    SimOptions opt;
    opt.num_dies = 1;
    opt.policy = PoolPolicy::kEdf;
    opt.enable_preemption = true;
    opt.preempt_overhead_cycles = 5;
    SimResult r = simulate_pool_schedule(trace, opt);
    EXPECT_EQ(r.preemptions, 1u);
    EXPECT_EQ(r.job_finish(1), 40u) << "meets its t=75 deadline";
    EXPECT_EQ(r.job_finish(0), 115u);
    EXPECT_EQ(r.deadline_misses, 0u);
    EXPECT_EQ(r.makespan, 115u);

    SimOptions no = opt;
    no.enable_preemption = false;
    SimResult base = simulate_pool_schedule(trace, no);
    EXPECT_EQ(base.preemptions, 0u);
    EXPECT_EQ(base.job_finish(1), 110u);
    EXPECT_EQ(base.deadline_misses, 1u);
    EXPECT_EQ(base.lateness(1), 35u);
}

// ---- Simulator: elastic autoscaling ------------------------------------

TEST(SloSim, AutoscalerTimelinePinnedOnBurst)
{
    // Nine 300-cycle singles land at t=0 on an 8-die pool capped at 2.
    // Queue pressure doubles capacity at the first two windows; the
    // drained tail scales back down one step as the last job finishes.
    std::vector<SimJob> trace(9, SimJob{{300}, 0, 0});
    AutoscalerConfig cfg;
    cfg.min_dies = 1;
    cfg.max_dies = 8;
    cfg.step_up = 2;
    cfg.step_down = 1;
    cfg.cooldown_windows = 0;
    cfg.scale_up_queue_per_die = 1.0;
    cfg.scale_down_util = 0.5;
    AutoscalerPolicy policy(cfg, /*initial=*/2);

    SimOptions opt;
    opt.num_dies = 8;
    opt.policy = PoolPolicy::kSpaceShare;
    opt.autoscaler = &policy;
    opt.window_cycles = 100;
    SimResult r = simulate_pool_schedule(trace, opt);

    const std::vector<std::pair<std::uint64_t, std::size_t>> want = {
        {0, 2}, {100, 4}, {200, 6}, {700, 5}};
    ASSERT_EQ(r.active_timeline.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(r.active_timeline[i].first, want[i].first) << i;
        EXPECT_EQ(r.active_timeline[i].second, want[i].second) << i;
    }
    EXPECT_EQ(r.makespan, 700u);
    EXPECT_EQ(policy.windows_seen(), 7u);
    EXPECT_EQ(policy.target(), 5u);
}

TEST(AutoscalerPolicyTest, StepSequenceWithCooldownPinned)
{
    AutoscalerConfig cfg;
    cfg.min_dies = 1;
    cfg.max_dies = 8;
    cfg.step_up = 2;
    cfg.step_down = 1;
    cfg.cooldown_windows = 2;
    cfg.scale_up_queue_per_die = 1.0;
    cfg.scale_down_util = 0.5;
    AutoscalerPolicy policy(cfg, 2);

    AutoscalerWindow pressure;
    pressure.busy_dies = 2.0;
    pressure.queue_depth = 5.0;
    AutoscalerWindow idle; // zeros

    // Pressure scales up then holds through the cooldown; sustained
    // pressure steps again the first eligible window; idleness decays
    // one step per eligible window.
    const std::size_t seq[] = {
        policy.step(pressure), // 4 (up, cooldown=2)
        policy.step(pressure), // 4 (cooling)
        policy.step(pressure), // 4 (cooling)
        policy.step(pressure), // 6 (up again)
        policy.step(idle),     // 6 (cooling)
        policy.step(idle),     // 6 (cooling)
        policy.step(idle),     // 5 (down)
    };
    const std::size_t want[] = {4, 4, 4, 6, 6, 6, 5};
    for (std::size_t i = 0; i < 7; ++i)
        EXPECT_EQ(seq[i], want[i]) << "window " << i;
    EXPECT_EQ(policy.windows_seen(), 7u);

    // The p99 trigger fires even with an empty queue.
    AutoscalerConfig lat = cfg;
    lat.scale_up_p99_ms = 10.0;
    lat.cooldown_windows = 0;
    AutoscalerPolicy p99(lat, 2);
    AutoscalerWindow slow;
    slow.queue_delay_p99_ms = 25.0;
    EXPECT_EQ(p99.step(slow), 4u);

    // Bounds: initial target clamps into [min, max].
    EXPECT_EQ(AutoscalerPolicy(cfg, 99).target(), 8u);
    EXPECT_EQ(AutoscalerPolicy(cfg, 0).target(), 1u);
}

// ---- Open-loop arrival generator ---------------------------------------

TEST(Arrivals, DeterministicDiurnalAndBurstShape)
{
    ArrivalPattern p;
    p.horizon_cycles = 2'000'000;
    p.base_rate_per_mcycle = 100.0;
    p.diurnal_amplitude = 0.5;
    p.diurnal_period_cycles = 500'000;
    p.burst_factor = 10.0;
    p.burst_start_cycles = 1'000'000;
    p.burst_len_cycles = 200'000;
    p.seed = 7;

    // Rate function pins: sin(0) = 0, peak at a quarter period, 10x
    // inside the burst window.
    EXPECT_DOUBLE_EQ(arrival_rate_at(p, 0), 100.0);
    EXPECT_NEAR(arrival_rate_at(p, 125'000), 150.0, 1e-6);
    EXPECT_NEAR(arrival_rate_at(p, 1'125'000), 1500.0, 1e-3);
    ArrivalPattern no_burst = p;
    no_burst.burst_len_cycles = 0;
    EXPECT_DOUBLE_EQ(arrival_rate_at(p, 1'200'000),
                     arrival_rate_at(no_burst, 1'200'000))
        << "burst window is half-open";

    const std::vector<std::uint64_t> a = generate_arrivals(p);
    const std::vector<std::uint64_t> b = generate_arrivals(p);
    EXPECT_EQ(a, b) << "bit-reproducible under a seed";
    ASSERT_FALSE(a.empty());
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    EXPECT_LT(a.back(), p.horizon_cycles);

    // The 10x burst must visibly concentrate arrivals: compare the
    // burst window's count against the same window with the burst off.
    auto count_in = [](const std::vector<std::uint64_t> &v,
                       std::uint64_t lo, std::uint64_t hi) {
        return static_cast<std::size_t>(
            std::count_if(v.begin(), v.end(), [&](std::uint64_t t) {
                return t >= lo && t < hi;
            }));
    };
    ArrivalPattern flat = p;
    flat.burst_len_cycles = 0;
    const std::vector<std::uint64_t> base = generate_arrivals(flat);
    const std::size_t burst_n =
        count_in(a, p.burst_start_cycles,
                 p.burst_start_cycles + p.burst_len_cycles);
    const std::size_t flat_n =
        count_in(base, p.burst_start_cycles,
                 p.burst_start_cycles + p.burst_len_cycles);
    EXPECT_GT(burst_n, 5 * std::max<std::size_t>(flat_n, 1));
}

// ---- Measured-occupancy pool energy ------------------------------------

TEST(PoolEnergy, MatchesHandComputedOccupancyTrace)
{
    // D=2 space-share: die0 busy 100 cycles, die1 busy 50, makespan
    // 100. At 1 MHz (1000 cycles/ms) that is 0.1 ms latency with
    // per-die busy {0.1, 0.05} ms — die1 idles half the makespan.
    std::vector<SimJob> trace = {{{100}, 0, 0}, {{50}, 0, 0}};
    SimResult r =
        simulate_pool_schedule(trace, 2, PoolPolicy::kSpaceShare);
    ASSERT_EQ(r.makespan, 100u);
    ASSERT_EQ(r.die_busy[0], 100u);
    ASSERT_EQ(r.die_busy[1], 50u);

    MultiDieEnergy got = pool_schedule_energy(r, /*clock_mhz=*/1.0);
    MultiDieEnergy want =
        multi_die_energy(2, 0.1, 0, 1.0, 0, 0, {0.1, 0.05});
    EXPECT_DOUBLE_EQ(got.busy_mj, want.busy_mj);
    EXPECT_DOUBLE_EQ(got.idle_mj, want.idle_mj);
    EXPECT_DOUBLE_EQ(got.compute_mj, want.compute_mj);
    EXPECT_DOUBLE_EQ(got.total_mj, want.total_mj);
    EXPECT_GT(got.idle_mj, 0.0) << "die1's 0.05 ms hole is charged";
    EXPECT_DOUBLE_EQ(got.compute_mj, got.busy_mj + got.idle_mj);

    EXPECT_THROW(pool_schedule_energy(r, 0.0), std::invalid_argument);
}

TEST(PoolEnergy, GangIdleHolesCostMoreThanSpaceShare)
{
    // Same work, different schedules: plain gang's head-of-line holes
    // (makespan 37 vs 20) burn measurably more idle energy.
    std::vector<SimJob> trace = {
        {{20, 20}, 0, 0},
        {{2, 2, 2}, 0, 0},
        {{15}, 0, 0},
        {{15}, 0, 0},
    };
    SimResult gang =
        simulate_pool_schedule(trace, 4, PoolPolicy::kFifoGang);
    SimResult share =
        simulate_pool_schedule(trace, 4, PoolPolicy::kSpaceShare);
    MultiDieEnergy eg = pool_schedule_energy(gang, 1.0);
    MultiDieEnergy es = pool_schedule_energy(share, 1.0);
    EXPECT_GT(eg.idle_mj, es.idle_mj);
    EXPECT_GT(eg.total_mj, es.total_mj);
    EXPECT_DOUBLE_EQ(eg.busy_mj, es.busy_mj)
        << "identical work, identical active energy";
}

// ---- Engine: layer-boundary checkpoint/resume --------------------------

TEST(EnginePreemption, SingleStageSlicesBitIdentical)
{
    // Drive the run one stage per segment via max_stages and compare
    // the final result with the uninterrupted run: embeddings,
    // prediction, and cycle-exact RunStats.
    Model model = make_model(ModelKind::kGin, 9, 3);
    Engine engine(model, {});
    GraphSample sample = make_random_sample(
        testing::make_random_graph(1, 60, 0x510), 9, 3, 0x511);
    RunResult ref = engine.run(sample);

    RunWorkspace ws;
    RunResult got;
    LayerCheckpoint ckpt;
    RunOptions opts;
    std::size_t segments = 0;
    while (engine.run_resumable(SampleRef(sample), opts, ws, ckpt, got,
                                /*max_stages=*/1) ==
           SegmentOutcome::kPreempted) {
        ++segments;
        EXPECT_EQ(ckpt.next_stage, segments)
            << "one stage per segment";
        EXPECT_GT(ckpt.checkpoint_words(), 0u);
    }
    EXPECT_GT(segments, 0u) << "a multi-stage model must yield";
    EXPECT_TRUE(got.embeddings == ref.embeddings);
    EXPECT_EQ(got.prediction, ref.prediction);
    EXPECT_EQ(got.stats.total_cycles, ref.stats.total_cycles);
    EXPECT_EQ(ckpt.next_stage, 0u) << "completion resets the checkpoint";
}

TEST(EnginePreemption, ResumeFromEveryBoundaryBitIdentical)
{
    Model model = make_model(ModelKind::kGin, 9, 3);
    Engine engine(model, {});
    GraphSample sample = make_random_sample(
        testing::make_random_graph(2, 80, 0x520), 9, 3, 0x521);
    RunResult ref = engine.run(sample);

    for (std::size_t k = 1;; ++k) {
        RunWorkspace ws;
        RunResult got;
        LayerCheckpoint ckpt;
        RunOptions opts;
        SegmentOutcome first = engine.run_resumable(
            SampleRef(sample), opts, ws, ckpt, got, k);
        if (first == SegmentOutcome::kComplete)
            break; // k reached the stage count: no boundary left
        ASSERT_EQ(ckpt.next_stage, k);
        // Resume on a *fresh* engine of the same config: the
        // checkpoint carries everything that is not a pure function
        // of (sample, config).
        Engine other(model, {});
        RunWorkspace ws2;
        ASSERT_EQ(other.run_resumable(SampleRef(sample), opts, ws2,
                                      ckpt, got),
                  SegmentOutcome::kComplete);
        EXPECT_TRUE(got.embeddings == ref.embeddings) << "k=" << k;
        EXPECT_EQ(got.prediction, ref.prediction) << "k=" << k;
        EXPECT_EQ(got.stats.total_cycles, ref.stats.total_cycles)
            << "k=" << k;
    }
}

TEST(EnginePreemption, TokenYieldsAtNextBoundaryWithProgress)
{
    Model model = make_model(ModelKind::kGin, 9, 3);
    Engine engine(model, {});
    GraphSample sample = make_random_sample(
        testing::make_random_graph(0, 50, 0x530), 9, 3, 0x531);
    RunResult ref = engine.run(sample);

    PreemptToken token;
    token.request(); // pre-armed: still guarantees one stage
    RunOptions opts;
    opts.preempt = &token;
    RunWorkspace ws;
    RunResult got;
    LayerCheckpoint ckpt;
    ASSERT_EQ(engine.run_resumable(SampleRef(sample), opts, ws, ckpt,
                                   got),
              SegmentOutcome::kPreempted);
    EXPECT_EQ(ckpt.next_stage, 1u) << "progress guarantee: one stage";
    token.reset();
    EXPECT_FALSE(token.requested());
    ASSERT_EQ(engine.run_resumable(SampleRef(sample), opts, ws, ckpt,
                                   got),
              SegmentOutcome::kComplete);
    EXPECT_TRUE(got.embeddings == ref.embeddings);
    EXPECT_EQ(got.stats.total_cycles, ref.stats.total_cycles);
}

// ---- Live pool: deadlines, elasticity, preemption ----------------------

TEST(PoolSchedulerSlo, DeadlineMetricsAndJobSpecAdmission)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample sample = make_random_sample(
        make_ring_lattice(256, 2), 16, 0, 0x540);
    PoolConfig pool;
    pool.num_dies = 1;
    pool.policy = PoolPolicy::kEdf;
    pool.start_paused = true;
    PoolScheduler scheduler(model, {}, pool);

    JobSpec spec;
    spec.deadline_ms = 1e-6; // unmeetable: queueing alone exceeds it
    auto f1 = scheduler.submit(sample, RunOptions{}, spec);
    auto f2 = scheduler.submit(sample, RunOptions{}, spec);
    scheduler.start();
    scheduler.drain();
    EXPECT_NO_THROW(f1.get());
    EXPECT_NO_THROW(f2.get());

    PoolStats st = scheduler.stats();
    EXPECT_EQ(st.deadline_misses, 2u);
    EXPECT_GT(st.lateness_p50_ms, 0.0);
    EXPECT_GE(st.lateness_p99_ms, st.lateness_p50_ms);
    EXPECT_EQ(st.active_dies, 1u);
    EXPECT_EQ(st.preemptions, 0u);
    obs::MetricsSnapshot snap = scheduler.metrics()->snapshot();
    EXPECT_EQ(snap.counters.at("pool.deadline_misses_total"), 2u);
    EXPECT_EQ(snap.histograms.at("pool.lateness_ms").count, 2u);
}

TEST(PoolSchedulerSlo, SetActiveDiesCapsConcurrencyButNeverDeadlocks)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample small = make_random_sample(
        make_ring_lattice(2000, 2), 16, 0, 0x550);
    PoolConfig pool;
    pool.num_dies = 4;
    pool.policy = PoolPolicy::kSpaceShare;
    pool.start_paused = true;
    PoolScheduler scheduler(model, {}, pool);
    scheduler.set_active_dies(1);
    EXPECT_EQ(scheduler.active_dies(), 1u);

    std::vector<std::future<RunResult>> fs;
    for (int i = 0; i < 3; ++i)
        fs.push_back(scheduler.submit(small));
    scheduler.start();
    scheduler.drain();
    for (auto &f : fs)
        EXPECT_NO_THROW(f.get());
    PoolStats st = scheduler.stats();
    EXPECT_EQ(st.peak_busy_dies, 1u)
        << "cap 1 must serialize a 4-die pool";
    EXPECT_EQ(st.active_dies, 1u);

    // A job wider than the cap still runs: the effective cap rises to
    // the widest pending job instead of deadlocking the gang.
    ShardConfig shard;
    shard.num_shards = 2;
    EngineConfig cfg;
    cfg.p_node = 1;
    PoolConfig pool2;
    pool2.num_dies = 4;
    pool2.start_paused = true;
    PoolScheduler wide(model, cfg, pool2);
    wide.set_active_dies(1);
    GraphSample big = make_random_sample(
        make_ring_lattice(4000, 2), 16, 0, 0x551);
    auto fw = wide.submit_sharded(big, shard);
    wide.start();
    EXPECT_NO_THROW(fw.get());
    EXPECT_EQ(wide.stats().sharded.completed, 1u);
}

TEST(PoolSchedulerSlo, LivePreemptionKeepsResultsBitIdentical)
{
    // One die, priority policy with preemption. A long low-priority
    // GCN-16 run is underway when a high-priority job is admitted; the
    // scheduler requests a layer-boundary checkpoint, runs the urgent
    // job, resumes the victim — and both results must equal isolated
    // runs bit for bit.
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    EngineConfig cfg;
    GraphSample long_job = make_random_sample(
        make_ring_lattice(40000, 2), 16, 0, 0x560);
    GraphSample urgent = make_random_sample(
        make_ring_lattice(500, 2), 16, 0, 0x561);

    PoolConfig pool;
    pool.num_dies = 1;
    pool.policy = PoolPolicy::kPriority;
    pool.enable_preemption = true;
    pool.preempt_priority_gap = 1;
    pool.start_paused = true;
    PoolScheduler scheduler(model, cfg, pool);

    JobSpec low;
    low.priority = 0;
    auto fl = scheduler.submit(long_job, RunOptions{}, low);
    scheduler.start();
    // Wait until the long job is actually on the die, then admit the
    // urgent one mid-run.
    while (scheduler.stats().peak_busy_dies == 0)
        std::this_thread::yield();
    JobSpec high;
    high.priority = 5;
    auto fu = scheduler.submit(urgent, RunOptions{}, high);
    RunResult rl = fl.get();
    RunResult ru = fu.get();
    scheduler.drain();

    Engine reference(model, cfg);
    RunResult il = reference.run(long_job);
    RunResult iu = reference.run(urgent);
    EXPECT_TRUE(rl.embeddings == il.embeddings);
    EXPECT_EQ(rl.prediction, il.prediction);
    EXPECT_EQ(rl.stats.total_cycles, il.stats.total_cycles)
        << "resume must not perturb modeled timing";
    EXPECT_TRUE(ru.embeddings == iu.embeddings);
    EXPECT_EQ(ru.prediction, iu.prediction);
    EXPECT_GE(scheduler.stats().preemptions, 1u)
        << "the 16 layer boundaries leave ample room to yield";
}

TEST(PoolSchedulerSlo, LiveEasyBackfillRunsShortJobInTheHole)
{
    // D=2, FIFO gang with backfill. j0 (long single, with a runtime
    // estimate) holds one die; j1 wants both dies and blocks; j2 is a
    // tiny single whose estimate provably fits before j0's finish — it
    // must run in the hole. Completion order against j0 itself is too
    // noisy to assert on a loaded single-core host; the robust
    // observable is the gang job: backfilled, the tiny job completes
    // before the wide job can even start (it needs both dies), while
    // plain FIFO order would run the tiny job last.
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    EngineConfig cfg;
    Engine probe(model, cfg);
    GraphSample long_job = make_random_sample(
        make_ring_lattice(100000, 2), 16, 0, 0x570);
    GraphSample wide = make_random_sample(
        make_ring_lattice(20000, 2), 16, 0, 0x571);
    GraphSample tiny = make_random_sample(
        make_ring_lattice(64, 2), 16, 0, 0x572);
    const std::uint64_t long_cycles =
        probe.run(long_job).stats.total_cycles;
    const std::uint64_t tiny_cycles =
        probe.run(tiny).stats.total_cycles;
    ASSERT_LT(tiny_cycles * 10, long_cycles);

    ShardConfig two;
    two.num_shards = 2;
    PoolConfig pool;
    pool.num_dies = 2;
    pool.policy = PoolPolicy::kFifoGang;
    pool.easy_backfill = true;
    pool.start_paused = true;
    PoolScheduler scheduler(model, cfg, pool);

    JobSpec js0;
    js0.estimated_task_cycles = long_cycles;
    auto f0 = scheduler.submit(long_job, RunOptions{}, js0);
    JobSpec js1;
    js1.estimated_task_cycles = tiny_cycles;
    auto f1 = scheduler.submit_sharded(wide, two, RunOptions{}, js1);
    JobSpec js2;
    js2.estimated_task_cycles = tiny_cycles;
    auto f2 = scheduler.submit(tiny, RunOptions{}, js2);
    scheduler.start();

    // The backfilled single must be done before the blocked gang head
    // can have started (both dies free only after j0 AND the hole
    // drain); without backfill FIFO would run it last, after the head.
    f2.wait();
    EXPECT_NE(f1.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "tiny job finished before the wide gang job => backfilled";
    EXPECT_NO_THROW(f0.get());
    EXPECT_NO_THROW(f1.get());
    EXPECT_NO_THROW(f2.get());
    EXPECT_EQ(scheduler.stats().completed(), 3u);
}

TEST(PoolSchedulerSlo, AutoscalerShrinksIdlePoolToMin)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    PoolConfig pool;
    pool.num_dies = 4;
    PoolScheduler scheduler(model, {}, pool);
    EXPECT_EQ(scheduler.active_dies(), 4u);

    AutoscalerConfig cfg;
    cfg.min_dies = 1;
    cfg.max_dies = 4;
    cfg.cooldown_windows = 0;
    cfg.scale_down_util = 0.5;
    cfg.interval_ms = 2.0;
    {
        Autoscaler scaler(scheduler, cfg);
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::seconds(10);
        while (scheduler.active_dies() > 1 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_EQ(scheduler.active_dies(), 1u)
            << "an idle pool decays to min_dies";
        EXPECT_EQ(scaler.target(), 1u);
        EXPECT_GE(scaler.windows_seen(), 3u);
    } // destructor joins the control loop

    // Work still completes under the shrunk cap.
    GraphSample sample = make_random_sample(
        make_ring_lattice(256, 2), 16, 0, 0x580);
    EXPECT_NO_THROW(scheduler.submit(sample).get());
    EXPECT_EQ(scheduler.stats().active_dies, 1u);
}

} // namespace
} // namespace flowgnn
