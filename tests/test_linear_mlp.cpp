/** @file Linear / MLP layer unit tests. */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/linear.h"
#include "tensor/mlp.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

TEST(Linear, ZeroWeightsYieldBias)
{
    Linear lin(3, 2);
    lin.bias_ref() = {1.0f, -1.0f};
    Vec y = lin.forward({5, 6, 7});
    EXPECT_EQ(y, (Vec{1.0f, -1.0f}));
}

TEST(Linear, KnownMatrixVectorProduct)
{
    Linear lin(2, 2);
    lin.weight()(0, 0) = 1.0f;
    lin.weight()(0, 1) = 2.0f;
    lin.weight()(1, 0) = -1.0f;
    lin.weight()(1, 1) = 0.5f;
    lin.bias_ref() = {10.0f, 0.0f};
    Vec y = lin.forward({3.0f, 4.0f});
    EXPECT_FLOAT_EQ(y[0], 10.0f + 3.0f + 8.0f);
    EXPECT_FLOAT_EQ(y[1], -3.0f + 2.0f);
}

TEST(Linear, PartialAccumulateEqualsForward)
{
    Rng rng(3);
    Linear lin(10, 7);
    lin.init_glorot(rng);
    Vec x(10);
    for (auto &v : x)
        v = static_cast<float>(rng.uniform(-1, 1));

    // Accumulating in Papply-sized chunks must equal one full pass —
    // this is the NT unit's correctness contract.
    for (std::size_t chunk : {1u, 2u, 3u, 4u, 10u}) {
        Vec acc = lin.bias();
        for (std::size_t b = 0; b < 10; b += chunk)
            lin.accumulate(acc, x, b, std::min<std::size_t>(b + chunk, 10));
        EXPECT_EQ(acc, lin.forward(x)) << "chunk=" << chunk;
    }
}

TEST(Linear, DimensionChecks)
{
    Linear lin(3, 2);
    EXPECT_THROW(lin.forward({1, 2}), std::invalid_argument);
    Vec acc(2, 0.0f);
    Vec x{1, 2, 3};
    EXPECT_THROW(lin.accumulate(acc, x, 2, 5), std::invalid_argument);
    Vec bad_acc(3, 0.0f);
    EXPECT_THROW(lin.accumulate(bad_acc, x, 0, 3), std::invalid_argument);
}

TEST(Linear, GlorotBoundsRespectFanInOut)
{
    Rng rng(1);
    Linear lin(50, 50);
    lin.init_glorot(rng);
    double limit = std::sqrt(6.0 / 100.0);
    for (std::size_t o = 0; o < 50; ++o)
        for (std::size_t i = 0; i < 50; ++i) {
            EXPECT_LE(lin.weight()(o, i), limit);
            EXPECT_GE(lin.weight()(o, i), -limit);
        }
}

TEST(Linear, GlorotIsSeedDeterministic)
{
    Rng a(9), b(9);
    Linear la(8, 8), lb(8, 8);
    la.init_glorot(a);
    lb.init_glorot(b);
    EXPECT_EQ(la.weight(), lb.weight());
}

TEST(Linear, MacsCount)
{
    EXPECT_EQ(Linear(10, 7).macs(), 70u);
    EXPECT_EQ(Linear(1, 1).macs(), 1u);
}

TEST(Mlp, DimsAndLayerCount)
{
    Mlp mlp({80, 40, 20, 1});
    EXPECT_EQ(mlp.num_layers(), 3u);
    EXPECT_EQ(mlp.in_dim(), 80u);
    EXPECT_EQ(mlp.out_dim(), 1u);
    EXPECT_EQ(mlp.macs(), 80u * 40 + 40 * 20 + 20 * 1);
}

TEST(Mlp, RequiresTwoDims)
{
    EXPECT_THROW(Mlp({5}), std::invalid_argument);
}

TEST(Mlp, SingleLayerEqualsLinear)
{
    Rng rng(4);
    Mlp mlp({6, 3});
    mlp.init_glorot(rng);
    Vec x{1, -1, 2, -2, 0.5, 0};
    EXPECT_EQ(mlp.forward(x), mlp.layer(0).forward(x));
}

TEST(Mlp, HiddenActivationApplied)
{
    // Weights forcing a negative hidden pre-activation: ReLU must zero
    // it, so the output equals the final bias.
    Mlp mlp({1, 1, 1}, Activation::kRelu);
    mlp.layer(0).weight()(0, 0) = -1.0f;
    mlp.layer(1).weight()(0, 0) = 5.0f;
    mlp.layer(1).bias_ref() = {2.0f};
    Vec y = mlp.forward({3.0f});
    EXPECT_FLOAT_EQ(y[0], 2.0f);
}

TEST(Mlp, FinalActivationOptional)
{
    Mlp relu_out({1, 1}, Activation::kRelu, Activation::kRelu);
    relu_out.layer(0).weight()(0, 0) = -1.0f;
    EXPECT_FLOAT_EQ(relu_out.forward({2.0f})[0], 0.0f);

    Mlp identity_out({1, 1}, Activation::kRelu, Activation::kIdentity);
    identity_out.layer(0).weight()(0, 0) = -1.0f;
    EXPECT_FLOAT_EQ(identity_out.forward({2.0f})[0], -2.0f);
}

} // namespace
} // namespace flowgnn
