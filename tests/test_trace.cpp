/** @file Execution-trace capture and Chrome-export tests. */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "core/engine.h"
#include "core/trace.h"
#include "datasets/dataset.h"

namespace flowgnn {
namespace {

RunStats
traced_run(ModelKind kind = ModelKind::kGin)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 3);
    Model m = make_model(kind, s.node_dim(), s.edge_dim());
    RunOptions opts;
    opts.capture_trace = true;
    return Engine(m, {}).run(s, opts).stats;
}

TEST(Trace, DisabledByDefault)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 3);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    RunStats st = Engine(m, {}).run(s).stats;
    EXPECT_TRUE(st.trace.empty());
}

TEST(Trace, CapturesAllThreeEventKinds)
{
    RunStats st = traced_run();
    EXPECT_FALSE(st.trace.empty());
    bool acc = false, out = false, mp = false;
    for (const auto &e : st.trace) {
        acc |= (e.kind == TraceKind::kNtAccumulate);
        out |= (e.kind == TraceKind::kNtOutput);
        mp |= (e.kind == TraceKind::kMpWork);
    }
    EXPECT_TRUE(acc);
    EXPECT_TRUE(out);
    EXPECT_TRUE(mp);
}

TEST(Trace, EventsWellFormedAndWithinRun)
{
    RunStats st = traced_run();
    for (const auto &e : st.trace) {
        EXPECT_LT(e.start, e.end);
        EXPECT_LE(e.end, st.total_cycles);
    }
}

TEST(Trace, PerUnitIntervalsDoNotOverlap)
{
    RunStats st = traced_run();
    // Group by (kind-class, unit): accumulate vs output can overlap on
    // one NT unit (ping-pong), but two accumulates cannot.
    std::map<std::pair<int, std::uint32_t>, std::vector<TraceEvent>>
        lanes;
    for (const auto &e : st.trace)
        lanes[{static_cast<int>(e.kind), e.unit}].push_back(e);
    for (auto &[key, events] : lanes) {
        std::sort(events.begin(), events.end(),
                  [](const TraceEvent &a, const TraceEvent &b) {
                      return a.start < b.start;
                  });
        for (std::size_t i = 1; i < events.size(); ++i)
            EXPECT_GE(events[i].start, events[i - 1].end)
                << "lane kind=" << key.first << " unit=" << key.second;
    }
}

TEST(Trace, EveryNodeAccumulatedEveryPhase)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 3);
    Model m = make_model(ModelKind::kGcn, s.node_dim(), s.edge_dim());
    RunOptions opts;
    opts.capture_trace = true;
    RunStats st = Engine(m, {}).run(s, opts).stats;
    std::size_t acc_events = 0;
    for (const auto &e : st.trace)
        acc_events += (e.kind == TraceKind::kNtAccumulate);
    // 6 stages (encoder + 5 convs), every node accumulated once each.
    EXPECT_EQ(acc_events, std::size_t(s.num_nodes()) * 6);
}

TEST(Trace, ChromeExportIsValidJsonArray)
{
    RunStats st = traced_run();
    std::ostringstream os;
    write_chrome_trace(os, st.trace);
    std::string json = os.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("nt-accumulate"), std::string::npos);
    EXPECT_NE(json.find("mp-work"), std::string::npos);
    // Balanced braces: every event object closes.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, EmptyTraceExportsEmptyArray)
{
    std::ostringstream os;
    write_chrome_trace(os, {});
    EXPECT_EQ(os.str(), "[\n\n]\n");
}

TEST(Trace, KindNames)
{
    EXPECT_STREQ(trace_kind_name(TraceKind::kNtAccumulate),
                 "nt-accumulate");
    EXPECT_STREQ(trace_kind_name(TraceKind::kMpWork), "mp-work");
}

} // namespace
} // namespace flowgnn
