/**
 * @file
 * Shared helpers for the fuzz/differential suites: deterministic
 * random GraphSamples over the library's synthetic graph generators.
 */
#ifndef FLOWGNN_TESTS_TESTING_UTIL_H
#define FLOWGNN_TESTS_TESTING_UTIL_H

#include "graph/generators.h"
#include "graph/sample.h"
#include "tensor/rng.h"

namespace flowgnn::testing {

/** Wraps a graph with deterministic random node/edge features. */
inline GraphSample
make_random_sample(CooGraph graph, std::size_t node_dim,
                   std::size_t edge_dim, std::uint64_t seed)
{
    GraphSample s;
    s.graph = std::move(graph);
    Rng rng(seed);
    s.node_features = Matrix(s.graph.num_nodes, node_dim);
    for (std::size_t r = 0; r < s.node_features.rows(); ++r)
        for (std::size_t c = 0; c < node_dim; ++c)
            s.node_features(r, c) =
                static_cast<float>(rng.normal(0.0, 0.5));
    if (edge_dim > 0) {
        s.edge_features = Matrix(s.graph.num_edges(), edge_dim);
        for (std::size_t r = 0; r < s.edge_features.rows(); ++r)
            for (std::size_t c = 0; c < edge_dim; ++c)
                s.edge_features(r, c) =
                    static_cast<float>(rng.normal(0.0, 0.5));
    }
    return s;
}

/** Deterministic random graph; `flavor` rotates the generator family
 * so a fuzz loop covers chemistry-, random-, and power-law-shaped
 * structure. */
inline CooGraph
make_random_graph(std::uint32_t flavor, NodeId num_nodes,
                  std::uint64_t seed)
{
    Rng rng(seed);
    switch (flavor % 3) {
      case 0:
        return make_molecule(num_nodes, rng);
      case 1:
        return make_erdos_renyi(num_nodes, 2 * std::size_t(num_nodes),
                                rng);
      default:
        return make_barabasi_albert(num_nodes, 2, rng);
    }
}

} // namespace flowgnn::testing

#endif // FLOWGNN_TESTS_TESTING_UTIL_H
