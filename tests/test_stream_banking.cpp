/** @file Stream pipelining and balanced-banking ablation tests. */
#include <gtest/gtest.h>

#include <numeric>

#include "core/engine.h"
#include "serve/stream.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

TEST(StreamRunner, SingleGraphEqualsSequential)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    InferenceService service(m);
    StreamRunner runner(service);
    SampleStream stream(DatasetKind::kMolHiv, 1);
    StreamRunStats st = runner.run(stream, 1);
    EXPECT_EQ(st.pipelined_cycles, st.sequential_cycles);
    EXPECT_DOUBLE_EQ(st.throughput_speedup(), 1.0);
}

TEST(StreamRunner, PipeliningNeverSlower)
{
    GraphSample s = make_sample(DatasetKind::kHep, 0);
    Model m = make_model(ModelKind::kGcn, s.node_dim(), s.edge_dim());
    InferenceService service(m);
    StreamRunner runner(service);
    SampleStream stream(DatasetKind::kHep, 32);
    StreamRunStats st = runner.run(stream, 32);
    EXPECT_LE(st.pipelined_cycles, st.sequential_cycles);
    EXPECT_GE(st.throughput_speedup(), 1.0);
    EXPECT_GT(st.graphs_per_second(300.0), 0.0);
}

TEST(StreamRunner, SteadyStateBoundedByStageMax)
{
    // The pipelined stream can never beat its slower stage: total
    // cycles >= max(sum of loads, sum of computes).
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    Engine engine(m, {});
    std::uint64_t load_sum = 0, compute_sum = 0;
    SampleStream probe(DatasetKind::kMolHiv, 16);
    for (int i = 0; i < 16; ++i) {
        RunResult r = engine.run(probe.next());
        load_sum += r.stats.load_cycles;
        compute_sum += r.stats.total_cycles - r.stats.load_cycles;
    }
    InferenceService service(m);
    StreamRunner runner(service);
    SampleStream stream(DatasetKind::kMolHiv, 16);
    StreamRunStats st = runner.run(stream, 16);
    EXPECT_GE(st.pipelined_cycles, std::max(load_sum, compute_sum));
    EXPECT_LE(st.pipelined_cycles, load_sum + compute_sum);
}

TEST(StreamRunner, ZeroGraphsIsEmpty)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    InferenceService service(m);
    StreamRunner runner(service);
    SampleStream stream(DatasetKind::kMolHiv, 4);
    StreamRunStats st = runner.run(stream, 0);
    EXPECT_EQ(st.pipelined_cycles, 0u);
    EXPECT_EQ(st.graphs, 0u);
}

TEST(StreamRunner, WorksOnPausedAndRejectingServices)
{
    // The runner must start a parked service and keep its in-flight
    // window within queue capacity, so a kReject service never sheds
    // stream traffic.
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    ServiceConfig svc;
    svc.replicas = 2;
    svc.queue_capacity = 2;
    svc.admission = AdmissionPolicy::kReject;
    svc.start_paused = true;
    InferenceService service(m, {}, svc);
    StreamRunner runner(service);
    SampleStream stream(DatasetKind::kMolHiv, 16);
    StreamRunStats st = runner.run(stream, 16);
    EXPECT_EQ(st.graphs, 16u);
    EXPECT_GT(st.pipelined_cycles, 0u);
    EXPECT_EQ(service.stats().rejected, 0u);
    EXPECT_EQ(service.stats().completed, 16u);
}

CooGraph
hub_graph(NodeId n)
{
    // A star: every edge points at node 0 — the worst case for
    // modular banking (one bank owns everything).
    CooGraph g;
    g.num_nodes = n;
    for (NodeId i = 1; i < n; ++i)
        g.edges.push_back({i, 0});
    return g;
}

TEST(BalancedBanking, AssignmentIsValidPartition)
{
    Rng rng(1);
    CooGraph g = make_barabasi_albert(200, 2, rng);
    auto assignment = balanced_bank_assignment(g, 4);
    ASSERT_EQ(assignment.size(), 200u);
    for (auto b : assignment)
        EXPECT_LT(b, 4u);
    auto counts = bank_edge_counts(g, assignment, 4);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(),
                              std::size_t{0}),
              g.num_edges());
}

TEST(BalancedBanking, ImprovesSkewedGraphs)
{
    // Power-law hubs: greedy least-loaded must beat the modular hash.
    Rng rng(2);
    CooGraph g = make_barabasi_albert(400, 3, rng);
    for (std::uint32_t p : {4u, 8u}) {
        double modulo = workload_imbalance(g, p);
        double balanced = workload_imbalance(
            bank_edge_counts(g, balanced_bank_assignment(g, p), p));
        EXPECT_LE(balanced, modulo) << "Pedge=" << p;
    }
}

TEST(BalancedBanking, StarGraphStillOneBank)
{
    // A single hub cannot be split: both policies put all edges on one
    // bank (node granularity is the assignment unit).
    CooGraph g = hub_graph(32);
    auto assignment = balanced_bank_assignment(g, 4);
    auto counts = bank_edge_counts(g, assignment, 4);
    EXPECT_EQ(*std::max_element(counts.begin(), counts.end()),
              g.num_edges());
}

TEST(BalancedBanking, InputValidation)
{
    CooGraph g = hub_graph(4);
    EXPECT_THROW(balanced_bank_assignment(g, 0), std::invalid_argument);
    std::vector<std::uint32_t> short_assignment(2, 0);
    EXPECT_THROW(bank_edge_counts(g, short_assignment, 2),
                 std::invalid_argument);
    std::vector<std::uint32_t> bad_bank(4, 7);
    EXPECT_THROW(bank_edge_counts(g, bad_bank, 2),
                 std::invalid_argument);
}

TEST(BalancedBanking, EngineMatchesReferenceExactlyAtSingleNt)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 4);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    EngineConfig cfg;
    cfg.p_node = 1;
    cfg.bank_policy = BankPolicy::kGreedyBalanced;
    Engine engine(m, cfg);
    RunResult r = engine.run(s);
    Matrix expected = m.reference_embeddings(m.prepare(s));
    EXPECT_EQ(max_abs_diff(r.embeddings, expected), 0.0f)
        << "bank policy must not change functional results";
}

TEST(BalancedBanking, EngineObservedImbalanceNotWorse)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 8);
    Model m = make_model(ModelKind::kGcn, s.node_dim(), s.edge_dim());
    EngineConfig modulo;
    EngineConfig balanced;
    balanced.bank_policy = BankPolicy::kGreedyBalanced;
    double obs_modulo =
        Engine(m, modulo).run(s).stats.observed_mp_imbalance();
    double obs_balanced =
        Engine(m, balanced).run(s).stats.observed_mp_imbalance();
    EXPECT_LE(obs_balanced, obs_modulo + 1e-9);
}

} // namespace
} // namespace flowgnn
