/**
 * @file
 * flowgnn::ghost tests: ghost-set construction and local graphs pinned
 * on hand-checkable graphs, per-layer exchange word counts against the
 * planner's published schedule, degenerate shapes (empty boundaries,
 * n < P), partition sharing with the halo planner, the resident-
 * footprint advantage on power-law graphs, layered comm composition,
 * and the pool's single-task ghost-job path.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "ghost/ghost_engine.h"
#include "graph/generators.h"
#include "pool/scheduler.h"
#include "shard/sharded_engine.h"
#include "tensor/ops.h"
#include "testing_util.h"

namespace flowgnn {
namespace {

using testing::make_random_sample;

/** Symmetric chain 0-1-...-(n-1), edges in both directions. */
CooGraph
make_chain(NodeId n)
{
    CooGraph g;
    g.num_nodes = n;
    for (NodeId i = 0; i + 1 < n; ++i) {
        g.edges.push_back({i, i + 1});
        g.edges.push_back({i + 1, i});
    }
    return g;
}

std::uint64_t
peak_resident(const ShardedRunResult &r)
{
    std::uint64_t peak = 0;
    for (const ShardInfo &info : r.shards)
        peak = std::max(peak, info.resident_words);
    return peak;
}

// ---- Ghost-set construction -------------------------------------------

TEST(GhostPlan, ChainGhostSetsAndLocalGraphsByHand)
{
    // Chain 0-1-2-3, contiguous P=2: die 0 owns {0,1}, die 1 owns
    // {2,3}. Die 0's in-boundary is {2} (edge 2->1), die 1's is {1}
    // (edge 1->2). Each die's local graph holds exactly the edges into
    // its owned vertices.
    Model model = make_model(ModelKind::kGcn16, 8, 0);
    GraphSample sample = make_random_sample(make_chain(4), 8, 0, 0x5F);
    GraphSample prepared = model.prepare(sample);

    ShardConfig cfg;
    cfg.num_shards = 2;
    cfg.strategy = ShardStrategy::kContiguous;
    cfg.mode = ShardMode::kGhostExchange;
    GhostPlan plan = make_ghost_plan(model, prepared, cfg);

    ASSERT_TRUE(plan.sharded);
    ASSERT_EQ(plan.shards.size(), 2u);
    EXPECT_EQ(plan.cut_edges, 2u); // 1->2 and 2->1

    const GhostShard &d0 = plan.shards[0];
    EXPECT_EQ(d0.locals, (std::vector<NodeId>{0, 1, 2}));
    EXPECT_EQ(d0.is_owned, (std::vector<std::uint8_t>{1, 1, 0}));
    EXPECT_EQ(d0.info.owned_nodes, 2u);
    EXPECT_EQ(d0.info.halo_nodes, 1u); // ghost count
    // Edges into {0,1}: (0,1),(1,0),(2,1) — 3 local edges, one fetched
    // across the cut.
    EXPECT_EQ(d0.local_graph.num_nodes, 3u);
    EXPECT_EQ(d0.local_graph.edges.size(), 3u);
    EXPECT_EQ(d0.info.fetched_edges, 1u);

    const GhostShard &d1 = plan.shards[1];
    EXPECT_EQ(d1.locals, (std::vector<NodeId>{1, 2, 3}));
    EXPECT_EQ(d1.is_owned, (std::vector<std::uint8_t>{0, 1, 1}));
    EXPECT_EQ(d1.info.halo_nodes, 1u);
    EXPECT_EQ(d1.local_graph.edges.size(), 3u);

    // Local endpoints are remapped into each die's `locals` index
    // space and stay in global edge order.
    for (const GhostShard &shard : plan.shards)
        for (const Edge &e : shard.local_graph.edges) {
            ASSERT_LT(e.src, shard.local_graph.num_nodes);
            ASSERT_LT(e.dst, shard.local_graph.num_nodes);
            EXPECT_TRUE(shard.is_owned[e.dst])
                << "every local edge lands on an owned destination";
        }

    // 4 owned + 2 ghosts over 4 vertices.
    EXPECT_DOUBLE_EQ(plan.replication_factor, 1.5);
}

TEST(GhostPlan, WordCountsFollowPublishedExchangeSchedule)
{
    // Same chain: fan_out = 1 and ghosts = 1 on both dies, so the
    // planner's per-die word totals must equal the schedule summed
    // over exchanging stages plus the one-time bootstrap metadata.
    Model model = make_model(ModelKind::kGcn16, 8, 0);
    GraphSample sample = make_random_sample(make_chain(4), 8, 0, 0x60);
    GraphSample prepared = model.prepare(sample);

    ShardConfig cfg;
    cfg.num_shards = 2;
    cfg.strategy = ShardStrategy::kContiguous;
    cfg.mode = ShardMode::kGhostExchange;
    GhostPlan plan = make_ghost_plan(model, prepared, cfg);
    ASSERT_TRUE(plan.sharded);

    // One exchange per neighbor-consuming stage — the same count the
    // halo planner calls message hops.
    std::size_t exchanges = 0;
    for (std::uint8_t x : plan.exchange_at_stage)
        exchanges += x;
    EXPECT_EQ(exchanges, ShardedEngine::message_hops(model));

    const std::uint64_t meta_words = 3; // id + 2 degrees, no DGN field
    std::uint64_t per_ghost_words = meta_words;
    for (std::size_t si = 0; si < plan.exchange_dim.size(); ++si) {
        EXPECT_EQ(plan.exchange_dim[si] > 0,
                  plan.exchange_at_stage[si] != 0) << "stage " << si;
        per_ghost_words += plan.exchange_dim[si];
    }

    for (const GhostShard &shard : plan.shards) {
        EXPECT_EQ(shard.info.exchange_send_words, per_ghost_words);
        EXPECT_EQ(shard.info.exchange_recv_words, per_ghost_words);
        // Per-layer link cycles: only exchanging stages pay, and the
        // total matches the ShardInfo comm bookkeeping.
        std::uint64_t summed = 0;
        ASSERT_EQ(shard.layer_comm_cycles.size(),
                  plan.exchange_at_stage.size());
        for (std::size_t si = 0; si < shard.layer_comm_cycles.size();
             ++si) {
            if (!plan.exchange_at_stage[si])
                EXPECT_EQ(shard.layer_comm_cycles[si], 0u);
            else
                EXPECT_GE(shard.layer_comm_cycles[si],
                          cfg.link.latency_cycles);
            summed += shard.layer_comm_cycles[si];
        }
        EXPECT_EQ(shard.info.comm_cycles, summed);
        EXPECT_GT(shard.info.resident_words, 0u);
    }
}

// ---- Degenerate shapes ------------------------------------------------

TEST(GhostPlan, EmptyBoundaryPaysNoCommAtAll)
{
    // Two disconnected chains split exactly at the component boundary:
    // the cut is empty, so no die has ghosts and every exchange is
    // free.
    CooGraph g;
    g.num_nodes = 8;
    for (NodeId i = 0; i + 1 < 4; ++i) {
        g.edges.push_back({i, i + 1});
        g.edges.push_back({i + 1, i});
        g.edges.push_back({NodeId(4 + i), NodeId(5 + i)});
        g.edges.push_back({NodeId(5 + i), NodeId(4 + i)});
    }
    Model model = make_model(ModelKind::kGcn16, 8, 0);
    GraphSample sample = make_random_sample(std::move(g), 8, 0, 0x61);
    GraphSample prepared = model.prepare(sample);

    ShardConfig cfg;
    cfg.num_shards = 2;
    cfg.strategy = ShardStrategy::kContiguous;
    cfg.mode = ShardMode::kGhostExchange;
    GhostPlan plan = make_ghost_plan(model, prepared, cfg);

    ASSERT_TRUE(plan.sharded);
    EXPECT_EQ(plan.cut_edges, 0u);
    EXPECT_DOUBLE_EQ(plan.replication_factor, 1.0);
    for (const GhostShard &shard : plan.shards) {
        EXPECT_EQ(shard.info.halo_nodes, 0u);
        EXPECT_EQ(shard.info.exchange_send_words, 0u);
        EXPECT_EQ(shard.info.exchange_recv_words, 0u);
        EXPECT_EQ(shard.info.comm_cycles, 0u);
        for (std::uint64_t c : shard.layer_comm_cycles)
            EXPECT_EQ(c, 0u);
    }

    // And the composed run pays zero comm while matching the
    // unsharded answer bit for bit (single NT unit).
    EngineConfig ecfg;
    ecfg.p_node = 1;
    ShardedRunResult sharded =
        ShardedEngine(model, ecfg, cfg).run(sample);
    RunResult single = Engine(model, ecfg).run(sample);
    EXPECT_EQ(sharded.stats.comm_cycles, 0u);
    EXPECT_TRUE(sharded.embeddings == single.embeddings);
}

TEST(GhostPlan, FewerNodesThanShardsDropsEmptyDies)
{
    Model model = make_model(ModelKind::kGcn16, 8, 0);
    GraphSample sample = make_random_sample(make_chain(3), 8, 0, 0x62);
    GraphSample prepared = model.prepare(sample);

    ShardConfig cfg;
    cfg.num_shards = 8;
    cfg.strategy = ShardStrategy::kContiguous;
    cfg.mode = ShardMode::kGhostExchange;
    GhostPlan plan = make_ghost_plan(model, prepared, cfg);

    ASSERT_TRUE(plan.sharded);
    ASSERT_LE(plan.shards.size(), 3u);
    std::size_t owned_total = 0;
    for (const GhostShard &shard : plan.shards) {
        EXPECT_GE(shard.info.owned_nodes, 1u)
            << "dies owning nothing must be dropped";
        owned_total += shard.info.owned_nodes;
    }
    EXPECT_EQ(owned_total, 3u);

    EngineConfig ecfg;
    ecfg.p_node = 1;
    ShardedRunResult sharded =
        ShardedEngine(model, ecfg, cfg).run(sample);
    RunResult single = Engine(model, ecfg).run(sample);
    EXPECT_TRUE(sharded.embeddings == single.embeddings);
    EXPECT_EQ(sharded.prediction, single.prediction);
}

TEST(GhostPlan, SingleShardAndVirtualNodeFallBackUnsharded)
{
    Rng rng(0x63);
    GraphSample sample = make_random_sample(
        make_barabasi_albert(60, 2, rng), 9, 3, 0x631);

    Model gcn = make_model(ModelKind::kGcn, 9, 3);
    ShardConfig one;
    one.num_shards = 1;
    one.mode = ShardMode::kGhostExchange;
    GhostPlan p1 = make_ghost_plan(gcn, gcn.prepare(sample), one);
    EXPECT_FALSE(p1.sharded);
    ASSERT_EQ(p1.shards.size(), 1u);
    EXPECT_GT(p1.shards[0].info.resident_words, 0u);

    Model vn = make_model(ModelKind::kGinVn, 9, 3);
    ShardConfig four;
    four.num_shards = 4;
    four.mode = ShardMode::kGhostExchange;
    GhostPlan p4 = make_ghost_plan(vn, vn.prepare(sample), four);
    EXPECT_FALSE(p4.sharded)
        << "the virtual node makes every vertex a boundary vertex";
}

// ---- Partition sharing ------------------------------------------------

TEST(GhostPlan, SharesAssignmentWithHaloPlannerIncludingRestream)
{
    Rng rng(0x64);
    GraphSample sample = make_random_sample(
        make_barabasi_albert(400, 3, rng), 8, 0, 0x641);
    Model model = make_model(ModelKind::kGcn16, 8, 0);
    GraphSample prepared = model.prepare(sample);

    ShardConfig cfg;
    cfg.num_shards = 4;
    cfg.strategy = ShardStrategy::kFennel;
    cfg.restream_passes = 2;
    cfg.mode = ShardMode::kGhostExchange;

    GhostPlan ghost = make_ghost_plan(model, prepared, cfg);
    EXPECT_EQ(ghost.assignment,
              shard_plan_assignment(prepared.graph, cfg))
        << "halo and ghost mode must shard identically so mode flips "
           "change timing, never placement";
}

// ---- The capacity story -----------------------------------------------

TEST(GhostEngine, ResidentFootprintBeatsHaloOnPowerLawGraph)
{
    // On a power-law graph the 2-hop halo closure saturates toward the
    // whole graph per die; the ghost fringe stays cut-sized. Peak
    // per-die resident words must be well below halo's, with smaller
    // replication, while both modes produce the same answer.
    Rng rng(0x65);
    GraphSample sample = make_random_sample(
        make_barabasi_albert(4000, 8, rng), 16, 0, 0x651);
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    EngineConfig ecfg;
    ecfg.p_node = 1;

    ShardConfig halo;
    halo.num_shards = 8;
    halo.strategy = ShardStrategy::kFennel;
    ShardConfig ghost = halo;
    ghost.mode = ShardMode::kGhostExchange;

    ShardedRunResult rh = ShardedEngine(model, ecfg, halo).run(sample);
    ShardedRunResult rg = ShardedEngine(model, ecfg, ghost).run(sample);

    EXPECT_TRUE(rg.embeddings == rh.embeddings)
        << "mode changes the timing model, never the math";
    EXPECT_LT(peak_resident(rg), peak_resident(rh) / 2)
        << "ghost state must stay ~n/P where halo closures saturate";
    EXPECT_LT(rg.replication_factor, rh.replication_factor);
}

// ---- Layered comm composition -----------------------------------------

TEST(GhostEngine, LayeredCommComposesSerialChainsExactly)
{
    GraphSample sample = make_random_sample(
        make_ring_lattice(2000, 2), 16, 0, 0x66);
    Model model = make_model(ModelKind::kGcn16, 16, 0);

    ShardConfig cfg;
    cfg.num_shards = 4;
    cfg.strategy = ShardStrategy::kContiguous;
    cfg.mode = ShardMode::kGhostExchange;
    ShardedRunResult r = ShardedEngine(model, {}, cfg).run(sample);

    ASSERT_EQ(r.shards.size(), 4u);
    std::uint64_t slowest = 0;
    for (const ShardInfo &info : r.shards) {
        EXPECT_GT(info.comm_cycles, 0u);
        slowest = std::max(slowest,
                           info.stats.total_cycles + info.comm_cycles);
    }
    EXPECT_EQ(r.stats.total_cycles, slowest)
        << "serial composition: every exchange extends its die's chain";

    // The composed per-layer profile covers every exchanging stage and
    // sums to at least the bottleneck die's comm total.
    ASSERT_FALSE(r.stats.layer_comm_cycles.empty());
    std::uint64_t layered = 0;
    for (std::uint64_t c : r.stats.layer_comm_cycles)
        layered += c;
    EXPECT_GE(layered, r.stats.comm_cycles);
}

TEST(GhostEngine, OverlapHidesExchangesAndKeepsTheAnswer)
{
    GraphSample sample = make_random_sample(
        make_ring_lattice(4000, 2), 16, 0, 0x67);
    Model model = make_model(ModelKind::kGcn16, 16, 0);

    ShardConfig serial;
    serial.num_shards = 4;
    serial.mode = ShardMode::kGhostExchange;
    ShardConfig overlapped = serial;
    overlapped.link.overlap = true;

    ShardedRunResult rs = ShardedEngine(model, {}, serial).run(sample);
    ShardedRunResult ro =
        ShardedEngine(model, {}, overlapped).run(sample);

    EXPECT_TRUE(ro.embeddings == rs.embeddings);
    EXPECT_LE(ro.stats.total_cycles, rs.stats.total_cycles);
    // Overlap can hide comm behind compute but never shrink compute.
    std::uint64_t compute_only = 0;
    for (const ShardInfo &info : ro.shards)
        compute_only =
            std::max(compute_only, info.stats.total_cycles);
    EXPECT_GE(ro.stats.total_cycles, compute_only);
}

// ---- Pool integration -------------------------------------------------

TEST(GhostPool, PoolGhostJobMatchesDirectRunOnOneLease)
{
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    GraphSample sample = make_random_sample(
        make_ring_lattice(3000, 2), 16, 0, 0x68);
    EngineConfig ecfg;
    ecfg.p_node = 1;

    ShardConfig shard;
    shard.num_shards = 4;
    shard.strategy = ShardStrategy::kContiguous;
    shard.mode = ShardMode::kGhostExchange;

    ShardedRunResult direct =
        ShardedEngine(model, ecfg, shard).run(sample);

    PoolConfig pool_cfg;
    pool_cfg.num_dies = 4;
    PoolScheduler scheduler(model, ecfg, pool_cfg);
    ShardedRunResult pooled =
        scheduler.submit_sharded(sample, shard).get();
    scheduler.drain();

    EXPECT_TRUE(pooled.embeddings == direct.embeddings);
    EXPECT_EQ(pooled.prediction, direct.prediction);
    EXPECT_EQ(pooled.stats.total_cycles, direct.stats.total_cycles);
    EXPECT_EQ(pooled.shards.size(), direct.shards.size());

    // Layer-synchronous ghost jobs are one indivisible task: exactly
    // one die lease, not one per modeled die.
    PoolStats st = scheduler.stats();
    std::size_t leases = 0;
    for (const DieStats &d : st.dies)
        leases += d.leases;
    EXPECT_EQ(leases, 1u);
    EXPECT_EQ(st.sharded.completed, 1u);
}

} // namespace
} // namespace flowgnn
