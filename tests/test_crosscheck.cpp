/**
 * @file
 * Engine-vs-reference functional cross-check: the analogue of the
 * paper's PyTorch end-to-end verification. For every model, the
 * dataflow engine's node embeddings and prediction must match the
 * software reference executor. With a single NT unit the per-node
 * message arrival order equals the reference's src-major order, so
 * results are bit-exact; with more NT units floating-point sum order
 * may differ, so a tight tolerance applies.
 */
#include <gtest/gtest.h>

#include "core/engine.h"
#include "datasets/dataset.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

struct CrossCheckCase {
    ModelKind model;
    EngineConfig config;
    bool exact; ///< bit-exact expected (single NT unit)
};

class CrossCheckTest : public ::testing::TestWithParam<CrossCheckCase>
{
};

TEST_P(CrossCheckTest, MatchesReference)
{
    const auto &[kind, cfg, exact] = GetParam();
    GraphSample sample = make_sample(DatasetKind::kMolHiv, 3);
    Model model = make_model(kind, sample.node_dim(), sample.edge_dim());
    Engine engine(model, cfg);

    RunResult result = engine.run(sample);
    GraphSample prepared = model.prepare(sample);
    Matrix expected = model.reference_embeddings(prepared);

    ASSERT_EQ(result.embeddings.rows(), expected.rows());
    ASSERT_EQ(result.embeddings.cols(), expected.cols());
    float diff = max_abs_diff(result.embeddings, expected);
    if (exact) {
        EXPECT_EQ(diff, 0.0f) << "single-NT config should be bit-exact";
    } else {
        EXPECT_LT(diff, 1e-3f);
    }
    EXPECT_NEAR(result.prediction, model.predict(sample),
                1e-3 + 1e-3 * std::abs(model.predict(sample)));
    EXPECT_GT(result.stats.total_cycles, 0u);
}

EngineConfig
cfg(std::uint32_t pn, std::uint32_t pe, std::uint32_t pa, std::uint32_t ps,
    PipelineMode mode = PipelineMode::kFlowGnn)
{
    EngineConfig c;
    c.p_node = pn;
    c.p_edge = pe;
    c.p_apply = pa;
    c.p_scatter = ps;
    c.mode = mode;
    return c;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, CrossCheckTest,
    ::testing::Values(
        CrossCheckCase{ModelKind::kGcn, cfg(1, 4, 4, 8), true},
        CrossCheckCase{ModelKind::kGin, cfg(1, 4, 4, 8), true},
        CrossCheckCase{ModelKind::kGinVn, cfg(1, 4, 4, 8), true},
        CrossCheckCase{ModelKind::kGat, cfg(1, 4, 4, 8), true},
        CrossCheckCase{ModelKind::kPna, cfg(1, 4, 4, 8), true},
        CrossCheckCase{ModelKind::kDgn, cfg(1, 4, 4, 8), true},
        CrossCheckCase{ModelKind::kGcn, cfg(2, 4, 4, 8), false},
        CrossCheckCase{ModelKind::kGin, cfg(2, 4, 4, 8), false},
        CrossCheckCase{ModelKind::kGat, cfg(2, 4, 4, 8), false},
        CrossCheckCase{ModelKind::kPna, cfg(4, 2, 2, 4), false},
        CrossCheckCase{ModelKind::kDgn, cfg(2, 2, 1, 1), false},
        CrossCheckCase{ModelKind::kGin, cfg(1, 1, 1, 1), true},
        CrossCheckCase{ModelKind::kGin,
                       cfg(1, 1, 1, 1, PipelineMode::kBaselineDataflow),
                       true},
        CrossCheckCase{ModelKind::kGat,
                       cfg(1, 2, 2, 2, PipelineMode::kBaselineDataflow),
                       true},
        CrossCheckCase{ModelKind::kGin,
                       cfg(1, 1, 2, 2, PipelineMode::kNonPipelined),
                       true},
        CrossCheckCase{ModelKind::kGin,
                       cfg(1, 1, 2, 2, PipelineMode::kFixedPipeline),
                       true},
        // Analytic pipeline modes run the functional callbacks in
        // src-major order for every layer family, attention included.
        CrossCheckCase{ModelKind::kGat,
                       cfg(2, 4, 2, 2, PipelineMode::kNonPipelined),
                       true},
        CrossCheckCase{ModelKind::kPna,
                       cfg(2, 4, 2, 2, PipelineMode::kNonPipelined),
                       true},
        CrossCheckCase{ModelKind::kDgn,
                       cfg(2, 4, 2, 2, PipelineMode::kFixedPipeline),
                       true},
        CrossCheckCase{ModelKind::kGinVn,
                       cfg(2, 4, 2, 2, PipelineMode::kFixedPipeline),
                       true},
        CrossCheckCase{ModelKind::kGcn,
                       cfg(1, 3, 4, 8, PipelineMode::kBaselineDataflow),
                       true}));

} // namespace
} // namespace flowgnn
